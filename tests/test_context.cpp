/**
 * @file
 * Invariant tests on CkksContext precomputation: gadget-constant
 * algebra (the heart of generalized key-switching correctness),
 * rescale constants, ModDown constants, and level bookkeeping.
 */

#include <gtest/gtest.h>

#include <set>

#include "ckks/context.h"

namespace ark {
namespace {

class ContextTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        ctx_ = new CkksContext(CkksParams::testSmall());
    }
    static void TearDownTestSuite() { delete ctx_; }

    static CkksContext *ctx_;
};

CkksContext *ContextTest::ctx_ = nullptr;

TEST_F(ContextTest, PrimeChainsWellFormed)
{
    const auto &p = ctx_->params();
    EXPECT_EQ(ctx_->qModuli().size(), static_cast<size_t>(p.max_level) + 1);
    EXPECT_EQ(ctx_->pModuli().size(), static_cast<size_t>(p.alpha()));
    // All primes distinct and NTT-friendly.
    std::set<u64> seen;
    for (const auto &m : ctx_->qModuli()) {
        EXPECT_EQ((m.value() - 1) % (2 * p.degree), 0u);
        EXPECT_TRUE(seen.insert(m.value()).second);
    }
    for (const auto &m : ctx_->pModuli()) {
        EXPECT_EQ((m.value() - 1) % (2 * p.degree), 0u);
        EXPECT_TRUE(seen.insert(m.value()).second);
    }
}

TEST_F(ContextTest, GadgetConstantsAreCrtIndicators)
{
    // g_d = 1 mod the primes of digit d, 0 mod other q primes
    // (paper Alg. 2 correctness hinges on exactly this).
    const int a = ctx_->alpha();
    const size_t nq = ctx_->qModuli().size();
    for (int d = 0; d < ctx_->dnum(); ++d) {
        const auto &g = ctx_->gadget(d);
        for (size_t l = 0; l < nq; ++l) {
            const bool in_digit = l >= static_cast<size_t>(d) * a &&
                                  l < static_cast<size_t>(d + 1) * a;
            EXPECT_EQ(g[l], in_digit ? 1u : 0u)
                << "digit " << d << " limb " << l;
        }
    }
}

TEST_F(ContextTest, PInverseConstants)
{
    for (size_t i = 0; i < ctx_->qModuli().size(); ++i) {
        const Modulus &q = ctx_->qModuli()[i];
        EXPECT_EQ(q.mul(ctx_->pModQ(i), ctx_->pInvModQ(i)), 1u);
        // P mod q_i is the product of the special primes mod q_i.
        u64 expect = 1;
        for (const auto &sp : ctx_->pModuli())
            expect = q.mul(expect, sp.value() % q.value());
        EXPECT_EQ(ctx_->pModQ(i), expect);
    }
}

TEST_F(ContextTest, RescaleConstants)
{
    for (int lv = 1; lv <= ctx_->maxLevel(); ++lv) {
        const u64 q_last = ctx_->qModuli()[lv].value();
        for (int i = 0; i < lv; ++i) {
            const Modulus &qi = ctx_->qModuli()[i];
            EXPECT_EQ(qi.mul(ctx_->qLastInvModQ(lv, i),
                             q_last % qi.value()), 1u);
        }
    }
}

TEST_F(ContextTest, DigitCountPerLevel)
{
    const int a = ctx_->alpha();
    for (int lv = 0; lv <= ctx_->maxLevel(); ++lv) {
        int expect = (lv + 1 + a - 1) / a; // ceil((lv+1)/alpha)
        EXPECT_EQ(ctx_->numDigits(lv), expect) << "level " << lv;
    }
}

TEST_F(ContextTest, KeyTableRouting)
{
    const int lv = 3;
    // Limbs 0..lv route to q tables; beyond that to special tables.
    for (int l = 0; l <= lv; ++l) {
        EXPECT_EQ(ctx_->keyTable(l, lv).modulus().value(),
                  ctx_->qModuli()[l].value());
    }
    for (size_t s = 0; s < ctx_->pModuli().size(); ++s) {
        EXPECT_EQ(ctx_->keyTable(lv + 1 + s, lv).modulus().value(),
                  ctx_->pModuli()[s].value());
    }
}

TEST_F(ContextTest, AutomorphismCacheReturnsSameObject)
{
    const Automorphism &a1 = ctx_->automorphism(5);
    const Automorphism &a2 = ctx_->automorphism(5);
    EXPECT_EQ(&a1, &a2);
    const Automorphism &b = ctx_->automorphism(25);
    EXPECT_NE(&a1, &b);
}

TEST(ContextDeath, RejectsIndivisibleDnum)
{
    CkksParams p = CkksParams::testTiny();
    p.dnum = 3; // L+1 = 4 not divisible by 3
    EXPECT_DEATH({ CkksContext ctx(p); }, "");
}

} // namespace
} // namespace ark
