/**
 * @file
 * Unit tests for the deterministic sampler.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace ark {
namespace {

TEST(Random, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        u64 va = a.next();
        EXPECT_EQ(va, b.next());
        (void)c;
    }
    Rng a2(42), c2(43);
    bool all_equal = true;
    for (int i = 0; i < 16; ++i)
        all_equal &= (a2.next() == c2.next());
    EXPECT_FALSE(all_equal);
}

TEST(Random, UniformBound)
{
    Rng rng(7);
    for (u64 bound : {1ULL, 2ULL, 3ULL, 1000ULL, (1ULL << 50) + 17}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniform(bound), bound);
    }
}

TEST(Random, UniformVectorModQ)
{
    Rng rng(11);
    const u64 q = 0x1fffffffffe00001ULL;
    auto v = rng.uniformVector(4096, q);
    ASSERT_EQ(v.size(), 4096u);
    double mean = 0;
    for (u64 x : v) {
        EXPECT_LT(x, q);
        mean += static_cast<double>(x) / 4096.0;
    }
    // Mean of uniform[0, q) should be near q/2 (within 5%).
    EXPECT_NEAR(mean / static_cast<double>(q), 0.5, 0.05);
}

TEST(Random, TernaryDense)
{
    Rng rng(13);
    auto v = rng.ternaryVector(8192);
    int counts[3] = {0, 0, 0};
    for (i64 x : v) {
        ASSERT_GE(x, -1);
        ASSERT_LE(x, 1);
        counts[x + 1]++;
    }
    // Each symbol ~1/3; allow generous slack.
    for (int c : counts)
        EXPECT_NEAR(c / 8192.0, 1.0 / 3.0, 0.05);
}

TEST(Random, TernarySparseHammingWeight)
{
    Rng rng(17);
    const size_t hw = 64;
    auto v = rng.ternaryVector(4096, hw);
    size_t nonzeros = 0;
    for (i64 x : v)
        nonzeros += (x != 0);
    EXPECT_EQ(nonzeros, hw);
}

TEST(Random, ErrorVectorMoments)
{
    Rng rng(19);
    auto v = rng.errorVector(1 << 16);
    double mean = 0, var = 0;
    for (i64 x : v)
        mean += static_cast<double>(x);
    mean /= v.size();
    for (i64 x : v)
        var += (x - mean) * (x - mean);
    var /= v.size();
    EXPECT_NEAR(mean, 0.0, 0.1);
    // Target sigma ~3.2 per the HE standard; accept [2.5, 4.0].
    EXPECT_GT(std::sqrt(var), 2.5);
    EXPECT_LT(std::sqrt(var), 4.0);
}

} // namespace
} // namespace ark
