/**
 * @file
 * Concurrent batch-serving runtime tests: bit-identical results under
 * concurrency (N concurrent requests == sequential execution, on both
 * kernel backends), bounded-queue backpressure/admission semantics,
 * failure reporting, and drain-report accounting.
 */

#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "serve/batch_server.h"

namespace ark {
namespace {

/**
 * Full serving stack for one backend, built from a fixed seed so two
 * stacks (or two servers on one stack) hold bit-identical key and
 * input material.
 */
struct Stack
{
    std::unique_ptr<CkksContext> ctx;
    Rng rng{777};
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    std::unique_ptr<KeyCache> keys;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<PlaintextStore> store;
    std::vector<ServeWorkload> workloads;
    std::vector<Ciphertext> inputs;

    explicit Stack(BackendKind kind, size_t kernel_threads = 2)
    {
        // This test exercises an explicit backend per stack; the env
        // override (used by the CI backend matrix) must not leak in.
        unsetenv("ARK_BACKEND");
        unsetenv("ARK_THREADS");
        CkksParams p = CkksParams::testTiny();
        p.backend = kind;
        p.backend_threads = kernel_threads;
        ctx = std::make_unique<CkksContext>(p);
        keygen = std::make_unique<KeyGenerator>(*ctx, rng);
        sk = keygen->secretKey();
        keys = std::make_unique<KeyCache>(*keygen, sk, ctx->degree());
        encoder = std::make_unique<CkksEncoder>(*ctx);
        CkksEncryptor encryptor(*ctx, rng);

        store = std::make_unique<PlaintextStore>(*ctx,
                                                 PlaintextMode::OFLimb);
        const size_t slots = p.num_slots;
        std::vector<Complex> m(slots);
        for (size_t i = 0; i < slots; ++i)
            m[i] = Complex(0.6 + 0.001 * static_cast<double>(i % 11),
                           0.02);
        store->insert(encoder->encode(m, ctx->maxLevel()));

        LowerOptions opt;
        opt.max_ops = 20;
        workloads = standardServingMix(p, opt);

        // Deterministic key material up front, via the canonical
        // (sorted-set) warm order — no reliance on the per-server
        // prewarm loop's iteration order.
        std::vector<i64> amounts;
        for (const auto &w : workloads) {
            const std::vector<i64> amts = w.rotationAmounts();
            amounts.insert(amounts.end(), amts.begin(), amts.end());
        }
        keys->warm(std::move(amounts));

        for (int k = 0; k < 2; ++k) {
            Ciphertext ct = encryptor.encryptSymmetric(
                encoder->encode(m, ctx->maxLevel()), sk);
            ct.slots = slots;
            inputs.push_back(std::move(ct));
        }
    }

    /** Serve @p n requests (round-robin mix) on @p workers workers and
     *  return their checksums in submission order. Schedule-aware
     *  servers admit through submitBatch (clustered admission);
     *  futures still map to the round-robin request order. */
    std::vector<u64>
    serveBatch(size_t workers, size_t n,
               SchedulePolicy schedule = SchedulePolicy::SourceOrder)
    {
        BatchServerConfig cfg;
        cfg.workers = workers;
        cfg.queue_capacity = n;
        cfg.schedule = schedule;
        BatchServer server(*ctx, *keys, *store, workloads, inputs, cfg);
        std::vector<size_t> indices;
        for (size_t i = 0; i < n; ++i)
            indices.push_back(i % workloads.size());
        auto futs = server.submitBatch(indices);
        std::vector<u64> sums;
        for (auto &f : futs) {
            ServeResult r = f.get();
            EXPECT_TRUE(r.ok) << r.error;
            sums.push_back(r.checksum);
        }
        server.drain();
        return sums;
    }
};

TEST(Serving, ConcurrentMatchesSequential)
{
    Stack s(BackendKind::Scalar);
    const auto sequential = s.serveBatch(1, 16);
    const auto concurrent = s.serveBatch(4, 16);
    EXPECT_EQ(sequential, concurrent);
}

TEST(Serving, ConcurrentMatchesSequentialParallelBackend)
{
    Stack s(BackendKind::Parallel, 2);
    const auto sequential = s.serveBatch(1, 16);
    const auto concurrent = s.serveBatch(4, 16);
    EXPECT_EQ(sequential, concurrent);
}

TEST(Serving, ScheduledExecutionMatchesFcfs)
{
    // The schedule-aware mode reorders each request's ops under the
    // bit-exact commutation graph and clusters queue admission; both
    // must leave every result bit-identical to plain FCFS.
    Stack s(BackendKind::Scalar);
    const auto fcfs = s.serveBatch(2, 16);
    const auto scheduled =
        s.serveBatch(2, 16, SchedulePolicy::EvkCluster);
    EXPECT_EQ(fcfs, scheduled);
}

TEST(Serving, ScheduledExecutionMatchesFcfsParallelBackend)
{
    Stack s(BackendKind::Parallel, 2);
    const auto fcfs = s.serveBatch(4, 16);
    const auto scheduled =
        s.serveBatch(4, 16, SchedulePolicy::EvkCluster);
    EXPECT_EQ(fcfs, scheduled);
}

TEST(Serving, ScheduledServersAgreeAcrossBackends)
{
    // Scheduling composes with kernel-backend parity: a scheduled
    // scalar server and a scheduled parallel server (fresh stacks,
    // same seed) produce identical bits.
    Stack scalar(BackendKind::Scalar);
    Stack parallel(BackendKind::Parallel, 3);
    EXPECT_EQ(scalar.serveBatch(2, 12, SchedulePolicy::EvkCluster),
              parallel.serveBatch(4, 12, SchedulePolicy::EvkCluster));
}

TEST(Serving, BackendsProduceIdenticalResults)
{
    // Kernel parity + fixed seeds: the whole serving pipeline is
    // bit-identical across engines, even under concurrency.
    Stack scalar(BackendKind::Scalar);
    Stack parallel(BackendKind::Parallel, 3);
    EXPECT_EQ(scalar.serveBatch(2, 12), parallel.serveBatch(4, 12));
}

TEST(Serving, FailedRequestIsReportedNotFatal)
{
    Stack s(BackendKind::Scalar);
    ServeWorkload bad;
    bad.name = "too-deep";
    for (int i = 0; i < 5; ++i) { // 5 levels needed, only 3 available
        bad.ops.push_back({ServeOpKind::Square, 0, 0, 0});
        bad.ops.push_back({ServeOpKind::Rescale, 0, 0, 0});
    }
    std::vector<ServeWorkload> mix = {bad, s.workloads[0]};

    BatchServerConfig cfg;
    cfg.workers = 2;
    BatchServer server(*s.ctx, *s.keys, *s.store, mix, s.inputs, cfg);
    auto f_bad = server.submit(0);
    auto f_good = server.submit(1);

    ServeResult bad_r = f_bad.get();
    EXPECT_FALSE(bad_r.ok);
    EXPECT_NE(bad_r.error.find("level budget"), std::string::npos)
        << bad_r.error;
    EXPECT_TRUE(f_good.get().ok);

    ServeReport rep = server.drain();
    EXPECT_EQ(rep.requests, 2u);
    EXPECT_EQ(rep.failed, 1u);
}

TEST(Serving, DrainReportAccounting)
{
    Stack s(BackendKind::Scalar);
    BatchServerConfig cfg;
    cfg.workers = 2;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);
    const size_t n = 8;
    std::vector<std::future<ServeResult>> futs;
    for (size_t i = 0; i < n; ++i)
        futs.push_back(server.submit(i % s.workloads.size()));
    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok);

    ServeReport rep = server.drain();
    EXPECT_EQ(rep.requests, n);
    EXPECT_EQ(rep.failed, 0u);
    EXPECT_EQ(rep.latency.count, n);
    EXPECT_GT(rep.he_ops, 0u);
    EXPECT_GT(rep.wall_seconds, 0.0);
    EXPECT_GT(rep.requests_per_sec, 0.0);
    // The window's backend delta must have seen kernel work.
    EXPECT_GT(rep.kernel_words, 0u);
    EXPECT_GT(rep.mod_mults, 0u);
    EXPECT_GE(rep.latency.max_ms, rep.latency.p50_ms);
    EXPECT_FALSE(rep.toString().empty());

    // A fresh window is empty.
    ServeReport empty = server.drain();
    EXPECT_EQ(empty.requests, 0u);
    EXPECT_EQ(empty.latency.count, 0u);
}

TEST(Serving, SubmitAfterShutdownThrows)
{
    Stack s(BackendKind::Scalar);
    BatchServerConfig cfg;
    cfg.workers = 1;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);
    server.shutdown();
    EXPECT_THROW(server.submit(0), std::runtime_error);
    std::future<ServeResult> out;
    EXPECT_THROW(server.trySubmit(0, out), std::runtime_error);
}

TEST(RequestQueue, BackpressureAndAdmissionControl)
{
    RequestQueue q(2);
    EXPECT_EQ(q.capacity(), 2u);

    auto makeJob = [](u64 id) {
        ServeJob j;
        j.request.id = id;
        return j;
    };

    EXPECT_TRUE(q.tryPush(makeJob(1)));
    EXPECT_TRUE(q.push(makeJob(2)));
    EXPECT_EQ(q.size(), 2u);
    // Full: admission control refuses instead of blocking.
    ServeJob overflow = makeJob(3);
    EXPECT_FALSE(q.tryPush(std::move(overflow)));

    ServeJob out;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.request.id, 1u); // FIFO
    EXPECT_TRUE(q.tryPush(makeJob(4)));

    // close() refuses producers but lets consumers drain.
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(makeJob(5)));
    EXPECT_FALSE(q.push(makeJob(6)));
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.request.id, 2u);
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.request.id, 4u);
    EXPECT_FALSE(q.pop(out)); // drained
}

TEST(Serving, WorkloadLoweringIsDeterministicAndBudgeted)
{
    unsetenv("ARK_BACKEND");
    unsetenv("ARK_THREADS");
    const CkksParams p = CkksParams::testTiny();
    LowerOptions opt;
    opt.max_ops = 20;
    const auto a = standardServingMix(p, opt);
    const auto b = standardServingMix(p, opt);
    ASSERT_EQ(a.size(), 4u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        ASSERT_EQ(a[i].ops.size(), b[i].ops.size());
        EXPECT_LE(a[i].ops.size(), opt.max_ops);
        // Never deeper than the execution parameter level budget.
        EXPECT_LE(a[i].levelsNeeded(),
                  static_cast<size_t>(p.max_level));
        for (size_t k = 0; k < a[i].ops.size(); ++k) {
            EXPECT_EQ(static_cast<int>(a[i].ops[k].kind),
                      static_cast<int>(b[i].ops[k].kind));
            EXPECT_EQ(a[i].ops[k].rotation, b[i].ops[k].rotation);
        }
        for (i64 r : a[i].rotationAmounts()) {
            EXPECT_GE(r, 1);
            EXPECT_LE(r, static_cast<i64>(opt.max_rotation_keys));
        }
    }
}

} // namespace
} // namespace ark
