/**
 * @file
 * PolyPool correctness: recycled buffers keep their (degree, limbs)
 * identity, stale contents never reach zeroed acquires, the free list
 * is bounded, and concurrent acquire/release from many threads is
 * race-free (this suite runs under the ASan and TSan CI jobs via the
 * `serving` CTest label).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "rns/poly_pool.h"

namespace ark {
namespace {

TEST(PolyPoolTest, AcquireShapesAndMiss)
{
    PolyPool pool;
    RnsPoly p = pool.acquire(64, 3, Rep::Eval);
    EXPECT_EQ(p.degree(), 64u);
    EXPECT_EQ(p.numLimbs(), 3u);
    EXPECT_EQ(p.rep(), Rep::Eval);
    auto st = pool.stats();
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.hits, 0u);
    // A fresh (miss) buffer is value-initialized, like the plain
    // constructor.
    for (size_t l = 0; l < 3; ++l) {
        for (size_t c = 0; c < 64; ++c)
            EXPECT_EQ(p.limb(l)[c], 0u);
    }
}

TEST(PolyPoolTest, RecyclesByShapeKey)
{
    PolyPool pool;
    RnsPoly a = pool.acquire(64, 2, Rep::Coeff);
    a.limb(0)[0] = 42;
    pool.release(std::move(a));

    // Different shape: must not be served the cached (64, 2) buffer.
    RnsPoly b = pool.acquire(64, 4, Rep::Coeff);
    EXPECT_EQ(pool.stats().misses, 2u);
    EXPECT_EQ(b.numLimbs(), 4u);

    // Same shape: served from the free list, stale word visible (the
    // documented acquire contract).
    RnsPoly c = pool.acquire(64, 2, Rep::Coeff);
    EXPECT_EQ(pool.stats().hits, 1u);
    EXPECT_EQ(c.limb(0)[0], 42u);
}

TEST(PolyPoolTest, AcquireZeroedScrubsStaleContents)
{
    PolyPool pool;
    RnsPoly junk = pool.acquire(128, 3, Rep::Eval);
    for (size_t l = 0; l < 3; ++l) {
        for (size_t c = 0; c < 128; ++c)
            junk.limb(l)[c] = 0xABCDABCDABCDABCDULL;
    }
    pool.release(std::move(junk));

    RnsPoly z = pool.acquireZeroed(128, 3, Rep::Eval);
    EXPECT_EQ(pool.stats().hits, 1u); // recycled, then scrubbed
    for (size_t l = 0; l < 3; ++l) {
        for (size_t c = 0; c < 128; ++c)
            ASSERT_EQ(z.limb(l)[c], 0u) << "stale word leaked";
    }
}

TEST(PolyPoolTest, ReleasedPolyIsEmptyAndEmptyReleaseIsNoop)
{
    PolyPool pool;
    RnsPoly p = pool.acquire(64, 2, Rep::Coeff);
    pool.release(std::move(p));
    EXPECT_EQ(p.degree(), 0u);    // NOLINT: moved-from by design
    EXPECT_EQ(p.numLimbs(), 0u);
    pool.release(std::move(p)); // releasing an empty poly: no-op
    EXPECT_EQ(pool.stats().released, 1u);

    RnsPoly never_init;
    pool.release(std::move(never_init));
    EXPECT_EQ(pool.stats().released, 1u);
}

TEST(PolyPoolTest, TrimDropsCachedBuffers)
{
    PolyPool pool;
    pool.release(pool.acquire(64, 2, Rep::Coeff));
    EXPECT_EQ(pool.stats().cached_buffers, 1u);
    pool.trim();
    EXPECT_EQ(pool.stats().cached_buffers, 0u);
    // Next acquire misses again.
    RnsPoly p = pool.acquire(64, 2, Rep::Coeff);
    EXPECT_EQ(pool.stats().misses, 2u);
}

TEST(PolyPoolTest, FreeListIsBounded)
{
    PolyPool pool;
    // Release far more same-shape buffers than the per-key cap; the
    // pool must not retain them all.
    std::vector<RnsPoly> polys;
    for (int i = 0; i < 100; ++i)
        polys.push_back(pool.acquire(32, 1, Rep::Coeff));
    for (auto &p : polys)
        pool.release(std::move(p));
    auto st = pool.stats();
    EXPECT_EQ(st.released, 100u);
    EXPECT_LE(st.cached_buffers, 64u);
    EXPECT_GT(st.cached_buffers, 0u);
}

/**
 * Concurrent acquire/fill/release hammering from every worker of a
 * thread pool: each thread writes a thread-unique pattern into its
 * acquired poly and verifies the pattern is intact before releasing —
 * two threads being handed the same buffer simultaneously would trip
 * the check (and TSan would flag the race).
 */
TEST(PolyPoolTest, ConcurrentAcquireReleaseIsRaceFree)
{
    PolyPool pool;
    ThreadPool workers(4);
    const size_t degree = 256;
    const int iters = 200;
    std::atomic<u64> mismatches{0};

    workers.parallelFor(8, [&](size_t job) {
        for (int it = 0; it < iters; ++it) {
            // Mix of the two shapes so free lists see contention.
            const size_t limbs = 1 + (job + it) % 2;
            RnsPoly p = pool.acquire(degree, limbs, Rep::Eval);
            const u64 tag =
                (static_cast<u64>(job) << 32) ^ static_cast<u64>(it);
            for (size_t l = 0; l < limbs; ++l) {
                for (size_t c = 0; c < degree; ++c)
                    p.limb(l)[c] = tag + c;
            }
            for (size_t l = 0; l < limbs; ++l) {
                for (size_t c = 0; c < degree; ++c) {
                    if (p.limb(l)[c] != tag + c)
                        mismatches.fetch_add(1);
                }
            }
            pool.release(std::move(p));
        }
    });
    EXPECT_EQ(mismatches.load(), 0u);
    auto st = pool.stats();
    EXPECT_EQ(st.released, 8u * iters);
    EXPECT_EQ(st.hits + st.misses, 8u * iters);
}

/** acquireZeroed under concurrency: recycled garbage must never
 *  surface through the zeroed path. */
TEST(PolyPoolTest, ConcurrentZeroedAcquires)
{
    PolyPool pool;
    ThreadPool workers(4);
    std::atomic<u64> nonzero{0};
    workers.parallelFor(8, [&](size_t job) {
        for (int it = 0; it < 100; ++it) {
            RnsPoly p = pool.acquireZeroed(128, 2, Rep::Coeff);
            for (size_t l = 0; l < 2; ++l) {
                for (size_t c = 0; c < 128; ++c) {
                    if (p.limb(l)[c] != 0)
                        nonzero.fetch_add(1);
                }
            }
            // Poison before returning so a zeroing bug is observable.
            for (size_t l = 0; l < 2; ++l) {
                for (size_t c = 0; c < 128; ++c)
                    p.limb(l)[c] = ~0ULL - job;
            }
            pool.release(std::move(p));
        }
    });
    EXPECT_EQ(nonzero.load(), 0u);
}

} // namespace
} // namespace ark
