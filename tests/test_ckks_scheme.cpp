/**
 * @file
 * End-to-end tests of the CKKS primitive HE ops (paper Table II):
 * encryption round trips, HAdd, CAdd/CMult, PMult, HMult + HRescale,
 * HRot, conjugation, hoisted rotations, key-switching internals, and
 * ModRaise.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

namespace ark {
namespace {

class CkksTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testTiny());
        rng_ = std::make_unique<Rng>(4242);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_, *rng_);
        sk_ = keygen_->secretKey();
        encryptor_ = std::make_unique<CkksEncryptor>(*ctx_, *rng_);
        decryptor_ = std::make_unique<CkksDecryptor>(*ctx_, sk_);
        eval_ = std::make_unique<CkksEvaluator>(*ctx_);
        slots_ = 64;
    }

    std::vector<Complex> randomMessage(u64 seed, double mag = 1.0)
    {
        Rng rng(seed);
        std::vector<Complex> m(slots_);
        for (auto &x : m)
            x = Complex((rng.uniformReal() * 2 - 1) * mag,
                        (rng.uniformReal() * 2 - 1) * mag);
        return m;
    }

    Ciphertext encrypt(const std::vector<Complex> &m,
                       int level = -1)
    {
        if (level < 0)
            level = ctx_->maxLevel();
        auto pt = enc_->encode(m, level);
        auto ct = encryptor_->encryptSymmetric(pt, sk_);
        ct.slots = slots_;
        return ct;
    }

    std::vector<Complex> decrypt(const Ciphertext &ct)
    {
        return enc_->decode(decryptor_->decrypt(ct), slots_);
    }

    static void expectClose(const std::vector<Complex> &a,
                            const std::vector<Complex> &b, double tol)
    {
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_LT(std::abs(a[i] - b[i]), tol) << "slot " << i;
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<Rng> rng_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    SecretKey sk_;
    std::unique_ptr<CkksEncryptor> encryptor_;
    std::unique_ptr<CkksDecryptor> decryptor_;
    std::unique_ptr<CkksEvaluator> eval_;
    size_t slots_;
};

TEST_F(CkksTest, EncryptDecryptSymmetric)
{
    auto m = randomMessage(1);
    auto back = decrypt(encrypt(m));
    expectClose(m, back, 1e-5);
}

TEST_F(CkksTest, EncryptDecryptPublicKey)
{
    auto pk = keygen_->publicKey(sk_);
    auto m = randomMessage(2);
    auto pt = enc_->encode(m, ctx_->maxLevel());
    auto ct = encryptor_->encryptPublic(pt, pk);
    ct.slots = slots_;
    expectClose(m, decrypt(ct), 1e-4);
}

TEST_F(CkksTest, EncryptPublicBelowMaxLevel)
{
    // pk polys span all L+1 limbs; encrypting a lower-level plaintext
    // must use only the matching prefix.
    auto pk = keygen_->publicKey(sk_);
    auto m = randomMessage(3);
    auto pt = enc_->encode(m, ctx_->maxLevel() - 2);
    auto ct = encryptor_->encryptPublic(pt, pk);
    ct.slots = slots_;
    EXPECT_EQ(ct.level(), ctx_->maxLevel() - 2);
    expectClose(m, decrypt(ct), 1e-4);
}

TEST_F(CkksTest, HAddAndHSub)
{
    auto m1 = randomMessage(3), m2 = randomMessage(4);
    auto c1 = encrypt(m1), c2 = encrypt(m2);
    auto sum = decrypt(eval_->add(c1, c2));
    auto diff = decrypt(eval_->sub(c1, c2));
    for (size_t i = 0; i < slots_; ++i) {
        EXPECT_LT(std::abs(sum[i] - (m1[i] + m2[i])), 1e-5);
        EXPECT_LT(std::abs(diff[i] - (m1[i] - m2[i])), 1e-5);
    }
}

TEST_F(CkksTest, CAddScalar)
{
    auto m = randomMessage(5);
    auto out = decrypt(eval_->addScalar(encrypt(m), 2.5));
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - (m[i] + 2.5)), 1e-5);
}

TEST_F(CkksTest, CMultScalarWithRescale)
{
    auto m = randomMessage(6);
    auto ct = eval_->mulScalar(encrypt(m), -1.75);
    ct = eval_->rescale(ct);
    auto out = decrypt(ct);
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - m[i] * -1.75), 1e-4);
}

TEST_F(CkksTest, MulByImaginaryUnit)
{
    auto m = randomMessage(7);
    auto out = decrypt(eval_->mulByI(encrypt(m)));
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - m[i] * Complex(0, 1)), 1e-5);
}

TEST_F(CkksTest, PMultPlaintext)
{
    auto m1 = randomMessage(8), m2 = randomMessage(9);
    auto ct = encrypt(m1);
    auto pt = enc_->encode(m2, ct.level());
    auto prod = eval_->rescale(eval_->mulPlain(ct, pt));
    auto out = decrypt(prod);
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - m1[i] * m2[i]), 1e-4);
}

TEST_F(CkksTest, HMultWithRelinAndRescale)
{
    auto evk = keygen_->evkMult(sk_);
    auto m1 = randomMessage(10), m2 = randomMessage(11);
    auto prod = eval_->rescale(eval_->mul(encrypt(m1), encrypt(m2), evk));
    auto out = decrypt(prod);
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - m1[i] * m2[i]), 1e-3);
}

TEST_F(CkksTest, MultiplicativeDepthChain)
{
    // Consume all levels: ((m^2)^2)... checking scale bookkeeping.
    auto evk = keygen_->evkMult(sk_);
    auto m = randomMessage(12, 0.9);
    auto ct = encrypt(m);
    std::vector<Complex> expect = m;
    for (int lv = ctx_->maxLevel(); lv >= 1; --lv) {
        ct = eval_->rescale(eval_->square(ct, evk));
        for (auto &x : expect)
            x *= x;
    }
    EXPECT_EQ(ct.level(), 0);
    expectClose(expect, decrypt(ct), 2e-2);
}

TEST_F(CkksTest, HRotRotatesSlots)
{
    auto m = randomMessage(13);
    for (i64 r : {1, 2, 7, 31}) {
        auto evk = keygen_->evkRotation(sk_, r);
        auto out = decrypt(eval_->rotate(encrypt(m), r, evk));
        for (size_t i = 0; i < slots_; ++i)
            EXPECT_LT(std::abs(out[i] - m[(i + r) % slots_]), 1e-4)
                << "r=" << r;
    }
}

TEST_F(CkksTest, HRotNegativeAmount)
{
    auto m = randomMessage(14);
    auto evk = keygen_->evkRotation(sk_, -3);
    auto out = decrypt(eval_->rotate(encrypt(m), -3, evk));
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - m[(i + slots_ - 3) % slots_]), 1e-4);
}

TEST_F(CkksTest, Conjugate)
{
    auto m = randomMessage(15);
    auto evk = keygen_->evkConjugate(sk_);
    auto out = decrypt(eval_->conjugate(encrypt(m), evk));
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - std::conj(m[i])), 1e-4);
}

TEST_F(CkksTest, HoistedRotationsMatchIndividual)
{
    auto m = randomMessage(16);
    auto ct = encrypt(m);
    std::vector<i64> rots = {1, 2, 4};
    std::vector<EvalKey> keys;
    keys.reserve(rots.size());
    std::vector<const EvalKey *> key_ptrs;
    for (i64 r : rots)
        keys.push_back(keygen_->evkRotation(sk_, r));
    for (auto &k : keys)
        key_ptrs.push_back(&k);

    auto hoisted = eval_->rotateHoisted(ct, rots, key_ptrs);
    ASSERT_EQ(hoisted.size(), rots.size());
    for (size_t k = 0; k < rots.size(); ++k) {
        auto individual = decrypt(eval_->rotate(ct, rots[k], keys[k]));
        auto h = decrypt(hoisted[k]);
        for (size_t i = 0; i < slots_; ++i)
            EXPECT_LT(std::abs(h[i] - individual[i]), 1e-4);
    }
}

TEST_F(CkksTest, RotationAtLowerLevel)
{
    // Key-switching must work after rescales (digit count shrinks).
    auto evk_mult = keygen_->evkMult(sk_);
    auto evk_rot = keygen_->evkRotation(sk_, 5);
    auto m = randomMessage(17);
    auto ct = encrypt(m);
    ct = eval_->rescale(eval_->square(ct, evk_mult)); // level L-1
    ct = eval_->rescale(eval_->square(ct, evk_mult)); // level L-2
    auto out = decrypt(eval_->rotate(ct, 5, evk_rot));
    for (size_t i = 0; i < slots_; ++i) {
        Complex expect = std::pow(m[(i + 5) % slots_], 4);
        EXPECT_LT(std::abs(out[i] - expect), 5e-3);
    }
}

TEST_F(CkksTest, ModDownToPreservesValue)
{
    auto m = randomMessage(18);
    auto ct = eval_->modDownTo(encrypt(m), 1);
    EXPECT_EQ(ct.level(), 1);
    expectClose(m, decrypt(ct), 1e-5);
}

TEST_F(CkksTest, ModRaisePreservesValueModQ0)
{
    // After ModRaise the plaintext is Pm + q0*I; mod q0 (limb 0) the
    // decryption must be unchanged.
    auto m = randomMessage(19);
    auto ct0 = eval_->modDownTo(encrypt(m), 0);
    auto raised = eval_->modRaise(ct0);
    EXPECT_EQ(raised.level(), ctx_->maxLevel());

    auto pt0 = decryptor_->decrypt(ct0);
    auto ptL = decryptor_->decrypt(raised);
    polyNttInverse(pt0.poly, ctx_->qTables());
    polyNttInverse(ptL.poly, ctx_->qTables());
    size_t mismatches = 0;
    for (size_t i = 0; i < ctx_->degree(); ++i) {
        if (pt0.poly.limb(0)[i] != ptL.poly.limb(0)[i])
            ++mismatches;
    }
    // ModRaise introduces no error mod q0 beyond its own tiny rounding;
    // the q0 limb must match exactly.
    EXPECT_EQ(mismatches, 0u);
}

TEST_F(CkksTest, KeySwitchIdentity)
{
    // Switching d under an evk for s itself must return (B', A') with
    // B' + A'*s ~= d*s (small error): verify via a full HMult-free
    // path: decompose-and-accumulate on c.a with evk for s gives a
    // re-encryption of the same ciphertext.
    auto evk_s = [&] {
        // evk encrypting P*g*s (i.e., "switching" s -> s).
        KeyGenerator kg(*ctx_, *rng_);
        return kg.evkGalois(sk_, 1); // psi_1 is the identity map
    }();
    auto m = randomMessage(20);
    auto ct = encrypt(m);
    auto out = decrypt(eval_->applyGalois(ct, 1, evk_s));
    expectClose(m, out, 1e-4);
}

TEST_F(CkksTest, ScaleMismatchDies)
{
    auto m = randomMessage(21);
    auto c1 = encrypt(m);
    auto c2 = eval_->mulScalar(encrypt(m), 1.0);
    EXPECT_DEATH((void)eval_->add(c1, c2), "");
}

TEST_F(CkksTest, LevelMismatchDies)
{
    auto m = randomMessage(22);
    auto c1 = encrypt(m);
    auto c2 = eval_->modDownTo(c1, 1);
    EXPECT_DEATH((void)eval_->add(c1, c2), "");
}

} // namespace
} // namespace ark
