/**
 * @file
 * Bit-exactness of the ParallelBackend against the ScalarBackend for
 * every kernel, across several (N, L) shapes, including the fused
 * nttBconvNtt key-switch digit path — plus sanity checks that both
 * engines record KernelStats for what they executed.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/backend.h"
#include "rns/primes.h"

namespace ark {
namespace {

struct Shape
{
    size_t degree;
    size_t limbs;
};

class BackendParityTest : public ::testing::TestWithParam<Shape>
{
  protected:
    void SetUp() override
    {
        degree_ = GetParam().degree;
        limbs_ = GetParam().limbs;
        auto qs = generatePrimes(40, limbs_, degree_);
        for (u64 q : qs) {
            moduli_.emplace_back(q);
            tables_.emplace_back(degree_, Modulus(q));
        }
        for (auto &t : tables_)
            table_ptrs_.push_back(&t);

        scalar_ = makeKernelBackend(BackendKind::Scalar);
        parallel_ = makeKernelBackend(BackendKind::Parallel, 4);
    }

    RnsPoly randomPoly(Rep rep, u64 seed, size_t limbs = 0) const
    {
        if (limbs == 0)
            limbs = limbs_;
        Rng rng(seed);
        RnsPoly p(degree_, limbs, rep);
        for (size_t l = 0; l < limbs; ++l) {
            auto v = rng.uniformVector(degree_,
                                       moduli_[l % moduli_.size()].value());
            std::copy(v.begin(), v.end(), p.limb(l));
        }
        return p;
    }

    static void expectIdentical(const RnsPoly &a, const RnsPoly &b)
    {
        ASSERT_EQ(a.numLimbs(), b.numLimbs());
        ASSERT_EQ(a.degree(), b.degree());
        EXPECT_EQ(a.rep(), b.rep());
        for (size_t l = 0; l < a.numLimbs(); ++l) {
            for (size_t i = 0; i < a.degree(); ++i) {
                ASSERT_EQ(a.limb(l)[i], b.limb(l)[i])
                    << "limb " << l << " word " << i;
            }
        }
    }

    size_t degree_ = 0;
    size_t limbs_ = 0;
    std::vector<Modulus> moduli_;
    std::vector<NttTables> tables_;
    std::vector<const NttTables *> table_ptrs_;
    std::unique_ptr<KernelBackend> scalar_;
    std::unique_ptr<KernelBackend> parallel_;
};

TEST_P(BackendParityTest, ElementwiseKernels)
{
    auto a = randomPoly(Rep::Eval, 1);
    auto b = randomPoly(Rep::Eval, 2);
    std::vector<u64> scalars;
    for (auto &m : moduli_)
        scalars.push_back(m.value() / 5 + 1);

    auto check2 = [&](auto &&op) {
        RnsPoly rs(degree_, limbs_, Rep::Eval);
        RnsPoly rp(degree_, limbs_, Rep::Eval);
        op(*scalar_, rs);
        op(*parallel_, rp);
        expectIdentical(rs, rp);
    };

    check2([&](KernelBackend &kb, RnsPoly &r) { kb.add(a, b, moduli_, r); });
    check2([&](KernelBackend &kb, RnsPoly &r) { kb.sub(a, b, moduli_, r); });
    check2([&](KernelBackend &kb, RnsPoly &r) { kb.neg(a, moduli_, r); });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.mulEval(a, b, moduli_, r);
    });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.mulScalar(a, scalars, moduli_, r);
    });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.addScalar(a, scalars, moduli_, r);
    });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.subMulScalar(a, b, scalars, moduli_, r);
    });

    // MAC accumulates into the result: seed both sides identically.
    RnsPoly acc_s = randomPoly(Rep::Eval, 3);
    RnsPoly acc_p = acc_s;
    scalar_->mulAccEval(a, b, moduli_, acc_s);
    parallel_->mulAccEval(a, b, moduli_, acc_p);
    expectIdentical(acc_s, acc_p);
}

TEST_P(BackendParityTest, MonomialMulAndLimbEmbed)
{
    auto a = randomPoly(Rep::Coeff, 4);
    for (size_t shift : {size_t(0), size_t(1), degree_ / 2,
                         degree_ - 1}) {
        RnsPoly rs(degree_, limbs_, Rep::Coeff);
        RnsPoly rp(degree_, limbs_, Rep::Coeff);
        scalar_->monomialMul(a, shift, moduli_, rs);
        parallel_->monomialMul(a, shift, moduli_, rp);
        expectIdentical(rs, rp);
    }

    Rng rng(5);
    auto src = rng.uniformVector(degree_, moduli_[0].value());
    RnsPoly es(degree_, limbs_, Rep::Coeff);
    RnsPoly ep(degree_, limbs_, Rep::Coeff);
    scalar_->limbEmbed(src, moduli_[0], moduli_, es);
    parallel_->limbEmbed(src, moduli_[0], moduli_, ep);
    expectIdentical(es, ep);
}

TEST_P(BackendParityTest, NttRoundTrip)
{
    auto a = randomPoly(Rep::Coeff, 6);
    auto original = a;
    auto b = a;

    scalar_->nttForward(a, table_ptrs_);
    parallel_->nttForward(b, table_ptrs_);
    expectIdentical(a, b);

    scalar_->nttInverse(a, table_ptrs_);
    parallel_->nttInverse(b, table_ptrs_);
    expectIdentical(a, b);
    expectIdentical(a, original);
}

TEST_P(BackendParityTest, BConvMatchesScalarAndReference)
{
    const size_t nb = limbs_;
    auto pc = generatePrimes(41, 3, degree_);
    std::vector<Modulus> out_base;
    for (u64 p : pc)
        out_base.emplace_back(p);
    BaseConverter bc(moduli_, out_base);

    auto in = randomPoly(Rep::Coeff, 7, nb);
    RnsPoly rs = scalar_->bconv(bc, in);
    RnsPoly rp = parallel_->bconv(bc, in);
    expectIdentical(rs, rp);
    // Cross-check against the standalone reference implementation.
    RnsPoly ref = bc.convert(in);
    expectIdentical(rs, ref);
}

TEST_P(BackendParityTest, AutomorphismBothReps)
{
    const u64 g = galoisElt(3, degree_);
    Automorphism am(g, degree_);
    for (Rep rep : {Rep::Coeff, Rep::Eval}) {
        auto p = randomPoly(rep, 8);
        RnsPoly rs = scalar_->automorphism(am, p, moduli_);
        RnsPoly rp = parallel_->automorphism(am, p, moduli_);
        expectIdentical(rs, rp);
    }
}

TEST_P(BackendParityTest, FusedNttBconvNttMatchesUnfusedPipeline)
{
    auto pc = generatePrimes(41, 4, degree_);
    std::vector<Modulus> out_base;
    std::vector<NttTables> out_tables;
    std::vector<const NttTables *> out_ptrs;
    for (u64 p : pc) {
        out_base.emplace_back(p);
        out_tables.emplace_back(degree_, Modulus(p));
    }
    for (auto &t : out_tables)
        out_ptrs.push_back(&t);
    BaseConverter bc(moduli_, out_base);

    auto digit = randomPoly(Rep::Eval, 9);
    RnsPoly fused_s = scalar_->nttBconvNtt(digit, table_ptrs_, bc,
                                           out_ptrs);
    RnsPoly fused_p = parallel_->nttBconvNtt(digit, table_ptrs_, bc,
                                             out_ptrs);
    expectIdentical(fused_s, fused_p);

    // The fused path must equal the unfused INTT -> BConv -> NTT
    // pipeline bit for bit.
    RnsPoly unfused = digit;
    scalar_->nttInverse(unfused, table_ptrs_);
    RnsPoly conv = bc.convert(unfused);
    scalar_->nttForward(conv, out_ptrs);
    expectIdentical(fused_s, conv);
}

TEST_P(BackendParityTest, EvkMulAccParity)
{
    // Emulate the key-switch shapes: digit spans nq + np limbs, evk
    // spans full_nq + np limbs with full_nq >= nq.
    const size_t np = 2;
    if (limbs_ <= np)
        GTEST_SKIP() << "shape too small for an extended basis";
    const size_t nq = limbs_ - np;
    const size_t full_nq = nq + 1;

    // key moduli: nq q-primes then np specials (reuse the fixture
    // moduli; exact values are irrelevant for parity).
    std::vector<Modulus> key_moduli(moduli_.begin(), moduli_.end());

    auto digit = randomPoly(Rep::Eval, 10, nq + np);
    Rng rng(11);
    RnsPoly evk_b(degree_, full_nq + np, Rep::Eval);
    RnsPoly evk_a(degree_, full_nq + np, Rep::Eval);
    for (size_t l = 0; l < full_nq + np; ++l) {
        const size_t ml = l < nq ? l : (l >= full_nq ? nq + (l - full_nq)
                                                     : 0);
        auto vb = rng.uniformVector(degree_, moduli_[ml].value());
        auto va = rng.uniformVector(degree_, moduli_[ml].value());
        std::copy(vb.begin(), vb.end(), evk_b.limb(l));
        std::copy(va.begin(), va.end(), evk_a.limb(l));
    }

    RnsPoly bs(degree_, nq + np, Rep::Eval), as(degree_, nq + np,
                                                Rep::Eval);
    RnsPoly bp(degree_, nq + np, Rep::Eval), ap(degree_, nq + np,
                                                Rep::Eval);
    scalar_->evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli,
                       bs, as);
    parallel_->evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli,
                         bp, ap);
    expectIdentical(bs, bp);
    expectIdentical(as, ap);
}

TEST_P(BackendParityTest, StatsRecordWhatExecuted)
{
    auto a = randomPoly(Rep::Eval, 12);
    auto b = randomPoly(Rep::Eval, 13);
    RnsPoly r(degree_, limbs_, Rep::Eval);

    for (KernelBackend *kb : {scalar_.get(), parallel_.get()}) {
        kb->resetStats();
        kb->mulEval(a, b, moduli_, r);
        // stats() returns a merged snapshot by value; keep it alive
        // while inspecting per-kernel counters.
        const KernelStats st = kb->stats();
        const KernelCounter &c = st.at(KernelOp::MulEval);
        EXPECT_EQ(c.calls, 1u);
        EXPECT_EQ(c.limbs, limbs_);
        EXPECT_EQ(c.mults, limbs_ * degree_);
        EXPECT_EQ(st.totalCalls(), 1u);
        kb->resetStats();
        EXPECT_EQ(kb->stats().totalCalls(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackendParityTest,
    ::testing::Values(Shape{256, 3}, Shape{512, 6}, Shape{1024, 8},
                      Shape{2048, 4}));

} // namespace
} // namespace ark
