/**
 * @file
 * Bit-exactness of the ParallelBackend and the SimdBackend against the
 * ScalarBackend for every kernel, across several (N, L) shapes,
 * including the fused nttBconvNtt key-switch digit path — plus sanity
 * checks that the engines record KernelStats for what they executed.
 *
 * Also gates the lazy-reduction kernel pass: the Harvey lazy NTT must
 * round-trip and match the strict reference transforms across every
 * parameter-set prime width, the fused cache-blocked BConv must equal
 * the two-stage pipeline, and kernels running over recycled
 * (stale-content) pool buffers must be bit-identical to fresh
 * allocations on both backends.
 *
 * The SimdTierParityTest suite sweeps the vector kernels per ISA tier
 * (skipping tiers the host cannot run), including the sub-vector-degree
 * and wide-modulus fallbacks onto the scalar transforms.
 */

#include <gtest/gtest.h>

#include "ckks/params.h"
#include "common/random.h"
#include "rns/backend.h"
#include "rns/cpu_features.h"
#include "rns/poly_pool.h"
#include "rns/primes.h"

namespace ark {
namespace {

struct Shape
{
    size_t degree;
    size_t limbs;
};

class BackendParityTest : public ::testing::TestWithParam<Shape>
{
  protected:
    void SetUp() override
    {
        degree_ = GetParam().degree;
        limbs_ = GetParam().limbs;
        auto qs = generatePrimes(40, limbs_, degree_);
        for (u64 q : qs) {
            moduli_.emplace_back(q);
            tables_.emplace_back(degree_, Modulus(q));
        }
        for (auto &t : tables_)
            table_ptrs_.push_back(&t);

        scalar_ = makeKernelBackend(BackendKind::Scalar);
        parallel_ = makeKernelBackend(BackendKind::Parallel, 4);
        simd_ = makeKernelBackend(BackendKind::Simd);
    }

    RnsPoly randomPoly(Rep rep, u64 seed, size_t limbs = 0) const
    {
        if (limbs == 0)
            limbs = limbs_;
        Rng rng(seed);
        RnsPoly p(degree_, limbs, rep);
        for (size_t l = 0; l < limbs; ++l) {
            auto v = rng.uniformVector(degree_,
                                       moduli_[l % moduli_.size()].value());
            std::copy(v.begin(), v.end(), p.limb(l));
        }
        return p;
    }

    static void expectIdentical(const RnsPoly &a, const RnsPoly &b)
    {
        ASSERT_EQ(a.numLimbs(), b.numLimbs());
        ASSERT_EQ(a.degree(), b.degree());
        EXPECT_EQ(a.rep(), b.rep());
        for (size_t l = 0; l < a.numLimbs(); ++l) {
            for (size_t i = 0; i < a.degree(); ++i) {
                ASSERT_EQ(a.limb(l)[i], b.limb(l)[i])
                    << "limb " << l << " word " << i;
            }
        }
    }

    size_t degree_ = 0;
    size_t limbs_ = 0;
    std::vector<Modulus> moduli_;
    std::vector<NttTables> tables_;
    std::vector<const NttTables *> table_ptrs_;
    std::unique_ptr<KernelBackend> scalar_;
    std::unique_ptr<KernelBackend> parallel_;
    std::unique_ptr<KernelBackend> simd_; ///< best tier the host runs
};

TEST_P(BackendParityTest, ElementwiseKernels)
{
    auto a = randomPoly(Rep::Eval, 1);
    auto b = randomPoly(Rep::Eval, 2);
    std::vector<u64> scalars;
    for (auto &m : moduli_)
        scalars.push_back(m.value() / 5 + 1);

    auto check2 = [&](auto &&op) {
        RnsPoly rs(degree_, limbs_, Rep::Eval);
        RnsPoly rp(degree_, limbs_, Rep::Eval);
        RnsPoly rv(degree_, limbs_, Rep::Eval);
        op(*scalar_, rs);
        op(*parallel_, rp);
        op(*simd_, rv);
        expectIdentical(rs, rp);
        expectIdentical(rs, rv);
    };

    check2([&](KernelBackend &kb, RnsPoly &r) { kb.add(a, b, moduli_, r); });
    check2([&](KernelBackend &kb, RnsPoly &r) { kb.sub(a, b, moduli_, r); });
    check2([&](KernelBackend &kb, RnsPoly &r) { kb.neg(a, moduli_, r); });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.mulEval(a, b, moduli_, r);
    });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.mulScalar(a, scalars, moduli_, r);
    });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.addScalar(a, scalars, moduli_, r);
    });
    check2([&](KernelBackend &kb, RnsPoly &r) {
        kb.subMulScalar(a, b, scalars, moduli_, r);
    });

    // MAC accumulates into the result: seed both sides identically.
    RnsPoly acc_s = randomPoly(Rep::Eval, 3);
    RnsPoly acc_p = acc_s;
    RnsPoly acc_v = acc_s;
    scalar_->mulAccEval(a, b, moduli_, acc_s);
    parallel_->mulAccEval(a, b, moduli_, acc_p);
    simd_->mulAccEval(a, b, moduli_, acc_v);
    expectIdentical(acc_s, acc_p);
    expectIdentical(acc_s, acc_v);
}

TEST_P(BackendParityTest, MonomialMulAndLimbEmbed)
{
    auto a = randomPoly(Rep::Coeff, 4);
    for (size_t shift : {size_t(0), size_t(1), degree_ / 2,
                         degree_ - 1}) {
        RnsPoly rs(degree_, limbs_, Rep::Coeff);
        RnsPoly rp(degree_, limbs_, Rep::Coeff);
        RnsPoly rv(degree_, limbs_, Rep::Coeff);
        scalar_->monomialMul(a, shift, moduli_, rs);
        parallel_->monomialMul(a, shift, moduli_, rp);
        simd_->monomialMul(a, shift, moduli_, rv);
        expectIdentical(rs, rp);
        expectIdentical(rs, rv);
    }

    Rng rng(5);
    auto src = rng.uniformVector(degree_, moduli_[0].value());
    RnsPoly es(degree_, limbs_, Rep::Coeff);
    RnsPoly ep(degree_, limbs_, Rep::Coeff);
    RnsPoly ev(degree_, limbs_, Rep::Coeff);
    scalar_->limbEmbed(src, moduli_[0], moduli_, es);
    parallel_->limbEmbed(src, moduli_[0], moduli_, ep);
    simd_->limbEmbed(src, moduli_[0], moduli_, ev);
    expectIdentical(es, ep);
    expectIdentical(es, ev);
}

TEST_P(BackendParityTest, NttRoundTrip)
{
    auto a = randomPoly(Rep::Coeff, 6);
    auto original = a;
    auto b = a;
    auto c = a;

    scalar_->nttForward(a, table_ptrs_);
    parallel_->nttForward(b, table_ptrs_);
    simd_->nttForward(c, table_ptrs_);
    expectIdentical(a, b);
    expectIdentical(a, c);

    scalar_->nttInverse(a, table_ptrs_);
    parallel_->nttInverse(b, table_ptrs_);
    simd_->nttInverse(c, table_ptrs_);
    expectIdentical(a, b);
    expectIdentical(a, c);
    expectIdentical(a, original);
}

TEST_P(BackendParityTest, BConvMatchesScalarAndReference)
{
    const size_t nb = limbs_;
    auto pc = generatePrimes(41, 3, degree_);
    std::vector<Modulus> out_base;
    for (u64 p : pc)
        out_base.emplace_back(p);
    BaseConverter bc(moduli_, out_base);

    auto in = randomPoly(Rep::Coeff, 7, nb);
    RnsPoly rs = scalar_->bconv(bc, in);
    RnsPoly rp = parallel_->bconv(bc, in);
    RnsPoly rv = simd_->bconv(bc, in);
    expectIdentical(rs, rp);
    expectIdentical(rs, rv);
    // Cross-check against the standalone reference implementation.
    RnsPoly ref = bc.convert(in);
    expectIdentical(rs, ref);
}

TEST_P(BackendParityTest, AutomorphismBothReps)
{
    const u64 g = galoisElt(3, degree_);
    Automorphism am(g, degree_);
    for (Rep rep : {Rep::Coeff, Rep::Eval}) {
        auto p = randomPoly(rep, 8);
        RnsPoly rs = scalar_->automorphism(am, p, moduli_);
        RnsPoly rp = parallel_->automorphism(am, p, moduli_);
        RnsPoly rv = simd_->automorphism(am, p, moduli_);
        expectIdentical(rs, rp);
        expectIdentical(rs, rv);
    }
}

TEST_P(BackendParityTest, FusedNttBconvNttMatchesUnfusedPipeline)
{
    auto pc = generatePrimes(41, 4, degree_);
    std::vector<Modulus> out_base;
    std::vector<NttTables> out_tables;
    std::vector<const NttTables *> out_ptrs;
    for (u64 p : pc) {
        out_base.emplace_back(p);
        out_tables.emplace_back(degree_, Modulus(p));
    }
    for (auto &t : out_tables)
        out_ptrs.push_back(&t);
    BaseConverter bc(moduli_, out_base);

    auto digit = randomPoly(Rep::Eval, 9);
    RnsPoly fused_s = scalar_->nttBconvNtt(digit, table_ptrs_, bc,
                                           out_ptrs);
    RnsPoly fused_p = parallel_->nttBconvNtt(digit, table_ptrs_, bc,
                                             out_ptrs);
    RnsPoly fused_v = simd_->nttBconvNtt(digit, table_ptrs_, bc,
                                         out_ptrs);
    expectIdentical(fused_s, fused_p);
    expectIdentical(fused_s, fused_v);

    // The fused path must equal the unfused INTT -> BConv -> NTT
    // pipeline bit for bit.
    RnsPoly unfused = digit;
    scalar_->nttInverse(unfused, table_ptrs_);
    RnsPoly conv = bc.convert(unfused);
    scalar_->nttForward(conv, out_ptrs);
    expectIdentical(fused_s, conv);
}

TEST_P(BackendParityTest, EvkMulAccParity)
{
    // Emulate the key-switch shapes: digit spans nq + np limbs, evk
    // spans full_nq + np limbs with full_nq >= nq.
    const size_t np = 2;
    if (limbs_ <= np)
        GTEST_SKIP() << "shape too small for an extended basis";
    const size_t nq = limbs_ - np;
    const size_t full_nq = nq + 1;

    // key moduli: nq q-primes then np specials (reuse the fixture
    // moduli; exact values are irrelevant for parity).
    std::vector<Modulus> key_moduli(moduli_.begin(), moduli_.end());

    auto digit = randomPoly(Rep::Eval, 10, nq + np);
    Rng rng(11);
    RnsPoly evk_b(degree_, full_nq + np, Rep::Eval);
    RnsPoly evk_a(degree_, full_nq + np, Rep::Eval);
    for (size_t l = 0; l < full_nq + np; ++l) {
        const size_t ml = l < nq ? l : (l >= full_nq ? nq + (l - full_nq)
                                                     : 0);
        auto vb = rng.uniformVector(degree_, moduli_[ml].value());
        auto va = rng.uniformVector(degree_, moduli_[ml].value());
        std::copy(vb.begin(), vb.end(), evk_b.limb(l));
        std::copy(va.begin(), va.end(), evk_a.limb(l));
    }

    RnsPoly bs(degree_, nq + np, Rep::Eval), as(degree_, nq + np,
                                                Rep::Eval);
    RnsPoly bp(degree_, nq + np, Rep::Eval), ap(degree_, nq + np,
                                                Rep::Eval);
    RnsPoly bv(degree_, nq + np, Rep::Eval), av(degree_, nq + np,
                                                Rep::Eval);
    scalar_->evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli,
                       bs, as);
    parallel_->evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli,
                         bp, ap);
    simd_->evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli,
                     bv, av);
    expectIdentical(bs, bp);
    expectIdentical(as, ap);
    expectIdentical(bs, bv);
    expectIdentical(as, av);
}

TEST_P(BackendParityTest, StatsRecordWhatExecuted)
{
    auto a = randomPoly(Rep::Eval, 12);
    auto b = randomPoly(Rep::Eval, 13);
    RnsPoly r(degree_, limbs_, Rep::Eval);

    for (KernelBackend *kb :
         {scalar_.get(), parallel_.get(), simd_.get()}) {
        kb->resetStats();
        kb->mulEval(a, b, moduli_, r);
        // stats() returns a merged snapshot by value; keep it alive
        // while inspecting per-kernel counters.
        const KernelStats st = kb->stats();
        const KernelCounter &c = st.at(KernelOp::MulEval);
        EXPECT_EQ(c.calls, 1u);
        EXPECT_EQ(c.limbs, limbs_);
        EXPECT_EQ(c.mults, limbs_ * degree_);
        EXPECT_EQ(st.totalCalls(), 1u);
        kb->resetStats();
        EXPECT_EQ(kb->stats().totalCalls(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackendParityTest,
    ::testing::Values(Shape{256, 3}, Shape{512, 6}, Shape{1024, 8},
                      Shape{2048, 4}));

// ---------------------------------------------------------------------------
// Lazy-reduction vs strict reference kernels
// ---------------------------------------------------------------------------

/**
 * The Harvey lazy (I)NTT must be bit-identical to the strict reference
 * transforms on random data for every prime width a shipped parameter
 * set uses (q0, scale and special primes of each preset), and the
 * lazy round-trip must be the identity.
 */
TEST(LazyStrictParityTest, NttAcrossParameterSetPrimes)
{
    struct PresetPrimes
    {
        std::string name;
        size_t degree;
        std::vector<int> widths;
    };
    std::vector<PresetPrimes> presets;
    for (const CkksParams &p :
         {CkksParams::testTiny(), CkksParams::testSmall(),
          CkksParams::testBoot()}) {
        // Test at a reduced degree with the preset's real prime
        // widths: NttTables work is O(N log N) per prime and the full
        // bootstrap-size rings would dominate suite runtime without
        // covering different code paths.
        const size_t degree = std::min<size_t>(p.degree, 2048);
        presets.push_back(
            {p.name, degree, {p.log_q0, p.log_scale, p.log_special}});
    }

    u64 seed = 40;
    for (const auto &preset : presets) {
        for (int width : preset.widths) {
            SCOPED_TRACE(preset.name + " width " +
                         std::to_string(width));
            auto primes = generatePrimes(width, 2, preset.degree);
            for (u64 q : primes) {
                NttTables tables(preset.degree, Modulus(q));
                Rng rng(seed++);
                auto v = rng.uniformVector(preset.degree, q);

                auto lazy = v;
                auto strict = v;
                tables.forward(lazy.data());
                tables.forwardStrict(strict.data());
                EXPECT_EQ(lazy, strict) << "forward diverged, q=" << q;

                tables.inverse(lazy.data());
                tables.inverseStrict(strict.data());
                EXPECT_EQ(lazy, strict) << "inverse diverged, q=" << q;
                EXPECT_EQ(lazy, v) << "round-trip not identity, q=" << q;
            }
        }
    }
}

/** Forward/inverse parity on tiny and odd-shaped degrees (the
 *  flattened last-stage specializations cover t = 1, 2 explicitly). */
TEST(LazyStrictParityTest, NttSmallDegrees)
{
    u64 seed = 60;
    for (size_t degree : {size_t(2), size_t(4), size_t(8), size_t(16),
                          size_t(64)}) {
        auto primes = generatePrimes(30, 2, degree);
        for (u64 q : primes) {
            NttTables tables(degree, Modulus(q));
            Rng rng(seed++);
            auto v = rng.uniformVector(degree, q);
            auto lazy = v, strict = v;
            tables.forward(lazy.data());
            tables.forwardStrict(strict.data());
            EXPECT_EQ(lazy, strict) << "N=" << degree << " q=" << q;
            tables.inverse(lazy.data());
            tables.inverseStrict(strict.data());
            EXPECT_EQ(lazy, strict) << "N=" << degree << " q=" << q;
            EXPECT_EQ(lazy, v);
        }
    }
}

/** Fused cache-blocked convert == materialized two-stage pipeline on
 *  randomized bases, including non-multiple-of-tile degrees. */
TEST(LazyStrictParityTest, FusedBconvMatchesTwoStage)
{
    u64 seed = 80;
    for (size_t degree : {size_t(256), size_t(1024)}) {
        for (size_t nb : {size_t(1), size_t(3), size_t(7),
                          size_t(13)}) {
            SCOPED_TRACE("N=" + std::to_string(degree) +
                         " nb=" + std::to_string(nb));
            auto pb = generatePrimes(45, nb, degree);
            auto pc = generatePrimes(50, 5, degree, pb);
            std::vector<Modulus> mb, mc;
            for (u64 p : pb)
                mb.emplace_back(p);
            for (u64 p : pc)
                mc.emplace_back(p);
            BaseConverter bc(mb, mc);

            Rng rng(seed++);
            RnsPoly in(degree, nb, Rep::Coeff);
            for (size_t l = 0; l < nb; ++l) {
                auto v = rng.uniformVector(degree, pb[l]);
                std::copy(v.begin(), v.end(), in.limb(l));
            }

            RnsPoly fused = bc.convert(in);
            RnsPoly two = bc.matmulStage(bc.scaleStage(in));
            ASSERT_EQ(fused.numLimbs(), two.numLimbs());
            for (size_t l = 0; l < fused.numLimbs(); ++l) {
                for (size_t c = 0; c < degree; ++c) {
                    ASSERT_EQ(fused.limb(l)[c], two.limb(l)[c])
                        << "limb " << l << " coeff " << c;
                }
            }
        }
    }
}

/**
 * Kernels drawing outputs and scratch from a deliberately polluted
 * pool must produce bit-identical results to a backend with an empty
 * pool, on both engines — stale buffer words must never leak into
 * results.
 */
TEST(LazyStrictParityTest, PooledVersusFreshBitEquality)
{
    const size_t degree = 512;
    const size_t limbs = 6;
    auto qs = generatePrimes(40, limbs, degree);
    std::vector<Modulus> moduli;
    std::vector<NttTables> tables;
    std::vector<const NttTables *> table_ptrs;
    for (u64 q : qs) {
        moduli.emplace_back(q);
        tables.emplace_back(degree, Modulus(q));
    }
    for (auto &t : tables)
        table_ptrs.push_back(&t);
    auto pc = generatePrimes(41, 4, degree);
    std::vector<Modulus> out_base;
    std::vector<NttTables> out_tables;
    std::vector<const NttTables *> out_ptrs;
    for (u64 p : pc) {
        out_base.emplace_back(p);
        out_tables.emplace_back(degree, Modulus(p));
    }
    for (auto &t : out_tables)
        out_ptrs.push_back(&t);
    BaseConverter bc(moduli, out_base);
    Automorphism am(galoisElt(3, degree), degree);

    Rng rng(100);
    RnsPoly in(degree, limbs, Rep::Coeff);
    for (size_t l = 0; l < limbs; ++l) {
        auto v = rng.uniformVector(degree, qs[l]);
        std::copy(v.begin(), v.end(), in.limb(l));
    }

    for (BackendKind kind :
         {BackendKind::Scalar, BackendKind::Parallel}) {
        SCOPED_TRACE(kind == BackendKind::Scalar ? "scalar"
                                                 : "parallel");
        auto fresh = makeKernelBackend(kind, 4);
        auto pooled = makeKernelBackend(kind, 4);

        // Pollute the pooled backend's free lists with garbage-filled
        // buffers of exactly the shapes the kernels will request.
        auto pollute = [&](size_t nl, Rep rep) {
            RnsPoly junk = pooled->pool().acquire(degree, nl, rep);
            for (size_t l = 0; l < nl; ++l) {
                for (size_t c = 0; c < degree; ++c)
                    junk.limb(l)[c] = 0xDEADBEEFCAFEF00DULL;
            }
            pooled->pool().release(std::move(junk));
        };
        pollute(limbs, Rep::Coeff);
        pollute(out_base.size(), Rep::Coeff);

        RnsPoly bconv_fresh = fresh->bconv(bc, in);
        RnsPoly bconv_pooled = pooled->bconv(bc, in);
        for (size_t l = 0; l < bconv_fresh.numLimbs(); ++l) {
            for (size_t c = 0; c < degree; ++c) {
                ASSERT_EQ(bconv_fresh.limb(l)[c],
                          bconv_pooled.limb(l)[c])
                    << "bconv limb " << l << " coeff " << c;
            }
        }

        pollute(limbs, Rep::Coeff);
        RnsPoly rot_fresh = fresh->automorphism(am, in, moduli);
        RnsPoly rot_pooled = pooled->automorphism(am, in, moduli);
        for (size_t l = 0; l < rot_fresh.numLimbs(); ++l) {
            for (size_t c = 0; c < degree; ++c) {
                ASSERT_EQ(rot_fresh.limb(l)[c], rot_pooled.limb(l)[c])
                    << "automorphism limb " << l << " coeff " << c;
            }
        }

        RnsPoly digit = in;
        digit.setRep(Rep::Eval);
        pollute(limbs, Rep::Coeff);
        pollute(out_base.size(), Rep::Coeff);
        RnsPoly ks_fresh =
            fresh->nttBconvNtt(digit, table_ptrs, bc, out_ptrs);
        RnsPoly ks_pooled =
            pooled->nttBconvNtt(digit, table_ptrs, bc, out_ptrs);
        for (size_t l = 0; l < ks_fresh.numLimbs(); ++l) {
            for (size_t c = 0; c < degree; ++c) {
                ASSERT_EQ(ks_fresh.limb(l)[c], ks_pooled.limb(l)[c])
                    << "nttBconvNtt limb " << l << " coeff " << c;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SimdBackend tier sweep
// ---------------------------------------------------------------------------

/**
 * A SimdBackend capped at exactly @p tier, or nullptr when the host
 * cannot run it (the backend clamps the request to what CPUID reports,
 * so a request coming back at a lower tier means "unavailable" — the
 * caller should GTEST_SKIP, keeping the suite green on any machine).
 */
std::unique_ptr<SimdBackend>
simdAtTier(SimdTier tier)
{
    auto be = std::make_unique<SimdBackend>(tier);
    if (be->tier() != tier)
        return nullptr;
    return be;
}

class SimdTierParityTest : public ::testing::TestWithParam<SimdTier>
{
};

/**
 * NTT parity against the scalar backend across every prime width the
 * shipped parameter sets use plus the widest supported one. Width 61
 * exercises the q >= 2^60 guard, where the vector kernels' widened
 * lazy bounds no longer hold and the backend must fall back to the
 * scalar transforms rather than compute garbage.
 */
TEST_P(SimdTierParityTest, NttParityAcrossPrimeWidths)
{
    auto simd = simdAtTier(GetParam());
    if (!simd)
        GTEST_SKIP() << "tier not available on this host";
    ScalarBackend scalar;

    const size_t degree = 2048;
    u64 seed = 200;
    for (int width : {30, 40, 50, 55, 59, 60, 61}) {
        SCOPED_TRACE("width " + std::to_string(width));
        auto qs = generatePrimes(width, 2, degree);
        for (u64 q : qs) {
            NttTables tables(degree, Modulus(q));
            std::vector<const NttTables *> tp{&tables};
            Rng rng(seed++);
            RnsPoly p(degree, 1, Rep::Coeff);
            auto v = rng.uniformVector(degree, q);
            std::copy(v.begin(), v.end(), p.limb(0));
            RnsPoly ps = p;

            simd->nttForward(p, tp);
            scalar.nttForward(ps, tp);
            for (size_t i = 0; i < degree; ++i)
                ASSERT_EQ(p.limb(0)[i], ps.limb(0)[i])
                    << "forward q=" << q << " i=" << i;

            simd->nttInverse(p, tp);
            scalar.nttInverse(ps, tp);
            for (size_t i = 0; i < degree; ++i) {
                ASSERT_EQ(p.limb(0)[i], ps.limb(0)[i])
                    << "inverse q=" << q << " i=" << i;
                ASSERT_EQ(p.limb(0)[i], v[i])
                    << "round trip q=" << q << " i=" << i;
            }
        }
    }
}

/** Tiny and sub-vector degrees: below min_ntt_degree the backend must
 *  fall back to the scalar transform; at and above it the window
 *  (shuffle) paths and the fused stage pairs all get exercised. */
TEST_P(SimdTierParityTest, NttParityTinyDegrees)
{
    auto simd = simdAtTier(GetParam());
    if (!simd)
        GTEST_SKIP() << "tier not available on this host";
    ScalarBackend scalar;

    u64 seed = 300;
    for (size_t degree : {size_t(2), size_t(4), size_t(8), size_t(16),
                          size_t(32), size_t(64), size_t(4096)}) {
        SCOPED_TRACE("degree " + std::to_string(degree));
        auto qs = generatePrimes(45, 1, degree);
        NttTables tables(degree, Modulus(qs[0]));
        std::vector<const NttTables *> tp{&tables};
        Rng rng(seed++);
        RnsPoly p(degree, 1, Rep::Coeff);
        auto v = rng.uniformVector(degree, qs[0]);
        std::copy(v.begin(), v.end(), p.limb(0));
        RnsPoly ps = p;

        simd->nttForward(p, tp);
        scalar.nttForward(ps, tp);
        for (size_t i = 0; i < degree; ++i)
            ASSERT_EQ(p.limb(0)[i], ps.limb(0)[i]) << "forward i=" << i;
        simd->nttInverse(p, tp);
        scalar.nttInverse(ps, tp);
        for (size_t i = 0; i < degree; ++i) {
            ASSERT_EQ(p.limb(0)[i], ps.limb(0)[i]) << "inverse i=" << i;
            ASSERT_EQ(p.limb(0)[i], v[i]) << "round trip i=" << i;
        }
    }
}

/** Fused BConv tiles across odd base sizes (tile remainders) per tier. */
TEST_P(SimdTierParityTest, BconvParityOddBases)
{
    auto simd = simdAtTier(GetParam());
    if (!simd)
        GTEST_SKIP() << "tier not available on this host";
    ScalarBackend scalar;

    const size_t degree = 256;
    u64 seed = 400;
    for (size_t nb : {size_t(1), size_t(3), size_t(7)}) {
        SCOPED_TRACE("nb " + std::to_string(nb));
        auto pb = generatePrimes(45, nb, degree);
        auto pc = generatePrimes(50, 3, degree, pb);
        std::vector<Modulus> mb, mc;
        for (u64 p : pb)
            mb.emplace_back(p);
        for (u64 p : pc)
            mc.emplace_back(p);
        BaseConverter bc(mb, mc);

        Rng rng(seed++);
        RnsPoly in(degree, nb, Rep::Coeff);
        for (size_t l = 0; l < nb; ++l) {
            auto v = rng.uniformVector(degree, pb[l]);
            std::copy(v.begin(), v.end(), in.limb(l));
        }
        RnsPoly rs = scalar.bconv(bc, in);
        RnsPoly rv = simd->bconv(bc, in);
        ASSERT_EQ(rs.numLimbs(), rv.numLimbs());
        for (size_t l = 0; l < rs.numLimbs(); ++l) {
            for (size_t c = 0; c < degree; ++c)
                ASSERT_EQ(rs.limb(l)[c], rv.limb(l)[c])
                    << "limb " << l << " coeff " << c;
        }
    }
}

/** evk MAC digit path per tier, including the full_nq > nq tail. */
TEST_P(SimdTierParityTest, EvkMulAccParityPerTier)
{
    auto simd = simdAtTier(GetParam());
    if (!simd)
        GTEST_SKIP() << "tier not available on this host";
    ScalarBackend scalar;

    const size_t degree = 256;
    const size_t np = 2, nq = 3, full_nq = nq + 1;
    auto qs = generatePrimes(40, full_nq + np, degree);
    std::vector<Modulus> key_moduli;
    for (u64 q : qs)
        key_moduli.emplace_back(q);

    Rng rng(500);
    RnsPoly digit(degree, nq + np, Rep::Eval);
    RnsPoly evk_b(degree, full_nq + np, Rep::Eval);
    RnsPoly evk_a(degree, full_nq + np, Rep::Eval);
    for (size_t l = 0; l < nq + np; ++l) {
        auto v = rng.uniformVector(degree, key_moduli[l].value());
        std::copy(v.begin(), v.end(), digit.limb(l));
    }
    for (size_t l = 0; l < full_nq + np; ++l) {
        auto vb = rng.uniformVector(degree, key_moduli[l].value());
        auto va = rng.uniformVector(degree, key_moduli[l].value());
        std::copy(vb.begin(), vb.end(), evk_b.limb(l));
        std::copy(va.begin(), va.end(), evk_a.limb(l));
    }

    RnsPoly bs(degree, nq + np, Rep::Eval), as(degree, nq + np,
                                               Rep::Eval);
    RnsPoly bv(degree, nq + np, Rep::Eval), av(degree, nq + np,
                                               Rep::Eval);
    scalar.evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli, bs,
                     as);
    simd->evkMulAcc(digit, evk_b, evk_a, nq, full_nq, key_moduli, bv,
                    av);
    for (size_t l = 0; l < nq + np; ++l) {
        for (size_t c = 0; c < degree; ++c) {
            ASSERT_EQ(bs.limb(l)[c], bv.limb(l)[c])
                << "b limb " << l << " coeff " << c;
            ASSERT_EQ(as.limb(l)[c], av.limb(l)[c])
                << "a limb " << l << " coeff " << c;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Tiers, SimdTierParityTest,
                         ::testing::Values(SimdTier::Scalar,
                                           SimdTier::Avx2,
                                           SimdTier::Avx512),
                         [](const auto &info) {
                             return std::string(
                                 simdTierName(info.param));
                         });

} // namespace
} // namespace ark
