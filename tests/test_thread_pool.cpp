/**
 * @file
 * Stress tests for the work-stealing thread pool — precisely the
 * cases the serving runtime hits: many concurrent parallelFor
 * callers, nested submits from inside jobs of the same pool,
 * exceptions thrown from tasks, and pool teardown right after heavy
 * concurrent use.
 */

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace ark {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    for (size_t count : {size_t(0), size_t(1), size_t(2), size_t(7),
                         size_t(64), size_t(301)}) {
        std::vector<std::atomic<int>> hits(count);
        pool.parallelFor(count,
                         [&](size_t i) { hits[i].fetch_add(1); });
        for (size_t i = 0; i < count; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(ThreadPool, ConcurrentCallersShareOnePool)
{
    ThreadPool pool(4);
    std::atomic<size_t> total{0};
    const size_t callers = 6, rounds = 40, batch = 16;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < callers; ++c) {
        threads.emplace_back([&] {
            for (size_t r = 0; r < rounds; ++r)
                pool.parallelFor(batch,
                                 [&](size_t) { total.fetch_add(1); });
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(total.load(), callers * rounds * batch);
}

TEST(ThreadPool, NestedSubmitsOnSamePool)
{
    // A job may call parallelFor on its own pool: the nested waiter
    // helps drain instead of blocking, so this must complete even on
    // a single-worker pool.
    for (size_t workers : {size_t(1), size_t(2), size_t(4)}) {
        ThreadPool pool(workers);
        std::atomic<size_t> inner_runs{0};
        pool.parallelFor(4, [&](size_t) {
            pool.parallelFor(8,
                             [&](size_t) { inner_runs.fetch_add(1); });
        });
        EXPECT_EQ(inner_runs.load(), 4u * 8u) << workers << " workers";
    }
}

TEST(ThreadPool, TriplyNestedSubmits)
{
    ThreadPool pool(2);
    std::atomic<size_t> leaf{0};
    pool.parallelFor(3, [&](size_t) {
        pool.parallelFor(3, [&](size_t) {
            pool.parallelFor(3, [&](size_t) { leaf.fetch_add(1); });
        });
    });
    EXPECT_EQ(leaf.load(), 27u);
}

TEST(ThreadPool, ExceptionFromTaskPropagatesToCaller)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(16);
    EXPECT_THROW(pool.parallelFor(16,
                                  [&](size_t i) {
                                      hits[i].fetch_add(1);
                                      if (i == 5)
                                          throw std::runtime_error(
                                              "task 5 failed");
                                  }),
                 std::runtime_error);
    // Every index still ran (the batch drains before rethrowing).
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;

    // The pool stays usable after an exception.
    std::atomic<size_t> after{0};
    pool.parallelFor(32, [&](size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 32u);
}

TEST(ThreadPool, ExceptionMessageSurvives)
{
    ThreadPool pool(2);
    try {
        pool.parallelFor(
            4, [&](size_t) { throw std::runtime_error("boom"); });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom");
    }
}

TEST(ThreadPool, ExceptionFromNestedJobPropagates)
{
    ThreadPool pool(2);
    std::atomic<size_t> outer_done{0};
    EXPECT_THROW(
        pool.parallelFor(3,
                         [&](size_t o) {
                             pool.parallelFor(4, [&](size_t i) {
                                 if (o == 1 && i == 2)
                                     throw std::runtime_error("inner");
                             });
                             outer_done.fetch_add(1);
                         }),
        std::runtime_error);
    // Outer jobs other than the thrower still completed.
    EXPECT_GE(outer_done.load(), 2u);
}

TEST(ThreadPool, TeardownAfterConcurrentUse)
{
    // Construct, hammer from several threads, destroy — repeatedly.
    // Exercises the shutdown handshake against racing completions.
    for (int iter = 0; iter < 10; ++iter) {
        std::atomic<size_t> total{0};
        {
            ThreadPool pool(3);
            std::vector<std::thread> threads;
            for (int c = 0; c < 3; ++c) {
                threads.emplace_back([&] {
                    for (int r = 0; r < 5; ++r)
                        pool.parallelFor(
                            16, [&](size_t) { total.fetch_add(1); });
                });
            }
            for (auto &t : threads)
                t.join();
            // Pool destroyed immediately after the last batch.
        }
        EXPECT_EQ(total.load(), 3u * 5u * 16u);
    }
}

TEST(ThreadPool, RapidCreateDestroy)
{
    for (int i = 0; i < 50; ++i) {
        ThreadPool pool(1 + i % 4);
        std::atomic<size_t> n{0};
        pool.parallelFor(8, [&](size_t) { n.fetch_add(1); });
        ASSERT_EQ(n.load(), 8u);
    }
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

} // namespace
} // namespace ark
