/**
 * @file
 * Tests for the 4-step NTT with OF-Twist: round trips, agreement with
 * a naive negacyclic DFT evaluation, and the twisting-factor traffic
 * accounting behind the paper's Section V-C savings claims.
 */

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/random.h"
#include "rns/four_step_ntt.h"
#include "rns/primes.h"

namespace ark {
namespace {

class FourStepTest : public ::testing::TestWithParam<size_t>
{
  protected:
    void SetUp() override
    {
        degree_ = GetParam();
        prime_ = generatePrimes(45, 1, degree_).front();
        ntt_ = std::make_unique<FourStepNtt>(degree_, Modulus(prime_));
    }

    size_t degree_;
    u64 prime_;
    std::unique_ptr<FourStepNtt> ntt_;
};

TEST_P(FourStepTest, RoundTrip)
{
    Rng rng(201);
    auto v = rng.uniformVector(degree_, prime_);
    auto back = ntt_->inverse(ntt_->forward(v));
    EXPECT_EQ(back, v);
}

TEST_P(FourStepTest, MatchesNaiveNegacyclicDft)
{
    if (degree_ > 256)
        GTEST_SKIP() << "naive DFT too slow at this degree";
    Rng rng(202);
    Modulus q(prime_);
    auto a = rng.uniformVector(degree_, prime_);

    // Naive: out[k1*R + k2] = sum_i a_i psi^i omega^{i(k1*R+k2)}.
    u64 psi = rootOfUnity(2 * degree_, prime_);
    u64 omega = q.mul(psi, psi);
    std::vector<u64> expect(degree_);
    for (size_t k = 0; k < degree_; ++k) {
        u64 acc = 0;
        for (size_t i = 0; i < degree_; ++i) {
            u64 tw = q.mul(q.pow(psi, i), q.pow(omega, (i * k) % degree_));
            acc = q.add(acc, q.mul(a[i], tw));
        }
        expect[k] = acc;
    }
    EXPECT_EQ(ntt_->forward(a), expect);
}

TEST_P(FourStepTest, PointwiseMulIsNegacyclicConvolution)
{
    if (degree_ > 256)
        GTEST_SKIP() << "schoolbook reference too slow at this degree";
    Rng rng(203);
    Modulus q(prime_);
    auto a = rng.uniformVector(degree_, prime_);
    auto b = rng.uniformVector(degree_, prime_);

    std::vector<u64> expect(degree_, 0);
    for (size_t i = 0; i < degree_; ++i) {
        for (size_t j = 0; j < degree_; ++j) {
            u64 prod = q.mul(a[i], b[j]);
            size_t k = i + j;
            if (k < degree_)
                expect[k] = q.add(expect[k], prod);
            else
                expect[k - degree_] = q.sub(expect[k - degree_], prod);
        }
    }

    auto fa = ntt_->forward(a);
    auto fb = ntt_->forward(b);
    std::vector<u64> fc(degree_);
    for (size_t i = 0; i < degree_; ++i)
        fc[i] = q.mul(fa[i], fb[i]);
    EXPECT_EQ(ntt_->inverse(fc), expect);
}

TEST_P(FourStepTest, OfTwistTrafficSavings)
{
    // Paper Section V-C: OF-Twist reduces twisting-factor storage by
    // ~99% (2*(alpha+L+1)*N words saved); per transform the loaded
    // words drop from O(N) to O(sqrt(N)).
    size_t baseline = ntt_->twistWordsLoadedBaseline();
    size_t oftwist = ntt_->twistWordsLoadedOfTwist();
    EXPECT_EQ(baseline, 2 * degree_);
    EXPECT_EQ(oftwist, 4 * ntt_->rows());
    if (degree_ >= 1 << 12) {
        double saving = 1.0 - static_cast<double>(oftwist) / baseline;
        EXPECT_GT(saving, 0.93);
    }
    if (degree_ == 1 << 16) {
        double saving = 1.0 - static_cast<double>(oftwist) / baseline;
        EXPECT_GT(saving, 0.99); // the paper's 99% claim holds at N=2^16
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FourStepTest,
                         ::testing::Values<size_t>(16, 64, 256, 1 << 12,
                                                   1 << 16));

TEST(FourStep, RejectsOddLogDegree)
{
    u64 p = generatePrimes(45, 1, 128).front();
    EXPECT_DEATH({ FourStepNtt n(128, Modulus(p)); (void)n; }, "");
}

} // namespace
} // namespace ark
