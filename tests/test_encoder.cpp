/**
 * @file
 * Tests for the CKKS encoder: canonical-embedding round trips and the
 * homomorphisms the scheme relies on (addition, multiplication,
 * rotation-by-automorphism, conjugation).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/encoder.h"
#include "common/random.h"
#include "rns/automorphism.h"

namespace ark {
namespace {

class EncoderTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testTiny());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
    }

    std::vector<Complex> randomMessage(size_t n, u64 seed)
    {
        Rng rng(seed);
        std::vector<Complex> m(n);
        for (auto &x : m)
            x = Complex(rng.uniformReal() * 2 - 1,
                        rng.uniformReal() * 2 - 1);
        return m;
    }

    static double maxErr(const std::vector<Complex> &a,
                         const std::vector<Complex> &b)
    {
        double e = 0;
        for (size_t i = 0; i < a.size(); ++i)
            e = std::max(e, std::abs(a[i] - b[i]));
        return e;
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
};

TEST_F(EncoderTest, RoundTripFullPacking)
{
    auto m = randomMessage(enc_->maxSlots(), 1);
    auto pt = enc_->encode(m, ctx_->maxLevel());
    auto back = enc_->decode(pt, m.size());
    EXPECT_LT(maxErr(m, back), 1e-6);
}

TEST_F(EncoderTest, RoundTripSparsePacking)
{
    for (size_t n : {1u, 4u, 16u, 64u}) {
        auto m = randomMessage(n, 2 + n);
        auto pt = enc_->encode(m, ctx_->maxLevel());
        auto back = enc_->decode(pt, n);
        EXPECT_LT(maxErr(m, back), 1e-6) << "slots=" << n;
    }
}

TEST_F(EncoderTest, SparseMessageReplicates)
{
    // Decoding more slots than encoded must show the replication.
    auto m = randomMessage(8, 3);
    auto pt = enc_->encode(m, ctx_->maxLevel());
    auto back = enc_->decode(pt, 32);
    for (size_t i = 0; i < 32; ++i)
        EXPECT_LT(std::abs(back[i] - m[i % 8]), 1e-6);
}

TEST_F(EncoderTest, ScalarEncode)
{
    Complex v(0.37, -1.25);
    auto pt = enc_->encodeScalar(v, ctx_->maxLevel());
    auto back = enc_->decode(pt, 16);
    for (const auto &x : back)
        EXPECT_LT(std::abs(x - v), 1e-6);
}

TEST_F(EncoderTest, AdditionHomomorphism)
{
    auto m1 = randomMessage(enc_->maxSlots(), 4);
    auto m2 = randomMessage(enc_->maxSlots(), 5);
    auto p1 = enc_->encode(m1, ctx_->maxLevel());
    auto p2 = enc_->encode(m2, ctx_->maxLevel());
    const auto moduli = ctx_->levelModuli(ctx_->maxLevel());
    Plaintext sum = p1;
    polyAdd(p1.poly, p2.poly, moduli, sum.poly);
    auto back = enc_->decode(sum, m1.size());
    for (size_t i = 0; i < m1.size(); ++i)
        EXPECT_LT(std::abs(back[i] - (m1[i] + m2[i])), 1e-5);
}

TEST_F(EncoderTest, MultiplicationHomomorphism)
{
    auto m1 = randomMessage(enc_->maxSlots(), 6);
    auto m2 = randomMessage(enc_->maxSlots(), 7);
    auto p1 = enc_->encode(m1, ctx_->maxLevel());
    auto p2 = enc_->encode(m2, ctx_->maxLevel());
    const auto moduli = ctx_->levelModuli(ctx_->maxLevel());
    Plaintext prod = p1;
    polyMulEval(p1.poly, p2.poly, moduli, prod.poly);
    prod.scale = p1.scale * p2.scale;
    auto back = enc_->decode(prod, m1.size());
    for (size_t i = 0; i < m1.size(); ++i)
        EXPECT_LT(std::abs(back[i] - m1[i] * m2[i]), 1e-4);
}

TEST_F(EncoderTest, AutomorphismRotatesSlots)
{
    auto m = randomMessage(enc_->maxSlots(), 8);
    auto pt = enc_->encode(m, ctx_->maxLevel());
    const auto moduli = ctx_->levelModuli(ctx_->maxLevel());
    for (i64 r : {1, 2, 5, 17}) {
        const Automorphism &am =
            ctx_->automorphism(galoisElt(r, ctx_->degree()));
        Plaintext rot = pt;
        rot.poly = am.apply(pt.poly, moduli);
        auto back = enc_->decode(rot, m.size());
        for (size_t i = 0; i < m.size(); ++i) {
            Complex expect = m[(i + r) % m.size()];
            EXPECT_LT(std::abs(back[i] - expect), 1e-5)
                << "r=" << r << " slot=" << i;
        }
    }
}

TEST_F(EncoderTest, ConjugationAutomorphism)
{
    auto m = randomMessage(enc_->maxSlots(), 9);
    auto pt = enc_->encode(m, ctx_->maxLevel());
    const auto moduli = ctx_->levelModuli(ctx_->maxLevel());
    const Automorphism &am =
        ctx_->automorphism(galoisEltConjugate(ctx_->degree()));
    Plaintext conj = pt;
    conj.poly = am.apply(pt.poly, moduli);
    auto back = enc_->decode(conj, m.size());
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_LT(std::abs(back[i] - std::conj(m[i])), 1e-5);
}

TEST_F(EncoderTest, FftSpecialRoundTrip)
{
    auto m = randomMessage(enc_->maxSlots(), 10);
    auto v = m;
    enc_->fftSpecialInv(v);
    enc_->fftSpecial(v);
    EXPECT_LT(maxErr(m, v), 1e-9);
}

} // namespace
} // namespace ark
