/**
 * @file
 * Tests for fast RNS base conversion against an exact wide-integer
 * reference of Eq. 4.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/bconv.h"
#include "rns/primes.h"

namespace ark {
namespace {

std::vector<Modulus>
makeModuli(const std::vector<u64> &primes)
{
    std::vector<Modulus> v;
    for (u64 p : primes)
        v.emplace_back(p);
    return v;
}

TEST(BConv, SinglePrimeInputIsPlainModReduction)
{
    // With |B| = 1, phat = 1, so BConv is just x mod q_i.
    const size_t n = 32;
    auto pb = generatePrimes(30, 1, n);
    auto pc = generatePrimes(35, 3, n);
    BaseConverter bc(makeModuli(pb), makeModuli(pc));

    Rng rng(301);
    RnsPoly in(n, 1, Rep::Coeff);
    auto vals = rng.uniformVector(n, pb[0]);
    std::copy(vals.begin(), vals.end(), in.limb(0));

    auto out = bc.convert(in);
    ASSERT_EQ(out.numLimbs(), 3u);
    for (size_t i = 0; i < 3; ++i) {
        for (size_t c = 0; c < n; ++c)
            EXPECT_EQ(out.limb(i)[c], vals[c] % pc[i]);
    }
}

TEST(BConv, MatchesExactSumReference)
{
    // Eq. 4 computes sum_j (x_j * phat_j^-1 mod p_j) * phat_j mod q_i.
    // With two 30-bit input primes the exact sum fits in 128 bits, so
    // we can check every coefficient exactly.
    const size_t n = 64;
    auto pb = generatePrimes(30, 2, n);
    auto pc = generatePrimes(40, 3, n);
    BaseConverter bc(makeModuli(pb), makeModuli(pc));
    Modulus b0(pb[0]), b1(pb[1]);

    Rng rng(302);
    RnsPoly in(n, 2, Rep::Coeff);
    auto v0 = rng.uniformVector(n, pb[0]);
    auto v1 = rng.uniformVector(n, pb[1]);
    std::copy(v0.begin(), v0.end(), in.limb(0));
    std::copy(v1.begin(), v1.end(), in.limb(1));

    auto out = bc.convert(in);

    const u64 phat0 = pb[1]; // prod of others
    const u64 phat1 = pb[0];
    const u64 inv0 = b0.inv(phat0 % pb[0]);
    const u64 inv1 = b1.inv(phat1 % pb[1]);
    for (size_t c = 0; c < n; ++c) {
        u64 y0 = b0.mul(v0[c], inv0);
        u64 y1 = b1.mul(v1[c], inv1);
        u128 exact = static_cast<u128>(y0) * phat0 +
                     static_cast<u128>(y1) * phat1;
        for (size_t i = 0; i < 3; ++i)
            EXPECT_EQ(out.limb(i)[c], static_cast<u64>(exact % pc[i]));
    }
}

TEST(BConv, ReconstructsValueUpToMultipleOfP)
{
    // The fast conversion may add u * P with 0 <= u < |B|; verify the
    // residues are consistent with x + u*P for a single such u.
    const size_t n = 16;
    auto pb = generatePrimes(28, 3, n);
    auto pc = generatePrimes(45, 2, n);
    BaseConverter bc(makeModuli(pb), makeModuli(pc));

    const u128 big_p =
        static_cast<u128>(pb[0]) * pb[1] * pb[2]; // < 2^84

    Rng rng(303);
    // Choose x < P directly, derive limbs, convert, and check that some
    // u in [0, 3) explains all output residues simultaneously.
    for (int trial = 0; trial < 20; ++trial) {
        u128 x = ((static_cast<u128>(rng.next()) << 64) | rng.next()) %
                 big_p;
        RnsPoly in(n, 3, Rep::Coeff);
        for (size_t j = 0; j < 3; ++j) {
            for (size_t c = 0; c < n; ++c)
                in.limb(j)[c] = static_cast<u64>(x % pb[j]);
        }
        auto out = bc.convert(in);
        bool some_u_works = false;
        for (u64 u = 0; u < 3 && !some_u_works; ++u) {
            bool ok = true;
            for (size_t i = 0; i < 2; ++i) {
                u128 lifted = x + u * big_p;
                if (out.limb(i)[0] != static_cast<u64>(lifted % pc[i]))
                    ok = false;
            }
            some_u_works = ok;
        }
        EXPECT_TRUE(some_u_works);
    }
}

TEST(BConv, StagesComposeToConvert)
{
    const size_t n = 32;
    auto pb = generatePrimes(30, 2, n);
    auto pc = generatePrimes(40, 2, n);
    BaseConverter bc(makeModuli(pb), makeModuli(pc));

    Rng rng(304);
    RnsPoly in(n, 2, Rep::Coeff);
    for (size_t j = 0; j < 2; ++j) {
        auto v = rng.uniformVector(n, pb[j]);
        std::copy(v.begin(), v.end(), in.limb(j));
    }
    auto direct = bc.convert(in);
    auto staged = bc.matmulStage(bc.scaleStage(in));
    for (size_t i = 0; i < 2; ++i) {
        for (size_t c = 0; c < n; ++c)
            EXPECT_EQ(direct.limb(i)[c], staged.limb(i)[c]);
    }
}

TEST(BConv, BaseTableShape)
{
    const size_t n = 16;
    auto pb = generatePrimes(30, 4, n);
    auto pc = generatePrimes(40, 6, n);
    BaseConverter bc(makeModuli(pb), makeModuli(pc));
    // Base table entries are phat_j mod q_i, all < q_i.
    for (size_t i = 0; i < 6; ++i) {
        for (size_t j = 0; j < 4; ++j)
            EXPECT_LT(bc.baseTable(i, j), pc[i]);
    }
}

TEST(BConv, RequiresCoeffRep)
{
    const size_t n = 16;
    auto pb = generatePrimes(30, 2, n);
    auto pc = generatePrimes(40, 2, n);
    BaseConverter bc(makeModuli(pb), makeModuli(pc));
    RnsPoly in(n, 2, Rep::Eval);
    EXPECT_DEATH(bc.convert(in), "");
}

} // namespace
} // namespace ark
