/**
 * @file
 * Shard-planning invariants (src/shard/ + ArkSimulator::runSharded):
 * every evk cluster lands on exactly one shard, per-shard evk sets
 * partition the program's evk set, sharded residency accounting sums
 * consistently with the unsharded run, per-shard evk HBM traffic sits
 * strictly below the single-chip EvkCluster baseline under scratchpad
 * pressure (the PR's acceptance gate), and the serving-plane planner
 * co-locates identical evk signatures.
 */

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "shard/serve_shard.h"
#include "shard/shard_plan.h"
#include "sim/simulator.h"
#include "workloads/programs.h"

namespace ark {
namespace {

std::vector<SimProgram>
paperTraces()
{
    const CkksParams p = CkksParams::ark();
    std::vector<SimProgram> traces;
    traces.push_back(bootstrapProgram(p, KeySchedule::MinKS));
    traces.push_back(helrProgram(p, KeySchedule::MinKS));
    traces.push_back(resnetProgram(p, KeySchedule::MinKS));
    traces.push_back(sortingProgram(p, KeySchedule::MinKS));
    return traces;
}

/** The pressure point bench_scheduler gates at: one evk slot. */
ArkSimulator
pressureSim()
{
    return ArkSimulator(MachineConfig::arkBase().withScratchpad(384),
                        SimAlgo{KeySchedule::MinKS, true});
}

TEST(ShardPlan, EveryNodeAssignedAndEvkClustersExclusive)
{
    for (const SimProgram &prog : paperTraces()) {
        const HeGraph g = liftProgram(prog);
        for (size_t n : {size_t{1}, size_t{2}, size_t{3}}) {
            const ShardPlan plan = planProgramShards(g, n);
            ASSERT_EQ(plan.shards, n);
            ASSERT_EQ(plan.shard_of_node.size(), g.nodes.size());
            for (size_t s : plan.shard_of_node)
                EXPECT_LT(s, n);

            // Every key-switch node sits on its evk's owning shard —
            // the cluster is never split.
            for (const auto &node : g.nodes) {
                if (node.op.kind != SimOpKind::KeySwitch ||
                    node.op.evk_id < 0)
                    continue;
                auto it = plan.shard_of_evk.find(node.op.evk_id);
                ASSERT_NE(it, plan.shard_of_evk.end());
                EXPECT_EQ(plan.shard_of_node[node.index], it->second)
                    << prog.name << " evk " << node.op.evk_id;
            }

            // Per-shard evk sets are pairwise disjoint and cover the
            // graph's distinct evk set exactly.
            std::set<int> seen;
            size_t total = 0;
            for (const auto &evks : plan.evks_of_shard) {
                total += evks.size();
                seen.insert(evks.begin(), evks.end());
            }
            EXPECT_EQ(total, seen.size()) << "evk owned twice";
            EXPECT_EQ(seen.size(), g.distinctEvks()) << prog.name;

            // Cut edges really cross shards.
            for (const auto &[p_, c] : plan.cut_edges)
                EXPECT_NE(plan.shard_of_node[p_],
                          plan.shard_of_node[c]);
        }
    }
}

TEST(ShardPlan, SingleShardIsIdentity)
{
    const SimProgram prog = paperTraces()[0];
    const HeGraph g = liftProgram(prog);
    const ShardPlan plan = planProgramShards(g, 1);
    EXPECT_TRUE(plan.cut_edges.empty());
    EXPECT_EQ(plan.nodes_of_shard[0], g.nodes.size());
    EXPECT_EQ(plan.evks_of_shard[0].size(), g.distinctEvks());
    EXPECT_FALSE(plan.toString().empty());
}

TEST(ShardPlan, PlansAreDeterministic)
{
    const SimProgram prog = paperTraces()[2]; // ResNet
    const HeGraph g = liftProgram(prog);
    const ShardPlan a = planProgramShards(g, 3);
    const ShardPlan b = planProgramShards(g, 3);
    EXPECT_EQ(a.shard_of_node, b.shard_of_node);
    EXPECT_EQ(a.cut_edges, b.cut_edges);
}

TEST(ShardedSim, ResidencyAccountingSumsToUnshardedRun)
{
    const ArkSimulator sim = pressureSim();
    for (const SimProgram &prog : paperTraces()) {
        const size_t slots =
            sim.evkSlotCapacity(prog.params);
        const ScheduledProgram sp = scheduleProgram(
            prog, SchedulePolicy::EvkCluster, slots);
        const SimResult single =
            sim.runScheduled(sp).scheduled;
        const HeGraph g = liftProgram(prog);

        for (size_t n : {size_t{2}, size_t{4}}) {
            const ShardPlan plan = planProgramShards(g, n);
            const ShardedSimResult r =
                sim.runSharded(sp, plan, &single);
            ASSERT_EQ(r.per_shard.size(), n);

            // Every key switch touches exactly one shard's cache, so
            // accesses are conserved across the partition.
            double accesses = 0, total_evk_bytes = 0;
            for (const SimResult &s : r.per_shard) {
                accesses += s.evk_hits + s.evk_misses;
                total_evk_bytes += s.evk_bytes;
            }
            EXPECT_DOUBLE_EQ(accesses,
                             single.evk_hits + single.evk_misses)
                << prog.name;

            // A shard sees the filtered access stream of a disjoint
            // key subset: reuse distances only shrink, so LRU misses
            // (hence evk bytes) can only go down in aggregate.
            EXPECT_LE(total_evk_bytes, single.evk_bytes + 1e-6)
                << prog.name;
            EXPECT_DOUBLE_EQ(total_evk_bytes, r.total_evk_bytes);
        }
    }
}

TEST(ShardedSim, PerShardEvkTrafficBelowSingleChipEvkCluster)
{
    // The acceptance gate: at >= 2 shards on the bootstrap and ResNet
    // workloads, EVERY shard's evk HBM stream is strictly below the
    // single-chip EvkCluster baseline at the same scratchpad.
    const ArkSimulator sim = pressureSim();
    const CkksParams p = CkksParams::ark();
    std::vector<SimProgram> gated;
    gated.push_back(bootstrapProgram(p, KeySchedule::MinKS));
    gated.push_back(resnetProgram(p, KeySchedule::MinKS));

    for (const SimProgram &prog : gated) {
        const size_t slots = sim.evkSlotCapacity(p);
        const ScheduledProgram sp = scheduleProgram(
            prog, SchedulePolicy::EvkCluster, slots);
        const SimResult single = sim.runScheduled(sp).scheduled;
        ASSERT_GT(single.evk_bytes, 0) << prog.name;

        const HeGraph g = liftProgram(prog);
        for (size_t n : {size_t{2}, size_t{4}}) {
            const ShardedSimResult r =
                sim.runSharded(sp, planProgramShards(g, n), &single);
            for (size_t s = 0; s < n; ++s) {
                EXPECT_LT(r.per_shard[s].evk_bytes, single.evk_bytes)
                    << prog.name << " shard " << s << "/" << n;
            }
            EXPECT_LT(r.max_shard_evk_bytes, single.evk_bytes);
            // The makespan model: slowest shard plus serialized link.
            double slowest = 0;
            for (const SimResult &sr : r.per_shard)
                slowest = std::max(slowest, sr.seconds);
            EXPECT_DOUBLE_EQ(r.seconds, slowest + r.link_seconds);
            EXPECT_GT(r.link_bytes, 0) << "a split DAG must cut edges";
        }
    }
}

TEST(ShardedSim, OneShardMatchesSingleChipSchedule)
{
    const ArkSimulator sim = pressureSim();
    const SimProgram prog =
        bootstrapProgram(CkksParams::ark(), KeySchedule::MinKS);
    const size_t slots = sim.evkSlotCapacity(prog.params);
    const ScheduledProgram sp =
        scheduleProgram(prog, SchedulePolicy::EvkCluster, slots);
    const SimResult single = sim.runScheduled(sp).scheduled;

    const ShardedSimResult r =
        sim.runSharded(sp, planProgramShards(liftProgram(prog), 1));
    ASSERT_EQ(r.per_shard.size(), 1u);
    EXPECT_DOUBLE_EQ(r.per_shard[0].evk_bytes, single.evk_bytes);
    EXPECT_DOUBLE_EQ(r.per_shard[0].hbm_bytes, single.hbm_bytes);
    EXPECT_DOUBLE_EQ(r.link_bytes, 0);
    EXPECT_DOUBLE_EQ(r.seconds, r.per_shard[0].seconds);
}

TEST(ServeShardPlan, IdenticalSignaturesCoLocateAndBalance)
{
    // Synthetic workloads: two signature families, several members.
    auto mk = [](std::vector<i64> rots, size_t filler) {
        ServeWorkload w;
        w.name = "wl";
        for (i64 r : rots)
            w.ops.push_back({ServeOpKind::Rotate, r, 0, 0});
        for (size_t i = 0; i < filler; ++i)
            w.ops.push_back({ServeOpKind::AddScalar, 0, 0, 0.5});
        return w;
    };
    std::vector<ServeWorkload> wls = {
        mk({1, 2}, 4), mk({3, 4}, 4), mk({2, 1}, 2), mk({4, 3}, 2),
    };

    const ServeShardPlan plan = planServeShards(wls, 2);
    ASSERT_EQ(plan.shard_of_workload.size(), wls.size());
    // {1,2} and {2,1} share a signature, as do {3,4} and {4,3}.
    EXPECT_EQ(plan.shard_of_workload[0], plan.shard_of_workload[2]);
    EXPECT_EQ(plan.shard_of_workload[1], plan.shard_of_workload[3]);
    // Two equal-weight families across two shards must split.
    EXPECT_NE(plan.shard_of_workload[0], plan.shard_of_workload[1]);
    EXPECT_EQ(plan.weight_of_shard[0], plan.weight_of_shard[1]);
    EXPECT_FALSE(plan.toString().empty());

    // Determinism.
    const ServeShardPlan again = planServeShards(wls, 2);
    EXPECT_EQ(plan.shard_of_workload, again.shard_of_workload);
}

TEST(ServeShardPlan, OverlappingSignaturesPreferTheSameShard)
{
    auto mk = [](std::vector<i64> rots) {
        ServeWorkload w;
        for (i64 r : rots)
            w.ops.push_back({ServeOpKind::Rotate, r, 0, 0});
        return w;
    };
    // Heaviest first: {1,2,3} seeds a shard; {1,2} overlaps it and
    // should follow despite the load; {7,8} opens the other shard.
    std::vector<ServeWorkload> wls = {
        mk({1, 2, 3}), mk({7, 8}), mk({1, 2}),
    };
    const ServeShardPlan plan = planServeShards(wls, 2);
    EXPECT_EQ(plan.shard_of_workload[0], plan.shard_of_workload[2]);
    EXPECT_NE(plan.shard_of_workload[0], plan.shard_of_workload[1]);
}

} // namespace
} // namespace ark
