/**
 * @file
 * Sharded BatchServer tests: evk-affinity routing across per-worker-
 * group queues must leave every result bit-identical to the classic
 * single-queue FCFS server — on both kernel backends — while the
 * drain report accounts requests per shard consistently.
 */

#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "serve/batch_server.h"

namespace ark {
namespace {

/** Same fixed-seed serving stack as test_serving.cpp, so separately
 *  constructed stacks hold bit-identical key and input material. */
struct Stack
{
    std::unique_ptr<CkksContext> ctx;
    Rng rng{777};
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    std::unique_ptr<KeyCache> keys;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<PlaintextStore> store;
    std::vector<ServeWorkload> workloads;
    std::vector<Ciphertext> inputs;

    explicit Stack(BackendKind kind, size_t kernel_threads = 2)
    {
        unsetenv("ARK_BACKEND");
        unsetenv("ARK_THREADS");
        CkksParams p = CkksParams::testTiny();
        p.backend = kind;
        p.backend_threads = kernel_threads;
        ctx = std::make_unique<CkksContext>(p);
        keygen = std::make_unique<KeyGenerator>(*ctx, rng);
        sk = keygen->secretKey();
        keys = std::make_unique<KeyCache>(*keygen, sk, ctx->degree());
        encoder = std::make_unique<CkksEncoder>(*ctx);
        CkksEncryptor encryptor(*ctx, rng);

        store = std::make_unique<PlaintextStore>(*ctx,
                                                 PlaintextMode::OFLimb);
        const size_t slots = p.num_slots;
        std::vector<Complex> m(slots);
        for (size_t i = 0; i < slots; ++i)
            m[i] = Complex(0.6 + 0.001 * static_cast<double>(i % 11),
                           0.02);
        store->insert(encoder->encode(m, ctx->maxLevel()));

        LowerOptions opt;
        opt.max_ops = 20;
        workloads = standardServingMix(p, opt);

        std::vector<i64> amounts;
        for (const auto &w : workloads) {
            const std::vector<i64> amts = w.rotationAmounts();
            amounts.insert(amounts.end(), amts.begin(), amts.end());
        }
        keys->warm(std::move(amounts));

        for (int k = 0; k < 2; ++k) {
            Ciphertext ct = encryptor.encryptSymmetric(
                encoder->encode(m, ctx->maxLevel()), sk);
            ct.slots = slots;
            inputs.push_back(std::move(ct));
        }
    }

    /** Serve @p n round-robin requests and return checksums in
     *  submission order, plus the drain report via @p rep_out. */
    std::vector<u64>
    serveBatch(size_t workers, size_t shards, size_t n,
               ServeReport *rep_out = nullptr)
    {
        BatchServerConfig cfg;
        cfg.workers = workers;
        cfg.shards = shards;
        cfg.queue_capacity = n;
        BatchServer server(*ctx, *keys, *store, workloads, inputs, cfg);
        EXPECT_EQ(server.shards(), shards);
        std::vector<size_t> indices;
        for (size_t i = 0; i < n; ++i)
            indices.push_back(i % workloads.size());
        auto futs = server.submitBatch(indices);
        std::vector<u64> sums;
        for (auto &f : futs) {
            ServeResult r = f.get();
            EXPECT_TRUE(r.ok) << r.error;
            sums.push_back(r.checksum);
        }
        ServeReport rep = server.drain();
        if (rep_out)
            *rep_out = rep;
        return sums;
    }
};

TEST(ShardedServing, ShardedMatchesSingleQueueFcfs)
{
    Stack s(BackendKind::Scalar);
    const auto fcfs = s.serveBatch(1, 1, 16);
    const auto sharded = s.serveBatch(4, 2, 16);
    EXPECT_EQ(fcfs, sharded);
}

TEST(ShardedServing, ShardedMatchesSingleQueueFcfsParallelBackend)
{
    Stack s(BackendKind::Parallel, 2);
    const auto fcfs = s.serveBatch(1, 1, 16);
    const auto sharded = s.serveBatch(4, 2, 16);
    EXPECT_EQ(fcfs, sharded);
}

TEST(ShardedServing, ShardedServersAgreeAcrossBackends)
{
    Stack scalar(BackendKind::Scalar);
    Stack parallel(BackendKind::Parallel, 3);
    EXPECT_EQ(scalar.serveBatch(2, 2, 12),
              parallel.serveBatch(4, 2, 12));
}

TEST(ShardedServing, DrainReportCountsPerShardConsistently)
{
    Stack s(BackendKind::Scalar);
    ServeReport rep;
    const size_t n = 12;
    s.serveBatch(4, 2, n, &rep);
    ASSERT_EQ(rep.shard_requests.size(), 2u);
    EXPECT_EQ(rep.shard_requests[0] + rep.shard_requests[1], n);
    EXPECT_EQ(rep.requests, n);
    // The affinity routing is deterministic: re-serving the same mix
    // lands the same per-shard split.
    ServeReport again;
    s.serveBatch(4, 2, n, &again);
    EXPECT_EQ(rep.shard_requests, again.shard_requests);
    EXPECT_FALSE(rep.toString().empty());
}

TEST(ShardedServing, RoutingFollowsThePlan)
{
    Stack s(BackendKind::Scalar);
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.queue_capacity = 8;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);
    const ServeShardPlan &plan = server.shardPlan();
    ASSERT_EQ(plan.shard_of_workload.size(), s.workloads.size());

    // Submit only workloads routed to shard 1; shard 0 must stay idle
    // in the drain report.
    size_t target = plan.shard_of_workload.size(); // not-found sentinel
    for (size_t wi = 0; wi < plan.shard_of_workload.size(); ++wi) {
        if (plan.shard_of_workload[wi] == 1) {
            target = wi;
            break;
        }
    }
    ASSERT_LT(target, plan.shard_of_workload.size())
        << "no workload routed to shard 1";
    std::vector<std::future<ServeResult>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(server.submit(target));
    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok);
    ServeReport rep = server.drain();
    ASSERT_EQ(rep.shard_requests.size(), 2u);
    EXPECT_EQ(rep.shard_requests[0], 0u);
    EXPECT_EQ(rep.shard_requests[1], 4u);
}

TEST(ShardedServing, ShutdownClosesEveryShardQueue)
{
    Stack s(BackendKind::Scalar);
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);
    server.shutdown();
    for (size_t wi = 0; wi < s.workloads.size(); ++wi)
        EXPECT_THROW(server.submit(wi), std::runtime_error);
}

} // namespace
} // namespace ark
