/**
 * @file
 * Tests for the analytical models (src/core): op costs vs the paper's
 * Fig. 4 breakdown, H-(I)DFT plan structure, traffic analysis vs the
 * Fig. 2 targets, and the Section III-C F1 bound.
 */

#include <gtest/gtest.h>

#include "ckks/evaluator.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "core/f1_analysis.h"
#include "core/traffic_analyzer.h"
#include "sim/simulator.h"

namespace ark {
namespace {

TEST(OpCost, Fig4BreakdownShape)
{
    // dnum = 4: (I)NTT ~55%, BConv ~34%; dnum = max: NTT ~73%, BConv ~9%.
    CkksParams p4 = CkksParams::ark();
    CostModel m4(p4);
    OpCost c4 = m4.hrot(p4.max_level);
    EXPECT_NEAR(c4.ntt / c4.total(), 0.548, 0.08);
    EXPECT_NEAR(c4.bconv / c4.total(), 0.342, 0.08);

    CkksParams pmax = CkksParams::ark();
    pmax.dnum = 24;
    CostModel mmax(pmax);
    OpCost cmax = mmax.hrot(pmax.max_level);
    EXPECT_NEAR(cmax.ntt / cmax.total(), 0.733, 0.08);
    EXPECT_NEAR(cmax.bconv / cmax.total(), 0.092, 0.05);
    // BConv share collapses and NTT share grows at max dnum.
    EXPECT_GT(cmax.ntt / cmax.total(), c4.ntt / c4.total());
    EXPECT_LT(cmax.bconv / cmax.total(), c4.bconv / c4.total());
}

TEST(OpCost, OfLimbAddsNttWork)
{
    CostModel m(CkksParams::ark());
    OpCost plain = m.pmult(20, false);
    OpCost of = m.pmult(20, true);
    EXPECT_EQ(plain.ntt, 0.0);
    EXPECT_GT(of.ntt, 0.0);
    EXPECT_EQ(plain.other, of.other);
}

TEST(HdftPlan, MatchesPaperCounts)
{
    auto p = CkksParams::ark();
    HdftPlan plan = HdftPlan::make(p, true, p.max_level);
    EXPECT_EQ(plan.iterations.size(), 3u); // log_32(2^15)
    EXPECT_NEAR(plan.totalHrots(), 40.0, 3.0);
    EXPECT_NEAR(plan.totalPmults(), 158.0, 3.0);
    EXPECT_EQ(plan.distinctEvks(KeySchedule::MinKS), 6u);   // 2/iter
    EXPECT_EQ(plan.distinctEvks(KeySchedule::MinimalKS), 9u);
    EXPECT_EQ(plan.distinctEvks(KeySchedule::Baseline),
              plan.totalHrots());
}

TEST(HdftPlan, EvkBytesMatchTable3)
{
    auto p = CkksParams::ark();
    // A full evk at max level is 120 MiB (Table III).
    EXPECT_NEAR(HdftPlan::evkBytes(p, p.max_level) / (1024.0 * 1024.0),
                120.0, 0.1);
    // Plaintext at max level is 12 MiB; OF-Limb stores one limb.
    EXPECT_NEAR(HdftPlan::plaintextBytes(p, p.max_level, false) /
                    (1024.0 * 1024.0), 12.0, 0.1);
    EXPECT_EQ(HdftPlan::plaintextBytes(p, p.max_level, true),
              p.degree * p.word_bytes);
}

TEST(Traffic, Fig2HidftTargets)
{
    auto p = CkksParams::ark();
    TrafficAnalyzer an(p);
    HdftPlan plan = HdftPlan::make(p, true, p.max_level);

    TrafficPoint base = an.analyze(plan, {KeySchedule::Baseline, false});
    TrafficPoint minks = an.analyze(plan, {KeySchedule::MinKS, false});
    TrafficPoint both = an.analyze(plan, {KeySchedule::MinKS, true});

    // Paper: baseline ~6.4 GB; 88% removed; final 11.1 ops/byte.
    EXPECT_NEAR(base.totalBytes() / 1e9, 6.4, 0.6);
    EXPECT_NEAR(1.0 - both.totalBytes() / base.totalBytes(), 0.88, 0.04);
    EXPECT_NEAR(both.opsPerByte(), 11.1, 1.5);
    // Min-KS alone raises intensity ~2.6x.
    EXPECT_NEAR(minks.opsPerByte() / base.opsPerByte(), 2.6, 0.4);
    // OF-Limb increases compute (runtime data generation).
    EXPECT_GT(both.mod_mults, minks.mod_mults);
}

TEST(Traffic, MonotoneAcrossConfigs)
{
    auto p = CkksParams::ark();
    TrafficAnalyzer an(p);
    for (bool inverse : {true, false}) {
        HdftPlan plan = HdftPlan::make(p, inverse, inverse ? 23 : 11);
        TrafficPoint base =
            an.analyze(plan, {KeySchedule::Baseline, false});
        TrafficPoint minimal =
            an.analyze(plan, {KeySchedule::MinimalKS, false});
        TrafficPoint minks =
            an.analyze(plan, {KeySchedule::MinKS, false});
        TrafficPoint both = an.analyze(plan, {KeySchedule::MinKS, true});
        EXPECT_GT(base.totalBytes(), minimal.totalBytes());
        EXPECT_GT(minimal.totalBytes(), minks.totalBytes());
        EXPECT_GT(minks.totalBytes(), both.totalBytes());
    }
}

TEST(Traffic, MeasuredKernelStatsFromRealKeySwitch)
{
    // Run a real key switch through the functional library and feed
    // the backend's measured tallies into the analytic consumers.
    CkksContext ctx(CkksParams::testTiny());
    Rng rng(42);
    KeyGenerator keygen(ctx, rng);
    SecretKey sk = keygen.secretKey();
    EvalKey evk = keygen.evkMult(sk);
    CkksEvaluator eval(ctx);

    const int level = ctx.maxLevel();
    RnsPoly d(ctx.degree(), level + 1, Rep::Eval);
    for (int l = 0; l <= level; ++l) {
        auto v = rng.uniformVector(ctx.degree(),
                                   ctx.qModuli()[l].value());
        std::copy(v.begin(), v.end(), d.limb(l));
    }

    ctx.backend().resetStats();
    (void)eval.keySwitch(d, evk, level);
    const KernelStats st = ctx.backend().stats();

    // The key-switch pipeline must have gone through the fused digit
    // path, the evk MAC, and the ModDown tail — with evk traffic.
    // One fused call per digit plus one ModDown per output poly.
    EXPECT_EQ(st.at(KernelOp::NttBconvNtt).calls,
              static_cast<u64>(ctx.numDigits(level)) + 2);
    EXPECT_EQ(st.at(KernelOp::EvkMulAcc).calls,
              static_cast<u64>(ctx.numDigits(level)));
    EXPECT_EQ(st.at(KernelOp::SubMulScalar).calls, 2u); // b and a
    EXPECT_GT(st.evk_words, 0u);
    EXPECT_GT(st.totalMults(), 0u);

    TrafficAnalyzer ta(ctx.params());
    TrafficPoint pt = ta.analyzeMeasured(st);
    EXPECT_GT(pt.evk_bytes, 0.0);
    EXPECT_GT(pt.mod_mults, 0.0);
    EXPECT_GT(pt.opsPerByte(), 0.0);

    ArkSimulator sim(MachineConfig::arkBase(), SimAlgo{});
    SimResult r = sim.runMeasured(st, ctx.params());
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.busy_ntt, 0.0);
    EXPECT_GT(r.busy_bconv, 0.0);
    EXPECT_GT(r.busy_mad, 0.0);
    EXPECT_GT(r.hbm_bytes, 0.0);
    EXPECT_GE(r.cycles, r.busy_hbm);
}

TEST(F1Analysis, Section3CTargets)
{
    auto p = CkksParams::ark();
    ScaledF1Config cfg;
    HdftPlan hidft = HdftPlan::make(p, true, p.max_level);
    F1Utilization u = scaledF1Bound(p, hidft, cfg);
    // Paper: 2.1 ms load, 8.61% utilization for H-IDFT.
    EXPECT_NEAR(u.load_time_s * 1e3, 2.1, 0.3);
    EXPECT_NEAR(u.utilization, 0.0861, 0.02);
    EXPECT_LT(u.utilization, 0.15); // the memory wall is real
}

} // namespace
} // namespace ark
