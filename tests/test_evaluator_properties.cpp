/**
 * @file
 * Algebraic property tests on the CKKS evaluator: the homomorphism
 * laws that every downstream workload silently relies on, checked as
 * properties over random messages (TEST_P over seeds).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keygen.h"

namespace ark {
namespace {

class EvalPropTest : public ::testing::TestWithParam<u64>
{
  protected:
    static void SetUpTestSuite()
    {
        ctx_ = new CkksContext(CkksParams::testTiny());
        rng_ = new Rng(555);
        enc_ = new CkksEncoder(*ctx_);
        keygen_ = new KeyGenerator(*ctx_, *rng_);
        sk_ = new SecretKey(keygen_->secretKey());
        evk_mult_ = new EvalKey(keygen_->evkMult(*sk_));
        evk_conj_ = new EvalKey(keygen_->evkConjugate(*sk_));
        encryptor_ = new CkksEncryptor(*ctx_, *rng_);
        decryptor_ = new CkksDecryptor(*ctx_, *sk_);
        eval_ = new CkksEvaluator(*ctx_);
    }

    static void TearDownTestSuite()
    {
        delete eval_;
        delete decryptor_;
        delete encryptor_;
        delete evk_conj_;
        delete evk_mult_;
        delete sk_;
        delete keygen_;
        delete enc_;
        delete rng_;
        delete ctx_;
    }

    std::vector<Complex> randomMessage(u64 seed)
    {
        Rng rng(seed);
        std::vector<Complex> m(slots_);
        for (auto &x : m)
            x = Complex(rng.uniformReal() * 2 - 1,
                        rng.uniformReal() * 2 - 1);
        return m;
    }

    Ciphertext encrypt(const std::vector<Complex> &m)
    {
        auto ct = encryptor_->encryptSymmetric(
            enc_->encode(m, ctx_->maxLevel()), *sk_);
        ct.slots = slots_;
        return ct;
    }

    std::vector<Complex> decrypt(const Ciphertext &ct)
    {
        return enc_->decode(decryptor_->decrypt(ct), slots_);
    }

    static double maxDiff(const std::vector<Complex> &a,
                          const std::vector<Complex> &b)
    {
        double e = 0;
        for (size_t i = 0; i < a.size(); ++i)
            e = std::max(e, std::abs(a[i] - b[i]));
        return e;
    }

    static constexpr size_t slots_ = 32;
    static CkksContext *ctx_;
    static Rng *rng_;
    static CkksEncoder *enc_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static EvalKey *evk_mult_;
    static EvalKey *evk_conj_;
    static CkksEncryptor *encryptor_;
    static CkksDecryptor *decryptor_;
    static CkksEvaluator *eval_;
};

CkksContext *EvalPropTest::ctx_ = nullptr;
Rng *EvalPropTest::rng_ = nullptr;
CkksEncoder *EvalPropTest::enc_ = nullptr;
KeyGenerator *EvalPropTest::keygen_ = nullptr;
SecretKey *EvalPropTest::sk_ = nullptr;
EvalKey *EvalPropTest::evk_mult_ = nullptr;
EvalKey *EvalPropTest::evk_conj_ = nullptr;
CkksEncryptor *EvalPropTest::encryptor_ = nullptr;
CkksDecryptor *EvalPropTest::decryptor_ = nullptr;
CkksEvaluator *EvalPropTest::eval_ = nullptr;

TEST_P(EvalPropTest, AddCommutes)
{
    auto a = encrypt(randomMessage(GetParam()));
    auto b = encrypt(randomMessage(GetParam() + 1));
    EXPECT_LT(maxDiff(decrypt(eval_->add(a, b)),
                      decrypt(eval_->add(b, a))), 1e-9);
}

TEST_P(EvalPropTest, AddAssociates)
{
    auto a = encrypt(randomMessage(GetParam()));
    auto b = encrypt(randomMessage(GetParam() + 1));
    auto c = encrypt(randomMessage(GetParam() + 2));
    auto lhs = eval_->add(eval_->add(a, b), c);
    auto rhs = eval_->add(a, eval_->add(b, c));
    EXPECT_LT(maxDiff(decrypt(lhs), decrypt(rhs)), 1e-9);
}

TEST_P(EvalPropTest, MulCommutes)
{
    auto a = encrypt(randomMessage(GetParam()));
    auto b = encrypt(randomMessage(GetParam() + 1));
    auto ab = eval_->rescale(eval_->mul(a, b, *evk_mult_));
    auto ba = eval_->rescale(eval_->mul(b, a, *evk_mult_));
    EXPECT_LT(maxDiff(decrypt(ab), decrypt(ba)), 1e-6);
}

TEST_P(EvalPropTest, MulDistributesOverAdd)
{
    auto ma = randomMessage(GetParam());
    auto mb = randomMessage(GetParam() + 1);
    auto mc = randomMessage(GetParam() + 2);
    auto a = encrypt(ma), b = encrypt(mb), c = encrypt(mc);
    auto lhs = eval_->rescale(
        eval_->mul(a, eval_->add(b, c), *evk_mult_));
    auto rhs = eval_->add(eval_->rescale(eval_->mul(a, b, *evk_mult_)),
                          eval_->rescale(eval_->mul(a, c, *evk_mult_)));
    EXPECT_LT(maxDiff(decrypt(lhs), decrypt(rhs)), 1e-3);
}

TEST_P(EvalPropTest, NegateIsMulByMinusOne)
{
    auto a = encrypt(randomMessage(GetParam()));
    auto n1 = decrypt(eval_->negate(a));
    auto expect = randomMessage(GetParam());
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(n1[i] + expect[i]), 1e-5);
}

TEST_P(EvalPropTest, ConjugateOfProductIsProductOfConjugates)
{
    auto a = encrypt(randomMessage(GetParam()));
    auto b = encrypt(randomMessage(GetParam() + 1));
    auto lhs = eval_->conjugate(
        eval_->rescale(eval_->mul(a, b, *evk_mult_)), *evk_conj_);
    auto rhs = eval_->rescale(
        eval_->mul(eval_->conjugate(a, *evk_conj_),
                   eval_->conjugate(b, *evk_conj_), *evk_mult_));
    EXPECT_LT(maxDiff(decrypt(lhs), decrypt(rhs)), 1e-3);
}

TEST_P(EvalPropTest, TimesConjugateIsSquaredMagnitude)
{
    auto m = randomMessage(GetParam());
    auto a = encrypt(m);
    auto prod = eval_->rescale(
        eval_->mul(a, eval_->conjugate(a, *evk_conj_), *evk_mult_));
    auto out = decrypt(prod);
    for (size_t i = 0; i < slots_; ++i) {
        EXPECT_NEAR(out[i].real(), std::norm(m[i]), 1e-3);
        EXPECT_NEAR(out[i].imag(), 0.0, 1e-3);
    }
}

TEST_P(EvalPropTest, MulByIFourTimesIsIdentity)
{
    auto m = randomMessage(GetParam());
    auto a = encrypt(m);
    for (int k = 0; k < 4; ++k)
        a = eval_->mulByI(a);
    EXPECT_LT(maxDiff(decrypt(a), m), 1e-5);
}

TEST_P(EvalPropTest, RotationComposition)
{
    auto m = randomMessage(GetParam());
    auto evk2 = keygen_->evkRotation(*sk_, 2);
    auto evk3 = keygen_->evkRotation(*sk_, 3);
    auto evk5 = keygen_->evkRotation(*sk_, 5);
    auto a = encrypt(m);
    auto two_then_three =
        eval_->rotate(eval_->rotate(a, 2, evk2), 3, evk3);
    auto five = eval_->rotate(a, 5, evk5);
    EXPECT_LT(maxDiff(decrypt(two_then_three), decrypt(five)), 1e-3);
}

TEST_P(EvalPropTest, RescaleKeepsMessage)
{
    auto m = randomMessage(GetParam());
    auto a = encrypt(m);
    // Multiply by exactly 1.0 at scale Delta, then rescale.
    auto out = decrypt(eval_->rescale(eval_->mulScalar(a, 1.0)));
    EXPECT_LT(maxDiff(out, m), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalPropTest,
                         ::testing::Values<u64>(11, 23, 37, 59));

} // namespace
} // namespace ark
