/**
 * @file
 * Observability subsystem tests (src/obs/): histogram bucket math,
 * concurrent sharded-counter merge under the ThreadPool, trace-event
 * JSON export shape, the periodic stats emitter, the env-switch
 * parsers, and — the contract the serving hot path depends on — that
 * the disabled path records nothing and allocates nothing.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/stats_emitter.h"
#include "obs/trace.h"

// Global allocation counter for the disabled-path gate: every
// operator-new in this binary bumps it, so a scope that must not
// allocate can diff the count across itself.
namespace {
std::atomic<size_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace ark {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Phase;

/** Every test leaves the global observability state as it found it:
 *  overrides cleared, registry zeroed, trace session empty. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        unsetenv("ARK_TRACE");
        unsetenv("ARK_METRICS");
        obs::resetObsOverrides();
        obs::MetricsRegistry::global().reset();
        obs::TraceSession::global().clear();
    }
    void TearDown() override
    {
        obs::resetObsOverrides();
        obs::MetricsRegistry::global().reset();
        obs::TraceSession::global().clear();
    }
};

TEST_F(ObsTest, HistogramBucketBounds)
{
    // Geometric bounds: 0.001 * 2^i ms, last bucket unbounded.
    EXPECT_DOUBLE_EQ(Histogram::upperMs(0), 0.001);
    EXPECT_DOUBLE_EQ(Histogram::upperMs(1), 0.002);
    EXPECT_DOUBLE_EQ(Histogram::upperMs(10), 1.024);
    EXPECT_TRUE(std::isinf(Histogram::upperMs(Histogram::kBuckets - 1)));

    EXPECT_EQ(Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(0.001), 0u);   // at the bound
    EXPECT_EQ(Histogram::bucketIndex(0.0011), 1u);  // just past it
    EXPECT_EQ(Histogram::bucketIndex(1.0), 10u);
    // Far past every finite bound: the overflow bucket.
    EXPECT_EQ(Histogram::bucketIndex(1e12),
              Histogram::kBuckets - 1);
}

TEST_F(ObsTest, HistogramRecordQuantileMerge)
{
    Histogram h;
    EXPECT_DOUBLE_EQ(h.quantileMs(0.5), 0.0); // empty
    for (int i = 0; i < 99; ++i)
        h.record(0.5); // bucket 9 (upper bound 0.512 ms)
    h.record(100.0);   // bucket 17 (upper bound 0.131072 s)
    EXPECT_EQ(h.count, 100u);
    EXPECT_DOUBLE_EQ(h.max_ms, 100.0);
    EXPECT_NEAR(h.meanMs(), (99 * 0.5 + 100.0) / 100.0, 1e-9);
    // p50/p98 land in the dense bucket; p100 in the outlier's.
    EXPECT_DOUBLE_EQ(h.quantileMs(0.5), 0.512);
    EXPECT_DOUBLE_EQ(h.quantileMs(0.98), 0.512);
    EXPECT_DOUBLE_EQ(h.quantileMs(1.0), Histogram::upperMs(17));

    // Junk inputs clamp instead of corrupting buckets.
    Histogram j;
    j.record(-5.0);
    j.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(j.count, 2u);
    EXPECT_EQ(j.buckets[0], 2u);

    // Merge is element-wise add.
    Histogram a, b;
    a.record(0.5);
    b.record(100.0);
    b.record(0.5);
    a.merge(b);
    EXPECT_EQ(a.count, 3u);
    EXPECT_DOUBLE_EQ(a.max_ms, 100.0);
    EXPECT_NEAR(a.sum_ms, 101.0, 1e-9);
    EXPECT_EQ(a.buckets[Histogram::bucketIndex(0.5)], 2u);
}

TEST_F(ObsTest, ConcurrentCountersMergeExactly)
{
    // The sharded registry's one invariant: counts recorded from many
    // pool threads at once merge to the exact total, with every
    // histogram observation retained.
    obs::MetricsRegistry reg;
    constexpr size_t kJobs = 4096;
    ThreadPool pool(4);
    pool.parallelFor(kJobs, [&](size_t i) {
        reg.count(Counter::RequestsDone, 1);
        reg.count(Counter::EvkHit, 2);
        reg.observe(Phase::Execute,
                    0.001 * static_cast<double>(i % 64));
        reg.gaugeAdd(Gauge::InFlight, 1);
        reg.gaugeAdd(Gauge::InFlight, -1);
    });
    const obs::MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.counters[static_cast<size_t>(Counter::RequestsDone)],
              kJobs);
    EXPECT_EQ(s.counters[static_cast<size_t>(Counter::EvkHit)],
              2 * kJobs);
    EXPECT_EQ(s.phases[static_cast<size_t>(Phase::Execute)].count,
              kJobs);
    EXPECT_EQ(s.gauges[static_cast<size_t>(Gauge::InFlight)], 0);

    reg.reset();
    const obs::MetricsSnapshot z = reg.snapshot();
    EXPECT_EQ(z.counters[static_cast<size_t>(Counter::RequestsDone)],
              0u);
    EXPECT_EQ(z.phases[static_cast<size_t>(Phase::Execute)].count,
              0u);
}

TEST_F(ObsTest, SnapshotToStringNamesEveryMetric)
{
    obs::MetricsRegistry reg;
    reg.count(Counter::AdmitRefused, 3);
    reg.observe(Phase::QueueWait, 0.25);
    reg.gaugeSet(Gauge::QueueDepth, 7);
    const std::string text = reg.snapshot().toString();
    EXPECT_NE(text.find("admit_refused"), std::string::npos);
    EXPECT_NE(text.find("queue_wait"), std::string::npos);
    EXPECT_NE(text.find("queue_depth"), std::string::npos);
    // Phases with no observations stay out of the rendering.
    EXPECT_EQ(text.find("respond"), std::string::npos);
}

TEST_F(ObsTest, TraceJsonRoundTrip)
{
    obs::setTraceEnabled(true);
    const auto t0 = std::chrono::steady_clock::now();
    obs::TraceSession::global().record(
        "execute", 42, t0, t0 + std::chrono::microseconds(1500));
    obs::TraceSession::global().record(
        "ntt_fwd", 0, t0 + std::chrono::microseconds(100),
        t0 + std::chrono::microseconds(200));
    {
        obs::ScopedSpan span("respond", 42);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(obs::TraceSession::global().eventCount(), 3u);

    const std::vector<obs::TraceEvent> evs =
        obs::TraceSession::global().events();
    ASSERT_EQ(evs.size(), 3u);
    // Merged snapshot is ordered by start time.
    for (size_t i = 1; i < evs.size(); ++i)
        EXPECT_GE(evs[i].start_ns, evs[i - 1].start_ns);

    const std::string json = obs::TraceSession::global().toJson();
    // Chrome trace-event shape: the envelope, complete events, the
    // request-id correlation arg, and microsecond durations.
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"execute\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"req\":42"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1500.000"), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // Balanced braces — the cheap well-formedness proxy
    // (scripts/check_trace_json.py does the full parse in CI).
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));

    // Clamped, not negative, when end precedes start.
    obs::TraceSession::global().clear();
    obs::TraceSession::global().record(
        "backwards", 1, t0 + std::chrono::microseconds(10), t0);
    EXPECT_EQ(obs::TraceSession::global().events()[0].dur_ns, 0u);
}

TEST_F(ObsTest, TraceRingOverwritesOldestAndCountsDrops)
{
    obs::setTraceEnabled(true);
    const auto t0 = std::chrono::steady_clock::now();
    const size_t n = obs::TraceSession::kRingCapacity + 100;
    for (size_t i = 0; i < n; ++i)
        obs::TraceSession::global().record(
            "spin", 1, t0 + std::chrono::nanoseconds(i),
            t0 + std::chrono::nanoseconds(i + 1));
    EXPECT_EQ(obs::TraceSession::global().eventCount(),
              obs::TraceSession::kRingCapacity);
    EXPECT_EQ(obs::TraceSession::global().droppedCount(), 100u);
}

TEST_F(ObsTest, DisabledPathRecordsNothingAndAllocatesNothing)
{
    // Defaults: both switches off. This is the serving hot path when
    // nobody asked for observability — it must not touch the trace
    // session, the registry, the clock-driven rings, or the heap.
    ASSERT_FALSE(obs::traceEnabled());
    ASSERT_FALSE(obs::metricsEnabled());

    const size_t events_before =
        obs::TraceSession::global().eventCount();
    const size_t allocs_before =
        g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10000; ++i) {
        obs::ScopedSpan span("execute", 7);
        obs::count(Counter::RequestsDone);
        obs::observe(Phase::Execute, 1.0);
        obs::gaugeAdd(Gauge::InFlight, 1);
    }
    EXPECT_EQ(g_allocs.load(std::memory_order_relaxed),
              allocs_before);
    EXPECT_EQ(obs::TraceSession::global().eventCount(),
              events_before);
    const obs::MetricsSnapshot s =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(s.counters[static_cast<size_t>(Counter::RequestsDone)],
              0u);
}

TEST_F(ObsTest, RuntimeOverridesFlipRecording)
{
    obs::setMetricsEnabled(true);
    obs::count(Counter::RequestsDone);
    obs::setMetricsEnabled(false);
    obs::count(Counter::RequestsDone);
    const obs::MetricsSnapshot s =
        obs::MetricsRegistry::global().snapshot();
    EXPECT_EQ(s.counters[static_cast<size_t>(Counter::RequestsDone)],
              1u);

    obs::setTraceEnabled(true);
    { obs::ScopedSpan span("execute", 1); }
    obs::setTraceEnabled(false);
    { obs::ScopedSpan span("execute", 2); }
    EXPECT_EQ(obs::TraceSession::global().eventCount(), 1u);
}

TEST_F(ObsTest, EnvSwitchParsers)
{
    bool v = false;
    EXPECT_TRUE(obs::parseOnOff("on", v));
    EXPECT_TRUE(v);
    EXPECT_TRUE(obs::parseOnOff("0", v));
    EXPECT_FALSE(v);
    EXPECT_TRUE(obs::parseOnOff("1", v));
    EXPECT_TRUE(v);
    EXPECT_TRUE(obs::parseOnOff("off", v));
    EXPECT_FALSE(v);
    EXPECT_FALSE(obs::parseOnOff("yes", v));
    EXPECT_FALSE(obs::parseOnOff("", v));

    LogLevel lvl = LogLevel::Warn;
    EXPECT_TRUE(parseLogLevel("error", lvl));
    EXPECT_EQ(lvl, LogLevel::Error);
    EXPECT_TRUE(parseLogLevel("debug", lvl));
    EXPECT_EQ(lvl, LogLevel::Debug);
    EXPECT_FALSE(parseLogLevel("verbose", lvl));
    EXPECT_FALSE(parseLogLevel("WARN", lvl)); // case-sensitive
}

TEST_F(ObsTest, StatsEmitterRendersPeriodically)
{
    std::atomic<size_t> sunk{0};
    std::string last;
    std::mutex m;
    {
        obs::StatsEmitter emitter(
            std::chrono::milliseconds(5),
            [] { return std::string("tick"); },
            [&](const std::string &s) {
                std::lock_guard<std::mutex> lk(m);
                last = s;
                sunk.fetch_add(1);
            });
        // Wait for at least two emissions rather than a fixed sleep.
        for (int i = 0; i < 400 && sunk.load() < 2; ++i)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        emitter.stop();
        EXPECT_GE(emitter.emissions(), 2u);
        emitter.stop(); // idempotent
    }
    EXPECT_GE(sunk.load(), 2u);
    std::lock_guard<std::mutex> lk(m);
    EXPECT_EQ(last, "tick");
}

TEST_F(ObsTest, TraceWriteJsonRejectsBadPath)
{
    EXPECT_FALSE(obs::TraceSession::global().writeJson(
        "/nonexistent-dir-xyz/trace.json"));
}

} // namespace
} // namespace ark
