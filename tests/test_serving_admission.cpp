/**
 * @file
 * SLO-aware admission-control tests (serve/admission.h and its
 * BatchServer integration), all on synthetic observations and the
 * injected ManualServeClock — zero wall-clock sleeps, every decision
 * replayable. Pins the ISSUE invariants: shedding only engages when
 * the predicted p99 exceeds the class target, eviction only takes
 * strictly-lower-priority victims (so high-priority work is never
 * shed while lower-priority work occupies the queue), and admission
 * accounting is conserved under concurrent producers.
 */

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "serve/batch_server.h"

namespace ark {
namespace {

/** Minimal serving stack (same fixed-seed recipe as test_serving). */
struct Stack
{
    std::unique_ptr<CkksContext> ctx;
    Rng rng{777};
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    std::unique_ptr<KeyCache> keys;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<PlaintextStore> store;
    std::vector<ServeWorkload> workloads;
    std::vector<Ciphertext> inputs;

    Stack()
    {
        unsetenv("ARK_BACKEND");
        unsetenv("ARK_THREADS");
        CkksParams p = CkksParams::testTiny();
        p.backend = BackendKind::Scalar;
        ctx = std::make_unique<CkksContext>(p);
        keygen = std::make_unique<KeyGenerator>(*ctx, rng);
        sk = keygen->secretKey();
        keys = std::make_unique<KeyCache>(*keygen, sk, ctx->degree());
        encoder = std::make_unique<CkksEncoder>(*ctx);
        CkksEncryptor encryptor(*ctx, rng);

        store = std::make_unique<PlaintextStore>(*ctx,
                                                 PlaintextMode::OFLimb);
        const size_t slots = p.num_slots;
        std::vector<Complex> m(slots);
        for (size_t i = 0; i < slots; ++i)
            m[i] = Complex(0.6 + 0.001 * static_cast<double>(i % 11),
                           0.02);
        store->insert(encoder->encode(m, ctx->maxLevel()));

        LowerOptions opt;
        opt.max_ops = 20;
        workloads = standardServingMix(p, opt);
        std::vector<i64> amounts;
        for (const auto &w : workloads) {
            const std::vector<i64> amts = w.rotationAmounts();
            amounts.insert(amounts.end(), amts.begin(), amts.end());
        }
        keys->warm(std::move(amounts));

        Ciphertext ct = encryptor.encryptSymmetric(
            encoder->encode(m, ctx->maxLevel()), sk);
        ct.slots = slots;
        inputs.push_back(std::move(ct));
    }
};

AdmissionConfig
twoClassConfig(double low_p99, double high_p99, double prior_ms,
               u64 min_samples)
{
    AdmissionConfig a;
    a.enabled = true;
    a.classes = {SloClass{"batch", 0, 0, low_p99},
                 SloClass{"interactive", 1, 0, high_p99}};
    a.expected_service_ms = prior_ms;
    a.min_samples = min_samples;
    return a;
}

// ---------------------------------------------------------------
// AdmissionController: prediction and verdict semantics.
// ---------------------------------------------------------------

TEST(Admission, NoSignalMeansNoPredictionAndAlwaysAdmit)
{
    // No prior, no observations: the controller refuses to guess.
    AdmissionConfig a;
    a.enabled = true;
    a.classes = {SloClass{"only", 0, 0, 1.0}}; // 1 ms target
    a.expected_service_ms = 0;
    AdmissionController c(a);

    EXPECT_EQ(c.predictedP99Ms(0, 1000, 1), 0.0);
    EXPECT_EQ(c.decide(0, 1000, 1, true, 0), AdmissionVerdict::Admit);
}

TEST(Admission, DisabledOrUntargetedClassAlwaysAdmits)
{
    // Disabled controller admits even with a wild prediction...
    AdmissionConfig a = twoClassConfig(1.0, 1.0, 1e6, 1u << 30);
    a.enabled = false;
    AdmissionController off(a);
    EXPECT_GT(off.predictedP99Ms(0, 8, 1), 1.0);
    EXPECT_EQ(off.decide(0, 8, 1, true, 0), AdmissionVerdict::Admit);

    // ...and a class with p99_ms == 0 has no gate at all.
    a.enabled = true;
    a.classes[0].p99_ms = 0;
    AdmissionController no_target(a);
    EXPECT_EQ(no_target.decide(0, 8, 1, true, 0),
              AdmissionVerdict::Admit);
}

TEST(Admission, PredictionIsMonotoneInQueueDepth)
{
    AdmissionConfig a = twoClassConfig(50.0, 50.0, 2.0, 1u << 30);
    AdmissionController c(a);
    double prev = 0;
    for (size_t depth = 0; depth < 32; ++depth) {
        const double p = c.predictedP99Ms(0, depth, 2);
        EXPECT_GT(p, prev);
        prev = p;
    }
    // More workers drain the same backlog faster.
    EXPECT_LT(c.predictedP99Ms(0, 8, 4), c.predictedP99Ms(0, 8, 1));
}

TEST(Admission, SheddingEngagesExactlyWhenPredictionExceedsTarget)
{
    // Prior 4 ms, one worker: predicted(depth) = (depth+1)*4 + 4.
    // Target 20 ms → depth 3 predicts exactly 20 and still admits
    // (the target is a budget, not a ceiling-minus-one); depth 4 is
    // the first over (24 > 20).
    AdmissionConfig a = twoClassConfig(20.0, 20.0, 4.0, 1u << 30);
    AdmissionController c(a);
    for (size_t depth = 0; depth <= 8; ++depth) {
        const double predicted = c.predictedP99Ms(0, depth, 1);
        const AdmissionVerdict v = c.decide(0, depth, 1, depth > 0, 0);
        if (predicted <= 20.0)
            EXPECT_EQ(v, AdmissionVerdict::Admit) << "depth " << depth;
        else
            EXPECT_NE(v, AdmissionVerdict::Admit) << "depth " << depth;
    }
    EXPECT_EQ(c.decide(0, 3, 1, true, 0), AdmissionVerdict::Admit);
    EXPECT_NE(c.decide(0, 4, 1, true, 0), AdmissionVerdict::Admit);
}

TEST(Admission, ObservationsReplaceThePriorAfterMinSamples)
{
    // Huge prior keeps the gate shut while cold; two fast real
    // observations (min_samples = 2) must reopen it.
    AdmissionConfig a = twoClassConfig(20.0, 20.0, 1e6, 2);
    AdmissionController c(a);
    EXPECT_NE(c.decide(0, 0, 1, false, 0), AdmissionVerdict::Admit);

    c.recordService(0, 4.0);
    EXPECT_NE(c.decide(0, 0, 1, false, 0), AdmissionVerdict::Admit)
        << "one sample is below min_samples; the prior still stands";

    c.recordService(0, 4.0);
    // Histogram now rules: mean 4.0, p99 = 4.096 (bucket edge).
    const double p = c.predictedP99Ms(0, 0, 1);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 10.0);
    EXPECT_EQ(c.decide(0, 0, 1, false, 0), AdmissionVerdict::Admit);
}

TEST(Admission, EvictsOnlyStrictlyLowerPriority)
{
    // Over-target high-priority request: verdict depends on what is
    // queued below it. Equal priority is NOT "lower" — classes never
    // cannibalize their own tier.
    AdmissionConfig a = twoClassConfig(1.0, 1.0, 1e6, 1u << 30);
    AdmissionController c(a);

    // class 1 (priority 1) over an empty queue: nothing to evict.
    EXPECT_EQ(c.decide(1, 0, 1, false, 0), AdmissionVerdict::Shed);
    // Lower-priority work queued: make room instead of shedding.
    EXPECT_EQ(c.decide(1, 4, 1, true, 0), AdmissionVerdict::EvictLower);
    // Only equal-priority work queued: shed the newcomer.
    EXPECT_EQ(c.decide(1, 4, 1, true, 1), AdmissionVerdict::Shed);
    // The low class can never evict its own tier.
    EXPECT_EQ(c.decide(0, 4, 1, true, 0), AdmissionVerdict::Shed);
}

TEST(Admission, ClassOfWorkloadMapsAndDefaults)
{
    AdmissionConfig a = twoClassConfig(10.0, 10.0, 0, 16);
    a.class_of_workload = {0, 1};
    AdmissionController c(a);
    EXPECT_EQ(c.classCount(), 2u);
    EXPECT_EQ(c.classOf(0), 0u);
    EXPECT_EQ(c.classOf(1), 1u);
    EXPECT_EQ(c.classOf(7), 0u) << "unmapped workloads are class 0";
    EXPECT_EQ(c.classAt(1).priority, 1u);

    // Empty catalog defaults to one untargeted class.
    AdmissionController d(AdmissionConfig{});
    EXPECT_EQ(d.classCount(), 1u);
    EXPECT_EQ(d.classAt(0).p99_ms, 0.0);
}

// ---------------------------------------------------------------
// RequestQueue: the eviction primitive.
// ---------------------------------------------------------------

ServeJob
makeJob(u64 id, u32 priority)
{
    ServeJob j;
    j.request.id = id;
    j.priority = priority;
    return j;
}

TEST(RequestQueue, EvictLowestBelowTakesLowestThenLatest)
{
    RequestQueue q(8);
    ASSERT_TRUE(q.tryPush(makeJob(1, 0)));
    ASSERT_TRUE(q.tryPush(makeJob(2, 1)));
    ASSERT_TRUE(q.tryPush(makeJob(3, 0)));
    ASSERT_TRUE(q.tryPush(makeJob(4, 2)));

    ServeJob victim;
    // Lowest priority below the floor wins; among the two priority-0
    // jobs the latest-enqueued (least sunk queueing time) goes first.
    ASSERT_TRUE(q.evictLowestBelow(2, victim));
    EXPECT_EQ(victim.request.id, 3u);
    ASSERT_TRUE(q.evictLowestBelow(2, victim));
    EXPECT_EQ(victim.request.id, 1u);
    // Only priorities 1 and 2 remain; floor 1 finds nothing strictly
    // below and must leave the queue untouched.
    EXPECT_FALSE(q.evictLowestBelow(1, victim));
    EXPECT_EQ(q.size(), 2u);
    ASSERT_TRUE(q.evictLowestBelow(3, victim));
    EXPECT_EQ(victim.request.id, 2u);

    // FIFO order of the survivors is preserved.
    ServeJob out;
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.request.id, 4u);
    EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueue, LowestPriorityTracksQueueContents)
{
    RequestQueue q(4);
    u32 lowest = 99;
    EXPECT_FALSE(q.lowestPriority(lowest)) << "empty queue: no floor";

    ASSERT_TRUE(q.tryPush(makeJob(1, 3)));
    ASSERT_TRUE(q.lowestPriority(lowest));
    EXPECT_EQ(lowest, 3u);
    ASSERT_TRUE(q.tryPush(makeJob(2, 1)));
    ASSERT_TRUE(q.tryPush(makeJob(3, 2)));
    ASSERT_TRUE(q.lowestPriority(lowest));
    EXPECT_EQ(lowest, 1u);

    ServeJob victim;
    ASSERT_TRUE(q.evictLowestBelow(2, victim));
    EXPECT_EQ(victim.request.id, 2u);
    ASSERT_TRUE(q.lowestPriority(lowest));
    EXPECT_EQ(lowest, 2u);
}

// ---------------------------------------------------------------
// BatchServer integration, on the injected manual clock.
// ---------------------------------------------------------------

TEST(Serving, ImpossibleTargetShedsEveryNewcomer)
{
    // Cold-start prior of 10^6 ms against a 1 ms target: every
    // prediction is over budget and nothing lower-priority is ever
    // queued, so each request is shed at admission — deterministically,
    // before any worker runs it.
    Stack s;
    ManualServeClock clk;
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.clock = &clk;
    cfg.admission = twoClassConfig(1.0, 1.0, 1e6, 1u << 30);
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);

    // submit(): the future resolves immediately with the typed error.
    std::future<ServeResult> f = server.submit(0);
    ServeResult r = f.get();
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.error_kind, ServeErrorKind::Shed);
    EXPECT_NE(r.error.find("shed"), std::string::npos) << r.error;

    // trySubmit(): refusal, future untouched.
    std::future<ServeResult> out;
    EXPECT_FALSE(server.trySubmit(0, out));

    // trySubmitResult(): the typed verdict.
    EXPECT_EQ(server.trySubmitResult(0, out), AdmitResult::Shed);

    ServeReport rep = server.drain();
    EXPECT_EQ(rep.shed, 3u);
    EXPECT_EQ(rep.requests, 0u) << "nothing was executed";
}

TEST(Serving, HighPriorityIsNeverShedWhileLowPriorityQueued)
{
    // Low class: no effective target (admits freely). High class:
    // 5 ms target against a 2 ms prior — over budget exactly when the
    // queue holds 2+ jobs, within budget at depth <= 1. Whatever the
    // worker has managed to drain by the time the high-priority
    // request arrives, the verdict is EvictLower or Admit, never
    // Shed: the high-priority future always carries a real result.
    Stack s;
    ManualServeClock clk;
    BatchServerConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 16;
    cfg.clock = &clk;
    cfg.admission = twoClassConfig(1e9, 5.0, 2.0, 1u << 30);
    cfg.admission.class_of_workload = {0, 0, 0, 0};
    ASSERT_GE(s.workloads.size(), 2u);
    cfg.admission.class_of_workload[1] = 1; // workload 1 = interactive
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);

    const size_t n_low = 12;
    std::vector<std::future<ServeResult>> low;
    for (size_t i = 0; i < n_low; ++i)
        low.push_back(server.submit(0));
    std::future<ServeResult> high = server.submit(1);

    ServeResult hr = high.get();
    EXPECT_TRUE(hr.ok) << hr.error;
    EXPECT_NE(hr.error_kind, ServeErrorKind::Shed);

    size_t low_ok = 0, low_shed = 0;
    for (auto &f : low) {
        ServeResult r = f.get();
        if (r.ok) {
            ++low_ok;
        } else {
            EXPECT_EQ(r.error_kind, ServeErrorKind::Shed) << r.error;
            ++low_shed;
        }
    }
    EXPECT_EQ(low_ok + low_shed, n_low) << "every future settled";
    // The high-priority admission found a deep low-priority queue (the
    // single worker cannot drain 12 HE executions in the microseconds
    // a submit takes) and evicted from the bottom.
    EXPECT_GE(low_shed, 1u);

    ServeReport rep = server.drain();
    EXPECT_EQ(rep.shed, low_shed);
    EXPECT_EQ(rep.requests, low_ok + 1);
}

TEST(Serving, ManualClockGoodputAccounting)
{
    // The injected clock never advances, so every end-to-end latency
    // is exactly 0 ms — under any positive target, every completion
    // counts as goodput. Targets feed accounting even with shedding
    // disabled (the open-loop baseline server relies on this).
    Stack s;
    ManualServeClock clk;
    clk.setMicros(5'000'000);
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.clock = &clk;
    cfg.admission.enabled = false;
    cfg.admission.classes = {SloClass{"default", 0, 0, 10.0}};
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);

    const size_t n = 6;
    std::vector<std::future<ServeResult>> futs;
    for (size_t i = 0; i < n; ++i)
        futs.push_back(server.submit(i % s.workloads.size()));
    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok);

    ServeReport rep = server.drain();
    EXPECT_EQ(rep.requests, n);
    EXPECT_EQ(rep.shed, 0u);
    EXPECT_EQ(rep.slo_good, n);
    EXPECT_GT(rep.goodput_per_sec, 0.0);
    EXPECT_EQ(rep.e2e.count, n);
    EXPECT_EQ(rep.e2e.max_ms, 0.0) << "manual clock never advanced";

    // A fresh window starts empty.
    ServeReport empty = server.drain();
    EXPECT_EQ(empty.slo_good, 0u);
    EXPECT_EQ(empty.e2e.count, 0u);
}

// ---------------------------------------------------------------
// Concurrency property test: conservation under racing producers.
// ---------------------------------------------------------------

TEST(Serving, AdmissionLedgerIsConservedUnderConcurrentProducers)
{
    // Randomized producer interleavings over a small queue with live
    // shedding: whatever races happen, every offered request is
    // accounted exactly once (admitted + shed + refused == offered,
    // and every admitted future settles as ok, failed, or evicted).
    Stack s;
    ManualServeClock clk;
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 4;
    cfg.clock = &clk;
    // 2 ms prior, 8 ms target: admits at shallow depth, sheds or
    // evicts under backlog — both paths exercised under contention.
    cfg.admission = twoClassConfig(8.0, 8.0, 2.0, 1u << 30);
    cfg.admission.class_of_workload = {0, 1, 0, 1};
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);

    const size_t lanes = 8;
    const size_t per_lane = 24;
    std::atomic<size_t> admitted{0}, shed{0}, full{0}, closed{0};
    std::vector<std::vector<std::future<ServeResult>>> futs(lanes);

    ThreadPool pool(4);
    pool.parallelFor(lanes, [&](size_t lane) {
        Rng rng(1000 + lane);
        for (size_t i = 0; i < per_lane; ++i) {
            const size_t wl = rng.next() % s.workloads.size();
            std::future<ServeResult> out;
            switch (server.trySubmitResult(wl, out)) {
              case AdmitResult::Admitted:
                admitted.fetch_add(1);
                futs[lane].push_back(std::move(out));
                break;
              case AdmitResult::Shed:
                shed.fetch_add(1);
                break;
              case AdmitResult::Full:
                full.fetch_add(1);
                break;
              case AdmitResult::Closed:
                closed.fetch_add(1);
                break;
            }
        }
    });

    EXPECT_EQ(admitted.load() + shed.load() + full.load() +
                  closed.load(),
              lanes * per_lane);
    EXPECT_EQ(closed.load(), 0u) << "server was never shut down";

    // Every admitted future settles with a definite outcome.
    size_t ok = 0, failed = 0, evicted = 0;
    for (auto &lane : futs) {
        for (auto &f : lane) {
            ServeResult r = f.get();
            if (r.ok)
                ++ok;
            else if (r.error_kind == ServeErrorKind::Shed)
                ++evicted;
            else
                ++failed;
        }
    }
    EXPECT_EQ(ok + failed + evicted, admitted.load());
    EXPECT_EQ(failed, 0u);

    ServeReport rep = server.drain();
    EXPECT_EQ(rep.requests, ok);
    // Window shed = refused newcomers + evicted victims.
    EXPECT_EQ(rep.shed, shed.load() + evicted);

    // Post-close: no admission path lets anything through.
    server.shutdown();
    pool.parallelFor(lanes, [&](size_t lane) {
        std::future<ServeResult> out;
        EXPECT_EQ(server.trySubmitResult(lane % s.workloads.size(), out),
                  AdmitResult::Closed);
        EXPECT_FALSE(out.valid());
    });
    EXPECT_THROW(server.submit(0), std::runtime_error);
}

} // namespace
} // namespace ark
