/**
 * @file
 * Tests for the RNS polynomial container and limb-wise arithmetic.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/poly.h"
#include "rns/primes.h"

namespace ark {
namespace {

class PolyTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        degree_ = 256;
        auto ps = generatePrimes(40, 4, degree_);
        for (u64 p : ps) {
            moduli_.emplace_back(p);
            tables_.emplace_back(degree_, Modulus(p));
        }
    }

    RnsPoly randomPoly(Rep rep, u64 seed)
    {
        Rng rng(seed);
        RnsPoly p(degree_, moduli_.size(), rep);
        for (size_t l = 0; l < moduli_.size(); ++l) {
            auto limb = rng.uniformVector(degree_, moduli_[l].value());
            std::copy(limb.begin(), limb.end(), p.limb(l));
        }
        return p;
    }

    size_t degree_;
    std::vector<Modulus> moduli_;
    std::vector<NttTables> tables_;
};

TEST_F(PolyTest, AddSubInverse)
{
    auto a = randomPoly(Rep::Coeff, 1);
    auto b = randomPoly(Rep::Coeff, 2);
    RnsPoly s(degree_, moduli_.size(), Rep::Coeff);
    RnsPoly back(degree_, moduli_.size(), Rep::Coeff);
    polyAdd(a, b, moduli_, s);
    polySub(s, b, moduli_, back);
    for (size_t l = 0; l < moduli_.size(); ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(back.limb(l)[i], a.limb(l)[i]);
    }
}

TEST_F(PolyTest, NegIsSubFromZero)
{
    auto a = randomPoly(Rep::Coeff, 3);
    RnsPoly z(degree_, moduli_.size(), Rep::Coeff);
    RnsPoly n1(degree_, moduli_.size(), Rep::Coeff);
    RnsPoly n2(degree_, moduli_.size(), Rep::Coeff);
    polyNeg(a, moduli_, n1);
    polySub(z, a, moduli_, n2);
    for (size_t l = 0; l < moduli_.size(); ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(n1.limb(l)[i], n2.limb(l)[i]);
    }
}

TEST_F(PolyTest, NttRoundTripAllLimbs)
{
    auto a = randomPoly(Rep::Coeff, 4);
    auto original = a;
    polyNttForward(a, tables_);
    EXPECT_EQ(a.rep(), Rep::Eval);
    polyNttInverse(a, tables_);
    EXPECT_EQ(a.rep(), Rep::Coeff);
    for (size_t l = 0; l < moduli_.size(); ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(a.limb(l)[i], original.limb(l)[i]);
    }
}

TEST_F(PolyTest, MulEvalDistributesOverAdd)
{
    auto a = randomPoly(Rep::Eval, 5);
    auto b = randomPoly(Rep::Eval, 6);
    auto c = randomPoly(Rep::Eval, 7);
    const size_t k = moduli_.size();
    RnsPoly bc(degree_, k, Rep::Eval), ab(degree_, k, Rep::Eval);
    RnsPoly ac(degree_, k, Rep::Eval), lhs(degree_, k, Rep::Eval);
    RnsPoly rhs(degree_, k, Rep::Eval);
    polyAdd(b, c, moduli_, bc);
    polyMulEval(a, bc, moduli_, lhs);
    polyMulEval(a, b, moduli_, ab);
    polyMulEval(a, c, moduli_, ac);
    polyAdd(ab, ac, moduli_, rhs);
    for (size_t l = 0; l < k; ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(lhs.limb(l)[i], rhs.limb(l)[i]);
    }
}

TEST_F(PolyTest, MulAccEqualsMulPlusAdd)
{
    auto a = randomPoly(Rep::Eval, 8);
    auto b = randomPoly(Rep::Eval, 9);
    auto acc0 = randomPoly(Rep::Eval, 10);
    const size_t k = moduli_.size();
    RnsPoly prod(degree_, k, Rep::Eval), expect(degree_, k, Rep::Eval);
    polyMulEval(a, b, moduli_, prod);
    polyAdd(acc0, prod, moduli_, expect);
    auto acc = acc0;
    polyMulAccEval(a, b, moduli_, acc);
    for (size_t l = 0; l < k; ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(acc.limb(l)[i], expect.limb(l)[i]);
    }
}

TEST_F(PolyTest, ScalarMulMatchesElementwise)
{
    auto a = randomPoly(Rep::Coeff, 11);
    std::vector<u64> scalars;
    for (auto &m : moduli_)
        scalars.push_back(m.value() / 3);
    RnsPoly r(degree_, moduli_.size(), Rep::Coeff);
    polyMulScalar(a, scalars, moduli_, r);
    for (size_t l = 0; l < moduli_.size(); ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(r.limb(l)[i],
                      moduli_[l].mul(a.limb(l)[i], scalars[l]));
    }
}

TEST_F(PolyTest, AddScalarAddsToEveryWordOfEachLimb)
{
    // polyAddScalar adds scalar_per_limb[l] to ALL N words of limb l,
    // not just coefficient 0 (the documented CAdd semantics: constant
    // polys are constant across the evaluation domain).
    auto a = randomPoly(Rep::Eval, 20);
    std::vector<u64> scalars;
    for (auto &m : moduli_)
        scalars.push_back(m.value() / 7 + 3);
    RnsPoly r(degree_, moduli_.size(), Rep::Eval);
    polyAddScalar(a, scalars, moduli_, r);
    for (size_t l = 0; l < moduli_.size(); ++l) {
        const u64 q = moduli_[l].value();
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(r.limb(l)[i], addMod(a.limb(l)[i], scalars[l], q));
    }
}

TEST_F(PolyTest, FromSignedHandlesNegatives)
{
    std::vector<i64> coeffs(degree_, 0);
    coeffs[0] = -1;
    coeffs[1] = 5;
    coeffs[2] = -1000000;
    auto p = polyFromSigned(coeffs, moduli_);
    for (size_t l = 0; l < moduli_.size(); ++l) {
        u64 q = moduli_[l].value();
        EXPECT_EQ(p.limb(l)[0], q - 1);
        EXPECT_EQ(p.limb(l)[1], 5u);
        EXPECT_EQ(p.limb(l)[2], q - 1000000);
        EXPECT_EQ(p.limb(l)[3], 0u);
    }
}

TEST_F(PolyTest, ResizeAndExtendLimbs)
{
    auto a = randomPoly(Rep::Coeff, 12);
    a.resizeLimbs(2);
    EXPECT_EQ(a.numLimbs(), 2u);
    a.extendLimbs(3);
    EXPECT_EQ(a.numLimbs(), 5u);
    // Extended limbs are zeroed.
    for (size_t l = 2; l < 5; ++l) {
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(a.limb(l)[i], 0u);
    }
}

TEST_F(PolyTest, MulOnCoeffRepDies)
{
    auto a = randomPoly(Rep::Coeff, 13);
    auto b = randomPoly(Rep::Coeff, 14);
    RnsPoly r(degree_, moduli_.size(), Rep::Coeff);
    EXPECT_DEATH(polyMulEval(a, b, moduli_, r), "");
}

} // namespace
} // namespace ark
