/**
 * @file
 * Loopback client <-> server tests over the wire protocol: end-to-end
 * encrypt -> submit -> decrypt with results BIT-IDENTICAL to
 * in-process execution of the same request (same uploaded tenant keys,
 * same input ciphertext), on both the scalar and simd kernel
 * backends; per-tenant session and key-upload flow; and the §7 typed
 * error surface (UNKNOWN_SESSION, SESSION_LIMIT, MISSING_KEY,
 * UNKNOWN_WORKLOAD, SERVER_SHUTDOWN, protocol violations), per
 * docs/wire_format.md and docs/serving.md.
 */

#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace ark {
namespace {

/** Server-side stack: context, its own keys, workloads, inputs, and
 *  the BatchServer + WireServer pair on an ephemeral loopback port. */
struct ServerStack
{
    std::unique_ptr<CkksContext> ctx;
    Rng rng{777};
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    std::unique_ptr<KeyCache> keys;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<PlaintextStore> store;
    std::vector<ServeWorkload> workloads;
    std::vector<Ciphertext> inputs;
    std::unique_ptr<BatchServer> server;
    std::unique_ptr<WireServer> net;

    explicit ServerStack(BackendKind kind, BatchServerConfig cfg = {})
    {
        unsetenv("ARK_BACKEND");
        unsetenv("ARK_THREADS");
        CkksParams p = CkksParams::testTiny();
        p.backend = kind;
        p.backend_threads = 2;
        ctx = std::make_unique<CkksContext>(p);
        keygen = std::make_unique<KeyGenerator>(*ctx, rng);
        sk = keygen->secretKey();
        keys = std::make_unique<KeyCache>(*keygen, sk, ctx->degree());
        encoder = std::make_unique<CkksEncoder>(*ctx);
        CkksEncryptor encryptor(*ctx, rng);

        store = std::make_unique<PlaintextStore>(*ctx,
                                                 PlaintextMode::OFLimb);
        std::vector<Complex> m(p.num_slots);
        for (size_t i = 0; i < m.size(); ++i)
            m[i] = Complex(0.6 + 0.001 * static_cast<double>(i % 11),
                           0.02);
        store->insert(encoder->encode(m, ctx->maxLevel()));

        LowerOptions opt;
        opt.max_ops = 20;
        workloads = standardServingMix(p, opt);

        std::vector<Complex> in(p.num_slots, Complex(0.5, 0.1));
        inputs.push_back(encryptor.encryptSymmetric(
            encoder->encode(in, ctx->maxLevel()), sk));

        server = std::make_unique<BatchServer>(
            *ctx, *keys, *store, workloads, inputs, cfg);
        net = std::make_unique<WireServer>(*server);
    }
};

/** The tenant's locally generated key set for one workload: seeded
 *  evks (mult + every referenced rotation), per-key seeds derived
 *  from a master seed. */
struct TenantKeys
{
    SecretKey sk;
    EvalKey mult;
    std::vector<std::pair<i64, EvalKey>> rotations;

    TenantKeys(const CkksContext &ctx, Rng &rng,
               const std::vector<i64> &amounts, u64 master_seed)
    {
        KeyGenerator keygen(ctx, rng);
        sk = keygen.secretKey();
        u64 seed = master_seed;
        mult = keygen.evkMultSeeded(sk, seed++);
        for (i64 r : amounts)
            rotations.emplace_back(
                r, keygen.evkRotationSeeded(sk, r, seed++));
    }
};

/** Upload @p tk through @p client; returns the server-reported
 *  resident tenant-key bytes after the last upload. */
u64
uploadKeys(WireClient &client, const TenantKeys &tk)
{
    u64 resident = client.uploadMultiplicationKey(tk.mult);
    for (const auto &[r, key] : tk.rotations)
        resident = client.uploadRotationKey(r, key);
    return resident;
}

void
loopbackMatchesInProcess(BackendKind kind)
{
    ServerStack s(kind);
    WireClient client("127.0.0.1", s.net->port());

    // The hello exchange delivered the parameter set; the client's
    // rebuilt context must agree with the server's byte for byte as
    // far as the wire cares (§3 hash binding).
    ASSERT_EQ(paramsHash(client.params()),
              paramsHash(s.ctx->params()));
    ASSERT_EQ(client.workloads().size(), s.workloads.size());

    client.openSession("tenant-parity");

    // The tenant generates its own secret + seeded evks against the
    // received params, uploads them, and encrypts its own input.
    const size_t widx = 0;
    const RemoteWorkload &wl = client.workloads()[widx];
    Rng tenant_rng(4242);
    TenantKeys tk(client.context(), tenant_rng, wl.rotations, 9000);
    EXPECT_GT(uploadKeys(client, tk), 0u);

    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), tenant_rng);
    std::vector<Complex> msg(client.params().num_slots,
                             Complex(0.4, -0.2));
    const Ciphertext input = encryptor.encryptSymmetric(
        encoder.encode(msg, client.context().maxLevel()), tk.sk);

    // Remote path: over the socket.
    const WireClient::SubmitOutcome remote =
        client.submit(widx, input);
    ASSERT_TRUE(remote.ok) << remote.error;
    ASSERT_TRUE(remote.has_output);
    // The RESPONSE's checksum describes the ciphertext it carries.
    EXPECT_EQ(ciphertextChecksum(remote.output), remote.checksum);

    // In-process path: the same uploaded key material and the same
    // input ciphertext, submitted directly. Execution is pure, so the
    // two must be bit-identical.
    KeyCache local(client.context().degree());
    local.insertMultiplication(tk.mult);
    for (const auto &[r, key] : tk.rotations)
        local.insertRotation(r, key);
    std::future<ServeResult> fut;
    ASSERT_EQ(s.server->trySubmitRemote(
                  widx, std::make_shared<Ciphertext>(input), &local,
                  fut),
              AdmitResult::Admitted);
    const ServeResult in_process = fut.get();
    ASSERT_TRUE(in_process.ok) << in_process.error;

    EXPECT_EQ(remote.checksum, in_process.checksum);
    EXPECT_EQ(remote.final_level, in_process.final_level);
    EXPECT_EQ(remote.he_ops, in_process.he_ops);

    // And the tenant can decrypt its result.
    CkksDecryptor decryptor(client.context(), tk.sk);
    const std::vector<Complex> out =
        encoder.decode(decryptor.decrypt(remote.output),
                       client.params().num_slots);
    ASSERT_EQ(out.size(), client.params().num_slots);
    for (const Complex &c : out) {
        EXPECT_TRUE(std::isfinite(c.real()));
        EXPECT_TRUE(std::isfinite(c.imag()));
    }

    client.closeSession();
}

TEST(NetServing, LoopbackMatchesInProcessScalarBackend)
{
    loopbackMatchesInProcess(BackendKind::Scalar);
}

TEST(NetServing, LoopbackMatchesInProcessSimdBackend)
{
    loopbackMatchesInProcess(BackendKind::Simd);
}

TEST(NetServing, SubmitBeforeOpenSessionIsUnknownSession)
{
    ServerStack s(BackendKind::Scalar);
    WireClient client("127.0.0.1", s.net->port());
    CkksEncoder encoder(client.context());
    Rng rng(1);
    KeyGenerator keygen(client.context(), rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncryptor encryptor(client.context(), rng);
    const Ciphertext ct = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots, Complex(0, 0)),
                       client.context().maxLevel()),
        sk);
    try {
        (void)client.submit(0, ct);
        FAIL() << "submit before OPEN_SESSION accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::UnknownSession);
    }
}

TEST(NetServing, SessionCapRefusesWithSessionLimit)
{
    BatchServerConfig cfg;
    cfg.max_sessions = 1;
    ServerStack s(BackendKind::Scalar, cfg);

    WireClient first("127.0.0.1", s.net->port());
    first.openSession("tenant-1");
    EXPECT_EQ(s.net->activeSessions(), 1u);

    WireClient second("127.0.0.1", s.net->port());
    try {
        second.openSession("tenant-2");
        FAIL() << "session cap not enforced";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::SessionLimit);
    }

    // Closing the first session frees the slot for a new tenant.
    first.closeSession();
    EXPECT_EQ(s.net->activeSessions(), 0u);
    WireClient third("127.0.0.1", s.net->port());
    EXPECT_GT(third.openSession("tenant-3"), 0u);
}

TEST(NetServing, MissingUploadedKeyIsTypedInResponse)
{
    ServerStack s(BackendKind::Scalar);
    WireClient client("127.0.0.1", s.net->port());
    client.openSession("tenant-keyless");

    // No keys uploaded at all: the first key-switching op must fail
    // with MISSING_KEY inside a RESPONSE — the session stays healthy.
    Rng rng(2);
    KeyGenerator keygen(client.context(), rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), rng);
    const Ciphertext input = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots,
                           Complex(0.3, 0)),
                       client.context().maxLevel()),
        sk);
    const WireClient::SubmitOutcome out = client.submit(0, input);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.code, WireCode::MissingKey);
    EXPECT_FALSE(out.has_output);

    // The session survived: uploading the keys and resubmitting works.
    const RemoteWorkload &wl = client.workloads()[0];
    TenantKeys tk(client.context(), rng, wl.rotations, 7000);
    // Note: tk has its own secret key; re-encrypt under it.
    const Ciphertext input2 = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots,
                           Complex(0.3, 0)),
                       client.context().maxLevel()),
        tk.sk);
    uploadKeys(client, tk);
    const WireClient::SubmitOutcome ok = client.submit(0, input2);
    EXPECT_TRUE(ok.ok) << ok.error;
    client.closeSession();
}

TEST(NetServing, UnknownWorkloadIsRetryable)
{
    ServerStack s(BackendKind::Scalar);
    WireClient client("127.0.0.1", s.net->port());
    client.openSession("tenant-oops");

    Rng rng(3);
    KeyGenerator keygen(client.context(), rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), rng);
    const Ciphertext input = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots,
                           Complex(0.1, 0)),
                       client.context().maxLevel()),
        sk);

    const WireClient::SubmitOutcome out =
        client.submit(/*workload_index=*/999, input);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(out.code, WireCode::UnknownWorkload);

    // Retryable: the same session serves a valid index afterwards
    // (MISSING_KEY since no keys are uploaded — but it's a RESPONSE,
    // proving the submit was admitted and executed).
    const WireClient::SubmitOutcome again = client.submit(0, input);
    EXPECT_EQ(again.code, WireCode::MissingKey);
    client.closeSession();
}

TEST(NetServing, ShutdownSurfacesAsServerShutdown)
{
    ServerStack s(BackendKind::Scalar);
    WireClient client("127.0.0.1", s.net->port());
    client.openSession("tenant-late");

    Rng rng(4);
    KeyGenerator keygen(client.context(), rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), rng);
    const Ciphertext input = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots,
                           Complex(0.2, 0)),
                       client.context().maxLevel()),
        sk);

    // Stop the execution plane (the wire front-end stays up): the
    // typed admission surface must say SERVER_SHUTDOWN, not hang or
    // report a queue-full retry.
    s.server->shutdown();
    try {
        (void)client.submit(0, input);
        FAIL() << "submit to a shut-down server succeeded";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::ServerShutdown);
    }
}

TEST(NetServing, MalformedHelloIsRejected)
{
    ServerStack s(BackendKind::Scalar);

    // A raw peer that speaks the envelope but violates the §5 flow:
    // first frame is not CLIENT_HELLO.
    TcpStream raw = TcpStream::connect("127.0.0.1", s.net->port());
    raw.sendFrame(FrameType::Submit, 0, {});
    TcpStream::Frame f = raw.recvFrame(kDefaultMaxFrameBytes);
    ASSERT_EQ(f.header.type, FrameType::Error);
    ByteReader r(f.body);
    EXPECT_EQ(static_cast<WireCode>(r.getU16()), WireCode::Protocol);
    EXPECT_EQ(r.getU8(), 1); // fatal

    // A v2 client: the server answers UNSUPPORTED_VERSION (§8).
    TcpStream raw2 = TcpStream::connect("127.0.0.1", s.net->port());
    {
        ByteWriter w;
        w.putU16(2); // min_version
        w.putU16(2); // max_version
        w.putString("future-client");
        raw2.sendFrame(FrameType::ClientHello, 0, w.take());
    }
    TcpStream::Frame f2 = raw2.recvFrame(kDefaultMaxFrameBytes);
    ASSERT_EQ(f2.header.type, FrameType::Error);
    ByteReader r2(f2.body);
    EXPECT_EQ(static_cast<WireCode>(r2.getU16()),
              WireCode::UnsupportedVersion);
}

TEST(NetServing, WrongParamsHashIsFatalMismatch)
{
    ServerStack s(BackendKind::Scalar);
    TcpStream raw = TcpStream::connect("127.0.0.1", s.net->port());
    {
        ByteWriter w;
        w.putU16(kWireVersion);
        w.putU16(kWireVersion);
        w.putString("hash-liar");
        raw.sendFrame(FrameType::ClientHello, 0, w.take());
    }
    // Drain the three hello frames.
    (void)raw.recvFrame(kDefaultMaxFrameBytes);
    (void)raw.recvFrame(kDefaultMaxFrameBytes);
    (void)raw.recvFrame(kDefaultMaxFrameBytes);

    // OPEN_SESSION bound to the wrong parameter-set hash.
    ByteWriter w;
    w.putString("tenant-x");
    raw.sendFrame(FrameType::OpenSession, /*params_hash=*/1234,
                  w.take());
    TcpStream::Frame f = raw.recvFrame(kDefaultMaxFrameBytes);
    ASSERT_EQ(f.header.type, FrameType::Error);
    ByteReader r(f.body);
    EXPECT_EQ(static_cast<WireCode>(r.getU16()),
              WireCode::ParamsMismatch);
    EXPECT_EQ(r.getU8(), 1); // fatal
}

TEST(NetServing, StatsFramePollsLiveServer)
{
    obs::setMetricsEnabled(true);
    obs::MetricsRegistry::global().reset();
    ServerStack s(BackendKind::Scalar);
    WireClient client("127.0.0.1", s.net->port());

    // §5.16: STATS needs no open session — post-hello polling works
    // for dashboards that never submit.
    RemoteStats st = client.stats();
    EXPECT_EQ(st.active_sessions, 0u);
    ASSERT_EQ(st.shards.size(), 1u);
    EXPECT_EQ(st.shards[0].total_done, 0u);
    EXPECT_GT(st.shards[0].queue_capacity, 0u);
    // The catalog ships every counter and phase by name, always.
    ASSERT_EQ(st.counters.size(), obs::kCounterCount);
    ASSERT_EQ(st.phases.size(), obs::kPhaseCount);
    EXPECT_EQ(st.counters[0].name,
              obs::counterName(obs::Counter::AdmitAccepted));

    // Run one real request; the next poll must reflect it.
    client.openSession("tenant-stats");
    const RemoteWorkload &wl = client.workloads()[0];
    Rng rng(6);
    TenantKeys tk(client.context(), rng, wl.rotations, 8100);
    uploadKeys(client, tk);
    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), rng);
    const Ciphertext input = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots,
                           Complex(0.25, 0)),
                       client.context().maxLevel()),
        tk.sk);
    const WireClient::SubmitOutcome out = client.submit(0, input);
    ASSERT_TRUE(out.ok) << out.error;

    st = client.stats();
    EXPECT_EQ(st.active_sessions, 1u);
    EXPECT_EQ(st.sessions_opened, 1u);
    ASSERT_EQ(st.shards.size(), 1u);
    EXPECT_EQ(st.shards[0].total_done, 1u);
    u64 done = 0, polls = 0;
    double execute_count = 0;
    for (const StatsCounterEntry &c : st.counters) {
        if (c.name == obs::counterName(obs::Counter::RequestsDone))
            done = c.value;
        if (c.name == obs::counterName(obs::Counter::StatsPolls))
            polls = c.value;
    }
    for (const StatsPhaseEntry &p : st.phases) {
        if (p.name == obs::phaseName(obs::Phase::Execute)) {
            execute_count = static_cast<double>(p.count);
            EXPECT_GE(p.max_ms, 0.0);
            EXPECT_GE(p.p99_ms, p.p50_ms);
        }
    }
    EXPECT_EQ(done, 1u);
    EXPECT_GE(polls, 1u); // the first poll counted itself
    EXPECT_EQ(execute_count, 1.0);

    // The human rendering names the load-bearing numbers.
    const std::string text = st.toString();
    EXPECT_NE(text.find("shard[0]"), std::string::npos);
    EXPECT_NE(text.find("requests_done"), std::string::npos);

    client.closeSession();
    obs::resetObsOverrides();
    obs::MetricsRegistry::global().reset();
}

TEST(NetServing, QueueAdmissionIsTypedFullVsClosed)
{
    // The typed surface at its source: Full and Closed are distinct
    // outcomes of tryPushResult (the wire layer maps them to
    // QUEUE_FULL and SERVER_SHUTDOWN).
    RequestQueue q(1);
    ServeJob a;
    a.request.id = 1;
    EXPECT_EQ(q.tryPushResult(std::move(a)), AdmitResult::Admitted);
    ServeJob b;
    b.request.id = 2;
    EXPECT_EQ(q.tryPushResult(std::move(b)), AdmitResult::Full);
    q.close();
    ServeJob c;
    c.request.id = 3;
    EXPECT_EQ(q.tryPushResult(std::move(c)), AdmitResult::Closed);
}

TEST(NetServing, RemoteQueueFullSurfacesOverTheWire)
{
    // Deterministically induce QUEUE_FULL: one worker, one queue
    // slot, and a stream of blocking in-process producers keeping the
    // slot occupied while the remote tenant probes.
    BatchServerConfig cfg;
    cfg.workers = 1;
    cfg.queue_capacity = 1;
    ServerStack s(BackendKind::Scalar, cfg);

    WireClient client("127.0.0.1", s.net->port());
    client.openSession("tenant-shed");
    const RemoteWorkload &wl = client.workloads()[0];
    Rng rng(5);
    TenantKeys tk(client.context(), rng, wl.rotations, 8000);
    uploadKeys(client, tk);
    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), rng);
    const Ciphertext input = encryptor.encryptSymmetric(
        encoder.encode(std::vector<Complex>(
                           client.params().num_slots,
                           Complex(0.45, 0)),
                       client.context().maxLevel()),
        tk.sk);

    // Background producers: blocking submits keep the single queue
    // slot at capacity while each request executes.
    std::thread producer([&] {
        std::vector<std::future<ServeResult>> futs;
        for (int i = 0; i < 12; ++i)
            futs.push_back(s.server->submit(0));
        for (auto &f : futs)
            (void)f.get();
    });

    // Probe until the typed refusal shows up; every admitted probe
    // still round-trips correctly (ok or MISSING_KEY never happens —
    // keys are uploaded).
    bool saw_queue_full = false;
    for (int i = 0; i < 50 && !saw_queue_full; ++i) {
        const WireClient::SubmitOutcome out = client.submit(0, input);
        if (!out.ok) {
            EXPECT_EQ(out.code, WireCode::QueueFull);
            saw_queue_full = out.code == WireCode::QueueFull;
        }
    }
    producer.join();
    EXPECT_TRUE(saw_queue_full)
        << "no QUEUE_FULL observed in 50 probes against a "
           "single-slot queue under sustained load";

    // The session survived the shed: a final submit succeeds.
    const WireClient::SubmitOutcome after = client.submit(0, input);
    EXPECT_TRUE(after.ok) << after.error;
    client.closeSession();
    (void)s.server->drain();
}

} // namespace
} // namespace ark
