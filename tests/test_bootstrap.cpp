/**
 * @file
 * End-to-end bootstrapping tests on the toy bootstrappable parameter
 * set: precision of the refreshed ciphertext, level recovery, EvalMod
 * accuracy, and the Min-KS / OF-Limb working-set reductions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "boot/bootstrapper.h"
#include "ckks/encryptor.h"

namespace ark {
namespace {

class BootTest : public ::testing::Test
{
  protected:
    static void SetUpTestSuite()
    {
        params_ = new CkksParams(CkksParams::testBoot());
        ctx_ = new CkksContext(*params_);
        rng_ = new Rng(20220501);
        enc_ = new CkksEncoder(*ctx_);
        keygen_ = new KeyGenerator(*ctx_, *rng_);
        sk_ = new SecretKey(keygen_->secretKey());
        encryptor_ = new CkksEncryptor(*ctx_, *rng_);
        decryptor_ = new CkksDecryptor(*ctx_, *sk_);
        eval_ = new CkksEvaluator(*ctx_);
    }

    static void TearDownTestSuite()
    {
        delete eval_;
        delete decryptor_;
        delete encryptor_;
        delete sk_;
        delete keygen_;
        delete enc_;
        delete rng_;
        delete ctx_;
        delete params_;
    }

    std::vector<Complex> randomMessage(u64 seed, double mag = 0.5)
    {
        Rng rng(seed);
        std::vector<Complex> m(params_->num_slots);
        for (auto &x : m)
            x = Complex((rng.uniformReal() * 2 - 1) * mag,
                        (rng.uniformReal() * 2 - 1) * mag);
        return m;
    }

    Ciphertext encryptAtLevel0(const std::vector<Complex> &m)
    {
        // Encode at Delta0 = q0 / msg_ratio: the message ratio bounds
        // the precision amplification of bootstrapping.
        const double delta0 =
            static_cast<double>(ctx_->qModuli()[0].value()) / 256.0;
        auto pt = enc_->encode(m, 0, delta0);
        auto ct = encryptor_->encryptSymmetric(pt, *sk_);
        ct.slots = params_->num_slots;
        return ct;
    }

    std::vector<Complex> decrypt(const Ciphertext &ct)
    {
        return enc_->decode(decryptor_->decrypt(ct), params_->num_slots);
    }

    static double maxErr(const std::vector<Complex> &a,
                         const std::vector<Complex> &b)
    {
        double e = 0;
        for (size_t i = 0; i < a.size(); ++i)
            e = std::max(e, std::abs(a[i] - b[i]));
        return e;
    }

    static CkksParams *params_;
    static CkksContext *ctx_;
    static Rng *rng_;
    static CkksEncoder *enc_;
    static KeyGenerator *keygen_;
    static SecretKey *sk_;
    static CkksEncryptor *encryptor_;
    static CkksDecryptor *decryptor_;
    static CkksEvaluator *eval_;
};

CkksParams *BootTest::params_ = nullptr;
CkksContext *BootTest::ctx_ = nullptr;
Rng *BootTest::rng_ = nullptr;
CkksEncoder *BootTest::enc_ = nullptr;
KeyGenerator *BootTest::keygen_ = nullptr;
SecretKey *BootTest::sk_ = nullptr;
CkksEncryptor *BootTest::encryptor_ = nullptr;
CkksDecryptor *BootTest::decryptor_ = nullptr;
CkksEvaluator *BootTest::eval_ = nullptr;

TEST_F(BootTest, EvalModRecoversFractionalPart)
{
    // Feed x = f + I with integer I and small fraction f; EvalMod must
    // return f (x mod 1, centered).
    Rng rng(31);
    std::vector<Complex> x(params_->num_slots);
    std::vector<double> frac(params_->num_slots);
    for (size_t i = 0; i < x.size(); ++i) {
        double f = (rng.uniformReal() - 0.5) * 0.01;
        i64 integer = static_cast<i64>(rng.uniform(21)) - 10;
        frac[i] = f;
        x[i] = Complex(static_cast<double>(integer) + f, 0.0);
    }
    auto pt = enc_->encode(x, ctx_->maxLevel());
    auto ct = encryptor_->encryptSymmetric(pt, *sk_);
    ct.slots = params_->num_slots;

    KeyCache keys(*keygen_, *sk_, ctx_->degree());
    EvalModConfig cfg{15, 8};
    auto out = decrypt(evalMod(*eval_, ct, keys.multiplication(), cfg));
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_NEAR(out[i].real(), frac[i], 2e-4) << "slot " << i;
}

TEST_F(BootTest, BootstrapRefreshesLevelZeroCiphertext)
{
    BootConfig cfg;
    cfg.schedule = KeySchedule::MinKS;
    cfg.pt_mode = PlaintextMode::OFLimb;
    Bootstrapper boot(*ctx_, *enc_, cfg);
    KeyCache keys(*keygen_, *sk_, ctx_->degree());

    auto m = randomMessage(32);
    auto ct0 = encryptAtLevel0(m);
    BootStats stats;
    auto refreshed = boot.bootstrap(*eval_, ct0, keys, &stats);

    EXPECT_EQ(refreshed.level(), boot.outputLevel());
    EXPECT_GT(refreshed.level(), 0);
    EXPECT_LT(maxErr(m, decrypt(refreshed)), 5e-2);
    EXPECT_GT(stats.hidft.rotations, 0u);
    EXPECT_GT(stats.hdft.pmults, 0u);
}

TEST_F(BootTest, BootstrappedCiphertextSupportsFurtherMults)
{
    BootConfig cfg;
    Bootstrapper boot(*ctx_, *enc_, cfg);
    KeyCache keys(*keygen_, *sk_, ctx_->degree());

    auto m = randomMessage(33);
    auto refreshed = boot.bootstrap(*eval_, encryptAtLevel0(m), keys);

    // Square the refreshed ciphertext: impossible before bootstrapping.
    auto sq = eval_->rescale(eval_->square(refreshed,
                                           keys.multiplication()));
    auto out = decrypt(sq);
    double err = 0;
    for (size_t i = 0; i < m.size(); ++i)
        err = std::max(err, std::abs(out[i] - m[i] * m[i]));
    EXPECT_LT(err, 1e-1);
}

TEST_F(BootTest, MinKsUsesFewerKeysThanBaseline)
{
    auto m = randomMessage(34);

    BootConfig base_cfg;
    base_cfg.schedule = KeySchedule::Baseline;
    base_cfg.pt_mode = PlaintextMode::Full;
    Bootstrapper base_boot(*ctx_, *enc_, base_cfg);
    KeyCache base_keys(*keygen_, *sk_, ctx_->degree());
    BootStats base_stats;
    auto base_out = base_boot.bootstrap(*eval_, encryptAtLevel0(m),
                                        base_keys, &base_stats);

    BootConfig mk_cfg;
    mk_cfg.schedule = KeySchedule::MinKS;
    mk_cfg.pt_mode = PlaintextMode::Full;
    Bootstrapper mk_boot(*ctx_, *enc_, mk_cfg);
    KeyCache mk_keys(*keygen_, *sk_, ctx_->degree());
    BootStats mk_stats;
    auto mk_out = mk_boot.bootstrap(*eval_, encryptAtLevel0(m), mk_keys,
                                    &mk_stats);

    // Both schedules compute the same function...
    EXPECT_LT(maxErr(decrypt(base_out), decrypt(mk_out)), 1e-2);
    // ...but Min-KS materializes far fewer distinct rotation keys
    // (2 per H-(I)DFT instead of bs+gs-2): this is the paper's
    // inter-operation key reuse.
    EXPECT_EQ(mk_stats.hidft.distinct_evks, 2u);
    EXPECT_EQ(mk_stats.hdft.distinct_evks, 2u);
    EXPECT_GT(base_stats.hidft.distinct_evks, 10u);
    EXPECT_LT(mk_keys.distinctGaloisKeys(),
              base_keys.distinctGaloisKeys());
    EXPECT_LT(mk_keys.byteSize(), base_keys.byteSize());
}

TEST_F(BootTest, OfLimbBootstrapMatchesFull)
{
    auto m = randomMessage(35);

    BootConfig full_cfg;
    full_cfg.pt_mode = PlaintextMode::Full;
    Bootstrapper full_boot(*ctx_, *enc_, full_cfg);
    KeyCache keys(*keygen_, *sk_, ctx_->degree());
    auto ct0 = encryptAtLevel0(m);
    auto full_out = full_boot.bootstrap(*eval_, ct0, keys);

    BootConfig of_cfg;
    of_cfg.pt_mode = PlaintextMode::OFLimb;
    Bootstrapper of_boot(*ctx_, *enc_, of_cfg);
    auto of_out = of_boot.bootstrap(*eval_, ct0, keys);

    EXPECT_LT(maxErr(decrypt(full_out), decrypt(of_out)), 1e-9);
}

} // namespace
} // namespace ark
