/**
 * @file
 * Wire-format tests against docs/wire_format.md: golden header bytes
 * (the §9 worked example, locked so any encoding change is a loud
 * wire-format break), envelope rejection (bad magic / future version /
 * unknown type / oversized body), body-level malformation (truncated,
 * trailing, corrupted shape fields), round-trips of every payload
 * type across the functional parameter presets, params hashing across
 * ALL presets including the paper's Table-III-scale sets, and the §6
 * seed-compression contract (bit-identical re-expansion, >= 1.9x
 * smaller evk and public-key frames).
 */

#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "wire/serializer.h"
#include "wire/stats_frame.h"

namespace ark {
namespace {

bool
polyEq(const RnsPoly &x, const RnsPoly &y)
{
    if (!x.sameShape(y) || x.rep() != y.rep())
        return false;
    for (size_t l = 0; l < x.numLimbs(); ++l) {
        for (size_t i = 0; i < x.degree(); ++i) {
            if (x.limb(l)[i] != y.limb(l)[i])
                return false;
        }
    }
    return true;
}

bool
evalKeyEq(const EvalKey &x, const EvalKey &y)
{
    if (x.numDigits() != y.numDigits())
        return false;
    for (size_t d = 0; d < x.numDigits(); ++d) {
        if (!polyEq(x.b[d], y.b[d]) || !polyEq(x.a[d], y.a[d]))
            return false;
    }
    return true;
}

// ---------------------------------------------------------------- §2/§9

TEST(WireEnvelope, GoldenHeaderBytes)
{
    // The §9 worked example of docs/wire_format.md, byte for byte. If
    // this test breaks, the wire format changed and BOTH the spec's
    // §9 hex dump and kWireVersion must be revisited.
    const std::vector<u8> body = {0xAA, 0xBB};
    const std::vector<u8> frame =
        encodeFrame(FrameType::Ciphertext, 0x0123456789ABCDEFull, body);
    const std::vector<u8> expected = {
        0x41, 0x52, 0x4B, 0x57,                         // "ARKW"
        0x01, 0x00,                                     // version 1
        0x0B, 0x00,                                     // CIPHERTEXT
        0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // body_len 2
        0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01, // params hash
        0xAA, 0xBB,                                     // body
    };
    EXPECT_EQ(frame, expected);

    const FrameHeader h =
        decodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
    EXPECT_EQ(h.version, kWireVersion);
    EXPECT_EQ(h.type, FrameType::Ciphertext);
    EXPECT_EQ(h.body_len, 2u);
    EXPECT_EQ(h.params_hash, 0x0123456789ABCDEFull);
}

TEST(WireEnvelope, RejectsBadMagic)
{
    std::vector<u8> frame = encodeFrame(FrameType::ClientHello, 0, {});
    frame[0] ^= 0xFF;
    try {
        decodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
        FAIL() << "bad magic accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::BadMagic);
    }
}

TEST(WireEnvelope, RejectsFutureVersion)
{
    // A v2 frame from a future peer: magic passes, version does not —
    // and the version check fires BEFORE the type check, so a future
    // frame with an unknown type still reports UnsupportedVersion.
    std::vector<u8> frame = encodeFrame(FrameType::ClientHello, 0, {});
    frame[4] = 2;
    frame[6] = 0x7F; // unknown type too
    try {
        decodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
        FAIL() << "future version accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::UnsupportedVersion);
    }
}

TEST(WireEnvelope, RejectsUnknownFrameType)
{
    // 0x10 was the first unknown value until STATS claimed it (§5.16),
    // then 0x11-0x13 went to PING/PONG/SUBMIT2 (§5.17-§5.19, appended
    // within v1 per §8); 0x14 is now the first unknown.
    for (const u16 bad : {u16{0x00}, u16{0x14}, u16{0xFFFF}}) {
        std::vector<u8> frame =
            encodeFrame(FrameType::ClientHello, 0, {});
        frame[6] = static_cast<u8>(bad);
        frame[7] = static_cast<u8>(bad >> 8);
        try {
            decodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
            FAIL() << "unknown type " << bad << " accepted";
        } catch (const WireError &e) {
            EXPECT_EQ(e.code(), WireCode::BadFrameType);
        }
    }
}

// ------------------------------------------------------------------ §5.16

TEST(WireStats, GoldenStatsHeader)
{
    // A STATS request frame (empty body), byte for byte: type 0x10
    // rides the unchanged v1 envelope.
    const std::vector<u8> frame =
        encodeFrame(FrameType::Stats, 0x0123456789ABCDEFull, {});
    const std::vector<u8> expected = {
        0x41, 0x52, 0x4B, 0x57,                         // "ARKW"
        0x01, 0x00,                                     // version 1
        0x10, 0x00,                                     // STATS
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // body_len 0
        0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01, // params hash
    };
    EXPECT_EQ(frame, expected);

    const FrameHeader h =
        decodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
    EXPECT_EQ(h.type, FrameType::Stats);
    EXPECT_EQ(h.body_len, 0u);
    EXPECT_STREQ(frameTypeName(h.type), "STATS");
}

TEST(WireStats, StatsBodyRoundTrip)
{
    RemoteStats s;
    s.uptime_ms = 123456;
    s.active_sessions = 2;
    s.sessions_opened = 17;
    s.outstanding = 5;
    s.shards = {{3, 16, 1, 901}, {0, 8, 2, 77}};
    s.counters = {{"admit_accepted", 978}, {"evk_hit", 12345}};
    s.phases = {{"execute", 978, 4.25, 4.0, 9.5, 22.75},
                {"queue_wait", 978, 0.5, 0.25, 2.0, 3.5}};

    ByteWriter w;
    writeStats(w, s);
    ByteReader r(w.bytes());
    const RemoteStats d = readStats(r);
    r.finish();

    EXPECT_EQ(d.uptime_ms, s.uptime_ms);
    EXPECT_EQ(d.active_sessions, s.active_sessions);
    EXPECT_EQ(d.sessions_opened, s.sessions_opened);
    EXPECT_EQ(d.outstanding, s.outstanding);
    ASSERT_EQ(d.shards.size(), 2u);
    EXPECT_EQ(d.shards[0].queue_depth, 3u);
    EXPECT_EQ(d.shards[0].queue_capacity, 16u);
    EXPECT_EQ(d.shards[1].in_flight, 2u);
    EXPECT_EQ(d.shards[1].total_done, 77u);
    ASSERT_EQ(d.counters.size(), 2u);
    EXPECT_EQ(d.counters[0].name, "admit_accepted");
    EXPECT_EQ(d.counters[1].value, 12345u);
    ASSERT_EQ(d.phases.size(), 2u);
    EXPECT_EQ(d.phases[0].name, "execute");
    EXPECT_EQ(d.phases[0].count, 978u);
    EXPECT_DOUBLE_EQ(d.phases[0].p99_ms, 9.5);
    EXPECT_DOUBLE_EQ(d.phases[1].max_ms, 3.5);

    // A truncated body is rejected with the §8 typed error.
    std::vector<u8> cut(w.bytes().begin(), w.bytes().end() - 3);
    ByteReader rc(cut);
    EXPECT_THROW(readStats(rc), WireError);
}

TEST(WireEnvelope, RejectsOversizedFrame)
{
    // body_len is validated against the receive-side limit before any
    // body byte would be read (§2).
    const std::vector<u8> body(128, 0);
    const std::vector<u8> frame =
        encodeFrame(FrameType::Ciphertext, 0, body);
    try {
        decodeFrameHeader(frame.data(), /*max_frame_bytes=*/64);
        FAIL() << "oversized frame accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::FrameTooLarge);
    }
    // The same frame passes under a sufficient limit.
    EXPECT_EQ(decodeFrameHeader(frame.data(), 128).body_len, 128u);
}

// ------------------------------------------------------------------- §4

TEST(WirePrimitives, TruncationAndTrailingBytesAreTyped)
{
    ByteWriter w;
    w.putU32(7);
    w.putString("ark");
    const std::vector<u8> &buf = w.bytes();

    {
        // Cut mid-string: every read is bounds-checked.
        ByteReader r(buf.data(), buf.size() - 2);
        EXPECT_EQ(r.getU32(), 7u);
        try {
            r.getString();
            FAIL() << "truncated read succeeded";
        } catch (const WireError &e) {
            EXPECT_EQ(e.code(), WireCode::TruncatedFrame);
        }
    }
    {
        // Unconsumed bytes: finish() rejects.
        ByteReader r(buf);
        EXPECT_EQ(r.getU32(), 7u);
        try {
            r.finish();
            FAIL() << "trailing bytes accepted";
        } catch (const WireError &e) {
            EXPECT_EQ(e.code(), WireCode::TrailingBytes);
        }
        EXPECT_EQ(r.getString(), "ark");
        r.finish(); // now fully consumed
    }
}

TEST(WirePrimitives, RoundTripsEveryScalarType)
{
    ByteWriter w;
    w.putU8(0xFE);
    w.putU16(0xBEEF);
    w.putU32(0xDEADBEEFu);
    w.putU64(0x0123456789ABCDEFull);
    w.putI64(-42);
    w.putI32(-7);
    w.putF64(2.718281828459045);
    w.putString("");
    w.putString("tenant-a");

    ByteReader r(w.bytes());
    EXPECT_EQ(r.getU8(), 0xFE);
    EXPECT_EQ(r.getU16(), 0xBEEF);
    EXPECT_EQ(r.getU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.getU64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_EQ(r.getI32(), -7);
    EXPECT_EQ(r.getF64(), 2.718281828459045);
    EXPECT_EQ(r.getString(), "");
    EXPECT_EQ(r.getString(), "tenant-a");
    r.finish();
}

// ------------------------------------------------------------------- §3

TEST(WireParams, RoundTripAndHashAcrossAllPresets)
{
    // Every preset in the repo, including the accelerator-scale
    // Table III sets (params round-trip needs no context, so the big
    // sets cost nothing here).
    const std::vector<CkksParams> presets = {
        CkksParams::ark(),      CkksParams::lattigo(),
        CkksParams::hundredX(), CkksParams::f1(),
        CkksParams::testTiny(), CkksParams::testSmall(),
        CkksParams::testBoot(),
    };
    std::vector<u64> hashes;
    for (const CkksParams &p : presets) {
        ByteWriter w;
        writeParams(w, p);
        ByteReader r(w.bytes());
        const CkksParams q = readParams(r);
        r.finish();
        EXPECT_EQ(q.name, p.name);
        EXPECT_EQ(q.degree, p.degree);
        EXPECT_EQ(q.num_slots, p.num_slots);
        EXPECT_EQ(q.max_level, p.max_level);
        EXPECT_EQ(q.dnum, p.dnum);
        EXPECT_EQ(q.log_q0, p.log_q0);
        EXPECT_EQ(q.log_scale, p.log_scale);
        EXPECT_EQ(q.log_special, p.log_special);
        EXPECT_EQ(q.word_bytes, p.word_bytes);
        EXPECT_EQ(q.hamming_weight, p.hamming_weight);
        EXPECT_EQ(q.boot_levels, p.boot_levels);
        EXPECT_EQ(paramsHash(q), paramsHash(p));
        hashes.push_back(paramsHash(p));
    }
    // All presets hash distinctly.
    for (size_t i = 0; i < hashes.size(); ++i) {
        for (size_t j = i + 1; j < hashes.size(); ++j)
            EXPECT_NE(hashes[i], hashes[j])
                << presets[i].name << " vs " << presets[j].name;
    }
}

TEST(WireParams, HashIgnoresHostLocalKnobs)
{
    // §3: the hash binds the SCHEME, not how a host executes it.
    CkksParams p = CkksParams::testTiny();
    const u64 h = paramsHash(p);
    p.name = "renamed";
    p.backend = BackendKind::Parallel;
    p.backend_threads = 7;
    EXPECT_EQ(paramsHash(p), h);
    p.log_scale += 1;
    EXPECT_NE(paramsHash(p), h);
}

TEST(WireParams, RejectsDegenerateShapes)
{
    CkksParams p = CkksParams::testTiny();
    ByteWriter w;
    writeParams(w, p);
    std::vector<u8> body = w.bytes();
    // degree is the first numeric field after the name
    // (u32 len + bytes): corrupt it to a non-power-of-two.
    const size_t degree_off = 4 + p.name.size();
    body[degree_off] = 3;
    ByteReader r(body);
    try {
        (void)readParams(r);
        FAIL() << "degenerate degree accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::BadField);
    }
}

// --------------------------------------------------- §5.10/§5.11 payloads

/** Round-trip every ciphertext/plaintext/key type at one preset. */
void
roundTripPayloads(CkksParams params)
{
    CkksContext ctx(params);
    Rng rng(2026);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncoder encoder(ctx);
    CkksEncryptor encryptor(ctx, rng);

    std::vector<Complex> msg(params.num_slots);
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = Complex(0.1 * static_cast<double>(i % 7), -0.05);
    const Plaintext pt = encoder.encode(msg, ctx.maxLevel());
    const Ciphertext ct = encryptor.encryptSymmetric(pt, sk);

    {
        ByteWriter w;
        writePlaintext(w, pt);
        ByteReader r(w.bytes());
        const Plaintext back = readPlaintext(r, ctx);
        r.finish();
        EXPECT_EQ(back.scale, pt.scale);
        EXPECT_EQ(back.level, pt.level);
        EXPECT_TRUE(polyEq(back.poly, pt.poly));
    }
    {
        ByteWriter w;
        writeCiphertext(w, ct);
        ByteReader r(w.bytes());
        const Ciphertext back = readCiphertext(r, ctx);
        r.finish();
        EXPECT_EQ(back.scale, ct.scale);
        EXPECT_EQ(back.slots, ct.slots);
        EXPECT_TRUE(polyEq(back.b, ct.b));
        EXPECT_TRUE(polyEq(back.a, ct.a));
    }
    {
        // Unseeded evk round-trip.
        const EvalKey evk = keygen.evkMult(sk);
        ByteWriter w;
        writeEvalKey(w, EvalKeyPurpose::Multiplication, 0, evk);
        ByteReader r(w.bytes());
        const WireEvalKey back = readEvalKey(r, ctx);
        r.finish();
        EXPECT_EQ(back.purpose, EvalKeyPurpose::Multiplication);
        EXPECT_TRUE(evalKeyEq(back.key, evk));
    }
    {
        // Unseeded public-key round-trip.
        const PublicKey pk = keygen.publicKey(sk);
        ByteWriter w;
        writePublicKey(w, pk);
        ByteReader r(w.bytes());
        const PublicKey back = readPublicKey(r, ctx);
        r.finish();
        EXPECT_TRUE(polyEq(back.b, pk.b));
        EXPECT_TRUE(polyEq(back.a, pk.a));
    }
}

TEST(WirePayloads, RoundTripTestTiny)
{
    roundTripPayloads(CkksParams::testTiny());
}

TEST(WirePayloads, RoundTripTestSmall)
{
    roundTripPayloads(CkksParams::testSmall());
}

TEST(WirePayloads, RoundTripTestBoot)
{
    roundTripPayloads(CkksParams::testBoot());
}

TEST(WirePayloads, RejectsCorruptedShapeFields)
{
    CkksParams params = CkksParams::testTiny();
    CkksContext ctx(params);
    Rng rng(11);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncoder encoder(ctx);
    CkksEncryptor encryptor(ctx, rng);
    const Plaintext pt = encoder.encode(
        std::vector<Complex>(params.num_slots, Complex(0.5, 0)),
        ctx.maxLevel());
    const Ciphertext ct = encryptor.encryptSymmetric(pt, sk);

    ByteWriter w;
    writeCiphertext(w, ct);
    const std::vector<u8> good = w.bytes();

    const auto expectBad = [&](std::vector<u8> body,
                               const char *what) {
        ByteReader r(body);
        try {
            (void)readCiphertext(r, ctx);
            FAIL() << what << " accepted";
        } catch (const WireError &e) {
            EXPECT_EQ(e.code(), WireCode::BadField) << what;
        }
    };

    // Body layout: f64 scale, u32 slots, then poly b whose first
    // fields are u32 degree, u16 limbs, u8 rep.
    std::vector<u8> bad = good;
    bad[12] ^= 0xFF; // degree of poly b
    expectBad(std::move(bad), "corrupted degree");

    bad = good;
    bad[16] = 0xFF; // limb count beyond max_level+1
    expectBad(std::move(bad), "corrupted limb count");

    bad = good;
    bad[18] = 2; // rep flag outside {0, 1}
    expectBad(std::move(bad), "corrupted rep flag");

    bad = good;
    bad[8] = 0;
    bad[9] = 0;
    bad[10] = 0;
    bad[11] = 0; // zero slots
    expectBad(std::move(bad), "zero slot count");

    // Truncated body: the poly word reads are bounds-checked.
    ByteReader r(good.data(), good.size() - 8);
    try {
        (void)readCiphertext(r, ctx);
        FAIL() << "truncated ciphertext accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::TruncatedFrame);
    }

    // Trailing garbage after a valid body.
    std::vector<u8> padded = good;
    padded.push_back(0x00);
    ByteReader r2(padded);
    (void)readCiphertext(r2, ctx);
    try {
        r2.finish();
        FAIL() << "trailing bytes accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::TrailingBytes);
    }
}

// ------------------------------------------------------------------- §6

TEST(WireSeedCompression, EvkReExpandsBitIdentical)
{
    CkksParams params = CkksParams::testTiny();
    CkksContext ctx(params);
    Rng rng(404);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();

    const u64 seed = 0xA5EED5EEDull;
    const EvalKey evk = keygen.evkMultSeeded(sk, seed);
    ASSERT_TRUE(evk.seeded);

    // The seeded generator's a halves ARE the canonical expansion —
    // the normative §6 contract both keygen and the wire reader share.
    const std::vector<RnsPoly> expanded = expandSeededEvkA(ctx, seed);
    ASSERT_EQ(expanded.size(), evk.numDigits());
    for (size_t d = 0; d < expanded.size(); ++d)
        EXPECT_TRUE(polyEq(expanded[d], evk.a[d]));

    // Seed-compressed round-trip reconstructs the full key.
    ByteWriter w;
    writeEvalKey(w, EvalKeyPurpose::Multiplication, 0, evk);
    ByteReader r(w.bytes());
    const WireEvalKey back = readEvalKey(r, ctx);
    r.finish();
    EXPECT_TRUE(back.key.seeded);
    EXPECT_EQ(back.key.a_seed, seed);
    EXPECT_TRUE(evalKeyEq(back.key, evk));
}

TEST(WireSeedCompression, SeededFramesAreAtLeastHalfSmaller)
{
    // The acceptance bar: seed-compressed key frames >= 1.9x smaller
    // than their unseeded serialization.
    CkksParams params = CkksParams::testTiny();
    CkksContext ctx(params);
    Rng rng(505);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();

    const EvalKey evk_plain = keygen.evkMult(sk);
    const EvalKey evk_seeded = keygen.evkMultSeeded(sk, 99);
    ByteWriter wp, ws;
    writeEvalKey(wp, EvalKeyPurpose::Multiplication, 0, evk_plain);
    writeEvalKey(ws, EvalKeyPurpose::Multiplication, 0, evk_seeded);
    EXPECT_GE(static_cast<double>(wp.size()),
              1.9 * static_cast<double>(ws.size()))
        << "unseeded evk " << wp.size() << " B vs seeded "
        << ws.size() << " B";

    const PublicKey pk_plain = keygen.publicKey(sk);
    const PublicKey pk_seeded = keygen.publicKeySeeded(sk, 100);
    ByteWriter pp, ps;
    writePublicKey(pp, pk_plain);
    writePublicKey(ps, pk_seeded);
    EXPECT_GE(static_cast<double>(pp.size()),
              1.9 * static_cast<double>(ps.size()))
        << "unseeded pk " << pp.size() << " B vs seeded " << ps.size()
        << " B";
}

TEST(WireSeedCompression, SeededPublicKeyStillEncrypts)
{
    // End-to-end sanity for §6 on the public-key side: encrypt under
    // a seeded pk that went through the wire, decrypt with the secret
    // key, recover the message.
    CkksParams params = CkksParams::testTiny();
    CkksContext ctx(params);
    Rng rng(606);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();
    const PublicKey pk = keygen.publicKeySeeded(sk, 0xFACADE);

    ByteWriter w;
    writePublicKey(w, pk);
    ByteReader r(w.bytes());
    const PublicKey back = readPublicKey(r, ctx);
    r.finish();

    CkksEncoder encoder(ctx);
    CkksEncryptor encryptor(ctx, rng);
    CkksDecryptor decryptor(ctx, sk);
    std::vector<Complex> msg(params.num_slots);
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = Complex(0.25 + 0.01 * static_cast<double>(i % 5), 0);
    const Plaintext pt = encoder.encode(msg, ctx.maxLevel());
    const Ciphertext ct = encryptor.encryptPublic(pt, back);
    const std::vector<Complex> out =
        encoder.decode(decryptor.decrypt(ct), params.num_slots);
    for (size_t i = 0; i < msg.size(); ++i)
        EXPECT_NEAR(out[i].real(), msg[i].real(), 1e-2);
}

TEST(WireSeedCompression, RejectsWrongDigitCount)
{
    CkksParams params = CkksParams::testTiny();
    CkksContext ctx(params);
    Rng rng(707);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();
    const EvalKey evk = keygen.evkMultSeeded(sk, 1);

    ByteWriter w;
    writeEvalKey(w, EvalKeyPurpose::Multiplication, 0, evk);
    std::vector<u8> body = w.bytes();
    // Body layout: u8 purpose, u64 galois_elt, u8 flags, u64 seed,
    // u16 dnum at offset 18.
    body[18] = static_cast<u8>(ctx.dnum() + 1);
    ByteReader r(body);
    try {
        (void)readEvalKey(r, ctx);
        FAIL() << "wrong digit count accepted";
    } catch (const WireError &e) {
        EXPECT_EQ(e.code(), WireCode::BadField);
    }
}

} // namespace
} // namespace ark
