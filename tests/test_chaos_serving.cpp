/**
 * @file
 * End-to-end chaos tests (docs/robustness.md): seeded fault schedules
 * against the full loopback serving stack, asserting the stack
 * RECOVERS — retry/reconnect reaches >= 99% eventual success on
 * retryable-only schedules with every successful response
 * BIT-IDENTICAL to the fault-free run; the conservation ledger holds
 * (every admitted request settles exactly one of ok / failed /
 * deadline-expired / refused-at-drain); the worker watchdog respawns
 * crashed and stuck workers; graceful drain refuses queued work with
 * the typed SERVER_SHUTDOWN surface.
 *
 * Where timing is asserted (deadlines, watchdog, drain) the tests run
 * SLEEP-FREE: a ManualServeClock supplies time and the WorkerStall
 * gate holds workers at a barrier the test releases — no sleeps, no
 * flaky races. The loopback retry test uses real sockets but an
 * injectable no-op sleeper, so backoff never waits wall-clock time.
 *
 * The schedule seed defaults to a fixed value and can be overridden
 * with ARK_CHAOS_SEED (digits) — CI runs one randomized-seed job and
 * logs the seed on failure so any break replays exactly.
 */

#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "fault/fault.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "serve/clock.h"

namespace ark {
namespace {

/** The seeded schedule under test: fixed default, ARK_CHAOS_SEED
 *  (digits) overrides — the randomized CI job sets it and echoes it. */
u64
chaosSeed()
{
    const char *env = std::getenv("ARK_CHAOS_SEED");
    if (env == nullptr || *env == '\0')
        return 20250809;
    u64 v = 0;
    for (const char *p = env; *p; ++p) {
        if (*p < '0' || *p > '9') {
            ADD_FAILURE() << "ARK_CHAOS_SEED must be digits, got '"
                          << env << "'";
            return 20250809;
        }
        v = v * 10 + static_cast<u64>(*p - '0');
    }
    return v;
}

/** Disarm-on-exit guard so no test leaks an armed plane. */
struct ArmedPlane
{
    explicit ArmedPlane(const fault::FaultPlan &plan)
    {
        fault::FaultInjector::global().arm(plan);
    }
    ~ArmedPlane() { fault::FaultInjector::global().disarm(); }
};

/** Server-side stack: context, keys, workloads, inputs, BatchServer
 *  (+ optional WireServer on loopback). Mirrors test_net_serving. */
struct ChaosStack
{
    std::unique_ptr<CkksContext> ctx;
    Rng rng{777};
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    std::unique_ptr<KeyCache> keys;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<PlaintextStore> store;
    std::vector<ServeWorkload> workloads;
    std::vector<Ciphertext> inputs;
    std::unique_ptr<BatchServer> server;
    std::unique_ptr<WireServer> net;

    explicit ChaosStack(BatchServerConfig cfg = {}, bool wire = true)
    {
        unsetenv("ARK_BACKEND");
        unsetenv("ARK_THREADS");
        CkksParams p = CkksParams::testTiny();
        p.backend = BackendKind::Scalar;
        p.backend_threads = 2;
        ctx = std::make_unique<CkksContext>(p);
        keygen = std::make_unique<KeyGenerator>(*ctx, rng);
        sk = keygen->secretKey();
        keys = std::make_unique<KeyCache>(*keygen, sk, ctx->degree());
        encoder = std::make_unique<CkksEncoder>(*ctx);
        CkksEncryptor encryptor(*ctx, rng);

        store = std::make_unique<PlaintextStore>(*ctx,
                                                 PlaintextMode::OFLimb);
        std::vector<Complex> m(p.num_slots);
        for (size_t i = 0; i < m.size(); ++i)
            m[i] = Complex(0.6 + 0.001 * static_cast<double>(i % 11),
                           0.02);
        store->insert(encoder->encode(m, ctx->maxLevel()));

        LowerOptions opt;
        opt.max_ops = 20;
        workloads = standardServingMix(p, opt);

        std::vector<Complex> in(p.num_slots, Complex(0.5, 0.1));
        inputs.push_back(encryptor.encryptSymmetric(
            encoder->encode(in, ctx->maxLevel()), sk));

        server = std::make_unique<BatchServer>(
            *ctx, *keys, *store, workloads, inputs, cfg);
        if (wire)
            net = std::make_unique<WireServer>(*server);
    }
};

/** The tenant's locally generated seeded key set for one workload. */
struct TenantKeys
{
    SecretKey sk;
    EvalKey mult;
    std::vector<std::pair<i64, EvalKey>> rotations;

    TenantKeys(const CkksContext &ctx, Rng &rng,
               const std::vector<i64> &amounts, u64 master_seed)
    {
        KeyGenerator keygen(ctx, rng);
        sk = keygen.secretKey();
        u64 seed = master_seed;
        mult = keygen.evkMultSeeded(sk, seed++);
        for (i64 r : amounts)
            rotations.emplace_back(
                r, keygen.evkRotationSeeded(sk, r, seed++));
    }
};

u64
uploadKeys(WireClient &client, const TenantKeys &tk)
{
    u64 resident = client.uploadMultiplicationKey(tk.mult);
    for (const auto &[r, key] : tk.rotations)
        resident = client.uploadRotationKey(r, key);
    return resident;
}

Ciphertext
encryptInput(const WireClient &client, const SecretKey &sk, Rng &rng)
{
    CkksEncoder encoder(client.context());
    CkksEncryptor encryptor(client.context(), rng);
    std::vector<Complex> msg(client.params().num_slots,
                             Complex(0.4, -0.2));
    return encryptor.encryptSymmetric(
        encoder.encode(msg, client.context().maxLevel()), sk);
}

/** Spin (yield, no sleep) until @p n workers sit at the stall gate. */
void
awaitStalled(size_t n)
{
    while (fault::FaultInjector::global().stalledCount() < n)
        std::this_thread::yield();
}

// -------------------------------------------------- retry / reconnect

TEST(ChaosServing, RetryableScheduleRecoversBitIdentical)
{
    const u64 seed = chaosSeed();
    std::printf("[chaos] ARK_CHAOS_SEED=%llu\n",
                static_cast<unsigned long long>(seed));
    RecordProperty("chaos_seed", static_cast<int>(seed % 1000000));

    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.max_sessions = 64; // reconnect may briefly overlap a dying
                           // session with its replacement
    ChaosStack s(cfg);
    WireClient client("127.0.0.1", s.net->port());
    client.openSession("tenant-chaos");
    const RemoteWorkload &wl = client.workloads()[0];
    Rng tenant_rng(4242);
    TenantKeys tk(client.context(), tenant_rng, wl.rotations, 9000);
    uploadKeys(client, tk);
    const Ciphertext input = encryptInput(client, tk.sk, tenant_rng);

    // Fault-free baseline: the bit-identity reference.
    const WireClient::SubmitOutcome base = client.submit(0, input);
    ASSERT_TRUE(base.ok) << base.error;
    const u64 base_checksum = base.checksum;

    // Retryable-only schedule: short I/O, small delays, and
    // connection resets — every one of these the client can out-retry
    // (resets via reconnect + session re-establish + key re-upload).
    // Worker sites stay DISARMED: nothing here is allowed to fail a
    // request terminally.
    fault::FaultPlan plan;
    plan.seed = seed;
    plan.delay_us = 50;
    auto site = [](fault::Site x) { return static_cast<size_t>(x); };
    plan.permille[site(fault::Site::RecvShort)] = 30;
    plan.permille[site(fault::Site::SendShort)] = 30;
    plan.permille[site(fault::Site::RecvDelay)] = 10;
    plan.permille[site(fault::Site::SendDelay)] = 10;
    plan.permille[site(fault::Site::RecvReset)] = 3;
    plan.permille[site(fault::Site::SendReset)] = 3;
    ArmedPlane armed(plan);

    RetryPolicy pol;
    pol.max_attempts = 10;
    pol.jitter_seed = seed;
    u64 slept_ms = 0;
    pol.sleep_ms = [&slept_ms](u64 ms) { slept_ms += ms; };

    const size_t kRequests = 30;
    size_t ok = 0;
    for (size_t i = 0; i < kRequests; ++i) {
        try {
            const WireClient::SubmitOutcome out =
                client.submitWithRetry(0, input, pol);
            if (out.ok) {
                ok += 1;
                // Bit-identity THROUGH the chaos: a response that
                // survived short reads, delays, and resets must equal
                // the fault-free run exactly.
                EXPECT_EQ(out.checksum, base_checksum);
                EXPECT_EQ(ciphertextChecksum(out.output),
                          base_checksum);
            }
        } catch (const NetError &) {
            // counted as a failure below
        }
    }
    fault::FaultInjector::global().disarm();

    // >= 99% eventual success. On a retryable-only schedule with 10
    // attempts each, anything less means recovery is broken.
    EXPECT_GE(ok * 100, kRequests * 99)
        << "only " << ok << "/" << kRequests
        << " requests recovered (seed " << seed << ", "
        << client.reconnects() << " reconnects, backoff "
        << slept_ms << " ms simulated)";
    std::printf("[chaos] %zu/%zu ok, %zu reconnects, %llu ms "
                "simulated backoff\n",
                ok, kRequests, client.reconnects(),
                static_cast<unsigned long long>(slept_ms));

    // The plane actually did something, or this test proves nothing.
    auto &fi = fault::FaultInjector::global();
    u64 total_injected = 0;
    for (size_t i = 0; i < fault::kSiteCount; ++i)
        total_injected += fi.injected(static_cast<fault::Site>(i));
    EXPECT_GT(total_injected, 0u);

    // The stack is healthy after the storm.
    const WireClient::SubmitOutcome after = client.submit(0, input);
    EXPECT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.checksum, base_checksum);
    client.closeSession();
}

TEST(ChaosServing, ReconnectReestablishesSessionAndKeys)
{
    ChaosStack s;
    WireClient client("127.0.0.1", s.net->port());
    client.openSession("tenant-reconnect");
    const RemoteWorkload &wl = client.workloads()[0];
    Rng rng(1717);
    TenantKeys tk(client.context(), rng, wl.rotations, 9100);
    uploadKeys(client, tk);
    const Ciphertext input = encryptInput(client, tk.sk, rng);

    const WireClient::SubmitOutcome before = client.submit(0, input);
    ASSERT_TRUE(before.ok) << before.error;

    // Kill and rebuild the whole session. The server dropped this
    // tenant's uploaded keys with the connection, so success after
    // reconnect proves the client replayed its key uploads.
    client.reconnect();
    EXPECT_EQ(client.reconnects(), 1u);
    EXPECT_TRUE(client.sessionOpen());

    const WireClient::SubmitOutcome after = client.submit(0, input);
    ASSERT_TRUE(after.ok) << after.error;
    EXPECT_EQ(after.checksum, before.checksum);
    client.closeSession();
}

TEST(ChaosServing, PingAndDeadlineSubmit2RoundTrip)
{
    ChaosStack s;
    WireClient client("127.0.0.1", s.net->port());

    // §5.17 PING: pre-session liveness, nonce echoed, uptime sane.
    const WireClient::PingResult pr = client.ping();
    EXPECT_GE(pr.rtt_ms, 0.0);
    const WireClient::PingResult pr2 = client.ping();
    EXPECT_NE(pr.nonce, pr2.nonce);
    EXPECT_GE(pr2.uptime_ms, pr.uptime_ms);

    // §5.19 SUBMIT2: a generous deadline and a client-chosen request
    // id round-trip; the RESPONSE echoes OUR id.
    client.openSession("tenant-sub2");
    const RemoteWorkload &wl = client.workloads()[0];
    Rng rng(555);
    TenantKeys tk(client.context(), rng, wl.rotations, 9200);
    uploadKeys(client, tk);
    const Ciphertext input = encryptInput(client, tk.sk, rng);
    const u64 my_id = (1ull << 63) | 424242;
    const WireClient::SubmitOutcome out =
        client.submit(0, input, /*deadline_ms=*/60000, my_id);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.request_id, my_id);

    // And the plain frozen SUBMIT still works on the same session.
    const WireClient::SubmitOutcome plain = client.submit(0, input);
    EXPECT_TRUE(plain.ok) << plain.error;
    EXPECT_EQ(plain.checksum, out.checksum);
    client.closeSession();
}

// ------------------------------------------- sleep-free server chaos

TEST(ChaosServing, ExpiredDeadlineDropsUnstartedSleepFree)
{
    ManualServeClock clock;
    BatchServerConfig cfg;
    cfg.workers = 1;
    cfg.clock = &clock;
    ChaosStack s(cfg, /*wire=*/false);

    // Hold the single worker at the stall gate on job A...
    fault::FaultPlan plan;
    plan.permille[static_cast<size_t>(fault::Site::WorkerStall)] =
        1000;
    ArmedPlane armed(plan);
    std::future<ServeResult> fa = s.server->submit(0);
    awaitStalled(1);

    // ...queue job B with a 1 ms deadline, then let 10 ms pass on the
    // manual clock. No wall time passes at all.
    std::future<ServeResult> fb;
    ASSERT_EQ(s.server->trySubmitRemote(
                  0, std::make_shared<Ciphertext>(s.inputs[0]),
                  nullptr, fb, 0,
                  clock.nowMicros() + 1000),
              AdmitResult::Admitted);
    clock.advanceMs(10);

    // Release: A executes (admitted pre-deadline era, no deadline);
    // B is popped PAST its deadline and must settle typed, unexecuted.
    fault::FaultInjector::global().disarm();
    const ServeResult ra = fa.get();
    EXPECT_TRUE(ra.ok) << ra.error;
    const ServeResult rb = fb.get();
    EXPECT_FALSE(rb.ok);
    EXPECT_EQ(rb.error_kind, ServeErrorKind::DeadlineExceeded);
    EXPECT_EQ(rb.he_ops, 0u); // never executed

    const ServeReport rep = s.server->drain();
    EXPECT_EQ(rep.deadline_expired, 1u);
    EXPECT_EQ(rep.requests, 1u); // only A ran
}

TEST(ChaosServing, WatchdogRespawnsCrashedAndStuckWorkersSleepFree)
{
    ManualServeClock clock;
    BatchServerConfig cfg;
    cfg.workers = 1;
    cfg.clock = &clock;
    cfg.worker_stuck_ms = 50;
    ChaosStack s(cfg, /*wire=*/false);
    ASSERT_EQ(s.server->workers(), 1u);

    // Crash: the worker dies after settling its job as failed.
    {
        fault::FaultPlan plan;
        plan.permille[static_cast<size_t>(
            fault::Site::WorkerCrash)] = 1000;
        ArmedPlane armed(plan);
        std::future<ServeResult> f = s.server->submit(0);
        const ServeResult r = f.get();
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("injected worker crash"),
                  std::string::npos)
            << r.error;
    }
    // The sweep notices the dead thread and replaces it. The future
    // settles BEFORE the thread finishes unwinding, so spin (yield,
    // no sleep) until the sweep observes the exit.
    while (s.server->checkWorkers() == 0)
        std::this_thread::yield();
    EXPECT_EQ(s.server->respawns(), 1u);
    EXPECT_EQ(s.server->workers(), 1u);

    // Stuck: hold the replacement at the stall gate, advance the
    // clock past worker_stuck_ms, sweep — a replacement spawns while
    // the straggler is still held. Queued work keeps flowing.
    {
        fault::FaultPlan plan;
        plan.permille[static_cast<size_t>(
            fault::Site::WorkerStall)] = 1000;
        ArmedPlane armed(plan);
        std::future<ServeResult> fstuck = s.server->submit(0);
        awaitStalled(1);
        clock.advanceMs(60); // > worker_stuck_ms, zero wall time
        EXPECT_EQ(s.server->checkWorkers(), 1u);
        EXPECT_EQ(s.server->respawns(), 2u);
        EXPECT_EQ(s.server->workers(), 1u); // live = the replacement

        // The replacement serves traffic while the straggler is
        // stuck — but it would stall too; release first, then both
        // the stuck job and a fresh one must complete.
        fault::FaultInjector::global().disarm();
        const ServeResult rs = fstuck.get();
        EXPECT_TRUE(rs.ok) << rs.error;
    }
    std::future<ServeResult> f2 = s.server->submit(0);
    const ServeResult r2 = f2.get();
    EXPECT_TRUE(r2.ok) << r2.error;
    (void)s.server->drain();
}

TEST(ChaosServing, GracefulDrainRefusesQueuedTyped)
{
    ManualServeClock clock;
    BatchServerConfig cfg;
    cfg.workers = 1;
    cfg.clock = &clock;
    ChaosStack s(cfg, /*wire=*/false);

    // Worker held on A; B and C sit queued behind it.
    fault::FaultPlan plan;
    plan.permille[static_cast<size_t>(fault::Site::WorkerStall)] =
        1000;
    ArmedPlane armed(plan);
    std::future<ServeResult> fa = s.server->submit(0);
    awaitStalled(1);
    std::future<ServeResult> fb = s.server->submit(0);
    std::future<ServeResult> fc = s.server->submit(0);

    // Graceful drain: releases the stall (shutdown aborts the gate),
    // lets the IN-FLIGHT job finish, refuses the QUEUED ones typed.
    s.server->shutdownGraceful();

    const ServeResult ra = fa.get();
    EXPECT_TRUE(ra.ok) << ra.error;
    for (auto *f : {&fb, &fc}) {
        const ServeResult r = f->get();
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.error_kind, ServeErrorKind::DrainRefused);
        EXPECT_EQ(r.he_ops, 0u); // never started
    }
    const ServeReport rep = s.server->drain();
    EXPECT_EQ(rep.requests, 1u);
    EXPECT_EQ(rep.drain_refused, 2u);
}

TEST(ChaosServing, LedgerConservesEveryAdmittedRequest)
{
    // One run mixing every settlement path, sleep-free: ok, deadline
    // expiry, injected crash (failed), and plain ok again after a
    // watchdog respawn. Every admitted future settles exactly once;
    // the tallies add up to the admitted count.
    ManualServeClock clock;
    BatchServerConfig cfg;
    cfg.workers = 1;
    cfg.clock = &clock;
    ChaosStack s(cfg, /*wire=*/false);

    size_t admitted = 0, ok = 0, failed = 0, deadline = 0, drained = 0;
    std::vector<std::future<ServeResult>> futs;

    // Phase 1: stall the worker on A, expire B behind it.
    {
        fault::FaultPlan plan;
        plan.permille[static_cast<size_t>(
            fault::Site::WorkerStall)] = 1000;
        ArmedPlane armed(plan);
        futs.push_back(s.server->submit(0));
        admitted += 1;
        awaitStalled(1);
        std::future<ServeResult> fb;
        ASSERT_EQ(s.server->trySubmitRemote(
                      0, std::make_shared<Ciphertext>(s.inputs[0]),
                      nullptr, fb, 0, clock.nowMicros() + 500),
                  AdmitResult::Admitted);
        futs.push_back(std::move(fb));
        admitted += 1;
        clock.advanceMs(5);
        fault::FaultInjector::global().disarm();
        for (auto &f : futs)
            (void)f.wait();
    }

    // Phase 2: crash the worker on C, respawn, then serve D cleanly.
    {
        fault::FaultPlan plan;
        plan.permille[static_cast<size_t>(
            fault::Site::WorkerCrash)] = 1000;
        ArmedPlane armed(plan);
        futs.push_back(s.server->submit(0));
        admitted += 1;
        (void)futs.back().wait();
    }
    // Spin until the sweep sees the crashed thread's exit (the
    // future settles before the thread unwinds).
    while (s.server->checkWorkers() == 0)
        std::this_thread::yield();
    futs.push_back(s.server->submit(0));
    admitted += 1;

    for (auto &f : futs) {
        const ServeResult r = f.get();
        if (r.ok)
            ok += 1;
        else if (r.error_kind == ServeErrorKind::DeadlineExceeded)
            deadline += 1;
        else if (r.error_kind == ServeErrorKind::DrainRefused)
            drained += 1;
        else
            failed += 1;
    }
    EXPECT_EQ(ok, 2u);       // A and D
    EXPECT_EQ(deadline, 1u); // B
    EXPECT_EQ(failed, 1u);   // C (injected crash)
    EXPECT_EQ(drained, 0u);
    EXPECT_EQ(ok + failed + deadline + drained, admitted);

    const ServeReport rep = s.server->drain();
    EXPECT_EQ(rep.requests, 3u); // A, C, D executed/settled in-band
    EXPECT_EQ(rep.failed, 1u);
    EXPECT_EQ(rep.deadline_expired, 1u);
}

} // namespace
} // namespace ark
