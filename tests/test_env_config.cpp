/**
 * @file
 * ARK_BACKEND / ARK_THREADS environment-knob validation: junk values
 * must be rejected with a clear error (process exit naming the
 * offending value), never silently fall back or wrap.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "rns/backend_kind.h"

namespace ark {
namespace {

TEST(EnvConfig, ParseBackendKindAcceptsKnownNames)
{
    BackendKind kind = BackendKind::Parallel;
    EXPECT_TRUE(parseBackendKind("scalar", kind));
    EXPECT_EQ(kind, BackendKind::Scalar);
    EXPECT_TRUE(parseBackendKind("parallel", kind));
    EXPECT_EQ(kind, BackendKind::Parallel);
}

TEST(EnvConfig, ParseBackendKindRejectsJunk)
{
    BackendKind kind;
    EXPECT_FALSE(parseBackendKind("", kind));
    EXPECT_FALSE(parseBackendKind("Scalar", kind));
    EXPECT_FALSE(parseBackendKind("scalar ", kind));
    EXPECT_FALSE(parseBackendKind("vectorized", kind));
    EXPECT_FALSE(parseBackendKind("parallel,4", kind));
}

TEST(EnvConfig, ParseBackendThreadsAcceptsIntegers)
{
    size_t t = 99;
    EXPECT_TRUE(parseBackendThreads("0", t));
    EXPECT_EQ(t, 0u); // 0 = hardware concurrency
    EXPECT_TRUE(parseBackendThreads("8", t));
    EXPECT_EQ(t, 8u);
    EXPECT_TRUE(parseBackendThreads("4096", t));
    EXPECT_EQ(t, kMaxBackendThreads);
    EXPECT_TRUE(parseBackendThreads("007", t));
    EXPECT_EQ(t, 7u);
}

TEST(EnvConfig, ParseBackendThreadsRejectsJunk)
{
    size_t t = 0;
    EXPECT_FALSE(parseBackendThreads(nullptr, t));
    EXPECT_FALSE(parseBackendThreads("", t));
    EXPECT_FALSE(parseBackendThreads("-1", t)); // strtoul would wrap!
    EXPECT_FALSE(parseBackendThreads("+4", t));
    EXPECT_FALSE(parseBackendThreads(" 4", t));
    EXPECT_FALSE(parseBackendThreads("4 ", t));
    EXPECT_FALSE(parseBackendThreads("4threads", t));
    EXPECT_FALSE(parseBackendThreads("1e3", t));
    EXPECT_FALSE(parseBackendThreads("0x10", t));
    EXPECT_FALSE(parseBackendThreads("4097", t)); // above the cap
    // Would overflow unsigned long: must be rejected, not truncated.
    EXPECT_FALSE(parseBackendThreads("99999999999999999999999", t));
}

TEST(EnvConfig, EnvReadersUseValidValues)
{
    setenv("ARK_BACKEND", "parallel", 1);
    EXPECT_EQ(backendKindFromEnv(BackendKind::Scalar),
              BackendKind::Parallel);
    unsetenv("ARK_BACKEND");
    EXPECT_EQ(backendKindFromEnv(BackendKind::Scalar),
              BackendKind::Scalar);

    setenv("ARK_THREADS", "3", 1);
    EXPECT_EQ(backendThreadsFromEnv(0), 3u);
    unsetenv("ARK_THREADS");
    EXPECT_EQ(backendThreadsFromEnv(5), 5u);
    // Empty counts as unset, not as junk.
    setenv("ARK_THREADS", "", 1);
    EXPECT_EQ(backendThreadsFromEnv(2), 2u);
    unsetenv("ARK_THREADS");
}

TEST(EnvConfigDeathTest, JunkBackendExitsWithClearError)
{
    setenv("ARK_BACKEND", "vectorized", 1);
    EXPECT_EXIT((void)backendKindFromEnv(BackendKind::Scalar),
                ::testing::ExitedWithCode(1),
                "invalid ARK_BACKEND 'vectorized'");
    unsetenv("ARK_BACKEND");
}

TEST(EnvConfigDeathTest, JunkThreadsExitsWithClearError)
{
    setenv("ARK_THREADS", "-1", 1);
    EXPECT_EXIT((void)backendThreadsFromEnv(0),
                ::testing::ExitedWithCode(1),
                "invalid ARK_THREADS '-1'");
    unsetenv("ARK_THREADS");
}

} // namespace
} // namespace ark
