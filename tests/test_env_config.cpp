/**
 * @file
 * ARK_BACKEND / ARK_THREADS / ARK_SIMD_TIER environment-knob
 * validation: junk values must be rejected with a clear error (process
 * exit naming the offending value), never silently fall back or wrap —
 * while a VALID tier request the host cannot satisfy (ARK_BACKEND=simd
 * on a machine without that ISA) must clamp to what the CPU supports
 * and keep computing correctly, never abort.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/backend.h"
#include "rns/backend_kind.h"
#include "rns/cpu_features.h"
#include "rns/primes.h"
#include "serve/batch_server.h"

namespace ark {
namespace {

TEST(EnvConfig, ParseBackendKindAcceptsKnownNames)
{
    BackendKind kind = BackendKind::Parallel;
    EXPECT_TRUE(parseBackendKind("scalar", kind));
    EXPECT_EQ(kind, BackendKind::Scalar);
    EXPECT_TRUE(parseBackendKind("parallel", kind));
    EXPECT_EQ(kind, BackendKind::Parallel);
    EXPECT_TRUE(parseBackendKind("simd", kind));
    EXPECT_EQ(kind, BackendKind::Simd);
}

TEST(EnvConfig, ParseBackendKindRejectsJunk)
{
    BackendKind kind;
    EXPECT_FALSE(parseBackendKind("", kind));
    EXPECT_FALSE(parseBackendKind("Scalar", kind));
    EXPECT_FALSE(parseBackendKind("scalar ", kind));
    EXPECT_FALSE(parseBackendKind("vectorized", kind));
    EXPECT_FALSE(parseBackendKind("parallel,4", kind));
}

TEST(EnvConfig, ParseBackendThreadsAcceptsIntegers)
{
    size_t t = 99;
    EXPECT_TRUE(parseBackendThreads("0", t));
    EXPECT_EQ(t, 0u); // 0 = hardware concurrency
    EXPECT_TRUE(parseBackendThreads("8", t));
    EXPECT_EQ(t, 8u);
    EXPECT_TRUE(parseBackendThreads("4096", t));
    EXPECT_EQ(t, kMaxBackendThreads);
    EXPECT_TRUE(parseBackendThreads("007", t));
    EXPECT_EQ(t, 7u);
}

TEST(EnvConfig, ParseBackendThreadsRejectsJunk)
{
    size_t t = 0;
    EXPECT_FALSE(parseBackendThreads(nullptr, t));
    EXPECT_FALSE(parseBackendThreads("", t));
    EXPECT_FALSE(parseBackendThreads("-1", t)); // strtoul would wrap!
    EXPECT_FALSE(parseBackendThreads("+4", t));
    EXPECT_FALSE(parseBackendThreads(" 4", t));
    EXPECT_FALSE(parseBackendThreads("4 ", t));
    EXPECT_FALSE(parseBackendThreads("4threads", t));
    EXPECT_FALSE(parseBackendThreads("1e3", t));
    EXPECT_FALSE(parseBackendThreads("0x10", t));
    EXPECT_FALSE(parseBackendThreads("4097", t)); // above the cap
    // Would overflow unsigned long: must be rejected, not truncated.
    EXPECT_FALSE(parseBackendThreads("99999999999999999999999", t));
}

TEST(EnvConfig, EnvReadersUseValidValues)
{
    setenv("ARK_BACKEND", "parallel", 1);
    EXPECT_EQ(backendKindFromEnv(BackendKind::Scalar),
              BackendKind::Parallel);
    unsetenv("ARK_BACKEND");
    EXPECT_EQ(backendKindFromEnv(BackendKind::Scalar),
              BackendKind::Scalar);

    setenv("ARK_THREADS", "3", 1);
    EXPECT_EQ(backendThreadsFromEnv(0), 3u);
    unsetenv("ARK_THREADS");
    EXPECT_EQ(backendThreadsFromEnv(5), 5u);
    // Empty counts as unset, not as junk.
    setenv("ARK_THREADS", "", 1);
    EXPECT_EQ(backendThreadsFromEnv(2), 2u);
    unsetenv("ARK_THREADS");
}

TEST(EnvConfigDeathTest, JunkBackendExitsWithClearError)
{
    setenv("ARK_BACKEND", "vectorized", 1);
    EXPECT_EXIT((void)backendKindFromEnv(BackendKind::Scalar),
                ::testing::ExitedWithCode(1),
                "invalid ARK_BACKEND 'vectorized'");
    unsetenv("ARK_BACKEND");
}

TEST(EnvConfigDeathTest, JunkThreadsExitsWithClearError)
{
    setenv("ARK_THREADS", "-1", 1);
    EXPECT_EXIT((void)backendThreadsFromEnv(0),
                ::testing::ExitedWithCode(1),
                "invalid ARK_THREADS '-1'");
    unsetenv("ARK_THREADS");
}

TEST(EnvConfig, ParseSimdTierAcceptsKnownNames)
{
    SimdTier tier = SimdTier::Avx512;
    EXPECT_TRUE(parseSimdTier("scalar", tier));
    EXPECT_EQ(tier, SimdTier::Scalar);
    EXPECT_TRUE(parseSimdTier("neon", tier));
    EXPECT_EQ(tier, SimdTier::Neon);
    EXPECT_TRUE(parseSimdTier("avx2", tier));
    EXPECT_EQ(tier, SimdTier::Avx2);
    EXPECT_TRUE(parseSimdTier("avx512", tier));
    EXPECT_EQ(tier, SimdTier::Avx512);
}

TEST(EnvConfig, ParseSimdTierRejectsJunk)
{
    SimdTier tier;
    EXPECT_FALSE(parseSimdTier(nullptr, tier));
    EXPECT_FALSE(parseSimdTier("", tier));
    EXPECT_FALSE(parseSimdTier("AVX2", tier));
    EXPECT_FALSE(parseSimdTier("avx2 ", tier));
    EXPECT_FALSE(parseSimdTier("avx-512", tier));
    EXPECT_FALSE(parseSimdTier("sse", tier));
}

TEST(EnvConfig, SimdTierEnvReaderUsesValidValues)
{
    setenv("ARK_SIMD_TIER", "avx2", 1);
    EXPECT_EQ(simdTierFromEnv(SimdTier::Avx512), SimdTier::Avx2);
    unsetenv("ARK_SIMD_TIER");
    EXPECT_EQ(simdTierFromEnv(SimdTier::Avx512), SimdTier::Avx512);
    // Empty counts as unset, not as junk.
    setenv("ARK_SIMD_TIER", "", 1);
    EXPECT_EQ(simdTierFromEnv(SimdTier::Scalar), SimdTier::Scalar);
    unsetenv("ARK_SIMD_TIER");
}

TEST(EnvConfigDeathTest, JunkSimdTierExitsWithClearError)
{
    setenv("ARK_SIMD_TIER", "turbo", 1);
    EXPECT_EXIT((void)simdTierFromEnv(SimdTier::Avx512),
                ::testing::ExitedWithCode(1),
                "invalid ARK_SIMD_TIER 'turbo'");
    unsetenv("ARK_SIMD_TIER");
}

/**
 * Requesting the simd backend never aborts, whatever the host CPU: the
 * tier clamps to what CPUID reports (so ARK_BACKEND=simd on a
 * no-AVX machine silently degrades to the scalar kernels), and the
 * clamped backend still computes bit-correct NTTs. The capped requests
 * below emulate progressively weaker hosts; each must come back at or
 * below both the cap and the detected tier, and match the scalar
 * backend bit for bit.
 */
TEST(EnvConfig, SimdBackendClampsToHostAndStaysCorrect)
{
    const size_t degree = 512;
    auto qs = generatePrimes(45, 1, degree);
    NttTables tables(degree, Modulus(qs[0]));
    std::vector<const NttTables *> tp{&tables};
    Rng rng(7);
    RnsPoly ref(degree, 1, Rep::Coeff);
    auto v = rng.uniformVector(degree, qs[0]);
    std::copy(v.begin(), v.end(), ref.limb(0));
    ScalarBackend scalar;
    RnsPoly want = ref;
    scalar.nttForward(want, tp);

    for (SimdTier cap : {SimdTier::Scalar, SimdTier::Neon,
                         SimdTier::Avx2, SimdTier::Avx512}) {
        SCOPED_TRACE(simdTierName(cap));
        SimdBackend be(cap);
        EXPECT_LE(static_cast<int>(be.tier()), static_cast<int>(cap));
        EXPECT_LE(static_cast<int>(be.tier()),
                  static_cast<int>(detectSimdTier()));
        RnsPoly got = ref;
        be.nttForward(got, tp);
        for (size_t i = 0; i < degree; ++i)
            ASSERT_EQ(got.limb(0)[i], want.limb(0)[i]) << "i=" << i;
    }

    // The forced-fallback path spelled the way a user would: the env
    // caps the tier below what the backend asks for.
    setenv("ARK_SIMD_TIER", "scalar", 1);
    SimdBackend forced(SimdTier::Avx512);
    EXPECT_EQ(forced.tier(), SimdTier::Scalar);
    unsetenv("ARK_SIMD_TIER");
    RnsPoly got = ref;
    forced.nttForward(got, tp);
    for (size_t i = 0; i < degree; ++i)
        ASSERT_EQ(got.limb(0)[i], want.limb(0)[i]) << "i=" << i;
}

// Serving front-end knobs (docs/configuration.md): same discipline as
// the kernel knobs — valid values apply, junk is fatal and names the
// offending value, absent variables leave the config untouched.

TEST(EnvConfig, ServeConfigHonorsEnvOverrides)
{
    unsetenv("ARK_LISTEN_ADDR");
    unsetenv("ARK_LISTEN_PORT");
    unsetenv("ARK_MAX_SESSIONS");
    unsetenv("ARK_MAX_FRAME_MIB");

    const BatchServerConfig defaults = serveConfigFromEnv();
    EXPECT_EQ(defaults.listen_addr, "127.0.0.1");
    EXPECT_EQ(defaults.listen_port, 0);
    EXPECT_EQ(defaults.max_sessions, 8u);
    EXPECT_EQ(defaults.max_frame_bytes, 256ull * 1024 * 1024);

    setenv("ARK_LISTEN_ADDR", "0.0.0.0", 1);
    setenv("ARK_LISTEN_PORT", "19184", 1);
    setenv("ARK_MAX_SESSIONS", "3", 1);
    setenv("ARK_MAX_FRAME_MIB", "64", 1);
    const BatchServerConfig cfg = serveConfigFromEnv();
    EXPECT_EQ(cfg.listen_addr, "0.0.0.0");
    EXPECT_EQ(cfg.listen_port, 19184);
    EXPECT_EQ(cfg.max_sessions, 3u);
    EXPECT_EQ(cfg.max_frame_bytes, 64ull * 1024 * 1024);
    unsetenv("ARK_LISTEN_ADDR");
    unsetenv("ARK_LISTEN_PORT");
    unsetenv("ARK_MAX_SESSIONS");
    unsetenv("ARK_MAX_FRAME_MIB");
}

TEST(EnvConfigDeathTest, JunkListenPortExitsWithClearError)
{
    setenv("ARK_LISTEN_PORT", "70000", 1);
    EXPECT_EXIT((void)serveConfigFromEnv(),
                ::testing::ExitedWithCode(1),
                "invalid ARK_LISTEN_PORT '70000'");
    setenv("ARK_LISTEN_PORT", "-1", 1);
    EXPECT_EXIT((void)serveConfigFromEnv(),
                ::testing::ExitedWithCode(1),
                "invalid ARK_LISTEN_PORT '-1'");
    unsetenv("ARK_LISTEN_PORT");
}

TEST(EnvConfigDeathTest, JunkMaxSessionsExitsWithClearError)
{
    setenv("ARK_MAX_SESSIONS", "0", 1);
    EXPECT_EXIT((void)serveConfigFromEnv(),
                ::testing::ExitedWithCode(1),
                "invalid ARK_MAX_SESSIONS '0'");
    setenv("ARK_MAX_SESSIONS", "lots", 1);
    EXPECT_EXIT((void)serveConfigFromEnv(),
                ::testing::ExitedWithCode(1),
                "invalid ARK_MAX_SESSIONS 'lots'");
    unsetenv("ARK_MAX_SESSIONS");
}

TEST(EnvConfigDeathTest, JunkMaxFrameMibExitsWithClearError)
{
    setenv("ARK_MAX_FRAME_MIB", "1.5", 1);
    EXPECT_EXIT((void)serveConfigFromEnv(),
                ::testing::ExitedWithCode(1),
                "invalid ARK_MAX_FRAME_MIB '1.5'");
    unsetenv("ARK_MAX_FRAME_MIB");
}

TEST(EnvConfig, EmptyServeEnvValuesCountAsUnset)
{
    // Matches the ARK_BACKEND convention: FOO= is the same as no FOO.
    setenv("ARK_LISTEN_ADDR", "", 1);
    setenv("ARK_LISTEN_PORT", "", 1);
    setenv("ARK_MAX_SESSIONS", "", 1);
    setenv("ARK_MAX_FRAME_MIB", "", 1);
    const BatchServerConfig cfg = serveConfigFromEnv();
    EXPECT_EQ(cfg.listen_addr, "127.0.0.1");
    EXPECT_EQ(cfg.listen_port, 0);
    EXPECT_EQ(cfg.max_sessions, 8u);
    EXPECT_EQ(cfg.max_frame_bytes, 256ull * 1024 * 1024);
    unsetenv("ARK_LISTEN_ADDR");
    unsetenv("ARK_LISTEN_PORT");
    unsetenv("ARK_MAX_SESSIONS");
    unsetenv("ARK_MAX_FRAME_MIB");
}

} // namespace
} // namespace ark
