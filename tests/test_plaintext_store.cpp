/**
 * @file
 * Tests for the OF-Limb plaintext store and the rotation-key cache —
 * the two working-set levers of the paper, at the data-structure
 * level.
 */

#include <gtest/gtest.h>

#include "boot/key_cache.h"
#include "boot/plaintext_store.h"
#include "ckks/encoder.h"

namespace ark {
namespace {

class StoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testTiny());
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
    }

    Plaintext encodeSeeded(u64 seed, int level)
    {
        Rng rng(seed);
        std::vector<Complex> m(32);
        for (auto &x : m)
            x = Complex(rng.uniformReal() * 2 - 1,
                        rng.uniformReal() * 2 - 1);
        return enc_->encode(m, level);
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
};

TEST_F(StoreTest, OfLimbReconstructionIsExact)
{
    PlaintextStore full(*ctx_, PlaintextMode::Full);
    PlaintextStore of(*ctx_, PlaintextMode::OFLimb);
    auto pt = encodeSeeded(1, ctx_->maxLevel());
    full.insert(pt);
    of.insert(pt);

    for (int lv = 0; lv <= ctx_->maxLevel(); ++lv) {
        auto a = full.get(0, lv);
        auto b = of.get(0, lv);
        ASSERT_EQ(a.poly.numLimbs(), b.poly.numLimbs());
        for (size_t l = 0; l < a.poly.numLimbs(); ++l) {
            for (size_t i = 0; i < ctx_->degree(); ++i)
                ASSERT_EQ(a.poly.limb(l)[i], b.poly.limb(l)[i])
                    << "level " << lv << " limb " << l;
        }
    }
}

TEST_F(StoreTest, OfLimbStorageIsOneLimb)
{
    PlaintextStore of(*ctx_, PlaintextMode::OFLimb);
    PlaintextStore full(*ctx_, PlaintextMode::Full);
    for (u64 s = 0; s < 5; ++s) {
        of.insert(encodeSeeded(s, ctx_->maxLevel()));
        full.insert(encodeSeeded(s, ctx_->maxLevel()));
    }
    EXPECT_EQ(of.storedBytes(), 5 * ctx_->degree() * sizeof(u64));
    EXPECT_EQ(full.storedBytes() / of.storedBytes(),
              static_cast<size_t>(ctx_->maxLevel()) + 1);
}

TEST_F(StoreTest, ScaleAndLevelPreserved)
{
    PlaintextStore of(*ctx_, PlaintextMode::OFLimb);
    auto pt = encodeSeeded(9, ctx_->maxLevel());
    of.insert(pt);
    auto back = of.get(0, 1);
    EXPECT_EQ(back.level, 1);
    EXPECT_EQ(back.scale, pt.scale);
    EXPECT_EQ(back.poly.rep(), Rep::Eval);
    EXPECT_EQ(back.poly.numLimbs(), 2u);
}

TEST_F(StoreTest, OutOfRangeIndexDies)
{
    PlaintextStore of(*ctx_, PlaintextMode::OFLimb);
    of.insert(encodeSeeded(2, ctx_->maxLevel()));
    EXPECT_DEATH((void)of.get(1, 0), "");
}

TEST_F(StoreTest, KeyCacheCountsDistinctKeys)
{
    Rng rng(3);
    KeyGenerator keygen(*ctx_, rng);
    SecretKey sk = keygen.secretKey();
    KeyCache cache(keygen, sk, ctx_->degree());

    EXPECT_EQ(cache.distinctGaloisKeys(), 0u);
    (void)cache.rotation(1);
    (void)cache.rotation(1); // reuse: no new key
    (void)cache.rotation(2);
    (void)cache.conjugation();
    EXPECT_EQ(cache.distinctGaloisKeys(), 3u);
    size_t bytes_before_mult = cache.byteSize();
    (void)cache.multiplication();
    EXPECT_GT(cache.byteSize(), bytes_before_mult);
}

TEST_F(StoreTest, KeyCacheRotationIdentityAmounts)
{
    Rng rng(4);
    KeyGenerator keygen(*ctx_, rng);
    SecretKey sk = keygen.secretKey();
    KeyCache cache(keygen, sk, ctx_->degree());
    // Rotation amounts equal mod the rotation-group order share a key.
    const i64 order = static_cast<i64>(ctx_->degree() / 2);
    (void)cache.rotation(3);
    (void)cache.rotation(3 + order);
    EXPECT_EQ(cache.distinctGaloisKeys(), 1u);
}

} // namespace
} // namespace ark
