/**
 * @file
 * Tests for the bench-output table printer (alignment, arity checks,
 * number formatting).
 */

#include <gtest/gtest.h>

#include "common/table_printer.h"

namespace ark {
namespace {

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"A", "Long header"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2.5"});
    std::string out = t.toString();
    // Every rendered line has the same width.
    size_t first_nl = out.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    size_t width = first_nl;
    size_t pos = 0;
    while (pos < out.size()) {
        size_t nl = out.find('\n', pos);
        ASSERT_NE(nl, std::string::npos);
        EXPECT_EQ(nl - pos, width);
        pos = nl + 1;
    }
    EXPECT_NE(out.find("Long header"), std::string::npos);
    EXPECT_NE(out.find("yyyy"), std::string::npos);
}

TEST(TablePrinter, FmtPrecision)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
    EXPECT_EQ(TablePrinter::fmt(-0.5, 1), "-0.5");
}

TEST(TablePrinter, ArityMismatchDies)
{
    TablePrinter t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "");
}

TEST(TablePrinter, HeaderSeparatorPresent)
{
    TablePrinter t({"H"});
    t.addRow({"v"});
    std::string out = t.toString();
    // Three rules: top, after header, bottom.
    size_t rules = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    EXPECT_EQ(rules, 3u);
}

} // namespace
} // namespace ark
