/**
 * @file
 * Unit tests for the scalar number-theory helpers.
 */

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace ark {
namespace {

TEST(MathUtil, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(MathUtil, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0);
    EXPECT_EQ(log2Exact(2), 1);
    EXPECT_EQ(log2Exact(65536), 16);
}

TEST(MathUtil, BitReverse)
{
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b110, 3), 0b011u);
    for (u64 x = 0; x < 64; ++x)
        EXPECT_EQ(bitReverse(bitReverse(x, 6), 6), x);
}

TEST(MathUtil, AddSubMod)
{
    const u64 m = 97;
    EXPECT_EQ(addMod(50, 60, m), 13u);
    EXPECT_EQ(subMod(10, 20, m), 87u);
    EXPECT_EQ(subMod(20, 20, m), 0u);
}

TEST(MathUtil, MulModLarge)
{
    const u64 m = (1ULL << 61) - 1;
    const u64 a = m - 2, b = m - 3;
    // (m-2)(m-3) = m^2 - 5m + 6 = 6 mod m.
    EXPECT_EQ(mulMod(a, b, m), 6u);
}

TEST(MathUtil, PowMod)
{
    EXPECT_EQ(powMod(2, 10, 1000000007ULL), 1024u);
    // Fermat: a^(p-1) = 1 mod p.
    const u64 p = 0xffffffff00000001ULL; // Goldilocks prime
    EXPECT_EQ(powMod(3, p - 1, p), 1u);
}

TEST(MathUtil, InvMod)
{
    const u64 p = 1000000007ULL;
    for (u64 a : {u64{2}, u64{3}, u64{123456789}, p - 1}) {
        u64 inv = invMod(a, p);
        EXPECT_EQ(mulMod(a, inv, p), 1u);
    }
}

TEST(MathUtil, IsPrimeSmall)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(97));
    EXPECT_FALSE(isPrime(1001));
}

TEST(MathUtil, IsPrimeLarge)
{
    EXPECT_TRUE(isPrime((1ULL << 61) - 1));          // Mersenne prime
    EXPECT_TRUE(isPrime(0xffffffff00000001ULL));     // Goldilocks
    EXPECT_FALSE(isPrime((1ULL << 61) - 3));
    // Carmichael number 561 = 3 * 11 * 17 must be rejected.
    EXPECT_FALSE(isPrime(561));
}

TEST(MathUtil, PrimitiveRootOrder)
{
    const u64 p = 97;
    u64 g = primitiveRoot(p);
    // g must have full order p-1: g^((p-1)/f) != 1 for prime factors f.
    EXPECT_NE(powMod(g, 48, p), 1u); // (p-1)/2
    EXPECT_NE(powMod(g, 32, p), 1u); // (p-1)/3
    EXPECT_EQ(powMod(g, 96, p), 1u);
}

TEST(MathUtil, RootOfUnity)
{
    const u64 p = 0xffffffff00000001ULL; // 2^32 | p - 1
    const u64 order = 1ULL << 20;
    u64 w = rootOfUnity(order, p);
    EXPECT_EQ(powMod(w, order, p), 1u);
    EXPECT_NE(powMod(w, order / 2, p), 1u);
}

} // namespace
} // namespace ark
