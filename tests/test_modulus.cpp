/**
 * @file
 * Unit and property tests for Barrett/Shoup modular reduction.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/modulus.h"

namespace ark {
namespace {

TEST(Modulus, BasicOps)
{
    Modulus q(97);
    EXPECT_EQ(q.value(), 97u);
    EXPECT_EQ(q.add(90, 10), 3u);
    EXPECT_EQ(q.sub(3, 10), 90u);
    EXPECT_EQ(q.mul(10, 10), 3u);
    EXPECT_EQ(q.neg(0), 0u);
    EXPECT_EQ(q.neg(1), 96u);
    EXPECT_EQ(q.pow(2, 10), 1024 % 97);
    EXPECT_EQ(q.mul(q.inv(13), 13), 1u);
}

TEST(Modulus, BarrettMatchesNaive)
{
    Rng rng(1);
    for (u64 qv : {(1ULL << 30) + 3, (1ULL << 45) + 59,
                   0x1fffffffffe00001ULL, (1ULL << 61) - 1}) {
        Modulus q(qv);
        for (int i = 0; i < 2000; ++i) {
            u64 a = rng.uniform(qv);
            u64 b = rng.uniform(qv);
            EXPECT_EQ(q.mul(a, b), mulMod(a, b, qv));
        }
        // Edge cases.
        EXPECT_EQ(q.mul(qv - 1, qv - 1), mulMod(qv - 1, qv - 1, qv));
        EXPECT_EQ(q.mul(0, qv - 1), 0u);
        EXPECT_EQ(q.reduce(static_cast<u128>(qv) * qv - 1),
                  mulMod(qv - 1, qv + 1, qv));
    }
}

TEST(Modulus, BarrettFullRange128)
{
    // reduce() must be correct for arbitrary 128-bit inputs, not only
    // products of two residues (the BConv MAC accumulates many terms).
    Rng rng(2);
    const u64 qv = 0x0fffffffffac0001ULL; // 60-bit NTT prime shape
    Modulus q(qv);
    for (int i = 0; i < 2000; ++i) {
        u128 x = (static_cast<u128>(rng.next()) << 64) | rng.next();
        u64 expect = static_cast<u64>(x % qv);
        EXPECT_EQ(q.reduce(x), expect);
    }
}

TEST(Modulus, ShoupMatchesBarrett)
{
    Rng rng(3);
    for (u64 qv : {(1ULL << 35) + 163, 0x1fffffffffe00001ULL}) {
        Modulus q(qv);
        for (int i = 0; i < 1000; ++i) {
            u64 w = rng.uniform(qv);
            u64 ws = q.shoupPrecompute(w);
            u64 x = rng.uniform(qv);
            EXPECT_EQ(q.mulShoup(x, w, ws), q.mul(x, w));
        }
    }
}

TEST(Modulus, RejectsOutOfRange)
{
    EXPECT_DEATH({ Modulus q(1ULL << 63); (void)q; }, "");
    EXPECT_DEATH({ Modulus q(1); (void)q; }, "");
}

} // namespace
} // namespace ark
