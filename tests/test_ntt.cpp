/**
 * @file
 * Property tests for the negacyclic NTT: round trips, convolution
 * correctness against schoolbook negacyclic multiplication, and
 * linearity, swept over degrees and prime sizes (TEST_P).
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/ntt.h"
#include "rns/primes.h"

namespace ark {
namespace {

/** Schoolbook negacyclic convolution mod q (X^N + 1). */
std::vector<u64>
negacyclicMul(const std::vector<u64> &a, const std::vector<u64> &b,
              const Modulus &q)
{
    const size_t n = a.size();
    std::vector<u64> r(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            u64 prod = q.mul(a[i], b[j]);
            size_t k = i + j;
            if (k < n)
                r[k] = q.add(r[k], prod);
            else
                r[k - n] = q.sub(r[k - n], prod);
        }
    }
    return r;
}

class NttTest : public ::testing::TestWithParam<std::tuple<size_t, int>>
{
  protected:
    void SetUp() override
    {
        degree_ = std::get<0>(GetParam());
        int bits = std::get<1>(GetParam());
        prime_ = generatePrimes(bits, 1, degree_).front();
        tables_ = std::make_unique<NttTables>(degree_, Modulus(prime_));
    }

    size_t degree_;
    u64 prime_;
    std::unique_ptr<NttTables> tables_;
};

TEST_P(NttTest, RoundTrip)
{
    Rng rng(101);
    auto v = rng.uniformVector(degree_, prime_);
    auto original = v;
    tables_->forward(v);
    tables_->inverse(v);
    EXPECT_EQ(v, original);
}

TEST_P(NttTest, InverseThenForward)
{
    Rng rng(102);
    auto v = rng.uniformVector(degree_, prime_);
    auto original = v;
    tables_->inverse(v);
    tables_->forward(v);
    EXPECT_EQ(v, original);
}

TEST_P(NttTest, PointwiseEqualsNegacyclicConvolution)
{
    if (degree_ > 512)
        GTEST_SKIP() << "schoolbook reference too slow at this degree";
    Rng rng(103);
    Modulus q(prime_);
    auto a = rng.uniformVector(degree_, prime_);
    auto b = rng.uniformVector(degree_, prime_);
    auto expect = negacyclicMul(a, b, q);

    tables_->forward(a);
    tables_->forward(b);
    std::vector<u64> c(degree_);
    for (size_t i = 0; i < degree_; ++i)
        c[i] = q.mul(a[i], b[i]);
    tables_->inverse(c);
    EXPECT_EQ(c, expect);
}

TEST_P(NttTest, Linearity)
{
    Rng rng(104);
    Modulus q(prime_);
    auto a = rng.uniformVector(degree_, prime_);
    auto b = rng.uniformVector(degree_, prime_);
    std::vector<u64> sum(degree_);
    for (size_t i = 0; i < degree_; ++i)
        sum[i] = q.add(a[i], b[i]);

    tables_->forward(a);
    tables_->forward(b);
    tables_->forward(sum);
    for (size_t i = 0; i < degree_; ++i)
        EXPECT_EQ(sum[i], q.add(a[i], b[i]));
}

TEST_P(NttTest, TransformOfUnitImpulse)
{
    // NTT of X^0 = 1 is the all-ones vector (every evaluation is 1).
    std::vector<u64> v(degree_, 0);
    v[0] = 1;
    tables_->forward(v);
    for (size_t i = 0; i < degree_; ++i)
        EXPECT_EQ(v[i], 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NttTest,
    ::testing::Combine(::testing::Values<size_t>(8, 64, 256, 1024, 4096),
                       ::testing::Values(30, 45, 60)));

TEST(NttTables, RejectsNonNttFriendlyPrime)
{
    // 1000003 is prime but 1000002 is not divisible by 2*64.
    EXPECT_DEATH({ NttTables t(64, Modulus(1000003)); (void)t; }, "");
}

} // namespace
} // namespace ark
