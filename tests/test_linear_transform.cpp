/**
 * @file
 * Tests for BSGS homomorphic linear transforms: correctness against
 * plain matrix-vector products, equivalence of the Baseline and Min-KS
 * key schedules, OF-Limb plaintext reconstruction, and the evk-count
 * reduction Min-KS guarantees.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "boot/linear_transform.h"
#include "ckks/encryptor.h"

namespace ark {
namespace {

class LtTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        ctx_ = std::make_unique<CkksContext>(CkksParams::testTiny());
        rng_ = std::make_unique<Rng>(777);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
        keygen_ = std::make_unique<KeyGenerator>(*ctx_, *rng_);
        sk_ = keygen_->secretKey();
        encryptor_ = std::make_unique<CkksEncryptor>(*ctx_, *rng_);
        decryptor_ = std::make_unique<CkksDecryptor>(*ctx_, sk_);
        eval_ = std::make_unique<CkksEvaluator>(*ctx_);
        slots_ = 32;
    }

    SlotMatrix randomMatrix(u64 seed)
    {
        Rng rng(seed);
        SlotMatrix m;
        m.n = slots_;
        m.data.resize(slots_ * slots_);
        for (auto &v : m.data)
            v = Complex(rng.uniformReal() * 2 - 1,
                        rng.uniformReal() * 2 - 1);
        return m;
    }

    std::vector<Complex> randomVector(u64 seed)
    {
        Rng rng(seed);
        std::vector<Complex> v(slots_);
        for (auto &x : v)
            x = Complex(rng.uniformReal() * 2 - 1,
                        rng.uniformReal() * 2 - 1);
        return v;
    }

    Ciphertext encrypt(const std::vector<Complex> &m)
    {
        auto pt = enc_->encode(m, ctx_->maxLevel());
        auto ct = encryptor_->encryptSymmetric(pt, sk_);
        ct.slots = slots_;
        return ct;
    }

    std::vector<Complex> decrypt(const Ciphertext &ct)
    {
        return enc_->decode(decryptor_->decrypt(ct), slots_);
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<Rng> rng_;
    std::unique_ptr<CkksEncoder> enc_;
    std::unique_ptr<KeyGenerator> keygen_;
    SecretKey sk_;
    std::unique_ptr<CkksEncryptor> encryptor_;
    std::unique_ptr<CkksDecryptor> decryptor_;
    std::unique_ptr<CkksEvaluator> eval_;
    size_t slots_;
};

TEST(SlotMatrix, InverseRoundTrip)
{
    Rng rng(1);
    SlotMatrix m;
    m.n = 16;
    m.data.resize(256);
    for (auto &v : m.data)
        v = Complex(rng.uniformReal() * 2 - 1, rng.uniformReal() * 2 - 1);
    auto id = m.multiply(m.inverse());
    for (size_t r = 0; r < 16; ++r) {
        for (size_t c = 0; c < 16; ++c) {
            Complex expect = r == c ? Complex(1, 0) : Complex(0, 0);
            EXPECT_LT(std::abs(id.at(r, c) - expect), 1e-9);
        }
    }
}

TEST_F(LtTest, BaselineMatchesPlainMatVec)
{
    auto m = randomMatrix(2);
    auto z = randomVector(3);
    LinearTransform lt(*ctx_, *enc_, m, 1, PlaintextMode::Full);
    KeyCache keys(*keygen_, sk_, ctx_->degree());
    LtStats stats;
    auto out = decrypt(lt.apply(*eval_, encrypt(z), KeySchedule::Baseline,
                                keys, &stats));
    auto expect = m.apply(z);
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - expect[i]), 1e-2) << "slot " << i;
    EXPECT_GT(stats.rotations, 0u);
    EXPECT_GT(stats.pmults, 0u);
}

TEST_F(LtTest, MinKsMatchesBaseline)
{
    auto m = randomMatrix(4);
    auto z = randomVector(5);
    LinearTransform lt(*ctx_, *enc_, m, 1, PlaintextMode::Full);
    KeyCache keys(*keygen_, sk_, ctx_->degree());
    auto base =
        decrypt(lt.apply(*eval_, encrypt(z), KeySchedule::Baseline, keys));
    auto minks =
        decrypt(lt.apply(*eval_, encrypt(z), KeySchedule::MinKS, keys));
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(base[i] - minks[i]), 1e-2);
}

TEST_F(LtTest, MinKsUsesExactlyTwoEvks)
{
    auto m = randomMatrix(6);
    LinearTransform lt(*ctx_, *enc_, m, 1, PlaintextMode::Full);

    KeyCache keys_minks(*keygen_, sk_, ctx_->degree());
    LtStats s_minks;
    (void)lt.apply(*eval_, encrypt(randomVector(7)), KeySchedule::MinKS,
                   keys_minks, &s_minks);
    EXPECT_EQ(s_minks.distinct_evks, 2u);
    EXPECT_EQ(keys_minks.distinctGaloisKeys(), 2u);

    KeyCache keys_base(*keygen_, sk_, ctx_->degree());
    LtStats s_base;
    (void)lt.apply(*eval_, encrypt(randomVector(8)),
                   KeySchedule::Baseline, keys_base, &s_base);
    // Baseline needs (bs-1) + (gs-1) distinct keys.
    EXPECT_EQ(s_base.distinct_evks,
              lt.babySteps() - 1 + lt.giantSteps() - 1);
    EXPECT_GT(keys_base.distinctGaloisKeys(),
              keys_minks.distinctGaloisKeys());
}

TEST_F(LtTest, OfLimbMatchesFullPlaintexts)
{
    auto m = randomMatrix(9);
    auto z = randomVector(10);
    LinearTransform lt_full(*ctx_, *enc_, m, 1, PlaintextMode::Full);
    LinearTransform lt_of(*ctx_, *enc_, m, 1, PlaintextMode::OFLimb);
    KeyCache keys(*keygen_, sk_, ctx_->degree());

    // One shared ciphertext: the two paths must agree bit-for-bit up
    // to decode rounding, since OF-Limb regenerates identical limbs.
    auto ct = encrypt(z);
    auto full = decrypt(
        lt_full.apply(*eval_, ct, KeySchedule::MinKS, keys));
    auto oflimb = decrypt(
        lt_of.apply(*eval_, ct, KeySchedule::MinKS, keys));
    // OF-Limb regenerates exactly the same limbs, so the two paths
    // agree to floating-point decoding error.
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(full[i] - oflimb[i]), 1e-9);
}

TEST_F(LtTest, OfLimbStoresOneLimb)
{
    auto m = randomMatrix(11);
    LinearTransform lt_full(*ctx_, *enc_, m, 1, PlaintextMode::Full);
    LinearTransform lt_of(*ctx_, *enc_, m, 1, PlaintextMode::OFLimb);
    // Paper Section IV-B: OF-Limb cuts plaintext storage to 1/(l+1).
    const size_t limbs = ctx_->maxLevel() + 1;
    EXPECT_EQ(lt_of.plaintexts().storedBytes() * limbs,
              lt_full.plaintexts().storedBytes());
}

TEST_F(LtTest, IdentityTransform)
{
    auto z = randomVector(12);
    LinearTransform lt(*ctx_, *enc_, SlotMatrix::identity(slots_), 1,
                       PlaintextMode::Full);
    KeyCache keys(*keygen_, sk_, ctx_->degree());
    LtStats stats;
    auto out = decrypt(
        lt.apply(*eval_, encrypt(z), KeySchedule::MinKS, keys, &stats));
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - z[i]), 1e-3);
    // Identity has a single nonzero diagonal: no PMult beyond 1.
    EXPECT_EQ(stats.pmults, 1u);
}

TEST_F(LtTest, StridedTransformMatchesPlain)
{
    // A matrix with mass only on diagonals 0, 4, 8, ...: exercises the
    // stride machinery used by the FFT-like H-(I)DFT stages.
    const size_t stride = 4;
    Rng rng(13);
    SlotMatrix m;
    m.n = slots_;
    m.data.assign(slots_ * slots_, Complex(0, 0));
    for (size_t r = 0; r < slots_; ++r) {
        for (size_t d = 0; d < slots_; d += stride) {
            m.at(r, (r + d) % slots_) =
                Complex(rng.uniformReal() * 2 - 1,
                        rng.uniformReal() * 2 - 1);
        }
    }
    auto z = randomVector(14);
    LinearTransform lt(*ctx_, *enc_, m, stride, PlaintextMode::Full);
    KeyCache keys(*keygen_, sk_, ctx_->degree());
    auto out =
        decrypt(lt.apply(*eval_, encrypt(z), KeySchedule::MinKS, keys));
    auto expect = m.apply(z);
    for (size_t i = 0; i < slots_; ++i)
        EXPECT_LT(std::abs(out[i] - expect[i]), 1e-2);
}

TEST_F(LtTest, OffStrideMassDies)
{
    SlotMatrix m = SlotMatrix::identity(slots_);
    m.at(0, 1) = Complex(1, 0); // diagonal 1 is off the stride-4 grid
    EXPECT_DEATH(
        { LinearTransform lt(*ctx_, *enc_, m, 4, PlaintextMode::Full); },
        "");
}

} // namespace
} // namespace ark
