/**
 * @file
 * Tests for NTT-friendly prime generation.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/math_util.h"
#include "rns/primes.h"

namespace ark {
namespace {

class PrimeGenTest : public ::testing::TestWithParam<std::tuple<int, size_t>>
{
};

TEST_P(PrimeGenTest, PrimesAreNttFriendlyAndDistinct)
{
    const int bits = std::get<0>(GetParam());
    const size_t degree = std::get<1>(GetParam());
    const size_t count = 8;
    auto primes = generatePrimes(bits, count, degree);
    ASSERT_EQ(primes.size(), count);
    std::set<u64> seen;
    for (u64 p : primes) {
        EXPECT_TRUE(isPrime(p)) << p;
        EXPECT_EQ((p - 1) % (2 * degree), 0u) << p;
        // Within one bit of the target size.
        EXPECT_GE(p, 1ULL << (bits - 1));
        EXPECT_LT(p, 1ULL << (bits + 1));
        EXPECT_TRUE(seen.insert(p).second) << "duplicate prime " << p;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PrimeGenTest,
    ::testing::Combine(::testing::Values(30, 40, 50, 60),
                       ::testing::Values<size_t>(1 << 10, 1 << 12,
                                                 1 << 14, 1 << 16)));

TEST(PrimeGen, SkipListRespected)
{
    const size_t degree = 1 << 12;
    auto first = generatePrimes(45, 4, degree);
    auto second = generatePrimes(45, 4, degree, first);
    for (u64 p : second) {
        for (u64 s : first)
            EXPECT_NE(p, s);
    }
}

TEST(PrimeGen, FirstPrimeLargerBitSize)
{
    const size_t degree = 1 << 13;
    u64 q0 = generateFirstPrime(60, degree);
    EXPECT_TRUE(isPrime(q0));
    EXPECT_EQ((q0 - 1) % (2 * degree), 0u);
    EXPECT_GE(q0, 1ULL << 59);
}

} // namespace
} // namespace ark
