/**
 * @file
 * Tests for the ARK cycle simulator and workload generators: paper
 * Fig. 7/8/9 shape properties, power/area model targets (Table IV),
 * and internal invariants (causality, traffic accounting).
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.h"
#include "workloads/programs.h"

namespace ark {
namespace {

class SimTest : public ::testing::Test
{
  protected:
    static double seconds(const SimProgram &prog, const MachineConfig &m,
                          KeySchedule sched, bool of_limb)
    {
        return ArkSimulator(m, {sched, of_limb}).run(prog).seconds;
    }
};

TEST_F(SimTest, AlgorithmsSpeedUpBootstrapping)
{
    auto p = CkksParams::ark();
    auto m = MachineConfig::arkBase();
    double base = seconds(bootstrapProgram(p, KeySchedule::Baseline), m,
                          KeySchedule::Baseline, false);
    double minks = seconds(bootstrapProgram(p, KeySchedule::MinKS), m,
                           KeySchedule::MinKS, false);
    double both = seconds(bootstrapProgram(p, KeySchedule::MinKS), m,
                          KeySchedule::MinKS, true);
    EXPECT_GT(base / minks, 1.5); // Min-KS is the big lever
    EXPECT_GT(minks / both, 1.05); // OF-Limb adds on top (paper 1.29x)
    // Total speedup near the paper's 2.36x.
    EXPECT_NEAR(base / both, 2.36, 0.6);
    // Absolute time in the paper's regime (~3.5-4 ms).
    EXPECT_GT(both, 1e-3);
    EXPECT_LT(both, 8e-3);
}

TEST_F(SimTest, HalfScratchpadSlowsDown)
{
    auto p = CkksParams::ark();
    auto prog = bootstrapProgram(p, KeySchedule::Baseline);
    double full = seconds(prog, MachineConfig::arkBase(),
                          KeySchedule::Baseline, false);
    double half = seconds(
        prog, MachineConfig::arkBase().withScratchpad(256),
        KeySchedule::Baseline, false);
    EXPECT_GT(half / full, 1.15); // paper: 1.34x
    EXPECT_LT(half / full, 2.0);
}

TEST_F(SimTest, DoubleHbmHelpsHelrMost)
{
    auto p = CkksParams::ark();
    auto base = MachineConfig::arkBase();
    auto hbm2 = MachineConfig::doubleHbm();

    auto boot_prog = bootstrapProgram(p, KeySchedule::MinKS);
    auto helr_prog = helrProgram(p, KeySchedule::MinKS, 1);
    double boot_gain =
        seconds(boot_prog, base, KeySchedule::MinKS, true) /
        seconds(boot_prog, hbm2, KeySchedule::MinKS, true);
    double helr_gain =
        seconds(helr_prog, base, KeySchedule::MinKS, true) /
        seconds(helr_prog, hbm2, KeySchedule::MinKS, true);
    // Paper: bootstrapping 1.07x, HELR 1.47x (irregular rotations).
    EXPECT_LT(boot_gain, 1.15);
    EXPECT_GT(helr_gain, 1.15);
    EXPECT_GT(helr_gain, boot_gain);
}

TEST_F(SimTest, LimbWiseOnlyDistributionDegrades)
{
    auto p = CkksParams::ark();
    for (auto make : {&resnetProgram, &sortingProgram}) {
        auto prog = make(p, KeySchedule::MinKS);
        double alt = seconds(prog, MachineConfig::altDataDistribution(),
                             KeySchedule::MinKS, true);
        double base = seconds(prog, MachineConfig::arkBase(),
                              KeySchedule::MinKS, true);
        double rel = base / alt;
        EXPECT_GT(rel, 0.60); // paper range 0.67-0.85
        EXPECT_LT(rel, 0.95);
    }
}

TEST_F(SimTest, MacSweepSaturatesAtSix)
{
    auto p = CkksParams::ark();
    auto prog = resnetProgram(p, KeySchedule::MinKS);
    double t1 = seconds(prog, MachineConfig::arkBase().withMacs(1),
                        KeySchedule::MinKS, true);
    double t6 = seconds(prog, MachineConfig::arkBase().withMacs(6),
                        KeySchedule::MinKS, true);
    double t8 = seconds(prog, MachineConfig::arkBase().withMacs(8),
                        KeySchedule::MinKS, true);
    EXPECT_GT(t1 / t6, 1.2);         // paper: 1.72x for ResNet-20
    EXPECT_LT(t6 / t8 - 1.0, 0.02);  // <1% beyond six MACs
}

TEST_F(SimTest, ScratchpadSweepSaturates)
{
    auto p = CkksParams::ark();
    auto prog = resnetProgram(p, KeySchedule::MinKS);
    double t192 = seconds(prog,
                          MachineConfig::arkBase().withScratchpad(192),
                          KeySchedule::MinKS, true);
    double t512 = seconds(prog,
                          MachineConfig::arkBase().withScratchpad(512),
                          KeySchedule::MinKS, true);
    double t576 = seconds(prog,
                          MachineConfig::arkBase().withScratchpad(576),
                          KeySchedule::MinKS, true);
    EXPECT_GT(t192 / t512, 1.3);        // paper: 2.42x for ResNet-20
    EXPECT_LT(t512 / t576 - 1.0, 0.05); // saturation
}

TEST_F(SimTest, EvkCacheAccounting)
{
    auto p = CkksParams::ark();
    auto prog = bootstrapProgram(p, KeySchedule::MinKS);
    auto r = ArkSimulator(MachineConfig::arkBase(),
                          {KeySchedule::MinKS, true})
                 .run(prog);
    // Min-KS reuses keys heavily: hits must dominate.
    EXPECT_GT(r.evk_hits, r.evk_misses);
    EXPECT_EQ(r.evk_hits + r.evk_misses,
              static_cast<double>(prog.count(SimOpKind::KeySwitch)));
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.hbm_bytes, 0.0);
}

TEST_F(SimTest, PowerWithinPaperBand)
{
    auto p = CkksParams::ark();
    for (auto sched : {KeySchedule::Baseline, KeySchedule::MinKS}) {
        auto r = ArkSimulator(MachineConfig::arkBase(), {sched, true})
                     .run(bootstrapProgram(p, sched));
        // Paper: 100-135 W across workloads, < 281.3 W peak.
        EXPECT_GT(r.avg_power_w, 80.0);
        EXPECT_LT(r.avg_power_w, 180.0);
    }
}

TEST(ChipModel, Table4Totals)
{
    ChipCost chip = chipCost(MachineConfig::arkBase());
    EXPECT_NEAR(chip.totalArea(), 418.3, 0.1);
    EXPECT_NEAR(chip.totalPeakPower(), 281.3, 0.1);
    // 2x clusters: paper reports 1.39x area and 2.71x NoC power.
    ChipCost twoc = chipCost(MachineConfig::doubleClusters());
    EXPECT_NEAR(twoc.totalArea() / chip.totalArea(), 1.39, 0.06);
    EXPECT_NEAR(twoc.component("NoC").peak_w /
                    chip.component("NoC").peak_w, 2.71, 0.05);
}

TEST(Workloads, ProgramShapes)
{
    auto p = CkksParams::ark();
    auto boot = bootstrapProgram(p, KeySchedule::MinKS);
    EXPECT_GT(boot.count(SimOpKind::KeySwitch), 80u);
    EXPECT_GT(boot.count(SimOpKind::PMult), 250u); // 2 H-(I)DFTs

    auto helr = helrProgram(p, KeySchedule::MinKS, 2);
    auto helr1 = helrProgram(p, KeySchedule::MinKS, 1);
    EXPECT_EQ(helr.ops.size(), 2 * helr1.ops.size());

    auto resnet = resnetProgram(p, KeySchedule::MinKS);
    EXPECT_GT(resnet.ops.size(), 10000u); // 40 bootstraps + convs

    // Baseline schedules reference more distinct evks than Min-KS.
    auto count_ids = [](const SimProgram &prog) {
        std::set<int> ids;
        for (const auto &op : prog.ops) {
            if (op.evk_id >= 0)
                ids.insert(op.evk_id);
        }
        return ids.size();
    };
    EXPECT_GT(count_ids(bootstrapProgram(p, KeySchedule::Baseline)),
              count_ids(bootstrapProgram(p, KeySchedule::MinKS)));
}

} // namespace
} // namespace ark
