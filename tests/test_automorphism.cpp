/**
 * @file
 * Tests for Galois automorphisms: group laws in the coefficient domain
 * and consistency between the coefficient and evaluation domains.
 */

#include <gtest/gtest.h>

#include "common/random.h"
#include "rns/automorphism.h"
#include "rns/ntt.h"
#include "rns/primes.h"

namespace ark {
namespace {

class AutoTest : public ::testing::TestWithParam<size_t>
{
  protected:
    void SetUp() override
    {
        degree_ = GetParam();
        prime_ = generatePrimes(40, 1, degree_).front();
        moduli_ = {Modulus(prime_)};
        tables_.emplace_back(degree_, Modulus(prime_));
    }

    RnsPoly randomPoly(Rep rep, u64 seed)
    {
        Rng rng(seed);
        RnsPoly p(degree_, 1, rep);
        auto v = rng.uniformVector(degree_, prime_);
        std::copy(v.begin(), v.end(), p.limb(0));
        return p;
    }

    size_t degree_;
    u64 prime_;
    std::vector<Modulus> moduli_;
    std::vector<NttTables> tables_;
};

TEST_P(AutoTest, IdentityElement)
{
    Automorphism id(1, degree_);
    auto p = randomPoly(Rep::Coeff, 1);
    auto q = id.apply(p, moduli_);
    for (size_t i = 0; i < degree_; ++i)
        EXPECT_EQ(q.limb(0)[i], p.limb(0)[i]);
}

TEST_P(AutoTest, GroupComposition)
{
    // psi_g2(psi_g1(P)) == psi_{g1*g2 mod 2N}(P).
    const u64 m = 2 * degree_;
    u64 g1 = galoisElt(1, degree_);
    u64 g2 = galoisElt(3, degree_);
    Automorphism a1(g1, degree_), a2(g2, degree_);
    Automorphism a12(static_cast<u64>((static_cast<u128>(g1) * g2) % m),
                     degree_);
    auto p = randomPoly(Rep::Coeff, 2);
    auto lhs = a2.apply(a1.apply(p, moduli_), moduli_);
    auto rhs = a12.apply(p, moduli_);
    for (size_t i = 0; i < degree_; ++i)
        EXPECT_EQ(lhs.limb(0)[i], rhs.limb(0)[i]);
}

TEST_P(AutoTest, RotationInverse)
{
    // Rotating by r then by -r is the identity.
    for (i64 r : {1, 2, 5}) {
        Automorphism fwd(galoisElt(r, degree_), degree_);
        Automorphism bwd(galoisElt(-r, degree_), degree_);
        auto p = randomPoly(Rep::Coeff, 3 + r);
        auto q = bwd.apply(fwd.apply(p, moduli_), moduli_);
        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(q.limb(0)[i], p.limb(0)[i]);
    }
}

TEST_P(AutoTest, ConjugationIsInvolution)
{
    Automorphism conj(galoisEltConjugate(degree_), degree_);
    auto p = randomPoly(Rep::Coeff, 4);
    auto q = conj.apply(conj.apply(p, moduli_), moduli_);
    for (size_t i = 0; i < degree_; ++i)
        EXPECT_EQ(q.limb(0)[i], p.limb(0)[i]);
}

TEST_P(AutoTest, EvalPermutationMatchesCoeffRoute)
{
    // applyEval on NTT(x) must equal NTT(applyCoeff(x)).
    for (i64 r : {1, 2, 7}) {
        Automorphism a(galoisElt(r, degree_), degree_);
        auto p = randomPoly(Rep::Coeff, 5 + r);

        auto via_coeff = a.apply(p, moduli_);
        polyNttForward(via_coeff, tables_);

        auto eval = p;
        polyNttForward(eval, tables_);
        auto via_eval = a.apply(eval, moduli_);

        for (size_t i = 0; i < degree_; ++i)
            EXPECT_EQ(via_eval.limb(0)[i], via_coeff.limb(0)[i])
                << "r=" << r << " i=" << i;
    }
}

TEST_P(AutoTest, CoeffMapMovesMonomialsWithSign)
{
    // psi_g(X^i) = +/- X^{i*g mod N}: check a single monomial.
    u64 g = galoisElt(1, degree_);
    Automorphism a(g, degree_);
    RnsPoly p(degree_, 1, Rep::Coeff);
    p.limb(0)[1] = 1; // P = X
    auto q = a.apply(p, moduli_);
    u64 target = g % (2 * degree_);
    size_t idx = target & (degree_ - 1);
    u64 expect = target >= degree_ ? prime_ - 1 : 1;
    EXPECT_EQ(q.limb(0)[idx], expect);
    // All other coefficients remain zero.
    for (size_t i = 0; i < degree_; ++i) {
        if (i != idx) {
            EXPECT_EQ(q.limb(0)[i], 0u);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AutoTest,
                         ::testing::Values<size_t>(16, 64, 256, 1024));

TEST(GaloisElt, RotationAmountsWrap)
{
    const size_t n = 64;
    // Rotation by n/2 slots is the identity on the rotation group.
    EXPECT_EQ(galoisElt(0, n), 1u);
    EXPECT_EQ(galoisElt(static_cast<i64>(n / 2), n), 1u);
    EXPECT_EQ(galoisElt(1, n), 5u);
    // galoisElt(-1) * galoisElt(1) == 1 mod 2N.
    u64 g = galoisElt(1, n), gi = galoisElt(-1, n);
    EXPECT_EQ((g * gi) % (2 * n), 1u);
}

} // namespace
} // namespace ark
