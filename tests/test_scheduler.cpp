/**
 * @file
 * Tests for the dependence-graph scheduler subsystem (src/graph/):
 * lift round-trips, topological validity of every policy, the
 * EvkCluster working-set guarantee, Belady's optimality ordering,
 * predictor/simulator residency agreement, and the serving-plane
 * commutation graph.
 */

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/schedule.h"
#include "graph/serve_schedule.h"
#include "sim/simulator.h"
#include "workloads/programs.h"

namespace ark {
namespace {

std::vector<SimProgram>
paperTraces()
{
    const CkksParams p = CkksParams::ark();
    std::vector<SimProgram> traces;
    traces.push_back(bootstrapProgram(p, KeySchedule::MinKS));
    traces.push_back(helrProgram(p, KeySchedule::MinKS));
    traces.push_back(resnetProgram(p, KeySchedule::MinKS));
    traces.push_back(sortingProgram(p, KeySchedule::MinKS));
    return traces;
}

bool
sameOp(const SimOp &a, const SimOp &b)
{
    return a.kind == b.kind && a.level == b.level &&
           a.evk_id == b.evk_id &&
           a.of_limb_eligible == b.of_limb_eligible && a.tag == b.tag;
}

constexpr SchedulePolicy kPolicies[] = {
    SchedulePolicy::SourceOrder,
    SchedulePolicy::EvkCluster,
    SchedulePolicy::BeladyResidency,
};

TEST(HeGraphBuilder, SourceOrderRoundTripsEveryTrace)
{
    for (const SimProgram &prog : paperTraces()) {
        const ScheduledProgram sp =
            scheduleProgram(prog, SchedulePolicy::SourceOrder, 2);
        ASSERT_EQ(sp.scheduled.ops.size(), prog.ops.size());
        for (size_t i = 0; i < prog.ops.size(); ++i) {
            EXPECT_TRUE(sameOp(sp.scheduled.ops[i], prog.ops[i]))
                << prog.name << " op " << i;
        }
        EXPECT_EQ(sp.scheduled.name, prog.name);
    }
}

TEST(HeGraphBuilder, GraphShapeInvariants)
{
    for (const SimProgram &prog : paperTraces()) {
        const HeGraph g = liftProgram(prog);
        ASSERT_EQ(g.nodes.size(), prog.ops.size());
        EXPECT_GT(g.edgeCount(), 0u);
        // Source order is always a valid schedule.
        std::vector<size_t> identity(g.nodes.size());
        for (size_t i = 0; i < identity.size(); ++i)
            identity[i] = i;
        EXPECT_TRUE(g.isTopological(identity)) << prog.name;
        // Every edge points forward in the source trace (the builders
        // only constrain against *preceding* ops).
        for (const auto &n : g.nodes) {
            for (size_t p : n.preds)
                EXPECT_LT(p, n.index);
        }
    }
}

TEST(Scheduler, EveryPolicyEmitsTopologicalOrders)
{
    for (const SimProgram &prog : paperTraces()) {
        const HeGraph g = liftProgram(prog);
        for (SchedulePolicy pol : kPolicies) {
            const std::vector<size_t> order = scheduleOrder(g, pol);
            EXPECT_TRUE(g.isTopological(order))
                << prog.name << " under " << schedulePolicyName(pol);
        }
    }
}

TEST(Scheduler, EvkClusterNeverIncreasesWorkingSet)
{
    for (const SimProgram &prog : paperTraces()) {
        const HeGraph g = liftProgram(prog);
        const auto src = scheduleOrder(g, SchedulePolicy::SourceOrder);
        const auto ec = scheduleOrder(g, SchedulePolicy::EvkCluster);

        // The distinct-evk set is schedule-invariant...
        auto ids = [&](const std::vector<size_t> &order) {
            std::set<int> s;
            for (size_t i : order) {
                if (g.nodes[i].op.evk_id >= 0)
                    s.insert(g.nodes[i].op.evk_id);
            }
            return s;
        };
        EXPECT_EQ(ids(src), ids(ec)) << prog.name;
        EXPECT_EQ(ids(src).size(), g.distinctEvks()) << prog.name;

        // ...and at any scratchpad capacity, clustering never adds
        // misses: the schedule-time Min-KS claim.
        for (size_t cap : {size_t(1), size_t(2), size_t(4)}) {
            const auto src_r = predictResidency(g, src, cap,
                                                EvictionPolicy::LRU);
            const auto ec_r =
                predictResidency(g, ec, cap, EvictionPolicy::LRU);
            EXPECT_LE(ec_r.misses, src_r.misses)
                << prog.name << " @ " << cap << " slots";
            EXPECT_LE(ec_r.evk_bytes, src_r.evk_bytes)
                << prog.name << " @ " << cap << " slots";
        }
    }
}

TEST(Scheduler, EvkClusterFullyClustersBootstrapKeys)
{
    // The unhoisted bootstrap emission interleaves baby/giant key
    // uses (interleave 1); clustering must make every key's uses
    // contiguous (interleave 0) — the hoisted Min-KS order.
    const SimProgram prog =
        bootstrapProgram(CkksParams::ark(), KeySchedule::MinKS);
    const HeGraph g = liftProgram(prog);
    const auto src = scheduleOrder(g, SchedulePolicy::SourceOrder);
    const auto ec = scheduleOrder(g, SchedulePolicy::EvkCluster);
    EXPECT_GE(maxEvkInterleave(g, src), 1u);
    EXPECT_EQ(maxEvkInterleave(g, ec), 0u);
}

TEST(Residency, AccountingIsExactAndConsistent)
{
    const SimProgram prog =
        bootstrapProgram(CkksParams::ark(), KeySchedule::MinKS);
    const HeGraph g = liftProgram(prog);
    const auto order = scheduleOrder(g, SchedulePolicy::EvkCluster);
    const ResidencyReport r =
        predictResidency(g, order, 2, EvictionPolicy::LRU);

    size_t keyswitches = 0;
    for (const auto &op : prog.ops)
        keyswitches += op.kind == SimOpKind::KeySwitch && op.evk_id >= 0;
    EXPECT_EQ(r.hits + r.misses, keyswitches);

    size_t uses = 0, hits = 0, misses = 0;
    double bytes = 0;
    for (const auto &e : r.per_evk) {
        EXPECT_EQ(e.uses, e.hits + e.misses);
        EXPECT_GE(e.misses, 1u) << "first use always streams";
        uses += e.uses;
        hits += e.hits;
        misses += e.misses;
        bytes += e.bytes_streamed;
    }
    EXPECT_EQ(uses, keyswitches);
    EXPECT_EQ(hits, r.hits);
    EXPECT_EQ(misses, r.misses);
    EXPECT_DOUBLE_EQ(bytes, r.evk_bytes);
    EXPECT_FALSE(r.toString().empty());
}

TEST(Residency, BeladyNeverWorseThanLru)
{
    for (const SimProgram &prog : paperTraces()) {
        const HeGraph g = liftProgram(prog);
        const auto order =
            scheduleOrder(g, SchedulePolicy::SourceOrder);
        for (size_t cap : {size_t(1), size_t(2), size_t(4)}) {
            const auto lru = predictResidency(g, order, cap,
                                              EvictionPolicy::LRU);
            const auto min = predictResidency(
                g, order, cap, EvictionPolicy::Belady);
            EXPECT_LE(min.misses, lru.misses)
                << prog.name << " @ " << cap << " slots";
        }
    }
}

TEST(Residency, ZeroCapacityStreamsEveryKeySwitch)
{
    const SimProgram prog =
        bootstrapProgram(CkksParams::ark(), KeySchedule::MinKS);
    const HeGraph g = liftProgram(prog);
    const auto order = scheduleOrder(g, SchedulePolicy::EvkCluster);
    const ResidencyReport r =
        predictResidency(g, order, 0, EvictionPolicy::LRU);
    EXPECT_EQ(r.hits, 0u);
    EXPECT_EQ(r.misses,
              prog.count(SimOpKind::KeySwitch)); // all have evks here
}

TEST(Simulator, RunScheduledAgreesWithResidencyPredictor)
{
    // The planner's slot model and the cycle model's byte-capacity
    // model are the same cache: hits, misses, and streamed evk bytes
    // must agree exactly when run at the simulator's slot capacity.
    const CkksParams p = CkksParams::ark();
    const SimProgram prog = bootstrapProgram(p, KeySchedule::MinKS);
    for (double spad : {384.0, 512.0}) {
        ArkSimulator sim(
            MachineConfig::arkBase().withScratchpad(spad),
            SimAlgo{KeySchedule::MinKS, true});
        const size_t slots = sim.evkSlotCapacity(p);
        for (SchedulePolicy pol : kPolicies) {
            const ScheduledProgram sp =
                scheduleProgram(prog, pol, slots);
            const ScheduledSimResult r = sim.runScheduled(sp);
            EXPECT_EQ(static_cast<size_t>(r.scheduled.evk_misses),
                      sp.residency.misses)
                << schedulePolicyName(pol) << " @ " << spad;
            EXPECT_DOUBLE_EQ(r.scheduled.evk_bytes,
                             sp.residency.evk_bytes)
                << schedulePolicyName(pol) << " @ " << spad;
        }
    }
}

TEST(Simulator, SourceOrderScheduleMatchesPlainRun)
{
    const CkksParams p = CkksParams::ark();
    const SimProgram prog = bootstrapProgram(p, KeySchedule::MinKS);
    ArkSimulator sim(MachineConfig::arkBase(),
                     SimAlgo{KeySchedule::MinKS, true});
    const ScheduledProgram sp = scheduleProgram(
        prog, SchedulePolicy::SourceOrder, sim.evkSlotCapacity(p));
    const ScheduledSimResult r = sim.runScheduled(sp);
    const SimResult plain = sim.run(prog);
    EXPECT_DOUBLE_EQ(r.scheduled.cycles, plain.cycles);
    EXPECT_DOUBLE_EQ(r.scheduled.hbm_bytes, plain.hbm_bytes);
    EXPECT_DOUBLE_EQ(r.source.cycles, plain.cycles);
    EXPECT_DOUBLE_EQ(r.speedup, 1.0);
    EXPECT_GT(plain.evk_bytes, 0.0);
    EXPECT_LE(plain.evk_bytes, plain.hbm_bytes);
}

TEST(Simulator, EvkClusterReducesTrafficUnderPressure)
{
    // The acceptance headline, pinned as a test: at one evk slot,
    // schedule-time clustering strictly reduces evk HBM traffic on
    // the bootstrap and ResNet traces.
    const CkksParams p = CkksParams::ark();
    ArkSimulator sim(MachineConfig::arkBase().withScratchpad(384),
                     SimAlgo{KeySchedule::MinKS, true});
    const size_t slots = sim.evkSlotCapacity(p);
    ASSERT_EQ(slots, 1u);
    for (const SimProgram &prog :
         {bootstrapProgram(p, KeySchedule::MinKS),
          resnetProgram(p, KeySchedule::MinKS)}) {
        const ScheduledSimResult r = sim.runScheduled(scheduleProgram(
            prog, SchedulePolicy::EvkCluster, slots));
        EXPECT_GT(r.evk_saved_bytes, 0.0) << prog.name;
        EXPECT_GT(r.speedup, 1.2) << prog.name;
    }
}

TEST(ServeSchedule, WorkloadLiftEncodesCommutation)
{
    ServeWorkload w;
    w.name = "toy";
    w.ops.push_back({ServeOpKind::Rotate, 1, 0, 0});
    w.ops.push_back({ServeOpKind::AddScalar, 0, 0, 0.5});
    w.ops.push_back({ServeOpKind::Rotate, 1, 0, 0});
    w.ops.push_back({ServeOpKind::Square, 0, 0, 0});
    w.ops.push_back({ServeOpKind::Rescale, 0, 0, 0});

    const HeGraph g = liftWorkload(w);
    ASSERT_EQ(g.nodes.size(), 5u);
    // Rotations chain past the commuting AddScalar...
    EXPECT_EQ(g.nodes[2].preds, std::vector<size_t>{0});
    // ...the AddScalar floats (no preds: nothing before it conflicts),
    EXPECT_TRUE(g.nodes[1].preds.empty());
    // ...and the Square joins everything since the last barrier.
    std::vector<size_t> sq = g.nodes[3].preds;
    std::sort(sq.begin(), sq.end());
    EXPECT_EQ(sq, (std::vector<size_t>{0, 1, 2}));
    EXPECT_EQ(g.nodes[4].preds, std::vector<size_t>{3});

    // EvkCluster pulls the same-key rotations together; the schedule
    // is a valid topological order and a permutation.
    const auto order = scheduleOrder(g, SchedulePolicy::EvkCluster);
    EXPECT_TRUE(g.isTopological(order));
    const ServeWorkload s = scheduleWorkload(w, SchedulePolicy::EvkCluster);
    ASSERT_EQ(s.ops.size(), w.ops.size());
    // The scheduler flushes the key-free CAdd first, then runs both
    // same-key rotations back to back.
    EXPECT_EQ(s.ops[0].kind, ServeOpKind::AddScalar);
    EXPECT_EQ(s.ops[1].kind, ServeOpKind::Rotate);
    EXPECT_EQ(s.ops[2].kind, ServeOpKind::Rotate);
}

TEST(ServeSchedule, ScheduledWorkloadIsAPermutation)
{
    const auto mix = standardServingMix(CkksParams::testTiny());
    for (const ServeWorkload &w : mix) {
        const ServeWorkload s =
            scheduleWorkload(w, SchedulePolicy::EvkCluster);
        ASSERT_EQ(s.ops.size(), w.ops.size()) << w.name;
        EXPECT_EQ(s.name, w.name);
        EXPECT_EQ(s.input_index, w.input_index);
        auto key = [](const ServeOp &o) {
            return std::make_tuple(static_cast<int>(o.kind),
                                   o.rotation, o.pt_index, o.scalar);
        };
        std::vector<std::tuple<int, i64, size_t, double>> a, b;
        for (const auto &o : w.ops)
            a.push_back(key(o));
        for (const auto &o : s.ops)
            b.push_back(key(o));
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        EXPECT_EQ(a, b) << w.name;
        // The schedule respects the workload's own commutation graph.
        const HeGraph g = liftWorkload(w);
        EXPECT_TRUE(g.isTopological(
            scheduleOrder(g, SchedulePolicy::EvkCluster)));
        // SourceOrder / BeladyResidency leave serving payloads alone.
        for (SchedulePolicy pol : {SchedulePolicy::SourceOrder,
                                   SchedulePolicy::BeladyResidency}) {
            const ServeWorkload id = scheduleWorkload(w, pol);
            ASSERT_EQ(id.ops.size(), w.ops.size());
            for (size_t i = 0; i < w.ops.size(); ++i)
                EXPECT_EQ(static_cast<int>(id.ops[i].kind),
                          static_cast<int>(w.ops[i].kind));
        }
    }
}

TEST(ServeSchedule, AdmissionOrderClustersSharedSignatures)
{
    const auto mix = standardServingMix(CkksParams::testTiny());
    ASSERT_GE(mix.size(), 2u);
    // Round-robin FCFS order interleaves workloads maximally; the
    // clustered order must group requests of identical signature
    // while preserving FCFS within each group.
    std::vector<size_t> reqs;
    for (size_t i = 0; i < 12; ++i)
        reqs.push_back(i % mix.size());
    const auto order = clusterAdmissionOrder(mix, reqs);

    ASSERT_EQ(order.size(), reqs.size());
    std::set<size_t> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), reqs.size()); // a permutation

    // Grouping key: the rotation-evk signature (workloads may share
    // one, in which case their requests legitimately pool).
    auto signature = [&](size_t req) {
        std::vector<i64> amts = mix[reqs[req]].rotationAmounts();
        std::sort(amts.begin(), amts.end());
        return amts;
    };
    std::set<std::vector<i64>> distinct;
    for (size_t i = 0; i < reqs.size(); ++i)
        distinct.insert(signature(i));

    // A perfectly grouped permutation has exactly n - #groups adjacent
    // same-signature pairs; round-robin admission has far fewer.
    size_t adjacent = 0;
    for (size_t i = 1; i < order.size(); ++i)
        adjacent += signature(order[i]) == signature(order[i - 1]);
    EXPECT_EQ(adjacent, reqs.size() - distinct.size());

    // FCFS preserved within each signature group (stable sort).
    for (size_t i = 1; i < order.size(); ++i) {
        if (signature(order[i]) == signature(order[i - 1])) {
            EXPECT_LT(order[i - 1], order[i]);
        }
    }
}

} // namespace
} // namespace ark
