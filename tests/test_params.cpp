/**
 * @file
 * Tests for parameter presets: Table III data sizes must match the
 * paper's reported values.
 */

#include <gtest/gtest.h>

#include "ckks/params.h"

namespace ark {
namespace {

TEST(Params, ArkPresetMatchesTable3)
{
    auto p = CkksParams::ark();
    EXPECT_EQ(p.degree, 1ULL << 16);
    EXPECT_EQ(p.max_level, 23);
    EXPECT_EQ(p.boot_levels, 15);
    EXPECT_EQ(p.dnum, 4);
    EXPECT_EQ(p.alpha(), 6);
    EXPECT_NEAR(p.plaintextMiB(), 12.0, 0.01);
    EXPECT_NEAR(p.ciphertextMiB(), 24.0, 0.01);
    EXPECT_NEAR(p.evkMiB(), 120.0, 0.01);
}

TEST(Params, LattigoPresetMatchesTable3)
{
    auto p = CkksParams::lattigo();
    EXPECT_EQ(p.degree, 1ULL << 16);
    EXPECT_EQ(p.max_level, 24);
    EXPECT_EQ(p.dnum, 5);
    EXPECT_EQ(p.alpha(), 5);
    EXPECT_NEAR(p.plaintextMiB(), 12.5, 0.01);
    EXPECT_NEAR(p.ciphertextMiB(), 25.0, 0.01);
    EXPECT_NEAR(p.evkMiB(), 150.0, 0.01);
}

TEST(Params, HundredXPresetMatchesTable3)
{
    auto p = CkksParams::hundredX();
    EXPECT_EQ(p.degree, 1ULL << 17);
    EXPECT_EQ(p.max_level, 29);
    EXPECT_EQ(p.dnum, 3);
    EXPECT_EQ(p.alpha(), 10);
    EXPECT_NEAR(p.plaintextMiB(), 30.0, 0.01);
    EXPECT_NEAR(p.ciphertextMiB(), 60.0, 0.01);
    EXPECT_NEAR(p.evkMiB(), 240.0, 0.01);
}

TEST(Params, F1PresetMatchesTable3)
{
    auto p = CkksParams::f1();
    EXPECT_EQ(p.degree, 1ULL << 14);
    EXPECT_EQ(p.max_level, 15);
    EXPECT_EQ(p.dnum, 16);
    EXPECT_EQ(p.alpha(), 1);
    EXPECT_EQ(p.word_bytes, 4u); // 32-bit machine words
    EXPECT_NEAR(p.plaintextMiB(), 1.0, 0.01);
    EXPECT_NEAR(p.ciphertextMiB(), 2.0, 0.01);
    EXPECT_NEAR(p.evkMiB(), 34.0, 0.01);
}

TEST(Params, DnumDividesLevels)
{
    for (auto p : {CkksParams::ark(), CkksParams::lattigo(),
                   CkksParams::hundredX(), CkksParams::f1(),
                   CkksParams::testTiny(), CkksParams::testSmall(),
                   CkksParams::testBoot()}) {
        EXPECT_EQ((p.max_level + 1) % p.dnum, 0)
            << p.name << ": dnum must divide L+1";
        EXPECT_EQ(p.alpha() * p.dnum, p.max_level + 1) << p.name;
    }
}

TEST(Params, ScaleIsPowerOfTwo)
{
    auto p = CkksParams::ark();
    EXPECT_EQ(p.scale(), static_cast<double>(1ULL << p.log_scale));
}

} // namespace
} // namespace ark
