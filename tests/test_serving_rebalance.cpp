/**
 * @file
 * Online shard-rebalance tests (shard/serve_shard.h replanServeShards
 * and its BatchServer integration). Pins the ISSUE invariants: a
 * group moves only on a clear observed imbalance, no shard that
 * serves traffic is ever stranded without an evk group, no workload
 * is ever left unassigned, the replan is deterministic, and a server
 * that rebalances mid-stream stays bit-identical to the static plan.
 * All timing arrives through the injected ManualServeClock — no
 * wall-clock sleeps anywhere.
 */

#include <algorithm>
#include <cstdlib>
#include <future>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "serve/batch_server.h"

namespace ark {
namespace {

/** A synthetic workload whose evk signature is just @p rotation,
 *  padded with AddScalar filler to the requested op weight. */
ServeWorkload
syntheticWorkload(const std::string &name, i64 rotation, size_t weight)
{
    ServeWorkload w;
    w.name = name;
    w.ops.push_back({ServeOpKind::Rotate, rotation, 0, 0});
    while (w.ops.size() < weight)
        w.ops.push_back({ServeOpKind::AddScalar, 0, 0, 0.25});
    return w;
}

/** Hand-built routing table over @p workloads (one group each). */
ServeShardPlan
planOf(const std::vector<ServeWorkload> &workloads, size_t shards,
       const std::vector<size_t> &shard_of_workload)
{
    ServeShardPlan plan;
    plan.shards = shards;
    plan.shard_of_workload = shard_of_workload;
    plan.evks_of_shard.assign(shards, {});
    plan.weight_of_shard.assign(shards, 0);
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        const size_t s = shard_of_workload[wi];
        plan.weight_of_shard[s] += workloads[wi].ops.size();
        for (i64 amt : workloads[wi].evkSignature())
            plan.evks_of_shard[s].push_back(amt);
    }
    return plan;
}

void
expectWellFormed(const ServeShardPlan &plan,
                 const std::vector<ServeWorkload> &workloads)
{
    ASSERT_EQ(plan.shard_of_workload.size(), workloads.size());
    size_t total = 0;
    for (size_t wi = 0; wi < workloads.size(); ++wi) {
        EXPECT_LT(plan.shard_of_workload[wi], plan.shards)
            << "workload " << wi << " left unassigned";
        total += workloads[wi].ops.size();
    }
    EXPECT_EQ(std::accumulate(plan.weight_of_shard.begin(),
                              plan.weight_of_shard.end(), size_t{0}),
              total);
}

// ---------------------------------------------------------------
// replanServeShards: pure-function unit tests.
// ---------------------------------------------------------------

TEST(Rebalance, MovesLightestGroupOffTheHotShard)
{
    // Four single-workload groups, signatures {1},{2},{3},{4}, split
    // 2/2. Shard 0 peaked 10 deep vs shard 1's 1 (>= 2*1+1): the
    // lighter of shard 0's groups (workload 1, weight 3) must move.
    std::vector<ServeWorkload> wls = {
        syntheticWorkload("a", 1, 6), syntheticWorkload("b", 2, 3),
        syntheticWorkload("c", 3, 5), syntheticWorkload("d", 4, 4)};
    const ServeShardPlan current = planOf(wls, 2, {0, 0, 1, 1});

    ServeShardSignal sig;
    sig.peak_depth = {10, 1};
    sig.evk_miss = {0, 0};
    const ServeShardPlan next = replanServeShards(wls, current, sig);

    expectWellFormed(next, wls);
    EXPECT_EQ(next.shard_of_workload,
              (std::vector<size_t>{0, 1, 1, 1}));
    EXPECT_EQ(next.weight_of_shard[0], 6u);
    EXPECT_EQ(next.weight_of_shard[1], 12u);
    // The migrated signature joined the cold shard's key set.
    EXPECT_NE(std::find(next.evks_of_shard[1].begin(),
                        next.evks_of_shard[1].end(), i64{2}),
              next.evks_of_shard[1].end());
}

TEST(Rebalance, NoMoveWithoutClearImbalance)
{
    std::vector<ServeWorkload> wls = {
        syntheticWorkload("a", 1, 4), syntheticWorkload("b", 2, 4),
        syntheticWorkload("c", 3, 4), syntheticWorkload("d", 4, 4)};
    const ServeShardPlan current = planOf(wls, 2, {0, 0, 1, 1});

    // 4 vs 2 is below the 2x+1 trigger (4 < 5): hold the plan.
    ServeShardSignal sig;
    sig.peak_depth = {4, 2};
    sig.evk_miss = {100, 0};
    EXPECT_EQ(replanServeShards(wls, current, sig).shard_of_workload,
              current.shard_of_workload);

    // An all-idle window (0 vs 0) must never churn either.
    sig.peak_depth = {0, 0};
    EXPECT_EQ(replanServeShards(wls, current, sig).shard_of_workload,
              current.shard_of_workload);

    // Single shard: nothing to rebalance, ever.
    const ServeShardPlan solo = planOf(wls, 1, {0, 0, 0, 0});
    ServeShardSignal solo_sig;
    solo_sig.peak_depth = {50};
    solo_sig.evk_miss = {50};
    EXPECT_EQ(replanServeShards(wls, solo, solo_sig).shard_of_workload,
              solo.shard_of_workload);
}

TEST(Rebalance, NeverStrandsTheHotShard)
{
    // The hot shard owns exactly one group: moving it would leave a
    // worker group serving nothing, so the replan must refuse even
    // under an extreme signal.
    std::vector<ServeWorkload> wls = {
        syntheticWorkload("a", 1, 9), syntheticWorkload("b", 2, 2),
        syntheticWorkload("c", 3, 2)};
    const ServeShardPlan current = planOf(wls, 2, {0, 1, 1});

    ServeShardSignal sig;
    sig.peak_depth = {1000, 0};
    sig.evk_miss = {1000, 0};
    EXPECT_EQ(replanServeShards(wls, current, sig).shard_of_workload,
              current.shard_of_workload);
}

TEST(Rebalance, SameSignatureWorkloadsMoveAsOneGroup)
{
    // Workloads a and b share signature {1} and must stay co-located
    // through a migration (the router's co-location guarantee).
    std::vector<ServeWorkload> wls = {
        syntheticWorkload("a", 1, 2), syntheticWorkload("b", 1, 2),
        syntheticWorkload("c", 2, 9), syntheticWorkload("d", 3, 8)};
    const ServeShardPlan current = planOf(wls, 2, {0, 0, 0, 1});

    ServeShardSignal sig;
    sig.peak_depth = {7, 1};
    sig.evk_miss = {0, 0};
    const ServeShardPlan next = replanServeShards(wls, current, sig);
    expectWellFormed(next, wls);
    // The {1} group (total weight 4) is the lightest on shard 0.
    EXPECT_EQ(next.shard_of_workload[0], next.shard_of_workload[1]);
    EXPECT_EQ(next.shard_of_workload[0], 1u);
    EXPECT_EQ(next.shard_of_workload[2], 0u);
}

TEST(Rebalance, EvkMissesBreakPeakDepthTies)
{
    // Shards 0 and 1 peaked equally deep; shard 1 churned its key
    // working set harder, so it is the hotter donor.
    std::vector<ServeWorkload> wls = {
        syntheticWorkload("a", 1, 4), syntheticWorkload("b", 2, 3),
        syntheticWorkload("c", 3, 4), syntheticWorkload("d", 4, 3),
        syntheticWorkload("e", 5, 4)};
    const ServeShardPlan current = planOf(wls, 3, {0, 0, 1, 1, 2});

    ServeShardSignal sig;
    sig.peak_depth = {9, 9, 0};
    sig.evk_miss = {5, 7, 0};
    const ServeShardPlan next = replanServeShards(wls, current, sig);
    expectWellFormed(next, wls);
    // Shard 1's lighter group (workload d, weight 3) moved to the
    // cold shard 2; shard 0 is untouched.
    EXPECT_EQ(next.shard_of_workload,
              (std::vector<size_t>{0, 0, 1, 2, 2}));
}

TEST(Rebalance, ReplanIsDeterministic)
{
    std::vector<ServeWorkload> wls = {
        syntheticWorkload("a", 1, 6), syntheticWorkload("b", 2, 3),
        syntheticWorkload("c", 3, 5), syntheticWorkload("d", 4, 4)};
    const ServeShardPlan current = planOf(wls, 2, {0, 0, 1, 1});
    ServeShardSignal sig;
    sig.peak_depth = {10, 1};
    sig.evk_miss = {3, 0};
    const ServeShardPlan once = replanServeShards(wls, current, sig);
    const ServeShardPlan twice = replanServeShards(wls, current, sig);
    EXPECT_EQ(once.shard_of_workload, twice.shard_of_workload);
    EXPECT_EQ(once.weight_of_shard, twice.weight_of_shard);
    EXPECT_EQ(once.evks_of_shard, twice.evks_of_shard);
}

// ---------------------------------------------------------------
// BatchServer integration, on the injected manual clock.
// ---------------------------------------------------------------

/** Same fixed-seed serving stack as test_serving.cpp. */
struct Stack
{
    std::unique_ptr<CkksContext> ctx;
    Rng rng{777};
    std::unique_ptr<KeyGenerator> keygen;
    SecretKey sk;
    std::unique_ptr<KeyCache> keys;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<PlaintextStore> store;
    std::vector<ServeWorkload> workloads;
    std::vector<Ciphertext> inputs;

    Stack()
    {
        unsetenv("ARK_BACKEND");
        unsetenv("ARK_THREADS");
        CkksParams p = CkksParams::testTiny();
        p.backend = BackendKind::Scalar;
        ctx = std::make_unique<CkksContext>(p);
        keygen = std::make_unique<KeyGenerator>(*ctx, rng);
        sk = keygen->secretKey();
        keys = std::make_unique<KeyCache>(*keygen, sk, ctx->degree());
        encoder = std::make_unique<CkksEncoder>(*ctx);
        CkksEncryptor encryptor(*ctx, rng);

        store = std::make_unique<PlaintextStore>(*ctx,
                                                 PlaintextMode::OFLimb);
        const size_t slots = p.num_slots;
        std::vector<Complex> m(slots);
        for (size_t i = 0; i < slots; ++i)
            m[i] = Complex(0.6 + 0.001 * static_cast<double>(i % 11),
                           0.02);
        store->insert(encoder->encode(m, ctx->maxLevel()));

        LowerOptions opt;
        opt.max_ops = 20;
        workloads = standardServingMix(p, opt);
        std::vector<i64> amounts;
        for (const auto &w : workloads) {
            const std::vector<i64> amts = w.rotationAmounts();
            amounts.insert(amounts.end(), amts.begin(), amts.end());
        }
        keys->warm(std::move(amounts));

        Ciphertext ct = encryptor.encryptSymmetric(
            encoder->encode(m, ctx->maxLevel()), sk);
        ct.slots = slots;
        inputs.push_back(std::move(ct));
    }
};

/** A shard of @p plan holding two or more evk-signature groups (the
 *  only legal donor), or plan.shards when none exists. */
size_t
donorShard(const ServeShardPlan &plan,
           const std::vector<ServeWorkload> &workloads)
{
    std::vector<size_t> groups(plan.shards, 0);
    for (const auto &members : groupByEvkSignature(workloads))
        groups[plan.shard_of_workload[members.front()]] += 1;
    for (size_t s = 0; s < plan.shards; ++s) {
        if (groups[s] >= 2)
            return s;
    }
    return plan.shards;
}

TEST(Rebalance, ServerSwapsRoutingOnExplicitSignal)
{
    Stack s;
    ManualServeClock clk;
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.queue_capacity = 16;
    cfg.clock = &clk;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);

    const ServeShardPlan before = server.shardPlan();
    const size_t hot = donorShard(before, server.workloads());
    ASSERT_LT(hot, before.shards)
        << "the standard mix must give some shard two groups";

    ServeShardSignal sig;
    sig.peak_depth.assign(2, 0);
    sig.evk_miss.assign(2, 0);
    sig.peak_depth[hot] = 10;

    EXPECT_TRUE(server.rebalanceNow(sig));
    EXPECT_EQ(server.rebalances(), 1u);
    const ServeShardPlan after = server.shardPlan();
    EXPECT_NE(after.shard_of_workload, before.shard_of_workload);
    expectWellFormed(after, server.workloads());

    // The same stale signal is consumed: peaks were reset on the
    // swap, so replaying it against live queues is a no-op... but an
    // explicit-signal call still re-evaluates and may bounce the
    // group back — assert only the deterministic parts.
    EXPECT_TRUE(server.drain().toString().size() > 0);
}

TEST(Rebalance, BalancedSignalLeavesServerPlanAlone)
{
    Stack s;
    ManualServeClock clk;
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.queue_capacity = 16;
    cfg.clock = &clk;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);
    ServeShardSignal sig;
    sig.peak_depth = {1, 1};
    sig.evk_miss = {0, 0};
    EXPECT_FALSE(server.rebalanceNow(sig));
    EXPECT_EQ(server.rebalances(), 0u);
}

TEST(Rebalance, MidStreamRebalancePreservesBitParity)
{
    // A server that swaps its routing table halfway through a request
    // stream must produce checksums bit-identical to a static-plan
    // server: routing only picks WHERE a pure function runs, and
    // nothing queued is dropped by the swap.
    Stack s;
    const size_t n = 16;
    std::vector<size_t> indices;
    for (size_t i = 0; i < n; ++i)
        indices.push_back(i % s.workloads.size());

    auto serve = [&](bool rebalance_midway) {
        ManualServeClock clk;
        BatchServerConfig cfg;
        cfg.workers = 4;
        cfg.shards = 2;
        cfg.queue_capacity = n;
        cfg.clock = &clk;
        BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                           s.inputs, cfg);
        std::vector<std::future<ServeResult>> futs;
        for (size_t i = 0; i < n; ++i) {
            if (rebalance_midway && i == n / 2) {
                const size_t hot =
                    donorShard(server.shardPlan(), server.workloads());
                EXPECT_LT(hot, size_t{2});
                if (hot < 2) {
                    ServeShardSignal sig;
                    sig.peak_depth.assign(2, 0);
                    sig.evk_miss.assign(2, 0);
                    sig.peak_depth[hot] = 10;
                    EXPECT_TRUE(server.rebalanceNow(sig));
                }
            }
            futs.push_back(server.submit(indices[i]));
        }
        std::vector<u64> sums;
        for (auto &f : futs) {
            ServeResult r = f.get();
            EXPECT_TRUE(r.ok) << r.error;
            sums.push_back(r.checksum);
        }
        ServeReport rep = server.drain();
        EXPECT_EQ(rep.requests, n) << "no request lost in the swap";
        return sums;
    };

    const auto without = serve(false);
    const auto with = serve(true);
    EXPECT_EQ(without, with);
}

TEST(Rebalance, PeriodicTriggerFiresOnTheManualClock)
{
    // rebalance_interval_ms rides on admissions against the injected
    // clock: no admission after the interval, no rebalance; the first
    // admission past the deadline measures the live peaks and swaps.
    Stack s;
    ManualServeClock clk;
    BatchServerConfig cfg;
    cfg.workers = 2;
    cfg.shards = 2;
    cfg.queue_capacity = 16;
    cfg.clock = &clk;
    cfg.admission.rebalance_interval_ms = 5;
    BatchServer server(*s.ctx, *s.keys, *s.store, s.workloads,
                       s.inputs, cfg);

    const ServeShardPlan plan = server.shardPlan();
    const size_t hot = donorShard(plan, server.workloads());
    ASSERT_LT(hot, plan.shards);
    // A workload routed to the donor shard: its pushes raise that
    // shard's peak depth while the other shard stays at zero.
    size_t hot_wl = plan.shard_of_workload.size();
    for (size_t wi = 0; wi < plan.shard_of_workload.size(); ++wi) {
        if (plan.shard_of_workload[wi] == hot) {
            hot_wl = wi;
            break;
        }
    }
    ASSERT_LT(hot_wl, plan.shard_of_workload.size());

    std::vector<std::future<ServeResult>> futs;
    // Within the interval: traffic builds the hot peak, no swap.
    for (int i = 0; i < 6; ++i)
        futs.push_back(server.submit(hot_wl));
    EXPECT_EQ(server.rebalances(), 0u);

    // Cross the deadline on the manual clock; the next admission
    // observes peak(hot) >= 1 vs peak(cold) == 0 and re-plans.
    clk.advanceMs(6);
    futs.push_back(server.submit(hot_wl));
    EXPECT_EQ(server.rebalances(), 1u);
    EXPECT_NE(server.shardPlan().shard_of_workload,
              plan.shard_of_workload);

    for (auto &f : futs)
        EXPECT_TRUE(f.get().ok);
    EXPECT_EQ(server.drain().requests, futs.size());
}

} // namespace
} // namespace ark
