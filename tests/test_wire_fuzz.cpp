/**
 * @file
 * Seeded byte-mutation fuzzer over every wire frame body the
 * serializer decodes (docs/wire_format.md §4-§5): params, plaintext,
 * ciphertext, eval key, public key, stats, plus the §2 frame header.
 * 10,000 mutation iterations (stdlib PRNG, fixed seed — fully
 * reproducible, no external fuzzing deps): random byte flips,
 * truncations, extensions, and length-field stomps. The contract
 * under test is §8's error discipline: a decoder presented with
 * arbitrary bytes either succeeds or throws a typed WireError —
 * never a crash, never an unbounded allocation, never any other
 * exception type. CI runs this under ASan/UBSan and TSan, so a leak
 * or UB on any rejection path fails the build.
 */

#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/keygen.h"
#include "wire/serializer.h"
#include "wire/stats_frame.h"

namespace ark {
namespace {

/** One fuzz target: a valid seed body plus its decoder. */
struct Target
{
    std::string name;
    std::vector<u8> seed_body;
    std::function<void(const std::vector<u8> &)> decode;
};

/** Apply one random mutation to @p body in place. */
void
mutate(std::vector<u8> &body, std::mt19937_64 &prng)
{
    const auto pick = [&](size_t n) {
        return static_cast<size_t>(prng() % n);
    };
    switch (prng() % 5) {
      case 0: // flip 1..8 random bytes
        if (!body.empty()) {
            const size_t flips = 1 + pick(8);
            for (size_t i = 0; i < flips; ++i)
                body[pick(body.size())] ^=
                    static_cast<u8>(1 + pick(255));
        }
        break;
      case 1: // truncate to a random prefix (possibly empty)
        body.resize(pick(body.size() + 1));
        break;
      case 2: { // append 1..16 random bytes
        const size_t extra = 1 + pick(16);
        for (size_t i = 0; i < extra; ++i)
            body.push_back(static_cast<u8>(prng()));
        break;
      }
      case 3: // flip + truncate
        if (!body.empty()) {
            body[pick(body.size())] ^= static_cast<u8>(1 + pick(255));
            body.resize(pick(body.size() + 1));
        }
        break;
      default: // stomp a 4-byte window (targets length/count fields)
        if (body.size() >= 4) {
            const size_t at = pick(body.size() - 3);
            const u32 v = static_cast<u32>(prng());
            for (int i = 0; i < 4; ++i)
                body[at + i] = static_cast<u8>(v >> (8 * i));
        }
        break;
    }
}

/** Run @p iterations mutations of @p t; every decode must either
 *  succeed or throw WireError. Returns the typed-rejection count. */
size_t
fuzzTarget(const Target &t, size_t iterations, u64 seed)
{
    std::mt19937_64 prng(seed);
    size_t rejected = 0;
    for (size_t i = 0; i < iterations; ++i) {
        std::vector<u8> body = t.seed_body;
        mutate(body, prng);
        try {
            t.decode(body);
        } catch (const WireError &) {
            ++rejected; // the §8 contract: typed, catchable, done
        } catch (const std::exception &e) {
            ADD_FAILURE() << t.name << " iteration " << i
                          << " threw a non-wire exception: "
                          << e.what();
            return rejected;
        }
    }
    return rejected;
}

TEST(WireFuzz, EveryBodyDecoderRejectsMutationsTyped)
{
    // Build one valid body per frame type from the usual fixed-seed
    // material, then hammer each decoder. 1500 iterations x 6 body
    // targets + 1000 header iterations = 10,000 total.
    CkksParams params = CkksParams::testTiny();
    CkksContext ctx(params);
    Rng rng(2026);
    KeyGenerator keygen(ctx, rng);
    const SecretKey sk = keygen.secretKey();
    CkksEncoder encoder(ctx);
    CkksEncryptor encryptor(ctx, rng);

    std::vector<Complex> msg(params.num_slots);
    for (size_t i = 0; i < msg.size(); ++i)
        msg[i] = Complex(0.1 * static_cast<double>(i % 7), -0.05);
    const Plaintext pt = encoder.encode(msg, ctx.maxLevel());
    const Ciphertext ct = encryptor.encryptSymmetric(pt, sk);
    const EvalKey evk = keygen.evkMultSeeded(sk, 0xF00D);
    const PublicKey pk = keygen.publicKey(sk);

    RemoteStats stats;
    stats.uptime_ms = 1234;
    stats.shards = {{3, 16, 1, 901}, {0, 8, 2, 77}};
    stats.counters = {{"admit_accepted", 978}, {"requests_shed", 5}};
    stats.phases = {{"execute", 978, 4.25, 4.0, 9.5, 22.75}};

    std::vector<Target> targets;
    {
        ByteWriter w;
        writeParams(w, params);
        targets.push_back({"params", w.take(),
                           [](const std::vector<u8> &b) {
                               ByteReader r(b);
                               (void)readParams(r);
                               r.finish();
                           }});
    }
    {
        ByteWriter w;
        writePlaintext(w, pt);
        targets.push_back({"plaintext", w.take(),
                           [&ctx](const std::vector<u8> &b) {
                               ByteReader r(b);
                               (void)readPlaintext(r, ctx);
                               r.finish();
                           }});
    }
    {
        ByteWriter w;
        writeCiphertext(w, ct);
        targets.push_back({"ciphertext", w.take(),
                           [&ctx](const std::vector<u8> &b) {
                               ByteReader r(b);
                               (void)readCiphertext(r, ctx);
                               r.finish();
                           }});
    }
    {
        ByteWriter w;
        writeEvalKey(w, EvalKeyPurpose::Multiplication, 0, evk);
        targets.push_back({"eval_key", w.take(),
                           [&ctx](const std::vector<u8> &b) {
                               ByteReader r(b);
                               (void)readEvalKey(r, ctx);
                               r.finish();
                           }});
    }
    {
        ByteWriter w;
        writePublicKey(w, pk);
        targets.push_back({"public_key", w.take(),
                           [&ctx](const std::vector<u8> &b) {
                               ByteReader r(b);
                               (void)readPublicKey(r, ctx);
                               r.finish();
                           }});
    }
    {
        ByteWriter w;
        writeStats(w, stats);
        targets.push_back({"stats", w.take(),
                           [](const std::vector<u8> &b) {
                               ByteReader r(b);
                               (void)readStats(r);
                               r.finish();
                           }});
    }

    const size_t kIterations = 1500;
    u64 seed = 0xA11CE;
    for (const Target &t : targets) {
        const size_t rejected = fuzzTarget(t, kIterations, seed++);
        // Mutations overwhelmingly corrupt something a validator
        // catches; a fuzzer that never rejects is not reaching the
        // decoders at all.
        EXPECT_GT(rejected, kIterations / 2) << t.name;
        if (::testing::Test::HasFailure())
            return; // one corpus dump is enough
    }
}

TEST(WireFuzz, FrameHeaderRejectsMutationsTyped)
{
    // §2 envelope: mutate a valid 24-byte header and fully random
    // headers; decodeFrameHeader must throw WireError or return a
    // well-formed FrameHeader — never anything else.
    const std::vector<u8> frame =
        encodeFrame(FrameType::Submit, 0x0123456789ABCDEFull,
                    {0xAA, 0xBB, 0xCC});
    std::mt19937_64 prng(0xBEEF);
    size_t rejected = 0;
    const size_t kIterations = 1000;
    for (size_t i = 0; i < kIterations; ++i) {
        std::vector<u8> hdr(frame.begin(),
                            frame.begin() + kWireHeaderBytes);
        if (i % 4 == 0) {
            for (u8 &b : hdr) // fully random header
                b = static_cast<u8>(prng());
        } else {
            const size_t flips = 1 + prng() % 4;
            for (size_t f = 0; f < flips; ++f)
                hdr[prng() % hdr.size()] ^=
                    static_cast<u8>(1 + prng() % 255);
        }
        try {
            const FrameHeader h =
                decodeFrameHeader(hdr.data(), kDefaultMaxFrameBytes);
            // Survivors must be internally consistent.
            EXPECT_EQ(h.version, kWireVersion);
            EXPECT_LE(h.body_len, kDefaultMaxFrameBytes);
        } catch (const WireError &) {
            ++rejected;
        } catch (const std::exception &e) {
            FAIL() << "header iteration " << i
                   << " threw a non-wire exception: " << e.what();
        }
    }
    // Random magic almost never matches "ARKW".
    EXPECT_GT(rejected, kIterations / 2);
}

} // namespace
} // namespace ark
