/**
 * @file
 * Transport-layer robustness tests (docs/robustness.md): SIGPIPE-free
 * writes to a closed peer, byte-at-a-time frame reassembly under
 * injected short reads/writes for EVERY frame type, typed NetClosed on
 * truncation at each header boundary, NetTimeout on a lapsed socket
 * deadline, the §5.17 PING golden header bytes, and the determinism
 * contract of the fault plane itself (same seed => same fired set).
 *
 * Everything here runs over AF_UNIX socketpairs — no listener, no
 * CKKS context, no server — so the file stays fast and exercises
 * exactly one layer: net/socket.cpp moving §2 envelopes.
 */

#include <sys/socket.h>

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.h"
#include "net/socket.h"
#include "wire/wire_format.h"

namespace ark {
namespace {

/** Both ends of a stream socketpair, wrapped as TcpStreams. */
struct StreamPair
{
    std::unique_ptr<TcpStream> a;
    std::unique_ptr<TcpStream> b;

    StreamPair()
    {
        int fds[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
            throw NetError("socketpair failed");
        a = std::make_unique<TcpStream>(Socket(fds[0]));
        b = std::make_unique<TcpStream>(Socket(fds[1]));
    }
};

/** Disarm-on-exit guard: a test that arms the global fault plane must
 *  never leak an armed plane into the next test. */
struct ArmedPlane
{
    explicit ArmedPlane(const fault::FaultPlan &plan)
    {
        fault::FaultInjector::global().arm(plan);
    }
    ~ArmedPlane() { fault::FaultInjector::global().disarm(); }
};

TEST(TransportServing, PeerClosedWriteIsNetClosedNotSigpipe)
{
    // The classic serving-stack killer: the peer hangs up, the next
    // write raises SIGPIPE, the process dies. sendAll passes
    // MSG_NOSIGNAL, so the death signal becomes EPIPE and surfaces as
    // the same typed NetClosed an orderly EOF produces. This test
    // PASSING is the assertion — an unhandled SIGPIPE would kill the
    // whole test binary.
    StreamPair p;
    p.b.reset(); // peer gone, fd closed
    const std::vector<u8> frame =
        encodeFrame(FrameType::Stats, 0, {});
    bool closed = false;
    try {
        // The first send may land in the dead socket's buffer; EPIPE
        // is guaranteed within a couple of writes on AF_UNIX.
        for (int i = 0; i < 4 && !closed; ++i)
            p.a->sendAll(frame.data(), frame.size());
    } catch (const NetClosed &) {
        closed = true;
    }
    EXPECT_TRUE(closed);
}

TEST(TransportServing, OneByteShortIoReassemblesEveryFrameType)
{
    // Force EVERY send() and recv() to move exactly one byte: the
    // sendAll/recvAll loops must reassemble each frame type from the
    // worst-case fragmentation TCP is allowed to produce.
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.permille[static_cast<size_t>(fault::Site::SendShort)] = 1000;
    plan.permille[static_cast<size_t>(fault::Site::RecvShort)] = 1000;
    ArmedPlane armed(plan);

    StreamPair p;
    const std::vector<u8> body = {0xDE, 0xAD, 0xBE, 0xEF, 0x01,
                                  0x23, 0x45, 0x67, 0x89};
    for (u16 t = 0x01; t <= 0x13; ++t) {
        const FrameType type = static_cast<FrameType>(t);
        p.a->sendFrame(type, 0xA5A5A5A5A5A5A5A5ull, body);
        const TcpStream::Frame f =
            p.b->recvFrame(kDefaultMaxFrameBytes);
        EXPECT_EQ(f.header.type, type) << frameTypeName(type);
        EXPECT_EQ(f.header.params_hash, 0xA5A5A5A5A5A5A5A5ull);
        EXPECT_EQ(f.body, body) << frameTypeName(type);
    }
    // The clamp actually fired: one call per byte moved.
    auto &fi = fault::FaultInjector::global();
    EXPECT_GT(fi.injected(fault::Site::SendShort), 0u);
    EXPECT_GT(fi.injected(fault::Site::RecvShort), 0u);
}

TEST(TransportServing, TruncationAtEveryHeaderBoundaryIsNetClosed)
{
    // A frame cut off at any §2 header boundary (and inside the body)
    // is a CLOSE, not a malformed frame: frames are atomic, so a
    // partial one means the peer died. Boundaries: magic [0,4),
    // version [4,6), type [6,8), body_len [8,16), params_hash [16,24).
    const std::vector<u8> whole =
        encodeFrame(FrameType::Ping, 0x1111111111111111ull,
                    {0x01, 0x02, 0x03, 0x04});
    for (const size_t cut : {size_t{0}, size_t{1}, size_t{3},
                             size_t{4}, size_t{5}, size_t{6},
                             size_t{7}, size_t{8}, size_t{15},
                             size_t{16}, size_t{23},
                             kWireHeaderBytes + 2}) {
        StreamPair p;
        if (cut > 0)
            p.a->sendAll(whole.data(), cut);
        p.a.reset(); // EOF after `cut` bytes
        try {
            (void)p.b->recvFrame(kDefaultMaxFrameBytes);
            FAIL() << "truncated frame (cut at " << cut
                   << ") accepted";
        } catch (const NetClosed &) {
            // typed: the session layer maps this to a dead peer
        }
    }
}

TEST(TransportServing, RecvDeadlineThrowsNetTimeout)
{
    // SO_RCVTIMEO lapses with no bytes in flight: the read surfaces
    // NetTimeout (connection alive, peer slow) — NOT NetClosed. The
    // server's idle reaper and the client's per-op deadline both
    // depend on telling these two apart.
    StreamPair p;
    p.b->setRecvTimeoutMs(30);
    try {
        (void)p.b->recvFrame(kDefaultMaxFrameBytes);
        FAIL() << "recv with an empty pipe returned";
    } catch (const NetTimeout &) {
    }
    // The stream survived the timeout: traffic still flows.
    p.a->sendFrame(FrameType::Stats, 0, {});
    const TcpStream::Frame f = p.b->recvFrame(kDefaultMaxFrameBytes);
    EXPECT_EQ(f.header.type, FrameType::Stats);
}

// ------------------------------------------------------------- §5.17-§5.19

TEST(TransportServing, GoldenPingHeaderBytes)
{
    // A PING frame (u64 nonce body), byte for byte: type 0x11 rides
    // the unchanged v1 envelope (§8 lets new TYPES append within v1).
    const std::vector<u8> frame =
        encodeFrame(FrameType::Ping, 0x0123456789ABCDEFull,
                    {0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11});
    const std::vector<u8> expected = {
        0x41, 0x52, 0x4B, 0x57,                         // "ARKW"
        0x01, 0x00,                                     // version 1
        0x11, 0x00,                                     // PING
        0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // body_len 8
        0xEF, 0xCD, 0xAB, 0x89, 0x67, 0x45, 0x23, 0x01, // params hash
        0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11, // nonce
    };
    EXPECT_EQ(frame, expected);

    const FrameHeader h =
        decodeFrameHeader(frame.data(), kDefaultMaxFrameBytes);
    EXPECT_EQ(h.type, FrameType::Ping);
    EXPECT_STREQ(frameTypeName(h.type), "PING");
    EXPECT_STREQ(frameTypeName(FrameType::Pong), "PONG");
    EXPECT_STREQ(frameTypeName(FrameType::Submit2), "SUBMIT2");
    EXPECT_EQ(static_cast<u16>(FrameType::Pong), 0x12);
    EXPECT_EQ(static_cast<u16>(FrameType::Submit2), 0x13);
}

// ------------------------------------------------------------ fault plane

TEST(TransportServing, FaultScheduleIsDeterministicAcrossRearm)
{
    // The whole point of the plane: the fired set is a pure function
    // of (seed, site, call index). Re-arming the same plan must
    // reproduce the exact decision sequence; a different seed must
    // not (overwhelmingly).
    fault::FaultPlan plan;
    plan.seed = 42;
    plan.permille[static_cast<size_t>(fault::Site::RecvReset)] = 250;

    auto draw = [](size_t n) {
        std::vector<bool> fired(n);
        for (size_t i = 0; i < n; ++i)
            fired[i] = fault::FaultInjector::global().shouldInject(
                fault::Site::RecvReset);
        return fired;
    };

    ArmedPlane armed(plan);
    const std::vector<bool> first = draw(1000);
    fault::FaultInjector::global().arm(plan); // reset counters
    const std::vector<bool> second = draw(1000);
    EXPECT_EQ(first, second);

    // Rate sanity: 250 permille over 1000 draws.
    size_t hits = 0;
    for (const bool b : first)
        hits += b ? 1 : 0;
    EXPECT_GT(hits, 150u);
    EXPECT_LT(hits, 350u);
    EXPECT_EQ(fault::FaultInjector::global().calls(
                  fault::Site::RecvReset),
              1000u);
    EXPECT_EQ(fault::FaultInjector::global().injected(
                  fault::Site::RecvReset),
              hits);

    fault::FaultPlan other = plan;
    other.seed = 43;
    fault::FaultInjector::global().arm(other);
    EXPECT_NE(draw(1000), first);

    // Disarmed: never fires, never draws an index.
    fault::FaultInjector::global().disarm();
    EXPECT_FALSE(fault::FaultInjector::global().shouldInject(
        fault::Site::RecvReset));
}

TEST(TransportServing, SiteNamesRoundTrip)
{
    for (size_t i = 0; i < fault::kSiteCount; ++i) {
        const fault::Site s = static_cast<fault::Site>(i);
        fault::Site back;
        ASSERT_TRUE(fault::parseSite(fault::siteName(s), back))
            << fault::siteName(s);
        EXPECT_EQ(back, s);
    }
    fault::Site out;
    EXPECT_FALSE(fault::parseSite("not_a_site", out));
}

} // namespace
} // namespace ark
