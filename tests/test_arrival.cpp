/**
 * @file
 * Open-loop arrival-generator tests (serve/arrival.h): seeded
 * determinism, rate fidelity of the thinning sampler, burst episodes,
 * workload-mix weighting, and the ARK_ARRIVAL_* environment parsing.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "serve/arrival.h"

namespace ark {
namespace {

void
clearArrivalEnv()
{
    unsetenv("ARK_ARRIVAL_RATE");
    unsetenv("ARK_ARRIVAL_MS");
    unsetenv("ARK_ARRIVAL_SEED");
    unsetenv("ARK_ARRIVAL_BURST");
}

TEST(Arrival, DeterministicPerSeedAndSortedInTime)
{
    ArrivalConfig cfg;
    cfg.rate_per_sec = 200;
    cfg.duration_s = 2.0;
    cfg.seed = 42;

    const auto a = generateArrivals(cfg, 4);
    const auto b = generateArrivals(cfg, 4);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].t_s, b[i].t_s);
        EXPECT_EQ(a[i].workload_index, b[i].workload_index);
    }

    // Strictly increasing timestamps inside the horizon; workload
    // indices in range.
    double prev = 0;
    for (const ArrivalEvent &e : a) {
        EXPECT_GT(e.t_s, prev);
        EXPECT_LT(e.t_s, cfg.duration_s);
        EXPECT_LT(e.workload_index, 4u);
        prev = e.t_s;
    }

    // A different seed draws a different trace.
    cfg.seed = 43;
    const auto c = generateArrivals(cfg, 4);
    EXPECT_TRUE(c.size() != a.size() ||
                (!a.empty() && c.front().t_s != a.front().t_s));
}

TEST(Arrival, CountTracksTheConfiguredRate)
{
    // Poisson(rate * duration) = Poisson(2000): a +-5 sigma band is
    // [1776, 2224] — astronomically unlikely to flake on a fixed seed
    // while still catching any off-by-2x rate bug.
    ArrivalConfig cfg;
    cfg.rate_per_sec = 1000;
    cfg.duration_s = 2.0;
    cfg.seed = 7;
    const auto events = generateArrivals(cfg, 1);
    EXPECT_GT(events.size(), 1776u);
    EXPECT_LT(events.size(), 2224u);
}

TEST(Arrival, BurstEpisodeMultipliesLocalDensity)
{
    ArrivalConfig cfg;
    cfg.rate_per_sec = 400;
    cfg.duration_s = 3.0;
    cfg.seed = 11;
    cfg.bursts = {{1.0, 1.0, 4.0}}; // [1s, 2s) at 4x

    EXPECT_EQ(arrivalRateAt(cfg, 0.5), 400.0);
    EXPECT_EQ(arrivalRateAt(cfg, 1.5), 1600.0);
    EXPECT_EQ(arrivalRateAt(cfg, 2.5), 400.0);

    const auto events = generateArrivals(cfg, 1);
    size_t before = 0, during = 0, after = 0;
    for (const ArrivalEvent &e : events) {
        if (e.t_s < 1.0)
            ++before;
        else if (e.t_s < 2.0)
            ++during;
        else
            ++after;
    }
    // The burst second must be far denser than either flat second —
    // 2x is a loose floor for a 4x multiplier.
    EXPECT_GT(during, 2 * before);
    EXPECT_GT(during, 2 * after);
    // And the flat seconds still look like rate 400.
    EXPECT_GT(before, 250u);
    EXPECT_LT(before, 550u);
}

TEST(Arrival, WorkloadWeightsShapeTheMix)
{
    ArrivalConfig cfg;
    cfg.rate_per_sec = 1000;
    cfg.duration_s = 2.0;
    cfg.seed = 5;
    cfg.workload_weights = {3.0, 1.0, 0.0};

    const auto events = generateArrivals(cfg, 3);
    std::vector<size_t> counts(3, 0);
    for (const ArrivalEvent &e : events)
        counts[e.workload_index] += 1;

    EXPECT_EQ(counts[2], 0u) << "zero-weight class must never fire";
    EXPECT_GT(counts[0], 2 * counts[1])
        << "3:1 weights should skew the draw decisively";
    EXPECT_GT(counts[1], 0u);

    // An empty weight list is the uniform mix over every workload.
    cfg.workload_weights.clear();
    const auto uniform = generateArrivals(cfg, 3);
    std::vector<size_t> u(3, 0);
    for (const ArrivalEvent &e : uniform)
        u[e.workload_index] += 1;
    for (size_t i = 0; i < 3; ++i)
        EXPECT_GT(u[i], uniform.size() / 6);
}

TEST(Arrival, EnvOverridesParseStrictly)
{
    clearArrivalEnv();

    // Unset (and empty) leave the defaults alone.
    setenv("ARK_ARRIVAL_RATE", "", 1);
    ArrivalConfig def = arrivalConfigFromEnv();
    EXPECT_EQ(def.rate_per_sec, ArrivalConfig{}.rate_per_sec);
    EXPECT_TRUE(def.bursts.empty());

    setenv("ARK_ARRIVAL_RATE", "250", 1);
    setenv("ARK_ARRIVAL_MS", "1500", 1);
    setenv("ARK_ARRIVAL_SEED", "99", 1);
    setenv("ARK_ARRIVAL_BURST", "500:250:8", 1);
    ArrivalConfig cfg = arrivalConfigFromEnv();
    EXPECT_EQ(cfg.rate_per_sec, 250.0);
    EXPECT_EQ(cfg.duration_s, 1.5);
    EXPECT_EQ(cfg.seed, 99u);
    ASSERT_EQ(cfg.bursts.size(), 1u);
    EXPECT_EQ(cfg.bursts[0].start_s, 0.5);
    EXPECT_EQ(cfg.bursts[0].duration_s, 0.25);
    EXPECT_EQ(cfg.bursts[0].rate_multiplier, 8.0);

    clearArrivalEnv();
}

TEST(Arrival, MalformedEnvIsFatal)
{
    clearArrivalEnv();
    setenv("ARK_ARRIVAL_RATE", "fast", 1);
    EXPECT_DEATH((void)arrivalConfigFromEnv(), "ARK_ARRIVAL_RATE");
    setenv("ARK_ARRIVAL_RATE", "0", 1);
    EXPECT_DEATH((void)arrivalConfigFromEnv(), "ARK_ARRIVAL_RATE");
    clearArrivalEnv();

    setenv("ARK_ARRIVAL_BURST", "500:250", 1); // missing multiplier
    EXPECT_DEATH((void)arrivalConfigFromEnv(), "ARK_ARRIVAL_BURST");
    setenv("ARK_ARRIVAL_BURST", "500:0:4", 1); // zero duration
    EXPECT_DEATH((void)arrivalConfigFromEnv(), "ARK_ARRIVAL_BURST");
    clearArrivalEnv();
}

} // namespace
} // namespace ark
