#include "obs/obs.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace ark {
namespace obs {

bool
parseOnOff(const char *s, bool &out)
{
    if (std::strcmp(s, "on") == 0 || std::strcmp(s, "1") == 0) {
        out = true;
        return true;
    }
    if (std::strcmp(s, "off") == 0 || std::strcmp(s, "0") == 0) {
        out = false;
        return true;
    }
    return false;
}

#if ARK_OBS_ENABLED

namespace detail {

std::atomic<int> trace_override{-1};
std::atomic<int> metrics_override{-1};

namespace {

/** Parse one switch variable once; junk is fatal, naming the value —
 *  the ARK_BACKEND discipline. Empty counts as unset (off). */
bool
envSwitch(const char *var)
{
    const char *env = std::getenv(var);
    if (env == nullptr || *env == '\0')
        return false;
    bool on = false;
    if (!parseOnOff(env, on)) {
        char msg[128];
        std::snprintf(msg, sizeof msg,
                      "invalid %s '%s' (expected on|off|1|0)", var,
                      env);
        ARK_FATAL(msg);
    }
    return on;
}

} // namespace

bool
envTraceEnabled()
{
    static const bool on = envSwitch("ARK_TRACE");
    return on;
}

bool
envMetricsEnabled()
{
    static const bool on = envSwitch("ARK_METRICS");
    return on;
}

} // namespace detail

void
setTraceEnabled(bool on)
{
    detail::trace_override.store(on ? 1 : 0,
                                 std::memory_order_relaxed);
}

void
setMetricsEnabled(bool on)
{
    detail::metrics_override.store(on ? 1 : 0,
                                   std::memory_order_relaxed);
}

void
resetObsOverrides()
{
    detail::trace_override.store(-1, std::memory_order_relaxed);
    detail::metrics_override.store(-1, std::memory_order_relaxed);
}

#endif // ARK_OBS_ENABLED

} // namespace obs
} // namespace ark
