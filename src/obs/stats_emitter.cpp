#include "obs/stats_emitter.h"

#include <cstdio>

namespace ark {
namespace obs {

StatsEmitter::StatsEmitter(std::chrono::milliseconds interval,
                           Render render, Sink sink)
    : render_(std::move(render)), sink_(std::move(sink))
{
    if (!sink_) {
        sink_ = [](const std::string &text) {
            std::fputs(text.c_str(), stderr);
        };
    }
    thread_ = std::thread([this, interval] { run(interval); });
}

StatsEmitter::~StatsEmitter() { stop(); }

void
StatsEmitter::stop()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        if (stop_)
            return;
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

size_t
StatsEmitter::emissions() const
{
    std::lock_guard<std::mutex> lk(m_);
    return emissions_;
}

void
StatsEmitter::run(std::chrono::milliseconds interval)
{
    std::unique_lock<std::mutex> lk(m_);
    while (!stop_) {
        if (cv_.wait_for(lk, interval, [this] { return stop_; }))
            break;
        // Render without the lock so a slow sink never blocks stop().
        lk.unlock();
        const std::string text = render_ ? render_() : std::string();
        if (!text.empty())
            sink_(text);
        lk.lock();
        emissions_ += 1;
    }
}

} // namespace obs
} // namespace ark
