/**
 * @file
 * Low-overhead span tracer with Chrome trace-event JSON export.
 *
 * A span is one timed phase of one request — the serving runtime
 * records `recv` / `admit` / `queue_wait` / `dispatch` / `execute` /
 * `respond` per request, and the kernel backend records child spans
 * for the heavy kernels (NTT, BConv, evk MAC, the fused digit path)
 * on whatever worker thread ran them. Spans land in a fixed-capacity
 * per-thread ring buffer (the KernelStats shard pattern: the owning
 * thread writes under an uncontended per-ring mutex, readers merge on
 * demand), so recording never allocates on the hot path and a burst
 * overwrites the oldest events rather than growing without bound.
 *
 * Export is the Chrome trace-event format: writeJson() emits a
 * `{"traceEvents": [...]}` object of "X" (complete) events with
 * microsecond ts/dur, loadable directly in chrome://tracing or
 * https://ui.perfetto.dev. Spans on one tid nest visually by
 * containment, so kernel child spans appear inside their worker's
 * `execute` span with no explicit parent links. See
 * docs/observability.md.
 *
 * Recording is gated by obs::traceEnabled() at every call site; the
 * session itself is always safe to query/export (it is simply empty
 * when tracing never ran).
 */

#pragma once

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/obs.h"

namespace ark {
namespace obs {

/** One recorded span (already completed: start + duration). */
struct TraceEvent
{
    /** Static-storage span name (phase or kernel op name). */
    const char *name = "";
    /** Request id the span belongs to; 0 = none (kernel spans). */
    u64 request_id = 0;
    /** Nanoseconds since the session epoch. */
    u64 start_ns = 0;
    u64 dur_ns = 0;
};

/** Per-thread ring buffers of spans, exported as Chrome trace JSON. */
class TraceSession
{
  public:
    /** Events each thread retains; older events are overwritten. */
    static constexpr size_t kRingCapacity = 1 << 14;

    TraceSession();
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** The process-wide session every instrumentation site records
     *  into (tests may construct private sessions instead). */
    static TraceSession &global();

    /**
     * Record a completed span on the calling thread's ring. @p name
     * must have static storage duration (phase names, kernelOpName).
     * Callers gate on obs::traceEnabled() *before* taking timestamps
     * so the disabled path never reads the clock.
     */
    void record(const char *name, u64 request_id,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point end);

    /** Retained events across all threads (post-overwrite). */
    size_t eventCount() const;
    /** Events lost to ring overwrite across all threads. */
    u64 droppedCount() const;
    /** Drop every retained event (rings stay registered). */
    void clear();

    /** Merged snapshot, ordered by start time. */
    std::vector<TraceEvent> events() const;

    /** Chrome trace-event JSON ({"traceEvents": [...]}; ts/dur in
     *  microseconds, one tid per recording thread). */
    std::string toJson() const;
    /** Write toJson() to @p path; false (with errno intact) when the
     *  file cannot be opened/written. */
    bool writeJson(const std::string &path) const;

  private:
    struct Ring;
    Ring &ring() const;

    /** Process-unique id keying the thread-local ring cache (same
     *  scheme as KernelBackend's stats shards). */
    const u64 instance_id_;
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex rings_m_;
    mutable std::vector<std::unique_ptr<Ring>> rings_;
};

/**
 * RAII span: samples the clock at construction and records on
 * destruction — iff tracing was enabled when constructed. The
 * disabled path is one branch and no clock read.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name, u64 request_id = 0)
        : name_(name), request_id_(request_id), on_(traceEnabled())
    {
        if (on_)
            start_ = std::chrono::steady_clock::now();
    }

    ~ScopedSpan()
    {
        if (on_)
            TraceSession::global().record(
                name_, request_id_, start_,
                std::chrono::steady_clock::now());
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_;
    u64 request_id_;
    bool on_;
    std::chrono::steady_clock::time_point start_{};
};

} // namespace obs
} // namespace ark
