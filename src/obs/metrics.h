/**
 * @file
 * Runtime metrics registry: sharded counters, gauges, and fixed-bucket
 * latency histograms.
 *
 * Counters and histograms are recorded into per-thread shards and
 * merged on read (the KernelStats scheme), so the hot path touches
 * only thread-local memory and never contends. Gauges are single
 * atomics — they represent "current level" values (queue depth,
 * in-flight requests) that are written from one place at a time and
 * read rarely.
 *
 * The catalog is a fixed set of enums rather than string-keyed
 * registration: every metric this codebase emits is known at compile
 * time, the enum keeps recording to an array index, and the STATS
 * wire frame can ship names from one table (docs/observability.md
 * lists the catalog).
 *
 * Every record call is gated on obs::metricsEnabled() — use the
 * count()/observe()/gauge*() wrappers below, which compile to nothing
 * when ARK_OBS_ENABLED=0.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/obs.h"

namespace ark {
namespace obs {

/** Monotonic event counts. */
enum class Counter : size_t
{
    AdmitAccepted = 0, ///< requests admitted into the queue
    AdmitRefused,      ///< requests refused at admission
    RequestsShed,      ///< requests shed by SLO admission control
    RequestsDone,      ///< requests completing successfully
    RequestsFailed,    ///< requests completing with an error
    EvkHit,            ///< evaluation-key cache hits (KeyCache)
    EvkMiss,           ///< evaluation-key cache misses
    StatsPolls,        ///< STATS wire frames served
    FaultsInjected,    ///< faults fired by the injection plane
    ClientRetries,     ///< WireClient submit attempts retried
    WorkerRespawns,    ///< dead/stuck workers replaced by the watchdog
    DeadlineExpired,   ///< requests dropped pre-execute past deadline
    DrainRefused,      ///< queued requests refused at graceful drain
    SessionsReaped,    ///< idle sessions closed by the server reaper
};
constexpr size_t kCounterCount = 14;
const char *counterName(Counter c);

/** Per-phase latency histograms (one per request phase span). */
enum class Phase : size_t
{
    Recv = 0,  ///< SUBMIT body deserialization
    Admit,     ///< admission decision
    QueueWait, ///< enqueue -> worker pop
    Dispatch,  ///< pop -> execution start (schedule/setup)
    Execute,   ///< homomorphic evaluation
    Respond,   ///< RESPONSE serialization + send
};
constexpr size_t kPhaseCount = 6;
const char *phaseName(Phase p);

/** Current-level values (set/adjusted, not accumulated). */
enum class Gauge : size_t
{
    QueueDepth = 0, ///< sampled total queued jobs across shards
    InFlight,       ///< jobs admitted but not yet completed
    ActiveSessions, ///< open wire sessions
};
constexpr size_t kGaugeCount = 3;
const char *gaugeName(Gauge g);

/**
 * Fixed-bucket latency histogram. Bucket upper bounds are geometric:
 * bucket i holds values <= 0.001 * 2^i ms (1 us, 2 us, ... ~4.2 s);
 * the last bucket is unbounded. Fixed buckets make merge a plain
 * element-wise add and keep record() allocation-free.
 */
struct Histogram
{
    static constexpr size_t kBuckets = 24;

    /** Upper bound of bucket @p i in ms (+inf for the last bucket). */
    static double upperMs(size_t i);
    /** Bucket index a value of @p ms lands in. */
    static size_t bucketIndex(double ms);

    u64 count = 0;
    double sum_ms = 0;
    double max_ms = 0;
    std::array<u64, kBuckets> buckets{};

    void record(double ms);
    void merge(const Histogram &other);
    /** Quantile estimate (q in [0,1]): the upper bound of the bucket
     *  where the cumulative count crosses q. 0 when empty. */
    double quantileMs(double q) const;
    double meanMs() const { return count ? sum_ms / count : 0.0; }
};

/** Merged point-in-time view of every metric. */
struct MetricsSnapshot
{
    std::array<u64, kCounterCount> counters{};
    std::array<Histogram, kPhaseCount> phases{};
    std::array<i64, kGaugeCount> gauges{};

    /** Human-readable multi-line block (the periodic emitter's and
     *  `remote_client --stats`'s output format). */
    std::string toString() const;
};

/** Process-wide registry; record via the free wrappers below. */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    static MetricsRegistry &global();

    void count(Counter c, u64 n);
    void observe(Phase p, double ms);
    void gaugeSet(Gauge g, i64 v);
    void gaugeAdd(Gauge g, i64 delta);

    /** Merge every shard into one snapshot. */
    MetricsSnapshot snapshot() const;
    /** Zero all shards and gauges (tests). */
    void reset();

  private:
    struct Shard;
    Shard &shard() const;

    const u64 instance_id_;
    mutable std::mutex shards_m_;
    mutable std::vector<std::unique_ptr<Shard>> shards_;
    std::array<std::atomic<i64>, kGaugeCount> gauges_{};
};

/** Increment @p c by @p n iff metrics are enabled. */
inline void
count(Counter c, u64 n = 1)
{
    if (metricsEnabled())
        MetricsRegistry::global().count(c, n);
}

/** Record @p ms into phase @p p's histogram iff enabled. */
inline void
observe(Phase p, double ms)
{
    if (metricsEnabled())
        MetricsRegistry::global().observe(p, ms);
}

/** Set gauge @p g to @p v iff enabled. */
inline void
gaugeSet(Gauge g, i64 v)
{
    if (metricsEnabled())
        MetricsRegistry::global().gaugeSet(g, v);
}

/** Adjust gauge @p g by @p delta iff enabled. */
inline void
gaugeAdd(Gauge g, i64 delta)
{
    if (metricsEnabled())
        MetricsRegistry::global().gaugeAdd(g, delta);
}

} // namespace obs
} // namespace ark
