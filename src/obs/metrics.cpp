#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

namespace ark {
namespace obs {

const char *
counterName(Counter c)
{
    switch (c) {
    case Counter::AdmitAccepted: return "admit_accepted";
    case Counter::AdmitRefused: return "admit_refused";
    case Counter::RequestsShed: return "requests_shed";
    case Counter::RequestsDone: return "requests_done";
    case Counter::RequestsFailed: return "requests_failed";
    case Counter::EvkHit: return "evk_hit";
    case Counter::EvkMiss: return "evk_miss";
    case Counter::StatsPolls: return "stats_polls";
    case Counter::FaultsInjected: return "faults_injected";
    case Counter::ClientRetries: return "client_retries";
    case Counter::WorkerRespawns: return "worker_respawns";
    case Counter::DeadlineExpired: return "deadline_expired";
    case Counter::DrainRefused: return "drain_refused";
    case Counter::SessionsReaped: return "sessions_reaped";
    }
    return "?";
}

const char *
phaseName(Phase p)
{
    switch (p) {
    case Phase::Recv: return "recv";
    case Phase::Admit: return "admit";
    case Phase::QueueWait: return "queue_wait";
    case Phase::Dispatch: return "dispatch";
    case Phase::Execute: return "execute";
    case Phase::Respond: return "respond";
    }
    return "?";
}

const char *
gaugeName(Gauge g)
{
    switch (g) {
    case Gauge::QueueDepth: return "queue_depth";
    case Gauge::InFlight: return "in_flight";
    case Gauge::ActiveSessions: return "active_sessions";
    }
    return "?";
}

double
Histogram::upperMs(size_t i)
{
    if (i + 1 >= kBuckets)
        return std::numeric_limits<double>::infinity();
    return 0.001 * static_cast<double>(u64{1} << i);
}

size_t
Histogram::bucketIndex(double ms)
{
    for (size_t i = 0; i + 1 < kBuckets; ++i) {
        if (ms <= upperMs(i))
            return i;
    }
    return kBuckets - 1;
}

void
Histogram::record(double ms)
{
    if (ms < 0 || std::isnan(ms))
        ms = 0;
    count += 1;
    sum_ms += ms;
    max_ms = std::max(max_ms, ms);
    buckets[bucketIndex(ms)] += 1;
}

void
Histogram::merge(const Histogram &other)
{
    count += other.count;
    sum_ms += other.sum_ms;
    max_ms = std::max(max_ms, other.max_ms);
    for (size_t i = 0; i < kBuckets; ++i)
        buckets[i] += other.buckets[i];
}

double
Histogram::quantileMs(double q) const
{
    if (count == 0)
        return 0;
    q = std::min(1.0, std::max(0.0, q));
    const u64 rank =
        static_cast<u64>(std::ceil(q * static_cast<double>(count)));
    u64 seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank && seen > 0) {
            // The unbounded bucket has no upper edge to report; the
            // observed max is the tightest true statement.
            if (i + 1 >= kBuckets)
                return max_ms;
            return upperMs(i);
        }
    }
    return max_ms;
}

std::string
MetricsSnapshot::toString() const
{
    std::string out;
    char buf[192];
    out += "metrics:\n";
    for (size_t i = 0; i < kCounterCount; ++i) {
        std::snprintf(buf, sizeof buf, "  %-16s %llu\n",
                      counterName(static_cast<Counter>(i)),
                      static_cast<unsigned long long>(counters[i]));
        out += buf;
    }
    for (size_t i = 0; i < kGaugeCount; ++i) {
        std::snprintf(buf, sizeof buf, "  %-16s %lld\n",
                      gaugeName(static_cast<Gauge>(i)),
                      static_cast<long long>(gauges[i]));
        out += buf;
    }
    for (size_t i = 0; i < kPhaseCount; ++i) {
        const Histogram &h = phases[i];
        if (h.count == 0)
            continue;
        std::snprintf(
            buf, sizeof buf,
            "  %-10s n=%llu mean=%.3fms p50=%.3fms p99=%.3fms "
            "max=%.3fms\n",
            phaseName(static_cast<Phase>(i)),
            static_cast<unsigned long long>(h.count), h.meanMs(),
            h.quantileMs(0.50), h.quantileMs(0.99), h.max_ms);
        out += buf;
    }
    return out;
}

/** One thread's private slice of the counters and histograms. */
struct MetricsRegistry::Shard
{
    std::thread::id owner;
    mutable std::mutex m;
    std::array<u64, kCounterCount> counters{};
    std::array<Histogram, kPhaseCount> phases{};
};

MetricsRegistry::MetricsRegistry()
    : instance_id_([] {
          static std::atomic<u64> next{1};
          return next.fetch_add(1);
      }())
{
}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

MetricsRegistry::Shard &
MetricsRegistry::shard() const
{
    struct CacheEntry
    {
        u64 id;
        Shard *shard;
    };
    thread_local std::vector<CacheEntry> cache;
    for (const auto &e : cache) {
        if (e.id == instance_id_)
            return *e.shard;
    }
    std::lock_guard<std::mutex> lk(shards_m_);
    Shard *s = nullptr;
    const std::thread::id self = std::this_thread::get_id();
    for (const auto &existing : shards_) {
        if (existing->owner == self) {
            s = existing.get();
            break;
        }
    }
    if (s == nullptr) {
        shards_.push_back(std::make_unique<Shard>());
        s = shards_.back().get();
        s->owner = self;
    }
    if (cache.size() >= 256)
        cache.clear();
    cache.push_back({instance_id_, s});
    return *s;
}

void
MetricsRegistry::count(Counter c, u64 n)
{
    Shard &s = shard();
    std::lock_guard<std::mutex> lk(s.m);
    s.counters[static_cast<size_t>(c)] += n;
}

void
MetricsRegistry::observe(Phase p, double ms)
{
    Shard &s = shard();
    std::lock_guard<std::mutex> lk(s.m);
    s.phases[static_cast<size_t>(p)].record(ms);
}

void
MetricsRegistry::gaugeSet(Gauge g, i64 v)
{
    gauges_[static_cast<size_t>(g)].store(v,
                                          std::memory_order_relaxed);
}

void
MetricsRegistry::gaugeAdd(Gauge g, i64 delta)
{
    gauges_[static_cast<size_t>(g)].fetch_add(
        delta, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lk(shards_m_);
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> sk(s->m);
        for (size_t i = 0; i < kCounterCount; ++i)
            snap.counters[i] += s->counters[i];
        for (size_t i = 0; i < kPhaseCount; ++i)
            snap.phases[i].merge(s->phases[i]);
    }
    for (size_t i = 0; i < kGaugeCount; ++i)
        snap.gauges[i] = gauges_[i].load(std::memory_order_relaxed);
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lk(shards_m_);
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> sk(s->m);
        s->counters.fill(0);
        s->phases.fill(Histogram{});
    }
    for (auto &g : gauges_)
        g.store(0, std::memory_order_relaxed);
}

} // namespace obs
} // namespace ark
