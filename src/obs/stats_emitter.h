/**
 * @file
 * Periodic stats emitter: a background thread that renders a snapshot
 * string at a fixed interval and hands it to a sink (stderr by
 * default). WireServer starts one when ARK_STATS_INTERVAL_MS is set,
 * rendering BatchServer::liveStats() + the metrics snapshot, so a
 * running server prints live queue depths without any client polling.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace ark {
namespace obs {

class StatsEmitter
{
  public:
    /** Produces one emission's text (called on the emitter thread). */
    using Render = std::function<std::string()>;
    /** Consumes one emission's text; default writes to stderr. */
    using Sink = std::function<void(const std::string &)>;

    StatsEmitter(std::chrono::milliseconds interval, Render render,
                 Sink sink = {});
    ~StatsEmitter();

    StatsEmitter(const StatsEmitter &) = delete;
    StatsEmitter &operator=(const StatsEmitter &) = delete;

    /** Stop and join the emitter thread (idempotent). */
    void stop();

    /** Emissions so far (tests). */
    size_t emissions() const;

  private:
    void run(std::chrono::milliseconds interval);

    Render render_;
    Sink sink_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    bool stop_ = false;
    size_t emissions_ = 0;
    std::thread thread_;
};

} // namespace obs
} // namespace ark
