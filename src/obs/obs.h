/**
 * @file
 * Observability runtime switches (ARK_TRACE / ARK_METRICS).
 *
 * The tracer (obs/trace.h) and the metrics registry (obs/metrics.h)
 * sit on every serving hot path, so both are double-gated:
 *
 *  - **Compile-time**: building with -DARK_OBS_ENABLED=0 (CMake
 *    option ARK_OBS=OFF) turns every instrumentation call into a
 *    constant-false branch the compiler deletes outright.
 *  - **Runtime**: the ARK_TRACE / ARK_METRICS environment variables
 *    (`on`/`off`/`1`/`0`; empty counts as unset, junk is fatal — the
 *    ARK_BACKEND discipline, docs/configuration.md) or the set*()
 *    overrides (what `remote_client --trace` and the tests use).
 *    Both default OFF: the disabled path is one relaxed atomic load,
 *    no clock read, no allocation (tests/test_obs.cpp pins this).
 */

#pragma once

#include <atomic>

#ifndef ARK_OBS_ENABLED
#define ARK_OBS_ENABLED 1
#endif

namespace ark {
namespace obs {

/** Parse one on/off switch value: accepts "on", "off", "1", "0".
 *  Returns false on anything else (the caller makes junk fatal). */
bool parseOnOff(const char *s, bool &out);

#if ARK_OBS_ENABLED

namespace detail {
/** -1 = follow the environment (parsed once); 0/1 = forced. */
extern std::atomic<int> trace_override;
extern std::atomic<int> metrics_override;
bool envTraceEnabled();
bool envMetricsEnabled();
} // namespace detail

/** Is span tracing on? (ARK_TRACE, overridable via setTraceEnabled.) */
inline bool
traceEnabled()
{
    const int o = detail::trace_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return o != 0;
    return detail::envTraceEnabled();
}

/** Is metrics recording on? (ARK_METRICS / setMetricsEnabled.) */
inline bool
metricsEnabled()
{
    const int o =
        detail::metrics_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return o != 0;
    return detail::envMetricsEnabled();
}

/** Force tracing on/off, overriding the environment (tests,
 *  `remote_client --trace`). */
void setTraceEnabled(bool on);
/** Force metrics on/off, overriding the environment. */
void setMetricsEnabled(bool on);
/** Drop any set*() override; follow the environment again. */
void resetObsOverrides();

#else // !ARK_OBS_ENABLED — compiled out: constant-false, no state.

constexpr bool traceEnabled() { return false; }
constexpr bool metricsEnabled() { return false; }
inline void setTraceEnabled(bool) {}
inline void setMetricsEnabled(bool) {}
inline void resetObsOverrides() {}

#endif // ARK_OBS_ENABLED

} // namespace obs
} // namespace ark
