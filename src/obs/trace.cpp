#include "obs/trace.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <thread>

namespace ark {
namespace obs {

/**
 * One thread's span ring. Only the owning thread records into it; the
 * per-ring mutex is therefore uncontended on the hot path and exists
 * so a concurrent export (another thread's toJson) reads a consistent
 * event, never a torn one.
 */
struct TraceSession::Ring
{
    std::thread::id owner;
    /** Small dense tid for the JSON (registration order). */
    u32 tid = 0;
    mutable std::mutex m;
    std::array<TraceEvent, kRingCapacity> ev;
    /** Total events ever recorded; min(total, capacity) retained. */
    u64 total = 0;
};

TraceSession::TraceSession()
    : instance_id_([] {
          static std::atomic<u64> next{1};
          return next.fetch_add(1);
      }()),
      epoch_(std::chrono::steady_clock::now())
{
}

TraceSession::~TraceSession() = default;

TraceSession &
TraceSession::global()
{
    static TraceSession session;
    return session;
}

TraceSession::Ring &
TraceSession::ring() const
{
    struct CacheEntry
    {
        u64 id;
        Ring *ring;
    };
    // Per-thread cache of (session instance id -> ring) — the
    // KernelBackend::shard() scheme: stale entries for destroyed
    // sessions are never matched again, and an evicted entry only
    // costs a re-lookup that re-adopts this thread's ring.
    thread_local std::vector<CacheEntry> cache;
    for (const auto &e : cache) {
        if (e.id == instance_id_)
            return *e.ring;
    }
    std::lock_guard<std::mutex> lk(rings_m_);
    Ring *r = nullptr;
    const std::thread::id self = std::this_thread::get_id();
    for (const auto &existing : rings_) {
        if (existing->owner == self) {
            r = existing.get();
            break;
        }
    }
    if (r == nullptr) {
        rings_.push_back(std::make_unique<Ring>());
        r = rings_.back().get();
        r->owner = self;
        r->tid = static_cast<u32>(rings_.size());
    }
    if (cache.size() >= 256)
        cache.clear();
    cache.push_back({instance_id_, r});
    return *r;
}

void
TraceSession::record(const char *name, u64 request_id,
                     std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point end)
{
    // Clamp a clock hiccup rather than emitting a negative duration
    // (the exported format's dur is unsigned anyway).
    if (end < start)
        end = start;
    TraceEvent e;
    e.name = name;
    e.request_id = request_id;
    e.start_ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(start -
                                                             epoch_)
            .count());
    e.dur_ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                             start)
            .count());
    Ring &r = ring();
    std::lock_guard<std::mutex> lk(r.m);
    r.ev[r.total % kRingCapacity] = e;
    r.total += 1;
}

size_t
TraceSession::eventCount() const
{
    std::lock_guard<std::mutex> lk(rings_m_);
    size_t n = 0;
    for (const auto &r : rings_) {
        std::lock_guard<std::mutex> rk(r->m);
        n += static_cast<size_t>(
            std::min<u64>(r->total, kRingCapacity));
    }
    return n;
}

u64
TraceSession::droppedCount() const
{
    std::lock_guard<std::mutex> lk(rings_m_);
    u64 n = 0;
    for (const auto &r : rings_) {
        std::lock_guard<std::mutex> rk(r->m);
        n += r->total > kRingCapacity ? r->total - kRingCapacity : 0;
    }
    return n;
}

void
TraceSession::clear()
{
    std::lock_guard<std::mutex> lk(rings_m_);
    for (const auto &r : rings_) {
        std::lock_guard<std::mutex> rk(r->m);
        r->total = 0;
    }
}

std::vector<TraceEvent>
TraceSession::events() const
{
    struct Tagged
    {
        TraceEvent e;
        u32 tid;
    };
    std::vector<Tagged> tagged;
    {
        std::lock_guard<std::mutex> lk(rings_m_);
        for (const auto &r : rings_) {
            std::lock_guard<std::mutex> rk(r->m);
            const u64 kept = std::min<u64>(r->total, kRingCapacity);
            for (u64 i = 0; i < kept; ++i)
                tagged.push_back({r->ev[i], r->tid});
        }
    }
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.e.start_ns < b.e.start_ns;
                     });
    std::vector<TraceEvent> out;
    out.reserve(tagged.size());
    for (const Tagged &t : tagged)
        out.push_back(t.e);
    return out;
}

std::string
TraceSession::toJson() const
{
    // Re-collect with tids (events() drops them); duplicating the
    // merge keeps the public snapshot type free of export details.
    struct Tagged
    {
        TraceEvent e;
        u32 tid;
    };
    std::vector<Tagged> tagged;
    {
        std::lock_guard<std::mutex> lk(rings_m_);
        for (const auto &r : rings_) {
            std::lock_guard<std::mutex> rk(r->m);
            const u64 kept = std::min<u64>(r->total, kRingCapacity);
            for (u64 i = 0; i < kept; ++i)
                tagged.push_back({r->ev[i], r->tid});
        }
    }
    std::stable_sort(tagged.begin(), tagged.end(),
                     [](const Tagged &a, const Tagged &b) {
                         return a.e.start_ns < b.e.start_ns;
                     });

    std::string out = "{\"traceEvents\":[\n";
    char buf[256];
    for (size_t i = 0; i < tagged.size(); ++i) {
        const TraceEvent &e = tagged[i].e;
        // Span names are static identifiers (phase / kernel-op
        // names), so no JSON string escaping is needed.
        std::snprintf(
            buf, sizeof buf,
            "{\"name\":\"%s\",\"cat\":\"ark\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
            "\"args\":{\"req\":%llu}}%s\n",
            e.name, static_cast<double>(e.start_ns) / 1e3,
            static_cast<double>(e.dur_ns) / 1e3, tagged[i].tid,
            static_cast<unsigned long long>(e.request_id),
            i + 1 < tagged.size() ? "," : "");
        out += buf;
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
TraceSession::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = toJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace obs
} // namespace ark
