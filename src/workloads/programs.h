/**
 * @file
 * Workload program generators for the ARK simulator.
 *
 * Each generator emits the primitive-HE-op trace of a published
 * workload with the op counts, level schedule, rotation structure, and
 * evk-identity pattern that determine accelerator behaviour:
 *
 *  - bootstrapProgram: full CKKS bootstrapping (paper Section II-D):
 *    ModRaise, SubSum (sparse slots), H-IDFT (Alg. 3 BSGS), EvalMod,
 *    H-DFT. The key schedule controls how many distinct evks the
 *    H-(I)DFT rotations reference.
 *  - helrProgram: one HELR iteration (Han et al.): mini-batch logistic
 *    regression update (rotations with non-arithmetic amounts that
 *    Min-KS cannot cover) + sparse-slot bootstrapping (n = 256).
 *  - resnetProgram: ResNet-20 inference (Lee et al.): multiplexed
 *    parallel convolutions (arithmetic-progression rotations + weight
 *    PMults, both Min-KS/OF-Limb eligible) dominated by bootstrapping.
 *  - sortingProgram: k-way sorting network (Hong et al.): deep
 *    polynomial comparator evaluations with frequent bootstrapping.
 *
 * The paper's MNIST/CIFAR inputs are not needed: accelerator timing
 * depends on the op sequence, not plaintext values (see DESIGN.md).
 */

#pragma once

#include "core/hdft_plan.h"
#include "sim/program.h"

namespace ark {

/** Shared evk-id allocator so programs compose. */
class EvkIds
{
  public:
    int fresh() { return next_++; }
    int mult() { return 0; } ///< the single evk_mult

  private:
    int next_ = 1;
};

/** Append a full bootstrap of @p slots slots to @p prog. */
void appendBootstrap(SimProgram &prog, EvkIds &ids, KeySchedule sched,
                     size_t slots);

SimProgram bootstrapProgram(const CkksParams &p, KeySchedule sched,
                            size_t slots = 0);

SimProgram helrProgram(const CkksParams &p, KeySchedule sched,
                       int iterations = 1);

SimProgram resnetProgram(const CkksParams &p, KeySchedule sched);

SimProgram sortingProgram(const CkksParams &p, KeySchedule sched);

} // namespace ark
