#include "workloads/programs.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

namespace {

/** Emit one H-(I)DFT per its plan; returns the level after it. */
int
appendHdft(SimProgram &prog, EvkIds &ids, KeySchedule sched,
           const HdftPlan &plan, const char *tag)
{
    int level = 0;
    for (const auto &it : plan.iterations) {
        level = it.level;
        // Rotation key identities per schedule (Fig. 1).
        int baby_id = ids.fresh();
        int giant_id = ids.fresh();
        int pre_id = sched == KeySchedule::MinimalKS ? ids.fresh() : -1;
        size_t emitted = 0;
        if (sched == KeySchedule::MinimalKS && it.hrots > 0) {
            prog.ops.push_back(
                {SimOpKind::KeySwitch, level, pre_id, true, tag});
            ++emitted;
        }
        // Emit the *unhoisted* BSGS program order: each giant-step
        // rotation directly follows the baby-step segment it consumes,
        // so baby- and giant-key uses alternate through the phase.
        // (Hoisting — issuing every baby rotation up front so each key
        // is fetched once — is a schedule-time transformation; the
        // graph scheduler's EvkCluster policy recovers it from the
        // dependence graph, which is the point of emitting the natural
        // order here.) The per-key use counts and the distinct-key set
        // are unchanged from the clustered emission: the baby key
        // still covers trace positions [emitted, hrots/2), the giant
        // key the rest — only the issue order interleaves.
        size_t babies =
            it.hrots / 2 > emitted ? it.hrots / 2 - emitted : 0;
        size_t giants = it.hrots - emitted - babies;
        for (size_t k = 0; emitted < it.hrots; ++emitted, ++k) {
            int id;
            if (sched == KeySchedule::Baseline) {
                id = ids.fresh(); // every rotation its own evk
            } else if (k % 2 == 0 ? babies > 0 : giants == 0) {
                id = baby_id;
                --babies;
            } else {
                id = giant_id;
                --giants;
            }
            prog.ops.push_back(
                {SimOpKind::KeySwitch, level, id, true, tag});
        }
        for (size_t m = 0; m < it.pmults; ++m)
            prog.ops.push_back({SimOpKind::PMult, level, -1, true, tag});
        prog.ops.push_back({SimOpKind::Rescale, level, -1, true, tag});
    }
    return level - 1;
}

/** EvalMod on both coefficient branches (paper Section II-D). */
int
appendEvalMod(SimProgram &prog, EvkIds &ids, int top_level,
              const char *tag)
{
    // Mirrors src/boot/evalmod.cpp: angle scaling, BSGS power basis
    // (5 mults), 3 group products, and 8 double-angle steps with two
    // mults each, on the u and v branches; the single evk_mult is
    // shared by every multiplication (inter-operation key reuse that
    // exists even before Min-KS).
    int lv = top_level;
    for (int branch = 0; branch < 2; ++branch) {
        int b = top_level;
        auto mult = [&](int level) {
            prog.ops.push_back(
                {SimOpKind::KeySwitch, level, ids.mult(), true, tag});
            prog.ops.push_back(
                {SimOpKind::Rescale, level, -1, true, tag});
        };
        mult(b--);              // angle scaling (scalar, still rescales)
        for (int i = 0; i < 5; ++i)
            mult(b--);          // power basis y^2..y^12
        for (int i = 0; i < 3; ++i)
            prog.ops.push_back(
                {SimOpKind::KeySwitch, b, ids.mult(), true, tag});
        prog.ops.push_back({SimOpKind::Rescale, b, -1, true, tag});
        prog.ops.push_back({SimOpKind::Rescale, b - 1, -1, true, tag});
        b -= 2;
        for (int d = 0; d < 8; ++d) {
            mult(b);
            prog.ops.push_back(
                {SimOpKind::KeySwitch, b, ids.mult(), true, tag});
            --b;
        }
        lv = b;
    }
    prog.ops.push_back({SimOpKind::Elementwise, lv, -1, true, tag});
    return lv;
}

} // namespace

void
appendBootstrap(SimProgram &prog, EvkIds &ids, KeySchedule sched,
                size_t slots)
{
    const CkksParams &p = prog.params;
    const int L = p.max_level;

    prog.ops.push_back({SimOpKind::ModRaise, L, -1, true, "boot"});

    // SubSum for sparse packing.
    const size_t half = p.degree / 2;
    for (size_t amt = slots; amt < half; amt <<= 1) {
        prog.ops.push_back(
            {SimOpKind::KeySwitch, L, ids.fresh(), true, "subsum"});
        prog.ops.push_back(
            {SimOpKind::Elementwise, L, -1, true, "subsum"});
    }

    CkksParams sparse = p;
    sparse.num_slots = slots;
    HdftPlan hidft = HdftPlan::make(sparse, true, L);
    int lv = appendHdft(prog, ids, sched, hidft, "h-idft");

    // Conjugate split.
    prog.ops.push_back(
        {SimOpKind::KeySwitch, lv, ids.fresh(), true, "conj"});

    lv = appendEvalMod(prog, ids, lv, "evalmod");

    HdftPlan hdft = HdftPlan::make(sparse, false, lv);
    appendHdft(prog, ids, sched, hdft, "h-dft");
}

SimProgram
bootstrapProgram(const CkksParams &p, KeySchedule sched, size_t slots)
{
    SimProgram prog;
    prog.name = "bootstrap";
    prog.params = p;
    if (slots == 0)
        slots = p.num_slots;
    EvkIds ids;
    appendBootstrap(prog, ids, sched, slots);
    return prog;
}

SimProgram
helrProgram(const CkksParams &p, KeySchedule sched, int iterations)
{
    // One HELR iteration (Han et al. [43]): mini-batch of 1024 14x14
    // images; the gradient step performs inner products across the
    // batch (rotations whose amounts do NOT form an arithmetic
    // progression -> every rotation needs its own evk regardless of
    // schedule) plus sigmoid-polynomial HMults, then a sparse
    // bootstrap on n = 256 slots.
    SimProgram prog;
    prog.name = "HELR";
    prog.params = p;
    EvkIds ids;

    for (int iter = 0; iter < iterations; ++iter) {
        // Gradient + sigmoid update: levels walk down 8..1.
        for (int step = 0; step < 8; ++step) {
            const int lv = 8 - step;
            for (int r = 0; r < 6; ++r) {
                // Batch-reduction rotations: irregular amounts.
                prog.ops.push_back({SimOpKind::KeySwitch, lv,
                                    ids.fresh(), true, "helr-rot"});
            }
            for (int m = 0; m < 3; ++m) {
                prog.ops.push_back({SimOpKind::KeySwitch, lv, ids.mult(),
                                    true, "helr-mult"});
            }
            for (int m = 0; m < 4; ++m) {
                // Weight/feature plaintexts; OF-Limb applies.
                prog.ops.push_back(
                    {SimOpKind::PMult, lv, -1, true, "helr-pmult"});
            }
            prog.ops.push_back(
                {SimOpKind::Rescale, lv, -1, true, "helr"});
        }
        appendBootstrap(prog, ids, sched, 256);
    }
    return prog;
}

SimProgram
resnetProgram(const CkksParams &p, KeySchedule sched)
{
    // ResNet-20 (Lee et al. [64]): 19 convolution layers + FC, each
    // followed by a high-degree ReLU approximation that forces a
    // bootstrap. Multiplexed parallel convolution performs rotations
    // with arithmetic-progression amounts (Min-KS applies) and weight
    // PMults (OF-Limb applies).
    SimProgram prog;
    prog.name = "ResNet-20";
    prog.params = p;
    EvkIds ids;

    for (int layer = 0; layer < 20; ++layer) {
        // Convolution at mid levels: 3x3 kernel over multiplexed
        // channels -> ~36 rotations in arithmetic progression, emitted
        // in the natural tap-walk order: two in-row steps (baby key,
        // stride +-1) then a row crossing (giant key, stride +-W), so
        // baby- and giant-key uses interleave 2:1 through the layer.
        // EvkCluster re-groups them at schedule time (see appendHdft).
        int conv_baby = ids.fresh();
        int conv_giant = ids.fresh();
        for (int r = 0; r < 36; ++r) {
            int id;
            if (sched == KeySchedule::Baseline)
                id = ids.fresh();
            else
                id = r % 3 < 2 ? conv_baby : conv_giant;
            prog.ops.push_back(
                {SimOpKind::KeySwitch, 6, id, true, "conv-rot"});
        }
        for (int m = 0; m < 36; ++m)
            prog.ops.push_back(
                {SimOpKind::PMult, 6, -1, true, "conv-weights"});
        prog.ops.push_back({SimOpKind::Rescale, 6, -1, true, "conv"});
        // The composite ReLU approximation exhausts the level budget
        // twice per layer (Lee et al. use two bootstraps around the
        // high-degree minimax composition).
        appendBootstrap(prog, ids, sched, p.degree / 2);
        appendBootstrap(prog, ids, sched, p.degree / 2);
        // Part of the ReLU composite evaluation outside bootstrap.
        for (int m = 0; m < 10; ++m) {
            prog.ops.push_back({SimOpKind::KeySwitch, 7 - m % 4,
                                ids.mult(), true, "relu"});
            prog.ops.push_back(
                {SimOpKind::Rescale, 7 - m % 4, -1, true, "relu"});
        }
    }
    return prog;
}

SimProgram
sortingProgram(const CkksParams &p, KeySchedule sched)
{
    // k-way sorting network (Hong et al. [47]) on a full vector:
    // O(log^2) rounds of polynomial comparators; each comparator is a
    // deep HMult chain that exhausts the levels, so every round
    // bootstraps. The paper reports 15.6 s on BTS / 1.99 s on ARK for
    // the full sort; the op mix below reproduces the bootstrap-bound
    // profile (~2x speedup from the algorithms, Fig. 7b).
    SimProgram prog;
    prog.name = "sorting";
    prog.params = p;
    EvkIds ids;

    const int rounds = 60; // 5-way network over 2^15 elements
    for (int round = 0; round < rounds; ++round) {
        for (int boot = 0; boot < 10; ++boot) {
            // Comparator polynomial segments between bootstraps.
            for (int m = 0; m < 8; ++m) {
                int lv = 8 - m % 8;
                prog.ops.push_back({SimOpKind::KeySwitch, lv, ids.mult(),
                                    true, "cmp-mult"});
                prog.ops.push_back(
                    {SimOpKind::Rescale, lv, -1, true, "cmp"});
            }
            for (int r = 0; r < 2; ++r) {
                prog.ops.push_back({SimOpKind::KeySwitch, 6, ids.fresh(),
                                    true, "cmp-rot"});
            }
            for (int m = 0; m < 2; ++m) {
                prog.ops.push_back(
                    {SimOpKind::PMult, 6, -1, true, "cmp-pmult"});
            }
            appendBootstrap(prog, ids, sched, p.degree / 2);
        }
    }
    return prog;
}

} // namespace ark
