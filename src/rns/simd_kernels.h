/**
 * @file
 * Hand-vectorized limb kernels for the SimdBackend (AVX2 / AVX-512F,
 * selected at runtime; see rns/cpu_features.h for the tier probe).
 *
 * Each entry runs the exact same integer arithmetic as its scalar
 * counterpart, lane-wise: the Harvey lazy NTT keeps its [0, 4q)
 * butterfly domain per lane (vector Shoup mul-hi built from four
 * 32x32->64 partial products, since x86 has no packed 64x64->128
 * multiply below AVX-512IFMA), the fused BConv tile accumulates the
 * full 128-bit MAC as a (lo, hi) vector pair with explicit carries,
 * and the evk MAC mirrors Modulus::reduce's Barrett formula word for
 * word. All operations are exact arithmetic mod 2^64 applied in the
 * same per-element order as the scalar loops, so results are
 * bit-identical by construction (tests/test_backend_parity.cpp
 * enforces it against ScalarBackend on every kernel).
 *
 * Null function pointers mean "no vector kernel at this tier" (scalar
 * hosts, the NEON stub tier, degrees below min_ntt_degree) and the
 * SimdBackend falls back to the scalar loop for that call — never an
 * abort.
 */

#pragma once

#include <cstddef>

#include "common/types.h"
#include "rns/cpu_features.h"

namespace ark {

class BaseConverter;
class Modulus;
class NttTables;
class RnsPoly;

/** Function table of one vector ISA tier's kernels. */
struct SimdKernels
{
    /** Tier these kernels actually are (after clamping to the host). */
    SimdTier tier = SimdTier::Scalar;
    /** Smallest degree ntt_forward / ntt_inverse accept; smaller
     *  transforms use the scalar path (too few lanes to permute). */
    size_t min_ntt_degree = 0;

    /** In-place lazy forward NTT of one limb (== NttTables::forward). */
    void (*ntt_forward)(u64 *limb, const NttTables &tables) = nullptr;
    /** In-place lazy inverse NTT of one limb (== NttTables::inverse). */
    void (*ntt_inverse)(u64 *limb, const NttTables &tables) = nullptr;
    /** Fused BConv scale+MAC over a coefficient tile [c0, c1)
     *  (== BaseConverter::convertTile; scratch >= kTileWords). */
    void (*bconv_tile)(const BaseConverter &bc, const RnsPoly &in,
                       size_t c0, size_t c1, u64 *scratch,
                       RnsPoly &out) = nullptr;
    /** One limb of the key-switch MAC: ab += d * kb, aa += d * ka
     *  (== the KernelBackend::evkMulAcc inner loop). */
    void (*evk_mac_limb)(const Modulus &m, const u64 *d, const u64 *kb,
                         const u64 *ka, u64 *ab, u64 *aa,
                         size_t n) = nullptr;
};

/**
 * Kernel table for @p tier, clamped to what this binary was compiled
 * with and what the running CPU reports: asking for avx512 on an
 * AVX2-only host returns the AVX2 table; on a scalar host (or any
 * non-x86 build) the table has null entries and tier Scalar.
 */
const SimdKernels &simdKernels(SimdTier tier);

} // namespace ark
