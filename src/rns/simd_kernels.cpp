#include "rns/simd_kernels.h"

#include <algorithm>

#include "rns/bconv.h"
#include "rns/modulus.h"
#include "rns/ntt.h"
#include "rns/poly.h"

#if (defined(__x86_64__) || defined(__i386__)) &&                        \
    (defined(__GNUC__) || defined(__clang__))
#define ARK_SIMD_X86 1
#include <immintrin.h>
// GCC's AVX-512 intrinsic headers self-initialize the result of
// _mm512_undefined_epi32() (`__Y = __Y`), which trips
// -Wmaybe-uninitialized when those intrinsics inline into our
// kernels (GCC bug 105593). The value is overwritten by the masked
// builtin before use; silence the false positive for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif
#endif

namespace ark {

#ifdef ARK_SIMD_X86

// Function-level target attributes (instead of per-file -mavx* flags)
// keep every vector instruction inside these bodies: nothing outside
// can accidentally be auto-vectorized with an ISA the host lacks, and
// runtime dispatch via detectSimdTier() stays safe in one binary.
#define ARK_T512 __attribute__((target("avx512f,avx512dq")))
#define ARK_T256 __attribute__((target("avx2")))

namespace {

// ---------------------------------------------------------------------------
// AVX-512F helpers: 64x64 multiplies built from 32x32->64 partial
// products (_mm512_mul_epu32 reads the low 32 bits of each lane).
// All arithmetic is exact mod 2^64, so lane k computes precisely what
// the scalar loop computes for element k.
// ---------------------------------------------------------------------------

ARK_T512 inline __m512i
set1_512(u64 v)
{
    return _mm512_set1_epi64(static_cast<long long>(v));
}

ARK_T512 inline __m512i
load512(const u64 *p)
{
    return _mm512_loadu_si512(p);
}

ARK_T512 inline void
store512(u64 *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

/** v >= bound ? v - bound : v (unsigned), lane-wise. */
ARK_T512 inline __m512i
csub512(__m512i v, __m512i bound)
{
    return _mm512_mask_sub_epi64(
        v, _mm512_cmpge_epu64_mask(v, bound), v, bound);
}

/** Low 64 bits of x * c per lane; c_hi is unused on this tier (the
 *  tier requires AVX-512DQ, whose vpmullq is a native 64-bit low
 *  multiply) but kept so call sites read the same as the AVX2 path. */
ARK_T512 inline __m512i
mullo64_512(__m512i x, __m512i c, __m512i c_hi)
{
    (void)c_hi;
    return _mm512_mullo_epi64(x, c);
}

/** High 64 bits of x * c per lane. */
ARK_T512 inline __m512i
mulhi64_512(__m512i x, __m512i c, __m512i c_hi, __m512i m32)
{
    const __m512i x_hi = _mm512_srli_epi64(x, 32);
    const __m512i ll = _mm512_mul_epu32(x, c);
    const __m512i lh = _mm512_mul_epu32(x, c_hi);
    const __m512i hl = _mm512_mul_epu32(x_hi, c);
    const __m512i hh = _mm512_mul_epu32(x_hi, c_hi);
    const __m512i mid = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, m32)),
        _mm512_and_si512(hl, m32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                         _mm512_srli_epi64(mid, 32)));
}

/** Full 128-bit product x * c per lane, as (lo, hi) vectors. */
ARK_T512 inline void
mul64_512(__m512i x, __m512i c, __m512i c_hi, __m512i m32, __m512i *lo,
          __m512i *hi)
{
    const __m512i x_hi = _mm512_srli_epi64(x, 32);
    const __m512i ll = _mm512_mul_epu32(x, c);
    const __m512i lh = _mm512_mul_epu32(x, c_hi);
    const __m512i hl = _mm512_mul_epu32(x_hi, c);
    const __m512i hh = _mm512_mul_epu32(x_hi, c_hi);
    const __m512i mid = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, m32)),
        _mm512_and_si512(hl, m32));
    *lo = _mm512_or_si512(_mm512_slli_epi64(mid, 32),
                          _mm512_and_si512(ll, m32));
    *hi = _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(hl, 32),
                         _mm512_srli_epi64(mid, 32)));
}

/** Modulus::mulShoupLazy lane-wise: result in [0, 2q) per lane. */
ARK_T512 inline __m512i
mulShoupLazy512(__m512i x, __m512i w, __m512i w_hi, __m512i ws,
                __m512i ws_hi, __m512i q, __m512i q_hi, __m512i m32)
{
    const __m512i hi = mulhi64_512(x, ws, ws_hi, m32);
    return _mm512_sub_epi64(mullo64_512(x, w, w_hi),
                            mullo64_512(hi, q, q_hi));
}

/**
 * Shoup product with an approximate quotient: drops the low x low
 * partial and the mid-column carry of mulhi(x, ws), so the quotient
 * underestimates floor(x * ws / 2^64) by at most 2 and the result
 * lands in [0, 4q) instead of Shoup's usual [0, 2q). The NTT kernels
 * absorb the wider range in their lazy domain (values stay below 8q,
 * hence the q < 2^60 kernel guard) and re-canonicalize at the end, so
 * outputs still match the scalar transforms bit for bit while each
 * butterfly spends three 32x32 partials instead of five.
 */
ARK_T512 inline __m512i
mulShoupApprox512(__m512i x, __m512i w, __m512i ws, __m512i ws_hi,
                  __m512i q)
{
    const __m512i x_hi = _mm512_srli_epi64(x, 32);
    const __m512i lh = _mm512_mul_epu32(x, ws_hi);
    const __m512i hl = _mm512_mul_epu32(x_hi, ws);
    const __m512i hh = _mm512_mul_epu32(x_hi, ws_hi);
    const __m512i q_est = _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(lh, 32)),
        _mm512_srli_epi64(hl, 32));
    return _mm512_sub_epi64(_mm512_mullo_epi64(x, w),
                            _mm512_mullo_epi64(q_est, q));
}

/** Broadcast reduction constants of one Modulus. */
struct Mod512
{
    __m512i q, q_hi, two_q;
    __m512i b_lo, b_lo_hi, b_hi, b_hi_hi;
    __m512i m32;
};

ARK_T512 inline Mod512
loadMod512(const Modulus &m)
{
    Mod512 md;
    md.q = set1_512(m.value());
    md.q_hi = set1_512(m.value() >> 32);
    md.two_q = set1_512(m.twoQ());
    md.b_lo = set1_512(m.barrettLo());
    md.b_lo_hi = set1_512(m.barrettLo() >> 32);
    md.b_hi = set1_512(m.barrettHi());
    md.b_hi_hi = set1_512(m.barrettHi() >> 32);
    md.m32 = set1_512(0xffffffffULL);
    return md;
}

/**
 * Modulus::reduce lane-wise: Barrett reduction of the 128-bit value
 * (x_hi:x_lo) to [0, q). Same partial products, same carry counting,
 * same two conditional subtracts — bit-identical per lane.
 */
ARK_T512 inline __m512i
barrett512(__m512i x_lo, __m512i x_hi, const Mod512 &md)
{
    const __m512i lolo_hi = mulhi64_512(x_lo, md.b_lo, md.b_lo_hi, md.m32);
    __m512i lohi_lo, lohi_hi;
    mul64_512(x_lo, md.b_hi, md.b_hi_hi, md.m32, &lohi_lo, &lohi_hi);
    __m512i hilo_lo, hilo_hi;
    mul64_512(x_hi, md.b_lo, md.b_lo_hi, md.m32, &hilo_lo, &hilo_hi);
    const __m512i hihi_lo = mullo64_512(x_hi, md.b_hi, md.b_hi_hi);

    const __m512i one = _mm512_set1_epi64(1);
    const __m512i mid = _mm512_add_epi64(lolo_hi, lohi_lo);
    __m512i mid_hi = _mm512_maskz_mov_epi64(
        _mm512_cmplt_epu64_mask(mid, lohi_lo), one);
    const __m512i mid2 = _mm512_add_epi64(mid, hilo_lo);
    mid_hi = _mm512_mask_add_epi64(
        mid_hi, _mm512_cmplt_epu64_mask(mid2, hilo_lo), mid_hi, one);

    const __m512i q_est =
        _mm512_add_epi64(_mm512_add_epi64(hihi_lo, lohi_hi),
                         _mm512_add_epi64(hilo_hi, mid_hi));
    __m512i r =
        _mm512_sub_epi64(x_lo, mullo64_512(q_est, md.q, md.q_hi));
    r = csub512(r, md.two_q);
    return csub512(r, md.q);
}

/**
 * Lane-shuffle constants for NTT stages whose butterfly span t is
 * below the 8-lane vector width: a 16-element window is deinterleaved
 * into the x vector (first butterfly halves) and y vector (second
 * halves), the per-block twiddles are broadcast to their lanes, and
 * the results are interleaved back.
 */
ARK_T512 inline void
smallStageWin512(size_t t, __m512i *idx_x, __m512i *idx_y,
                 __m512i *bcast, __m512i *back0, __m512i *back1)
{
    if (t == 4) {
        *idx_x = _mm512_setr_epi64(0, 1, 2, 3, 8, 9, 10, 11);
        *idx_y = _mm512_setr_epi64(4, 5, 6, 7, 12, 13, 14, 15);
        *bcast = _mm512_setr_epi64(0, 0, 0, 0, 1, 1, 1, 1);
        *back0 = *idx_x;
        *back1 = *idx_y;
    } else if (t == 2) {
        *idx_x = _mm512_setr_epi64(0, 1, 4, 5, 8, 9, 12, 13);
        *idx_y = _mm512_setr_epi64(2, 3, 6, 7, 10, 11, 14, 15);
        *bcast = _mm512_setr_epi64(0, 0, 1, 1, 2, 2, 3, 3);
        *back0 = _mm512_setr_epi64(0, 1, 8, 9, 2, 3, 10, 11);
        *back1 = _mm512_setr_epi64(4, 5, 12, 13, 6, 7, 14, 15);
    } else { // t == 1
        *idx_x = _mm512_setr_epi64(0, 2, 4, 6, 8, 10, 12, 14);
        *idx_y = _mm512_setr_epi64(1, 3, 5, 7, 9, 11, 13, 15);
        *bcast = _mm512_setr_epi64(0, 1, 2, 3, 4, 5, 6, 7);
        *back0 = _mm512_setr_epi64(0, 8, 1, 9, 2, 10, 3, 11);
        *back1 = _mm512_setr_epi64(4, 12, 5, 13, 6, 14, 7, 15);
    }
}

// ---------------------------------------------------------------------------
// AVX-512 NTT: the Harvey lazy transform of NttTables::forward /
// inverse, eight butterflies per step. The approximate Shoup quotient
// widens the lazy domains vs the scalar kernel (forward values stay
// in [0,8q), inverse in [0,4q)); the closing canonicalization brings
// every lane back to [0,q), so outputs are still bit-identical.
// ---------------------------------------------------------------------------

ARK_T512 void
nttForwardAvx512(u64 *a, const NttTables &tb)
{
    const size_t n = tb.degree();
    const Modulus &mod = tb.modulus();
    const u64 *w = tb.rootPowers().data();
    const u64 *ws = tb.rootPowersShoup().data();
    const __m512i q = set1_512(mod.value());
    const __m512i two_q = set1_512(mod.twoQ());
    const __m512i four_q = set1_512(mod.twoQ() * 2);

    size_t t = n >> 1;
    size_t m = 1;
    // Fused stage pairs: two butterfly levels per pass over the data,
    // which halves the memory traffic of the big stages and doubles
    // the independent work in flight (the Shoup product chain is long,
    // so the extra ILP matters as much as the bandwidth). The [0,8q)
    // invariant needs only a single fold on the additive side — the
    // approximate product accepts any 64-bit input — so level-1
    // outputs (u in [0,4q) plus v in [0,4q)) land back below 8q and
    // level 2 repeats the identical step. Block i of the first level
    // splits into blocks 2i / 2i+1 of the second, hence the three
    // twiddle broadcasts.
    for (; t >= 16; m <<= 2, t >>= 2) {
        const size_t ht = t >> 1;
        for (size_t i = 0; i < m; ++i) {
            const u64 w1 = w[m + i], ws1 = ws[m + i];
            const u64 w2a = w[2 * m + 2 * i], ws2a = ws[2 * m + 2 * i];
            const u64 w2b = w[2 * m + 2 * i + 1];
            const u64 ws2b = ws[2 * m + 2 * i + 1];
            const __m512i vw1 = set1_512(w1), vws1 = set1_512(ws1);
            const __m512i vws1_hi = set1_512(ws1 >> 32);
            const __m512i vw2a = set1_512(w2a), vws2a = set1_512(ws2a);
            const __m512i vws2a_hi = set1_512(ws2a >> 32);
            const __m512i vw2b = set1_512(w2b), vws2b = set1_512(ws2b);
            const __m512i vws2b_hi = set1_512(ws2b >> 32);
            u64 *x = a + 2 * i * t;
            u64 *y = x + t;
            for (size_t j = 0; j < ht; j += 8) {
                const __m512i u0 = csub512(load512(x + j), four_q);
                const __m512i v0 = mulShoupApprox512(
                    load512(y + j), vw1, vws1, vws1_hi, q);
                const __m512i u1 =
                    csub512(load512(x + ht + j), four_q);
                const __m512i v1 = mulShoupApprox512(
                    load512(y + ht + j), vw1, vws1, vws1_hi, q);
                const __m512i a0 = _mm512_add_epi64(u0, v0);
                const __m512i b0 = _mm512_sub_epi64(
                    _mm512_add_epi64(u0, four_q), v0);
                const __m512i a1 = _mm512_add_epi64(u1, v1);
                const __m512i b1 = _mm512_sub_epi64(
                    _mm512_add_epi64(u1, four_q), v1);
                const __m512i ua = csub512(a0, four_q);
                const __m512i va =
                    mulShoupApprox512(a1, vw2a, vws2a, vws2a_hi, q);
                store512(x + j, _mm512_add_epi64(ua, va));
                store512(x + ht + j,
                         _mm512_sub_epi64(_mm512_add_epi64(ua, four_q),
                                          va));
                const __m512i ub = csub512(b0, four_q);
                const __m512i vb =
                    mulShoupApprox512(b1, vw2b, vws2b, vws2b_hi, q);
                store512(y + j, _mm512_add_epi64(ub, vb));
                store512(y + ht + j,
                         _mm512_sub_epi64(_mm512_add_epi64(ub, four_q),
                                          vb));
            }
        }
    }
    // Epilogue: every remaining stage (t = 8 when the pair loop left
    // an odd one, then t = 4, 2, 1) runs on a 16-element window that
    // stays in registers, so the tail of the transform costs a single
    // pass over the data. The masked twiddle loads never read past the
    // table's live block range, and the t = 1 step canonicalizes its
    // outputs in-register, replacing the scalar kernel's separate
    // reduceLazy4q sweep. min_ntt_degree keeps n >= 16 here.
    {
        const size_t t_hi = t; // 8 or 4
        __m512i idx_x[3], idx_y[3], bcast[3], back0[3], back1[3];
        for (size_t s = 0, tt = 4; tt >= 1; tt >>= 1, ++s)
            smallStageWin512(tt, &idx_x[s], &idx_y[s], &bcast[s],
                             &back0[s], &back1[s]);
        for (size_t base = 0, win = 0; base < n; base += 16, ++win) {
            __m512i v0 = load512(a + base);
            __m512i v1 = load512(a + base + 8);
            size_t mm = m;
            if (t_hi == 8) {
                const u64 wi = w[mm + win], wsi = ws[mm + win];
                const __m512i vw = set1_512(wi);
                const __m512i vws = set1_512(wsi);
                const __m512i u = csub512(v0, four_q);
                const __m512i v = mulShoupApprox512(
                    v1, vw, vws, set1_512(wsi >> 32), q);
                v0 = _mm512_add_epi64(u, v);
                v1 = _mm512_sub_epi64(_mm512_add_epi64(u, four_q), v);
                mm <<= 1;
            }
            for (size_t s = 0, tt = 4; tt >= 1; tt >>= 1, ++s, mm <<= 1) {
                const size_t blocks = 8 / tt;
                const __mmask8 lmask =
                    static_cast<__mmask8>((1u << blocks) - 1);
                const __m512i x =
                    _mm512_permutex2var_epi64(v0, idx_x[s], v1);
                const __m512i y =
                    _mm512_permutex2var_epi64(v0, idx_y[s], v1);
                const __m512i vw = _mm512_permutexvar_epi64(
                    bcast[s],
                    _mm512_maskz_loadu_epi64(lmask,
                                             w + mm + win * blocks));
                const __m512i vws = _mm512_permutexvar_epi64(
                    bcast[s],
                    _mm512_maskz_loadu_epi64(lmask,
                                             ws + mm + win * blocks));
                const __m512i u = csub512(x, four_q);
                const __m512i v = mulShoupApprox512(
                    y, vw, vws, _mm512_srli_epi64(vws, 32), q);
                __m512i nx = _mm512_add_epi64(u, v);
                __m512i ny =
                    _mm512_sub_epi64(_mm512_add_epi64(u, four_q), v);
                if (tt == 1) {
                    nx = csub512(csub512(csub512(nx, four_q), two_q),
                                 q);
                    ny = csub512(csub512(csub512(ny, four_q), two_q),
                                 q);
                }
                v0 = _mm512_permutex2var_epi64(nx, back0[s], ny);
                v1 = _mm512_permutex2var_epi64(nx, back1[s], ny);
            }
            store512(a + base, v0);
            store512(a + base + 8, v1);
        }
    }
}

ARK_T512 void
nttInverseAvx512(u64 *a, const NttTables &tb)
{
    const size_t n = tb.degree();
    const Modulus &mod = tb.modulus();
    const u64 *iw = tb.invRootPowers().data();
    const u64 *iws = tb.invRootPowersShoup().data();
    const __m512i q = set1_512(mod.value());
    const __m512i two_q = set1_512(mod.twoQ());
    const __m512i four_q = set1_512(mod.twoQ() * 2);

    size_t t = 1;
    // Prologue: the sub-vector stages (Gentleman-Sande runs t upward)
    // plus the first whole-vector stage (t = 8) run fused on
    // 16-element windows, a single pass over the data. Values stay in
    // [0,4q): sums fold once from [0,8q), differences feed the
    // approximate Shoup product, whose result is back in [0,4q).
    // min_ntt_degree keeps n >= 16 here.
    {
        __m512i idx_x[3], idx_y[3], bcast[3], back0[3], back1[3];
        for (size_t s = 0, tt = 1; tt <= 4; tt <<= 1, ++s)
            smallStageWin512(tt, &idx_x[s], &idx_y[s], &bcast[s],
                             &back0[s], &back1[s]);
        const size_t h8 = n >> 4;
        for (size_t base = 0, win = 0; base < n; base += 16, ++win) {
            __m512i v0 = load512(a + base);
            __m512i v1 = load512(a + base + 8);
            size_t hh = n >> 1;
            for (size_t s = 0, tt = 1; tt <= 4; tt <<= 1, ++s, hh >>= 1) {
                const size_t blocks = 8 / tt;
                const __mmask8 lmask =
                    static_cast<__mmask8>((1u << blocks) - 1);
                const __m512i x =
                    _mm512_permutex2var_epi64(v0, idx_x[s], v1);
                const __m512i y =
                    _mm512_permutex2var_epi64(v0, idx_y[s], v1);
                const __m512i vw = _mm512_permutexvar_epi64(
                    bcast[s],
                    _mm512_maskz_loadu_epi64(lmask,
                                             iw + hh + win * blocks));
                const __m512i vws = _mm512_permutexvar_epi64(
                    bcast[s],
                    _mm512_maskz_loadu_epi64(lmask,
                                             iws + hh + win * blocks));
                const __m512i sv =
                    csub512(_mm512_add_epi64(x, y), four_q);
                const __m512i d =
                    _mm512_sub_epi64(_mm512_add_epi64(x, four_q), y);
                const __m512i ny = mulShoupApprox512(
                    d, vw, vws, _mm512_srli_epi64(vws, 32), q);
                v0 = _mm512_permutex2var_epi64(sv, back0[s], ny);
                v1 = _mm512_permutex2var_epi64(sv, back1[s], ny);
            }
            // t = 8: one butterfly across the two window vectors.
            const u64 wi = iw[h8 + win], wsi = iws[h8 + win];
            const __m512i vw = set1_512(wi);
            const __m512i vws = set1_512(wsi);
            const __m512i sv = csub512(_mm512_add_epi64(v0, v1), four_q);
            const __m512i d =
                _mm512_sub_epi64(_mm512_add_epi64(v0, four_q), v1);
            store512(a + base, sv);
            store512(a + base + 8,
                     mulShoupApprox512(d, vw, vws, set1_512(wsi >> 32),
                                       q));
        }
        t = 16;
    }
    // Fused stage pairs (t, 2t): stage-t blocks 2i / 2i+1 feed stage-2t
    // block i, so a radix-4 group of four vectors turns over in
    // registers and the pass count over the array halves. Every value
    // stays in [0,4q) exactly as in the unfused stages.
    for (; t <= n >> 2; t <<= 2) {
        const size_t h = n / (2 * t);
        const size_t h2 = h >> 1;
        for (size_t i = 0; i < h2; ++i) {
            const u64 wa = iw[h + 2 * i], wsa = iws[h + 2 * i];
            const u64 wb = iw[h + 2 * i + 1], wsb = iws[h + 2 * i + 1];
            const u64 wc = iw[h2 + i], wsc = iws[h2 + i];
            const __m512i vwa = set1_512(wa), vwsa = set1_512(wsa);
            const __m512i vwsa_hi = set1_512(wsa >> 32);
            const __m512i vwb = set1_512(wb), vwsb = set1_512(wsb);
            const __m512i vwsb_hi = set1_512(wsb >> 32);
            const __m512i vwc = set1_512(wc), vwsc = set1_512(wsc);
            const __m512i vwsc_hi = set1_512(wsc >> 32);
            u64 *p = a + 4 * i * t;
            for (size_t j = 0; j < t; j += 8) {
                const __m512i p0 = load512(p + j);
                const __m512i p1 = load512(p + t + j);
                const __m512i p2 = load512(p + 2 * t + j);
                const __m512i p3 = load512(p + 3 * t + j);
                const __m512i s01 =
                    csub512(_mm512_add_epi64(p0, p1), four_q);
                const __m512i d01 = mulShoupApprox512(
                    _mm512_sub_epi64(_mm512_add_epi64(p0, four_q), p1),
                    vwa, vwsa, vwsa_hi, q);
                const __m512i s23 =
                    csub512(_mm512_add_epi64(p2, p3), four_q);
                const __m512i d23 = mulShoupApprox512(
                    _mm512_sub_epi64(_mm512_add_epi64(p2, four_q), p3),
                    vwb, vwsb, vwsb_hi, q);
                store512(p + j,
                         csub512(_mm512_add_epi64(s01, s23), four_q));
                store512(p + 2 * t + j,
                         mulShoupApprox512(
                             _mm512_sub_epi64(
                                 _mm512_add_epi64(s01, four_q), s23),
                             vwc, vwsc, vwsc_hi, q));
                store512(p + t + j,
                         csub512(_mm512_add_epi64(d01, d23), four_q));
                store512(p + 3 * t + j,
                         mulShoupApprox512(
                             _mm512_sub_epi64(
                                 _mm512_add_epi64(d01, four_q), d23),
                             vwc, vwsc, vwsc_hi, q));
            }
        }
    }
    // Leftover single stage (t == n/2) when the main-stage count is
    // odd.
    for (; t <= n >> 1; t <<= 1) {
        const size_t h = n / (2 * t);
        for (size_t i = 0; i < h; ++i) {
            const u64 wi = iw[h + i], wsi = iws[h + i];
            const __m512i vw = set1_512(wi);
            const __m512i vws = set1_512(wsi);
            const __m512i vws_hi = set1_512(wsi >> 32);
            u64 *x = a + 2 * i * t;
            u64 *y = x + t;
            for (size_t j = 0; j < t; j += 8) {
                const __m512i xv = load512(x + j);
                const __m512i yv = load512(y + j);
                store512(x + j,
                         csub512(_mm512_add_epi64(xv, yv), four_q));
                const __m512i d =
                    _mm512_sub_epi64(_mm512_add_epi64(xv, four_q), yv);
                store512(y + j,
                         mulShoupApprox512(d, vw, vws, vws_hi, q));
            }
        }
    }
    // 1/N Shoup scaling pass canonicalizes [0, 4q) -> [0, q).
    const u64 ni = tb.nInv(), nis = tb.nInvShoup();
    const __m512i vni = set1_512(ni);
    const __m512i vnis = set1_512(nis), vnis_hi = set1_512(nis >> 32);
    for (size_t j = 0; j < n; j += 8) {
        const __m512i v =
            mulShoupApprox512(load512(a + j), vni, vnis, vnis_hi, q);
        store512(a + j, csub512(csub512(v, two_q), q));
    }
}

// ---------------------------------------------------------------------------
// AVX-512 fused BConv tile: the convertTile contract with limb-major
// scratch (scratch[j * tile + c]) so lanes run across coefficients and
// no transpose is needed. Each coefficient's MAC accumulates in the
// same j order as the scalar kernel; regrouping an exact 128-bit sum
// is exact, so outputs are bit-identical.
// ---------------------------------------------------------------------------

ARK_T512 void
bconvTileAvx512(const BaseConverter &bc, const RnsPoly &in, size_t c0,
                size_t c1, u64 *scratch, RnsPoly &out)
{
    const size_t nb = bc.inBase().size();
    const size_t nc = bc.outBase().size();
    const size_t tile = c1 - c0;
    const __m512i m32 = set1_512(0xffffffffULL);
    const __m512i one = _mm512_set1_epi64(1);

    // Scale stage: strict Shoup product per lane (lazy + csub q).
    for (size_t j = 0; j < nb; ++j) {
        const Modulus &pj = bc.inBase()[j];
        const u64 s = bc.phatInvModP(j);
        const u64 ss = bc.phatInvModPShoup(j);
        const u64 *src = in.limb(j) + c0;
        u64 *dst = scratch + j * tile;
        const __m512i q = set1_512(pj.value());
        const __m512i q_hi = set1_512(pj.value() >> 32);
        const __m512i vs = set1_512(s), vs_hi = set1_512(s >> 32);
        const __m512i vss = set1_512(ss), vss_hi = set1_512(ss >> 32);
        size_t c = 0;
        for (; c + 8 <= tile; c += 8) {
            const __m512i r = mulShoupLazy512(load512(src + c), vs,
                                              vs_hi, vss, vss_hi, q,
                                              q_hi, m32);
            store512(dst + c, csub512(r, q));
        }
        for (; c < tile; ++c)
            dst[c] = pj.mulShoup(src[c], s, ss);
    }

    // MAC stage: 128-bit accumulation per lane as (lo, hi) vector
    // pairs with explicit carry counting, then the Barrett reduce.
    for (size_t i = 0; i < nc; ++i) {
        const Modulus &qi = bc.outBase()[i];
        const Mod512 md = loadMod512(qi);
        u64 *dst = out.limb(i) + c0;
        size_t c = 0;
        for (; c + 8 <= tile; c += 8) {
            __m512i acc_lo = _mm512_setzero_si512();
            __m512i acc_hi = _mm512_setzero_si512();
            for (size_t j = 0; j < nb; ++j) {
                const u64 rj = bc.baseTable(i, j);
                const __m512i r = set1_512(rj);
                const __m512i r_hi = set1_512(rj >> 32);
                __m512i p_lo, p_hi;
                mul64_512(load512(scratch + j * tile + c), r, r_hi, m32,
                          &p_lo, &p_hi);
                acc_lo = _mm512_add_epi64(acc_lo, p_lo);
                const __mmask8 carry =
                    _mm512_cmplt_epu64_mask(acc_lo, p_lo);
                acc_hi = _mm512_add_epi64(acc_hi, p_hi);
                acc_hi = _mm512_mask_add_epi64(acc_hi, carry, acc_hi, one);
            }
            store512(dst + c, barrett512(acc_lo, acc_hi, md));
        }
        for (; c < tile; ++c) {
            u128 acc = 0;
            for (size_t j = 0; j < nb; ++j)
                acc += static_cast<u128>(scratch[j * tile + c]) *
                       bc.baseTable(i, j);
            dst[c] = qi.reduce(acc);
        }
    }
}

// ---------------------------------------------------------------------------
// AVX-512 evk MAC limb: ab += d * kb, aa += d * ka with Barrett
// reduction, mirroring the KernelBackend::evkMulAcc inner loop.
// ---------------------------------------------------------------------------

ARK_T512 void
evkMacLimbAvx512(const Modulus &m, const u64 *pd, const u64 *kb,
                 const u64 *ka, u64 *ab, u64 *aa, size_t n)
{
    const Mod512 md = loadMod512(m);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m512i d = load512(pd + i);
        const __m512i d_hi = _mm512_srli_epi64(d, 32);
        {
            __m512i p_lo, p_hi;
            mul64_512(load512(kb + i), d, d_hi, md.m32, &p_lo, &p_hi);
            const __m512i t = barrett512(p_lo, p_hi, md);
            const __m512i acc =
                _mm512_add_epi64(load512(ab + i), t);
            store512(ab + i, csub512(acc, md.q));
        }
        {
            __m512i p_lo, p_hi;
            mul64_512(load512(ka + i), d, d_hi, md.m32, &p_lo, &p_hi);
            const __m512i t = barrett512(p_lo, p_hi, md);
            const __m512i acc =
                _mm512_add_epi64(load512(aa + i), t);
            store512(aa + i, csub512(acc, md.q));
        }
    }
    for (; i < n; ++i) {
        ab[i] = m.add(ab[i], m.mul(pd[i], kb[i]));
        aa[i] = m.add(aa[i], m.mul(pd[i], ka[i]));
    }
}

// ---------------------------------------------------------------------------
// AVX2 helpers: 4 lanes of u64. No unsigned 64-bit compare below
// AVX-512, so comparisons run signed after XOR-ing the sign bit in.
// ---------------------------------------------------------------------------

ARK_T256 inline __m256i
set1_256(u64 v)
{
    return _mm256_set1_epi64x(static_cast<long long>(v));
}

ARK_T256 inline __m256i
load256(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

ARK_T256 inline void
store256(u64 *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

/** a < b (unsigned) per lane, as an all-ones/all-zeros mask. */
ARK_T256 inline __m256i
cmpltu256(__m256i a, __m256i b, __m256i bias)
{
    return _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                              _mm256_xor_si256(a, bias));
}

/** Conditional-subtract bound: the bound vector plus its biased
 *  (bound - 1) companion for the signed compare. */
struct Bound256
{
    __m256i bound;
    __m256i biased_m1;
};

ARK_T256 inline Bound256
makeBound256(u64 bound)
{
    Bound256 b;
    b.bound = set1_256(bound);
    b.biased_m1 = set1_256((bound - 1) ^ 0x8000000000000000ULL);
    return b;
}

/** v >= bound ? v - bound : v (unsigned), lane-wise. */
ARK_T256 inline __m256i
csub256(__m256i v, const Bound256 &b, __m256i bias)
{
    const __m256i ge =
        _mm256_cmpgt_epi64(_mm256_xor_si256(v, bias), b.biased_m1);
    return _mm256_sub_epi64(v, _mm256_and_si256(ge, b.bound));
}

ARK_T256 inline __m256i
mullo64_256(__m256i x, __m256i c, __m256i c_hi)
{
    const __m256i x_hi = _mm256_srli_epi64(x, 32);
    const __m256i ll = _mm256_mul_epu32(x, c);
    const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(x_hi, c),
                                           _mm256_mul_epu32(x, c_hi));
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
}

ARK_T256 inline __m256i
mulhi64_256(__m256i x, __m256i c, __m256i c_hi, __m256i m32)
{
    const __m256i x_hi = _mm256_srli_epi64(x, 32);
    const __m256i ll = _mm256_mul_epu32(x, c);
    const __m256i lh = _mm256_mul_epu32(x, c_hi);
    const __m256i hl = _mm256_mul_epu32(x_hi, c);
    const __m256i hh = _mm256_mul_epu32(x_hi, c_hi);
    const __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, m32)),
        _mm256_and_si256(hl, m32));
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(mid, 32)));
}

ARK_T256 inline void
mul64_256(__m256i x, __m256i c, __m256i c_hi, __m256i m32, __m256i *lo,
          __m256i *hi)
{
    const __m256i x_hi = _mm256_srli_epi64(x, 32);
    const __m256i ll = _mm256_mul_epu32(x, c);
    const __m256i lh = _mm256_mul_epu32(x, c_hi);
    const __m256i hl = _mm256_mul_epu32(x_hi, c);
    const __m256i hh = _mm256_mul_epu32(x_hi, c_hi);
    const __m256i mid = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, m32)),
        _mm256_and_si256(hl, m32));
    *lo = _mm256_or_si256(_mm256_slli_epi64(mid, 32),
                          _mm256_and_si256(ll, m32));
    *hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                         _mm256_srli_epi64(mid, 32)));
}

ARK_T256 inline __m256i
mulShoupLazy256(__m256i x, __m256i w, __m256i w_hi, __m256i ws,
                __m256i ws_hi, __m256i q, __m256i q_hi, __m256i m32)
{
    const __m256i hi = mulhi64_256(x, ws, ws_hi, m32);
    return _mm256_sub_epi64(mullo64_256(x, w, w_hi),
                            mullo64_256(hi, q, q_hi));
}

/** The approximate-quotient Shoup product (see mulShoupApprox512):
 *  result in [0, 4q) per lane. */
ARK_T256 inline __m256i
mulShoupApprox256(__m256i x, __m256i w, __m256i w_hi, __m256i ws,
                  __m256i ws_hi, __m256i q, __m256i q_hi)
{
    const __m256i x_hi = _mm256_srli_epi64(x, 32);
    const __m256i lh = _mm256_mul_epu32(x, ws_hi);
    const __m256i hl = _mm256_mul_epu32(x_hi, ws);
    const __m256i hh = _mm256_mul_epu32(x_hi, ws_hi);
    const __m256i q_est = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
        _mm256_srli_epi64(hl, 32));
    return _mm256_sub_epi64(mullo64_256(x, w, w_hi),
                            mullo64_256(q_est, q, q_hi));
}

/** Conditional-subtract for the NTT kernels only: the q < 2^60 kernel
 *  guard keeps every lazy value under 8q < 2^63, so the sign bit is
 *  never set and the plain signed compare needs no bias XOR. */
struct SBound256
{
    __m256i b;
    __m256i b_m1;
};

ARK_T256 inline SBound256
makeSBound256(u64 bound)
{
    SBound256 s;
    s.b = set1_256(bound);
    s.b_m1 = set1_256(bound - 1);
    return s;
}

ARK_T256 inline __m256i
csubs256(__m256i v, const SBound256 &b)
{
    return _mm256_sub_epi64(
        v, _mm256_and_si256(_mm256_cmpgt_epi64(v, b.b_m1), b.b));
}

struct Mod256
{
    __m256i q, q_hi;
    __m256i b_lo, b_lo_hi, b_hi, b_hi_hi;
    __m256i m32, bias;
    Bound256 bq, b2q;
};

ARK_T256 inline Mod256
loadMod256(const Modulus &m)
{
    Mod256 md;
    md.q = set1_256(m.value());
    md.q_hi = set1_256(m.value() >> 32);
    md.b_lo = set1_256(m.barrettLo());
    md.b_lo_hi = set1_256(m.barrettLo() >> 32);
    md.b_hi = set1_256(m.barrettHi());
    md.b_hi_hi = set1_256(m.barrettHi() >> 32);
    md.m32 = set1_256(0xffffffffULL);
    md.bias = set1_256(0x8000000000000000ULL);
    md.bq = makeBound256(m.value());
    md.b2q = makeBound256(m.twoQ());
    return md;
}

ARK_T256 inline __m256i
barrett256(__m256i x_lo, __m256i x_hi, const Mod256 &md)
{
    const __m256i lolo_hi = mulhi64_256(x_lo, md.b_lo, md.b_lo_hi, md.m32);
    __m256i lohi_lo, lohi_hi;
    mul64_256(x_lo, md.b_hi, md.b_hi_hi, md.m32, &lohi_lo, &lohi_hi);
    __m256i hilo_lo, hilo_hi;
    mul64_256(x_hi, md.b_lo, md.b_lo_hi, md.m32, &hilo_lo, &hilo_hi);
    const __m256i hihi_lo = mullo64_256(x_hi, md.b_hi, md.b_hi_hi);

    // Subtracting an all-ones compare mask adds 1 per carrying lane.
    const __m256i mid = _mm256_add_epi64(lolo_hi, lohi_lo);
    __m256i mid_hi = _mm256_sub_epi64(_mm256_setzero_si256(),
                                      cmpltu256(mid, lohi_lo, md.bias));
    const __m256i mid2 = _mm256_add_epi64(mid, hilo_lo);
    mid_hi =
        _mm256_sub_epi64(mid_hi, cmpltu256(mid2, hilo_lo, md.bias));

    const __m256i q_est =
        _mm256_add_epi64(_mm256_add_epi64(hihi_lo, lohi_hi),
                         _mm256_add_epi64(hilo_hi, mid_hi));
    __m256i r =
        _mm256_sub_epi64(x_lo, mullo64_256(q_est, md.q, md.q_hi));
    r = csub256(r, md.b2q, md.bias);
    return csub256(r, md.bq, md.bias);
}

// ---------------------------------------------------------------------------
// AVX2 NTT. Main stages handle t >= 4; the t = 2 and t = 1 stages run
// on 8-element windows, deinterleaved with permute2x128 / unpack.
// ---------------------------------------------------------------------------

ARK_T256 void
nttForwardAvx2(u64 *a, const NttTables &tb)
{
    const size_t n = tb.degree();
    const Modulus &mod = tb.modulus();
    const u64 *w = tb.rootPowers().data();
    const u64 *ws = tb.rootPowersShoup().data();
    const __m256i q = set1_256(mod.value());
    const __m256i q_hi = set1_256(mod.value() >> 32);
    const SBound256 sq = makeSBound256(mod.value());
    const SBound256 s2q = makeSBound256(mod.twoQ());
    const SBound256 s4q = makeSBound256(mod.twoQ() * 2);
    const __m256i four_q = s4q.b;

    size_t t = n >> 1;
    size_t m = 1;
    for (; t >= 4; m <<= 1, t >>= 1) {
        for (size_t i = 0; i < m; ++i) {
            const u64 wi = w[m + i], wsi = ws[m + i];
            const __m256i vw = set1_256(wi), vw_hi = set1_256(wi >> 32);
            const __m256i vws = set1_256(wsi);
            const __m256i vws_hi = set1_256(wsi >> 32);
            u64 *x = a + 2 * i * t;
            u64 *y = x + t;
            for (size_t j = 0; j < t; j += 4) {
                const __m256i u = csubs256(load256(x + j), s4q);
                const __m256i v =
                    mulShoupApprox256(load256(y + j), vw, vw_hi, vws,
                                      vws_hi, q, q_hi);
                store256(x + j, _mm256_add_epi64(u, v));
                store256(y + j,
                         _mm256_sub_epi64(_mm256_add_epi64(u, four_q),
                                          v));
            }
        }
    }
    if (t == 2) {
        // Window {e0..e7}: x = {e0,e1,e4,e5}, y = {e2,e3,e6,e7}; the
        // two block twiddles broadcast pairwise.
        for (size_t base = 0, b = 0; base < n; base += 8, b += 2) {
            const __m256i v0 = load256(a + base);
            const __m256i v1 = load256(a + base + 4);
            const __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);
            const __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);
            const __m128i tw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(w + m + b));
            const __m128i tws = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(ws + m + b));
            const __m256i vw = _mm256_permute4x64_epi64(
                _mm256_castsi128_si256(tw), 0x50);
            const __m256i vws = _mm256_permute4x64_epi64(
                _mm256_castsi128_si256(tws), 0x50);
            const __m256i u = csubs256(x, s4q);
            const __m256i v = mulShoupApprox256(
                y, vw, _mm256_srli_epi64(vw, 32), vws,
                _mm256_srli_epi64(vws, 32), q, q_hi);
            const __m256i nx = _mm256_add_epi64(u, v);
            const __m256i ny =
                _mm256_sub_epi64(_mm256_add_epi64(u, four_q), v);
            store256(a + base, _mm256_permute2x128_si256(nx, ny, 0x20));
            store256(a + base + 4,
                     _mm256_permute2x128_si256(nx, ny, 0x31));
        }
        m <<= 1;
        t = 1;
    }
    if (t == 1) {
        // Window {e0..e7}: unpack gives x = {e0,e4,e2,e6} (blocks
        // 0,2,1,3), so the twiddle vector is permuted to match. The
        // outputs canonicalize in-register (no separate sweep).
        for (size_t base = 0, b = 0; base < n; base += 8, b += 4) {
            const __m256i v0 = load256(a + base);
            const __m256i v1 = load256(a + base + 4);
            const __m256i x = _mm256_unpacklo_epi64(v0, v1);
            const __m256i y = _mm256_unpackhi_epi64(v0, v1);
            const __m256i vw =
                _mm256_permute4x64_epi64(load256(w + m + b), 0xD8);
            const __m256i vws =
                _mm256_permute4x64_epi64(load256(ws + m + b), 0xD8);
            const __m256i u = csubs256(x, s4q);
            const __m256i v = mulShoupApprox256(
                y, vw, _mm256_srli_epi64(vw, 32), vws,
                _mm256_srli_epi64(vws, 32), q, q_hi);
            __m256i nx = _mm256_add_epi64(u, v);
            __m256i ny =
                _mm256_sub_epi64(_mm256_add_epi64(u, four_q), v);
            nx = csubs256(csubs256(csubs256(nx, s4q), s2q), sq);
            ny = csubs256(csubs256(csubs256(ny, s4q), s2q), sq);
            store256(a + base, _mm256_unpacklo_epi64(nx, ny));
            store256(a + base + 4, _mm256_unpackhi_epi64(nx, ny));
        }
    }
}

ARK_T256 void
nttInverseAvx2(u64 *a, const NttTables &tb)
{
    const size_t n = tb.degree();
    const Modulus &mod = tb.modulus();
    const u64 *iw = tb.invRootPowers().data();
    const u64 *iws = tb.invRootPowersShoup().data();
    const __m256i q = set1_256(mod.value());
    const __m256i q_hi = set1_256(mod.value() >> 32);
    const SBound256 sq = makeSBound256(mod.value());
    const SBound256 s2q = makeSBound256(mod.twoQ());
    const SBound256 s4q = makeSBound256(mod.twoQ() * 2);
    const __m256i four_q = s4q.b;

    // t = 1 stage: adjacent pairs, twiddles iw[n/2 + i].
    {
        const size_t h = n >> 1;
        for (size_t base = 0, b = 0; base < n; base += 8, b += 4) {
            const __m256i v0 = load256(a + base);
            const __m256i v1 = load256(a + base + 4);
            const __m256i x = _mm256_unpacklo_epi64(v0, v1);
            const __m256i y = _mm256_unpackhi_epi64(v0, v1);
            const __m256i vw =
                _mm256_permute4x64_epi64(load256(iw + h + b), 0xD8);
            const __m256i vws =
                _mm256_permute4x64_epi64(load256(iws + h + b), 0xD8);
            const __m256i s = csubs256(_mm256_add_epi64(x, y), s4q);
            const __m256i d =
                _mm256_sub_epi64(_mm256_add_epi64(x, four_q), y);
            const __m256i ny = mulShoupApprox256(
                d, vw, _mm256_srli_epi64(vw, 32), vws,
                _mm256_srli_epi64(vws, 32), q, q_hi);
            store256(a + base, _mm256_unpacklo_epi64(s, ny));
            store256(a + base + 4, _mm256_unpackhi_epi64(s, ny));
        }
    }
    // t = 2 stage.
    {
        const size_t h = n >> 2;
        for (size_t base = 0, b = 0; base < n; base += 8, b += 2) {
            const __m256i v0 = load256(a + base);
            const __m256i v1 = load256(a + base + 4);
            const __m256i x = _mm256_permute2x128_si256(v0, v1, 0x20);
            const __m256i y = _mm256_permute2x128_si256(v0, v1, 0x31);
            const __m128i tw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(iw + h + b));
            const __m128i tws = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(iws + h + b));
            const __m256i vw = _mm256_permute4x64_epi64(
                _mm256_castsi128_si256(tw), 0x50);
            const __m256i vws = _mm256_permute4x64_epi64(
                _mm256_castsi128_si256(tws), 0x50);
            const __m256i s = csubs256(_mm256_add_epi64(x, y), s4q);
            const __m256i d =
                _mm256_sub_epi64(_mm256_add_epi64(x, four_q), y);
            const __m256i ny = mulShoupApprox256(
                d, vw, _mm256_srli_epi64(vw, 32), vws,
                _mm256_srli_epi64(vws, 32), q, q_hi);
            store256(a + base, _mm256_permute2x128_si256(s, ny, 0x20));
            store256(a + base + 4,
                     _mm256_permute2x128_si256(s, ny, 0x31));
        }
    }
    for (size_t t = 4; t <= n >> 1; t <<= 1) {
        const size_t h = n / (2 * t);
        for (size_t i = 0; i < h; ++i) {
            const u64 wi = iw[h + i], wsi = iws[h + i];
            const __m256i vw = set1_256(wi), vw_hi = set1_256(wi >> 32);
            const __m256i vws = set1_256(wsi);
            const __m256i vws_hi = set1_256(wsi >> 32);
            u64 *x = a + 2 * i * t;
            u64 *y = x + t;
            for (size_t j = 0; j < t; j += 4) {
                const __m256i xv = load256(x + j);
                const __m256i yv = load256(y + j);
                store256(x + j,
                         csubs256(_mm256_add_epi64(xv, yv), s4q));
                const __m256i d =
                    _mm256_sub_epi64(_mm256_add_epi64(xv, four_q), yv);
                store256(y + j, mulShoupApprox256(d, vw, vw_hi, vws,
                                                  vws_hi, q, q_hi));
            }
        }
    }
    const u64 ni = tb.nInv(), nis = tb.nInvShoup();
    const __m256i vni = set1_256(ni), vni_hi = set1_256(ni >> 32);
    const __m256i vnis = set1_256(nis), vnis_hi = set1_256(nis >> 32);
    for (size_t j = 0; j < n; j += 4) {
        const __m256i v =
            mulShoupApprox256(load256(a + j), vni, vni_hi, vnis,
                              vnis_hi, q, q_hi);
        store256(a + j, csubs256(csubs256(v, s2q), sq));
    }
}

// ---------------------------------------------------------------------------
// AVX2 fused BConv tile and evk MAC: structure identical to the
// AVX-512 versions, carries tracked with mask subtraction.
// ---------------------------------------------------------------------------

ARK_T256 void
bconvTileAvx2(const BaseConverter &bc, const RnsPoly &in, size_t c0,
              size_t c1, u64 *scratch, RnsPoly &out)
{
    const size_t nb = bc.inBase().size();
    const size_t nc = bc.outBase().size();
    const size_t tile = c1 - c0;
    const __m256i m32 = set1_256(0xffffffffULL);
    const __m256i bias = set1_256(0x8000000000000000ULL);

    for (size_t j = 0; j < nb; ++j) {
        const Modulus &pj = bc.inBase()[j];
        const u64 s = bc.phatInvModP(j);
        const u64 ss = bc.phatInvModPShoup(j);
        const u64 *src = in.limb(j) + c0;
        u64 *dst = scratch + j * tile;
        const __m256i q = set1_256(pj.value());
        const __m256i q_hi = set1_256(pj.value() >> 32);
        const Bound256 bqj = makeBound256(pj.value());
        const __m256i vs = set1_256(s), vs_hi = set1_256(s >> 32);
        const __m256i vss = set1_256(ss), vss_hi = set1_256(ss >> 32);
        size_t c = 0;
        for (; c + 4 <= tile; c += 4) {
            const __m256i r = mulShoupLazy256(load256(src + c), vs,
                                              vs_hi, vss, vss_hi, q,
                                              q_hi, m32);
            store256(dst + c, csub256(r, bqj, bias));
        }
        for (; c < tile; ++c)
            dst[c] = pj.mulShoup(src[c], s, ss);
    }

    for (size_t i = 0; i < nc; ++i) {
        const Modulus &qi = bc.outBase()[i];
        const Mod256 md = loadMod256(qi);
        u64 *dst = out.limb(i) + c0;
        size_t c = 0;
        for (; c + 4 <= tile; c += 4) {
            __m256i acc_lo = _mm256_setzero_si256();
            __m256i acc_hi = _mm256_setzero_si256();
            for (size_t j = 0; j < nb; ++j) {
                const u64 rj = bc.baseTable(i, j);
                const __m256i r = set1_256(rj);
                const __m256i r_hi = set1_256(rj >> 32);
                __m256i p_lo, p_hi;
                mul64_256(load256(scratch + j * tile + c), r, r_hi, m32,
                          &p_lo, &p_hi);
                acc_lo = _mm256_add_epi64(acc_lo, p_lo);
                const __m256i carry = cmpltu256(acc_lo, p_lo, bias);
                acc_hi = _mm256_add_epi64(acc_hi, p_hi);
                acc_hi = _mm256_sub_epi64(acc_hi, carry);
            }
            store256(dst + c, barrett256(acc_lo, acc_hi, md));
        }
        for (; c < tile; ++c) {
            u128 acc = 0;
            for (size_t j = 0; j < nb; ++j)
                acc += static_cast<u128>(scratch[j * tile + c]) *
                       bc.baseTable(i, j);
            dst[c] = qi.reduce(acc);
        }
    }
}

ARK_T256 void
evkMacLimbAvx2(const Modulus &m, const u64 *pd, const u64 *kb,
               const u64 *ka, u64 *ab, u64 *aa, size_t n)
{
    const Mod256 md = loadMod256(m);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i d = load256(pd + i);
        const __m256i d_hi = _mm256_srli_epi64(d, 32);
        {
            __m256i p_lo, p_hi;
            mul64_256(load256(kb + i), d, d_hi, md.m32, &p_lo, &p_hi);
            const __m256i t = barrett256(p_lo, p_hi, md);
            const __m256i acc = _mm256_add_epi64(load256(ab + i), t);
            store256(ab + i, csub256(acc, md.bq, md.bias));
        }
        {
            __m256i p_lo, p_hi;
            mul64_256(load256(ka + i), d, d_hi, md.m32, &p_lo, &p_hi);
            const __m256i t = barrett256(p_lo, p_hi, md);
            const __m256i acc = _mm256_add_epi64(load256(aa + i), t);
            store256(aa + i, csub256(acc, md.bq, md.bias));
        }
    }
    for (; i < n; ++i) {
        ab[i] = m.add(ab[i], m.mul(pd[i], kb[i]));
        aa[i] = m.add(aa[i], m.mul(pd[i], ka[i]));
    }
}

} // namespace

#endif // ARK_SIMD_X86

const SimdKernels &
simdKernels(SimdTier tier)
{
    static const SimdKernels scalar_kernels{};
#ifdef ARK_SIMD_X86
    static const SimdKernels avx2_kernels = [] {
        SimdKernels k;
        k.tier = SimdTier::Avx2;
        k.min_ntt_degree = 8;
        k.ntt_forward = &nttForwardAvx2;
        k.ntt_inverse = &nttInverseAvx2;
        k.bconv_tile = &bconvTileAvx2;
        k.evk_mac_limb = &evkMacLimbAvx2;
        return k;
    }();
    static const SimdKernels avx512_kernels = [] {
        SimdKernels k;
        k.tier = SimdTier::Avx512;
        k.min_ntt_degree = 16;
        k.ntt_forward = &nttForwardAvx512;
        k.ntt_inverse = &nttInverseAvx512;
        k.bconv_tile = &bconvTileAvx512;
        k.evk_mac_limb = &evkMacLimbAvx512;
        return k;
    }();
    const SimdTier effective = std::min(tier, detectSimdTier());
    if (effective == SimdTier::Avx512)
        return avx512_kernels;
    if (effective == SimdTier::Avx2)
        return avx2_kernels;
    return scalar_kernels;
#else
    (void)tier;
    return scalar_kernels;
#endif
}

} // namespace ark
