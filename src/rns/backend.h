/**
 * @file
 * Pluggable kernel-backend layer: every limb-level kernel of the
 * library — element-wise limb ops, (I)NTT, BConv, automorphism, the
 * evk MAC, and the fused INTT->BConv->NTT key-switch digit path
 * (Alg. 1) — executes behind this interface.
 *
 * The scheme layers (ckks/, boot/) never touch kernel loops directly;
 * they dispatch through the KernelBackend owned by their CkksContext.
 * That seam is what lets the same scheme code run on the scalar
 * reference engine, the limb-parallel thread-pool engine, and any
 * future accelerator-style engine, and it is where per-kernel
 * invocation counts and word-traffic tallies (KernelStats) are
 * recorded for core/traffic_analyzer and sim/simulator to consume.
 *
 * Every shipped backend is bit-identical to the scalar reference:
 * ParallelBackend runs the exact same per-limb loop bodies and differs
 * only in the executor that maps limb jobs onto threads; SimdBackend
 * overrides the per-job kernel bodies with hand-vectorized AVX-512 /
 * AVX2 code that applies the same exact integer arithmetic lane-wise
 * (tests/test_backend_parity.cpp enforces both).
 */

#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "rns/automorphism.h"
#include "rns/backend_kind.h"
#include "rns/bconv.h"
#include "rns/cpu_features.h"
#include "rns/kernel_stats.h"
#include "rns/ntt.h"
#include "rns/poly.h"
#include "rns/poly_pool.h"

namespace ark {

/** Engine executing all limb-level kernels; owned by a CkksContext. */
class KernelBackend
{
  public:
    KernelBackend();
    virtual ~KernelBackend();

    virtual const char *name() const = 0;
    virtual BackendKind kind() const = 0;
    /** Threads applied to a kernel (1 for the scalar engine). */
    virtual size_t threads() const = 0;

    /// @name Element-wise limb kernels
    /// @{
    void add(const RnsPoly &a, const RnsPoly &b,
             const std::vector<Modulus> &moduli, RnsPoly &r);
    void sub(const RnsPoly &a, const RnsPoly &b,
             const std::vector<Modulus> &moduli, RnsPoly &r);
    void neg(const RnsPoly &a, const std::vector<Modulus> &moduli,
             RnsPoly &r);
    void mulEval(const RnsPoly &a, const RnsPoly &b,
                 const std::vector<Modulus> &moduli, RnsPoly &r);
    void mulAccEval(const RnsPoly &a, const RnsPoly &b,
                    const std::vector<Modulus> &moduli, RnsPoly &r);
    void mulScalar(const RnsPoly &a,
                   const std::vector<u64> &scalar_per_limb,
                   const std::vector<Modulus> &moduli, RnsPoly &r);
    void addScalar(const RnsPoly &a,
                   const std::vector<u64> &scalar_per_limb,
                   const std::vector<Modulus> &moduli, RnsPoly &r);
    /**
     * Fused r_l = (a_l - b_l) * s_l over the first r.numLimbs() limbs
     * (the ModDown-by-P and rescale tails; a/b may carry more limbs).
     */
    void subMulScalar(const RnsPoly &a, const RnsPoly &b,
                      const std::vector<u64> &scalar_per_limb,
                      const std::vector<Modulus> &moduli, RnsPoly &r);
    /** Negacyclic multiply by X^shift (Coeff rep; mulByI uses N/2). */
    void monomialMul(const RnsPoly &a, size_t shift,
                     const std::vector<Modulus> &moduli, RnsPoly &r);
    /**
     * Extend one limb of centered residues mod @p src_q into every
     * limb of @p out (Coeff rep): values above src_q/2 embed as
     * negative. This is the ModRaise embedding and the OF-Limb
     * runtime limb generation (Eq. 12).
     */
    void limbEmbed(const std::vector<u64> &src, const Modulus &src_q,
                   const std::vector<Modulus> &out_moduli, RnsPoly &out);
    /**
     * One key-switch MAC (Alg. 2 line 5, the MADU inner loop):
     * acc_b += digit * evk_b, acc_a += digit * evk_a, where the evk
     * polys span the full [q_0..q_L, p_*] basis and the digit spans
     * [q_0..q_level, p_*]; @p nq = level+1, @p full_nq = L+1 select
     * the matching evk limb. Also tallies the evk operand stream.
     */
    void evkMulAcc(const RnsPoly &digit, const RnsPoly &evk_b,
                   const RnsPoly &evk_a, size_t nq, size_t full_nq,
                   const std::vector<Modulus> &key_moduli,
                   RnsPoly &acc_b, RnsPoly &acc_a);
    /// @}

    /// @name NTT kernels
    /// @{
    void nttForward(RnsPoly &p, const std::vector<NttTables> &tables);
    void nttInverse(RnsPoly &p, const std::vector<NttTables> &tables);
    /** Per-limb table selection (extended/key polys, digit slices). */
    void nttForward(RnsPoly &p,
                    const std::vector<const NttTables *> &tables);
    void nttInverse(RnsPoly &p,
                    const std::vector<const NttTables *> &tables);
    /** Single detached limb (rescale / ModRaise bookkeeping). */
    void nttForwardLimb(u64 *limb, const NttTables &table);
    void nttInverseLimb(u64 *limb, const NttTables &table);
    /// @}

    /// @name Base conversion and automorphism
    /// @{
    /** BConv @p in (Coeff rep over bc.inBase()) to bc.outBase(). */
    RnsPoly bconv(const BaseConverter &bc, const RnsPoly &in);
    /** Apply @p am to every limb of @p p (either representation). */
    RnsPoly automorphism(const Automorphism &am, const RnsPoly &p,
                         const std::vector<Modulus> &moduli);
    /**
     * Fused key-switch digit path (Alg. 1): INTT the Eval-rep digit
     * with @p in_tables, base-convert through @p bc, and forward-NTT
     * each output limb with @p out_tables — one pipelined call with a
     * single scratch buffer instead of three materialized
     * intermediates. Returns the converted limbs in Eval rep.
     */
    RnsPoly nttBconvNtt(const RnsPoly &digit,
                        const std::vector<const NttTables *> &in_tables,
                        const BaseConverter &bc,
                        const std::vector<const NttTables *> &out_tables);
    /// @}

    /// @name Measured execution tallies
    /// @{
    /**
     * Merged snapshot of every caller thread's tally shard. Kernels
     * record into a per-thread shard (no shared-counter contention and
     * no data race under concurrent callers); stats() sums the shards
     * on demand. The snapshot is exact when no kernel is in flight —
     * drain callers first, as the serving runtime does.
     */
    KernelStats stats() const;
    void resetStats();
    /** Operand-stream traffic noted by scheme layers (PlaintextStore). */
    void notePlaintextWords(u64 words);
    /// @}

    /**
     * The backend's buffer recycler. Allocating kernels (bconv,
     * automorphism, nttBconvNtt) draw their outputs and scratch from
     * it, and scheme layers (ckks/evaluator.cpp) route their
     * fully-overwritten temporaries through it; see rns/poly_pool.h
     * for the stale-contents contract. Thread-safe, shared by every
     * thread dispatching through this backend.
     */
    PolyPool &pool() { return pool_; }

  protected:
    /**
     * Execute @p jobs independent jobs (one per limb row, or one per
     * output limb). Scalar and Parallel differ only here.
     */
    virtual void run(size_t jobs,
                     const std::function<void(size_t)> &fn) const = 0;

    /// @name Per-job kernel bodies
    /// The innermost loop bodies every NTT / BConv / evk-MAC job
    /// executes. Defaults are the reference scalar loops; SimdBackend
    /// overrides them with hand-vectorized kernels that compute the
    /// same arithmetic lane-wise (bit-identical by construction).
    /// Element-wise kernels stay non-virtual: they are memory-bound
    /// and the compiler already vectorizes their trivial loops.
    /// @{
    /** One limb of the lazy forward NTT (in place). */
    virtual void nttForwardLimbKernel(u64 *limb,
                                      const NttTables &table) const;
    /** One limb of the lazy inverse NTT (in place). */
    virtual void nttInverseLimbKernel(u64 *limb,
                                      const NttTables &table) const;
    /** One fused BConv scale+MAC tile (convertTile contract;
     *  @p scratch holds >= BaseConverter::kTileWords words). */
    virtual void bconvTileKernel(const BaseConverter &bc,
                                 const RnsPoly &in, size_t c0, size_t c1,
                                 u64 *scratch, RnsPoly &out) const;
    /** One limb of the evk MAC: ab += d * kb, aa += d * ka mod m. */
    virtual void evkMulAccLimbKernel(const Modulus &m, const u64 *d,
                                     const u64 *kb, const u64 *ka,
                                     u64 *ab, u64 *aa, size_t n) const;
    /// @}

    /** Tally one kernel call into the calling thread's shard. */
    void recordStats(KernelOp op, u64 limbs, u64 words, u64 mults);
    /** Tally evk operand-stream words (EvkMulAcc). */
    void noteEvkWords(u64 words);

  private:
    struct StatsShard;
    /** The calling thread's shard for this backend instance
     *  (registered on first use, found via a thread-local cache). */
    StatsShard &shard() const;

    /** Process-unique instance id keying the thread-local shard cache
     *  (never reused, so a stale cache entry for a destroyed backend
     *  can never alias a live one). */
    const u64 instance_id_;
    mutable std::mutex shards_m_;
    mutable std::vector<std::unique_ptr<StatsShard>> shards_;
    PolyPool pool_;
};

/** The reference engine: serial execution of every job. */
class ScalarBackend final : public KernelBackend
{
  public:
    const char *name() const override { return "scalar"; }
    BackendKind kind() const override { return BackendKind::Scalar; }
    size_t threads() const override { return 1; }

  protected:
    void run(size_t jobs,
             const std::function<void(size_t)> &fn) const override;
};

struct SimdKernels;

/**
 * Hand-vectorized engine: serial over limb jobs like ScalarBackend,
 * but each NTT / BConv-tile / evk-MAC job body runs the AVX-512 or
 * AVX2 kernels from rns/simd_kernels.cpp, picked at construction from
 * the host CPU (capped by @p max_tier and by ARK_SIMD_TIER). On hosts
 * with no vector ISA — or for transforms too small to fill a vector —
 * every call falls back to the scalar loop body, never aborts, so
 * ARK_BACKEND=simd is safe everywhere.
 */
class SimdBackend final : public KernelBackend
{
  public:
    /** @param max_tier cap on the dispatched ISA tier (the default
     *  caps nothing; tests pass lower tiers to pin a code path). */
    explicit SimdBackend(SimdTier max_tier = SimdTier::Avx512);

    const char *name() const override { return "simd"; }
    BackendKind kind() const override { return BackendKind::Simd; }
    size_t threads() const override { return 1; }

    /** The ISA tier actually dispatched after host/env clamping. */
    SimdTier tier() const;

  protected:
    void run(size_t jobs,
             const std::function<void(size_t)> &fn) const override;

    void nttForwardLimbKernel(u64 *limb,
                              const NttTables &table) const override;
    void nttInverseLimbKernel(u64 *limb,
                              const NttTables &table) const override;
    void bconvTileKernel(const BaseConverter &bc, const RnsPoly &in,
                         size_t c0, size_t c1, u64 *scratch,
                         RnsPoly &out) const override;
    void evkMulAccLimbKernel(const Modulus &m, const u64 *d,
                             const u64 *kb, const u64 *ka, u64 *ab,
                             u64 *aa, size_t n) const override;

  private:
    const SimdKernels &kernels_;
};

class ThreadPool;

/** Limb-parallel engine over a work-stealing thread pool. */
class ParallelBackend final : public KernelBackend
{
  public:
    /** @param num_threads pool workers; 0 = hardware concurrency. */
    explicit ParallelBackend(size_t num_threads = 0);
    ~ParallelBackend() override;

    const char *name() const override { return "parallel"; }
    BackendKind kind() const override { return BackendKind::Parallel; }
    size_t threads() const override;

  protected:
    void run(size_t jobs,
             const std::function<void(size_t)> &fn) const override;

  private:
    std::unique_ptr<ThreadPool> pool_;
};

/** Build a backend of @p kind (@p num_threads: 0 = hardware). */
std::unique_ptr<KernelBackend> makeKernelBackend(BackendKind kind,
                                                 size_t num_threads = 0);

/**
 * Process-wide backend used by the RnsPoly free-function wrappers
 * (callers without a CkksContext). Selected by ARK_BACKEND /
 * ARK_THREADS at first use; defaults to the scalar engine.
 */
KernelBackend &processBackend();

} // namespace ark
