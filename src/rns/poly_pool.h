/**
 * @file
 * Thread-safe free-list pool for RnsPoly backing buffers.
 *
 * Every hot CKKS op churns through short-lived (limbs x N) temporaries
 * — key-switch digits, BConv outputs and scratch, automorphism
 * results. Allocating each one fresh pays a heap round-trip plus an
 * O(N * limbs) zero-fill per op. The pool recycles those buffers by
 * (degree, limb count): acquire() hands back a poly whose words are
 * UNSPECIFIED (stale contents of the previous user), which is safe
 * exactly when every word is overwritten before being read — the
 * contract all pooled call sites in rns/backend.cpp and
 * ckks/evaluator.cpp uphold. Accumulators that are read-modify-written
 * use acquireZeroed() instead.
 *
 * Lifetime rules (see docs/architecture.md):
 *  - release() may only be called on polys whose words this pool (or
 *    a plain constructor) produced and that no other reference aliases;
 *    after release the poly is empty and must not be used.
 *  - A poly acquired from the pool is a normal value: letting it
 *    destruct (e.g. escaping into a user-held Ciphertext) is always
 *    correct, it just returns the buffer to the heap instead of the
 *    pool.
 *  - The pool may be shared by any number of threads (the serving
 *    runtime's workers share one context/backend); all methods are
 *    mutex-guarded, and the critical sections move only pointers.
 *
 * Internally the free lists are striped: each thread is pinned to one
 * of kStripes stripes (a thread-local ticket, round-robin), so the
 * workers of a serving pool park and reclaim their temporaries on
 * disjoint mutexes instead of serializing on one. An acquire that
 * misses its own stripe steals from the others (one lock at a time,
 * never nested) before falling back to the heap, so buffers released
 * by another thread are still recycled. The per-shape and total-word
 * retention caps are split evenly across stripes, which keeps the
 * global bounds of the unstriped pool intact.
 */

#pragma once

#include <array>
#include <cstddef>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "rns/poly.h"

namespace ark {

/** Free-list recycler of RnsPoly buffers keyed by (degree, limbs). */
class PolyPool
{
  public:
    PolyPool() = default;
    PolyPool(const PolyPool &) = delete;
    PolyPool &operator=(const PolyPool &) = delete;

    /**
     * A (degree x limbs) poly whose word contents are UNSPECIFIED
     * (zero when freshly allocated, stale when recycled). Callers must
     * overwrite every word before reading any.
     */
    RnsPoly acquire(size_t degree, size_t limbs, Rep rep);

    /** Like acquire but with every word cleared (for accumulators). */
    RnsPoly acquireZeroed(size_t degree, size_t limbs, Rep rep);

    /** Return @p p 's buffer to the free list; @p p becomes empty. */
    void release(RnsPoly &&p);

    /** Recycling tallies (for tests and the micro-kernel bench). */
    struct Stats
    {
        u64 hits = 0;     ///< acquires served from the free list
        u64 misses = 0;   ///< acquires that had to heap-allocate
        u64 released = 0; ///< buffers returned (dropped ones included)
        size_t cached_buffers = 0; ///< buffers currently pooled
        size_t cached_words = 0;   ///< words currently pooled
    };
    Stats stats() const;

    /** Drop every cached buffer (memory back to the heap). */
    void trim();

    /**
     * Process-wide pool used by callers without a backend of their own
     * (the BaseConverter compatibility stages, standalone tools).
     * Backends own private pools so contexts do not contend.
     */
    static PolyPool &process();

  private:
    /** Free-list stripes; a power of two so the thread ticket maps on
     *  with a mask. Eight comfortably spreads the serving runtime's
     *  worker counts without bloating the idle pool. */
    static constexpr size_t kStripes = 8;
    /** Buffers pooled per (degree, limbs) key beyond which release()
     *  frees instead of caching — bounds per-shape retention while
     *  comfortably covering one serving worker set's temporaries.
     *  Split evenly across stripes. */
    static constexpr size_t kMaxPerKey = 64;
    /**
     * Total words the pool will retain across all keys (256 MiB).
     * Long-running servers churn through many (degree, limbs) shapes
     * as workloads change level; without a byte budget the per-key
     * cap alone would let cached memory ratchet up by shape. Releases
     * beyond the budget free to the heap instead. Split evenly across
     * stripes.
     */
    static constexpr size_t kMaxCachedWords =
        (size_t(256) << 20) / sizeof(u64);
    static constexpr size_t kMaxPerKeyPerStripe = kMaxPerKey / kStripes;
    static constexpr size_t kMaxWordsPerStripe =
        kMaxCachedWords / kStripes;

    struct Stripe
    {
        mutable std::mutex m;
        std::map<std::pair<size_t, size_t>,
                 std::vector<std::vector<u64>>>
            free;
        size_t cached_words = 0;
        u64 hits = 0;
        u64 misses = 0;
        u64 released = 0;
    };

    /** Pop a cached buffer of @p key shape off @p s, if any. */
    static bool popFrom(Stripe &s, std::pair<size_t, size_t> key,
                        std::vector<u64> &buf);

    std::array<Stripe, kStripes> stripes_;
};

} // namespace ark
