#include "rns/poly.h"

#include "common/logging.h"
#include "rns/backend.h"

namespace ark {

RnsPoly::RnsPoly(size_t degree, size_t num_limbs, Rep rep)
    : degree_(degree), num_limbs_(num_limbs), rep_(rep),
      data_(degree * num_limbs, 0)
{
    ARK_ASSERT(isPowerOfTwo(degree), "degree must be a power of two");
}

RnsPoly::RnsPoly(std::vector<u64> &&buf, size_t degree, size_t num_limbs,
                 Rep rep)
    : degree_(degree), num_limbs_(num_limbs), rep_(rep),
      data_(std::move(buf))
{
    ARK_ASSERT(isPowerOfTwo(degree), "degree must be a power of two");
    // A recycled buffer arrives at exactly this size (the pool keys on
    // (degree, limbs)), making this a no-op that preserves its stale
    // contents; a fresh buffer is empty and value-initializes.
    data_.resize(degree * num_limbs);
}

std::vector<u64>
RnsPoly::takeBuffer() &&
{
    degree_ = 0;
    num_limbs_ = 0;
    return std::move(data_);
}

void
RnsPoly::resizeLimbs(size_t keep)
{
    ARK_ASSERT(keep <= num_limbs_, "cannot grow with resizeLimbs");
    num_limbs_ = keep;
    data_.resize(keep * degree_);
}

void
RnsPoly::extendLimbs(size_t extra)
{
    num_limbs_ += extra;
    data_.resize(num_limbs_ * degree_, 0);
}

// The limb-level loops behind these wrappers live in rns/backend.cpp;
// the process-wide backend honours ARK_BACKEND / ARK_THREADS.

void
polyAdd(const RnsPoly &a, const RnsPoly &b,
        const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().add(a, b, moduli, r);
}

void
polySub(const RnsPoly &a, const RnsPoly &b,
        const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().sub(a, b, moduli, r);
}

void
polyNeg(const RnsPoly &a, const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().neg(a, moduli, r);
}

void
polyMulEval(const RnsPoly &a, const RnsPoly &b,
            const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().mulEval(a, b, moduli, r);
}

void
polyMulAccEval(const RnsPoly &a, const RnsPoly &b,
               const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().mulAccEval(a, b, moduli, r);
}

void
polyMulScalar(const RnsPoly &a, const std::vector<u64> &scalar_per_limb,
              const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().mulScalar(a, scalar_per_limb, moduli, r);
}

void
polyAddScalar(const RnsPoly &a, const std::vector<u64> &scalar_per_limb,
              const std::vector<Modulus> &moduli, RnsPoly &r)
{
    processBackend().addScalar(a, scalar_per_limb, moduli, r);
}

void
polyNttForward(RnsPoly &p, const std::vector<NttTables> &tables)
{
    processBackend().nttForward(p, tables);
}

void
polyNttInverse(RnsPoly &p, const std::vector<NttTables> &tables)
{
    processBackend().nttInverse(p, tables);
}

RnsPoly
polyFromSigned(const std::vector<i64> &coeffs,
               const std::vector<Modulus> &moduli)
{
    RnsPoly p(coeffs.size(), moduli.size(), Rep::Coeff);
    for (size_t l = 0; l < moduli.size(); ++l) {
        const u64 q = moduli[l].value();
        u64 *pl = p.limb(l);
        for (size_t i = 0; i < coeffs.size(); ++i) {
            i64 c = coeffs[i];
            pl[i] = c >= 0 ? static_cast<u64>(c) % q
                           : q - (static_cast<u64>(-c) % q);
        }
    }
    return p;
}

} // namespace ark
