#include "rns/poly.h"

#include "common/logging.h"

namespace ark {

RnsPoly::RnsPoly(size_t degree, size_t num_limbs, Rep rep)
    : degree_(degree), num_limbs_(num_limbs), rep_(rep),
      data_(degree * num_limbs, 0)
{
    ARK_ASSERT(isPowerOfTwo(degree), "degree must be a power of two");
}

void
RnsPoly::resizeLimbs(size_t keep)
{
    ARK_ASSERT(keep <= num_limbs_, "cannot grow with resizeLimbs");
    num_limbs_ = keep;
    data_.resize(keep * degree_);
}

void
RnsPoly::extendLimbs(size_t extra)
{
    num_limbs_ += extra;
    data_.resize(num_limbs_ * degree_, 0);
}

namespace {

void
checkBinary(const RnsPoly &a, const RnsPoly &b,
            const std::vector<Modulus> &moduli, const RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(b) && a.sameShape(r),
               "operand shape mismatch");
    ARK_ASSERT(a.rep() == b.rep(), "operand representation mismatch");
    ARK_ASSERT(moduli.size() >= a.numLimbs(), "not enough moduli");
}

} // namespace

void
polyAdd(const RnsPoly &a, const RnsPoly &b,
        const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = addMod(pa[i], pb[i], q);
    }
    r.setRep(a.rep());
}

void
polySub(const RnsPoly &a, const RnsPoly &b,
        const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = subMod(pa[i], pb[i], q);
    }
    r.setRep(a.rep());
}

void
polyNeg(const RnsPoly &a, const std::vector<Modulus> &moduli, RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = pa[i] == 0 ? 0 : q - pa[i];
    }
    r.setRep(a.rep());
}

void
polyMulEval(const RnsPoly &a, const RnsPoly &b,
            const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    ARK_ASSERT(a.rep() == Rep::Eval,
               "pointwise multiply requires evaluation representation");
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const Modulus &q = moduli[l];
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.mul(pa[i], pb[i]);
    }
    r.setRep(Rep::Eval);
}

void
polyMulAccEval(const RnsPoly &a, const RnsPoly &b,
               const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    ARK_ASSERT(a.rep() == Rep::Eval && r.rep() == Rep::Eval,
               "MAC requires evaluation representation");
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const Modulus &q = moduli[l];
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.add(pr[i], q.mul(pa[i], pb[i]));
    }
}

void
polyMulScalar(const RnsPoly &a, const std::vector<u64> &scalar_per_limb,
              const std::vector<Modulus> &moduli, RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    ARK_ASSERT(scalar_per_limb.size() >= a.numLimbs(), "missing scalars");
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const Modulus &q = moduli[l];
        const u64 s = scalar_per_limb[l];
        const u64 ss = q.shoupPrecompute(s);
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.mulShoup(pa[i], s, ss);
    }
    r.setRep(a.rep());
}

void
polyAddScalar(const RnsPoly &a, const std::vector<u64> &scalar_per_limb,
              const std::vector<Modulus> &moduli, RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    const size_t n = a.degree();
    for (size_t l = 0; l < a.numLimbs(); ++l) {
        const u64 q = moduli[l].value();
        const u64 s = scalar_per_limb[l];
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = addMod(pa[i], s, q);
    }
    r.setRep(a.rep());
}

void
polyNttForward(RnsPoly &p, const std::vector<NttTables> &tables)
{
    ARK_ASSERT(p.rep() == Rep::Coeff, "forward NTT needs Coeff rep");
    ARK_ASSERT(tables.size() >= p.numLimbs(), "not enough NTT tables");
    for (size_t l = 0; l < p.numLimbs(); ++l)
        tables[l].forward(p.limb(l));
    p.setRep(Rep::Eval);
}

void
polyNttInverse(RnsPoly &p, const std::vector<NttTables> &tables)
{
    ARK_ASSERT(p.rep() == Rep::Eval, "inverse NTT needs Eval rep");
    ARK_ASSERT(tables.size() >= p.numLimbs(), "not enough NTT tables");
    for (size_t l = 0; l < p.numLimbs(); ++l)
        tables[l].inverse(p.limb(l));
    p.setRep(Rep::Coeff);
}

RnsPoly
polyFromSigned(const std::vector<i64> &coeffs,
               const std::vector<Modulus> &moduli)
{
    RnsPoly p(coeffs.size(), moduli.size(), Rep::Coeff);
    for (size_t l = 0; l < moduli.size(); ++l) {
        const u64 q = moduli[l].value();
        u64 *pl = p.limb(l);
        for (size_t i = 0; i < coeffs.size(); ++i) {
            i64 c = coeffs[i];
            pl[i] = c >= 0 ? static_cast<u64>(c) % q
                           : q - (static_cast<u64>(-c) % q);
        }
    }
    return p;
}

} // namespace ark
