#include "rns/cpu_features.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace ark {

const char *
simdTierName(SimdTier tier)
{
    switch (tier) {
      case SimdTier::Scalar:
        return "scalar";
      case SimdTier::Neon:
        return "neon";
      case SimdTier::Avx2:
        return "avx2";
      case SimdTier::Avx512:
        return "avx512";
    }
    return "scalar";
}

bool
parseSimdTier(const char *name, SimdTier &out)
{
    if (name == nullptr)
        return false;
    if (std::strcmp(name, "scalar") == 0) {
        out = SimdTier::Scalar;
        return true;
    }
    if (std::strcmp(name, "neon") == 0) {
        out = SimdTier::Neon;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        out = SimdTier::Avx2;
        return true;
    }
    if (std::strcmp(name, "avx512") == 0) {
        out = SimdTier::Avx512;
        return true;
    }
    return false;
}

namespace {

SimdTier
probeSimdTier()
{
#if (defined(__x86_64__) || defined(__i386__)) &&                        \
    (defined(__GNUC__) || defined(__clang__))
    // The AVX-512 kernels use vpmullq, so the tier needs DQ on top of
    // F. Every AVX-512 server part since Skylake-SP ships both; the
    // F-only Xeon Phi line drops to the AVX2 kernels.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq"))
        return SimdTier::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return SimdTier::Avx2;
    return SimdTier::Scalar;
#elif defined(__aarch64__)
    // AdvSIMD is architecturally mandatory on aarch64; the tier exists
    // so the dispatch seam is in place, but the kernels are a stub
    // (null entries -> scalar loops) until someone writes them.
    return SimdTier::Neon;
#else
    return SimdTier::Scalar;
#endif
}

} // namespace

SimdTier
detectSimdTier()
{
    static const SimdTier tier = probeSimdTier();
    return tier;
}

SimdTier
simdTierFromEnv(SimdTier fallback)
{
    const char *env = std::getenv("ARK_SIMD_TIER");
    if (env == nullptr || *env == '\0')
        return fallback;
    SimdTier tier;
    if (!parseSimdTier(env, tier)) {
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "invalid ARK_SIMD_TIER '%s' (expected 'scalar', "
                      "'neon', 'avx2', or 'avx512')",
                      env);
        ARK_FATAL(msg);
    }
    return tier;
}

std::string
cpuFeatureString()
{
    std::string out;
#if (defined(__x86_64__) || defined(__i386__)) &&                        \
    (defined(__GNUC__) || defined(__clang__))
    struct Probe
    {
        const char *name;
        bool present;
    };
    const Probe probes[] = {
        {"sse4.2", static_cast<bool>(__builtin_cpu_supports("sse4.2"))},
        {"avx", static_cast<bool>(__builtin_cpu_supports("avx"))},
        {"avx2", static_cast<bool>(__builtin_cpu_supports("avx2"))},
        {"avx512f", static_cast<bool>(__builtin_cpu_supports("avx512f"))},
        {"avx512dq",
         static_cast<bool>(__builtin_cpu_supports("avx512dq"))},
        {"avx512vl",
         static_cast<bool>(__builtin_cpu_supports("avx512vl"))},
    };
    for (const Probe &p : probes) {
        if (!p.present)
            continue;
        if (!out.empty())
            out += ' ';
        out += p.name;
    }
#elif defined(__aarch64__)
    out = "neon";
#endif
    if (out.empty())
        out = "none";
    return out;
}

} // namespace ark
