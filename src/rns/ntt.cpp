#include "rns/ntt.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

NttTables::NttTables(size_t degree, Modulus modulus)
    : n_(degree), log_n_(log2Exact(degree)), q_(modulus)
{
    ARK_ASSERT(isPowerOfTwo(degree), "NTT degree must be a power of two");
    ARK_ASSERT((q_.value() - 1) % (2 * degree) == 0,
               "prime must be 1 mod 2N for the negacyclic NTT");

    psi_ = rootOfUnity(2 * degree, q_.value());

    root_powers_.resize(n_);
    root_powers_shoup_.resize(n_);
    inv_root_powers_.resize(n_);
    inv_root_powers_shoup_.resize(n_);

    // root_powers_[i] = psi^{bitrev(i)}; the Cooley-Tukey stages index
    // this table as roots[m + i], which yields the negacyclic transform
    // with natural-order input (Longa-Naehrig / Harvey formulation).
    u64 power = 1;
    std::vector<u64> psi_powers(n_);
    for (size_t i = 0; i < n_; ++i) {
        psi_powers[i] = power;
        power = q_.mul(power, psi_);
    }
    for (size_t i = 0; i < n_; ++i) {
        u64 w = psi_powers[bitReverse(i, log_n_)];
        root_powers_[i] = w;
        root_powers_shoup_[i] = q_.shoupPrecompute(w);
        u64 wi = q_.inv(w);
        inv_root_powers_[i] = wi;
        inv_root_powers_shoup_[i] = q_.shoupPrecompute(wi);
    }

    n_inv_ = q_.inv(static_cast<u64>(n_) % q_.value());
    n_inv_shoup_ = q_.shoupPrecompute(n_inv_);
}

void
NttTables::forward(u64 *a) const
{
    // Harvey lazy Cooley-Tukey: butterfly values live in [0, 4q).
    // Each butterfly folds its left input back into [0, 2q), takes the
    // Shoup product lazily in [0, 2q), and emits u + v / u - v + 2q in
    // [0, 4q) — no per-butterfly canonical correction. One
    // normalization sweep at the end restores [0, q) words, so the
    // output is bit-identical to forwardStrict.
    const u64 two_q = q_.twoQ();
    size_t t = n_ >> 1;
    size_t m = 1;
    for (; t >= 4; m <<= 1, t >>= 1) {
        for (size_t i = 0; i < m; ++i) {
            const u64 w = root_powers_[m + i];
            const u64 ws = root_powers_shoup_[m + i];
            u64 *x = a + 2 * i * t;
            u64 *y = x + t;
            for (size_t j = 0; j < t; ++j) {
                u64 u = x[j];
                if (u >= two_q)
                    u -= two_q;
                const u64 v = q_.mulShoupLazy(y[j], w, ws);
                x[j] = u + v;
                y[j] = u - v + two_q;
            }
        }
    }
    // Last two radix stages flattened: t == 2 works on (4i, 4i+2) /
    // (4i+1, 4i+3) and t == 1 on adjacent pairs, each a single loop
    // over i with the twiddle table read contiguously — short inner
    // loops no longer pay the per-block setup, and the straight-line
    // bodies auto-vectorize.
    if (t == 2) {
        const u64 *w = root_powers_.data() + m;
        const u64 *ws = root_powers_shoup_.data() + m;
        for (size_t i = 0; i < m; ++i) {
            u64 *x = a + 4 * i;
            for (size_t j = 0; j < 2; ++j) {
                u64 u = x[j];
                if (u >= two_q)
                    u -= two_q;
                const u64 v = q_.mulShoupLazy(x[j + 2], w[i], ws[i]);
                x[j] = u + v;
                x[j + 2] = u - v + two_q;
            }
        }
        m <<= 1;
        t = 1;
    }
    if (t == 1) {
        const u64 *w = root_powers_.data() + m;
        const u64 *ws = root_powers_shoup_.data() + m;
        for (size_t i = 0; i < m; ++i) {
            u64 u = a[2 * i];
            if (u >= two_q)
                u -= two_q;
            const u64 v = q_.mulShoupLazy(a[2 * i + 1], w[i], ws[i]);
            a[2 * i] = u + v;
            a[2 * i + 1] = u - v + two_q;
        }
    }
    for (size_t j = 0; j < n_; ++j)
        a[j] = q_.reduceLazy4q(a[j]);
}

void
NttTables::inverse(u64 *a) const
{
    // Harvey lazy Gentleman-Sande: values stay in [0, 2q) throughout
    // (x + y folds back below 2q; the Shoup product of x - y + 2q is
    // taken lazily). The final 1/N scaling pass uses the strict Shoup
    // product, which both scales and normalizes — the transform ends
    // canonical with no separate correction sweep.
    const u64 two_q = q_.twoQ();
    size_t t = 1;
    size_t m = n_;
    // First stage flattened (t == 1, adjacent pairs, contiguous
    // twiddles) for the same auto-vectorization reason as forward.
    if (m > 1) {
        const size_t h = m >> 1;
        const u64 *w = inv_root_powers_.data() + h;
        const u64 *ws = inv_root_powers_shoup_.data() + h;
        for (size_t i = 0; i < h; ++i) {
            const u64 x = a[2 * i];
            const u64 y = a[2 * i + 1];
            const u64 s = x + y;
            a[2 * i] = s >= two_q ? s - two_q : s;
            a[2 * i + 1] =
                q_.mulShoupLazy(x - y + two_q, w[i], ws[i]);
        }
        m = h;
        t = 2;
    }
    for (; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const u64 w = inv_root_powers_[h + i];
            const u64 ws = inv_root_powers_shoup_[h + i];
            u64 *x = a + j1;
            u64 *y = x + t;
            for (size_t j = 0; j < t; ++j) {
                const u64 u = x[j];
                const u64 v = y[j];
                const u64 s = u + v;
                x[j] = s >= two_q ? s - two_q : s;
                y[j] = q_.mulShoupLazy(u - v + two_q, w, ws);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t j = 0; j < n_; ++j)
        a[j] = q_.mulShoup(a[j], n_inv_, n_inv_shoup_);
}

void
NttTables::forwardStrict(u64 *a) const
{
    const u64 q = q_.value();
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const u64 w = root_powers_[m + i];
            const u64 ws = root_powers_shoup_[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j];
                u64 y = q_.mulShoup(a[j + t], w, ws);
                a[j] = addMod(x, y, q);
                a[j + t] = subMod(x, y, q);
            }
        }
    }
}

void
NttTables::inverseStrict(u64 *a) const
{
    const u64 q = q_.value();
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const u64 w = inv_root_powers_[h + i];
            const u64 ws = inv_root_powers_shoup_[h + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j];
                u64 y = a[j + t];
                a[j] = addMod(x, y, q);
                a[j + t] = q_.mulShoup(subMod(x, y, q), w, ws);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t j = 0; j < n_; ++j)
        a[j] = q_.mulShoup(a[j], n_inv_, n_inv_shoup_);
}

} // namespace ark
