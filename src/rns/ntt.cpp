#include "rns/ntt.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

NttTables::NttTables(size_t degree, Modulus modulus)
    : n_(degree), log_n_(log2Exact(degree)), q_(modulus)
{
    ARK_ASSERT(isPowerOfTwo(degree), "NTT degree must be a power of two");
    ARK_ASSERT((q_.value() - 1) % (2 * degree) == 0,
               "prime must be 1 mod 2N for the negacyclic NTT");

    psi_ = rootOfUnity(2 * degree, q_.value());

    root_powers_.resize(n_);
    root_powers_shoup_.resize(n_);
    inv_root_powers_.resize(n_);
    inv_root_powers_shoup_.resize(n_);

    // root_powers_[i] = psi^{bitrev(i)}; the Cooley-Tukey stages index
    // this table as roots[m + i], which yields the negacyclic transform
    // with natural-order input (Longa-Naehrig / Harvey formulation).
    u64 power = 1;
    std::vector<u64> psi_powers(n_);
    for (size_t i = 0; i < n_; ++i) {
        psi_powers[i] = power;
        power = q_.mul(power, psi_);
    }
    for (size_t i = 0; i < n_; ++i) {
        u64 w = psi_powers[bitReverse(i, log_n_)];
        root_powers_[i] = w;
        root_powers_shoup_[i] = q_.shoupPrecompute(w);
        u64 wi = q_.inv(w);
        inv_root_powers_[i] = wi;
        inv_root_powers_shoup_[i] = q_.shoupPrecompute(wi);
    }

    n_inv_ = q_.inv(static_cast<u64>(n_) % q_.value());
    n_inv_shoup_ = q_.shoupPrecompute(n_inv_);
}

void
NttTables::forward(u64 *a) const
{
    const u64 q = q_.value();
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            const size_t j1 = 2 * i * t;
            const u64 w = root_powers_[m + i];
            const u64 ws = root_powers_shoup_[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j];
                u64 y = q_.mulShoup(a[j + t], w, ws);
                a[j] = addMod(x, y, q);
                a[j + t] = subMod(x, y, q);
            }
        }
    }
}

void
NttTables::inverse(u64 *a) const
{
    const u64 q = q_.value();
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const u64 w = inv_root_powers_[h + i];
            const u64 ws = inv_root_powers_shoup_[h + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 x = a[j];
                u64 y = a[j + t];
                a[j] = addMod(x, y, q);
                a[j + t] = q_.mulShoup(subMod(x, y, q), w, ws);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t j = 0; j < n_; ++j)
        a[j] = q_.mulShoup(a[j], n_inv_, n_inv_shoup_);
}

} // namespace ark
