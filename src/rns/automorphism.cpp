#include "rns/automorphism.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

u64
galoisElt(i64 r, size_t degree)
{
    const u64 m = 2 * degree;
    // Order of 5 in Z_2N^* is N/2, so rotation amounts live mod N/2.
    const u64 order = degree / 2;
    u64 rr = ((r % static_cast<i64>(order)) + static_cast<i64>(order)) %
             static_cast<i64>(order);
    return powMod(5, rr, m);
}

u64
galoisEltConjugate(size_t degree)
{
    return 2 * degree - 1;
}

Automorphism::Automorphism(u64 galois_elt, size_t degree)
    : g_(galois_elt), n_(degree)
{
    ARK_ASSERT((galois_elt & 1) == 1 && galois_elt < 2 * degree,
               "Galois element must be odd and < 2N");
    const u64 m = 2 * degree;
    const int log_n = log2Exact(degree);

    coeff_index_.resize(n_);
    coeff_negate_.resize(n_);
    for (size_t i = 0; i < n_; ++i) {
        u64 j = (static_cast<u128>(i) * g_) % m;
        coeff_index_[i] = static_cast<u32>(j & (degree - 1));
        coeff_negate_[i] = j >= degree ? 1 : 0;
    }

    // Evaluation order: position i of the NTT output holds the value
    // of the polynomial at psi^{o(i)} with o(i) = 2*bitrev(i) + 1.
    // (psi_g P)(psi^{o(j)}) = P(psi^{o(j)*g mod 2N}), so the source
    // position is o^{-1}(o(j) * g mod 2N).
    eval_source_.resize(n_);
    for (size_t j = 0; j < n_; ++j) {
        u64 oj = 2 * bitReverse(j, log_n) + 1;
        u64 src_pt = (static_cast<u128>(oj) * g_) % m;
        u64 src_idx = bitReverse((src_pt - 1) / 2, log_n);
        eval_source_[j] = static_cast<u32>(src_idx);
    }
}

void
Automorphism::applyCoeff(const u64 *in, u64 *out, const Modulus &q) const
{
    const u64 qv = q.value();
    for (size_t i = 0; i < n_; ++i) {
        u64 v = in[i];
        if (coeff_negate_[i])
            v = v == 0 ? 0 : qv - v;
        out[coeff_index_[i]] = v;
    }
}

void
Automorphism::applyEval(const u64 *in, u64 *out) const
{
    for (size_t j = 0; j < n_; ++j)
        out[j] = in[eval_source_[j]];
}

RnsPoly
Automorphism::apply(const RnsPoly &p,
                    const std::vector<Modulus> &moduli) const
{
    ARK_ASSERT(p.degree() == n_, "degree mismatch");
    RnsPoly out(p.degree(), p.numLimbs(), p.rep());
    for (size_t l = 0; l < p.numLimbs(); ++l) {
        if (p.rep() == Rep::Coeff)
            applyCoeff(p.limb(l), out.limb(l), moduli[l]);
        else
            applyEval(p.limb(l), out.limb(l));
    }
    return out;
}

} // namespace ark
