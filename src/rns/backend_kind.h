/**
 * @file
 * Backend selector shared by CkksParams and the kernel-backend
 * factory. Lives in its own header so the lightweight params header
 * does not have to pull in the full backend interface.
 */

#pragma once

#include <cstddef>

namespace ark {

/** Which kernel engine executes limb-level compute. */
enum class BackendKind {
    Scalar,   ///< single-threaded reference loops
    Parallel, ///< limb-parallel over a work-stealing thread pool
    Simd,     ///< hand-vectorized kernels (AVX-512/AVX2, CPUID dispatch)
};

inline const char *
backendKindName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Scalar:
        return "scalar";
      case BackendKind::Parallel:
        return "parallel";
      case BackendKind::Simd:
        return "simd";
    }
    return "scalar";
}

/** Parse "scalar" / "parallel" / "simd"; false on anything else. */
bool parseBackendKind(const char *name, BackendKind &out);

/** Upper bound accepted for a thread-count knob (sanity guard against
 *  overflowed or wrapped values like ARK_THREADS=-1). */
constexpr size_t kMaxBackendThreads = 4096;

/**
 * Parse a thread count: digits only, <= kMaxBackendThreads (0 means
 * hardware concurrency). Returns false on junk — signs, whitespace,
 * trailing characters, or out-of-range values.
 */
bool parseBackendThreads(const char *s, size_t &out);

/** ARK_BACKEND env override, else @p fallback; exits with a clear
 *  error naming the offending value on junk input. */
BackendKind backendKindFromEnv(BackendKind fallback);

/** ARK_THREADS env override, else @p fallback (0 = hardware); exits
 *  with a clear error naming the offending value on junk input. */
size_t backendThreadsFromEnv(size_t fallback);

} // namespace ark
