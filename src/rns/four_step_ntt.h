/**
 * @file
 * Bailey 4-step (2D) negacyclic NTT with on-the-fly twisting factor
 * generation (OF-Twist).
 *
 * ARK's NTTU (paper Section V-C) implements an N-point NTT as a
 * sqrt(N) x sqrt(N) 2D transform: column NTTs, element-wise multiply by
 * *twisting factors*, a transpose, and row NTTs. The twisting factors
 * for a fixed row form a geometric progression, so ARK's twisting units
 * generate them on the fly from one starting value and one common ratio
 * per row instead of loading N words from memory — OF-Twist.
 *
 * This class is the functional counterpart of that unit: it computes
 * the same transform as NttTables (verified by tests) while counting
 * how many twisting-factor words a hardware implementation would load
 * with and without OF-Twist, which feeds the Section V-C claim that
 * OF-Twist cuts (I)NTT operand traffic roughly in half and saves 99%
 * of twisting-factor storage.
 */

#pragma once

#include <cstddef>

#include <vector>

#include "rns/modulus.h"

namespace ark {

/** 4-step negacyclic NTT over one prime with OF-Twist accounting. */
class FourStepNtt
{
  public:
    /**
     * @param degree power-of-two ring degree N with a power-of-two
     *        square root (N = R^2).
     * @param modulus prime with modulus = 1 (mod 2N).
     */
    FourStepNtt(size_t degree, Modulus modulus);

    size_t degree() const { return n_; }
    size_t rows() const { return r_; }

    /**
     * Forward negacyclic NTT, out-of-place. Output is in the 4-step
     * natural frequency order (k = k1*R + k2), which differs from the
     * iterative NTT's bit-reversed order; tests compare against a naive
     * DFT evaluation.
     */
    std::vector<u64> forward(const std::vector<u64> &coeffs) const;

    /** Inverse of forward(); returns the coefficient vector. */
    std::vector<u64> inverse(const std::vector<u64> &evals) const;

    /**
     * Twisting-factor words a hardware NTTU must fetch per N-point
     * transform when factors are precomputed and stored (the F1
     * approach): N words for the 2D twist plus N for the negacyclic
     * pre-twist.
     */
    size_t twistWordsLoadedBaseline() const { return 2 * n_; }

    /**
     * Twisting-factor words fetched with OF-Twist: one starting value
     * and one common ratio per row for each of the two twists.
     */
    size_t twistWordsLoadedOfTwist() const { return 4 * r_; }

  private:
    /** In-place cyclic radix-2 DIT NTT of length r_ with given roots. */
    void smallNtt(u64 *data, const std::vector<u64> &roots,
                  const std::vector<u64> &roots_shoup) const;

    size_t n_;
    size_t r_;
    int log_r_;
    Modulus q_;
    u64 psi_;     ///< primitive 2N-th root (negacyclic pre-twist ratio)
    u64 omega_;   ///< psi^2, primitive N-th root
    u64 omega_r_; ///< omega^R, primitive R-th root for the small NTTs
    u64 psi_inv_;
    u64 omega_inv_;
    u64 omega_r_inv_;
    u64 n_inv_;
    /** Bit-reversal permutation for the small transforms. */
    std::vector<u32> bitrev_;
    /** Stage twiddles for the small cyclic NTT (forward / inverse). */
    std::vector<u64> small_roots_;
    std::vector<u64> small_roots_shoup_;
    std::vector<u64> small_inv_roots_;
    std::vector<u64> small_inv_roots_shoup_;
};

} // namespace ark
