#include "rns/primes.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

namespace {

bool
contains(const std::vector<u64> &v, u64 x)
{
    return std::find(v.begin(), v.end(), x) != v.end();
}

} // namespace

std::vector<u64>
generatePrimes(int bits, size_t count, size_t degree,
               const std::vector<u64> &skip)
{
    ARK_ASSERT(bits >= 20 && bits <= 61, "prime size out of range");
    ARK_ASSERT(isPowerOfTwo(degree), "degree must be a power of two");

    const u64 step = 2 * static_cast<u64>(degree);
    std::vector<u64> primes;
    primes.reserve(count);

    // Start just below 2^bits at the largest candidate = 1 mod 2N and
    // alternate scanning downward then upward so generated primes stay
    // balanced around 2^bits (keeps the CKKS scale drift small).
    u64 top = (1ULL << bits);
    u64 down = (top / step) * step + 1;
    if (down >= top)
        down -= step;
    u64 up = down + step;

    bool go_down = true;
    while (primes.size() < count) {
        u64 cand;
        if (go_down) {
            cand = down;
            down -= step;
        } else {
            cand = up;
            up += step;
        }
        go_down = !go_down;
        if (cand < (1ULL << (bits - 1)))
            ARK_FATAL("ran out of prime candidates at this bit size");
        if (isPrime(cand) && !contains(skip, cand) &&
            !contains(primes, cand)) {
            primes.push_back(cand);
        }
    }
    return primes;
}

u64
generateFirstPrime(int bits, size_t degree)
{
    return generatePrimes(bits, 1, degree).front();
}

} // namespace ark
