/**
 * @file
 * Base conversion (BConv) between RNS prime sets, Eq. 4 of the paper.
 *
 * BConv takes a polynomial's limbs over an input base B and produces
 * limbs over an output base C without leaving RNS:
 *
 *   [P]_C = { sum_j ([P]_{p_j} * phat_j^-1 mod p_j) * (phat_j mod q_i) }_i
 *
 * This is the "fast/approximate" conversion: the result may carry an
 * extra small multiple of prod(B), which CKKS absorbs into noise.
 * The (|C| x |B|) matrix of (phat_j mod q_i) constants is the *base
 * table* held in ARK's BConvU broadcast units; the second stage is the
 * matrix multiply the 1x6 MAC systolic lanes execute (Section V-A).
 * Input and output must be in the coefficient representation.
 */

#pragma once

#include <vector>

#include "rns/poly.h"

namespace ark {

/** Precomputed tables for converting base B -> base C. */
class BaseConverter
{
  public:
    BaseConverter(std::vector<Modulus> in_base,
                  std::vector<Modulus> out_base);

    const std::vector<Modulus> &inBase() const { return in_base_; }
    const std::vector<Modulus> &outBase() const { return out_base_; }

    /**
     * Convert @p in (Coeff rep, limbs over inBase) to a new polynomial
     * with limbs over outBase (Coeff rep). Routed through the fused,
     * cache-blocked tile pass (convertTile); bit-identical to
     * matmulStage(scaleStage(in)).
     */
    RnsPoly convert(const RnsPoly &in) const;

    /**
     * Scratch words a convertTile caller must provide: one tile worth
     * of transposed scaled values, (tileCoeffs() x |B|) <= kTileWords.
     */
    static constexpr size_t kTileWords = 2048;

    /** Coefficients per fused tile (sized so the transposed scratch
     *  stays L1/L2-resident: tileCoeffs() * |B| <= kTileWords). */
    size_t tileCoeffs() const { return tile_coeffs_; }

    /**
     * Fused scale + matmul over the coefficient tile [c0, c1): scales
     * each input limb's tile segment by phat_j^-1 into a TRANSPOSED
     * per-tile scratch (scratch[(c - c0) * |B| + j], so the MAC's
     * inner j loop reads contiguous words instead of striding
     * in.limb(j)[c] across limb rows N words apart), then runs the
     * unrolled base-table MAC into out.limb(i)[c0..c1) for every
     * output limb. @p scratch must hold at least (c1 - c0) * |B|
     * words (kTileWords covers any tile the class sizes). Tiles are
     * independent: callers may process them in any order or in
     * parallel (the kernel backends parallelize over tiles).
     *
     * Defined inline below: every call site passes a stack-local
     * scratch array, and inlining is what lets the compiler prove it
     * aliases nothing — worth ~15% on the MAC.
     */
    void convertTile(const RnsPoly &in, size_t c0, size_t c1,
                     u64 *scratch, RnsPoly &out) const;

    /**
     * First BConv stage only: multiply limb j by phat_j^-1 mod p_j.
     * ARK fuses this stage into the NTTU's BConv-mult unit on the INTT
     * path (Fig. 5); exposed separately so tests and the simulator can
     * account for it there. Compatibility/reference path: convert()
     * no longer materializes this intermediate.
     *
     * The two-stage results draw their buffers from
     * PolyPool::process(); callers that churn conversions should
     * hand spent polys back to that pool (release()) so repeated
     * stages stop re-allocating — nothing releases on their behalf.
     * (The kernel backends use their own per-backend pools and
     * release internally; this only concerns direct two-stage users.)
     */
    RnsPoly scaleStage(const RnsPoly &in) const;

    /** Second BConv stage: the base-table matrix multiply
     *  (compatibility/reference path). */
    RnsPoly matmulStage(const RnsPoly &scaled) const;

    /** Base-table entry (phat_j mod q_i). */
    u64 baseTable(size_t i, size_t j) const
    {
        return base_table_[i * in_base_.size() + j];
    }

    /** Scale-stage constant phat_j^-1 mod p_j (for kernel backends). */
    u64 phatInvModP(size_t j) const { return phat_inv_mod_pj_[j]; }
    /** Shoup companion of phatInvModP. */
    u64 phatInvModPShoup(size_t j) const
    {
        return phat_inv_mod_pj_shoup_[j];
    }

  private:
    std::vector<Modulus> in_base_;
    std::vector<Modulus> out_base_;
    /** phat_j^-1 mod p_j for each input prime. */
    std::vector<u64> phat_inv_mod_pj_;
    std::vector<u64> phat_inv_mod_pj_shoup_;
    /** Row-major (|C| x |B|) base table: phat_j mod q_i. */
    std::vector<u64> base_table_;
    size_t tile_coeffs_ = 0;
};

inline void
BaseConverter::convertTile(const RnsPoly &in, size_t c0, size_t c1,
                           u64 *scratch, RnsPoly &out) const
{
    const size_t nb = in_base_.size();
    const size_t nc = out_base_.size();
    const size_t tile = c1 - c0;

    // Scale stage fused into a transpose: scratch holds the tile in
    // coefficient-major order so the MAC below reads each
    // coefficient's |B| scaled residues as one contiguous row.
    for (size_t j = 0; j < nb; ++j) {
        const Modulus &pj = in_base_[j];
        const u64 s = phat_inv_mod_pj_[j];
        const u64 ss = phat_inv_mod_pj_shoup_[j];
        const u64 *src = in.limb(j) + c0;
        u64 *dst = scratch + j;
        for (size_t c = 0; c < tile; ++c)
            dst[c * nb] = pj.mulShoup(src[c], s, ss);
    }

    // Matmul stage, blocked 2 output limbs x 2 coefficients: each
    // y[j] load feeds two rows' chains and each row load feeds two
    // coefficients' chains (the paper's BConvU streams the same
    // broadcast constant through parallel MAC lanes the same way), so
    // loads per product drop to ~0.5 and the four independent u128
    // chains hide the add-with-carry latency. Every coefficient's own
    // sum still accumulates in reference j order, and regrouping a
    // u128 sum whose true value fits 128 bits is exact — so the
    // result is bit-identical to matmulStage.
    auto tableRow = [&](size_t i, u64 *buf) -> const u64 * {
        // Copy the row to a small local buffer when it fits: the
        // compiler cannot prove base_table_ never aliases dst, and
        // the local copy keeps row loads out of the store-bounded
        // block loop. Wider bases (none of the shipped parameter
        // sets) read the table in place.
        const u64 *row = base_table_.data() + i * nb;
        if (nb > 32)
            return row;
        for (size_t j = 0; j < nb; ++j)
            buf[j] = row[j];
        return buf;
    };
    size_t i = 0;
    for (; i + 2 <= nc; i += 2) {
        const Modulus &q0 = out_base_[i];
        const Modulus &q1 = out_base_[i + 1];
        u64 b0[32], b1[32];
        const u64 *r0 = tableRow(i, b0);
        const u64 *r1 = tableRow(i + 1, b1);
        u64 *d0 = out.limb(i) + c0;
        u64 *d1 = out.limb(i + 1) + c0;
        size_t c = 0;
        for (; c + 2 <= tile; c += 2) {
            const u64 *y0 = scratch + c * nb;
            const u64 *y1 = y0 + nb;
            u128 a00 = 0, a01 = 0, a10 = 0, a11 = 0;
            for (size_t j = 0; j < nb; ++j) {
                const u64 w0 = y0[j], w1 = y1[j];
                a00 += static_cast<u128>(w0) * r0[j];
                a01 += static_cast<u128>(w1) * r0[j];
                a10 += static_cast<u128>(w0) * r1[j];
                a11 += static_cast<u128>(w1) * r1[j];
            }
            d0[c] = q0.reduce(a00);
            d0[c + 1] = q0.reduce(a01);
            d1[c] = q1.reduce(a10);
            d1[c + 1] = q1.reduce(a11);
        }
        for (; c < tile; ++c) {
            const u64 *y = scratch + c * nb;
            u128 a0 = 0, a1 = 0;
            for (size_t j = 0; j < nb; ++j) {
                a0 += static_cast<u128>(y[j]) * r0[j];
                a1 += static_cast<u128>(y[j]) * r1[j];
            }
            d0[c] = q0.reduce(a0);
            d1[c] = q1.reduce(a1);
        }
    }
    for (; i < nc; ++i) {
        const Modulus &qi = out_base_[i];
        u64 buf[32];
        const u64 *row = tableRow(i, buf);
        u64 *dst = out.limb(i) + c0;
        for (size_t c = 0; c < tile; ++c) {
            const u64 *y = scratch + c * nb;
            u128 acc = 0;
            for (size_t j = 0; j < nb; ++j)
                acc += static_cast<u128>(y[j]) * row[j];
            dst[c] = qi.reduce(acc);
        }
    }
}

} // namespace ark
