/**
 * @file
 * Base conversion (BConv) between RNS prime sets, Eq. 4 of the paper.
 *
 * BConv takes a polynomial's limbs over an input base B and produces
 * limbs over an output base C without leaving RNS:
 *
 *   [P]_C = { sum_j ([P]_{p_j} * phat_j^-1 mod p_j) * (phat_j mod q_i) }_i
 *
 * This is the "fast/approximate" conversion: the result may carry an
 * extra small multiple of prod(B), which CKKS absorbs into noise.
 * The (|C| x |B|) matrix of (phat_j mod q_i) constants is the *base
 * table* held in ARK's BConvU broadcast units; the second stage is the
 * matrix multiply the 1x6 MAC systolic lanes execute (Section V-A).
 * Input and output must be in the coefficient representation.
 */

#pragma once

#include <vector>

#include "rns/poly.h"

namespace ark {

/** Precomputed tables for converting base B -> base C. */
class BaseConverter
{
  public:
    BaseConverter(std::vector<Modulus> in_base,
                  std::vector<Modulus> out_base);

    const std::vector<Modulus> &inBase() const { return in_base_; }
    const std::vector<Modulus> &outBase() const { return out_base_; }

    /**
     * Convert @p in (Coeff rep, limbs over inBase) to a new polynomial
     * with limbs over outBase (Coeff rep).
     */
    RnsPoly convert(const RnsPoly &in) const;

    /**
     * First BConv stage only: multiply limb j by phat_j^-1 mod p_j.
     * ARK fuses this stage into the NTTU's BConv-mult unit on the INTT
     * path (Fig. 5); exposed separately so tests and the simulator can
     * account for it there.
     */
    RnsPoly scaleStage(const RnsPoly &in) const;

    /** Second BConv stage: the base-table matrix multiply. */
    RnsPoly matmulStage(const RnsPoly &scaled) const;

    /** Base-table entry (phat_j mod q_i). */
    u64 baseTable(size_t i, size_t j) const
    {
        return base_table_[i * in_base_.size() + j];
    }

    /** Scale-stage constant phat_j^-1 mod p_j (for kernel backends). */
    u64 phatInvModP(size_t j) const { return phat_inv_mod_pj_[j]; }
    /** Shoup companion of phatInvModP. */
    u64 phatInvModPShoup(size_t j) const
    {
        return phat_inv_mod_pj_shoup_[j];
    }

  private:
    std::vector<Modulus> in_base_;
    std::vector<Modulus> out_base_;
    /** phat_j^-1 mod p_j for each input prime. */
    std::vector<u64> phat_inv_mod_pj_;
    std::vector<u64> phat_inv_mod_pj_shoup_;
    /** Row-major (|C| x |B|) base table: phat_j mod q_i. */
    std::vector<u64> base_table_;
};

} // namespace ark
