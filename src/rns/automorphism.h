/**
 * @file
 * Galois automorphisms psi_r : X -> X^(5^r) on ring polynomials.
 *
 * HRot rotates message slots by applying an automorphism to the
 * ciphertext polynomials (paper Eq. 5) followed by key-switching. In
 * the coefficient representation the map sends coefficient i to
 * position (i * g mod N) with a sign flip when i * g mod 2N >= N.
 * In the evaluation representation it is a pure permutation of the
 * evaluation points (which ARK's AutoU implements as 8 stages of
 * recursive internal permutations).
 */

#pragma once

#include <cstddef>

#include <vector>

#include "rns/poly.h"

namespace ark {

/** Galois element for rotation by r slots: 5^r mod 2N (r may be negative
 *  meaning rotate right). */
u64 galoisElt(i64 r, size_t degree);

/** Galois element for complex conjugation: 2N - 1. */
u64 galoisEltConjugate(size_t degree);

/**
 * Precomputed automorphism for one Galois element over degree-N rings.
 * Holds the coefficient-domain index/sign map and the evaluation-domain
 * permutation for the bit-reversed NTT ordering used by NttTables.
 */
class Automorphism
{
  public:
    Automorphism(u64 galois_elt, size_t degree);

    u64 galoisElt() const { return g_; }

    /** Apply to a polynomial in Coeff rep (out-of-place). */
    void applyCoeff(const u64 *in, u64 *out, const Modulus &q) const;

    /** Apply to a polynomial in Eval rep (out-of-place, permutation). */
    void applyEval(const u64 *in, u64 *out) const;

    /** Apply to every limb of @p p, returning a new polynomial. */
    RnsPoly apply(const RnsPoly &p,
                  const std::vector<Modulus> &moduli) const;

  private:
    u64 g_;
    size_t n_;
    /** Coeff rep: input i maps to coeff_index_[i], negated if flag set. */
    std::vector<u32> coeff_index_;
    std::vector<u8> coeff_negate_;
    /** Eval rep: out[j] = in[eval_source_[j]]. */
    std::vector<u32> eval_source_;
};

} // namespace ark
