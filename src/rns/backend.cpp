#include "rns/backend.h"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "rns/simd_kernels.h"

namespace ark {

/**
 * One thread's private tally block. Only the owning thread writes it
 * (via relaxed fetch_add, so a concurrent stats() merge is race-free);
 * every other thread only reads. Shards live as long as the backend.
 */
struct KernelBackend::StatsShard
{
    struct Counter
    {
        std::atomic<u64> calls{0};
        std::atomic<u64> limbs{0};
        std::atomic<u64> words{0};
        std::atomic<u64> mults{0};
    };

    /** Registering thread; lets a thread whose cache entry was
     *  evicted re-adopt its shard instead of leaking a duplicate. */
    std::thread::id owner;

    std::array<Counter, kNumKernelOps> counters{};
    std::atomic<u64> evk_words{0};
    std::atomic<u64> plaintext_words{0};
};

namespace {

void
checkBinary(const RnsPoly &a, const RnsPoly &b,
            const std::vector<Modulus> &moduli, const RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(b) && a.sameShape(r),
               "operand shape mismatch");
    ARK_ASSERT(a.rep() == b.rep(), "operand representation mismatch");
    ARK_ASSERT(moduli.size() >= a.numLimbs(), "not enough moduli");
}

/** Butterfly mult count of one N-point (I)NTT limb. */
u64
nttMults(size_t n)
{
    u64 m = 0;
    for (size_t s = n; s > 1; s >>= 1)
        ++m;
    return static_cast<u64>(n / 2) * m;
}

} // namespace

// ---------------------------------------------------------------------------
// Element-wise limb kernels. Loop bodies are the reference scalar code;
// the executor (run) decides how limb jobs map onto threads, which is
// the only difference between backends — hence bit-exact parity.
// ---------------------------------------------------------------------------

void
KernelBackend::add(const RnsPoly &a, const RnsPoly &b,
                   const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    const size_t n = a.degree();
    recordStats(KernelOp::Add, a.numLimbs(), 3 * a.numLimbs() * n, 0);
    run(a.numLimbs(), [&](size_t l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = addMod(pa[i], pb[i], q);
    });
    r.setRep(a.rep());
}

void
KernelBackend::sub(const RnsPoly &a, const RnsPoly &b,
                   const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    const size_t n = a.degree();
    recordStats(KernelOp::Sub, a.numLimbs(), 3 * a.numLimbs() * n, 0);
    run(a.numLimbs(), [&](size_t l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = subMod(pa[i], pb[i], q);
    });
    r.setRep(a.rep());
}

void
KernelBackend::neg(const RnsPoly &a, const std::vector<Modulus> &moduli,
                   RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    const size_t n = a.degree();
    recordStats(KernelOp::Neg, a.numLimbs(), 2 * a.numLimbs() * n, 0);
    run(a.numLimbs(), [&](size_t l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = pa[i] == 0 ? 0 : q - pa[i];
    });
    r.setRep(a.rep());
}

void
KernelBackend::mulEval(const RnsPoly &a, const RnsPoly &b,
                       const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    ARK_ASSERT(a.rep() == Rep::Eval,
               "pointwise multiply requires evaluation representation");
    const size_t n = a.degree();
    recordStats(KernelOp::MulEval, a.numLimbs(),
                  3 * a.numLimbs() * n, a.numLimbs() * n);
    run(a.numLimbs(), [&](size_t l) {
        const Modulus &q = moduli[l];
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.mul(pa[i], pb[i]);
    });
    r.setRep(Rep::Eval);
}

void
KernelBackend::mulAccEval(const RnsPoly &a, const RnsPoly &b,
                          const std::vector<Modulus> &moduli, RnsPoly &r)
{
    checkBinary(a, b, moduli, r);
    ARK_ASSERT(a.rep() == Rep::Eval && r.rep() == Rep::Eval,
               "MAC requires evaluation representation");
    const size_t n = a.degree();
    recordStats(KernelOp::MulAccEval, a.numLimbs(),
                  4 * a.numLimbs() * n, a.numLimbs() * n);
    run(a.numLimbs(), [&](size_t l) {
        const Modulus &q = moduli[l];
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.add(pr[i], q.mul(pa[i], pb[i]));
    });
}

void
KernelBackend::mulScalar(const RnsPoly &a,
                         const std::vector<u64> &scalar_per_limb,
                         const std::vector<Modulus> &moduli, RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    ARK_ASSERT(scalar_per_limb.size() >= a.numLimbs(), "missing scalars");
    const size_t n = a.degree();
    recordStats(KernelOp::MulScalar, a.numLimbs(),
                  2 * a.numLimbs() * n, a.numLimbs() * n);
    run(a.numLimbs(), [&](size_t l) {
        const Modulus &q = moduli[l];
        const u64 s = scalar_per_limb[l];
        const u64 ss = q.shoupPrecompute(s);
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.mulShoup(pa[i], s, ss);
    });
    r.setRep(a.rep());
}

void
KernelBackend::addScalar(const RnsPoly &a,
                         const std::vector<u64> &scalar_per_limb,
                         const std::vector<Modulus> &moduli, RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    const size_t n = a.degree();
    recordStats(KernelOp::AddScalar, a.numLimbs(),
                  2 * a.numLimbs() * n, 0);
    run(a.numLimbs(), [&](size_t l) {
        const u64 q = moduli[l].value();
        const u64 s = scalar_per_limb[l];
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = addMod(pa[i], s, q);
    });
    r.setRep(a.rep());
}

void
KernelBackend::subMulScalar(const RnsPoly &a, const RnsPoly &b,
                            const std::vector<u64> &scalar_per_limb,
                            const std::vector<Modulus> &moduli, RnsPoly &r)
{
    const size_t limbs = r.numLimbs();
    ARK_ASSERT(a.numLimbs() >= limbs && b.numLimbs() >= limbs,
               "operands carry fewer limbs than the result");
    ARK_ASSERT(a.degree() == r.degree() && b.degree() == r.degree(),
               "degree mismatch");
    ARK_ASSERT(a.rep() == b.rep(), "operand representation mismatch");
    ARK_ASSERT(scalar_per_limb.size() >= limbs && moduli.size() >= limbs,
               "missing scalars or moduli");
    const size_t n = r.degree();
    recordStats(KernelOp::SubMulScalar, limbs, 3 * limbs * n,
                  limbs * n);
    run(limbs, [&](size_t l) {
        const Modulus &q = moduli[l];
        const u64 s = scalar_per_limb[l];
        const u64 ss = q.shoupPrecompute(s);
        const u64 *pa = a.limb(l), *pb = b.limb(l);
        u64 *pr = r.limb(l);
        for (size_t i = 0; i < n; ++i)
            pr[i] = q.mulShoup(q.sub(pa[i], pb[i]), s, ss);
    });
    r.setRep(a.rep());
}

void
KernelBackend::monomialMul(const RnsPoly &a, size_t shift,
                           const std::vector<Modulus> &moduli, RnsPoly &r)
{
    ARK_ASSERT(a.sameShape(r), "operand shape mismatch");
    ARK_ASSERT(a.rep() == Rep::Coeff,
               "monomial multiply needs the coefficient representation");
    const size_t n = a.degree();
    ARK_ASSERT(shift < n, "shift must be < N");
    recordStats(KernelOp::MonomialMul, a.numLimbs(),
                  2 * a.numLimbs() * n, 0);
    run(a.numLimbs(), [&](size_t l) {
        const u64 q = moduli[l].value();
        const u64 *pa = a.limb(l);
        u64 *pr = r.limb(l);
        // X^shift * X^k = X^(k+shift), negated when it wraps past N.
        for (size_t k = 0; k + shift < n; ++k)
            pr[k + shift] = pa[k];
        for (size_t k = n - shift; k < n; ++k)
            pr[k + shift - n] = pa[k] == 0 ? 0 : q - pa[k];
    });
    r.setRep(Rep::Coeff);
}

void
KernelBackend::limbEmbed(const std::vector<u64> &src, const Modulus &src_q,
                         const std::vector<Modulus> &out_moduli,
                         RnsPoly &out)
{
    const size_t n = out.degree();
    ARK_ASSERT(src.size() == n, "source limb length mismatch");
    ARK_ASSERT(out_moduli.size() >= out.numLimbs(), "not enough moduli");
    ARK_ASSERT(out.rep() == Rep::Coeff, "limbEmbed produces Coeff rep");
    const u64 q0 = src_q.value();
    const u64 half = q0 / 2;
    recordStats(KernelOp::LimbEmbed, out.numLimbs(),
                  2 * out.numLimbs() * n, 0);
    run(out.numLimbs(), [&](size_t l) {
        const u64 q = out_moduli[l].value();
        const u64 q0_mod = q0 % q;
        u64 *dst = out.limb(l);
        for (size_t i = 0; i < n; ++i) {
            const u64 v = src[i];
            u64 rr = v % q;
            if (v > half) // negative centered residue: subtract q0
                rr = subMod(rr, q0_mod, q);
            dst[i] = rr;
        }
    });
}

void
KernelBackend::evkMulAcc(const RnsPoly &digit, const RnsPoly &evk_b,
                         const RnsPoly &evk_a, size_t nq, size_t full_nq,
                         const std::vector<Modulus> &key_moduli,
                         RnsPoly &acc_b, RnsPoly &acc_a)
{
    const size_t limbs = digit.numLimbs();
    const size_t n = digit.degree();
    ARK_ASSERT(digit.rep() == Rep::Eval && acc_b.rep() == Rep::Eval &&
                   acc_a.rep() == Rep::Eval,
               "evk MAC requires evaluation representation");
    ARK_ASSERT(acc_b.sameShape(digit) && acc_a.sameShape(digit),
               "accumulator shape mismatch");
    ARK_ASSERT(limbs >= nq && key_moduli.size() >= limbs,
               "digit limb count inconsistent with nq");
    ARK_ASSERT(evk_b.numLimbs() == full_nq + (limbs - nq) &&
                   evk_b.sameShape(evk_a),
               "evk polys must span the full key basis");
    obs::ScopedSpan span("evk_mul_acc");
    recordStats(KernelOp::EvkMulAcc, limbs, 7 * limbs * n,
                  2 * limbs * n);
    noteEvkWords(2 * limbs * n); // evk operand stream
    run(limbs, [&](size_t l) {
        // evk polys span the full basis; select the matching limb.
        const size_t evk_limb = l < nq ? l : full_nq + (l - nq);
        evkMulAccLimbKernel(key_moduli[l], digit.limb(l),
                            evk_b.limb(evk_limb), evk_a.limb(evk_limb),
                            acc_b.limb(l), acc_a.limb(l), n);
    });
}

// ---------------------------------------------------------------------------
// Per-job kernel bodies (reference scalar defaults). SimdBackend
// overrides these; Scalar/Parallel run them as-is.
// ---------------------------------------------------------------------------

void
KernelBackend::nttForwardLimbKernel(u64 *limb,
                                    const NttTables &table) const
{
    table.forward(limb);
}

void
KernelBackend::nttInverseLimbKernel(u64 *limb,
                                    const NttTables &table) const
{
    table.inverse(limb);
}

void
KernelBackend::bconvTileKernel(const BaseConverter &bc, const RnsPoly &in,
                               size_t c0, size_t c1, u64 *scratch,
                               RnsPoly &out) const
{
    bc.convertTile(in, c0, c1, scratch, out);
}

void
KernelBackend::evkMulAccLimbKernel(const Modulus &m, const u64 *d,
                                   const u64 *kb, const u64 *ka, u64 *ab,
                                   u64 *aa, size_t n) const
{
    for (size_t i = 0; i < n; ++i) {
        ab[i] = m.add(ab[i], m.mul(d[i], kb[i]));
        aa[i] = m.add(aa[i], m.mul(d[i], ka[i]));
    }
}

// ---------------------------------------------------------------------------
// NTT kernels
// ---------------------------------------------------------------------------

void
KernelBackend::nttForward(RnsPoly &p,
                          const std::vector<const NttTables *> &tables)
{
    ARK_ASSERT(p.rep() == Rep::Coeff, "forward NTT needs Coeff rep");
    ARK_ASSERT(tables.size() >= p.numLimbs(), "not enough NTT tables");
    const size_t n = p.degree();
    obs::ScopedSpan span("ntt_fwd");
    recordStats(KernelOp::NttForward, p.numLimbs(),
                  2 * p.numLimbs() * n, p.numLimbs() * nttMults(n));
    run(p.numLimbs(), [&](size_t l) {
        nttForwardLimbKernel(p.limb(l), *tables[l]);
    });
    p.setRep(Rep::Eval);
}

void
KernelBackend::nttInverse(RnsPoly &p,
                          const std::vector<const NttTables *> &tables)
{
    ARK_ASSERT(p.rep() == Rep::Eval, "inverse NTT needs Eval rep");
    ARK_ASSERT(tables.size() >= p.numLimbs(), "not enough NTT tables");
    const size_t n = p.degree();
    obs::ScopedSpan span("ntt_inv");
    recordStats(KernelOp::NttInverse, p.numLimbs(),
                  2 * p.numLimbs() * n,
                  p.numLimbs() * (nttMults(n) + n));
    run(p.numLimbs(), [&](size_t l) {
        nttInverseLimbKernel(p.limb(l), *tables[l]);
    });
    p.setRep(Rep::Coeff);
}

void
KernelBackend::nttForward(RnsPoly &p, const std::vector<NttTables> &tables)
{
    std::vector<const NttTables *> ptrs(p.numLimbs());
    for (size_t l = 0; l < p.numLimbs(); ++l)
        ptrs[l] = &tables[l];
    nttForward(p, ptrs);
}

void
KernelBackend::nttInverse(RnsPoly &p, const std::vector<NttTables> &tables)
{
    std::vector<const NttTables *> ptrs(p.numLimbs());
    for (size_t l = 0; l < p.numLimbs(); ++l)
        ptrs[l] = &tables[l];
    nttInverse(p, ptrs);
}

void
KernelBackend::nttForwardLimb(u64 *limb, const NttTables &table)
{
    const size_t n = table.degree();
    recordStats(KernelOp::NttForward, 1, 2 * n, nttMults(n));
    nttForwardLimbKernel(limb, table);
}

void
KernelBackend::nttInverseLimb(u64 *limb, const NttTables &table)
{
    const size_t n = table.degree();
    recordStats(KernelOp::NttInverse, 1, 2 * n, nttMults(n) + n);
    nttInverseLimbKernel(limb, table);
}

// ---------------------------------------------------------------------------
// BConv, automorphism, and the fused key-switch digit path
// ---------------------------------------------------------------------------

RnsPoly
KernelBackend::bconv(const BaseConverter &bc, const RnsPoly &in)
{
    ARK_ASSERT(in.rep() == Rep::Coeff, "BConv needs Coeff rep");
    ARK_ASSERT(in.numLimbs() == bc.inBase().size(),
               "input limb count must match input base");
    const size_t nb = bc.inBase().size();
    const size_t nc = bc.outBase().size();
    const size_t n = in.degree();
    obs::ScopedSpan span("bconv");
    recordStats(KernelOp::BConv, nb + nc, (nb + nc) * n,
                  nb * n + nb * nc * n);

    // Fused scale + matmul, one coefficient tile per job: each tile's
    // transposed scratch lives on the executing thread's stack, the
    // output column blocks are disjoint, and the per-coefficient math
    // matches the two-stage reference bit for bit.
    RnsPoly out = pool_.acquire(n, nc, Rep::Coeff);
    const size_t tile = bc.tileCoeffs();
    const size_t num_tiles = (n + tile - 1) / tile;
    run(num_tiles, [&](size_t t) {
        alignas(64) u64 scratch[BaseConverter::kTileWords];
        const size_t c0 = t * tile;
        bconvTileKernel(bc, in, c0, std::min(c0 + tile, n), scratch,
                        out);
    });
    return out;
}

RnsPoly
KernelBackend::automorphism(const Automorphism &am, const RnsPoly &p,
                            const std::vector<Modulus> &moduli)
{
    const size_t n = p.degree();
    obs::ScopedSpan span("automorphism");
    recordStats(KernelOp::Automorphism, p.numLimbs(),
                  2 * p.numLimbs() * n, 0);
    // Pooled: apply{Coeff,Eval} write every output position (the index
    // map is a permutation), so stale buffer words never survive.
    RnsPoly out = pool_.acquire(n, p.numLimbs(), p.rep());
    run(p.numLimbs(), [&](size_t l) {
        if (p.rep() == Rep::Coeff)
            am.applyCoeff(p.limb(l), out.limb(l), moduli[l]);
        else
            am.applyEval(p.limb(l), out.limb(l));
    });
    return out;
}

RnsPoly
KernelBackend::nttBconvNtt(const RnsPoly &digit,
                           const std::vector<const NttTables *> &in_tables,
                           const BaseConverter &bc,
                           const std::vector<const NttTables *> &out_tables)
{
    const size_t nb = bc.inBase().size();
    const size_t nc = bc.outBase().size();
    const size_t n = digit.degree();
    ARK_ASSERT(digit.rep() == Rep::Eval,
               "fused digit path starts from the evaluation rep");
    ARK_ASSERT(digit.numLimbs() == nb, "digit limbs must match in-base");
    ARK_ASSERT(in_tables.size() >= nb && out_tables.size() >= nc,
               "not enough NTT tables");
    // Tally the fused call itself, then credit the component counters
    // so FU-level consumers (simulator) see the right per-FU split.
    obs::ScopedSpan span("ntt_bconv_ntt");
    recordStats(KernelOp::NttBconvNtt, nb + nc, 0, 0);
    recordStats(KernelOp::NttInverse, nb, 2 * nb * n,
                  nb * (nttMults(n) + n));
    recordStats(KernelOp::BConv, nb + nc, (nb + nc) * n,
                  nb * n + nb * nc * n);
    recordStats(KernelOp::NttForward, nc, 2 * nc * n,
                  nc * nttMults(n));

    // Stage 1: INTT each digit limb into one pooled scratch matrix
    // (the BConv scale now rides inside the tile pass, where the
    // NTTU's BConv-mult unit applies it in hardware, Fig. 5).
    RnsPoly scaled = pool_.acquire(n, nb, Rep::Coeff);
    run(nb, [&](size_t j) {
        u64 *dst = scaled.limb(j);
        std::memcpy(dst, digit.limb(j), n * sizeof(u64));
        nttInverseLimbKernel(dst, *in_tables[j]);
    });

    // Stage 2: fused, cache-blocked scale+MAC over coefficient tiles
    // (see BaseConverter::convertTile) — no materialized scaled
    // polynomial beyond the INTT output already in hand.
    RnsPoly out = pool_.acquire(n, nc, Rep::Coeff);
    const size_t tile = bc.tileCoeffs();
    const size_t num_tiles = (n + tile - 1) / tile;
    run(num_tiles, [&](size_t t) {
        alignas(64) u64 scratch[BaseConverter::kTileWords];
        const size_t c0 = t * tile;
        bconvTileKernel(bc, scaled, c0, std::min(c0 + tile, n), scratch,
                        out);
    });
    pool_.release(std::move(scaled));

    // Stage 3: forward-NTT each produced limb in place.
    run(nc, [&](size_t i) {
        nttForwardLimbKernel(out.limb(i), *out_tables[i]);
    });
    out.setRep(Rep::Eval);
    return out;
}

// ---------------------------------------------------------------------------
// Per-thread measured-tally shards
// ---------------------------------------------------------------------------

namespace {
std::atomic<u64> next_backend_id{1};
} // namespace

KernelBackend::KernelBackend() : instance_id_(next_backend_id.fetch_add(1))
{
}

KernelBackend::~KernelBackend() = default;

KernelBackend::StatsShard &
KernelBackend::shard() const
{
    struct CacheEntry
    {
        u64 id;
        StatsShard *shard;
    };
    // Per-thread cache of (backend instance id -> shard). Entries for
    // destroyed backends go stale but are never matched again (ids are
    // unique), and the occasional flush only costs a re-lookup.
    thread_local std::vector<CacheEntry> cache;
    for (const auto &e : cache) {
        if (e.id == instance_id_)
            return *e.shard;
    }
    std::lock_guard<std::mutex> lk(shards_m_);
    // Re-adopt this thread's shard if the cache entry was evicted —
    // registering a fresh one would grow shards_ unboundedly in a
    // long-lived backend. (An OS-recycled thread id can only match a
    // dead owner's shard, which is then safe to adopt.)
    StatsShard *s = nullptr;
    const std::thread::id self = std::this_thread::get_id();
    for (const auto &existing : shards_) {
        if (existing->owner == self) {
            s = existing.get();
            break;
        }
    }
    if (s == nullptr) {
        shards_.push_back(std::make_unique<StatsShard>());
        s = shards_.back().get();
        s->owner = self;
    }
    if (cache.size() >= 256)
        cache.clear();
    cache.push_back({instance_id_, s});
    return *s;
}

void
KernelBackend::recordStats(KernelOp op, u64 limbs, u64 words, u64 mults)
{
    auto &c = shard().counters[static_cast<size_t>(op)];
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.limbs.fetch_add(limbs, std::memory_order_relaxed);
    c.words.fetch_add(words, std::memory_order_relaxed);
    c.mults.fetch_add(mults, std::memory_order_relaxed);
}

void
KernelBackend::noteEvkWords(u64 words)
{
    shard().evk_words.fetch_add(words, std::memory_order_relaxed);
}

void
KernelBackend::notePlaintextWords(u64 words)
{
    shard().plaintext_words.fetch_add(words, std::memory_order_relaxed);
}

KernelStats
KernelBackend::stats() const
{
    std::lock_guard<std::mutex> lk(shards_m_);
    KernelStats out;
    for (const auto &s : shards_) {
        for (size_t i = 0; i < kNumKernelOps; ++i) {
            const auto &c = s->counters[i];
            out.counters[i].calls +=
                c.calls.load(std::memory_order_relaxed);
            out.counters[i].limbs +=
                c.limbs.load(std::memory_order_relaxed);
            out.counters[i].words +=
                c.words.load(std::memory_order_relaxed);
            out.counters[i].mults +=
                c.mults.load(std::memory_order_relaxed);
        }
        out.evk_words += s->evk_words.load(std::memory_order_relaxed);
        out.plaintext_words +=
            s->plaintext_words.load(std::memory_order_relaxed);
    }
    return out;
}

void
KernelBackend::resetStats()
{
    std::lock_guard<std::mutex> lk(shards_m_);
    for (const auto &s : shards_) {
        for (auto &c : s->counters) {
            c.calls.store(0, std::memory_order_relaxed);
            c.limbs.store(0, std::memory_order_relaxed);
            c.words.store(0, std::memory_order_relaxed);
            c.mults.store(0, std::memory_order_relaxed);
        }
        s->evk_words.store(0, std::memory_order_relaxed);
        s->plaintext_words.store(0, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------------------------
// Engines and factory
// ---------------------------------------------------------------------------

void
ScalarBackend::run(size_t jobs, const std::function<void(size_t)> &fn) const
{
    for (size_t i = 0; i < jobs; ++i)
        fn(i);
}

SimdBackend::SimdBackend(SimdTier max_tier)
    : kernels_(simdKernels(
          std::min(simdTierFromEnv(max_tier), detectSimdTier())))
{
}

SimdTier
SimdBackend::tier() const
{
    return kernels_.tier;
}

void
SimdBackend::run(size_t jobs, const std::function<void(size_t)> &fn) const
{
    for (size_t i = 0; i < jobs; ++i)
        fn(i);
}

namespace {

// The vector NTT kernels run an approximate-Shoup butterfly whose lazy
// values reach 8q, so they need 8q < 2^63 (and the AVX2 variant's
// unbiased signed compares need the same headroom). All shipped
// parameter sets use <= 60-bit primes; a wider modulus falls back to
// the scalar tables, which stay exact for any q < 2^62.
inline bool
simdNttSafe(const NttTables &table)
{
    return table.modulus().value() < (1ULL << 60);
}

} // namespace

void
SimdBackend::nttForwardLimbKernel(u64 *limb, const NttTables &table) const
{
    if (kernels_.ntt_forward != nullptr &&
        table.degree() >= kernels_.min_ntt_degree && simdNttSafe(table))
        kernels_.ntt_forward(limb, table);
    else
        table.forward(limb);
}

void
SimdBackend::nttInverseLimbKernel(u64 *limb, const NttTables &table) const
{
    if (kernels_.ntt_inverse != nullptr &&
        table.degree() >= kernels_.min_ntt_degree && simdNttSafe(table))
        kernels_.ntt_inverse(limb, table);
    else
        table.inverse(limb);
}

void
SimdBackend::bconvTileKernel(const BaseConverter &bc, const RnsPoly &in,
                             size_t c0, size_t c1, u64 *scratch,
                             RnsPoly &out) const
{
    if (kernels_.bconv_tile != nullptr)
        kernels_.bconv_tile(bc, in, c0, c1, scratch, out);
    else
        bc.convertTile(in, c0, c1, scratch, out);
}

void
SimdBackend::evkMulAccLimbKernel(const Modulus &m, const u64 *d,
                                 const u64 *kb, const u64 *ka, u64 *ab,
                                 u64 *aa, size_t n) const
{
    if (kernels_.evk_mac_limb != nullptr) {
        kernels_.evk_mac_limb(m, d, kb, ka, ab, aa, n);
        return;
    }
    KernelBackend::evkMulAccLimbKernel(m, d, kb, ka, ab, aa, n);
}

ParallelBackend::ParallelBackend(size_t num_threads)
    : pool_(std::make_unique<ThreadPool>(num_threads))
{
}

ParallelBackend::~ParallelBackend() = default;

size_t
ParallelBackend::threads() const
{
    return pool_->threads();
}

void
ParallelBackend::run(size_t jobs,
                     const std::function<void(size_t)> &fn) const
{
    pool_->parallelFor(jobs, fn);
}

std::unique_ptr<KernelBackend>
makeKernelBackend(BackendKind kind, size_t num_threads)
{
    switch (kind) {
      case BackendKind::Scalar:
        return std::make_unique<ScalarBackend>();
      case BackendKind::Parallel:
        return std::make_unique<ParallelBackend>(num_threads);
      case BackendKind::Simd:
        return std::make_unique<SimdBackend>();
    }
    ARK_PANIC("unreachable");
}

bool
parseBackendKind(const char *name, BackendKind &out)
{
    if (std::strcmp(name, "scalar") == 0) {
        out = BackendKind::Scalar;
        return true;
    }
    if (std::strcmp(name, "parallel") == 0) {
        out = BackendKind::Parallel;
        return true;
    }
    if (std::strcmp(name, "simd") == 0) {
        out = BackendKind::Simd;
        return true;
    }
    return false;
}

bool
parseBackendThreads(const char *s, size_t &out)
{
    if (s == nullptr || *s == '\0')
        return false;
    // Digits only: strtoul would silently accept "-1" (wrapping to a
    // huge count), leading signs, and whitespace — all junk here.
    for (const char *p = s; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (errno == ERANGE || v > kMaxBackendThreads)
        return false;
    out = static_cast<size_t>(v);
    return true;
}

BackendKind
backendKindFromEnv(BackendKind fallback)
{
    const char *env = std::getenv("ARK_BACKEND");
    if (env == nullptr || *env == '\0')
        return fallback;
    BackendKind kind;
    if (!parseBackendKind(env, kind)) {
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "invalid ARK_BACKEND '%s' (expected 'scalar', "
                      "'parallel', or 'simd')",
                      env);
        ARK_FATAL(msg);
    }
    return kind;
}

size_t
backendThreadsFromEnv(size_t fallback)
{
    const char *env = std::getenv("ARK_THREADS");
    if (env == nullptr || *env == '\0')
        return fallback;
    size_t threads = 0;
    if (!parseBackendThreads(env, threads)) {
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "invalid ARK_THREADS '%s' (expected an integer in "
                      "[0, %zu]; 0 = hardware concurrency)",
                      env, kMaxBackendThreads);
        ARK_FATAL(msg);
    }
    return threads;
}

KernelBackend &
processBackend()
{
    static std::unique_ptr<KernelBackend> backend = makeKernelBackend(
        backendKindFromEnv(BackendKind::Scalar),
        backendThreadsFromEnv(0));
    return *backend;
}

} // namespace ark
