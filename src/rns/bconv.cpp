#include "rns/bconv.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "rns/poly_pool.h"

namespace ark {

BaseConverter::BaseConverter(std::vector<Modulus> in_base,
                             std::vector<Modulus> out_base)
    : in_base_(std::move(in_base)), out_base_(std::move(out_base))
{
    const size_t nb = in_base_.size();
    const size_t nc = out_base_.size();
    ARK_ASSERT(nb > 0 && nc > 0, "empty base");
    // Accumulating up to 256 products of two <2^60 words stays inside
    // 128 bits; all ARK parameter sets have |B| <= 30 input limbs.
    // Also guarantees tileCoeffs() >= 8.
    ARK_ASSERT(nb <= 256, "too many input limbs for lazy accumulation");
    tile_coeffs_ = std::max<size_t>(kTileWords / nb, 1) & ~size_t(7);
    tile_coeffs_ = std::max<size_t>(tile_coeffs_, 8);

    phat_inv_mod_pj_.resize(nb);
    phat_inv_mod_pj_shoup_.resize(nb);
    base_table_.resize(nc * nb);

    for (size_t j = 0; j < nb; ++j) {
        const Modulus &pj = in_base_[j];
        // phat_j mod p_j = prod_{k != j} p_k mod p_j.
        u64 phat_mod_pj = 1;
        for (size_t k = 0; k < nb; ++k) {
            if (k != j)
                phat_mod_pj = pj.mul(phat_mod_pj, in_base_[k].value() %
                                                      pj.value());
        }
        u64 inv = pj.inv(phat_mod_pj);
        phat_inv_mod_pj_[j] = inv;
        phat_inv_mod_pj_shoup_[j] = pj.shoupPrecompute(inv);

        for (size_t i = 0; i < nc; ++i) {
            const Modulus &qi = out_base_[i];
            u64 phat_mod_qi = 1;
            for (size_t k = 0; k < nb; ++k) {
                if (k != j)
                    phat_mod_qi = qi.mul(phat_mod_qi,
                                         in_base_[k].value() % qi.value());
            }
            base_table_[i * nb + j] = phat_mod_qi;
        }
    }
}

RnsPoly
BaseConverter::scaleStage(const RnsPoly &in) const
{
    ARK_ASSERT(in.rep() == Rep::Coeff, "BConv needs Coeff rep");
    ARK_ASSERT(in.numLimbs() == in_base_.size(),
               "input limb count must match input base");
    const size_t n = in.degree();
    // Pooled: every word is written below, so the stale contents of a
    // recycled buffer are never observable.
    RnsPoly scaled =
        PolyPool::process().acquire(n, in_base_.size(), Rep::Coeff);
    for (size_t j = 0; j < in_base_.size(); ++j) {
        const Modulus &pj = in_base_[j];
        const u64 s = phat_inv_mod_pj_[j];
        const u64 ss = phat_inv_mod_pj_shoup_[j];
        const u64 *src = in.limb(j);
        u64 *dst = scaled.limb(j);
        for (size_t c = 0; c < n; ++c)
            dst[c] = pj.mulShoup(src[c], s, ss);
    }
    return scaled;
}

RnsPoly
BaseConverter::matmulStage(const RnsPoly &scaled) const
{
    // Frozen pre-PR reference kernel (limb-strided MAC, pre-PR
    // Barrett correction) kept for parity tests and lazy-vs-strict
    // benchmarking, like NttTables::forwardStrict. Bit-identical to
    // the fused tile path by construction.
    const size_t nb = in_base_.size();
    const size_t nc = out_base_.size();
    const size_t n = scaled.degree();

    RnsPoly out = PolyPool::process().acquire(n, nc, Rep::Coeff);
    for (size_t i = 0; i < nc; ++i) {
        const Modulus &qi = out_base_[i];
        u64 *dst = out.limb(i);
        for (size_t c = 0; c < n; ++c) {
            u128 acc = 0;
            for (size_t j = 0; j < nb; ++j) {
                u64 y = scaled.limb(j)[c];
                // y < p_j may exceed q_i; the MAC multiplies raw words
                // and the final Barrett reduction handles the excess.
                acc += static_cast<u128>(y) * base_table_[i * nb + j];
            }
            dst[c] = qi.reduceReference(acc);
        }
    }
    return out;
}

RnsPoly
BaseConverter::convert(const RnsPoly &in) const
{
    ARK_ASSERT(in.rep() == Rep::Coeff, "BConv needs Coeff rep");
    ARK_ASSERT(in.numLimbs() == in_base_.size(),
               "input limb count must match input base");
    const size_t n = in.degree();
    RnsPoly out =
        PolyPool::process().acquire(n, out_base_.size(), Rep::Coeff);
    alignas(64) u64 scratch[kTileWords];
    const size_t tile = tile_coeffs_;
    for (size_t c0 = 0; c0 < n; c0 += tile)
        convertTile(in, c0, std::min(c0 + tile, n), scratch, out);
    return out;
}

} // namespace ark
