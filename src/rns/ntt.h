/**
 * @file
 * Negacyclic number-theoretic transform over one RNS prime.
 *
 * Implements the in-place iterative NTT with Shoup-precomputed twiddle
 * factors: Cooley-Tukey butterflies (bit-reversed twiddles) for the
 * forward transform and Gentleman-Sande for the inverse, folding the
 * psi / psi^-1 powers into the twiddles so the transform is negacyclic
 * (multiplication in Z_q[X]/(X^N + 1)).
 *
 * The hot transforms use Harvey lazy reduction: forward butterfly
 * values stay in [0, 4q) (q < 2^62, so 4q fits a word) with no
 * per-butterfly conditional correction, and a single normalization
 * sweep at the end of the transform restores canonical [0, q) words.
 * The inverse keeps values in [0, 2q) and folds its normalization
 * into the final 1/N scaling pass. forwardStrict / inverseStrict keep
 * the fully-reduced reference butterflies; outputs are bit-identical
 * (tests/test_backend_parity.cpp enforces it), so the lazy pass is a
 * pure speedup.
 *
 * The forward transform maps the coefficient representation to the
 * evaluation representation (paper Section II-B); pointwise products in
 * the evaluation representation equal negacyclic convolutions of the
 * coefficient vectors.
 */

#pragma once

#include <cstddef>

#include <vector>

#include "rns/modulus.h"

namespace ark {

/** Precomputed tables for N-point negacyclic NTT mod one prime. */
class NttTables
{
  public:
    /**
     * @param degree power-of-two ring degree N.
     * @param modulus prime with modulus = 1 (mod 2N).
     */
    NttTables(size_t degree, Modulus modulus);

    size_t degree() const { return n_; }
    const Modulus &modulus() const { return q_; }

    /** psi, a primitive 2N-th root of unity mod q. */
    u64 psi() const { return psi_; }

    /** In-place forward negacyclic NTT (coeff -> eval, natural order). */
    void forward(u64 *data) const;

    /** In-place inverse negacyclic NTT (eval -> coeff, natural order). */
    void inverse(u64 *data) const;

    /**
     * Reference forward transform with fully-reduced (strict)
     * butterflies — the pre-lazy kernel, kept for parity tests and
     * before/after benchmarking. Bit-identical to forward().
     */
    void forwardStrict(u64 *data) const;

    /** Reference inverse transform; bit-identical to inverse(). */
    void inverseStrict(u64 *data) const;

    void forward(std::vector<u64> &data) const { forward(data.data()); }
    void inverse(std::vector<u64> &data) const { inverse(data.data()); }

    /// @name Raw table access for the SIMD kernel engine
    /// (rns/simd_kernels.cpp), which runs the same Harvey lazy
    /// butterflies lane-wise and needs the twiddles and their Shoup
    /// companions directly.
    /// @{
    const std::vector<u64> &rootPowers() const { return root_powers_; }
    const std::vector<u64> &rootPowersShoup() const
    {
        return root_powers_shoup_;
    }
    const std::vector<u64> &invRootPowers() const
    {
        return inv_root_powers_;
    }
    const std::vector<u64> &invRootPowersShoup() const
    {
        return inv_root_powers_shoup_;
    }
    u64 nInv() const { return n_inv_; }
    u64 nInvShoup() const { return n_inv_shoup_; }
    /// @}

  private:
    size_t n_;
    int log_n_;
    Modulus q_;
    u64 psi_;
    /** Powers of psi in bit-reversed order, plus Shoup companions. */
    std::vector<u64> root_powers_;
    std::vector<u64> root_powers_shoup_;
    /** Powers of psi^-1 in bit-reversed order, plus Shoup companions. */
    std::vector<u64> inv_root_powers_;
    std::vector<u64> inv_root_powers_shoup_;
    u64 n_inv_;
    u64 n_inv_shoup_;
};

} // namespace ark
