/**
 * @file
 * Runtime CPU-feature detection for the SIMD kernel engine.
 *
 * The SimdBackend picks its vector ISA at startup from CPUID-style
 * probes (AVX-512 -> AVX2 -> scalar; NEON is a recognized tier with a
 * stub implementation that currently falls back to scalar loops), so
 * one binary runs correctly on any host. The tier can be capped — never
 * raised past what the host supports — with ARK_SIMD_TIER, which is how
 * CI keeps the fallback path and the AVX2 path exercised on AVX-512
 * machines.
 */

#pragma once

#include <string>

namespace ark {

/**
 * Vector ISA tier of the SIMD kernel engine. Ordered so that a
 * numerically smaller tier is always a safe substitute for a larger
 * one on the same host (clamping = std::min).
 */
enum class SimdTier {
    Scalar, ///< no vector kernels; scalar lazy loops
    Neon,   ///< aarch64 stub tier (kernels pending; falls back)
    Avx2,   ///< 256-bit kernels, 4 lanes of u64
    Avx512, ///< 512-bit kernels (AVX-512F only), 8 lanes of u64
};

/** Lowercase tier name: "scalar" / "neon" / "avx2" / "avx512". */
const char *simdTierName(SimdTier tier);

/** Parse a tier name as written by simdTierName; false on junk. */
bool parseSimdTier(const char *name, SimdTier &out);

/** Highest tier the running CPU supports (cached after first probe). */
SimdTier detectSimdTier();

/**
 * ARK_SIMD_TIER env override, else @p fallback; exits with a clear
 * error naming the offending value on junk input. The returned tier is
 * a *request*: SimdBackend clamps it to detectSimdTier(), so asking
 * for avx512 on a plain-AVX2 host degrades cleanly instead of faulting.
 */
SimdTier simdTierFromEnv(SimdTier fallback);

/** Space-separated detected-feature list ("avx512f avx2 ..."), for
 *  bench provenance so baselines from different hosts never get
 *  compared silently. */
std::string cpuFeatureString();

} // namespace ark
