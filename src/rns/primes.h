/**
 * @file
 * Generation of NTT-friendly RNS primes.
 *
 * CKKS needs primes q with q = 1 (mod 2N) so that Z_q contains a
 * primitive 2N-th root of unity (negacyclic NTT), and with q close to
 * the scale Delta so HRescale keeps the scale stable (Section II-C of
 * the paper). We generate candidates of the form k*2N + 1 scanning
 * downward/upward from 2^bits.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace ark {

/**
 * Generate @p count distinct NTT-friendly primes of roughly
 * @p bits bits for ring degree @p degree (primes = 1 mod 2*degree).
 *
 * Primes are returned largest-first, scanning downward from 2^bits.
 * Used for the q_i limbs (bits ~= log2(Delta)) and the special
 * p_j limbs (slightly larger bits for error headroom).
 *
 * @param skip primes already in use that must not be duplicated.
 */
std::vector<u64> generatePrimes(int bits, size_t count, size_t degree,
                                const std::vector<u64> &skip = {});

/**
 * Generate the first prime q0 for CKKS: a prime = 1 mod 2*degree of
 * @p bits bits (q0 is usually bigger than the scale primes to leave
 * room for the message magnitude).
 */
u64 generateFirstPrime(int bits, size_t degree);

} // namespace ark
