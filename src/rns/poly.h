/**
 * @file
 * RNS polynomial: the (limbs x N) word matrix at the heart of CKKS.
 *
 * A polynomial in R_Q = Z_Q[X]/(X^N + 1) is stored as one row ("limb",
 * paper Table I) per RNS prime, each row holding N words. A
 * representation flag tracks whether rows hold coefficients or NTT
 * evaluations; the arithmetic free functions check it so that, e.g., a
 * pointwise multiply on coefficient-representation data is caught
 * immediately instead of producing silent garbage.
 *
 * The free functions below are convenience wrappers over the
 * process-wide KernelBackend (rns/backend.h) for callers that do not
 * hold a CkksContext; scheme code dispatches through the context's own
 * backend instead.
 */

#pragma once

#include <cstddef>

#include <vector>

#include "rns/modulus.h"
#include "rns/ntt.h"

namespace ark {

/** Which domain the limb data lives in. */
enum class Rep { Coeff, Eval };

/** A polynomial in RNS form: numLimbs() rows of degree() words. */
class RnsPoly
{
  public:
    RnsPoly() = default;
    RnsPoly(size_t degree, size_t num_limbs, Rep rep);

    size_t degree() const { return degree_; }
    size_t numLimbs() const { return num_limbs_; }
    Rep rep() const { return rep_; }
    void setRep(Rep rep) { rep_ = rep; }

    u64 *limb(size_t i) { return data_.data() + i * degree_; }
    const u64 *limb(size_t i) const { return data_.data() + i * degree_; }

    /** Drop limbs beyond @p keep (HRescale / ModDown bookkeeping). */
    void resizeLimbs(size_t keep);

    /** Append @p extra zeroed limbs (limb extension). */
    void extendLimbs(size_t extra);

    bool sameShape(const RnsPoly &o) const
    {
        return degree_ == o.degree_ && num_limbs_ == o.num_limbs_;
    }

    /** Size of the polynomial in bytes (8 bytes per word). */
    size_t byteSize() const { return data_.size() * sizeof(u64); }

  private:
    /**
     * PolyPool (rns/poly_pool.h) constructs polys over recycled
     * backing buffers without the zero-fill of the public constructor
     * and harvests the buffer back on release; no other caller may
     * adopt a buffer, because skipping the zero-fill is only safe for
     * temporaries every word of which is overwritten before being
     * read.
     */
    friend class PolyPool;

    /** Adopt @p buf as backing storage (contents left as-is beyond a
     *  resize to the exact word count — NOT zeroed when recycled). */
    RnsPoly(std::vector<u64> &&buf, size_t degree, size_t num_limbs,
            Rep rep);

    /** Surrender the backing buffer, leaving an empty poly. */
    std::vector<u64> takeBuffer() &&;

    size_t degree_ = 0;
    size_t num_limbs_ = 0;
    Rep rep_ = Rep::Coeff;
    std::vector<u64> data_;
};

/** r = a + b limb-wise; shapes and reps must match. */
void polyAdd(const RnsPoly &a, const RnsPoly &b,
             const std::vector<Modulus> &moduli, RnsPoly &r);

/** r = a - b limb-wise. */
void polySub(const RnsPoly &a, const RnsPoly &b,
             const std::vector<Modulus> &moduli, RnsPoly &r);

/** r = -a limb-wise. */
void polyNeg(const RnsPoly &a, const std::vector<Modulus> &moduli,
             RnsPoly &r);

/** r = a * b pointwise; both must be in Eval representation. */
void polyMulEval(const RnsPoly &a, const RnsPoly &b,
                 const std::vector<Modulus> &moduli, RnsPoly &r);

/** r += a * b pointwise (Eval rep). */
void polyMulAccEval(const RnsPoly &a, const RnsPoly &b,
                    const std::vector<Modulus> &moduli, RnsPoly &r);

/** r = a * c where c gives one scalar per limb. */
void polyMulScalar(const RnsPoly &a, const std::vector<u64> &scalar_per_limb,
                   const std::vector<Modulus> &moduli, RnsPoly &r);

/**
 * r[l][i] = a[l][i] + scalar_per_limb[l] for every word i of every
 * limb l — the scalar is added to ALL N positions of its limb, not
 * just coefficient 0. CAdd relies on this: a constant polynomial is
 * constant across the evaluation domain, so adding the per-limb
 * residue of a scalar to every Eval-rep word adds that scalar to
 * every message slot.
 */
void polyAddScalar(const RnsPoly &a, const std::vector<u64> &scalar_per_limb,
                   const std::vector<Modulus> &moduli, RnsPoly &r);

/** In-place forward NTT of every limb; poly must be in Coeff rep. */
void polyNttForward(RnsPoly &p, const std::vector<NttTables> &tables);

/** In-place inverse NTT of every limb; poly must be in Eval rep. */
void polyNttInverse(RnsPoly &p, const std::vector<NttTables> &tables);

/**
 * Lift a vector of signed coefficients into RNS form (Coeff rep):
 * limb i holds coeffs mod q_i.
 */
RnsPoly polyFromSigned(const std::vector<i64> &coeffs,
                       const std::vector<Modulus> &moduli);

} // namespace ark
