#include "rns/poly_pool.h"

#include <algorithm>
#include <atomic>

namespace ark {

namespace {

/**
 * Stripe index of the calling thread: a round-robin ticket taken once
 * per thread, shared by every pool (stripe layouts are identical, so
 * one ticket spreads threads over all of them alike).
 */
size_t
threadStripeTicket()
{
    static std::atomic<size_t> next{0};
    thread_local const size_t ticket =
        next.fetch_add(1, std::memory_order_relaxed);
    return ticket;
}

} // namespace

bool
PolyPool::popFrom(Stripe &s, std::pair<size_t, size_t> key,
                  std::vector<u64> &buf)
{
    std::lock_guard<std::mutex> lk(s.m);
    auto it = s.free.find(key);
    if (it == s.free.end() || it->second.empty())
        return false;
    buf = std::move(it->second.back());
    it->second.pop_back();
    s.cached_words -= buf.size();
    return true;
}

RnsPoly
PolyPool::acquire(size_t degree, size_t limbs, Rep rep)
{
    const size_t base = threadStripeTicket() % kStripes;
    const std::pair<size_t, size_t> key{degree, limbs};
    std::vector<u64> buf;
    bool hit = false;
    // Own stripe first; steal from the others on a miss so buffers
    // released by a different thread still get recycled. Locks are
    // taken one stripe at a time, never nested.
    for (size_t k = 0; k < kStripes; ++k) {
        if (popFrom(stripes_[(base + k) % kStripes], key, buf)) {
            hit = true;
            break;
        }
    }
    Stripe &own = stripes_[base];
    {
        std::lock_guard<std::mutex> lk(own.m);
        if (hit)
            ++own.hits;
        else
            ++own.misses;
    }
    return RnsPoly(std::move(buf), degree, limbs, rep);
}

RnsPoly
PolyPool::acquireZeroed(size_t degree, size_t limbs, Rep rep)
{
    RnsPoly p = acquire(degree, limbs, rep);
    // A fresh buffer is already value-initialized; only a recycled one
    // carries stale words. Cheaper to fill unconditionally than track.
    std::fill(p.limb(0), p.limb(0) + degree * limbs, u64{0});
    return p;
}

void
PolyPool::release(RnsPoly &&p)
{
    const size_t degree = p.degree();
    const size_t limbs = p.numLimbs();
    if (degree == 0 || limbs == 0)
        return;
    std::vector<u64> buf = std::move(p).takeBuffer();
    Stripe &own = stripes_[threadStripeTicket() % kStripes];
    std::lock_guard<std::mutex> lk(own.m);
    ++own.released;
    auto &list = own.free[{degree, limbs}];
    if (list.size() < kMaxPerKeyPerStripe &&
        own.cached_words + buf.size() <= kMaxWordsPerStripe) {
        own.cached_words += buf.size();
        list.push_back(std::move(buf));
    }
    // else: drop on the floor — the vector destructor frees it.
}

PolyPool::Stats
PolyPool::stats() const
{
    Stats s;
    for (const Stripe &st : stripes_) {
        std::lock_guard<std::mutex> lk(st.m);
        s.hits += st.hits;
        s.misses += st.misses;
        s.released += st.released;
        s.cached_words += st.cached_words;
        for (const auto &[key, list] : st.free)
            s.cached_buffers += list.size();
    }
    return s;
}

void
PolyPool::trim()
{
    for (Stripe &st : stripes_) {
        std::lock_guard<std::mutex> lk(st.m);
        st.free.clear();
        st.cached_words = 0;
    }
}

PolyPool &
PolyPool::process()
{
    static PolyPool pool;
    return pool;
}

} // namespace ark
