#include "rns/poly_pool.h"

#include <algorithm>

namespace ark {

RnsPoly
PolyPool::acquire(size_t degree, size_t limbs, Rep rep)
{
    std::vector<u64> buf;
    {
        std::lock_guard<std::mutex> lk(m_);
        auto it = free_.find({degree, limbs});
        if (it != free_.end() && !it->second.empty()) {
            buf = std::move(it->second.back());
            it->second.pop_back();
            cached_words_ -= buf.size();
            ++hits_;
        } else {
            ++misses_;
        }
    }
    return RnsPoly(std::move(buf), degree, limbs, rep);
}

RnsPoly
PolyPool::acquireZeroed(size_t degree, size_t limbs, Rep rep)
{
    RnsPoly p = acquire(degree, limbs, rep);
    // A fresh buffer is already value-initialized; only a recycled one
    // carries stale words. Cheaper to fill unconditionally than track.
    std::fill(p.limb(0), p.limb(0) + degree * limbs, u64{0});
    return p;
}

void
PolyPool::release(RnsPoly &&p)
{
    const size_t degree = p.degree();
    const size_t limbs = p.numLimbs();
    if (degree == 0 || limbs == 0)
        return;
    std::vector<u64> buf = std::move(p).takeBuffer();
    std::lock_guard<std::mutex> lk(m_);
    ++released_;
    auto &list = free_[{degree, limbs}];
    if (list.size() < kMaxPerKey &&
        cached_words_ + buf.size() <= kMaxCachedWords) {
        cached_words_ += buf.size();
        list.push_back(std::move(buf));
    }
    // else: drop on the floor — the vector destructor frees it.
}

PolyPool::Stats
PolyPool::stats() const
{
    std::lock_guard<std::mutex> lk(m_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.released = released_;
    s.cached_words = cached_words_;
    for (const auto &[key, list] : free_)
        s.cached_buffers += list.size();
    return s;
}

void
PolyPool::trim()
{
    std::lock_guard<std::mutex> lk(m_);
    free_.clear();
    cached_words_ = 0;
}

PolyPool &
PolyPool::process()
{
    static PolyPool pool;
    return pool;
}

} // namespace ark
