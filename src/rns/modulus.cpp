#include "rns/modulus.h"

#include "common/logging.h"

namespace ark {

Modulus::Modulus(u64 q) : q_(q)
{
    ARK_ASSERT(q >= 2, "modulus must be >= 2");
    ARK_ASSERT(q < (1ULL << 62), "modulus must fit in 62 bits");
    u64 v = q;
    while (v > 0) {
        ++bits_;
        v >>= 1;
    }
    // floor(2^128 / q) computed by long division of 2^128 by q.
    // 2^128 / q = (2^64 / q) << 64 + ((2^64 mod q) << 64) / q.
    u64 quot_hi = (~0ULL) / q; // floor((2^64 - 1) / q) == floor(2^64/q)
    // Careful: floor(2^64 / q) equals floor((2^64 - 1)/q) unless q | 2^64,
    // impossible for odd prime q > 2.
    u128 rem = (static_cast<u128>(1) << 64) - static_cast<u128>(quot_hi) * q;
    u128 lo = (rem << 64) / q;
    barrett_hi_ = quot_hi;
    barrett_lo_ = static_cast<u64>(lo);
}

u64
Modulus::reduceReference(u128 x) const
{
    // Pre-PR correction tail: compare-and-subtract on the full
    // 128-bit remainder estimate. Kept verbatim for the reference
    // kernels; reduce() below does the same correction in one word.
    u64 x_lo = static_cast<u64>(x);
    u64 x_hi = static_cast<u64>(x >> 64);
    u128 lo_lo = static_cast<u128>(x_lo) * barrett_lo_;
    u128 lo_hi = static_cast<u128>(x_lo) * barrett_hi_;
    u128 hi_lo = static_cast<u128>(x_hi) * barrett_lo_;
    u128 hi_hi = static_cast<u128>(x_hi) * barrett_hi_;
    u128 mid = (lo_lo >> 64) + static_cast<u64>(lo_hi) +
               static_cast<u64>(hi_lo);
    u128 q_est = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);
    u128 r = x - q_est * q_;
    while (r >= q_)
        r -= q_;
    return static_cast<u64>(r);
}

u64
Modulus::reduce(u128 x) const
{
    // Barrett: q_est = floor(x * floor(2^128/q) / 2^128), then at most
    // two correction subtractions.
    u64 x_lo = static_cast<u64>(x);
    u64 x_hi = static_cast<u64>(x >> 64);

    // 256-bit product (x_hi:x_lo) * (barrett_hi_:barrett_lo_) >> 128.
    u128 lo_lo = static_cast<u128>(x_lo) * barrett_lo_;
    u128 lo_hi = static_cast<u128>(x_lo) * barrett_hi_;
    u128 hi_lo = static_cast<u128>(x_hi) * barrett_lo_;
    u128 hi_hi = static_cast<u128>(x_hi) * barrett_hi_;

    u128 mid = (lo_lo >> 64) + static_cast<u64>(lo_hi) +
               static_cast<u64>(hi_lo);
    u128 q_est = hi_hi + (lo_hi >> 64) + (hi_lo >> 64) + (mid >> 64);

    // The true remainder x - q_est * q is in [0, 3q) (the estimate is
    // off by at most 2), so it fits a word and the correction can run
    // in 64-bit arithmetic: mod-2^64 truncation of both operands
    // preserves the value.
    u64 r = static_cast<u64>(x) - static_cast<u64>(q_est) * q_;
    if (r >= 2 * q_)
        r -= 2 * q_;
    return r >= q_ ? r - q_ : r;
}

} // namespace ark
