#include "rns/four_step_ntt.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

FourStepNtt::FourStepNtt(size_t degree, Modulus modulus)
    : n_(degree), q_(modulus)
{
    ARK_ASSERT(isPowerOfTwo(degree), "degree must be a power of two");
    int log_n = log2Exact(degree);
    ARK_ASSERT(log_n % 2 == 0, "4-step NTT requires N with integer sqrt");
    r_ = 1ULL << (log_n / 2);
    log_r_ = log_n / 2;
    ARK_ASSERT((q_.value() - 1) % (2 * degree) == 0,
               "prime must be 1 mod 2N");

    psi_ = rootOfUnity(2 * degree, q_.value());
    omega_ = q_.mul(psi_, psi_);
    omega_r_ = q_.pow(omega_, r_);
    psi_inv_ = q_.inv(psi_);
    omega_inv_ = q_.inv(omega_);
    omega_r_inv_ = q_.inv(omega_r_);
    n_inv_ = q_.inv(static_cast<u64>(n_) % q_.value());

    bitrev_.resize(r_);
    for (size_t i = 0; i < r_; ++i)
        bitrev_[i] = static_cast<u32>(bitReverse(i, log_r_));

    small_roots_.resize(r_);
    small_roots_shoup_.resize(r_);
    small_inv_roots_.resize(r_);
    small_inv_roots_shoup_.resize(r_);
    u64 w = 1, wi = 1;
    for (size_t j = 0; j < r_; ++j) {
        small_roots_[j] = w;
        small_roots_shoup_[j] = q_.shoupPrecompute(w);
        small_inv_roots_[j] = wi;
        small_inv_roots_shoup_[j] = q_.shoupPrecompute(wi);
        w = q_.mul(w, omega_r_);
        wi = q_.mul(wi, omega_r_inv_);
    }
}

void
FourStepNtt::smallNtt(u64 *a, const std::vector<u64> &roots,
                      const std::vector<u64> &roots_shoup) const
{
    for (size_t i = 0; i < r_; ++i) {
        size_t j = bitrev_[i];
        if (i < j)
            std::swap(a[i], a[j]);
    }
    // Harvey lazy butterflies in [0, 4q) (see NttTables::forward); the
    // sweep at the end restores canonical words so the 4-step
    // composition (twists use Barrett products on canonical inputs)
    // is bit-identical to the strict small transform.
    const u64 two_q = q_.twoQ();
    for (size_t len = 2; len <= r_; len <<= 1) {
        const size_t stride = r_ / len;
        for (size_t start = 0; start < r_; start += len) {
            u64 *x = a + start;
            u64 *y = x + len / 2;
            for (size_t j = 0; j < len / 2; ++j) {
                u64 u = x[j];
                if (u >= two_q)
                    u -= two_q;
                const u64 v = q_.mulShoupLazy(y[j], roots[j * stride],
                                              roots_shoup[j * stride]);
                x[j] = u + v;
                y[j] = u - v + two_q;
            }
        }
    }
    for (size_t i = 0; i < r_; ++i)
        a[i] = q_.reduceLazy4q(a[i]);
}

std::vector<u64>
FourStepNtt::forward(const std::vector<u64> &coeffs) const
{
    ARK_ASSERT(coeffs.size() == n_, "input length mismatch");

    // Negacyclic pre-twist b_i = a_i * psi^i; psi^i is itself a
    // geometric progression a hardware twisting unit generates on the
    // fly (ratio psi).
    std::vector<u64> b(n_);
    u64 tw = 1;
    for (size_t i = 0; i < n_; ++i) {
        b[i] = q_.mul(coeffs[i], tw);
        tw = q_.mul(tw, psi_);
    }

    // Step 1: column NTTs over i2 (stride-R accesses) for each i1.
    std::vector<u64> col(r_);
    std::vector<u64> mat(n_); // mat[i1 * R + k2]
    for (size_t i1 = 0; i1 < r_; ++i1) {
        for (size_t i2 = 0; i2 < r_; ++i2)
            col[i2] = b[i2 * r_ + i1];
        smallNtt(col.data(), small_roots_, small_roots_shoup_);
        for (size_t k2 = 0; k2 < r_; ++k2)
            mat[i1 * r_ + k2] = col[k2];
    }

    // Step 2: twisting factors omega^(i1*k2). For fixed row i1 these
    // form a geometric progression with ratio omega^i1 starting at 1 —
    // the OF-Twist generation pattern.
    u64 ratio = 1; // omega^{i1}
    for (size_t i1 = 0; i1 < r_; ++i1) {
        u64 t = 1;
        for (size_t k2 = 0; k2 < r_; ++k2) {
            mat[i1 * r_ + k2] = q_.mul(mat[i1 * r_ + k2], t);
            t = q_.mul(t, ratio);
        }
        ratio = q_.mul(ratio, omega_);
    }

    // Steps 3+4: transpose then row NTTs == column NTTs over i1.
    std::vector<u64> out(n_);
    for (size_t k2 = 0; k2 < r_; ++k2) {
        for (size_t i1 = 0; i1 < r_; ++i1)
            col[i1] = mat[i1 * r_ + k2];
        smallNtt(col.data(), small_roots_, small_roots_shoup_);
        for (size_t k1 = 0; k1 < r_; ++k1)
            out[k1 * r_ + k2] = col[k1];
    }
    return out;
}

std::vector<u64>
FourStepNtt::inverse(const std::vector<u64> &evals) const
{
    ARK_ASSERT(evals.size() == n_, "input length mismatch");

    // Undo step 3+4: inverse column NTTs over k1 for each k2.
    std::vector<u64> col(r_);
    std::vector<u64> mat(n_); // mat[i1 * R + k2]
    for (size_t k2 = 0; k2 < r_; ++k2) {
        for (size_t k1 = 0; k1 < r_; ++k1)
            col[k1] = evals[k1 * r_ + k2];
        smallNtt(col.data(), small_inv_roots_, small_inv_roots_shoup_);
        for (size_t i1 = 0; i1 < r_; ++i1)
            mat[i1 * r_ + k2] = col[i1];
    }

    // Undo twist: multiply by omega^{-i1*k2} (again geometric per row).
    u64 ratio = 1; // omega^{-i1}
    for (size_t i1 = 0; i1 < r_; ++i1) {
        u64 t = 1;
        for (size_t k2 = 0; k2 < r_; ++k2) {
            mat[i1 * r_ + k2] = q_.mul(mat[i1 * r_ + k2], t);
            t = q_.mul(t, ratio);
        }
        ratio = q_.mul(ratio, omega_inv_);
    }

    // Undo step 1: inverse row-direction NTTs over k2 for each i1,
    // then scatter back to stride-R layout with 1/N and psi^-i.
    std::vector<u64> out(n_);
    for (size_t i1 = 0; i1 < r_; ++i1) {
        for (size_t k2 = 0; k2 < r_; ++k2)
            col[k2] = mat[i1 * r_ + k2];
        smallNtt(col.data(), small_inv_roots_, small_inv_roots_shoup_);
        for (size_t i2 = 0; i2 < r_; ++i2)
            out[i2 * r_ + i1] = col[i2];
    }
    u64 tw = n_inv_;
    for (size_t i = 0; i < n_; ++i) {
        out[i] = q_.mul(out[i], tw);
        tw = q_.mul(tw, psi_inv_);
    }
    return out;
}

} // namespace ark
