/**
 * @file
 * Measured per-kernel execution tallies recorded by every
 * KernelBackend (Section III of the paper argues CKKS cost is
 * concentrated in a handful of primary functions; this struct is how
 * the functional library reports where its own cycles actually went).
 *
 * For each kernel the backend records invocation counts, limbs
 * processed, operand words moved (polynomial words read + written —
 * the on-chip traffic a streamed FU pipeline would see), and modular
 * multiplications executed. The evaluator additionally notes the
 * single-use operand streams (evaluation keys and plaintexts) that
 * dominate off-chip traffic, so core/traffic_analyzer and
 * sim/simulator can run on measured counts instead of their analytic
 * estimates.
 */

#pragma once

#include <array>
#include <cstddef>

#include "common/types.h"

namespace ark {

/** Every kernel a backend dispatches. */
enum class KernelOp : size_t {
    Add,
    Sub,
    Neg,
    MulEval,
    MulAccEval,
    MulScalar,
    AddScalar,
    SubMulScalar, ///< fused (a - b) * s (ModDown / rescale tail)
    MonomialMul,  ///< negacyclic multiply by X^k (mulByI)
    LimbEmbed,    ///< centered residue extension (ModRaise / OF-Limb)
    EvkMulAcc,    ///< digit x evk MAC (the paper's MADU inner loop)
    NttForward,
    NttInverse,
    BConv,
    Automorphism,
    NttBconvNtt, ///< fused INTT->BConv->NTT digit path (Alg. 1)
    kCount,
};

constexpr size_t kNumKernelOps = static_cast<size_t>(KernelOp::kCount);

inline const char *
kernelOpName(KernelOp op)
{
    switch (op) {
      case KernelOp::Add: return "add";
      case KernelOp::Sub: return "sub";
      case KernelOp::Neg: return "neg";
      case KernelOp::MulEval: return "mul_eval";
      case KernelOp::MulAccEval: return "mul_acc_eval";
      case KernelOp::MulScalar: return "mul_scalar";
      case KernelOp::AddScalar: return "add_scalar";
      case KernelOp::SubMulScalar: return "sub_mul_scalar";
      case KernelOp::MonomialMul: return "monomial_mul";
      case KernelOp::LimbEmbed: return "limb_embed";
      case KernelOp::EvkMulAcc: return "evk_mul_acc";
      case KernelOp::NttForward: return "ntt_forward";
      case KernelOp::NttInverse: return "ntt_inverse";
      case KernelOp::BConv: return "bconv";
      case KernelOp::Automorphism: return "automorphism";
      case KernelOp::NttBconvNtt: return "ntt_bconv_ntt";
      case KernelOp::kCount: break;
    }
    return "?";
}

/** Tallies for one kernel. */
struct KernelCounter
{
    u64 calls = 0;
    u64 limbs = 0; ///< limb rows processed across all calls
    u64 words = 0; ///< operand words read + written
    u64 mults = 0; ///< modular multiplications executed
};

/** Aggregate tallies for one backend instance. */
struct KernelStats
{
    std::array<KernelCounter, kNumKernelOps> counters{};

    /** evk operand words consumed (recorded by EvkMulAcc). */
    u64 evk_words = 0;
    /** Stored-plaintext operand words streamed (PlaintextStore). */
    u64 plaintext_words = 0;

    void record(KernelOp op, u64 limbs, u64 words, u64 mults)
    {
        KernelCounter &c = counters[static_cast<size_t>(op)];
        c.calls += 1;
        c.limbs += limbs;
        c.words += words;
        c.mults += mults;
    }

    const KernelCounter &at(KernelOp op) const
    {
        return counters[static_cast<size_t>(op)];
    }

    u64 totalCalls() const
    {
        u64 t = 0;
        for (const auto &c : counters)
            t += c.calls;
        return t;
    }

    u64 totalWords() const
    {
        u64 t = 0;
        for (const auto &c : counters)
            t += c.words;
        return t;
    }

    u64 totalMults() const
    {
        u64 t = 0;
        for (const auto &c : counters)
            t += c.mults;
        return t;
    }

    void clear() { *this = KernelStats{}; }

    KernelStats &operator+=(const KernelStats &o)
    {
        for (size_t i = 0; i < kNumKernelOps; ++i) {
            counters[i].calls += o.counters[i].calls;
            counters[i].limbs += o.counters[i].limbs;
            counters[i].words += o.counters[i].words;
            counters[i].mults += o.counters[i].mults;
        }
        evk_words += o.evk_words;
        plaintext_words += o.plaintext_words;
        return *this;
    }
};

} // namespace ark
