/**
 * @file
 * A word-sized prime modulus with precomputed reduction constants.
 *
 * Each RNS limb of a CKKS polynomial lives in Z_q for one prime q held
 * in a Modulus. The hot loops use two reduction strategies, mirroring
 * the FU implementations in the paper (Section VI): Montgomery-style
 * constant-time reduction inside the NTT/BConv pipelines is modeled
 * here by Shoup multiplication (precomputed quotient word per constant
 * operand), and Barrett reduction for general products in the MADUs.
 */

#pragma once

#include "common/math_util.h"
#include "common/types.h"

namespace ark {

/** A prime modulus q < 2^60 plus reduction precomputation. */
class Modulus
{
  public:
    Modulus() = default;
    explicit Modulus(u64 q);

    u64 value() const { return q_; }
    int bits() const { return bits_; }

    /** Barrett reduction of a 128-bit value to [0, q). */
    u64 reduce(u128 x) const;

    /**
     * The pre-lazy-pass reduce, frozen verbatim (128-bit correction
     * loop instead of reduce()'s word-sized conditional subtracts).
     * Only the strict reference kernels (BaseConverter::matmulStage)
     * call this, so lazy-vs-strict benchmarks compare against the
     * true pre-PR arithmetic; always bit-identical to reduce().
     */
    u64 reduceReference(u128 x) const;

    /** (a * b) mod q via Barrett. */
    u64 mul(u64 a, u64 b) const
    {
        return reduce(static_cast<u128>(a) * b);
    }

    u64 add(u64 a, u64 b) const { return addMod(a, b, q_); }
    u64 sub(u64 a, u64 b) const { return subMod(a, b, q_); }
    u64 neg(u64 a) const { return a == 0 ? 0 : q_ - a; }
    u64 pow(u64 a, u64 e) const { return powMod(a, e, q_); }
    u64 inv(u64 a) const { return invMod(a, q_); }

    /**
     * Precompute the Shoup quotient word for a constant operand:
     * floor(w * 2^64 / q). Enables mulShoup below.
     */
    u64 shoupPrecompute(u64 w) const
    {
        return static_cast<u64>((static_cast<u128>(w) << 64) / q_);
    }

    /**
     * (x * w) mod q where @p w_shoup = shoupPrecompute(w).
     * One mulhi + one mullo + one conditional subtract; this is the
     * butterfly-speed path used throughout the NTT.
     */
    u64 mulShoup(u64 x, u64 w, u64 w_shoup) const
    {
        u64 r = mulShoupLazy(x, w, w_shoup);
        return r >= q_ ? r - q_ : r;
    }

    /**
     * Lazy Shoup product: congruent to x * w mod q but only reduced
     * into [0, 2q) — the conditional correction of mulShoup is left
     * to the caller's final normalization sweep. Valid for any
     * 64-bit @p x (including lazy [0, 4q) butterfly values, since
     * 4q < 2^64) and w < q; this is the Harvey-NTT butterfly
     * multiplier (paper Section VI's Montgomery-pipeline analogue).
     */
    u64 mulShoupLazy(u64 x, u64 w, u64 w_shoup) const
    {
        u64 hi = static_cast<u64>((static_cast<u128>(x) * w_shoup) >> 64);
        return x * w - hi * q_;
    }

    /** 2q, the lazy-domain half-bound (4q fits a word: q < 2^62). */
    u64 twoQ() const { return 2 * q_; }

    /** Normalize a lazy butterfly value in [0, 4q) to canonical [0, q). */
    u64 reduceLazy4q(u64 v) const
    {
        if (v >= 2 * q_)
            v -= 2 * q_;
        return v >= q_ ? v - q_ : v;
    }

    /// @name Barrett constant words (floor(2^128 / q)), exposed so the
    /// SIMD kernel engine can mirror reduce() lane-wise bit for bit.
    /// @{
    u64 barrettHi() const { return barrett_hi_; }
    u64 barrettLo() const { return barrett_lo_; }
    /// @}

    bool operator==(const Modulus &o) const { return q_ == o.q_; }

  private:
    u64 q_ = 0;
    int bits_ = 0;
    /** Barrett constant: floor(2^128 / q), stored as hi/lo words. */
    u64 barrett_hi_ = 0;
    u64 barrett_lo_ = 0;
};

} // namespace ark
