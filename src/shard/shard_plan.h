/**
 * @file
 * Multi-accelerator shard planning over the `HeGraph` dependence IR —
 * the scale-out counterpart of the single-chip scheduler.
 *
 * ARK sizes one chip's scratchpad so evk streaming stops dominating
 * HBM bandwidth; a fleet of N such chips serving one workload must
 * instead *partition* the evk working set. The unit of partitioning is
 * the **evk cluster**: every key-switch node consuming a given evk id.
 * Placing a whole cluster on one shard means that evk's material lives
 * on exactly one chip — per-shard working sets are disjoint by
 * construction, so each chip's scratchpad covers a strictly smaller
 * key set than the monolithic baseline.
 *
 * The planner is a deterministic greedy partitioner:
 *
 *  1. evk clusters are placed in descending cost-weight order. A
 *     cluster goes to the shard with the most dependence edges into it
 *     (affinity — fewer cut edges, less inter-chip transfer) among the
 *     shards still under the balance cap; when every shard is at the
 *     cap, the least-loaded shard wins. Ties break toward the lower
 *     shard index, so plans are reproducible.
 *  2. evk-free nodes (Rescale, ModRaise, element-wise glue) follow the
 *     majority shard of their already-placed neighbors, defaulting to
 *     the least-loaded shard — they carry no key material, so their
 *     only cost is the edges they cut.
 *
 * `ArkSimulator::runSharded` replays a `ScheduledProgram` against a
 * plan: each shard executes its induced subsequence of the schedule on
 * its own chip (own scratchpad residency model), and every cut edge
 * streams one ciphertext across the inter-chip link
 * (MachineConfig::link_gb_per_s). See docs/sharding.md for the design
 * rationale and the model's assumptions.
 */

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "graph/he_graph.h"

namespace ark {

/** Assignment of one program DAG across N simulated accelerators. */
struct ShardPlan
{
    size_t shards = 1;
    /** shard_of_node[i] = shard executing graph node (trace op) i. */
    std::vector<size_t> shard_of_node;
    /** Owning shard per evk id — every evk cluster lands on exactly
     *  one shard (the planner's core invariant). */
    std::map<int, size_t> shard_of_evk;
    /** Distinct evk ids resident on each shard (pairwise disjoint;
     *  their union is the graph's distinct evk set). */
    std::vector<std::set<int>> evks_of_shard;
    /** Nodes placed on each shard. */
    std::vector<size_t> nodes_of_shard;
    /** Cost weight placed on each shard (kind-weighted op counts —
     *  the balance objective, not a cycle estimate). */
    std::vector<size_t> weight_of_shard;
    /** Dependence edges whose endpoints landed on different shards,
     *  as (producer node, consumer node). Each streams the producer's
     *  ciphertext across the inter-chip link. */
    std::vector<std::pair<size_t, size_t>> cut_edges;

    /** Largest per-shard distinct-evk working set. */
    size_t maxEvksPerShard() const
    {
        size_t m = 0;
        for (const auto &s : evks_of_shard)
            m = std::max(m, s.size());
        return m;
    }

    /** One-line human-readable summary. */
    std::string toString() const;
};

/**
 * Relative placement weight of one op: a coarse cost-model ranking
 * (key switches dominate, glue ops are cheap) used only to balance
 * shards — cycle-accurate cost stays the simulator's business.
 */
size_t shardOpWeight(const SimOp &op);

/**
 * Partition @p g across @p shards accelerators. Deterministic; every
 * node is assigned, and every evk cluster lands on exactly one shard.
 * @p shards must be >= 1; a 1-shard plan is the identity (everything
 * on shard 0, no cut edges).
 */
ShardPlan planProgramShards(const HeGraph &g, size_t shards);

} // namespace ark
