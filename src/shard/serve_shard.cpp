#include "shard/serve_shard.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/logging.h"

namespace ark {

std::string
ServeShardPlan::toString() const
{
    size_t max_evks = 0;
    for (const auto &s : evks_of_shard)
        max_evks = std::max(max_evks, s.size());
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "serve shard plan: %zu shards over %zu workloads, "
                  "max %zu rotation evks/shard",
                  shards, shard_of_workload.size(), max_evks);
    return buf;
}

ServeShardPlan
planServeShards(const std::vector<ServeWorkload> &workloads,
                size_t shards)
{
    ARK_ASSERT(shards >= 1, "a plan needs at least one shard");

    ServeShardPlan plan;
    plan.shards = shards;
    plan.shard_of_workload.assign(workloads.size(), 0);
    plan.evks_of_shard.assign(shards, {});
    plan.weight_of_shard.assign(shards, 0);

    // Group workloads by evk signature (serve/workload.h,
    // groupByEvkSignature — the same grouping clusterAdmissionOrder
    // clusters in time, partitioned here in space).
    struct Group
    {
        std::vector<i64> signature; // sorted distinct rotations
        std::vector<size_t> members; // workload indices
        size_t weight = 0;           // total ops
        size_t first = 0;            // first-appearance tie-break
    };
    std::vector<Group> groups;
    for (const std::vector<size_t> &members :
         groupByEvkSignature(workloads)) {
        Group gr;
        gr.signature = workloads[members.front()].evkSignature();
        gr.members = members;
        gr.first = members.front();
        for (size_t wi : members)
            gr.weight += workloads[wi].ops.size();
        groups.push_back(std::move(gr));
    }

    size_t total_weight = 0;
    for (const auto &gr : groups)
        total_weight += gr.weight;

    std::vector<size_t> order(groups.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (groups[a].weight != groups[b].weight)
            return groups[a].weight > groups[b].weight;
        return groups[a].first < groups[b].first;
    });

    // Same placement discipline as planProgramShards: affinity (here,
    // signature overlap with the shard's accumulated key set) wins
    // while the shard stays under the balance cap. The serving cap is
    // looser (25% headroom) than the DAG planner's: pulling a request
    // family onto the shard already holding its keys is worth some
    // queue imbalance, since groups drain independently.
    const size_t per_shard = (total_weight + shards - 1) / shards;
    const size_t cap =
        shards > 1 ? per_shard + per_shard / 4 : total_weight;
    std::vector<std::set<i64>> keys(shards);

    auto leastLoaded = [&]() {
        size_t best = 0;
        for (size_t s = 1; s < shards; ++s) {
            if (plan.weight_of_shard[s] < plan.weight_of_shard[best])
                best = s;
        }
        return best;
    };

    for (size_t gi : order) {
        const Group &gr = groups[gi];
        size_t pick = shards;
        size_t pick_overlap = 0;
        for (size_t s = 0; s < shards; ++s) {
            if (plan.weight_of_shard[s] + gr.weight > cap)
                continue;
            size_t overlap = 0;
            for (i64 amt : gr.signature)
                overlap += keys[s].count(amt);
            const bool better =
                pick == shards || overlap > pick_overlap ||
                (overlap == pick_overlap &&
                 plan.weight_of_shard[s] <
                     plan.weight_of_shard[pick]);
            if (better) {
                pick = s;
                pick_overlap = overlap;
            }
        }
        if (pick == shards)
            pick = leastLoaded();

        for (size_t wi : gr.members)
            plan.shard_of_workload[wi] = pick;
        plan.weight_of_shard[pick] += gr.weight;
        keys[pick].insert(gr.signature.begin(), gr.signature.end());
    }

    for (size_t s = 0; s < shards; ++s)
        plan.evks_of_shard[s].assign(keys[s].begin(), keys[s].end());
    return plan;
}

} // namespace ark
