#include "shard/serve_shard.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/logging.h"

namespace ark {

std::string
ServeShardPlan::toString() const
{
    size_t max_evks = 0;
    for (const auto &s : evks_of_shard)
        max_evks = std::max(max_evks, s.size());
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "serve shard plan: %zu shards over %zu workloads, "
                  "max %zu rotation evks/shard",
                  shards, shard_of_workload.size(), max_evks);
    return buf;
}

ServeShardPlan
planServeShards(const std::vector<ServeWorkload> &workloads,
                size_t shards)
{
    ARK_ASSERT(shards >= 1, "a plan needs at least one shard");

    ServeShardPlan plan;
    plan.shards = shards;
    plan.shard_of_workload.assign(workloads.size(), 0);
    plan.evks_of_shard.assign(shards, {});
    plan.weight_of_shard.assign(shards, 0);

    // Group workloads by evk signature (serve/workload.h,
    // groupByEvkSignature — the same grouping clusterAdmissionOrder
    // clusters in time, partitioned here in space).
    struct Group
    {
        std::vector<i64> signature; // sorted distinct rotations
        std::vector<size_t> members; // workload indices
        size_t weight = 0;           // total ops
        size_t first = 0;            // first-appearance tie-break
    };
    std::vector<Group> groups;
    for (const std::vector<size_t> &members :
         groupByEvkSignature(workloads)) {
        Group gr;
        gr.signature = workloads[members.front()].evkSignature();
        gr.members = members;
        gr.first = members.front();
        for (size_t wi : members)
            gr.weight += workloads[wi].ops.size();
        groups.push_back(std::move(gr));
    }

    size_t total_weight = 0;
    for (const auto &gr : groups)
        total_weight += gr.weight;

    std::vector<size_t> order(groups.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (groups[a].weight != groups[b].weight)
            return groups[a].weight > groups[b].weight;
        return groups[a].first < groups[b].first;
    });

    // Same placement discipline as planProgramShards: affinity (here,
    // signature overlap with the shard's accumulated key set) wins
    // while the shard stays under the balance cap. The serving cap is
    // looser (25% headroom) than the DAG planner's: pulling a request
    // family onto the shard already holding its keys is worth some
    // queue imbalance, since groups drain independently.
    const size_t per_shard = (total_weight + shards - 1) / shards;
    const size_t cap =
        shards > 1 ? per_shard + per_shard / 4 : total_weight;
    std::vector<std::set<i64>> keys(shards);

    auto leastLoaded = [&]() {
        size_t best = 0;
        for (size_t s = 1; s < shards; ++s) {
            if (plan.weight_of_shard[s] < plan.weight_of_shard[best])
                best = s;
        }
        return best;
    };

    for (size_t gi : order) {
        const Group &gr = groups[gi];
        size_t pick = shards;
        size_t pick_overlap = 0;
        for (size_t s = 0; s < shards; ++s) {
            if (plan.weight_of_shard[s] + gr.weight > cap)
                continue;
            size_t overlap = 0;
            for (i64 amt : gr.signature)
                overlap += keys[s].count(amt);
            const bool better =
                pick == shards || overlap > pick_overlap ||
                (overlap == pick_overlap &&
                 plan.weight_of_shard[s] <
                     plan.weight_of_shard[pick]);
            if (better) {
                pick = s;
                pick_overlap = overlap;
            }
        }
        if (pick == shards)
            pick = leastLoaded();

        for (size_t wi : gr.members)
            plan.shard_of_workload[wi] = pick;
        plan.weight_of_shard[pick] += gr.weight;
        keys[pick].insert(gr.signature.begin(), gr.signature.end());
    }

    for (size_t s = 0; s < shards; ++s)
        plan.evks_of_shard[s].assign(keys[s].begin(), keys[s].end());
    return plan;
}

ServeShardPlan
replanServeShards(const std::vector<ServeWorkload> &workloads,
                  const ServeShardPlan &current,
                  const ServeShardSignal &signal)
{
    const size_t shards = current.shards;
    ARK_ASSERT(current.shard_of_workload.size() == workloads.size(),
               "plan does not match the workload set");
    ARK_ASSERT(signal.peak_depth.size() == shards &&
                   signal.evk_miss.size() == shards,
               "signal does not match the shard count");
    if (shards < 2)
        return current;

    // Hottest / coldest by queue peak depth, evk misses breaking
    // ties (a shard churning its key working set is the costlier of
    // two equally deep queues), then lower index for determinism.
    auto hotter = [&](size_t a, size_t b) {
        if (signal.peak_depth[a] != signal.peak_depth[b])
            return signal.peak_depth[a] > signal.peak_depth[b];
        return signal.evk_miss[a] > signal.evk_miss[b];
    };
    size_t hot = 0, cold = 0;
    for (size_t s = 1; s < shards; ++s) {
        if (hotter(s, hot))
            hot = s;
        if (hotter(cold, s))
            cold = s;
    }
    // Move only on a clear imbalance: the hottest queue peaked at
    // least twice as deep as the coldest (the +1 keeps an all-idle or
    // barely-loaded window from triggering churn).
    if (hot == cold ||
        signal.peak_depth[hot] < 2 * signal.peak_depth[cold] + 1)
        return current;

    // Reconstruct the signature groups and their current placement
    // (groups move atomically, so every member shares one shard).
    struct Group
    {
        std::vector<i64> signature;
        std::vector<size_t> members;
        size_t weight = 0;
        size_t shard = 0;
    };
    std::vector<Group> groups;
    size_t hot_groups = 0;
    for (const std::vector<size_t> &members :
         groupByEvkSignature(workloads)) {
        Group gr;
        gr.signature = workloads[members.front()].evkSignature();
        gr.members = members;
        gr.shard = current.shard_of_workload[members.front()];
        for (size_t wi : members)
            gr.weight += workloads[wi].ops.size();
        hot_groups += gr.shard == hot ? 1 : 0;
        groups.push_back(std::move(gr));
    }
    // Never strand the hot shard: it keeps at least one group, so no
    // shard with workers ever serves an empty workload set.
    if (hot_groups < 2)
        return current;

    // Migrate the LIGHTEST hot group: it relieves the least affinity
    // (smallest key set to re-warm on the cold shard) per move, and a
    // wrong move costs the least. First appearance breaks ties.
    size_t pick = groups.size();
    for (size_t g = 0; g < groups.size(); ++g) {
        if (groups[g].shard != hot)
            continue;
        if (pick == groups.size() ||
            groups[g].weight < groups[pick].weight)
            pick = g;
    }
    groups[pick].shard = cold;

    ServeShardPlan plan;
    plan.shards = shards;
    plan.shard_of_workload.assign(workloads.size(), 0);
    plan.evks_of_shard.assign(shards, {});
    plan.weight_of_shard.assign(shards, 0);
    std::vector<std::set<i64>> keys(shards);
    for (const Group &gr : groups) {
        for (size_t wi : gr.members)
            plan.shard_of_workload[wi] = gr.shard;
        plan.weight_of_shard[gr.shard] += gr.weight;
        keys[gr.shard].insert(gr.signature.begin(),
                              gr.signature.end());
    }
    for (size_t s = 0; s < shards; ++s)
        plan.evks_of_shard[s].assign(keys[s].begin(), keys[s].end());
    return plan;
}

} // namespace ark
