#include "shard/shard_plan.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace ark {

size_t
shardOpWeight(const SimOp &op)
{
    switch (op.kind) {
      case SimOpKind::KeySwitch: return 8;
      case SimOpKind::ModRaise: return 4;
      case SimOpKind::PMult: return 2;
      case SimOpKind::Rescale: return 1;
      case SimOpKind::Elementwise: return 1;
    }
    return 1;
}

std::string
ShardPlan::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "shard plan: %zu shards, %zu evk clusters, "
                  "max %zu evks/shard, %zu cut edges",
                  shards, shard_of_evk.size(), maxEvksPerShard(),
                  cut_edges.size());
    return buf;
}

namespace {

/** Edges between @p nodes and nodes already placed on @p shard. */
size_t
affinity(const HeGraph &g, const std::vector<size_t> &nodes,
         const std::vector<size_t> &shard_of_node, size_t shard)
{
    size_t aff = 0;
    for (size_t i : nodes) {
        for (size_t p : g.nodes[i].preds)
            aff += shard_of_node[p] == shard;
        for (size_t s : g.nodes[i].succs)
            aff += shard_of_node[s] == shard;
    }
    return aff;
}

} // namespace

ShardPlan
planProgramShards(const HeGraph &g, size_t shards)
{
    ARK_ASSERT(shards >= 1, "a plan needs at least one shard");
    const size_t n = g.nodes.size();
    const size_t kUnassigned = shards; // sentinel during placement

    ShardPlan plan;
    plan.shards = shards;
    plan.shard_of_node.assign(n, kUnassigned);
    plan.evks_of_shard.assign(shards, {});
    plan.nodes_of_shard.assign(shards, 0);
    plan.weight_of_shard.assign(shards, 0);

    // Gather evk clusters (nodes per evk id) and the total weight.
    std::map<int, std::vector<size_t>> cluster; // evk id -> nodes
    std::map<int, size_t> cluster_weight;
    size_t total_weight = 0;
    for (const auto &node : g.nodes) {
        total_weight += shardOpWeight(node.op);
        if (node.op.kind == SimOpKind::KeySwitch &&
            node.op.evk_id >= 0) {
            cluster[node.op.evk_id].push_back(node.index);
            cluster_weight[node.op.evk_id] += shardOpWeight(node.op);
        }
    }

    // Place heavy clusters first (LPT-style), so the balance cap has
    // room to absorb the tail of light ones.
    std::vector<int> ids;
    ids.reserve(cluster.size());
    for (const auto &[id, nodes] : cluster)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end(), [&](int a, int b) {
        if (cluster_weight[a] != cluster_weight[b])
            return cluster_weight[a] > cluster_weight[b];
        return a < b;
    });

    // Soft balance cap: 10% headroom over the perfect split. Affinity
    // may pull a cluster toward its neighbors only while the target
    // shard stays under the cap; past it, balance wins outright.
    const size_t cap =
        shards > 1 ? total_weight / shards + total_weight / (10 * shards)
                   : total_weight;

    auto leastLoaded = [&]() {
        size_t best = 0;
        for (size_t s = 1; s < shards; ++s) {
            if (plan.weight_of_shard[s] < plan.weight_of_shard[best])
                best = s;
        }
        return best;
    };

    for (int id : ids) {
        const std::vector<size_t> &nodes = cluster[id];
        size_t pick = kUnassigned;
        size_t pick_aff = 0;
        for (size_t s = 0; s < shards; ++s) {
            if (plan.weight_of_shard[s] + cluster_weight[id] > cap)
                continue;
            const size_t aff =
                affinity(g, nodes, plan.shard_of_node, s);
            const bool better =
                pick == kUnassigned || aff > pick_aff ||
                (aff == pick_aff &&
                 plan.weight_of_shard[s] <
                     plan.weight_of_shard[pick]);
            if (better) {
                pick = s;
                pick_aff = aff;
            }
        }
        if (pick == kUnassigned) // every shard at the cap: balance
            pick = leastLoaded();

        plan.shard_of_evk[id] = pick;
        plan.evks_of_shard[pick].insert(id);
        for (size_t i : nodes) {
            plan.shard_of_node[i] = pick;
            plan.nodes_of_shard[pick] += 1;
            plan.weight_of_shard[pick] += shardOpWeight(g.nodes[i].op);
        }
    }

    // Evk-free glue follows the majority of its placed neighbors.
    for (size_t i = 0; i < n; ++i) {
        if (plan.shard_of_node[i] != kUnassigned)
            continue;
        std::vector<size_t> votes(shards, 0);
        bool any = false;
        for (size_t p : g.nodes[i].preds) {
            if (plan.shard_of_node[p] != kUnassigned) {
                ++votes[plan.shard_of_node[p]];
                any = true;
            }
        }
        for (size_t s : g.nodes[i].succs) {
            if (plan.shard_of_node[s] != kUnassigned) {
                ++votes[plan.shard_of_node[s]];
                any = true;
            }
        }
        size_t pick = leastLoaded();
        if (any) {
            pick = 0;
            for (size_t s = 1; s < shards; ++s) {
                if (votes[s] > votes[pick])
                    pick = s;
            }
        }
        plan.shard_of_node[i] = pick;
        plan.nodes_of_shard[pick] += 1;
        plan.weight_of_shard[pick] += shardOpWeight(g.nodes[i].op);
    }

    for (const auto &node : g.nodes) {
        for (size_t p : node.preds) {
            if (plan.shard_of_node[p] != plan.shard_of_node[node.index])
                plan.cut_edges.emplace_back(p, node.index);
        }
    }
    return plan;
}

} // namespace ark
