/**
 * @file
 * Evk-affinity shard routing for the serving plane.
 *
 * The BatchServer's sharded mode (BatchServerConfig::shards) splits
 * its workers into N groups, each with its own request queue; every
 * request is routed to the group that already holds the evk material
 * its workload references. The routing unit is the **evk signature**:
 * a workload's sorted set of distinct rotation amounts — the same
 * structure `clusterAdmissionOrder` (graph/serve_schedule.h) uses to
 * co-locate same-key requests in time, applied here to co-locate them
 * in *space*. Workloads sharing a signature always land on the same
 * shard, so a worker group's hot key set stays small and stable no
 * matter how the traffic mixes.
 *
 * Routing never changes results: a request is a pure function of
 * fixed, prewarmed key material, so a sharded server is bit-identical
 * to the single-queue FCFS server (tests/test_sharded_serving.cpp
 * enforces this on both kernel backends).
 */

#pragma once

#include <string>
#include <vector>

#include "serve/workload.h"

namespace ark {

/** Assignment of a workload set across N serving shards. */
struct ServeShardPlan
{
    size_t shards = 1;
    /** shard_of_workload[i] = worker group serving workload i. */
    std::vector<size_t> shard_of_workload;
    /** Sorted distinct rotation amounts routed to each shard (the
     *  shard's evk working set; may overlap across shards when
     *  signatures share amounts). */
    std::vector<std::vector<i64>> evks_of_shard;
    /** Total ops routed to each shard (the balance objective). */
    std::vector<size_t> weight_of_shard;

    /** One-line human-readable summary. */
    std::string toString() const;
};

/**
 * Partition @p workloads across @p shards worker groups.
 * Deterministic greedy: distinct evk signatures are placed in
 * descending op-weight order onto the shard whose existing key set
 * overlaps the signature most (evk affinity), among shards under a
 * soft balance cap; ties break toward the lighter, then lower-indexed
 * shard. Workloads with identical signatures co-locate by
 * construction. @p shards must be >= 1.
 */
ServeShardPlan
planServeShards(const std::vector<ServeWorkload> &workloads,
                size_t shards);

/**
 * Observed per-shard load since the last replan — the two congestion
 * signals the serving runtime already collects: queue peak depth
 * (RequestQueue::peakDepth) and evaluation-key cache misses
 * attributed to the shard's workers (KeyCache thread stats). Both
 * vectors are indexed by shard and must have plan.shards entries.
 */
struct ServeShardSignal
{
    std::vector<size_t> peak_depth;
    std::vector<u64> evk_miss;
};

/**
 * Online re-plan: migrate evk-signature groups between shards when
 * the observed load says the static plan got the traffic mix wrong.
 * Conservative and deterministic: only when the hottest shard's
 * pressure (peak depth, evk misses breaking ties) is at least double
 * the coldest's does ONE group move — the lightest group on the
 * hottest shard, provided that shard keeps at least one group (no
 * shard that serves traffic is ever stranded without workloads, and
 * no workload is ever left unassigned). Returns @p current unchanged
 * when balanced. Routing-only by construction: requests already
 * queued stay where they are, so results remain bit-identical to the
 * static plan (tests/test_serving_rebalance.cpp).
 */
ServeShardPlan
replanServeShards(const std::vector<ServeWorkload> &workloads,
                  const ServeShardPlan &current,
                  const ServeShardSignal &signal);

} // namespace ark
