/**
 * @file
 * Evk scratchpad-residency planning over a scheduled op order.
 *
 * The scratchpad slots left over by the key-switch working set hold
 * whole evaluation keys; every key-switch whose evk is resident is a
 * hit, every other one streams the key from HBM (the traffic Min-KS
 * exists to remove). This planner replays a schedule against a
 * slot-capacity cache model under two eviction policies:
 *
 *  - LRU: what the cycle simulator's online model does;
 *  - Belady: offline-optimal MIN (evict the resident key whose next
 *    use is farthest away; a key never used again is bypassed) — the
 *    upper bound any online policy, and any hardware design, chases.
 *
 * The model is deliberately the same shape as ArkSimulator's: capacity
 * is counted in full-size evk slots, a miss streams the level-sized
 * key (partial limbs at lower levels, HdftPlan::evkBytes). When the
 * capacities agree, predicted hits/misses/bytes match the simulator's
 * replay exactly (tests/test_scheduler.cpp pins this).
 */

#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "graph/he_graph.h"

namespace ark {

/** How the planner picks an eviction victim on a full-cache miss. */
enum class EvictionPolicy {
    LRU,    ///< online least-recently-used (the simulator's default)
    Belady, ///< offline optimal (farthest next use, with bypass)
};

const char *evictionPolicyName(EvictionPolicy p);

/**
 * The slot-capacity evk cache replay shared by the residency planner
 * and the cycle simulator — ONE implementation, so predicted and
 * simulated hits/misses can never drift apart.
 */
class EvkSlotCache
{
  public:
    /** Sentinel next-use step for "never used again". */
    static constexpr size_t kNever =
        std::numeric_limits<size_t>::max();

    EvkSlotCache(size_t capacity_evks, EvictionPolicy eviction)
        : capacity_(capacity_evks), eviction_(eviction)
    {
    }

    /**
     * Touch @p evk at schedule step @p step. @p next_use is the step
     * of this evk's next use (kNever if none; ignored under LRU —
     * pass kNever). Returns true on a hit; a miss inserts the key and
     * evicts per policy (Belady may bypass the key just inserted).
     */
    bool access(int evk, size_t step, size_t next_use);

  private:
    struct Slot
    {
        int evk;
        size_t last_touch; ///< step of latest use (LRU recency)
        size_t next_use;   ///< step of next use (Belady distance)
    };

    size_t capacity_;
    EvictionPolicy eviction_;
    std::vector<Slot> resident_;
};

/**
 * Belady's future knowledge: next_use[s] = the next step after s at
 * which evk_seq[s] recurs (kNever if it never does). @p evk_seq holds
 * the evk id consumed at each step, < 0 for steps without a key.
 */
std::vector<size_t> nextUseSteps(const std::vector<int> &evk_seq);

/** Per-evk accounting of one residency replay. */
struct EvkResidency
{
    int evk_id = -1;
    size_t uses = 0;
    size_t hits = 0;
    size_t misses = 0;
    double bytes_streamed = 0; ///< HBM bytes for the misses
};

/** Outcome of replaying one schedule against the slot cache. */
struct ResidencyReport
{
    size_t capacity_evks = 0;
    EvictionPolicy eviction = EvictionPolicy::LRU;
    size_t hits = 0;
    size_t misses = 0;
    double evk_bytes = 0; ///< total evk HBM bytes streamed
    /** Per-evk breakdown, ordered by first use in the schedule. */
    std::vector<EvkResidency> per_evk;

    double hitRate() const
    {
        const size_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** One-line human-readable summary. */
    std::string toString() const;
};

/**
 * Replay @p order (a topological order of @p g; node indices) against
 * a @p capacity_evks-slot evk cache. Ops without an evk pass through.
 * Capacity 0 means every key-switch streams its key.
 */
ResidencyReport predictResidency(const HeGraph &g,
                                 const std::vector<size_t> &order,
                                 size_t capacity_evks,
                                 EvictionPolicy eviction);

/**
 * Working-set interleaving metric of a schedule: the maximum number of
 * *distinct other* evk ids appearing between two consecutive uses of
 * any one evk. 0 means every evk's uses are contiguous (perfect
 * clustering); the metric upper-bounds the slot capacity needed to
 * make every reuse hit (max interleave + 1). EvkCluster must never
 * increase it relative to source order.
 */
size_t maxEvkInterleave(const HeGraph &g,
                        const std::vector<size_t> &order);

} // namespace ark
