#include "graph/residency.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"
#include "core/hdft_plan.h"

namespace ark {

const char *
evictionPolicyName(EvictionPolicy p)
{
    switch (p) {
      case EvictionPolicy::LRU: return "LRU";
      case EvictionPolicy::Belady: return "Belady";
    }
    return "?";
}

bool
EvkSlotCache::access(int evk, size_t step, size_t next_use)
{
    auto it = std::find_if(
        resident_.begin(), resident_.end(),
        [&](const Slot &sl) { return sl.evk == evk; });
    if (it != resident_.end()) {
        it->last_touch = step;
        if (eviction_ == EvictionPolicy::Belady)
            it->next_use = next_use;
        return true;
    }

    if (capacity_ == 0)
        return false;
    resident_.push_back({evk, step, next_use});
    if (resident_.size() <= capacity_)
        return false;
    // LRU evicts the coldest key; Belady the one used farthest in the
    // future — possibly the key just fetched (streaming bypass).
    auto victim = resident_.begin();
    for (auto v = resident_.begin(); v != resident_.end(); ++v) {
        const bool worse =
            eviction_ == EvictionPolicy::Belady
                ? v->next_use > victim->next_use
                : v->last_touch < victim->last_touch;
        if (worse)
            victim = v;
    }
    resident_.erase(victim);
    return false;
}

std::vector<size_t>
nextUseSteps(const std::vector<int> &evk_seq)
{
    std::vector<size_t> next(evk_seq.size(), EvkSlotCache::kNever);
    std::map<int, size_t> last_seen; // evk -> step of latest use
    for (size_t s = evk_seq.size(); s-- > 0;) {
        if (evk_seq[s] < 0)
            continue;
        auto it = last_seen.find(evk_seq[s]);
        next[s] = it == last_seen.end() ? EvkSlotCache::kNever
                                        : it->second;
        last_seen[evk_seq[s]] = s;
    }
    return next;
}

std::string
ResidencyReport::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "evk residency (%zu slots, %s): %zu hits / %zu "
                  "misses (%.1f%% hit), %.2f MiB streamed",
                  capacity_evks, evictionPolicyName(eviction), hits,
                  misses, 100.0 * hitRate(),
                  evk_bytes / (1024.0 * 1024.0));
    return buf;
}

ResidencyReport
predictResidency(const HeGraph &g, const std::vector<size_t> &order,
                 size_t capacity_evks, EvictionPolicy eviction)
{
    ARK_ASSERT(g.isTopological(order),
               "residency replay requires a valid schedule");

    ResidencyReport r;
    r.capacity_evks = capacity_evks;
    r.eviction = eviction;

    std::vector<size_t> next_use;
    if (eviction == EvictionPolicy::Belady) {
        std::vector<int> evk_seq;
        evk_seq.reserve(order.size());
        for (size_t idx : order) {
            const SimOp &op = g.nodes[idx].op;
            evk_seq.push_back(op.kind == SimOpKind::KeySwitch
                                  ? op.evk_id
                                  : -1);
        }
        next_use = nextUseSteps(evk_seq);
    }

    std::map<int, size_t> stats_index; // evk -> index into per_evk
    auto statsFor = [&](int evk) -> EvkResidency & {
        auto it = stats_index.find(evk);
        if (it == stats_index.end()) {
            it = stats_index.emplace(evk, r.per_evk.size()).first;
            r.per_evk.push_back({});
            r.per_evk.back().evk_id = evk;
        }
        return r.per_evk[it->second];
    };

    EvkSlotCache cache(capacity_evks, eviction);
    for (size_t s = 0; s < order.size(); ++s) {
        const SimOp &op = g.nodes[order[s]].op;
        if (op.kind != SimOpKind::KeySwitch || op.evk_id < 0)
            continue;

        EvkResidency &es = statsFor(op.evk_id);
        ++es.uses;
        if (cache.access(op.evk_id, s,
                         next_use.empty() ? EvkSlotCache::kNever
                                          : next_use[s])) {
            ++r.hits;
            ++es.hits;
            continue;
        }
        ++r.misses;
        ++es.misses;
        const double bytes = static_cast<double>(
            HdftPlan::evkBytes(g.params, op.level));
        es.bytes_streamed += bytes;
        r.evk_bytes += bytes;
    }
    return r;
}

size_t
maxEvkInterleave(const HeGraph &g, const std::vector<size_t> &order)
{
    // For each evk, walk its uses in schedule order and count the
    // distinct other evks appearing strictly between consecutive uses.
    std::vector<int> seq; // evk id per key-switch step, in order
    seq.reserve(order.size());
    for (size_t idx : order) {
        const SimOp &op = g.nodes[idx].op;
        if (op.kind == SimOpKind::KeySwitch && op.evk_id >= 0)
            seq.push_back(op.evk_id);
    }

    std::map<int, size_t> last_pos;
    size_t worst = 0;
    for (size_t i = 0; i < seq.size(); ++i) {
        auto it = last_pos.find(seq[i]);
        if (it != last_pos.end()) {
            std::vector<int> between;
            for (size_t j = it->second + 1; j < i; ++j) {
                if (std::find(between.begin(), between.end(),
                              seq[j]) == between.end())
                    between.push_back(seq[j]);
            }
            worst = std::max(worst, between.size());
        }
        last_pos[seq[i]] = i;
    }
    return worst;
}

} // namespace ark
