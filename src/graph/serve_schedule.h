/**
 * @file
 * Schedule-aware serving: the graph scheduler applied to the serving
 * plane, where bit-parity with FCFS execution is a hard contract.
 *
 * Two levers, both dependence-safe:
 *
 *  - Intra-request: `scheduleWorkload` reorders a request's op list
 *    under the bit-exact commutation graph (graph/builder.h,
 *    liftWorkload) — e.g. hoisting CAdd filler out of rotation runs
 *    so same-evk rotations execute back to back. Any schedule of that
 *    graph produces bit-identical ciphertexts, so the scheduled
 *    server's results equal FCFS results exactly
 *    (tests/test_serving.cpp pins this on both kernel backends).
 *
 *  - Inter-request: `clusterAdmissionOrder` sorts a batch's admission
 *    sequence so requests sharing rotation-evk working sets run
 *    consecutively — adjacent same-key requests reuse the hot evk
 *    material instead of alternating working sets. Per-request
 *    results are order-independent (each request is a pure function
 *    of fixed key material), so parity is unaffected.
 */

#pragma once

#include <vector>

#include "graph/schedule.h"
#include "serve/workload.h"

namespace ark {

/**
 * Reorder @p w's ops under @p policy, preserving bit-exact results.
 * SourceOrder and BeladyResidency return the workload unchanged
 * (host-side eviction is the OS's business, not the server's).
 */
ServeWorkload scheduleWorkload(const ServeWorkload &w,
                               SchedulePolicy policy);

/**
 * Admission order for a batch: a permutation of [0, n) over
 * @p request_workloads (the workload index of each request) grouping
 * requests with identical rotation-evk signatures. Groups keep
 * first-appearance order and requests keep FCFS order within a group,
 * so the sort is stable and deterministic.
 */
std::vector<size_t>
clusterAdmissionOrder(const std::vector<ServeWorkload> &workloads,
                      const std::vector<size_t> &request_workloads);

} // namespace ark
