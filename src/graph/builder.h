/**
 * @file
 * Builders that lift linear op sequences into the `HeGraph` dependence
 * IR — one per execution plane, with deliberately different fidelity:
 *
 * - `liftProgram` (simulator plane): phase-granular dependence. A
 *   trace is cut into accumulation phases at its barrier ops (Rescale,
 *   ModRaise, Elementwise joins); within a phase, rotation key
 *   switches and plaintext multiplies are independent siblings (BSGS
 *   babies/giants of a common input, diagonal plaintexts joined only
 *   by the phase barrier) while mult-key switches chain (a
 *   multiplicative depth chain is inherently serial). This
 *   over-approximates slot-level dataflow but preserves exactly the
 *   structure the machine model prices: per-op level, evk identity,
 *   and operand streams.
 *
 * - `liftWorkload` (serving plane): bit-exact commutation dependence.
 *   A ServeWorkload executes as a fold over one ciphertext, so two
 *   ops may be reordered only when their results are bit-identical
 *   either way. The commutation facts used (all verified against the
 *   evaluator implementation): Rotate <-> AddScalar commute (the
 *   Eval-rep automorphism is a pure word permutation, and a CAdd
 *   constant is slot-uniform, hence permutation-invariant; modular
 *   adds then reassociate exactly), and AddScalar <-> AddScalar
 *   commute. Everything else — Square, Rescale, MulPlain, and
 *   Rotate <-> Rotate (key-switch rounding differs per composition
 *   order) — keeps its source order. Any topological order of this
 *   graph therefore yields bit-identical request results
 *   (tests/test_serving.cpp enforces parity against FCFS).
 */

#pragma once

#include "graph/he_graph.h"
#include "serve/workload.h"

namespace ark {

/** Lift a simulator trace. Node i corresponds to prog.ops[i]; the
 *  graph borrows the trace's tags (string_view into static storage or
 *  @p prog's lifetime — see SimOp::tag). */
HeGraph liftProgram(const SimProgram &prog);

/**
 * Lift an executable serving workload. Node i corresponds to
 * w.ops[i]; node payloads map serve ops onto SimOp kinds (Rotate ->
 * KeySwitch with evk_id = rotation amount, Square -> KeySwitch with
 * the mult key id 0, MulPlain -> PMult, AddScalar -> Elementwise) so
 * the generic scheduler's evk clustering applies unchanged.
 */
HeGraph liftWorkload(const ServeWorkload &w);

/** Reorder @p w's ops by @p order (order[i] = source index of the op
 *  executed i-th). The order must be topological for liftWorkload(w). */
ServeWorkload reorderWorkload(const ServeWorkload &w,
                              const std::vector<size_t> &order);

} // namespace ark
