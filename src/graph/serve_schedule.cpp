#include "graph/serve_schedule.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "graph/builder.h"

namespace ark {

ServeWorkload
scheduleWorkload(const ServeWorkload &w, SchedulePolicy policy)
{
    if (policy != SchedulePolicy::EvkCluster)
        return w;
    const HeGraph g = liftWorkload(w);
    return reorderWorkload(w, scheduleOrder(g, policy));
}

std::vector<size_t>
clusterAdmissionOrder(const std::vector<ServeWorkload> &workloads,
                      const std::vector<size_t> &request_workloads)
{
    // Workloads sharing an evk signature (serve/workload.h,
    // groupByEvkSignature — the same grouping the shard router
    // partitions in space) share their entire evk working set.
    std::vector<size_t> sig_group(workloads.size());
    {
        const auto groups = groupByEvkSignature(workloads);
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            for (size_t wi : groups[gi])
                sig_group[wi] = gi;
        }
    }

    // Renumber groups by first appearance in the request batch, so
    // the admission order depends only on the batch, not on where a
    // workload sits in the server's workload list.
    std::vector<size_t> order(request_workloads.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::map<size_t, size_t> renumber;
    std::vector<size_t> group_of(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
        const size_t wi = request_workloads[i];
        ARK_ASSERT(wi < workloads.size(),
                   "request references unknown workload");
        const auto it =
            renumber.emplace(sig_group[wi], renumber.size()).first;
        group_of[i] = it->second;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return group_of[a] < group_of[b];
                     });
    return order;
}

} // namespace ark
