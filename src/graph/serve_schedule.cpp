#include "graph/serve_schedule.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "graph/builder.h"

namespace ark {

ServeWorkload
scheduleWorkload(const ServeWorkload &w, SchedulePolicy policy)
{
    if (policy != SchedulePolicy::EvkCluster)
        return w;
    const HeGraph g = liftWorkload(w);
    return reorderWorkload(w, scheduleOrder(g, policy));
}

std::vector<size_t>
clusterAdmissionOrder(const std::vector<ServeWorkload> &workloads,
                      const std::vector<size_t> &request_workloads)
{
    // Signature: the sorted distinct rotation amounts a workload's
    // requests will pull through the KeyCache. Requests whose
    // signatures match share their entire evk working set.
    std::map<size_t, std::vector<i64>> signature; // workload -> amts
    for (size_t wi : request_workloads) {
        ARK_ASSERT(wi < workloads.size(),
                   "request references unknown workload");
        if (!signature.count(wi)) {
            std::vector<i64> amts = workloads[wi].rotationAmounts();
            std::sort(amts.begin(), amts.end());
            signature.emplace(wi, std::move(amts));
        }
    }

    // Group ids in first-appearance order of each distinct signature.
    std::vector<std::vector<i64>> groups;
    auto groupOf = [&](const std::vector<i64> &sig) {
        for (size_t gi = 0; gi < groups.size(); ++gi) {
            if (groups[gi] == sig)
                return gi;
        }
        groups.push_back(sig);
        return groups.size() - 1;
    };

    std::vector<size_t> order(request_workloads.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::vector<size_t> group_of(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        group_of[i] = groupOf(signature[request_workloads[i]]);
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return group_of[a] < group_of[b];
                     });
    return order;
}

} // namespace ark
