#include "graph/builder.h"

#include "common/logging.h"

namespace ark {

namespace {

void
addEdge(HeGraph &g, size_t from, size_t to)
{
    g.nodes[to].preds.push_back(from);
    g.nodes[from].succs.push_back(to);
}

bool
isBarrier(const SimOp &op)
{
    return op.kind == SimOpKind::Rescale ||
           op.kind == SimOpKind::ModRaise ||
           op.kind == SimOpKind::Elementwise;
}

/** Serving-plane commutation relation (see builder.h header note). */
bool
serveOpsCommute(const ServeOp &a, const ServeOp &b)
{
    auto is_add = [](const ServeOp &o) {
        return o.kind == ServeOpKind::AddScalar;
    };
    auto is_rot = [](const ServeOp &o) {
        return o.kind == ServeOpKind::Rotate;
    };
    if (is_add(a) && is_add(b))
        return true;
    if ((is_add(a) && is_rot(b)) || (is_rot(a) && is_add(b)))
        return true;
    return false;
}

} // namespace

HeGraph
liftProgram(const SimProgram &prog)
{
    HeGraph g;
    g.name = prog.name;
    g.params = prog.params;
    g.nodes.resize(prog.ops.size());
    for (size_t i = 0; i < prog.ops.size(); ++i) {
        g.nodes[i].op = prog.ops[i];
        g.nodes[i].index = i;
    }

    // Phase state: the barrier that opened the current phase (if any),
    // the phase's member ops so far, and the tail of the in-phase
    // mult-key chain.
    bool have_barrier = false;
    size_t barrier = 0;
    std::vector<size_t> phase_members;
    bool have_mult_tail = false;
    size_t mult_tail = 0;

    for (size_t i = 0; i < prog.ops.size(); ++i) {
        const SimOp &op = prog.ops[i];
        if (isBarrier(op)) {
            // The barrier joins everything since the previous barrier
            // (or chains directly on it when the phase is empty).
            if (phase_members.empty()) {
                if (have_barrier)
                    addEdge(g, barrier, i);
            } else {
                for (size_t m : phase_members)
                    addEdge(g, m, i);
            }
            have_barrier = true;
            barrier = i;
            phase_members.clear();
            have_mult_tail = false;
            continue;
        }

        // Non-barrier op: anchored on the phase-opening barrier.
        if (have_barrier)
            addEdge(g, barrier, i);
        if (op.kind == SimOpKind::KeySwitch && op.evk_id == 0) {
            // Mult-key switches form a serial multiplicative chain.
            if (have_mult_tail)
                addEdge(g, mult_tail, i);
            have_mult_tail = true;
            mult_tail = i;
        }
        phase_members.push_back(i);
    }
    return g;
}

HeGraph
liftWorkload(const ServeWorkload &w)
{
    HeGraph g;
    g.name = w.name;
    g.nodes.resize(w.ops.size());
    for (size_t i = 0; i < w.ops.size(); ++i) {
        const ServeOp &op = w.ops[i];
        SimOp s;
        switch (op.kind) {
          case ServeOpKind::Square:
            s.kind = SimOpKind::KeySwitch;
            s.evk_id = 0;
            break;
          case ServeOpKind::Rescale:
            s.kind = SimOpKind::Rescale;
            break;
          case ServeOpKind::Rotate:
            s.kind = SimOpKind::KeySwitch;
            s.evk_id = static_cast<int>(op.rotation);
            break;
          case ServeOpKind::MulPlain:
            s.kind = SimOpKind::PMult;
            break;
          case ServeOpKind::AddScalar:
            s.kind = SimOpKind::Elementwise;
            break;
        }
        s.tag = serveOpName(op.kind);
        g.nodes[i].op = s;
        g.nodes[i].index = i;
    }

    // The workload is a serial fold: op i must stay after op j < i
    // unless the two commute bit-exactly. The backward scan encodes
    // that partial order with a transitively reduced edge set:
    //
    //  - A Rotate stops at its nearest non-commuting predecessor
    //    (another Rotate or a full barrier) — rotations chain, so
    //    everything earlier is ordered transitively through it.
    //  - An AddScalar's only non-commuting predecessors are full
    //    barriers, and barriers chain, so it too stops at the first.
    //  - A full barrier (Square/Rescale/MulPlain commutes with
    //    nothing) must collect *every* Rotate and AddScalar back to
    //    the previous barrier: the commuting pairs among them (e.g.
    //    Rotate vs AddScalar) carry no ordering path it could lean on.
    auto isFullBarrier = [](const ServeOp &o) {
        return o.kind == ServeOpKind::Square ||
               o.kind == ServeOpKind::Rescale ||
               o.kind == ServeOpKind::MulPlain;
    };
    for (size_t i = 0; i < w.ops.size(); ++i) {
        for (size_t j = i; j-- > 0;) {
            if (serveOpsCommute(w.ops[j], w.ops[i]))
                continue;
            addEdge(g, j, i);
            if (!isFullBarrier(w.ops[i]) || isFullBarrier(w.ops[j]))
                break;
        }
    }
    return g;
}

ServeWorkload
reorderWorkload(const ServeWorkload &w, const std::vector<size_t> &order)
{
    ARK_ASSERT(order.size() == w.ops.size(),
               "schedule order must cover every op");
    ServeWorkload out;
    out.name = w.name;
    out.input_index = w.input_index;
    out.ops.reserve(w.ops.size());
    for (size_t idx : order) {
        ARK_ASSERT(idx < w.ops.size(), "schedule index out of range");
        out.ops.push_back(w.ops[idx]);
    }
    return out;
}

} // namespace ark
