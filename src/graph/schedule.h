/**
 * @file
 * Schedulers over the `HeGraph` dependence IR: pick a topological
 * order (and an eviction discipline) that minimizes evk streaming —
 * the paper's Min-KS inter-operation key reuse applied at schedule
 * time instead of at key-generation time.
 *
 * Policies:
 *  - SourceOrder: the identity baseline — replay the trace exactly as
 *    emitted (what the simulator and the FCFS server always did).
 *  - EvkCluster: greedy list scheduling that keeps issuing ready ops
 *    sharing the live evk before switching keys, turning interleaved
 *    emission orders (unhoisted BSGS baby/giant alternation,
 *    convolution tap walks) back into contiguous same-key runs that
 *    hit in the scratchpad.
 *  - BeladyResidency: source order with offline-optimal (MIN) evk
 *    eviction — no reordering, but the residency upper bound any
 *    online eviction policy chases; the gap between it and EvkCluster
 *    under LRU is the traffic a smarter cache could still remove.
 *
 * Every policy emits a `ScheduledProgram`: the chosen order, the
 * reordered trace, and a predicted residency report for the requested
 * scratchpad slot capacity. `ArkSimulator::runScheduled` replays one
 * against the cycle model and reports the HBM-traffic delta vs source
 * order; `TrafficAnalyzer::analyzeScheduled` maps it onto the Fig. 2
 * traffic/intensity axes.
 */

#pragma once

#include "graph/he_graph.h"
#include "graph/residency.h"

namespace ark {

/** Scheduling disciplines (see file header). */
enum class SchedulePolicy {
    SourceOrder,
    EvkCluster,
    BeladyResidency,
};

const char *schedulePolicyName(SchedulePolicy p);

/** A scheduled program: an order, its trace, and its residency plan. */
struct ScheduledProgram
{
    SchedulePolicy policy = SchedulePolicy::SourceOrder;
    /** order[i] = graph-node (source-trace) index executed i-th. */
    std::vector<size_t> order;
    /** The original lifted trace. */
    SimProgram source;
    /** The trace permuted into schedule order. */
    SimProgram scheduled;
    /** Eviction discipline the schedule assumes (Belady only for
     *  BeladyResidency; LRU otherwise, matching the online model). */
    EvictionPolicy eviction = EvictionPolicy::LRU;
    /** Predicted evk residency of `order` under `eviction`. */
    ResidencyReport residency;
};

/**
 * Compute a topological order of @p g under @p policy. Deterministic:
 * ties break toward the smallest source index, and SourceOrder always
 * returns the identity.
 */
std::vector<size_t> scheduleOrder(const HeGraph &g,
                                  SchedulePolicy policy);

/**
 * Schedule @p g end to end: order + reordered trace + residency
 * prediction at @p capacity_evks scratchpad slots (use
 * ArkSimulator::evkSlotCapacity for a machine-consistent value).
 */
ScheduledProgram scheduleGraph(const HeGraph &g, SchedulePolicy policy,
                               size_t capacity_evks);

/** Convenience: lift + schedule a simulator trace in one call. */
ScheduledProgram scheduleProgram(const SimProgram &prog,
                                 SchedulePolicy policy,
                                 size_t capacity_evks);

} // namespace ark
