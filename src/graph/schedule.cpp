#include "graph/schedule.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.h"
#include "graph/builder.h"

namespace ark {

const char *
schedulePolicyName(SchedulePolicy p)
{
    switch (p) {
      case SchedulePolicy::SourceOrder: return "source-order";
      case SchedulePolicy::EvkCluster: return "evk-cluster";
      case SchedulePolicy::BeladyResidency: return "belady-residency";
    }
    return "?";
}

namespace {

std::vector<size_t>
identityOrder(const HeGraph &g)
{
    std::vector<size_t> order(g.nodes.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    return order;
}

/**
 * Greedy evk-clustering list scheduler (Kahn with a key-affine
 * priority). Among ready nodes:
 *   1. an op using the currently live evk (keep the same-key run
 *      going — this is the Min-KS clustering step);
 *   2. an op with no evk (flush key-free work before paying a switch);
 *   3. open a new run on the ready evk with the most ready ops
 *      (largest contiguous run first; fewer switches overall).
 * Every tie breaks toward the smallest source index, so the schedule
 * is deterministic and degrades to source order on a pure chain.
 */
std::vector<size_t>
evkClusterOrder(const HeGraph &g)
{
    const size_t n = g.nodes.size();
    std::vector<size_t> missing(n);
    std::set<size_t> ready; // ordered: smallest source index first
    for (size_t i = 0; i < n; ++i) {
        missing[i] = g.nodes[i].preds.size();
        if (missing[i] == 0)
            ready.insert(i);
    }

    std::vector<size_t> order;
    order.reserve(n);
    int live_evk = -1;

    while (!ready.empty()) {
        size_t pick = n;

        // 1. continue the live same-key run.
        if (live_evk >= 0) {
            for (size_t i : ready) {
                const SimOp &op = g.nodes[i].op;
                if (op.kind == SimOpKind::KeySwitch &&
                    op.evk_id == live_evk) {
                    pick = i;
                    break;
                }
            }
        }
        // 2. key-free ready work.
        if (pick == n) {
            for (size_t i : ready) {
                const SimOp &op = g.nodes[i].op;
                if (op.kind != SimOpKind::KeySwitch ||
                    op.evk_id < 0) {
                    pick = i;
                    break;
                }
            }
        }
        // 3. switch keys: open the widest ready run.
        if (pick == n) {
            std::map<int, size_t> count, first;
            for (size_t i : ready) {
                const int id = g.nodes[i].op.evk_id;
                ++count[id];
                if (!first.count(id))
                    first[id] = i;
            }
            int best_id = -1;
            for (const auto &[id, c] : count) {
                if (best_id < 0 || c > count[best_id] ||
                    (c == count[best_id] &&
                     first[id] < first[best_id]))
                    best_id = id;
            }
            pick = first[best_id];
        }

        ready.erase(pick);
        order.push_back(pick);
        const SimOp &op = g.nodes[pick].op;
        if (op.kind == SimOpKind::KeySwitch && op.evk_id >= 0)
            live_evk = op.evk_id;
        for (size_t s : g.nodes[pick].succs) {
            if (--missing[s] == 0)
                ready.insert(s);
        }
    }
    ARK_ASSERT(order.size() == n, "graph has a dependence cycle");
    return order;
}

} // namespace

std::vector<size_t>
scheduleOrder(const HeGraph &g, SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::SourceOrder:
      case SchedulePolicy::BeladyResidency:
        return identityOrder(g);
      case SchedulePolicy::EvkCluster:
        return evkClusterOrder(g);
    }
    return identityOrder(g);
}

ScheduledProgram
scheduleGraph(const HeGraph &g, SchedulePolicy policy,
              size_t capacity_evks)
{
    ScheduledProgram sp;
    sp.policy = policy;
    sp.order = scheduleOrder(g, policy);
    sp.eviction = policy == SchedulePolicy::BeladyResidency
                      ? EvictionPolicy::Belady
                      : EvictionPolicy::LRU;

    sp.source.name = g.name;
    sp.source.params = g.params;
    sp.source.ops.reserve(g.nodes.size());
    for (const auto &node : g.nodes)
        sp.source.ops.push_back(node.op);

    sp.scheduled.name = g.name;
    sp.scheduled.params = g.params;
    sp.scheduled.ops.reserve(g.nodes.size());
    for (size_t idx : sp.order)
        sp.scheduled.ops.push_back(g.nodes[idx].op);

    sp.residency =
        predictResidency(g, sp.order, capacity_evks, sp.eviction);
    return sp;
}

ScheduledProgram
scheduleProgram(const SimProgram &prog, SchedulePolicy policy,
                size_t capacity_evks)
{
    return scheduleGraph(liftProgram(prog), policy, capacity_evks);
}

} // namespace ark
