/**
 * @file
 * Dependence-graph IR for HE programs — the scheduling counterpart of
 * the linear `SimProgram` trace.
 *
 * HE applications have no dynamic control flow, so a program *trace*
 * is a straight line; but the underlying dataflow is not: BSGS baby
 * rotations all consume one common input, giant-step groups accumulate
 * independently, and plaintext multiplies join only at the next
 * rescale. An `HeGraph` makes that slack explicit as a DAG of HE-op
 * nodes with predecessor/successor edges, so a scheduler
 * (graph/schedule.h) can choose *any* topological order — in
 * particular one that clusters ops sharing an evk (the paper's Min-KS
 * key-reuse lever applied at schedule time) — and a residency planner
 * (graph/residency.h) can bound the scratchpad traffic of that order.
 *
 * Two builders lift into this IR (graph/builder.h): simulator traces
 * (phase-granular dependence, for timing exploration) and serving
 * workloads (bit-exact commutation dependence, for reordering real
 * requests without changing a single output bit).
 */

#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "sim/program.h"

namespace ark {

/** One HE op instance in the dependence graph. */
struct HeNode
{
    /** The op payload. `op.tag` is a view into the lifted program's
     *  storage (see SimOp::tag); the graph does not extend its
     *  lifetime. */
    SimOp op;
    /** Position of this op in the lifted linear trace. Source order
     *  (i.e. node index order) is always a valid topological order. */
    size_t index = 0;
    /** Nodes that must execute before this one (value, evk-chain, or
     *  barrier edges). */
    std::vector<size_t> preds;
    /** Nodes that must execute after this one. */
    std::vector<size_t> succs;
};

/** A whole program as a DAG. Node index == source-trace position. */
struct HeGraph
{
    std::string name;
    CkksParams params;
    std::vector<HeNode> nodes;

    size_t edgeCount() const
    {
        size_t e = 0;
        for (const auto &n : nodes)
            e += n.preds.size();
        return e;
    }

    /** Distinct evk ids referenced (the Min-KS working set size). */
    size_t distinctEvks() const
    {
        std::set<int> ids;
        for (const auto &n : nodes) {
            if (n.op.evk_id >= 0)
                ids.insert(n.op.evk_id);
        }
        return ids.size();
    }

    /**
     * True iff @p order is a permutation of all nodes that respects
     * every dependence edge — the validity contract every scheduling
     * policy must satisfy (tests/test_scheduler.cpp checks it for each
     * policy on each workload trace).
     */
    bool isTopological(const std::vector<size_t> &order) const
    {
        if (order.size() != nodes.size())
            return false;
        std::vector<size_t> pos(nodes.size(), nodes.size());
        for (size_t i = 0; i < order.size(); ++i) {
            if (order[i] >= nodes.size() ||
                pos[order[i]] != nodes.size())
                return false; // out of range or duplicate
            pos[order[i]] = i;
        }
        for (const auto &n : nodes) {
            for (size_t p : n.preds) {
                if (pos[p] >= pos[n.index])
                    return false;
            }
        }
        return true;
    }
};

} // namespace ark
