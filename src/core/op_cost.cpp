#include "core/op_cost.h"

#include <cmath>

#include "common/math_util.h"

namespace ark {

double
CostModel::nttLimb() const
{
    // N/2 butterflies per stage, log2 N stages; plus N twisting mults
    // in the 4-step organization (generated on the fly by OF-Twist but
    // still multiplied).
    const double n = static_cast<double>(p_.degree);
    return n / 2.0 * log2Exact(p_.degree) + n;
}

double
CostModel::bconv(size_t in_limbs, size_t out_limbs) const
{
    // Stage 1: one mult per input word (phat_j^-1); stage 2: the base
    // table matmul, in_limbs * out_limbs MACs per coefficient.
    const double n = static_cast<double>(p_.degree);
    return n * in_limbs +
           n * static_cast<double>(in_limbs) * out_limbs;
}

OpCost
CostModel::keySwitch(int level) const
{
    const int a = p_.alpha();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = a;
    const int digits = (level + a) / a;
    const double n = static_cast<double>(p_.degree);

    OpCost c;
    for (int d = 0; d < digits; ++d) {
        const size_t lo = static_cast<size_t>(d) * a;
        const size_t hi = std::min(lo + a, nq);
        const size_t dig = hi - lo;
        const size_t ext = nq - dig + np;
        c.ntt += static_cast<double>(dig + ext) * nttLimb(); // INTT+NTT
        c.bconv += bconv(dig, ext);
    }
    // Multiply-accumulate with the evk: 2 output polys x digits
    // operands x (nq + np) limbs.
    c.evk_mult += 2.0 * digits * (nq + np) * n;
    // ModDown: INTT of np special limbs, BConv to nq, NTT back, plus
    // the subtract-and-scale pass (2 polys).
    c.ntt += 2.0 * (np + nq) * nttLimb();
    c.bconv += 2.0 * bconv(np, nq);
    c.other += 2.0 * nq * n;
    return c;
}

OpCost
CostModel::hmult(int level) const
{
    OpCost c = keySwitch(level);
    const double n = static_cast<double>(p_.degree);
    c.other += 4.0 * (level + 1) * n; // tensor d0,d1,d2
    OpCost r = rescale(level);
    c.ntt += r.ntt;
    c.other += r.other;
    return c;
}

OpCost
CostModel::hrot(int level) const
{
    // Automorphism itself is a permutation (no mults); the cost is the
    // key switch plus the final additions (counted as "other" wiring).
    OpCost c = keySwitch(level);
    const double n = static_cast<double>(p_.degree);
    c.other += (level + 1) * n * 0.0; // permutation: zero mults
    return c;
}

OpCost
CostModel::pmult(int level, bool of_limb) const
{
    OpCost c;
    const double n = static_cast<double>(p_.degree);
    c.other += 2.0 * (level + 1) * n; // pointwise on both polys
    if (of_limb) {
        // Eq. 12: regenerate level limbs with one NTT each (the mod-q_i
        // reduction is a mult-free pass in hardware).
        c.ntt += static_cast<double>(level) * nttLimb();
    }
    return c;
}

OpCost
CostModel::rescale(int level) const
{
    OpCost c;
    const double n = static_cast<double>(p_.degree);
    // INTT of the dropped limb + NTT of its reduction into each
    // remaining limb (2 polys), plus the subtract-scale pass.
    c.ntt += 2.0 * (1 + level) * nttLimb();
    c.other += 2.0 * level * n;
    return c;
}

} // namespace ark
