#include "core/f1_analysis.h"

namespace ark {

F1Utilization
scaledF1Bound(const CkksParams &params, const HdftPlan &plan,
              const ScaledF1Config &cfg)
{
    TrafficAnalyzer analyzer(params);
    AlgoConfig baseline; // no Min-KS, no OF-Limb
    TrafficPoint pt = analyzer.analyze(plan, baseline);

    F1Utilization u;
    u.load_time_s = pt.totalBytes() / cfg.hbm_bytes_per_s;
    u.possible_mults = cfg.modmuls * cfg.freq_hz * u.load_time_s;
    u.required_mults = pt.mod_mults;
    u.utilization = u.required_mults / u.possible_mults;
    return u;
}

} // namespace ark
