/**
 * @file
 * Analytical modular-multiplication counts for CKKS primary functions
 * and primitive HE ops (paper Section III / Fig. 4).
 *
 * Every HE op decomposes into (I)NTT, BConv, automorphism, and
 * element-wise functions; an accelerator's computational capability is
 * quantified by modular multipliers, so the cost model counts modular
 * mults per function. These counts drive both the Fig. 4 breakdown
 * (HRot composition vs dnum) and the cycle model's FU occupancy.
 */

#pragma once

#include <cstddef>

#include "ckks/params.h"

namespace ark {

/** Modular-mult counts of one HE op split by primary function. */
struct OpCost
{
    double ntt = 0;      ///< (I)NTT butterflies (one mult each)
    double bconv = 0;    ///< BConv MAC multiplies (both stages)
    double evk_mult = 0; ///< element-wise multiplies with evk polys
    double other = 0;    ///< automorphism-adjacent / misc elementwise

    double total() const { return ntt + bconv + evk_mult + other; }
};

/** Cost model bound to one parameter set. */
class CostModel
{
  public:
    explicit CostModel(const CkksParams &params) : p_(params) {}

    /** Mults for one forward or inverse NTT of a single limb. */
    double nttLimb() const;

    /** Mults for BConv from @p in_limbs to @p out_limbs (Eq. 4). */
    double bconv(size_t in_limbs, size_t out_limbs) const;

    /** Generalized key-switching (Alg. 2) at level @p level. */
    OpCost keySwitch(int level) const;

    /** HMult at level @p level (tensor + key switch + rescale). */
    OpCost hmult(int level) const;

    /** HRot at level @p level (automorphism + key switch). */
    OpCost hrot(int level) const;

    /** PMult, optionally with OF-Limb limb extension NTTs. */
    OpCost pmult(int level, bool of_limb) const;

    /** HRescale at level @p level. */
    OpCost rescale(int level) const;

    const CkksParams &params() const { return p_; }

  private:
    CkksParams p_;
};

} // namespace ark
