#include "core/traffic_analyzer.h"

namespace ark {

TrafficPoint
TrafficAnalyzer::analyze(const HdftPlan &plan, const AlgoConfig &cfg) const
{
    TrafficPoint pt;
    for (const auto &it : plan.iterations) {
        // evk traffic: every distinct key streams from HBM once (with
        // Min-KS the reused key stays pinned in the scratchpad, paper
        // Section V); under the baseline every HRot streams its own.
        size_t evks = 0;
        switch (cfg.schedule) {
          case KeySchedule::Baseline:
            evks = it.distinct_evks_baseline;
            break;
          case KeySchedule::MinimalKS:
            evks = it.distinct_evks_minimal;
            break;
          case KeySchedule::MinKS:
            evks = it.distinct_evks_minks;
            break;
        }
        pt.evk_bytes += static_cast<double>(evks) *
                        HdftPlan::evkBytes(params_, it.level);
        pt.plaintext_bytes +=
            static_cast<double>(it.pmults) *
            HdftPlan::plaintextBytes(params_, it.level, cfg.of_limb);

        // Compute: every HRot is a key switch; every PMult is an
        // element-wise multiply plus, with OF-Limb, the limb-extension
        // NTTs (the "runtime data generation" compute overhead).
        pt.mod_mults += static_cast<double>(it.hrots) *
                        cost_.hrot(it.level).total();
        pt.mod_mults += static_cast<double>(it.pmults) *
                        cost_.pmult(it.level, cfg.of_limb).total();
    }
    return pt;
}

TrafficPoint
TrafficAnalyzer::analyzeScheduled(const ScheduledProgram &sp,
                                  const AlgoConfig &cfg) const
{
    TrafficPoint pt;
    pt.evk_bytes = sp.residency.evk_bytes;
    for (const auto &op : sp.scheduled.ops) {
        switch (op.kind) {
          case SimOpKind::KeySwitch:
            pt.mod_mults += cost_.keySwitch(op.level).total();
            break;
          case SimOpKind::PMult: {
            const bool of = cfg.of_limb && op.of_limb_eligible;
            pt.plaintext_bytes += static_cast<double>(
                HdftPlan::plaintextBytes(params_, op.level, of));
            pt.mod_mults += cost_.pmult(op.level, of).total();
            break;
          }
          case SimOpKind::Rescale:
            pt.mod_mults += cost_.rescale(op.level).total();
            break;
          case SimOpKind::Elementwise:
          case SimOpKind::ModRaise:
            // No off-chip operand stream; elementwise mults are noise
            // next to the key-switch terms on the Fig. 2 axes.
            break;
        }
    }
    return pt;
}

TrafficPoint
TrafficAnalyzer::analyzeMeasured(const KernelStats &stats) const
{
    TrafficPoint pt;
    const double wb = static_cast<double>(params_.word_bytes);
    pt.evk_bytes = static_cast<double>(stats.evk_words) * wb;
    pt.plaintext_bytes =
        static_cast<double>(stats.plaintext_words) * wb;
    pt.mod_mults = static_cast<double>(stats.totalMults());
    return pt;
}

} // namespace ark
