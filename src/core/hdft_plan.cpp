#include "core/hdft_plan.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

size_t
HdftPlan::totalHrots() const
{
    size_t t = 0;
    for (const auto &it : iterations)
        t += it.hrots;
    return t;
}

size_t
HdftPlan::totalPmults() const
{
    size_t t = 0;
    for (const auto &it : iterations)
        t += it.pmults;
    return t;
}

size_t
HdftPlan::distinctEvks(KeySchedule sched) const
{
    size_t t = 0;
    for (const auto &it : iterations) {
        switch (sched) {
          case KeySchedule::Baseline:
            t += it.distinct_evks_baseline;
            break;
          case KeySchedule::MinimalKS:
            t += it.distinct_evks_minimal;
            break;
          case KeySchedule::MinKS:
            t += it.distinct_evks_minks;
            break;
        }
    }
    return t;
}

size_t
HdftPlan::evkBytes(const CkksParams &p, int level)
{
    const int a = p.alpha();
    const int digits = (level + a) / a;
    return 2ULL * digits * (level + 1 + a) * p.degree * p.word_bytes;
}

size_t
HdftPlan::plaintextBytes(const CkksParams &p, int level, bool of_limb)
{
    const size_t limbs = of_limb ? 1 : static_cast<size_t>(level) + 1;
    return limbs * p.degree * p.word_bytes;
}

HdftPlan
HdftPlan::make(const CkksParams &p, bool inverse, int top_level)
{
    HdftPlan plan;
    plan.params = p;
    plan.inverse = inverse;

    const int k = plan.radix_log2; // radix 2^5
    const int log_n = log2Exact(p.num_slots);
    const int num_iters = (log_n + k - 1) / k;
    // (k1, k2) = (3, 3): 2^k1 baby and 2^k2 giant steps per iteration.
    const int k1 = 3, k2 = k + 1 - 3;

    // Per-iteration raw counts: pre-rotation + (2^k1 - 1) baby +
    // (2^k2 - 1) giant rotations; (2^(k+1) - 1) diagonals. The paper's
    // "additional optimizations" (merging the first iteration's
    // pre-rotation, folding sparse diagonals) land the full transform
    // at 40 HRots / 158 PMults; we apply the same trim uniformly.
    const size_t raw_rots_per_iter =
        1 + ((1u << k1) - 1) + ((1u << k2) - 1);
    const size_t raw_pmults_per_iter = (1u << (k + 1)) - 1;
    const double rot_trim =
        40.0 / static_cast<double>(raw_rots_per_iter * num_iters);
    const double pm_trim =
        158.0 / static_cast<double>(raw_pmults_per_iter * num_iters);

    for (int i = 0; i < num_iters; ++i) {
        HdftIteration it;
        it.level = top_level - i;
        ARK_ASSERT(it.level >= 0, "H-(I)DFT runs out of levels");
        it.hrots = static_cast<size_t>(
            std::llround(raw_rots_per_iter * rot_trim));
        it.pmults = static_cast<size_t>(
            std::llround(raw_pmults_per_iter * pm_trim));
        it.distinct_evks_baseline = it.hrots;
        it.distinct_evks_minimal = 3; // pre + baby + giant (Fig. 1b)
        it.distinct_evks_minks = 2;   // baby + giant (Fig. 1c)
        plan.iterations.push_back(it);
    }
    return plan;
}

} // namespace ark
