/**
 * @file
 * The scaled-F1 utilization analysis of paper Section III-C.
 *
 * F1 scaled to bootstrappable parameters (NTTUs with
 * 0.5*sqrt(N)*log N = 2048 modular multipliers, 40,960 total) is
 * bounded by the time to stream the single-use H-(I)DFT operands over
 * a 3 TB/s HBM3 system; the achievable modular-multiplier utilization
 * is the transform's compute divided by the mults the machine could
 * have executed during that stream time (paper: 8.61% for H-IDFT,
 * 13.32% for H-DFT).
 */

#pragma once

#include "core/traffic_analyzer.h"

namespace ark {

/** Result of the bound analysis for one transform. */
struct F1Utilization
{
    double load_time_s = 0;       ///< single-use bytes / bandwidth
    double possible_mults = 0;    ///< multipliers * freq * load time
    double required_mults = 0;    ///< the transform's actual compute
    double utilization = 0;       ///< required / possible
};

/** Parameters of the hypothetical scaled F1. */
struct ScaledF1Config
{
    double modmuls = 40960;        ///< modular multipliers on chip
    double freq_hz = 1e9;          ///< fully pipelined at 1 GHz
    double hbm_bytes_per_s = 3e12; ///< HBM3-class system
};

/** Compute the utilization bound for an H-(I)DFT under baseline
 *  algorithms (no Min-KS / OF-Limb — the Section III-C setting). */
F1Utilization scaledF1Bound(const CkksParams &params,
                            const HdftPlan &plan,
                            const ScaledF1Config &cfg);

} // namespace ark
