/**
 * @file
 * Structural plan of the FFT-like homomorphic (I)DFT (paper Alg. 3 +
 * Eq. 8) and its per-key-schedule evk requirements (Fig. 1).
 *
 * For the ARK configuration (n = 2^15 slots, radix 2^k = 32,
 * (k1, k2) = (3, 3)) each H-(I)DFT runs log_32(n) = 3 BSGS iterations;
 * with the paper's additional optimizations the whole transform
 * performs 40 HRots and 158 PMults, needing 40 distinct rotation keys
 * and 158 plaintexts under the baseline schedule. Min-KS reduces the
 * distinct keys to 2 per iteration; OF-Limb reduces each plaintext to
 * its q0 limb.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "boot/linear_transform.h" // KeySchedule
#include "ckks/params.h"

namespace ark {

/** One BSGS iteration of the homomorphic (I)DFT. */
struct HdftIteration
{
    int level = 0;       ///< multiplicative level it executes at
    size_t hrots = 0;    ///< rotations performed
    size_t pmults = 0;   ///< plaintext multiplications
    size_t distinct_evks_baseline = 0;
    size_t distinct_evks_minimal = 0; ///< Halevi-Shoup (pre+baby+giant)
    size_t distinct_evks_minks = 0;   ///< ARK Min-KS (baby+giant)
};

/** Full plan for one homomorphic DFT or IDFT. */
struct HdftPlan
{
    CkksParams params;
    bool inverse = false; ///< true: H-IDFT (runs at the top levels)
    int radix_log2 = 5;   ///< 2^k
    std::vector<HdftIteration> iterations;

    size_t totalHrots() const;
    size_t totalPmults() const;
    size_t distinctEvks(KeySchedule sched) const;

    /** Bytes of one evk actually streamed at level ell (partial limbs
     *  at lower levels). */
    static size_t evkBytes(const CkksParams &p, int level);

    /** Bytes of one plaintext operand at level ell. */
    static size_t plaintextBytes(const CkksParams &p, int level,
                                 bool of_limb);

    /**
     * Build the ARK plan for H-IDFT / H-DFT.
     * @param top_level level of the first iteration (H-IDFT starts at
     *        L; H-DFT starts after EvalMod).
     */
    static HdftPlan make(const CkksParams &p, bool inverse,
                         int top_level);
};

} // namespace ark
