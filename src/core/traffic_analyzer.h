/**
 * @file
 * Off-chip traffic and arithmetic-intensity analysis of the
 * homomorphic (I)DFT under the three algorithm configurations of
 * Fig. 2: baseline, +Min-KS, +Min-KS+OF-Limb.
 *
 * Traffic counts the single-use operands (evks and plaintexts) that
 * must stream from HBM per transform; arithmetic intensity divides the
 * modular-mult count by those bytes. The paper's headline numbers:
 * Min-KS raises H-IDFT intensity 2.6x (H-DFT 2.0x), OF-Limb a further
 * 4.0x (2.9x), reaching 11.1 (9.6) ops/byte and removing 88% (78%) of
 * off-chip access.
 */

#pragma once

#include "core/hdft_plan.h"
#include "core/op_cost.h"
#include "graph/schedule.h"
#include "rns/kernel_stats.h"

namespace ark {

/** One Fig. 2 column. */
struct TrafficPoint
{
    double evk_bytes = 0;
    double plaintext_bytes = 0;
    double mod_mults = 0;

    double totalBytes() const { return evk_bytes + plaintext_bytes; }
    double opsPerByte() const { return mod_mults / totalBytes(); }
};

/** Algorithm configuration knobs for the analysis. */
struct AlgoConfig
{
    KeySchedule schedule = KeySchedule::Baseline;
    bool of_limb = false;
};

/** Computes Fig. 2 data points for an H-(I)DFT plan. */
class TrafficAnalyzer
{
  public:
    explicit TrafficAnalyzer(const CkksParams &params)
        : params_(params), cost_(params)
    {
    }

    /** Traffic + compute of one full H-(I)DFT under @p cfg. */
    TrafficPoint analyze(const HdftPlan &plan,
                         const AlgoConfig &cfg) const;

    /**
     * Traffic + compute from *measured* kernel tallies instead of the
     * analytic plan: a KernelBackend records what actually executed
     * (per-kernel modular mults, evk and plaintext operand streams)
     * while the functional library runs a transform, and this converts
     * those counts into the same Fig. 2 axes. Capture with
     * backend.resetStats() / backend.stats() around the region of
     * interest.
     */
    TrafficPoint analyzeMeasured(const KernelStats &stats) const;

    /**
     * Traffic + compute of a *scheduled* trace (graph/schedule.h):
     * evk bytes come from the schedule's residency prediction (what
     * actually streams under its issue order and eviction policy,
     * rather than the one-stream-per-distinct-key assumption of
     * analyze()), plaintext bytes and modular mults from the per-op
     * cost model over the trace. This puts scheduler policies on the
     * same Fig. 2 axes as the algorithm configurations.
     */
    TrafficPoint analyzeScheduled(const ScheduledProgram &sp,
                                  const AlgoConfig &cfg) const;

  private:
    CkksParams params_;
    CostModel cost_;
};

} // namespace ark
