/**
 * @file
 * CKKS encoder: complex slot vectors <-> ring plaintexts (paper Eq. 1).
 *
 * Encoding computes Pm ~= Delta * IDFT(m) using the canonical
 * embedding: slot j corresponds to the polynomial's value at
 * zeta^(5^j) (zeta a primitive 2N-th complex root of unity), with
 * conjugate symmetry supplying the other half of the evaluation
 * points. The special FFT runs in O(n log n) with twiddles indexed by
 * the rotation group, so slot rotation by r corresponds exactly to the
 * Galois automorphism X -> X^(5^r) used by HRot.
 *
 * Sparse packing (n < N/2 slots) is handled by replicating the message
 * N/(2n) times, which makes the plaintext's coefficient support land
 * on multiples of the gap — the structure CKKS bootstrapping relies
 * on.
 */

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "ckks/context.h"

namespace ark {

using Complex = std::complex<double>;

/** Encoder/decoder bound to one context. */
class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext &ctx);

    /** Max slots (N/2). */
    size_t maxSlots() const { return half_; }

    /**
     * Encode @p msg (length a power of two <= N/2) at @p level with
     * scale @p scale (0 means the context's default Delta).
     */
    Plaintext encode(const std::vector<Complex> &msg, int level,
                     double scale = 0) const;

    /** Encode a real vector. */
    Plaintext encodeReal(const std::vector<double> &msg, int level,
                         double scale = 0) const;

    /**
     * Encode the same scalar in every slot. Scalar plaintexts have
     * constant coefficient vectors, which CAdd/CMult exploit.
     */
    Plaintext encodeScalar(Complex value, int level,
                           double scale = 0) const;

    /**
     * Decode @p num_slots slots from a plaintext. The plaintext may be
     * in either representation; the scale recorded in it is divided
     * out.
     */
    std::vector<Complex> decode(const Plaintext &pt,
                                size_t num_slots) const;

    /** Forward special FFT (decode direction), exposed for tests and
     *  for generating the H-(I)DFT twiddle plaintexts. */
    void fftSpecial(std::vector<Complex> &vals) const;

    /** Inverse special FFT (encode direction), including the 1/n. */
    void fftSpecialInv(std::vector<Complex> &vals) const;

  private:
    /** Round scaled complex coefficients into an RNS polynomial. */
    Plaintext coeffsToPlaintext(const std::vector<Complex> &coeffs,
                                int level, double scale) const;

    const CkksContext &ctx_;
    size_t n_;    ///< ring degree N
    size_t half_; ///< N/2
    std::vector<Complex> zeta_pows_; ///< zeta^k for k in [0, 2N)
    std::vector<u32> rot_group_;     ///< 5^j mod 2N for j in [0, N/2)
};

} // namespace ark
