/**
 * @file
 * CkksContext: all precomputed material for one CKKS parameter set.
 *
 * Holds the RNS prime chains C = {q_0..q_L} and B = {p_0..p_alpha-1}
 * (paper Table I), NTT tables for every prime, the Han-Ki generalized
 * key-switching gadget constants, and the per-level rescale constants.
 * Every scheme object (encoder, keygen, evaluator, bootstrapper) is
 * constructed from a shared context.
 */

#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "ckks/params.h"
#include "rns/automorphism.h"
#include "rns/backend.h"
#include "rns/bconv.h"
#include "rns/ntt.h"
#include "rns/poly.h"

namespace ark {

/** Shared precomputation for a CKKS instance. */
class CkksContext
{
  public:
    explicit CkksContext(CkksParams params);

    const CkksParams &params() const { return params_; }
    size_t degree() const { return params_.degree; }
    int maxLevel() const { return params_.max_level; }
    int alpha() const { return params_.alpha(); }
    int dnum() const { return params_.dnum; }

    /** The q_i prime chain (C in the paper), length L+1. */
    const std::vector<Modulus> &qModuli() const { return q_moduli_; }
    /** The special primes (B in the paper), length alpha. */
    const std::vector<Modulus> &pModuli() const { return p_moduli_; }

    const std::vector<NttTables> &qTables() const { return q_tables_; }
    const std::vector<NttTables> &pTables() const { return p_tables_; }

    /** Moduli for a level-ell polynomial: q_0..q_ell. */
    std::vector<Modulus> levelModuli(int level) const;

    /** Moduli for an extended (key-switching) polynomial at level ell:
     *  q_0..q_ell followed by p_0..p_alpha-1. */
    std::vector<Modulus> keyModuli(int level) const;

    /**
     * NTT table for limb @p limb of an extended level-@p level
     * polynomial (q limbs first, then p limbs).
     */
    const NttTables &keyTable(size_t limb, int level) const;

    /** Number of key-switching digits in use at @p level . */
    int numDigits(int level) const;

    /**
     * Gadget constant g_i for digit @p digit reduced mod every prime of
     * the extended basis [q_0..q_L, p_0..p_alpha-1]. g_i is 1 mod the
     * primes of C_i, 0 mod the other q primes.
     */
    const std::vector<u64> &gadget(int digit) const
    {
        return gadget_[digit];
    }

    /** P = prod(B) reduced mod q_i, and its inverse mod q_i. */
    u64 pModQ(size_t i) const { return p_mod_q_[i]; }
    u64 pInvModQ(size_t i) const { return p_inv_mod_q_[i]; }

    /** q_level^{-1} mod q_i for i < level (rescale constants). */
    u64 qLastInvModQ(int level, size_t i) const
    {
        return q_last_inv_[level][i];
    }

    /** q_j mod q_i for ModRaise (j > i not required; full matrix). */
    u64 qModQ(size_t j, size_t i) const
    {
        return q_mod_q_[j * q_moduli_.size() + i];
    }

    /** Cached automorphism for a Galois element. */
    const Automorphism &automorphism(u64 galois_elt) const;

    /**
     * The kernel engine executing all limb-level compute for this
     * context (selected by CkksParams::backend, overridable with
     * ARK_BACKEND / ARK_THREADS). Every scheme layer dispatches its
     * kernels through this object; its KernelStats accumulate the
     * measured per-kernel counts the core/ and sim/ models consume.
     */
    KernelBackend &backend() const { return *backend_; }

    /**
     * The backend's poly-buffer recycler. Scheme layers acquire
     * fully-overwritten hot-path temporaries (key-switch digits,
     * accumulators, BConv/automorphism scratch) here instead of
     * heap-allocating per op; see rns/poly_pool.h for the contract.
     */
    PolyPool &pool() const { return backend_->pool(); }

    /** NTT-table pointers for the first @p count q limbs (cached —
     *  built once per count; key-switch paths call this per op). */
    const std::vector<const NttTables *> &qTablePtrs(size_t count) const;
    /** Per-limb tables of an extended level-@p level poly
     *  (q_0..q_level then the specials); cached per level. */
    const std::vector<const NttTables *> &keyTablePtrs(int level) const;

    /**
     * Cached BConv tables for key-switch digit @p digit at @p level
     * (digit primes -> every other prime of the extended basis).
     */
    const BaseConverter &digitConverter(int level, int digit) const;
    /** Cached BConv tables for ModDown: B -> q_0..q_level. */
    const BaseConverter &modDownConverter(int level) const;

    /**
     * Forward NTT of every limb of an extended level-@p level poly
     * (limbs ordered q first, then specials).
     */
    void keyNttForward(RnsPoly &p, int level) const;
    void keyNttInverse(RnsPoly &p, int level) const;

  private:
    CkksParams params_;
    std::unique_ptr<KernelBackend> backend_;
    std::vector<Modulus> q_moduli_;
    std::vector<Modulus> p_moduli_;
    std::vector<NttTables> q_tables_;
    std::vector<NttTables> p_tables_;
    std::vector<std::vector<u64>> gadget_;
    std::vector<u64> p_mod_q_;
    std::vector<u64> p_inv_mod_q_;
    std::vector<std::vector<u64>> q_last_inv_;
    std::vector<u64> q_mod_q_;
    /**
     * Guards every lazily filled cache below so concurrent evaluator
     * callers (the serving runtime) can share one context. Returned
     * references stay valid across later insertions (std::map nodes
     * are stable), so the lock only covers lookup/insert.
     */
    mutable std::mutex cache_m_;
    mutable std::map<u64, std::unique_ptr<Automorphism>> auto_cache_;
    /** (level, digit) -> decompose converter; level -> ModDown one. */
    mutable std::map<std::pair<int, int>,
                     std::unique_ptr<BaseConverter>>
        digit_bconv_cache_;
    mutable std::map<int, std::unique_ptr<BaseConverter>>
        moddown_bconv_cache_;
    mutable std::map<size_t, std::vector<const NttTables *>>
        q_table_ptrs_cache_;
    mutable std::map<int, std::vector<const NttTables *>>
        key_table_ptrs_cache_;
};

/** An encoded (unencrypted) polynomial with scale bookkeeping. */
struct Plaintext
{
    RnsPoly poly;      ///< Eval representation, level+1 limbs
    double scale = 0;  ///< Delta factor baked into the coefficients
    int level = 0;
};

/** An RLWE ciphertext (B, A) with decrypt(B, A) = B + A * s. */
struct Ciphertext
{
    RnsPoly b;
    RnsPoly a;
    double scale = 0;
    size_t slots = 0;

    int level() const { return static_cast<int>(b.numLimbs()) - 1; }
};

} // namespace ark
