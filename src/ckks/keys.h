/**
 * @file
 * Key material for CKKS: secret, public, and evaluation keys.
 *
 * An evaluation key (evk, paper Section II-C) for a source key s'
 * (s^2 for HMult, psi_r(s) for HRot) consists of dnum RLWE pairs over
 * the extended modulus P*Q: evk_d = (b_d, a_d) with
 * b_d = -a_d * s + e_d + P * g_d * s', where g_d is the RNS gadget
 * constant of digit d. Table III of the paper: one evk is 120 MiB at
 * the ARK parameters — the off-chip traffic Min-KS exists to avoid.
 */

#pragma once

#include <vector>

#include "rns/poly.h"

namespace ark {

/** Secret key in Eval representation over [q_0..q_L, p_0..p_alpha-1]. */
struct SecretKey
{
    RnsPoly s;
};

/**
 * Public encryption key at max level (q limbs only, Eval rep).
 *
 * When `seeded` is set, `a` was expanded from `a_seed` in the
 * canonical order of docs/wire_format.md §6, so the wire layer ships
 * only (seed, b) — half the bytes. The in-memory key is always fully
 * expanded; the seed is carried so re-serialization stays compressed.
 */
struct PublicKey
{
    RnsPoly b;
    RnsPoly a;
    u64 a_seed = 0;
    bool seeded = false;
};

/**
 * Evaluation key: dnum pairs over the extended basis, Eval rep.
 *
 * `seeded`/`a_seed` mirror PublicKey: the uniform a_d halves were
 * drawn from Rng(a_seed) in the canonical digit-major, limb-major
 * order (docs/wire_format.md §6), so serialization can omit them.
 */
struct EvalKey
{
    std::vector<RnsPoly> b;
    std::vector<RnsPoly> a;
    u64 a_seed = 0;
    bool seeded = false;

    size_t numDigits() const { return b.size(); }

    /** Bytes of key material (2 * dnum * (L+1+alpha) * N words). */
    size_t byteSize() const
    {
        size_t total = 0;
        for (const auto &p : b)
            total += p.byteSize();
        for (const auto &p : a)
            total += p.byteSize();
        return total;
    }
};

} // namespace ark
