#include "ckks/evaluator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "rns/automorphism.h"
#include "rns/backend.h"
#include "rns/bconv.h"

namespace ark {

CkksEvaluator::CkksEvaluator(const CkksContext &ctx) : ctx_(ctx) {}

void
CkksEvaluator::checkCompatible(const Ciphertext &c1,
                               const Ciphertext &c2) const
{
    ARK_ASSERT(c1.level() == c2.level(), "ciphertext level mismatch");
    const double ratio = c1.scale / c2.scale;
    ARK_ASSERT(ratio > 1.0 - 1e-6 && ratio < 1.0 + 1e-6,
               "ciphertext scale mismatch");
}

Ciphertext
CkksEvaluator::add(const Ciphertext &c1, const Ciphertext &c2) const
{
    checkCompatible(c1, c2);
    const auto moduli = ctx_.levelModuli(c1.level());
    KernelBackend &kb = ctx_.backend();
    Ciphertext r = c1;
    kb.add(c1.b, c2.b, moduli, r.b);
    kb.add(c1.a, c2.a, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &c1, const Ciphertext &c2) const
{
    checkCompatible(c1, c2);
    const auto moduli = ctx_.levelModuli(c1.level());
    KernelBackend &kb = ctx_.backend();
    Ciphertext r = c1;
    kb.sub(c1.b, c2.b, moduli, r.b);
    kb.sub(c1.a, c2.a, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &c) const
{
    const auto moduli = ctx_.levelModuli(c.level());
    KernelBackend &kb = ctx_.backend();
    Ciphertext r = c;
    kb.neg(c.b, moduli, r.b);
    kb.neg(c.a, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::addPlain(const Ciphertext &c, const Plaintext &p) const
{
    ARK_ASSERT(c.level() == p.level, "plaintext level mismatch");
    const double ratio = c.scale / p.scale;
    ARK_ASSERT(ratio > 1.0 - 1e-6 && ratio < 1.0 + 1e-6,
               "plaintext scale mismatch");
    const auto moduli = ctx_.levelModuli(c.level());
    Ciphertext r = c;
    ctx_.backend().add(c.b, p.poly, moduli, r.b);
    return r;
}

Ciphertext
CkksEvaluator::subPlain(const Ciphertext &c, const Plaintext &p) const
{
    ARK_ASSERT(c.level() == p.level, "plaintext level mismatch");
    const auto moduli = ctx_.levelModuli(c.level());
    Ciphertext r = c;
    ctx_.backend().sub(c.b, p.poly, moduli, r.b);
    return r;
}

Ciphertext
CkksEvaluator::mulPlain(const Ciphertext &c, const Plaintext &p) const
{
    ARK_ASSERT(c.level() == p.level, "plaintext level mismatch");
    const auto moduli = ctx_.levelModuli(c.level());
    KernelBackend &kb = ctx_.backend();
    Ciphertext r = c;
    kb.mulEval(c.b, p.poly, moduli, r.b);
    kb.mulEval(c.a, p.poly, moduli, r.a);
    r.scale = c.scale * p.scale;
    return r;
}

Ciphertext
CkksEvaluator::addScalar(const Ciphertext &c, double value) const
{
    // A constant polynomial is constant in the evaluation
    // representation as well, so CAdd is one scalar add per limb word.
    // The constant is rounded to a single wide integer first so all
    // limbs carry residues of the same value (see roundToI128).
    const auto moduli = ctx_.levelModuli(c.level());
    std::vector<u64> residues(moduli.size());
    const i128 k =
        roundToI128(static_cast<long double>(value) * c.scale);
    for (size_t l = 0; l < moduli.size(); ++l)
        residues[l] = reduceI128(k, moduli[l].value());
    Ciphertext r = c;
    ctx_.backend().addScalar(c.b, residues, moduli, r.b);
    return r;
}

Ciphertext
CkksEvaluator::mulScalar(const Ciphertext &c, double value,
                         double scale) const
{
    if (scale == 0)
        scale = ctx_.params().scale();
    const auto moduli = ctx_.levelModuli(c.level());
    std::vector<u64> residues(moduli.size());
    const i128 k = roundToI128(static_cast<long double>(value) * scale);
    for (size_t l = 0; l < moduli.size(); ++l)
        residues[l] = reduceI128(k, moduli[l].value());
    KernelBackend &kb = ctx_.backend();
    Ciphertext r = c;
    kb.mulScalar(c.b, residues, moduli, r.b);
    kb.mulScalar(c.a, residues, moduli, r.a);
    r.scale = c.scale * scale;
    return r;
}

Ciphertext
CkksEvaluator::mulByI(const Ciphertext &c) const
{
    // i is the monomial X^{N/2}; multiplying by it is an exact,
    // noise-free index shift, executed in the coefficient
    // representation as a negacyclic monomial multiply.
    const auto moduli = ctx_.levelModuli(c.level());
    const size_t half = ctx_.degree() / 2;
    KernelBackend &kb = ctx_.backend();
    PolyPool &pool = kb.pool();
    auto shift = [&](const RnsPoly &src) {
        RnsPoly p = src;
        kb.nttInverse(p, ctx_.qTables());
        // Pooled: monomialMul writes every output position.
        RnsPoly out = pool.acquire(p.degree(), p.numLimbs(), Rep::Coeff);
        kb.monomialMul(p, half, moduli, out);
        kb.nttForward(out, ctx_.qTables());
        return out;
    };
    Ciphertext r = c;
    r.b = shift(c.b);
    r.a = shift(c.a);
    return r;
}

std::vector<RnsPoly>
CkksEvaluator::decompose(const RnsPoly &d, int level) const
{
    ARK_ASSERT(d.rep() == Rep::Eval, "decompose expects Eval rep");
    ARK_ASSERT(d.numLimbs() == static_cast<size_t>(level) + 1,
               "limb count must match level");
    const size_t n = ctx_.degree();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = ctx_.pModuli().size();
    const int a = ctx_.alpha();
    const int digits = ctx_.numDigits(level);
    KernelBackend &kb = ctx_.backend();
    PolyPool &pool = kb.pool();

    std::vector<RnsPoly> out;
    out.reserve(digits);
    for (int dig = 0; dig < digits; ++dig) {
        const size_t lo = static_cast<size_t>(dig) * a;
        const size_t hi = std::min(lo + a, nq);

        // Pull the digit limbs, then run the whole BConvRoutine
        // (Alg. 1: INTT -> BConv -> NTT) as one fused backend call.
        // Pooled temporaries: every limb is copied over in full.
        RnsPoly digit = pool.acquire(n, hi - lo, Rep::Eval);
        for (size_t l = lo; l < hi; ++l)
            std::copy(d.limb(l), d.limb(l) + n, digit.limb(l - lo));

        std::vector<const NttTables *> in_tables(hi - lo);
        for (size_t l = lo; l < hi; ++l)
            in_tables[l - lo] = &ctx_.qTables()[l];
        std::vector<const NttTables *> out_tables;
        out_tables.reserve(nq - (hi - lo) + np);
        for (size_t l = 0; l < nq + np; ++l) {
            if (l < lo || l >= hi)
                out_tables.push_back(&ctx_.keyTable(l, level));
        }

        RnsPoly conv = kb.nttBconvNtt(
            digit, in_tables, ctx_.digitConverter(level, dig),
            out_tables);
        pool.release(std::move(digit));

        // Assemble the extended poly with limbs ordered
        // [q_0..q_level, p_0..p_alpha-1].
        RnsPoly ext = pool.acquire(n, nq + np, Rep::Eval);
        size_t conv_idx = 0;
        for (size_t l = 0; l < nq + np; ++l) {
            if (l >= lo && l < hi) {
                std::copy(d.limb(l), d.limb(l) + n, ext.limb(l));
            } else {
                std::copy(conv.limb(conv_idx),
                          conv.limb(conv_idx) + n, ext.limb(l));
                ++conv_idx;
            }
        }
        pool.release(std::move(conv));
        out.push_back(std::move(ext));
    }
    return out;
}

RnsPoly
CkksEvaluator::modDownByP(const RnsPoly &extended, int level) const
{
    ARK_ASSERT(extended.rep() == Rep::Eval, "ModDown expects Eval rep");
    const size_t n = ctx_.degree();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = ctx_.pModuli().size();
    ARK_ASSERT(extended.numLimbs() == nq + np, "not an extended poly");
    KernelBackend &kb = ctx_.backend();
    PolyPool &pool = kb.pool();

    // INTT the special limbs, BConv B -> C, NTT back (Alg. 2 line 6-7)
    // — the same fused digit path key switching uses. Pooled
    // temporaries: special is copied over in full, out is written in
    // full by subMulScalar.
    RnsPoly special = pool.acquire(n, np, Rep::Eval);
    for (size_t l = 0; l < np; ++l)
        std::copy(extended.limb(nq + l), extended.limb(nq + l) + n,
                  special.limb(l));

    std::vector<const NttTables *> in_tables(np);
    for (size_t l = 0; l < np; ++l)
        in_tables[l] = &ctx_.pTables()[l];
    RnsPoly conv = kb.nttBconvNtt(special, in_tables,
                                  ctx_.modDownConverter(level),
                                  ctx_.qTablePtrs(nq));
    pool.release(std::move(special));

    // out = (extended - conv) * P^{-1} limb-wise over the q limbs.
    const auto moduli = ctx_.levelModuli(level);
    std::vector<u64> pinv(nq);
    for (size_t l = 0; l < nq; ++l)
        pinv[l] = ctx_.pInvModQ(l);
    RnsPoly out = pool.acquire(n, nq, Rep::Eval);
    kb.subMulScalar(extended, conv, pinv, moduli, out);
    pool.release(std::move(conv));
    return out;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitchDigits(const std::vector<RnsPoly> &digits,
                               const EvalKey &evk, int level) const
{
    const size_t n = ctx_.degree();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = ctx_.pModuli().size();
    const size_t full_nq = static_cast<size_t>(ctx_.maxLevel()) + 1;
    ARK_ASSERT(digits.size() <=
                   static_cast<size_t>(evk.numDigits()),
               "more digits than the evk provides");
    KernelBackend &kb = ctx_.backend();
    PolyPool &pool = kb.pool();

    // Pooled accumulators: evkMulAcc reads-modifies-writes, so these
    // must start cleared (acquireZeroed, not acquire).
    RnsPoly acc_b = pool.acquireZeroed(n, nq + np, Rep::Eval);
    RnsPoly acc_a = pool.acquireZeroed(n, nq + np, Rep::Eval);
    const auto key_moduli = ctx_.keyModuli(level);
    for (size_t dig = 0; dig < digits.size(); ++dig) {
        kb.evkMulAcc(digits[dig], evk.b[dig], evk.a[dig], nq, full_nq,
                     key_moduli, acc_b, acc_a);
    }
    auto r = std::make_pair(modDownByP(acc_b, level),
                            modDownByP(acc_a, level));
    pool.release(std::move(acc_b));
    pool.release(std::move(acc_a));
    return r;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitch(const RnsPoly &d, const EvalKey &evk,
                         int level) const
{
    auto digits = decompose(d, level);
    auto r = keySwitchDigits(digits, evk, level);
    PolyPool &pool = ctx_.backend().pool();
    for (auto &dig : digits)
        pool.release(std::move(dig));
    return r;
}

Ciphertext
CkksEvaluator::mul(const Ciphertext &c1, const Ciphertext &c2,
                   const EvalKey &evk_mult) const
{
    // Multiplication only needs matching levels; the scales multiply.
    ARK_ASSERT(c1.level() == c2.level(), "ciphertext level mismatch");
    const int level = c1.level();
    const auto moduli = ctx_.levelModuli(level);
    const size_t n = ctx_.degree();
    const size_t nl = moduli.size();
    KernelBackend &kb = ctx_.backend();
    PolyPool &pool = kb.pool();

    // Pooled degree-2 temporaries: each is fully written by its first
    // mulEval before being read.
    RnsPoly d0 = pool.acquire(n, nl, Rep::Eval);
    RnsPoly d1 = pool.acquire(n, nl, Rep::Eval);
    RnsPoly d2 = pool.acquire(n, nl, Rep::Eval);
    kb.mulEval(c1.b, c2.b, moduli, d0);
    kb.mulEval(c1.a, c2.a, moduli, d2);
    // d1 = a1*b2 + a2*b1.
    kb.mulEval(c1.a, c2.b, moduli, d1);
    kb.mulAccEval(c2.a, c1.b, moduli, d1);

    auto [kb_poly, ka_poly] = keySwitch(d2, evk_mult, level);
    pool.release(std::move(d2));

    Ciphertext r;
    r.slots = c1.slots;
    r.scale = c1.scale * c2.scale;
    r.b = pool.acquire(n, nl, Rep::Eval);
    r.a = pool.acquire(n, nl, Rep::Eval);
    kb.add(d0, kb_poly, moduli, r.b);
    kb.add(d1, ka_poly, moduli, r.a);
    pool.release(std::move(d0));
    pool.release(std::move(d1));
    pool.release(std::move(kb_poly));
    pool.release(std::move(ka_poly));
    return r;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &c, const EvalKey &evk_mult) const
{
    return mul(c, c, evk_mult);
}

Ciphertext
CkksEvaluator::rescale(const Ciphertext &c) const
{
    const int level = c.level();
    ARK_ASSERT(level >= 1, "cannot rescale at level 0");
    const auto moduli = ctx_.levelModuli(level);
    const size_t n = ctx_.degree();
    const Modulus &q_last = moduli.back();
    KernelBackend &kb = ctx_.backend();

    std::vector<u64> inv(level);
    for (int l = 0; l < level; ++l)
        inv[l] = ctx_.qLastInvModQ(level, l);

    PolyPool &pool = kb.pool();
    auto drop = [&](const RnsPoly &src) {
        // INTT the last limb, embed its centered residues into each
        // remaining limb, and multiply by q_last^{-1} (floor division
        // in RNS). Pooled temporaries: limbEmbed and subMulScalar
        // write every word of tmp / out.
        std::vector<u64> last(src.limb(level), src.limb(level) + n);
        kb.nttInverseLimb(last.data(), ctx_.qTables()[level]);

        RnsPoly tmp = pool.acquire(n, level, Rep::Coeff);
        kb.limbEmbed(last, q_last, moduli, tmp);
        kb.nttForward(tmp, ctx_.qTablePtrs(level));

        RnsPoly out = pool.acquire(n, level, Rep::Eval);
        kb.subMulScalar(src, tmp, inv, moduli, out);
        pool.release(std::move(tmp));
        return out;
    };

    Ciphertext r;
    r.slots = c.slots;
    r.scale = c.scale / static_cast<double>(q_last.value());
    r.b = drop(c.b);
    r.a = drop(c.a);
    return r;
}

Ciphertext
CkksEvaluator::modDownTo(const Ciphertext &c, int level) const
{
    ARK_ASSERT(level <= c.level(), "modDownTo cannot raise the level");
    Ciphertext r = c;
    r.b.resizeLimbs(level + 1);
    r.a.resizeLimbs(level + 1);
    return r;
}

Ciphertext
CkksEvaluator::applyGalois(const Ciphertext &c, u64 galois_elt,
                           const EvalKey &evk) const
{
    const int level = c.level();
    const auto moduli = ctx_.levelModuli(level);
    const Automorphism &am = ctx_.automorphism(galois_elt);
    KernelBackend &kbe = ctx_.backend();
    PolyPool &pool = kbe.pool();

    RnsPoly b_rot = kbe.automorphism(am, c.b, moduli);
    RnsPoly a_rot = kbe.automorphism(am, c.a, moduli);
    auto [kb, ka] = keySwitch(a_rot, evk, level);
    pool.release(std::move(a_rot));

    Ciphertext r;
    r.slots = c.slots;
    r.scale = c.scale;
    r.b = pool.acquire(ctx_.degree(), moduli.size(), Rep::Eval);
    kbe.add(b_rot, kb, moduli, r.b);
    pool.release(std::move(b_rot));
    pool.release(std::move(kb));
    r.a = std::move(ka);
    return r;
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &c, i64 r,
                      const EvalKey &evk_rot) const
{
    return applyGalois(c, galoisElt(r, ctx_.degree()), evk_rot);
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &c,
                         const EvalKey &evk_conj) const
{
    return applyGalois(c, galoisEltConjugate(ctx_.degree()), evk_conj);
}

std::vector<Ciphertext>
CkksEvaluator::rotateHoisted(const Ciphertext &c,
                             const std::vector<i64> &rotations,
                             const std::vector<const EvalKey *> &evks) const
{
    ARK_ASSERT(rotations.size() == evks.size(),
               "one evk required per rotation amount");
    const int level = c.level();
    const auto moduli = ctx_.levelModuli(level);
    const auto key_moduli = ctx_.keyModuli(level);
    KernelBackend &kbe = ctx_.backend();

    // Hoisting: decompose once; the automorphism commutes with the
    // digit extension, so each rotation only permutes the digits.
    auto digits = decompose(c.a, level);
    PolyPool &pool = kbe.pool();

    std::vector<Ciphertext> out;
    out.reserve(rotations.size());
    for (size_t k = 0; k < rotations.size(); ++k) {
        const u64 g = galoisElt(rotations[k], ctx_.degree());
        const Automorphism &am = ctx_.automorphism(g);

        std::vector<RnsPoly> rot_digits;
        rot_digits.reserve(digits.size());
        for (const auto &dig : digits)
            rot_digits.push_back(kbe.automorphism(am, dig, key_moduli));

        auto [kb, ka] = keySwitchDigits(rot_digits, *evks[k], level);
        for (auto &dig : rot_digits)
            pool.release(std::move(dig));
        RnsPoly b_rot = kbe.automorphism(am, c.b, moduli);

        Ciphertext r;
        r.slots = c.slots;
        r.scale = c.scale;
        r.b = pool.acquire(ctx_.degree(), moduli.size(), Rep::Eval);
        kbe.add(b_rot, kb, moduli, r.b);
        pool.release(std::move(b_rot));
        pool.release(std::move(kb));
        r.a = std::move(ka);
        out.push_back(std::move(r));
    }
    for (auto &dig : digits)
        pool.release(std::move(dig));
    return out;
}

Ciphertext
CkksEvaluator::modRaise(const Ciphertext &c) const
{
    ARK_ASSERT(c.level() == 0, "ModRaise expects a level-0 ciphertext");
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.levelModuli(L);
    const size_t n = ctx_.degree();
    const Modulus &q0 = ctx_.qModuli()[0];
    KernelBackend &kb = ctx_.backend();

    auto raise = [&](const RnsPoly &src) {
        std::vector<u64> coeffs(src.limb(0), src.limb(0) + n);
        kb.nttInverseLimb(coeffs.data(), ctx_.qTables()[0]);

        // Center mod q0 and embed into every limb of the full chain
        // (limbEmbed writes every word of the pooled buffer).
        RnsPoly out = kb.pool().acquire(n, L + 1, Rep::Coeff);
        kb.limbEmbed(coeffs, q0, moduli, out);
        kb.nttForward(out, ctx_.qTables());
        return out;
    };

    Ciphertext r;
    r.slots = c.slots;
    r.scale = c.scale;
    r.b = raise(c.b);
    r.a = raise(c.a);
    return r;
}

} // namespace ark
