#include "ckks/evaluator.h"

#include <cmath>

#include "common/logging.h"
#include "rns/automorphism.h"
#include "rns/bconv.h"

namespace ark {

CkksEvaluator::CkksEvaluator(const CkksContext &ctx) : ctx_(ctx) {}

void
CkksEvaluator::checkCompatible(const Ciphertext &c1,
                               const Ciphertext &c2) const
{
    ARK_ASSERT(c1.level() == c2.level(), "ciphertext level mismatch");
    const double ratio = c1.scale / c2.scale;
    ARK_ASSERT(ratio > 1.0 - 1e-6 && ratio < 1.0 + 1e-6,
               "ciphertext scale mismatch");
}

Ciphertext
CkksEvaluator::add(const Ciphertext &c1, const Ciphertext &c2) const
{
    checkCompatible(c1, c2);
    const auto moduli = ctx_.levelModuli(c1.level());
    Ciphertext r = c1;
    polyAdd(c1.b, c2.b, moduli, r.b);
    polyAdd(c1.a, c2.a, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::sub(const Ciphertext &c1, const Ciphertext &c2) const
{
    checkCompatible(c1, c2);
    const auto moduli = ctx_.levelModuli(c1.level());
    Ciphertext r = c1;
    polySub(c1.b, c2.b, moduli, r.b);
    polySub(c1.a, c2.a, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::negate(const Ciphertext &c) const
{
    const auto moduli = ctx_.levelModuli(c.level());
    Ciphertext r = c;
    polyNeg(c.b, moduli, r.b);
    polyNeg(c.a, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::addPlain(const Ciphertext &c, const Plaintext &p) const
{
    ARK_ASSERT(c.level() == p.level, "plaintext level mismatch");
    const double ratio = c.scale / p.scale;
    ARK_ASSERT(ratio > 1.0 - 1e-6 && ratio < 1.0 + 1e-6,
               "plaintext scale mismatch");
    const auto moduli = ctx_.levelModuli(c.level());
    Ciphertext r = c;
    polyAdd(c.b, p.poly, moduli, r.b);
    return r;
}

Ciphertext
CkksEvaluator::subPlain(const Ciphertext &c, const Plaintext &p) const
{
    ARK_ASSERT(c.level() == p.level, "plaintext level mismatch");
    const auto moduli = ctx_.levelModuli(c.level());
    Ciphertext r = c;
    polySub(c.b, p.poly, moduli, r.b);
    return r;
}

Ciphertext
CkksEvaluator::mulPlain(const Ciphertext &c, const Plaintext &p) const
{
    ARK_ASSERT(c.level() == p.level, "plaintext level mismatch");
    const auto moduli = ctx_.levelModuli(c.level());
    Ciphertext r = c;
    polyMulEval(c.b, p.poly, moduli, r.b);
    polyMulEval(c.a, p.poly, moduli, r.a);
    r.scale = c.scale * p.scale;
    return r;
}

Ciphertext
CkksEvaluator::addScalar(const Ciphertext &c, double value) const
{
    // A constant polynomial is constant in the evaluation
    // representation as well, so CAdd is one scalar add per limb word.
    // The constant is rounded to a single wide integer first so all
    // limbs carry residues of the same value (see roundToI128).
    const auto moduli = ctx_.levelModuli(c.level());
    std::vector<u64> residues(moduli.size());
    const i128 k =
        roundToI128(static_cast<long double>(value) * c.scale);
    for (size_t l = 0; l < moduli.size(); ++l)
        residues[l] = reduceI128(k, moduli[l].value());
    Ciphertext r = c;
    polyAddScalar(c.b, residues, moduli, r.b);
    return r;
}

Ciphertext
CkksEvaluator::mulScalar(const Ciphertext &c, double value,
                         double scale) const
{
    if (scale == 0)
        scale = ctx_.params().scale();
    const auto moduli = ctx_.levelModuli(c.level());
    std::vector<u64> residues(moduli.size());
    const i128 k = roundToI128(static_cast<long double>(value) * scale);
    for (size_t l = 0; l < moduli.size(); ++l)
        residues[l] = reduceI128(k, moduli[l].value());
    Ciphertext r = c;
    polyMulScalar(c.b, residues, moduli, r.b);
    polyMulScalar(c.a, residues, moduli, r.a);
    r.scale = c.scale * scale;
    return r;
}

Ciphertext
CkksEvaluator::mulByI(const Ciphertext &c) const
{
    // i is the monomial X^{N/2}; multiplying by it is an exact,
    // noise-free automorphism-like index shift. In the evaluation
    // representation multiply each position by the eval of X^{N/2}.
    // Simpler: go through the coefficient representation.
    const auto moduli = ctx_.levelModuli(c.level());
    const size_t n = ctx_.degree();
    const size_t half = n / 2;
    auto shift = [&](const RnsPoly &src) {
        RnsPoly p = src;
        polyNttInverse(p, ctx_.qTables());
        RnsPoly out(n, p.numLimbs(), Rep::Coeff);
        for (size_t l = 0; l < p.numLimbs(); ++l) {
            const u64 q = moduli[l].value();
            const u64 *ps = p.limb(l);
            u64 *po = out.limb(l);
            // X^{N/2} * X^k = X^{k + N/2}, wrapping with negation.
            for (size_t k = 0; k < half; ++k)
                po[k + half] = ps[k];
            for (size_t k = half; k < n; ++k)
                po[k - half] = ps[k] == 0 ? 0 : q - ps[k];
        }
        polyNttForward(out, ctx_.qTables());
        return out;
    };
    Ciphertext r = c;
    r.b = shift(c.b);
    r.a = shift(c.a);
    return r;
}

std::vector<RnsPoly>
CkksEvaluator::decompose(const RnsPoly &d, int level) const
{
    ARK_ASSERT(d.rep() == Rep::Eval, "decompose expects Eval rep");
    ARK_ASSERT(d.numLimbs() == static_cast<size_t>(level) + 1,
               "limb count must match level");
    const size_t n = ctx_.degree();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = ctx_.pModuli().size();
    const int a = ctx_.alpha();
    const int digits = ctx_.numDigits(level);

    std::vector<RnsPoly> out;
    out.reserve(digits);
    for (int dig = 0; dig < digits; ++dig) {
        const size_t lo = static_cast<size_t>(dig) * a;
        const size_t hi = std::min(lo + a, nq);

        // Pull the digit limbs and INTT them (start of BConvRoutine).
        RnsPoly digit(n, hi - lo, Rep::Eval);
        std::vector<Modulus> in_base;
        for (size_t l = lo; l < hi; ++l) {
            std::copy(d.limb(l), d.limb(l) + n, digit.limb(l - lo));
            in_base.push_back(ctx_.qModuli()[l]);
        }
        for (size_t l = 0; l < digit.numLimbs(); ++l)
            ctx_.qTables()[lo + l].inverse(digit.limb(l));
        digit.setRep(Rep::Coeff);

        // BConv to every other modulus of the extended basis.
        std::vector<Modulus> out_base;
        for (size_t l = 0; l < nq; ++l) {
            if (l < lo || l >= hi)
                out_base.push_back(ctx_.qModuli()[l]);
        }
        for (size_t l = 0; l < np; ++l)
            out_base.push_back(ctx_.pModuli()[l]);
        BaseConverter bc(in_base, out_base);
        RnsPoly conv = bc.convert(digit);

        // NTT the converted limbs and assemble the extended poly with
        // limbs ordered [q_0..q_level, p_0..p_alpha-1].
        RnsPoly ext(n, nq + np, Rep::Eval);
        size_t conv_idx = 0;
        for (size_t l = 0; l < nq + np; ++l) {
            if (l >= lo && l < hi) {
                std::copy(d.limb(l), d.limb(l) + n, ext.limb(l));
            } else {
                std::copy(conv.limb(conv_idx),
                          conv.limb(conv_idx) + n, ext.limb(l));
                ctx_.keyTable(l, level).forward(ext.limb(l));
                ++conv_idx;
            }
        }
        out.push_back(std::move(ext));
    }
    return out;
}

RnsPoly
CkksEvaluator::modDownByP(const RnsPoly &extended, int level) const
{
    ARK_ASSERT(extended.rep() == Rep::Eval, "ModDown expects Eval rep");
    const size_t n = ctx_.degree();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = ctx_.pModuli().size();
    ARK_ASSERT(extended.numLimbs() == nq + np, "not an extended poly");

    // INTT the special limbs, BConv B -> C, NTT back (Alg. 2 line 6-7).
    RnsPoly special(n, np, Rep::Eval);
    for (size_t l = 0; l < np; ++l) {
        std::copy(extended.limb(nq + l), extended.limb(nq + l) + n,
                  special.limb(l));
        ctx_.pTables()[l].inverse(special.limb(l));
    }
    special.setRep(Rep::Coeff);

    BaseConverter bc(ctx_.pModuli(), ctx_.levelModuli(level));
    RnsPoly conv = bc.convert(special);
    polyNttForward(conv, ctx_.qTables());

    RnsPoly out(n, nq, Rep::Eval);
    for (size_t l = 0; l < nq; ++l) {
        const Modulus &q = ctx_.qModuli()[l];
        const u64 pinv = ctx_.pInvModQ(l);
        const u64 pinv_shoup = q.shoupPrecompute(pinv);
        const u64 *pe = extended.limb(l);
        const u64 *pc = conv.limb(l);
        u64 *po = out.limb(l);
        for (size_t i = 0; i < n; ++i)
            po[i] = q.mulShoup(q.sub(pe[i], pc[i]), pinv, pinv_shoup);
    }
    return out;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitchDigits(const std::vector<RnsPoly> &digits,
                               const EvalKey &evk, int level) const
{
    const size_t n = ctx_.degree();
    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t np = ctx_.pModuli().size();
    const size_t full_nq = static_cast<size_t>(ctx_.maxLevel()) + 1;
    ARK_ASSERT(digits.size() <=
                   static_cast<size_t>(evk.numDigits()),
               "more digits than the evk provides");

    RnsPoly acc_b(n, nq + np, Rep::Eval);
    RnsPoly acc_a(n, nq + np, Rep::Eval);
    const auto key_moduli = ctx_.keyModuli(level);
    for (size_t dig = 0; dig < digits.size(); ++dig) {
        for (size_t l = 0; l < nq + np; ++l) {
            // evk polys span the full basis; select the matching limb.
            const size_t evk_limb = l < nq ? l : full_nq + (l - nq);
            const Modulus &m = key_moduli[l];
            const u64 *pd = digits[dig].limb(l);
            const u64 *kb = evk.b[dig].limb(evk_limb);
            const u64 *ka = evk.a[dig].limb(evk_limb);
            u64 *ab = acc_b.limb(l);
            u64 *aa = acc_a.limb(l);
            for (size_t i = 0; i < n; ++i) {
                ab[i] = m.add(ab[i], m.mul(pd[i], kb[i]));
                aa[i] = m.add(aa[i], m.mul(pd[i], ka[i]));
            }
        }
    }
    return {modDownByP(acc_b, level), modDownByP(acc_a, level)};
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitch(const RnsPoly &d, const EvalKey &evk,
                         int level) const
{
    return keySwitchDigits(decompose(d, level), evk, level);
}

Ciphertext
CkksEvaluator::mul(const Ciphertext &c1, const Ciphertext &c2,
                   const EvalKey &evk_mult) const
{
    // Multiplication only needs matching levels; the scales multiply.
    ARK_ASSERT(c1.level() == c2.level(), "ciphertext level mismatch");
    const int level = c1.level();
    const auto moduli = ctx_.levelModuli(level);
    const size_t n = ctx_.degree();
    const size_t nl = moduli.size();

    RnsPoly d0(n, nl, Rep::Eval), d1(n, nl, Rep::Eval);
    RnsPoly d2(n, nl, Rep::Eval);
    polyMulEval(c1.b, c2.b, moduli, d0);
    polyMulEval(c1.a, c2.a, moduli, d2);
    // d1 = a1*b2 + a2*b1.
    polyMulEval(c1.a, c2.b, moduli, d1);
    polyMulAccEval(c2.a, c1.b, moduli, d1);

    auto [kb, ka] = keySwitch(d2, evk_mult, level);

    Ciphertext r;
    r.slots = c1.slots;
    r.scale = c1.scale * c2.scale;
    r.b = RnsPoly(n, nl, Rep::Eval);
    r.a = RnsPoly(n, nl, Rep::Eval);
    polyAdd(d0, kb, moduli, r.b);
    polyAdd(d1, ka, moduli, r.a);
    return r;
}

Ciphertext
CkksEvaluator::square(const Ciphertext &c, const EvalKey &evk_mult) const
{
    return mul(c, c, evk_mult);
}

Ciphertext
CkksEvaluator::rescale(const Ciphertext &c) const
{
    const int level = c.level();
    ARK_ASSERT(level >= 1, "cannot rescale at level 0");
    const auto moduli = ctx_.levelModuli(level);
    const size_t n = ctx_.degree();
    const Modulus &q_last = moduli.back();

    auto drop = [&](const RnsPoly &src) {
        // INTT the last limb, reduce it into each remaining limb, and
        // multiply by q_last^{-1} (floor division in RNS).
        std::vector<u64> last(src.limb(level), src.limb(level) + n);
        ctx_.qTables()[level].inverse(last.data());

        RnsPoly out(n, level, Rep::Eval);
        std::vector<u64> tmp(n);
        for (int l = 0; l < level; ++l) {
            const Modulus &q = moduli[l];
            const u64 inv = ctx_.qLastInvModQ(level, l);
            const u64 inv_shoup = q.shoupPrecompute(inv);
            // Center the last-limb residue before reducing mod q_l so
            // the floor division rounds symmetrically.
            const u64 half = q_last.value() / 2;
            const u64 half_mod = half % q.value();
            for (size_t i = 0; i < n; ++i) {
                u64 v = addMod(last[i], half, q_last.value());
                tmp[i] = subMod(v % q.value(), half_mod, q.value());
            }
            ctx_.qTables()[l].forward(tmp.data());
            const u64 *ps = src.limb(l);
            u64 *po = out.limb(l);
            for (size_t i = 0; i < n; ++i)
                po[i] = q.mulShoup(q.sub(ps[i], tmp[i]), inv, inv_shoup);
        }
        return out;
    };

    Ciphertext r;
    r.slots = c.slots;
    r.scale = c.scale / static_cast<double>(q_last.value());
    r.b = drop(c.b);
    r.a = drop(c.a);
    return r;
}

Ciphertext
CkksEvaluator::modDownTo(const Ciphertext &c, int level) const
{
    ARK_ASSERT(level <= c.level(), "modDownTo cannot raise the level");
    Ciphertext r = c;
    r.b.resizeLimbs(level + 1);
    r.a.resizeLimbs(level + 1);
    return r;
}

Ciphertext
CkksEvaluator::applyGalois(const Ciphertext &c, u64 galois_elt,
                           const EvalKey &evk) const
{
    const int level = c.level();
    const auto moduli = ctx_.levelModuli(level);
    const Automorphism &am = ctx_.automorphism(galois_elt);

    RnsPoly b_rot = am.apply(c.b, moduli);
    RnsPoly a_rot = am.apply(c.a, moduli);
    auto [kb, ka] = keySwitch(a_rot, evk, level);

    Ciphertext r;
    r.slots = c.slots;
    r.scale = c.scale;
    r.b = RnsPoly(ctx_.degree(), moduli.size(), Rep::Eval);
    polyAdd(b_rot, kb, moduli, r.b);
    r.a = std::move(ka);
    return r;
}

Ciphertext
CkksEvaluator::rotate(const Ciphertext &c, i64 r,
                      const EvalKey &evk_rot) const
{
    return applyGalois(c, galoisElt(r, ctx_.degree()), evk_rot);
}

Ciphertext
CkksEvaluator::conjugate(const Ciphertext &c,
                         const EvalKey &evk_conj) const
{
    return applyGalois(c, galoisEltConjugate(ctx_.degree()), evk_conj);
}

std::vector<Ciphertext>
CkksEvaluator::rotateHoisted(const Ciphertext &c,
                             const std::vector<i64> &rotations,
                             const std::vector<const EvalKey *> &evks) const
{
    ARK_ASSERT(rotations.size() == evks.size(),
               "one evk required per rotation amount");
    const int level = c.level();
    const auto moduli = ctx_.levelModuli(level);
    const auto key_moduli = ctx_.keyModuli(level);

    // Hoisting: decompose once; the automorphism commutes with the
    // digit extension, so each rotation only permutes the digits.
    auto digits = decompose(c.a, level);

    std::vector<Ciphertext> out;
    out.reserve(rotations.size());
    for (size_t k = 0; k < rotations.size(); ++k) {
        const u64 g = galoisElt(rotations[k], ctx_.degree());
        const Automorphism &am = ctx_.automorphism(g);

        std::vector<RnsPoly> rot_digits;
        rot_digits.reserve(digits.size());
        for (const auto &dig : digits)
            rot_digits.push_back(am.apply(dig, key_moduli));

        auto [kb, ka] = keySwitchDigits(rot_digits, *evks[k], level);
        RnsPoly b_rot = am.apply(c.b, moduli);

        Ciphertext r;
        r.slots = c.slots;
        r.scale = c.scale;
        r.b = RnsPoly(ctx_.degree(), moduli.size(), Rep::Eval);
        polyAdd(b_rot, kb, moduli, r.b);
        r.a = std::move(ka);
        out.push_back(std::move(r));
    }
    return out;
}

Ciphertext
CkksEvaluator::modRaise(const Ciphertext &c) const
{
    ARK_ASSERT(c.level() == 0, "ModRaise expects a level-0 ciphertext");
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.levelModuli(L);
    const size_t n = ctx_.degree();
    const u64 q0 = ctx_.qModuli()[0].value();

    auto raise = [&](const RnsPoly &src) {
        std::vector<u64> coeffs(src.limb(0), src.limb(0) + n);
        ctx_.qTables()[0].inverse(coeffs.data());

        RnsPoly out(n, L + 1, Rep::Coeff);
        for (int l = 0; l <= L; ++l) {
            const u64 q = moduli[l].value();
            u64 *po = out.limb(l);
            for (size_t i = 0; i < n; ++i) {
                // Center mod q0, then embed mod q_l.
                u64 v = coeffs[i];
                if (v > q0 / 2)
                    po[i] = subMod(v % q, (q0 % q), q); // v - q0 mod q
                else
                    po[i] = v % q;
            }
        }
        polyNttForward(out, ctx_.qTables());
        return out;
    };

    Ciphertext r;
    r.slots = c.slots;
    r.scale = c.scale;
    r.b = raise(c.b);
    r.a = raise(c.a);
    return r;
}

} // namespace ark
