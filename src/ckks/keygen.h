/**
 * @file
 * Key generation for CKKS: secret/public keys and evaluation keys for
 * multiplication, rotation (any amount), and conjugation.
 */

#pragma once

#include "ckks/context.h"
#include "ckks/keys.h"
#include "common/random.h"

namespace ark {

/** Generates all key material from a context and a seeded RNG. */
class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext &ctx, Rng &rng);

    /** Sample a (sparse or dense) ternary secret key. */
    SecretKey secretKey();

    PublicKey publicKey(const SecretKey &sk);

    /** evk_mult: switches s^2 -> s. */
    EvalKey evkMult(const SecretKey &sk);

    /** evk_rot^(r): switches psi_r(s) -> s (rotation by r slots). */
    EvalKey evkRotation(const SecretKey &sk, i64 r);

    /** evk for an arbitrary Galois element. */
    EvalKey evkGalois(const SecretKey &sk, u64 galois_elt);

    /** evk for complex conjugation. */
    EvalKey evkConjugate(const SecretKey &sk);

  private:
    /** Core: evk encrypting P * g_d * s_prime under s. */
    EvalKey makeEvk(const SecretKey &sk, const RnsPoly &s_prime);

    /** Uniform polynomial over the extended key basis, Eval rep. */
    RnsPoly uniformKeyPoly();

    /** Error polynomial over the extended key basis, Eval rep. */
    RnsPoly errorKeyPoly();

    const CkksContext &ctx_;
    Rng &rng_;
};

} // namespace ark
