/**
 * @file
 * Key generation for CKKS: secret/public keys and evaluation keys for
 * multiplication, rotation (any amount), and conjugation.
 */

#pragma once

#include "ckks/context.h"
#include "ckks/keys.h"
#include "common/random.h"

namespace ark {

/**
 * Expand the uniform `a` halves of a seed-compressed evaluation key:
 * one poly per key-switching digit over the extended basis, drawn
 * from a fresh Rng(@p seed) in digit-major, limb-major order. This is
 * the NORMATIVE expansion of docs/wire_format.md §6 — the wire reader
 * and the seeded keygen variants below must stay byte-identical.
 */
std::vector<RnsPoly> expandSeededEvkA(const CkksContext &ctx, u64 seed);

/** Expand the uniform `a` half of a seed-compressed public key (q
 *  basis only, limb-major; docs/wire_format.md §6). */
RnsPoly expandSeededPkA(const CkksContext &ctx, u64 seed);

/** Generates all key material from a context and a seeded RNG. */
class KeyGenerator
{
  public:
    KeyGenerator(const CkksContext &ctx, Rng &rng);

    /** Sample a (sparse or dense) ternary secret key. */
    SecretKey secretKey();

    PublicKey publicKey(const SecretKey &sk);

    /** evk_mult: switches s^2 -> s. */
    EvalKey evkMult(const SecretKey &sk);

    /** evk_rot^(r): switches psi_r(s) -> s (rotation by r slots). */
    EvalKey evkRotation(const SecretKey &sk, i64 r);

    /** evk for an arbitrary Galois element. */
    EvalKey evkGalois(const SecretKey &sk, u64 galois_elt);

    /** evk for complex conjugation. */
    EvalKey evkConjugate(const SecretKey &sk);

    /**
     * Seed-compressible variants: the uniform `a` halves come from
     * Rng(@p a_seed) via expandSeededEvkA/expandSeededPkA instead of
     * this generator's Rng (errors and payload still do), so the wire
     * layer can ship the key as seed + b halves at ~2x savings
     * (docs/wire_format.md §6). Distinct keys MUST use distinct
     * seeds; WireClient derives per-key seeds from a master seed.
     */
    PublicKey publicKeySeeded(const SecretKey &sk, u64 a_seed);
    EvalKey evkMultSeeded(const SecretKey &sk, u64 a_seed);
    EvalKey evkRotationSeeded(const SecretKey &sk, i64 r, u64 a_seed);
    EvalKey evkGaloisSeeded(const SecretKey &sk, u64 galois_elt,
                            u64 a_seed);

  private:
    /** Core: evk encrypting P * g_d * s_prime under s. When
     *  @p seeded_a is non-null it supplies the dnum uniform a polys
     *  (seed-expansion path); otherwise they come from this Rng. */
    EvalKey makeEvk(const SecretKey &sk, const RnsPoly &s_prime,
                    const std::vector<RnsPoly> *seeded_a = nullptr);

    /** Uniform polynomial over the extended key basis, Eval rep. */
    RnsPoly uniformKeyPoly();

    /** Error polynomial over the extended key basis, Eval rep. */
    RnsPoly errorKeyPoly();

    const CkksContext &ctx_;
    Rng &rng_;
};

} // namespace ark
