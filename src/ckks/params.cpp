#include "ckks/params.h"

namespace ark {

namespace {

constexpr double kMiB = 1024.0 * 1024.0;

} // namespace

double
CkksParams::plaintextMiB() const
{
    return static_cast<double>((max_level + 1) * degree * word_bytes) /
           kMiB;
}

double
CkksParams::ciphertextMiB() const
{
    return 2.0 * plaintextMiB();
}

double
CkksParams::evkMiB() const
{
    const size_t limbs = static_cast<size_t>(alpha() + max_level + 1);
    return static_cast<double>(2 * dnum * limbs * degree * word_bytes) /
           kMiB;
}

CkksParams
CkksParams::ark()
{
    CkksParams p;
    p.name = "ARK";
    p.degree = 1ULL << 16;
    p.num_slots = 1ULL << 15;
    p.max_level = 23;
    p.dnum = 4;
    p.log_q0 = 60;
    p.log_scale = 48; // error-resilient large primes for bootstrapping
    p.log_special = 60;
    p.boot_levels = 15;
    p.hamming_weight = 192;
    return p;
}

CkksParams
CkksParams::lattigo()
{
    CkksParams p;
    p.name = "Lattigo";
    p.degree = 1ULL << 16;
    p.num_slots = 1ULL << 15;
    p.max_level = 24;
    p.dnum = 5;
    p.log_q0 = 60;
    p.log_scale = 45;
    p.log_special = 60;
    p.boot_levels = 15;
    p.hamming_weight = 192;
    return p;
}

CkksParams
CkksParams::hundredX()
{
    CkksParams p;
    p.name = "100x";
    p.degree = 1ULL << 17;
    p.num_slots = 1ULL << 16;
    p.max_level = 29;
    p.dnum = 3;
    p.log_q0 = 60;
    p.log_scale = 50;
    p.log_special = 60;
    p.boot_levels = 19;
    p.hamming_weight = 64;
    return p;
}

CkksParams
CkksParams::f1()
{
    CkksParams p;
    p.name = "F1";
    p.degree = 1ULL << 14;
    p.num_slots = 1; // F1 only supports single-slot bootstrapping
    p.max_level = 15;
    p.dnum = 16;
    p.log_q0 = 32;
    p.log_scale = 24;
    p.log_special = 32;
    p.word_bytes = 4; // 32-bit machine words
    p.boot_levels = 0;
    p.hamming_weight = 64;
    return p;
}

CkksParams
CkksParams::testTiny()
{
    CkksParams p;
    p.name = "test-tiny";
    p.degree = 1ULL << 10;
    p.num_slots = 1ULL << 9;
    p.max_level = 3;
    p.dnum = 2;
    p.log_q0 = 60;
    p.log_scale = 40;
    p.log_special = 60;
    p.hamming_weight = 64;
    return p;
}

CkksParams
CkksParams::testSmall()
{
    CkksParams p;
    p.name = "test-small";
    p.degree = 1ULL << 11;
    p.num_slots = 1ULL << 10;
    p.max_level = 7;
    p.dnum = 4;
    p.log_q0 = 60;
    p.log_scale = 40;
    p.log_special = 60;
    p.hamming_weight = 64;
    return p;
}

CkksParams
CkksParams::testBoot()
{
    // A toy bootstrappable set: enough levels for ModRaise + a shallow
    // homomorphic (I)DFT + EvalMod at low degree. Not secure; exists to
    // execute the full bootstrap pipeline functionally.
    CkksParams p;
    p.name = "test-boot";
    p.degree = 1ULL << 12;
    p.num_slots = 1ULL << 8; // n = N/16: sparse, SubSum factor 8
    p.max_level = 20;
    p.dnum = 3;
    p.log_q0 = 60;
    p.log_scale = 42;
    p.log_special = 60;
    p.boot_levels = 16;
    // Very sparse secret so the ModRaise overflow I stays small enough
    // for the toy EvalMod range (|I'| <= 8 * (h+1)/2 after SubSum).
    p.hamming_weight = 4;
    return p;
}

} // namespace ark
