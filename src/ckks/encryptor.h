/**
 * @file
 * Encryption and decryption for CKKS (paper Eqs. 2 and 3).
 */

#pragma once

#include "ckks/context.h"
#include "ckks/keys.h"
#include "common/random.h"

namespace ark {

/** Encrypts plaintexts under a public or secret key. */
class CkksEncryptor
{
  public:
    CkksEncryptor(const CkksContext &ctx, Rng &rng);

    /** Symmetric encryption: (b, a) = (-a*s + Pm + e, a). */
    Ciphertext encryptSymmetric(const Plaintext &pt, const SecretKey &sk);

    /** Public-key encryption: v*pk + (Pm + e0, e1). */
    Ciphertext encryptPublic(const Plaintext &pt, const PublicKey &pk);

  private:
    const CkksContext &ctx_;
    Rng &rng_;
};

/** Decrypts ciphertexts: Pm + E = B + A * s. */
class CkksDecryptor
{
  public:
    CkksDecryptor(const CkksContext &ctx, const SecretKey &sk);

    Plaintext decrypt(const Ciphertext &ct) const;

  private:
    const CkksContext &ctx_;
    const SecretKey &sk_;
};

} // namespace ark
