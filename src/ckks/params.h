/**
 * @file
 * CKKS parameter sets, including the presets from Table III of the
 * paper (ARK, Lattigo, 100x, F1) and small functional-test presets.
 *
 * A parameter set fixes the ring degree N, the maximum multiplicative
 * level L, the key-switching decomposition number dnum (so
 * alpha = (L+1)/dnum special primes), and the prime bit-widths. The
 * data-size helpers reproduce the plaintext / ciphertext / evk sizes
 * the paper lists in Table III (MiB, matching the paper's "MB").
 */

#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"
#include "rns/backend_kind.h"

namespace ark {

/** Static description of a CKKS instance. */
struct CkksParams
{
    std::string name;

    size_t degree = 0;      ///< ring degree N (power of two)
    size_t num_slots = 0;   ///< message slots n <= N/2
    int max_level = 0;      ///< L: maximum multiplicative level
    int dnum = 0;           ///< key-switching decomposition number
    int log_q0 = 0;         ///< bits of the first prime q0
    int log_scale = 0;      ///< bits of the scale Delta and of q1..qL
    int log_special = 0;    ///< bits of each special prime p_j
    size_t word_bytes = 8;  ///< machine word (F1 uses 4-byte words)
    size_t hamming_weight = 0; ///< secret key weight (0 = dense ternary)
    /** Levels consumed by bootstrapping (paper Table III, L_boot). */
    int boot_levels = 0;

    /**
     * Kernel engine executing all limb-level compute (rns/backend.h).
     * Overridable at runtime with ARK_BACKEND=scalar|parallel|simd;
     * the simd engine additionally honours ARK_SIMD_TIER to cap the
     * instruction set it dispatches to.
     */
    BackendKind backend = BackendKind::Scalar;
    /** Thread-pool size for the parallel backend (0 = hardware
     *  concurrency; overridable with ARK_THREADS). */
    size_t backend_threads = 0;

    /** alpha = (L + 1) / dnum special primes. */
    int alpha() const { return (max_level + 1) / dnum; }

    /** Delta, the encoding scale. */
    double scale() const { return static_cast<double>(1ULL << log_scale); }

    /** Number of q limbs at level ell. */
    size_t numLimbs(int level) const
    {
        return static_cast<size_t>(level) + 1;
    }

    /** Plaintext polynomial size at max level, MiB (Table III "Pm"). */
    double plaintextMiB() const;

    /** Ciphertext size at max level, MiB (Table III). */
    double ciphertextMiB() const;

    /** Evaluation-key size, MiB (Table III "evk"). */
    double evkMiB() const;

    /** Table III presets. */
    static CkksParams ark();
    static CkksParams lattigo();
    static CkksParams hundredX();
    static CkksParams f1();

    /** Small presets for functional tests / examples (not 128-bit
     *  secure; used to exercise the exact same code paths quickly). */
    static CkksParams testTiny();   ///< N=2^10, L=3
    static CkksParams testSmall();  ///< N=2^11, L=7
    static CkksParams testBoot();   ///< N=2^13, bootstrappable toy set
};

} // namespace ark
