#include "ckks/encryptor.h"

#include "common/logging.h"

namespace ark {

CkksEncryptor::CkksEncryptor(const CkksContext &ctx, Rng &rng)
    : ctx_(ctx), rng_(rng)
{
}

Ciphertext
CkksEncryptor::encryptSymmetric(const Plaintext &pt, const SecretKey &sk)
{
    ARK_ASSERT(pt.poly.rep() == Rep::Eval, "plaintext must be in Eval rep");
    const auto moduli = ctx_.levelModuli(pt.level);
    const size_t nl = moduli.size();
    const size_t n = ctx_.degree();

    Ciphertext ct;
    ct.scale = pt.scale;
    ct.slots = ctx_.params().num_slots;
    ct.a = RnsPoly(n, nl, Rep::Eval);
    for (size_t l = 0; l < nl; ++l) {
        auto v = rng_.uniformVector(n, moduli[l].value());
        std::copy(v.begin(), v.end(), ct.a.limb(l));
    }
    RnsPoly e = polyFromSigned(rng_.errorVector(n), moduli);
    polyNttForward(e, ctx_.qTables());

    ct.b = RnsPoly(n, nl, Rep::Eval);
    for (size_t l = 0; l < nl; ++l) {
        const Modulus &q = moduli[l];
        const u64 *pa = ct.a.limb(l);
        const u64 *ps = sk.s.limb(l);
        const u64 *pe = e.limb(l);
        const u64 *pm = pt.poly.limb(l);
        u64 *pb = ct.b.limb(l);
        for (size_t i = 0; i < n; ++i)
            pb[i] = q.add(q.add(q.neg(q.mul(pa[i], ps[i])), pe[i]), pm[i]);
    }
    return ct;
}

Ciphertext
CkksEncryptor::encryptPublic(const Plaintext &pt, const PublicKey &pk)
{
    ARK_ASSERT(pt.poly.rep() == Rep::Eval, "plaintext must be in Eval rep");
    const auto moduli = ctx_.levelModuli(pt.level);
    const size_t nl = moduli.size();
    const size_t n = ctx_.degree();

    RnsPoly v = polyFromSigned(rng_.ternaryVector(n), moduli);
    polyNttForward(v, ctx_.qTables());
    RnsPoly e0 = polyFromSigned(rng_.errorVector(n), moduli);
    polyNttForward(e0, ctx_.qTables());
    RnsPoly e1 = polyFromSigned(rng_.errorVector(n), moduli);
    polyNttForward(e1, ctx_.qTables());

    Ciphertext ct;
    ct.scale = pt.scale;
    ct.slots = ctx_.params().num_slots;
    ct.b = RnsPoly(n, nl, Rep::Eval);
    ct.a = RnsPoly(n, nl, Rep::Eval);
    for (size_t l = 0; l < nl; ++l) {
        const Modulus &q = moduli[l];
        const u64 *pv = v.limb(l);
        const u64 *pkb = pk.b.limb(l);
        const u64 *pka = pk.a.limb(l);
        const u64 *pe0 = e0.limb(l);
        const u64 *pe1 = e1.limb(l);
        const u64 *pm = pt.poly.limb(l);
        u64 *pb = ct.b.limb(l);
        u64 *pa = ct.a.limb(l);
        for (size_t i = 0; i < n; ++i) {
            pb[i] = q.add(q.add(q.mul(pv[i], pkb[i]), pe0[i]), pm[i]);
            pa[i] = q.add(q.mul(pv[i], pka[i]), pe1[i]);
        }
    }
    return ct;
}

CkksDecryptor::CkksDecryptor(const CkksContext &ctx, const SecretKey &sk)
    : ctx_(ctx), sk_(sk)
{
}

Plaintext
CkksDecryptor::decrypt(const Ciphertext &ct) const
{
    const auto moduli = ctx_.levelModuli(ct.level());
    const size_t n = ctx_.degree();

    Plaintext pt;
    pt.level = ct.level();
    pt.scale = ct.scale;
    pt.poly = RnsPoly(n, moduli.size(), Rep::Eval);
    for (size_t l = 0; l < moduli.size(); ++l) {
        const Modulus &q = moduli[l];
        const u64 *pb = ct.b.limb(l);
        const u64 *pa = ct.a.limb(l);
        const u64 *ps = sk_.s.limb(l);
        u64 *pm = pt.poly.limb(l);
        for (size_t i = 0; i < n; ++i)
            pm[i] = q.add(pb[i], q.mul(pa[i], ps[i]));
    }
    return pt;
}

} // namespace ark
