#include "ckks/encryptor.h"

#include <algorithm>

#include "common/logging.h"
#include "rns/backend.h"

namespace ark {

namespace {

/** First @p limbs q-limbs of a key poly (q limbs come first). */
RnsPoly
truncatedKeyPoly(const RnsPoly &key, size_t limbs, size_t degree)
{
    RnsPoly s(degree, limbs, Rep::Eval);
    for (size_t l = 0; l < limbs; ++l)
        std::copy(key.limb(l), key.limb(l) + degree, s.limb(l));
    return s;
}

} // namespace

CkksEncryptor::CkksEncryptor(const CkksContext &ctx, Rng &rng)
    : ctx_(ctx), rng_(rng)
{
}

Ciphertext
CkksEncryptor::encryptSymmetric(const Plaintext &pt, const SecretKey &sk)
{
    ARK_ASSERT(pt.poly.rep() == Rep::Eval, "plaintext must be in Eval rep");
    const auto moduli = ctx_.levelModuli(pt.level);
    const size_t nl = moduli.size();
    const size_t n = ctx_.degree();
    KernelBackend &kb = ctx_.backend();

    Ciphertext ct;
    ct.scale = pt.scale;
    ct.slots = ctx_.params().num_slots;
    ct.a = RnsPoly(n, nl, Rep::Eval);
    for (size_t l = 0; l < nl; ++l) {
        auto v = rng_.uniformVector(n, moduli[l].value());
        std::copy(v.begin(), v.end(), ct.a.limb(l));
    }
    RnsPoly e = polyFromSigned(rng_.errorVector(n), moduli);
    kb.nttForward(e, ctx_.qTables());

    // b = m + e - a*s over the first nl limbs of the secret key.
    RnsPoly s = truncatedKeyPoly(sk.s, nl, n);
    RnsPoly as(n, nl, Rep::Eval);
    kb.mulEval(ct.a, s, moduli, as);
    RnsPoly t(n, nl, Rep::Eval);
    kb.sub(e, as, moduli, t);
    ct.b = RnsPoly(n, nl, Rep::Eval);
    kb.add(t, pt.poly, moduli, ct.b);
    return ct;
}

Ciphertext
CkksEncryptor::encryptPublic(const Plaintext &pt, const PublicKey &pk)
{
    ARK_ASSERT(pt.poly.rep() == Rep::Eval, "plaintext must be in Eval rep");
    const auto moduli = ctx_.levelModuli(pt.level);
    const size_t nl = moduli.size();
    const size_t n = ctx_.degree();
    KernelBackend &kb = ctx_.backend();

    RnsPoly v = polyFromSigned(rng_.ternaryVector(n), moduli);
    kb.nttForward(v, ctx_.qTables());
    RnsPoly e0 = polyFromSigned(rng_.errorVector(n), moduli);
    kb.nttForward(e0, ctx_.qTables());
    RnsPoly e1 = polyFromSigned(rng_.errorVector(n), moduli);
    kb.nttForward(e1, ctx_.qTables());

    Ciphertext ct;
    ct.scale = pt.scale;
    ct.slots = ctx_.params().num_slots;
    ct.b = RnsPoly(n, nl, Rep::Eval);
    ct.a = RnsPoly(n, nl, Rep::Eval);

    // pk polys span all L+1 q-limbs; use the first nl of them.
    RnsPoly pkb = truncatedKeyPoly(pk.b, nl, n);
    RnsPoly pka = truncatedKeyPoly(pk.a, nl, n);
    RnsPoly t(n, nl, Rep::Eval);
    kb.mulEval(v, pkb, moduli, t); // v*b + e0 + m
    kb.add(t, e0, moduli, t);
    kb.add(t, pt.poly, moduli, ct.b);
    kb.mulEval(v, pka, moduli, t); // v*a + e1
    kb.add(t, e1, moduli, ct.a);
    return ct;
}

CkksDecryptor::CkksDecryptor(const CkksContext &ctx, const SecretKey &sk)
    : ctx_(ctx), sk_(sk)
{
}

Plaintext
CkksDecryptor::decrypt(const Ciphertext &ct) const
{
    const auto moduli = ctx_.levelModuli(ct.level());
    const size_t n = ctx_.degree();
    KernelBackend &kb = ctx_.backend();

    Plaintext pt;
    pt.level = ct.level();
    pt.scale = ct.scale;
    // m = b + a*s.
    RnsPoly s = truncatedKeyPoly(sk_.s, moduli.size(), n);
    pt.poly = ct.b;
    kb.mulAccEval(ct.a, s, moduli, pt.poly);
    return pt;
}

} // namespace ark
