/**
 * @file
 * CKKS evaluator: every primitive HE op from Table II of the paper.
 *
 * HAdd/HMult/HRot/HRescale/CAdd/CMult/PAdd/PMult plus the generalized
 * key-switching of Alg. 2 (Han-Ki, dnum digits), Halevi-Shoup hoisted
 * rotations, level management (ModDown), and the ModRaise step of
 * bootstrapping (LevelRecover).
 *
 * Everything operates on ciphertexts in the evaluation representation;
 * the BConvRoutine (INTT -> BConv -> NTT, Alg. 1) appears inside
 * key-switching exactly as the paper describes, which is what makes
 * (I)NTT and BConv the dominant primary functions ARK accelerates.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "ckks/context.h"
#include "ckks/keys.h"

namespace ark {

/** Stateless HE-op engine bound to one context. */
class CkksEvaluator
{
  public:
    explicit CkksEvaluator(const CkksContext &ctx);

    const CkksContext &context() const { return ctx_; }

    /// @name Linear ops (Table II)
    /// @{
    Ciphertext add(const Ciphertext &c1, const Ciphertext &c2) const;
    Ciphertext sub(const Ciphertext &c1, const Ciphertext &c2) const;
    Ciphertext negate(const Ciphertext &c) const;
    /** PAdd: add an encoded plaintext (same level and scale). */
    Ciphertext addPlain(const Ciphertext &c, const Plaintext &p) const;
    Ciphertext subPlain(const Ciphertext &c, const Plaintext &p) const;
    /** PMult: multiply by an encoded plaintext; scales multiply. */
    Ciphertext mulPlain(const Ciphertext &c, const Plaintext &p) const;
    /** CAdd: add a real scalar to every slot. */
    Ciphertext addScalar(const Ciphertext &c, double value) const;
    /** CMult: multiply every slot by a real scalar, encoded at
     *  @p scale (defaults to Delta); result scale multiplies. */
    Ciphertext mulScalar(const Ciphertext &c, double value,
                         double scale = 0) const;
    /** Multiply by i (the imaginary unit) — a monomial, no key needed. */
    Ciphertext mulByI(const Ciphertext &c) const;
    /// @}

    /// @name Multiplicative ops
    /// @{
    /** HMult without the trailing rescale; scale becomes s1*s2. */
    Ciphertext mul(const Ciphertext &c1, const Ciphertext &c2,
                   const EvalKey &evk_mult) const;
    Ciphertext square(const Ciphertext &c, const EvalKey &evk_mult) const;
    /** HRescale: drop the last limb and divide the scale by q_last. */
    Ciphertext rescale(const Ciphertext &c) const;
    /** Drop limbs down to @p level (modulus reduction, scale kept). */
    Ciphertext modDownTo(const Ciphertext &c, int level) const;
    /// @}

    /// @name Rotations
    /// @{
    /** HRot: circular left shift of the slots by r. */
    Ciphertext rotate(const Ciphertext &c, i64 r,
                      const EvalKey &evk_rot) const;
    /** Automorphism + key switch for an arbitrary Galois element. */
    Ciphertext applyGalois(const Ciphertext &c, u64 galois_elt,
                           const EvalKey &evk) const;
    Ciphertext conjugate(const Ciphertext &c,
                         const EvalKey &evk_conj) const;
    /**
     * Halevi-Shoup hoisting: rotate one ciphertext by many amounts,
     * paying the expensive digit decomposition only once.
     * @param rotations rotation amounts; @p evks one key per amount.
     */
    std::vector<Ciphertext>
    rotateHoisted(const Ciphertext &c, const std::vector<i64> &rotations,
                  const std::vector<const EvalKey *> &evks) const;
    /// @}

    /// @name Bootstrapping support
    /// @{
    /**
     * ModRaise (LevelRecover): re-interpret a level-0 ciphertext at the
     * max level. The underlying plaintext becomes Pm + q0 * I.
     */
    Ciphertext modRaise(const Ciphertext &c) const;
    /// @}

    /// @name Key-switching internals (exposed for tests and for the
    /// ARK program-trace builder, which mirrors these stages 1:1)
    /// @{
    /**
     * Alg. 2 line 3: extend each digit of @p d to the full P*Q basis
     * via BConvRoutine. @p d must be in Eval rep at @p level.
     */
    std::vector<RnsPoly> decompose(const RnsPoly &d, int level) const;

    /**
     * Alg. 2: full key switch of polynomial @p d (Eval rep, level
     * limbs). Returns the (B', A') pair after ModDown by P.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d,
                                          const EvalKey &evk,
                                          int level) const;

    /** Inner product of precomputed digits with an evk + ModDown. */
    std::pair<RnsPoly, RnsPoly>
    keySwitchDigits(const std::vector<RnsPoly> &digits,
                    const EvalKey &evk, int level) const;

    /** Divide an extended (q..p) Eval-rep poly by P, back to R_Q. */
    RnsPoly modDownByP(const RnsPoly &extended, int level) const;
    /// @}

  private:
    void checkCompatible(const Ciphertext &c1, const Ciphertext &c2) const;

    const CkksContext &ctx_;
};

} // namespace ark
