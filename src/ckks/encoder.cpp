#include "ckks/encoder.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_util.h"
#include "rns/backend.h"

namespace ark {

namespace {

/** Round a long double of magnitude < 2^96 to a signed 128-bit int. */
i128
roundWide(long double x)
{
    const long double chunk = 4294967296.0L; // 2^32
    long double hi = std::floor(x / chunk);
    long double lo = x - hi * chunk;
    return static_cast<i128>(hi) * (static_cast<i128>(1) << 32) +
           static_cast<i128>(std::llroundl(lo));
}

void
bitReversePermute(std::vector<Complex> &v)
{
    const size_t n = v.size();
    const int bits = log2Exact(n);
    for (size_t i = 0; i < n; ++i) {
        size_t j = bitReverse(i, bits);
        if (i < j)
            std::swap(v[i], v[j]);
    }
}

} // namespace

CkksEncoder::CkksEncoder(const CkksContext &ctx)
    : ctx_(ctx), n_(ctx.degree()), half_(ctx.degree() / 2)
{
    const size_t m = 2 * n_;
    zeta_pows_.resize(m);
    for (size_t k = 0; k < m; ++k) {
        double angle = 2.0 * M_PI * static_cast<double>(k) /
                       static_cast<double>(m);
        zeta_pows_[k] = Complex(std::cos(angle), std::sin(angle));
    }
    rot_group_.resize(half_);
    u64 g = 1;
    for (size_t j = 0; j < half_; ++j) {
        rot_group_[j] = static_cast<u32>(g);
        g = (g * 5) % m;
    }
}

void
CkksEncoder::fftSpecial(std::vector<Complex> &vals) const
{
    const size_t n = vals.size();
    const size_t m = 2 * n_;
    ARK_ASSERT(isPowerOfTwo(n) && n <= half_, "bad FFT length");
    bitReversePermute(vals);
    for (size_t len = 2; len <= n; len <<= 1) {
        const size_t lenh = len >> 1;
        const size_t lenq = len << 2;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx = (rot_group_[j] % lenq) * (m / lenq);
                Complex u = vals[i + j];
                Complex v = vals[i + j + lenh] * zeta_pows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::fftSpecialInv(std::vector<Complex> &vals) const
{
    const size_t n = vals.size();
    const size_t m = 2 * n_;
    ARK_ASSERT(isPowerOfTwo(n) && n <= half_, "bad FFT length");
    for (size_t len = n; len >= 2; len >>= 1) {
        const size_t lenh = len >> 1;
        const size_t lenq = len << 2;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx =
                    (lenq - (rot_group_[j] % lenq)) % lenq * (m / lenq);
                Complex u = vals[i + j] + vals[i + j + lenh];
                Complex v = (vals[i + j] - vals[i + j + lenh]) *
                            zeta_pows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    bitReversePermute(vals);
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto &v : vals)
        v *= inv_n;
}

Plaintext
CkksEncoder::coeffsToPlaintext(const std::vector<Complex> &coeffs,
                               int level, double scale) const
{
    const auto moduli = ctx_.levelModuli(level);
    Plaintext pt;
    pt.level = level;
    pt.scale = scale;
    pt.poly = RnsPoly(n_, moduli.size(), Rep::Coeff);
    const long double s = scale;
    for (size_t i = 0; i < half_; ++i) {
        i128 re = roundWide(s * coeffs[i].real());
        i128 im = roundWide(s * coeffs[i].imag());
        for (size_t l = 0; l < moduli.size(); ++l) {
            const i128 q = moduli[l].value();
            i128 r = re % q;
            if (r < 0)
                r += q;
            pt.poly.limb(l)[i] = static_cast<u64>(r);
            i128 v = im % q;
            if (v < 0)
                v += q;
            pt.poly.limb(l)[i + half_] = static_cast<u64>(v);
        }
    }
    ctx_.backend().nttForward(pt.poly, ctx_.qTables());
    return pt;
}

Plaintext
CkksEncoder::encode(const std::vector<Complex> &msg, int level,
                    double scale) const
{
    if (scale == 0)
        scale = ctx_.params().scale();
    ARK_ASSERT(isPowerOfTwo(msg.size()) && msg.size() <= half_,
               "message length must be a power of two <= N/2");

    // Sparse packing: replicate the message to N/2 slots.
    std::vector<Complex> vals(half_);
    for (size_t i = 0; i < half_; ++i)
        vals[i] = msg[i % msg.size()];
    fftSpecialInv(vals);
    return coeffsToPlaintext(vals, level, scale);
}

Plaintext
CkksEncoder::encodeReal(const std::vector<double> &msg, int level,
                        double scale) const
{
    std::vector<Complex> cmsg(msg.size());
    for (size_t i = 0; i < msg.size(); ++i)
        cmsg[i] = Complex(msg[i], 0.0);
    return encode(cmsg, level, scale);
}

Plaintext
CkksEncoder::encodeScalar(Complex value, int level, double scale) const
{
    if (scale == 0)
        scale = ctx_.params().scale();
    // A constant message encodes as Delta*(Re + Im * X^{N/2}): X^{N/2}
    // evaluates to i at every canonical-embedding point used for slots.
    std::vector<Complex> coeffs(half_, Complex(0, 0));
    coeffs[0] = value;
    return coeffsToPlaintext(coeffs, level, scale);
}

std::vector<Complex>
CkksEncoder::decode(const Plaintext &pt, size_t num_slots) const
{
    ARK_ASSERT(num_slots > 0 && num_slots <= half_, "bad slot count");
    RnsPoly poly = pt.poly;
    if (poly.rep() == Rep::Eval)
        ctx_.backend().nttInverse(poly, ctx_.qTables());

    const auto moduli = ctx_.levelModuli(pt.level);
    // Reconstruct centered coefficients via CRT over the first one or
    // two limbs (enough for any coefficient < q0*q1 / 2 ~ 2^100).
    const size_t use = std::min<size_t>(2, poly.numLimbs());
    std::vector<Complex> vals(half_);
    for (size_t i = 0; i < half_; ++i) {
        long double re, im;
        if (use == 1) {
            const i128 q = moduli[0].value();
            auto center = [&](u64 x) -> long double {
                i128 v = static_cast<i128>(x);
                if (v > q / 2)
                    v -= q;
                return static_cast<long double>(v);
            };
            re = center(poly.limb(0)[i]);
            im = center(poly.limb(0)[i + half_]);
        } else {
            const u64 q0 = moduli[0].value(), q1 = moduli[1].value();
            const i128 q01 = static_cast<i128>(q0) * q1;
            const u64 q0_inv_q1 = moduli[1].inv(q0 % q1);
            auto crt = [&](u64 x0, u64 x1) -> long double {
                // v = x0 + q0 * ((x1 - x0) * q0^{-1} mod q1), centered.
                u64 diff = moduli[1].sub(x1 % q1, x0 % q1);
                u64 k = moduli[1].mul(diff, q0_inv_q1);
                i128 v = static_cast<i128>(x0) +
                         static_cast<i128>(q0) * k;
                if (v > q01 / 2)
                    v -= q01;
                return static_cast<long double>(v);
            };
            re = crt(poly.limb(0)[i], poly.limb(1)[i]);
            im = crt(poly.limb(0)[i + half_], poly.limb(1)[i + half_]);
        }
        vals[i] = Complex(static_cast<double>(re / pt.scale),
                          static_cast<double>(im / pt.scale));
    }
    fftSpecial(vals);
    vals.resize(num_slots);
    return vals;
}

} // namespace ark
