#include "ckks/keygen.h"

#include "common/logging.h"
#include "rns/automorphism.h"

namespace ark {

KeyGenerator::KeyGenerator(const CkksContext &ctx, Rng &rng)
    : ctx_(ctx), rng_(rng)
{
}

RnsPoly
KeyGenerator::uniformKeyPoly()
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    RnsPoly p(ctx_.degree(), moduli.size(), Rep::Eval);
    for (size_t l = 0; l < moduli.size(); ++l) {
        auto v = rng_.uniformVector(ctx_.degree(), moduli[l].value());
        std::copy(v.begin(), v.end(), p.limb(l));
    }
    return p;
}

RnsPoly
KeyGenerator::errorKeyPoly()
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    auto e = rng_.errorVector(ctx_.degree());
    RnsPoly p = polyFromSigned(e, moduli);
    ctx_.keyNttForward(p, L);
    return p;
}

SecretKey
KeyGenerator::secretKey()
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    auto coeffs = rng_.ternaryVector(ctx_.degree(),
                                     ctx_.params().hamming_weight);
    SecretKey sk;
    sk.s = polyFromSigned(coeffs, moduli);
    ctx_.keyNttForward(sk.s, L);
    return sk;
}

PublicKey
KeyGenerator::publicKey(const SecretKey &sk)
{
    const int L = ctx_.maxLevel();
    const auto q_moduli = ctx_.levelModuli(L);
    const size_t nq = q_moduli.size();

    PublicKey pk;
    pk.a = RnsPoly(ctx_.degree(), nq, Rep::Eval);
    for (size_t l = 0; l < nq; ++l) {
        auto v = rng_.uniformVector(ctx_.degree(), q_moduli[l].value());
        std::copy(v.begin(), v.end(), pk.a.limb(l));
    }
    auto e = rng_.errorVector(ctx_.degree());
    RnsPoly ep = polyFromSigned(e, q_moduli);
    polyNttForward(ep, ctx_.qTables());

    // b = -a*s + e over Q.
    pk.b = RnsPoly(ctx_.degree(), nq, Rep::Eval);
    for (size_t l = 0; l < nq; ++l) {
        const Modulus &q = q_moduli[l];
        const u64 *pa = pk.a.limb(l);
        const u64 *ps = sk.s.limb(l); // q limbs of sk come first
        const u64 *pe = ep.limb(l);
        u64 *pb = pk.b.limb(l);
        for (size_t i = 0; i < ctx_.degree(); ++i)
            pb[i] = q.add(q.neg(q.mul(pa[i], ps[i])), pe[i]);
    }
    return pk;
}

EvalKey
KeyGenerator::makeEvk(const SecretKey &sk, const RnsPoly &s_prime)
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    const size_t nq = static_cast<size_t>(L) + 1;
    const size_t n = ctx_.degree();

    EvalKey evk;
    for (int d = 0; d < ctx_.dnum(); ++d) {
        RnsPoly a = uniformKeyPoly();
        RnsPoly e = errorKeyPoly();
        RnsPoly b(n, moduli.size(), Rep::Eval);
        const auto &g = ctx_.gadget(d);
        for (size_t l = 0; l < moduli.size(); ++l) {
            const Modulus &m = moduli[l];
            // Payload P * g_d * s' vanishes mod the special primes
            // because P = prod(B) = 0 mod p_j.
            const u64 payload_const =
                l < nq ? m.mul(ctx_.pModQ(l), g[l]) : 0;
            const u64 *pa = a.limb(l);
            const u64 *ps = sk.s.limb(l);
            const u64 *pe = e.limb(l);
            const u64 *psp = s_prime.limb(l);
            u64 *pb = b.limb(l);
            for (size_t i = 0; i < n; ++i) {
                u64 v = m.add(m.neg(m.mul(pa[i], ps[i])), pe[i]);
                pb[i] = m.add(v, m.mul(payload_const, psp[i]));
            }
        }
        evk.a.push_back(std::move(a));
        evk.b.push_back(std::move(b));
    }
    return evk;
}

EvalKey
KeyGenerator::evkMult(const SecretKey &sk)
{
    const auto moduli = ctx_.keyModuli(ctx_.maxLevel());
    RnsPoly s2(ctx_.degree(), moduli.size(), Rep::Eval);
    polyMulEval(sk.s, sk.s, moduli, s2);
    return makeEvk(sk, s2);
}

EvalKey
KeyGenerator::evkGalois(const SecretKey &sk, u64 galois_elt)
{
    const auto moduli = ctx_.keyModuli(ctx_.maxLevel());
    const Automorphism &am = ctx_.automorphism(galois_elt);
    RnsPoly sr = am.apply(sk.s, moduli);
    return makeEvk(sk, sr);
}

EvalKey
KeyGenerator::evkRotation(const SecretKey &sk, i64 r)
{
    return evkGalois(sk, galoisElt(r, ctx_.degree()));
}

EvalKey
KeyGenerator::evkConjugate(const SecretKey &sk)
{
    return evkGalois(sk, galoisEltConjugate(ctx_.degree()));
}

} // namespace ark
