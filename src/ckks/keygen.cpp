#include "ckks/keygen.h"

#include <algorithm>

#include "common/logging.h"
#include "rns/automorphism.h"
#include "rns/backend.h"

namespace ark {

std::vector<RnsPoly>
expandSeededEvkA(const CkksContext &ctx, u64 seed)
{
    // docs/wire_format.md §6: one fresh Rng per key, digits in
    // ascending order, limbs in extended-basis order within a digit.
    // Any change here is a wire-format break.
    Rng rng(seed);
    const auto moduli = ctx.keyModuli(ctx.maxLevel());
    std::vector<RnsPoly> out;
    out.reserve(static_cast<size_t>(ctx.dnum()));
    for (int d = 0; d < ctx.dnum(); ++d) {
        RnsPoly p(ctx.degree(), moduli.size(), Rep::Eval);
        for (size_t l = 0; l < moduli.size(); ++l) {
            auto v = rng.uniformVector(ctx.degree(), moduli[l].value());
            std::copy(v.begin(), v.end(), p.limb(l));
        }
        out.push_back(std::move(p));
    }
    return out;
}

RnsPoly
expandSeededPkA(const CkksContext &ctx, u64 seed)
{
    Rng rng(seed);
    const auto moduli = ctx.levelModuli(ctx.maxLevel());
    RnsPoly p(ctx.degree(), moduli.size(), Rep::Eval);
    for (size_t l = 0; l < moduli.size(); ++l) {
        auto v = rng.uniformVector(ctx.degree(), moduli[l].value());
        std::copy(v.begin(), v.end(), p.limb(l));
    }
    return p;
}

KeyGenerator::KeyGenerator(const CkksContext &ctx, Rng &rng)
    : ctx_(ctx), rng_(rng)
{
}

RnsPoly
KeyGenerator::uniformKeyPoly()
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    RnsPoly p(ctx_.degree(), moduli.size(), Rep::Eval);
    for (size_t l = 0; l < moduli.size(); ++l) {
        auto v = rng_.uniformVector(ctx_.degree(), moduli[l].value());
        std::copy(v.begin(), v.end(), p.limb(l));
    }
    return p;
}

RnsPoly
KeyGenerator::errorKeyPoly()
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    auto e = rng_.errorVector(ctx_.degree());
    RnsPoly p = polyFromSigned(e, moduli);
    ctx_.keyNttForward(p, L);
    return p;
}

SecretKey
KeyGenerator::secretKey()
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    auto coeffs = rng_.ternaryVector(ctx_.degree(),
                                     ctx_.params().hamming_weight);
    SecretKey sk;
    sk.s = polyFromSigned(coeffs, moduli);
    ctx_.keyNttForward(sk.s, L);
    return sk;
}

PublicKey
KeyGenerator::publicKey(const SecretKey &sk)
{
    const int L = ctx_.maxLevel();
    const auto q_moduli = ctx_.levelModuli(L);
    const size_t nq = q_moduli.size();
    const size_t n = ctx_.degree();
    KernelBackend &kb = ctx_.backend();

    PublicKey pk;
    pk.a = RnsPoly(n, nq, Rep::Eval);
    for (size_t l = 0; l < nq; ++l) {
        auto v = rng_.uniformVector(n, q_moduli[l].value());
        std::copy(v.begin(), v.end(), pk.a.limb(l));
    }
    auto e = rng_.errorVector(n);
    RnsPoly ep = polyFromSigned(e, q_moduli);
    kb.nttForward(ep, ctx_.qTables());

    // b = e - a*s over Q (the q limbs of sk come first).
    RnsPoly s(n, nq, Rep::Eval);
    for (size_t l = 0; l < nq; ++l)
        std::copy(sk.s.limb(l), sk.s.limb(l) + n, s.limb(l));
    RnsPoly as(n, nq, Rep::Eval);
    kb.mulEval(pk.a, s, q_moduli, as);
    pk.b = RnsPoly(n, nq, Rep::Eval);
    kb.sub(ep, as, q_moduli, pk.b);
    return pk;
}

EvalKey
KeyGenerator::makeEvk(const SecretKey &sk, const RnsPoly &s_prime,
                      const std::vector<RnsPoly> *seeded_a)
{
    const int L = ctx_.maxLevel();
    const auto moduli = ctx_.keyModuli(L);
    const size_t nq = static_cast<size_t>(L) + 1;
    const size_t n = ctx_.degree();
    KernelBackend &kb = ctx_.backend();

    EvalKey evk;
    for (int d = 0; d < ctx_.dnum(); ++d) {
        RnsPoly a = seeded_a != nullptr
                        ? (*seeded_a)[static_cast<size_t>(d)]
                        : uniformKeyPoly();
        RnsPoly e = errorKeyPoly();
        const auto &g = ctx_.gadget(d);

        // Payload constant P * g_d per limb; it vanishes mod the
        // special primes because P = prod(B) = 0 mod p_j.
        std::vector<u64> payload(moduli.size(), 0);
        for (size_t l = 0; l < nq; ++l)
            payload[l] = moduli[l].mul(ctx_.pModQ(l), g[l]);

        // b = (e - a*s) + (P * g_d) * s'.
        RnsPoly as(n, moduli.size(), Rep::Eval);
        kb.mulEval(a, sk.s, moduli, as);
        RnsPoly b(n, moduli.size(), Rep::Eval);
        kb.sub(e, as, moduli, b);
        RnsPoly pay(n, moduli.size(), Rep::Eval);
        kb.mulScalar(s_prime, payload, moduli, pay);
        kb.add(b, pay, moduli, b);

        evk.a.push_back(std::move(a));
        evk.b.push_back(std::move(b));
    }
    return evk;
}

EvalKey
KeyGenerator::evkMult(const SecretKey &sk)
{
    const auto moduli = ctx_.keyModuli(ctx_.maxLevel());
    RnsPoly s2(ctx_.degree(), moduli.size(), Rep::Eval);
    ctx_.backend().mulEval(sk.s, sk.s, moduli, s2);
    return makeEvk(sk, s2);
}

EvalKey
KeyGenerator::evkGalois(const SecretKey &sk, u64 galois_elt)
{
    const auto moduli = ctx_.keyModuli(ctx_.maxLevel());
    const Automorphism &am = ctx_.automorphism(galois_elt);
    RnsPoly sr = ctx_.backend().automorphism(am, sk.s, moduli);
    return makeEvk(sk, sr);
}

EvalKey
KeyGenerator::evkRotation(const SecretKey &sk, i64 r)
{
    return evkGalois(sk, galoisElt(r, ctx_.degree()));
}

EvalKey
KeyGenerator::evkConjugate(const SecretKey &sk)
{
    return evkGalois(sk, galoisEltConjugate(ctx_.degree()));
}

PublicKey
KeyGenerator::publicKeySeeded(const SecretKey &sk, u64 a_seed)
{
    const int L = ctx_.maxLevel();
    const auto q_moduli = ctx_.levelModuli(L);
    const size_t nq = q_moduli.size();
    const size_t n = ctx_.degree();
    KernelBackend &kb = ctx_.backend();

    PublicKey pk;
    pk.a = expandSeededPkA(ctx_, a_seed);
    auto e = rng_.errorVector(n);
    RnsPoly ep = polyFromSigned(e, q_moduli);
    kb.nttForward(ep, ctx_.qTables());

    RnsPoly s(n, nq, Rep::Eval);
    for (size_t l = 0; l < nq; ++l)
        std::copy(sk.s.limb(l), sk.s.limb(l) + n, s.limb(l));
    RnsPoly as(n, nq, Rep::Eval);
    kb.mulEval(pk.a, s, q_moduli, as);
    pk.b = RnsPoly(n, nq, Rep::Eval);
    kb.sub(ep, as, q_moduli, pk.b);
    pk.a_seed = a_seed;
    pk.seeded = true;
    return pk;
}

EvalKey
KeyGenerator::evkMultSeeded(const SecretKey &sk, u64 a_seed)
{
    const auto moduli = ctx_.keyModuli(ctx_.maxLevel());
    RnsPoly s2(ctx_.degree(), moduli.size(), Rep::Eval);
    ctx_.backend().mulEval(sk.s, sk.s, moduli, s2);
    const auto a = expandSeededEvkA(ctx_, a_seed);
    EvalKey evk = makeEvk(sk, s2, &a);
    evk.a_seed = a_seed;
    evk.seeded = true;
    return evk;
}

EvalKey
KeyGenerator::evkGaloisSeeded(const SecretKey &sk, u64 galois_elt,
                              u64 a_seed)
{
    const auto moduli = ctx_.keyModuli(ctx_.maxLevel());
    const Automorphism &am = ctx_.automorphism(galois_elt);
    RnsPoly sr = ctx_.backend().automorphism(am, sk.s, moduli);
    const auto a = expandSeededEvkA(ctx_, a_seed);
    EvalKey evk = makeEvk(sk, sr, &a);
    evk.a_seed = a_seed;
    evk.seeded = true;
    return evk;
}

EvalKey
KeyGenerator::evkRotationSeeded(const SecretKey &sk, i64 r, u64 a_seed)
{
    return evkGaloisSeeded(sk, galoisElt(r, ctx_.degree()), a_seed);
}

} // namespace ark
