#include "ckks/context.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "rns/primes.h"

namespace ark {

CkksContext::CkksContext(CkksParams params)
    : params_(std::move(params)),
      backend_(makeKernelBackend(
          backendKindFromEnv(params_.backend),
          backendThreadsFromEnv(params_.backend_threads)))
{
    const size_t n = params_.degree;
    const int L = params_.max_level;
    const int a = params_.alpha();
    ARK_ASSERT((L + 1) % params_.dnum == 0,
               "dnum must divide L + 1 (paper Table I)");

    // q0 is generated at log_q0 bits; q1..qL near the scale; specials at
    // log_special bits for error headroom.
    std::vector<u64> qs;
    qs.push_back(generateFirstPrime(params_.log_q0, n));
    auto scale_primes =
        generatePrimes(params_.log_scale, L, n, qs);
    qs.insert(qs.end(), scale_primes.begin(), scale_primes.end());
    auto special_primes = generatePrimes(params_.log_special, a, n, qs);

    for (u64 q : qs) {
        q_moduli_.emplace_back(q);
        q_tables_.emplace_back(n, Modulus(q));
    }
    for (u64 p : special_primes) {
        p_moduli_.emplace_back(p);
        p_tables_.emplace_back(n, Modulus(p));
    }

    // Gadget constants for generalized key-switching (Alg. 2):
    // g_i = (Q / Q_i) * [(Q / Q_i)^{-1}]_{Q_i} mod every prime of D.
    // mod q in C_i this is 1; mod q in C \ C_i it is 0; mod the special
    // primes it is a full product.
    gadget_.resize(params_.dnum);
    for (int d = 0; d < params_.dnum; ++d) {
        auto &g = gadget_[d];
        g.resize(q_moduli_.size() + p_moduli_.size());

        const size_t digit_lo = static_cast<size_t>(d) * a;
        const size_t digit_hi = digit_lo + a;

        // For each target modulus m: compute Qhat_d mod m (product of q
        // primes outside the digit) and multiply by the CRT inverse
        // factor per digit prime. We need [Qhat_d^{-1}]_{Q_d} as an
        // integer mod Q_d, which we carry in RNS over the digit primes
        // and recombine with the digit CRT:
        //   g_d = sum_{j in digit} Qhat_d * qhat_j * c_j  with
        //   c_j = [(Qhat_d * qhat_j)^{-1}]_{q_j},
        // where qhat_j = Q_d / q_j. Each summand is a pure integer we
        // can reduce mod m factor-by-factor.
        auto add_all = [&](auto &&fn) {
            for (size_t m = 0; m < g.size(); ++m) {
                const Modulus &mod = m < q_moduli_.size()
                                         ? q_moduli_[m]
                                         : p_moduli_[m - q_moduli_.size()];
                g[m] = fn(mod);
            }
        };

        add_all([&](const Modulus &mod) {
            u64 acc = 0;
            for (size_t j = digit_lo; j < digit_hi; ++j) {
                // c_j = inverse mod q_j of (prod of all q primes != q_j).
                const Modulus &qj = q_moduli_[j];
                u64 prod_mod_qj = 1;
                for (size_t k = 0; k < q_moduli_.size(); ++k) {
                    if (k != j)
                        prod_mod_qj = qj.mul(
                            prod_mod_qj, q_moduli_[k].value() % qj.value());
                }
                u64 cj = qj.inv(prod_mod_qj);
                // term = (prod of all q primes != q_j) * c_j mod m.
                u64 term = cj % mod.value();
                for (size_t k = 0; k < q_moduli_.size(); ++k) {
                    if (k != j)
                        term = mod.mul(term,
                                       q_moduli_[k].value() % mod.value());
                }
                acc = mod.add(acc, term);
            }
            return acc;
        });
    }

    // P mod q_i and P^{-1} mod q_i.
    p_mod_q_.resize(q_moduli_.size());
    p_inv_mod_q_.resize(q_moduli_.size());
    for (size_t i = 0; i < q_moduli_.size(); ++i) {
        const Modulus &qi = q_moduli_[i];
        u64 pm = 1;
        for (const auto &p : p_moduli_)
            pm = qi.mul(pm, p.value() % qi.value());
        p_mod_q_[i] = pm;
        p_inv_mod_q_[i] = qi.inv(pm);
    }

    // Rescale constants: q_level^{-1} mod q_i.
    q_last_inv_.resize(L + 1);
    for (int lv = 1; lv <= L; ++lv) {
        q_last_inv_[lv].resize(lv);
        for (int i = 0; i < lv; ++i) {
            const Modulus &qi = q_moduli_[i];
            q_last_inv_[lv][i] =
                qi.inv(q_moduli_[lv].value() % qi.value());
        }
    }

    // q_j mod q_i matrix (ModRaise and misc.).
    const size_t nq = q_moduli_.size();
    q_mod_q_.resize(nq * nq);
    for (size_t j = 0; j < nq; ++j) {
        for (size_t i = 0; i < nq; ++i)
            q_mod_q_[j * nq + i] = q_moduli_[j].value() %
                                   q_moduli_[i].value();
    }
}

std::vector<Modulus>
CkksContext::levelModuli(int level) const
{
    ARK_ASSERT(level >= 0 && level <= maxLevel(), "bad level");
    return {q_moduli_.begin(), q_moduli_.begin() + level + 1};
}

std::vector<Modulus>
CkksContext::keyModuli(int level) const
{
    auto v = levelModuli(level);
    v.insert(v.end(), p_moduli_.begin(), p_moduli_.end());
    return v;
}

const NttTables &
CkksContext::keyTable(size_t limb, int level) const
{
    const size_t nq = static_cast<size_t>(level) + 1;
    if (limb < nq)
        return q_tables_[limb];
    return p_tables_[limb - nq];
}

int
CkksContext::numDigits(int level) const
{
    return (level + alpha()) / alpha(); // ceil((level+1)/alpha)
}

const Automorphism &
CkksContext::automorphism(u64 galois_elt) const
{
    std::lock_guard<std::mutex> lk(cache_m_);
    auto it = auto_cache_.find(galois_elt);
    if (it == auto_cache_.end()) {
        it = auto_cache_
                 .emplace(galois_elt, std::make_unique<Automorphism>(
                                          galois_elt, params_.degree))
                 .first;
    }
    return *it->second;
}

const std::vector<const NttTables *> &
CkksContext::qTablePtrs(size_t count) const
{
    ARK_ASSERT(count <= q_tables_.size(), "not enough q tables");
    std::lock_guard<std::mutex> lk(cache_m_);
    auto it = q_table_ptrs_cache_.find(count);
    if (it == q_table_ptrs_cache_.end()) {
        std::vector<const NttTables *> ptrs(count);
        for (size_t l = 0; l < count; ++l)
            ptrs[l] = &q_tables_[l];
        it = q_table_ptrs_cache_.emplace(count, std::move(ptrs)).first;
    }
    return it->second;
}

const std::vector<const NttTables *> &
CkksContext::keyTablePtrs(int level) const
{
    std::lock_guard<std::mutex> lk(cache_m_);
    auto it = key_table_ptrs_cache_.find(level);
    if (it == key_table_ptrs_cache_.end()) {
        const size_t nq = static_cast<size_t>(level) + 1;
        std::vector<const NttTables *> ptrs(nq + p_tables_.size());
        for (size_t l = 0; l < ptrs.size(); ++l)
            ptrs[l] = &keyTable(l, level);
        it = key_table_ptrs_cache_.emplace(level, std::move(ptrs)).first;
    }
    return it->second;
}

const BaseConverter &
CkksContext::digitConverter(int level, int digit) const
{
    const auto key = std::make_pair(level, digit);
    std::lock_guard<std::mutex> lk(cache_m_);
    auto it = digit_bconv_cache_.find(key);
    if (it != digit_bconv_cache_.end())
        return *it->second;

    const size_t nq = static_cast<size_t>(level) + 1;
    const size_t a = static_cast<size_t>(alpha());
    const size_t lo = static_cast<size_t>(digit) * a;
    const size_t hi = std::min(lo + a, nq);
    ARK_ASSERT(lo < nq, "digit out of range for this level");

    std::vector<Modulus> in_base(q_moduli_.begin() + lo,
                                 q_moduli_.begin() + hi);
    std::vector<Modulus> out_base;
    for (size_t l = 0; l < nq; ++l) {
        if (l < lo || l >= hi)
            out_base.push_back(q_moduli_[l]);
    }
    out_base.insert(out_base.end(), p_moduli_.begin(), p_moduli_.end());

    it = digit_bconv_cache_
             .emplace(key, std::make_unique<BaseConverter>(
                               std::move(in_base), std::move(out_base)))
             .first;
    return *it->second;
}

const BaseConverter &
CkksContext::modDownConverter(int level) const
{
    std::lock_guard<std::mutex> lk(cache_m_);
    auto it = moddown_bconv_cache_.find(level);
    if (it == moddown_bconv_cache_.end()) {
        it = moddown_bconv_cache_
                 .emplace(level, std::make_unique<BaseConverter>(
                                     p_moduli_, levelModuli(level)))
                 .first;
    }
    return *it->second;
}

void
CkksContext::keyNttForward(RnsPoly &p, int level) const
{
    backend().nttForward(p, keyTablePtrs(level));
}

void
CkksContext::keyNttInverse(RnsPoly &p, int level) const
{
    backend().nttInverse(p, keyTablePtrs(level));
}

} // namespace ark
