#include "net/wire_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "rns/automorphism.h"

namespace ark {

namespace {

/** Decode a §5.15 ERROR body into a WireError. */
WireError
decodeError(const std::vector<u8> &body)
{
    ByteReader r(body);
    const WireCode code = static_cast<WireCode>(r.getU16());
    r.getU8(); // fatal flag (thrown errors are treated as fatal)
    const std::string msg = r.getString();
    r.finish();
    return WireError(code, std::string(wireCodeName(code)) + ": " +
                               msg);
}

/** Refusals worth resubmitting: transient server-side pressure.
 *  UNKNOWN_WORKLOAD is deliberately absent — the catalog will not
 *  change on retry, so resubmitting the same index cannot help. */
bool
retryableCode(WireCode c)
{
    return c == WireCode::QueueFull || c == WireCode::Shed ||
           c == WireCode::DeadlineExceeded;
}

/** splitmix64 step — the jitter stream for the retry backoff. */
u64
jitterNext(u64 &state)
{
    u64 z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Client-chosen request ids live in the top half of the u64 space;
 *  the server's own counter starts at 1, so the two can never
 *  collide. */
constexpr u64 kClientRequestIdBase = 1ull << 63;

} // namespace

WireClient::WireClient(const std::string &addr, u16 port,
                       const std::string &client_name)
    : addr_(addr), port_(port), client_name_(client_name)
{
    connectAndHello();
}

void
WireClient::connectAndHello()
{
    stream_ = std::make_unique<TcpStream>(
        TcpStream::connect(addr_, port_));

    // §5.1 CLIENT_HELLO: this implementation speaks exactly v1.
    {
        ByteWriter w;
        w.putU16(kWireVersion);
        w.putU16(kWireVersion);
        w.putString(client_name_);
        stream_->sendFrame(FrameType::ClientHello, 0, w.take());
    }

    // §5.2 SERVER_HELLO.
    u64 hello_hash = 0;
    {
        TcpStream::Frame f =
            stream_->recvFrame(server_max_frame_bytes_);
        if (f.header.type == FrameType::Error)
            throw decodeError(f.body);
        if (f.header.type != FrameType::ServerHello)
            throw WireError(WireCode::Protocol,
                            std::string("expected SERVER_HELLO, got ") +
                                frameTypeName(f.header.type));
        ByteReader r(f.body);
        const u16 version = r.getU16();
        if (version != kWireVersion)
            throw WireError(WireCode::UnsupportedVersion,
                            "server negotiated unsupported version " +
                                std::to_string(version));
        r.getString(); // server name (informational)
        server_max_sessions_ = r.getU32();
        server_max_frame_bytes_ = r.getU64();
        r.finish();
        hello_hash = f.header.params_hash;
    }

    // §5.3 PARAMS: rebuild the scheme context locally and verify the
    // §3 hash binding — the strongest possible check that both sides
    // agree on every scheme-defining field.
    {
        TcpStream::Frame f =
            stream_->recvFrame(server_max_frame_bytes_);
        if (f.header.type != FrameType::Params)
            throw WireError(WireCode::Protocol,
                            std::string("expected PARAMS, got ") +
                                frameTypeName(f.header.type));
        ByteReader r(f.body);
        CkksParams p = readParams(r);
        r.finish();
        if (paramsHash(p) != hello_hash)
            throw WireError(
                WireCode::ParamsMismatch,
                "PARAMS body hashes to a different value than the "
                "bound parameter-set hash");
        if (ctx_) {
            // Reconnect path: everything this client holds — keys,
            // encoded inputs, the caller's context() reference — is
            // bound to the ORIGINAL set. A server that changed
            // parameters is a different server.
            if (hello_hash != params_hash_)
                throw WireError(WireCode::ParamsMismatch,
                                "server parameter set changed across "
                                "reconnect");
        } else {
            params_ = std::move(p);
            params_hash_ = hello_hash;
            ctx_ = std::make_unique<CkksContext>(params_);
        }
    }

    // §5.4 WORKLOAD_LIST.
    {
        TcpStream::Frame f =
            stream_->recvFrame(server_max_frame_bytes_);
        if (f.header.type != FrameType::WorkloadList)
            throw WireError(
                WireCode::Protocol,
                std::string("expected WORKLOAD_LIST, got ") +
                    frameTypeName(f.header.type));
        ByteReader r(f.body);
        const u32 count = r.getU32();
        workloads_.clear();
        workloads_.reserve(count);
        for (u32 i = 0; i < count; ++i) {
            RemoteWorkload wl;
            wl.name = r.getString();
            wl.op_count = r.getU32();
            wl.levels_needed = r.getU32();
            const u32 n_rot = r.getU32();
            wl.rotations.reserve(n_rot);
            for (u32 j = 0; j < n_rot; ++j)
                wl.rotations.push_back(r.getI64());
            workloads_.push_back(std::move(wl));
        }
        r.finish();
    }
}

WireClient::~WireClient()
{
    disconnect();
}

void
WireClient::disconnect()
{
    if (stream_) {
        stream_->shutdownBoth();
        stream_.reset();
    }
    session_open_ = false;
}

void
WireClient::setOpTimeoutMs(u64 ms)
{
    op_timeout_ms_ = ms;
    applyOpTimeout();
}

void
WireClient::applyOpTimeout()
{
    if (stream_ && op_timeout_ms_ > 0) {
        stream_->setRecvTimeoutMs(op_timeout_ms_);
        stream_->setSendTimeoutMs(op_timeout_ms_);
    }
}

void
WireClient::reconnect()
{
    const bool had_session = session_open_;
    disconnect();
    connectAndHello();
    applyOpTimeout();
    reconnects_ += 1;
    if (had_session) {
        openSessionOnWire(tenant_name_);
        if (cached_pk_) {
            ByteWriter w;
            writePublicKey(w, *cached_pk_);
            keyAck(roundTrip(FrameType::PublicKey, w.take()));
        }
        for (const CachedEvalKey &k : cached_evks_)
            uploadEvalKey(k.purpose, k.galois_elt, k.key);
    }
}

TcpStream::Frame
WireClient::roundTrip(FrameType type, const std::vector<u8> &body)
{
    if (!stream_)
        throw NetError("client is disconnected");
    stream_->sendFrame(type, params_hash_, body);
    TcpStream::Frame f = stream_->recvFrame(server_max_frame_bytes_);
    // §3: the server binds every post-hello frame to the set too.
    if (f.header.type != FrameType::Error &&
        f.header.params_hash != params_hash_)
        throw WireError(WireCode::ParamsMismatch,
                        "server frame bound to a different "
                        "parameter-set hash");
    return f;
}

u64
WireClient::openSessionOnWire(const std::string &tenant_name)
{
    ByteWriter w;
    w.putString(tenant_name);
    TcpStream::Frame f = roundTrip(FrameType::OpenSession, w.take());
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::SessionAccept)
        throw WireError(WireCode::Protocol,
                        std::string("expected SESSION_ACCEPT, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    session_id_ = r.getU64();
    r.finish();
    session_open_ = true;
    return session_id_;
}

u64
WireClient::openSession(const std::string &tenant_name)
{
    tenant_name_ = tenant_name;
    return openSessionOnWire(tenant_name);
}

u64
WireClient::keyAck(TcpStream::Frame f)
{
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::KeyAck)
        throw WireError(WireCode::Protocol,
                        std::string("expected KEY_ACK, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    const u64 resident_bytes = r.getU64();
    r.finish();
    return resident_bytes;
}

u64
WireClient::uploadEvalKey(EvalKeyPurpose purpose, u64 galois_elt,
                          const EvalKey &key)
{
    ByteWriter w;
    writeEvalKey(w, purpose, galois_elt, key);
    return keyAck(roundTrip(FrameType::EvalKey, w.take()));
}

u64
WireClient::uploadMultiplicationKey(const EvalKey &key)
{
    cached_evks_.push_back(
        {EvalKeyPurpose::Multiplication, 0, key});
    return uploadEvalKey(EvalKeyPurpose::Multiplication, 0, key);
}

u64
WireClient::uploadRotationKey(i64 amount, const EvalKey &key)
{
    const u64 elt = galoisElt(amount, ctx_->degree());
    cached_evks_.push_back({EvalKeyPurpose::Galois, elt, key});
    return uploadEvalKey(EvalKeyPurpose::Galois, elt, key);
}

u64
WireClient::uploadPublicKey(const PublicKey &pk)
{
    cached_pk_ = std::make_unique<PublicKey>(pk);
    ByteWriter w;
    writePublicKey(w, pk);
    return keyAck(roundTrip(FrameType::PublicKey, w.take()));
}

WireClient::SubmitOutcome
WireClient::submit(size_t workload_index, const Ciphertext &input,
                   u64 deadline_ms, u64 request_id)
{
    ByteWriter w;
    const bool v2 = deadline_ms != 0 || request_id != 0;
    if (v2) {
        // §5.19 SUBMIT2 prefix; the rest is the frozen SUBMIT body.
        w.putU64(request_id);
        w.putU64(deadline_ms);
    }
    w.putU32(static_cast<u32>(workload_index));
    writeCiphertext(w, input);
    TcpStream::Frame f = roundTrip(
        v2 ? FrameType::Submit2 : FrameType::Submit, w.take());

    SubmitOutcome out;
    if (f.header.type == FrameType::Error) {
        WireError e = decodeError(f.body);
        // Retryable refusals surface as a failed outcome; anything
        // else means the session is dead and the caller must know.
        // SHED joins QUEUE_FULL as retryable: the SLO admission
        // controller asks this client to back off, not to hang up.
        // DEADLINE_EXCEEDED means the request aged out queued — the
        // session is fine and a resubmit gets a fresh deadline.
        if (e.code() != WireCode::QueueFull &&
            e.code() != WireCode::Shed &&
            e.code() != WireCode::UnknownWorkload &&
            e.code() != WireCode::DeadlineExceeded)
            throw e;
        out.code = e.code();
        out.error = e.what();
        return out;
    }
    if (f.header.type != FrameType::Response)
        throw WireError(WireCode::Protocol,
                        std::string("expected RESPONSE, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    out.request_id = r.getU64();
    out.ok = r.getU8() != 0;
    out.code = static_cast<WireCode>(r.getU16());
    out.error = r.getString();
    out.checksum = r.getU64();
    out.final_level = r.getI32();
    out.he_ops = r.getU64();
    out.latency_ms = r.getF64();
    out.has_output = r.getU8() != 0;
    if (out.has_output)
        out.output = readCiphertext(r, *ctx_);
    r.finish();
    return out;
}

WireClient::SubmitOutcome
WireClient::submitWithRetry(size_t workload_index,
                            const Ciphertext &input,
                            const RetryPolicy &policy, u64 deadline_ms,
                            u64 request_id)
{
    // A stable id across attempts: the server sees every resubmit of
    // this request under the same key.
    if (request_id == 0)
        request_id = kClientRequestIdBase | ++next_request_id_;

    const size_t attempts = std::max<size_t>(policy.max_attempts, 1);
    u64 rng = policy.jitter_seed ? policy.jitter_seed : 1;
    u64 prev_ms = std::max<u64>(policy.base_backoff_ms, 1);
    SubmitOutcome last;

    for (size_t attempt = 1;; ++attempt) {
        bool transport_down = false;
        try {
            last = submit(workload_index, input, deadline_ms,
                          request_id);
            if (last.ok || !retryableCode(last.code))
                return last;
        } catch (const NetError &) {
            // NetClosed / NetTimeout / plain NetError: the connection
            // is suspect. Rebuild it below unless the policy forbids
            // that, or this was the last attempt.
            if (!policy.reconnect || attempt >= attempts)
                throw;
            transport_down = true;
        }
        if (attempt >= attempts)
            return last;

        obs::count(obs::Counter::ClientRetries);

        // Decorrelated jitter: uniform in [base, prev*3], capped.
        const u64 lo = std::max<u64>(policy.base_backoff_ms, 1);
        const u64 hi = std::max(lo, prev_ms * 3);
        u64 sleep = lo + jitterNext(rng) % (hi - lo + 1);
        sleep = std::min(sleep,
                         std::max<u64>(policy.max_backoff_ms, 1));
        prev_ms = sleep;
        if (policy.sleep_ms)
            policy.sleep_ms(sleep);
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sleep));

        if (transport_down || !stream_) {
            try {
                reconnect();
            } catch (const NetError &) {
                // Server still unreachable — the next attempt's
                // submit() throws on the dead stream and either
                // retries again or exhausts the budget.
            }
        }
    }
}

RemoteStats
WireClient::stats()
{
    TcpStream::Frame f = roundTrip(FrameType::Stats, {});
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::Stats)
        throw WireError(WireCode::Protocol,
                        std::string("expected STATS, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    RemoteStats s = readStats(r);
    r.finish();
    return s;
}

WireClient::PingResult
WireClient::ping()
{
    const u64 nonce = next_ping_nonce_++;
    ByteWriter w;
    w.putU64(nonce);
    const auto t0 = std::chrono::steady_clock::now();
    TcpStream::Frame f = roundTrip(FrameType::Ping, w.take());
    const double rtt_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::Pong)
        throw WireError(WireCode::Protocol,
                        std::string("expected PONG, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    PingResult out;
    out.nonce = r.getU64();
    out.uptime_ms = r.getU64();
    r.finish();
    if (out.nonce != nonce)
        throw WireError(WireCode::Protocol,
                        "PONG echoed a different nonce");
    out.rtt_ms = rtt_ms;
    return out;
}

void
WireClient::closeSession()
{
    if (!session_open_)
        return;
    ByteWriter w;
    w.putU64(session_id_);
    TcpStream::Frame f =
        roundTrip(FrameType::CloseSession, w.take());
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::CloseSession)
        throw WireError(WireCode::Protocol,
                        std::string("expected CLOSE_SESSION echo, "
                                    "got ") +
                            frameTypeName(f.header.type));
    session_open_ = false;
}

} // namespace ark
