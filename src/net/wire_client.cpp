#include "net/wire_client.h"

#include "rns/automorphism.h"

namespace ark {

namespace {

/** Decode a §5.15 ERROR body into a WireError. */
WireError
decodeError(const std::vector<u8> &body)
{
    ByteReader r(body);
    const WireCode code = static_cast<WireCode>(r.getU16());
    r.getU8(); // fatal flag (thrown errors are treated as fatal)
    const std::string msg = r.getString();
    r.finish();
    return WireError(code, std::string(wireCodeName(code)) + ": " +
                               msg);
}

} // namespace

WireClient::WireClient(const std::string &addr, u16 port,
                       const std::string &client_name)
{
    stream_ = std::make_unique<TcpStream>(
        TcpStream::connect(addr, port));

    // §5.1 CLIENT_HELLO: this implementation speaks exactly v1.
    {
        ByteWriter w;
        w.putU16(kWireVersion);
        w.putU16(kWireVersion);
        w.putString(client_name);
        stream_->sendFrame(FrameType::ClientHello, 0, w.take());
    }

    // §5.2 SERVER_HELLO.
    {
        TcpStream::Frame f =
            stream_->recvFrame(server_max_frame_bytes_);
        if (f.header.type == FrameType::Error)
            throw decodeError(f.body);
        if (f.header.type != FrameType::ServerHello)
            throw WireError(WireCode::Protocol,
                            std::string("expected SERVER_HELLO, got ") +
                                frameTypeName(f.header.type));
        ByteReader r(f.body);
        const u16 version = r.getU16();
        if (version != kWireVersion)
            throw WireError(WireCode::UnsupportedVersion,
                            "server negotiated unsupported version " +
                                std::to_string(version));
        r.getString(); // server name (informational)
        server_max_sessions_ = r.getU32();
        server_max_frame_bytes_ = r.getU64();
        r.finish();
        params_hash_ = f.header.params_hash;
    }

    // §5.3 PARAMS: rebuild the scheme context locally and verify the
    // §3 hash binding — the strongest possible check that both sides
    // agree on every scheme-defining field.
    {
        TcpStream::Frame f =
            stream_->recvFrame(server_max_frame_bytes_);
        if (f.header.type != FrameType::Params)
            throw WireError(WireCode::Protocol,
                            std::string("expected PARAMS, got ") +
                                frameTypeName(f.header.type));
        ByteReader r(f.body);
        params_ = readParams(r);
        r.finish();
        if (paramsHash(params_) != params_hash_)
            throw WireError(
                WireCode::ParamsMismatch,
                "PARAMS body hashes to a different value than the "
                "bound parameter-set hash");
        ctx_ = std::make_unique<CkksContext>(params_);
    }

    // §5.4 WORKLOAD_LIST.
    {
        TcpStream::Frame f =
            stream_->recvFrame(server_max_frame_bytes_);
        if (f.header.type != FrameType::WorkloadList)
            throw WireError(
                WireCode::Protocol,
                std::string("expected WORKLOAD_LIST, got ") +
                    frameTypeName(f.header.type));
        ByteReader r(f.body);
        const u32 count = r.getU32();
        workloads_.reserve(count);
        for (u32 i = 0; i < count; ++i) {
            RemoteWorkload wl;
            wl.name = r.getString();
            wl.op_count = r.getU32();
            wl.levels_needed = r.getU32();
            const u32 n_rot = r.getU32();
            wl.rotations.reserve(n_rot);
            for (u32 j = 0; j < n_rot; ++j)
                wl.rotations.push_back(r.getI64());
            workloads_.push_back(std::move(wl));
        }
        r.finish();
    }
}

WireClient::~WireClient()
{
    disconnect();
}

void
WireClient::disconnect()
{
    if (stream_) {
        stream_->shutdownBoth();
        stream_.reset();
    }
    session_open_ = false;
}

TcpStream::Frame
WireClient::roundTrip(FrameType type, const std::vector<u8> &body)
{
    if (!stream_)
        throw NetError("client is disconnected");
    stream_->sendFrame(type, params_hash_, body);
    TcpStream::Frame f = stream_->recvFrame(server_max_frame_bytes_);
    // §3: the server binds every post-hello frame to the set too.
    if (f.header.type != FrameType::Error &&
        f.header.params_hash != params_hash_)
        throw WireError(WireCode::ParamsMismatch,
                        "server frame bound to a different "
                        "parameter-set hash");
    return f;
}

u64
WireClient::openSession(const std::string &tenant_name)
{
    ByteWriter w;
    w.putString(tenant_name);
    TcpStream::Frame f = roundTrip(FrameType::OpenSession, w.take());
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::SessionAccept)
        throw WireError(WireCode::Protocol,
                        std::string("expected SESSION_ACCEPT, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    session_id_ = r.getU64();
    r.finish();
    session_open_ = true;
    return session_id_;
}

u64
WireClient::keyAck(TcpStream::Frame f)
{
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::KeyAck)
        throw WireError(WireCode::Protocol,
                        std::string("expected KEY_ACK, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    const u64 resident_bytes = r.getU64();
    r.finish();
    return resident_bytes;
}

u64
WireClient::uploadMultiplicationKey(const EvalKey &key)
{
    ByteWriter w;
    writeEvalKey(w, EvalKeyPurpose::Multiplication, 0, key);
    return keyAck(roundTrip(FrameType::EvalKey, w.take()));
}

u64
WireClient::uploadRotationKey(i64 amount, const EvalKey &key)
{
    ByteWriter w;
    writeEvalKey(w, EvalKeyPurpose::Galois,
                 galoisElt(amount, ctx_->degree()), key);
    return keyAck(roundTrip(FrameType::EvalKey, w.take()));
}

u64
WireClient::uploadPublicKey(const PublicKey &pk)
{
    ByteWriter w;
    writePublicKey(w, pk);
    return keyAck(roundTrip(FrameType::PublicKey, w.take()));
}

WireClient::SubmitOutcome
WireClient::submit(size_t workload_index, const Ciphertext &input)
{
    ByteWriter w;
    w.putU32(static_cast<u32>(workload_index));
    writeCiphertext(w, input);
    TcpStream::Frame f = roundTrip(FrameType::Submit, w.take());

    SubmitOutcome out;
    if (f.header.type == FrameType::Error) {
        WireError e = decodeError(f.body);
        // Retryable refusals surface as a failed outcome; anything
        // else means the session is dead and the caller must know.
        // SHED joins QUEUE_FULL as retryable: the SLO admission
        // controller asks this client to back off, not to hang up.
        if (e.code() != WireCode::QueueFull &&
            e.code() != WireCode::Shed &&
            e.code() != WireCode::UnknownWorkload)
            throw e;
        out.code = e.code();
        out.error = e.what();
        return out;
    }
    if (f.header.type != FrameType::Response)
        throw WireError(WireCode::Protocol,
                        std::string("expected RESPONSE, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    out.request_id = r.getU64();
    out.ok = r.getU8() != 0;
    out.code = static_cast<WireCode>(r.getU16());
    out.error = r.getString();
    out.checksum = r.getU64();
    out.final_level = r.getI32();
    out.he_ops = r.getU64();
    out.latency_ms = r.getF64();
    out.has_output = r.getU8() != 0;
    if (out.has_output)
        out.output = readCiphertext(r, *ctx_);
    r.finish();
    return out;
}

RemoteStats
WireClient::stats()
{
    TcpStream::Frame f = roundTrip(FrameType::Stats, {});
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::Stats)
        throw WireError(WireCode::Protocol,
                        std::string("expected STATS, got ") +
                            frameTypeName(f.header.type));
    ByteReader r(f.body);
    RemoteStats s = readStats(r);
    r.finish();
    return s;
}

void
WireClient::closeSession()
{
    if (!session_open_)
        return;
    ByteWriter w;
    w.putU64(session_id_);
    TcpStream::Frame f =
        roundTrip(FrameType::CloseSession, w.take());
    if (f.header.type == FrameType::Error)
        throw decodeError(f.body);
    if (f.header.type != FrameType::CloseSession)
        throw WireError(WireCode::Protocol,
                        std::string("expected CLOSE_SESSION echo, "
                                    "got ") +
                            frameTypeName(f.header.type));
    session_open_ = false;
}

} // namespace ark
