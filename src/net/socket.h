/**
 * @file
 * Minimal POSIX TCP transport under the wire protocol: RAII sockets,
 * length-prefixed frame send/receive, and a poll-based listener that
 * shuts down cleanly.
 *
 * This layer moves bytes; it knows the §2 envelope (docs/
 * wire_format.md) only well enough to read a header, validate it via
 * decodeFrameHeader, and then read exactly body_len more bytes. All
 * frame *semantics* live in net/wire_server.h and net/wire_client.h.
 */

#pragma once

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "wire/wire_format.h"

namespace ark {

/** A transport failure (socket syscall error). */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** The peer closed the connection (orderly EOF mid-read counts:
 *  frames are atomic, so a partial frame is a close, not a frame). */
class NetClosed : public NetError
{
  public:
    NetClosed() : NetError("peer closed the connection") {}
};

/** A socket-level deadline fired (SO_RCVTIMEO / SO_SNDTIMEO set via
 *  setRecvTimeoutMs / setSendTimeoutMs elapsed mid-I/O). Distinct from
 *  NetClosed: the connection is still up, the peer is just slow — the
 *  server's idle reaper and the client's per-op deadline both key off
 *  this type (docs/robustness.md). */
class NetTimeout : public NetError
{
  public:
    explicit NetTimeout(const std::string &what) : NetError(what) {}
};

/** RAII file-descriptor owner. Move-only. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    Socket &operator=(Socket &&o) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }
    void close();
    /** shutdown(SHUT_RDWR): wakes a peer thread blocked in recv()
     *  without racing the fd's lifetime (close() would). */
    void shutdownBoth();

  private:
    int fd_ = -1;
};

/** A connected TCP stream carrying wire frames. */
class TcpStream
{
  public:
    explicit TcpStream(Socket sock) : sock_(std::move(sock)) {}

    /** Connect to @p addr : @p port (numeric IPv4 dotted quad or a
     *  resolvable hostname). Throws NetError on failure. */
    static TcpStream connect(const std::string &addr, u16 port);

    /** Write all @p n bytes (loops over partial writes). */
    void sendAll(const void *data, size_t n);
    /** Read exactly @p n bytes. Throws NetClosed on EOF. */
    void recvAll(void *out, size_t n);

    /** Encode and send one frame (§2 envelope + @p body). */
    void sendFrame(FrameType type, u64 params_hash,
                   const std::vector<u8> &body);

    /** One received frame: validated header + raw body. */
    struct Frame
    {
        FrameHeader header;
        std::vector<u8> body;
    };

    /**
     * Receive one frame. The header is validated (magic, version,
     * type, body_len <= @p max_frame_bytes) BEFORE the body is read,
     * so an oversized frame is rejected without buffering it (§2).
     * Throws WireError on a malformed header, NetClosed on EOF.
     */
    Frame recvFrame(u64 max_frame_bytes);

    /** Unblock a reader in another thread, then release the fd. */
    void shutdownBoth() { sock_.shutdownBoth(); }

    /**
     * Bound a single recv()/send() to @p ms milliseconds (0 = block
     * forever, the default). When the bound elapses the pending
     * recvAll/sendAll throws NetTimeout. The server applies the idle
     * timeout this way; the client applies its per-op deadline.
     */
    void setRecvTimeoutMs(u64 ms);
    void setSendTimeoutMs(u64 ms);

    int fd() const { return sock_.fd(); }

  private:
    Socket sock_;
};

/** A listening TCP socket with stop-aware accept. */
class TcpListener
{
  public:
    /** Bind @p addr : @p port (0 = ephemeral) and listen. Throws
     *  NetError on failure (address in use, bad address, ...). */
    TcpListener(const std::string &addr, u16 port);

    /** The actually-bound port (resolves port 0). */
    u16 port() const { return port_; }

    /**
     * Accept one connection, polling so the call wakes up and
     * rechecks @p stop every ~100 ms. Returns an invalid Socket when
     * stopped. Throws NetError on listener failure.
     */
    Socket accept(const std::atomic<bool> &stop);

    void close() { sock_.close(); }

  private:
    Socket sock_;
    u16 port_ = 0;
};

} // namespace ark
