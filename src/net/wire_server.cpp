#include "net/wire_server.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ark {

namespace {

/** §5.15 ERROR body. */
std::vector<u8>
errorBody(WireCode code, bool fatal, const std::string &message)
{
    ByteWriter w;
    w.putU16(static_cast<u16>(code));
    w.putU8(fatal ? 1 : 0);
    w.putString(message);
    return w.take();
}

/** §7: map an execution failure class onto its wire code. */
WireCode
codeOf(ServeErrorKind kind)
{
    switch (kind) {
      case ServeErrorKind::None:
        return WireCode::Ok;
      case ServeErrorKind::LevelExhausted:
        return WireCode::LevelExhausted;
      case ServeErrorKind::MissingKey:
        return WireCode::MissingKey;
      case ServeErrorKind::Shed:
        // A queued request evicted by SLO admission control after it
        // was admitted: its RESPONSE carries the retryable SHED code.
        return WireCode::Shed;
      case ServeErrorKind::DeadlineExceeded:
        // Dropped before execution because the client's own deadline
        // passed — retryable (with a fresh deadline).
        return WireCode::DeadlineExceeded;
      case ServeErrorKind::DrainRefused:
        // Queued at graceful drain, never started: the same fatal
        // code a pre-admission shutdown refusal carries.
        return WireCode::ServerShutdown;
      case ServeErrorKind::Other:
        break;
    }
    return WireCode::ExecFailed;
}

/** A fatal protocol violation: sent as an ERROR frame, then the
 *  connection closes. Thrown to unwind the session loop. */
struct FatalWireError
{
    WireCode code;
    std::string message;
};

/** ARK_STATS_INTERVAL_MS: periodic live-stats emission interval.
 *  Empty = unset (no emitter); junk or out-of-range is fatal. */
u64
statsIntervalMsFromEnv()
{
    const char *env = std::getenv("ARK_STATS_INTERVAL_MS");
    if (env == nullptr || *env == '\0')
        return 0;
    for (const char *p = env; *p; ++p) {
        if (*p < '0' || *p > '9') {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "invalid ARK_STATS_INTERVAL_MS '%s' "
                          "(expected an integer in [1, 3600000])",
                          env);
            ARK_FATAL(msg);
        }
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (errno == ERANGE || v < 1 || v > 3600000ull) {
        char msg[160];
        std::snprintf(msg, sizeof msg,
                      "invalid ARK_STATS_INTERVAL_MS '%s' (expected "
                      "an integer in [1, 3600000])",
                      env);
        ARK_FATAL(msg);
    }
    return static_cast<u64>(v);
}

} // namespace

WireServer::WireServer(BatchServer &server)
    : server_(server),
      params_hash_(paramsHash(server.context().params())),
      max_frame_bytes_(server.config().max_frame_bytes),
      addr_(server.config().listen_addr),
      listener_(server.config().listen_addr, server.config().listen_port)
{
    port_ = listener_.port();
    ARK_LOG(Info, "wire server listening on %s:%u", addr_.c_str(),
            static_cast<unsigned>(port_));
    if (const u64 interval_ms = statsIntervalMsFromEnv()) {
        emitter_ = std::make_unique<obs::StatsEmitter>(
            std::chrono::milliseconds(interval_ms),
            [this] { return collectStats().toString(); });
    }
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

WireServer::~WireServer()
{
    stop();
}

void
WireServer::stop()
{
    if (stop_.exchange(true))
        return;
    if (emitter_)
        emitter_->stop();
    if (accept_thread_.joinable())
        accept_thread_.join();
    listener_.close();
    std::lock_guard<std::mutex> lk(conns_m_);
    for (auto &conn : conns_) {
        // Wake the session thread out of recvFrame, then join it.
        conn->stream.shutdownBoth();
        if (conn->thread.joinable())
            conn->thread.join();
    }
    conns_.clear();
}

void
WireServer::acceptLoop()
{
    while (!stop_.load()) {
        Socket sock = listener_.accept(stop_);
        if (!sock.valid())
            break; // stopped
        std::lock_guard<std::mutex> lk(conns_m_);
        conns_.push_back(
            std::make_unique<Connection>(TcpStream(std::move(sock))));
        Connection &conn = *conns_.back();
        // The idle-session reaper and the slow-reader guard are plain
        // socket deadlines: an expired one surfaces as NetTimeout in
        // the session loop, which reports IDLE_TIMEOUT and closes.
        if (server_.config().idle_timeout_ms > 0)
            conn.stream.setRecvTimeoutMs(
                server_.config().idle_timeout_ms);
        if (server_.config().io_timeout_ms > 0)
            conn.stream.setSendTimeoutMs(server_.config().io_timeout_ms);
        conn.thread =
            std::thread([this, &conn] { serveConnection(conn); });
    }
}

RemoteStats
WireServer::collectStats() const
{
    RemoteStats st;
    st.uptime_ms = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start_tp_)
            .count());
    st.active_sessions = active_sessions_.load();
    st.sessions_opened = sessions_opened_.load();

    const ServerLiveStats live = server_.liveStats();
    st.outstanding = live.outstanding;
    st.shards.reserve(live.shards.size());
    for (const ShardLiveStats &s : live.shards) {
        StatsShardEntry e;
        e.queue_depth = s.queue_depth;
        e.queue_capacity = s.queue_capacity;
        e.in_flight = s.in_flight;
        e.total_done = s.total_done;
        st.shards.push_back(e);
    }

    // The registry merges to zeros when ARK_METRICS is off — the
    // frame shape is identical either way (the client need not know
    // the server's recording state).
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    for (size_t i = 0; i < obs::kCounterCount; ++i) {
        StatsCounterEntry e;
        e.name = obs::counterName(static_cast<obs::Counter>(i));
        e.value = snap.counters[i];
        st.counters.push_back(std::move(e));
    }
    for (size_t i = 0; i < obs::kPhaseCount; ++i) {
        const obs::Histogram &h = snap.phases[i];
        StatsPhaseEntry e;
        e.name = obs::phaseName(static_cast<obs::Phase>(i));
        e.count = h.count;
        e.mean_ms = h.meanMs();
        e.p50_ms = h.quantileMs(0.50);
        e.p99_ms = h.quantileMs(0.99);
        e.max_ms = h.max_ms;
        st.phases.push_back(std::move(e));
    }
    return st;
}

void
WireServer::serveConnection(Connection &conn)
{
    TcpStream &stream = conn.stream;
    const CkksContext &ctx = server_.context();

    // Per-connection tenant state. The KeyCache is uploaded-mode:
    // this session's keys only, never the server's own material.
    bool session_open = false;
    u64 session_id = 0;
    std::unique_ptr<KeyCache> tenant_keys;
    std::unique_ptr<PublicKey> tenant_pk; // held for future use (§5.8)

    auto closeSession = [&] {
        if (session_open) {
            session_open = false;
            active_sessions_.fetch_sub(1);
        }
    };

    try {
        // §5.1-§5.4 hello exchange. The first frame MUST be
        // CLIENT_HELLO; its header carries params_hash 0 (the client
        // cannot know the set yet).
        TcpStream::Frame hello = stream.recvFrame(max_frame_bytes_);
        if (hello.header.type != FrameType::ClientHello)
            throw FatalWireError{WireCode::Protocol,
                                 "expected CLIENT_HELLO, got " +
                                     std::string(frameTypeName(
                                         hello.header.type))};
        ByteReader hr(hello.body);
        const u16 min_v = hr.getU16();
        const u16 max_v = hr.getU16();
        hr.getString(); // client name (informational)
        hr.finish();
        if (kWireVersion < min_v || kWireVersion > max_v)
            throw FatalWireError{
                WireCode::UnsupportedVersion,
                "server speaks v" + std::to_string(kWireVersion) +
                    ", client requires [" + std::to_string(min_v) +
                    ", " + std::to_string(max_v) + "]"};

        {
            // §5.2 SERVER_HELLO: negotiated version + serving limits.
            ByteWriter w;
            w.putU16(kWireVersion);
            w.putString("ark-batch-server");
            w.putU32(static_cast<u32>(server_.config().max_sessions));
            w.putU64(max_frame_bytes_);
            stream.sendFrame(FrameType::ServerHello, params_hash_,
                             w.take());
        }
        {
            // §5.3 PARAMS: the set every later frame is bound to.
            ByteWriter w;
            writeParams(w, ctx.params());
            stream.sendFrame(FrameType::Params, params_hash_,
                             w.take());
        }
        {
            // §5.4 WORKLOAD_LIST: the catalog, with each workload's
            // level budget and rotation set so the client knows
            // exactly which evks to upload.
            ByteWriter w;
            const auto &wls = server_.workloads();
            w.putU32(static_cast<u32>(wls.size()));
            for (const ServeWorkload &wl : wls) {
                w.putString(wl.name);
                w.putU32(static_cast<u32>(wl.ops.size()));
                w.putU32(static_cast<u32>(wl.levelsNeeded()));
                const std::vector<i64> rots = wl.rotationAmounts();
                w.putU32(static_cast<u32>(rots.size()));
                for (i64 r : rots)
                    w.putI64(r);
            }
            stream.sendFrame(FrameType::WorkloadList, params_hash_,
                             w.take());
        }

        // Session loop: one frame in, one frame out, until the peer
        // disconnects or a fatal error unwinds.
        for (;;) {
            TcpStream::Frame f = stream.recvFrame(max_frame_bytes_);
            // §3: every post-hello client frame is bound to the
            // server's parameter set.
            if (f.header.params_hash != params_hash_)
                throw FatalWireError{
                    WireCode::ParamsMismatch,
                    "frame bound to parameter-set hash " +
                        std::to_string(f.header.params_hash) +
                        ", server serves " +
                        std::to_string(params_hash_)};
            ByteReader r(f.body);

            switch (f.header.type) {
              case FrameType::OpenSession: {
                r.getString(); // tenant name (informational)
                r.finish();
                if (session_open)
                    throw FatalWireError{
                        WireCode::Protocol,
                        "session already open on this connection"};
                // Admit-or-refuse under the configured tenant cap.
                size_t cur = active_sessions_.load();
                bool admitted = false;
                while (cur < server_.config().max_sessions) {
                    if (active_sessions_.compare_exchange_weak(
                            cur, cur + 1)) {
                        admitted = true;
                        break;
                    }
                }
                if (!admitted)
                    throw FatalWireError{
                        WireCode::SessionLimit,
                        "server session cap of " +
                            std::to_string(
                                server_.config().max_sessions) +
                            " reached"};
                session_open = true;
                session_id = next_session_id_.fetch_add(1);
                sessions_opened_.fetch_add(1);
                ARK_LOG(Info, "session %llu opened (%zu active)",
                        static_cast<unsigned long long>(session_id),
                        active_sessions_.load());
                obs::gaugeSet(
                    obs::Gauge::ActiveSessions,
                    static_cast<i64>(active_sessions_.load()));
                tenant_keys =
                    std::make_unique<KeyCache>(ctx.degree());
                tenant_pk.reset();
                ByteWriter w;
                w.putU64(session_id);
                stream.sendFrame(FrameType::SessionAccept,
                                 params_hash_, w.take());
                break;
              }

              case FrameType::EvalKey: {
                if (!session_open)
                    throw FatalWireError{
                        WireCode::UnknownSession,
                        "key upload before OPEN_SESSION"};
                WireEvalKey wk = readEvalKey(r, ctx);
                r.finish();
                if (wk.purpose == EvalKeyPurpose::Multiplication)
                    tenant_keys->insertMultiplication(
                        std::move(wk.key));
                else
                    tenant_keys->insertGalois(wk.galois_elt,
                                              std::move(wk.key));
                ByteWriter w;
                w.putU64(tenant_keys->byteSize());
                stream.sendFrame(FrameType::KeyAck, params_hash_,
                                 w.take());
                break;
              }

              case FrameType::PublicKey: {
                if (!session_open)
                    throw FatalWireError{
                        WireCode::UnknownSession,
                        "key upload before OPEN_SESSION"};
                tenant_pk = std::make_unique<PublicKey>(
                    readPublicKey(r, ctx));
                r.finish();
                ByteWriter w;
                w.putU64(tenant_keys->byteSize());
                stream.sendFrame(FrameType::KeyAck, params_hash_,
                                 w.take());
                break;
              }

              case FrameType::Submit:
              case FrameType::Submit2: {
                if (!session_open)
                    throw FatalWireError{
                        WireCode::UnknownSession,
                        "SUBMIT before OPEN_SESSION"};
                // §5.19 SUBMIT2 prefixes the frozen SUBMIT body with
                // a client request id (idempotent retry key; 0 =
                // server assigns) and a relative deadline in ms (0 =
                // none), converted to the server clock's absolute
                // domain HERE, at receipt — the client's clock never
                // crosses the wire.
                u64 client_rid = 0;
                u64 deadline_ms = 0;
                if (f.header.type == FrameType::Submit2) {
                    client_rid = r.getU64();
                    deadline_ms = r.getU64();
                }
                // Reserve the request id up front so the spans
                // recorded on this thread (recv, respond) correlate
                // with the worker's spans and the RESPONSE's
                // request_id. The span clock starts *after*
                // recvFrame: client idle time is not recv time.
                const u64 rid = client_rid != 0
                                    ? client_rid
                                    : server_.reserveRequestId();
                const u64 deadline_us =
                    deadline_ms != 0
                        ? server_.clock().nowMicros() +
                              deadline_ms * 1000
                        : 0;
                const u32 widx = r.getU32();
                if (widx >= server_.workloads().size()) {
                    // Non-fatal: the client mis-indexed the catalog,
                    // the session is still healthy.
                    stream.sendFrame(
                        FrameType::Error, params_hash_,
                        errorBody(WireCode::UnknownWorkload, false,
                                  "workload index " +
                                      std::to_string(widx) +
                                      " out of range"));
                    break;
                }
                std::shared_ptr<Ciphertext> input;
                {
                    const auto recv_t0 =
                        obs::traceEnabled() || obs::metricsEnabled()
                            ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::
                                  time_point{};
                    input = std::make_shared<Ciphertext>(
                        readCiphertext(r, ctx));
                    r.finish();
                    if (recv_t0 !=
                        std::chrono::steady_clock::time_point{}) {
                        const auto recv_t1 =
                            std::chrono::steady_clock::now();
                        if (obs::traceEnabled())
                            obs::TraceSession::global().record(
                                "recv", rid, recv_t0, recv_t1);
                        obs::observe(
                            obs::Phase::Recv,
                            std::chrono::duration<double,
                                                  std::milli>(
                                recv_t1 - recv_t0)
                                .count());
                    }
                }
                std::future<ServeResult> fut;
                const AdmitResult admitted = server_.trySubmitRemote(
                    widx, std::move(input), tenant_keys.get(), fut,
                    rid, deadline_us);
                if (admitted == AdmitResult::Full) {
                    // §7: QUEUE_FULL is the retryable refusal — the
                    // typed surface of RequestQueue admission.
                    stream.sendFrame(
                        FrameType::Error, params_hash_,
                        errorBody(WireCode::QueueFull, false,
                                  "admission queue full"));
                    break;
                }
                if (admitted == AdmitResult::Shed) {
                    // §7: SHED is the SLO admission controller's
                    // retryable refusal — capacity exists, but
                    // admitting now would blow the class's p99
                    // target. Clients back off harder than on
                    // QUEUE_FULL (docs/serving.md).
                    stream.sendFrame(
                        FrameType::Error, params_hash_,
                        errorBody(WireCode::Shed, false,
                                  "shed by SLO admission control"));
                    break;
                }
                if (admitted == AdmitResult::Closed)
                    throw FatalWireError{WireCode::ServerShutdown,
                                         "server shutting down"};
                const ServeResult res = fut.get();
                // §5.13 RESPONSE (execution failures ride here, with
                // the §7 code of their ServeErrorKind).
                const auto respond_t0 =
                    obs::traceEnabled() || obs::metricsEnabled()
                        ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
                ByteWriter w;
                w.putU64(res.id);
                w.putU8(res.ok ? 1 : 0);
                w.putU16(static_cast<u16>(codeOf(res.error_kind)));
                w.putString(res.error);
                w.putU64(res.checksum);
                w.putI32(res.final_level);
                w.putU64(res.he_ops);
                w.putF64(res.latency_ms);
                w.putU8(res.output ? 1 : 0);
                if (res.output)
                    writeCiphertext(w, *res.output);
                stream.sendFrame(FrameType::Response, params_hash_,
                                 w.take());
                if (respond_t0 !=
                    std::chrono::steady_clock::time_point{}) {
                    const auto respond_t1 =
                        std::chrono::steady_clock::now();
                    if (obs::traceEnabled())
                        obs::TraceSession::global().record(
                            "respond", rid, respond_t0, respond_t1);
                    obs::observe(
                        obs::Phase::Respond,
                        std::chrono::duration<double, std::milli>(
                            respond_t1 - respond_t0)
                            .count());
                }
                break;
              }

              case FrameType::Stats: {
                // §5.16: allowed any time after the hello — a stats
                // poller need not open a tenant session.
                r.finish();
                obs::count(obs::Counter::StatsPolls);
                ByteWriter w;
                writeStats(w, collectStats());
                stream.sendFrame(FrameType::Stats, params_hash_,
                                 w.take());
                break;
              }

              case FrameType::Ping: {
                // §5.17: liveness probe, allowed any time after the
                // hello (like STATS — no tenant session needed). The
                // PONG echoes the nonce and reports uptime.
                const u64 nonce = r.getU64();
                r.finish();
                ByteWriter w;
                w.putU64(nonce);
                w.putU64(static_cast<u64>(
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start_tp_)
                        .count()));
                stream.sendFrame(FrameType::Pong, params_hash_,
                                 w.take());
                break;
              }

              case FrameType::CloseSession: {
                const u64 id = r.getU64();
                r.finish();
                if (!session_open || id != session_id)
                    throw FatalWireError{
                        WireCode::UnknownSession,
                        "CLOSE_SESSION for unknown session " +
                            std::to_string(id)};
                closeSession();
                tenant_keys.reset();
                ARK_LOG(Info, "session %llu closed",
                        static_cast<unsigned long long>(id));
                ByteWriter w;
                w.putU64(id);
                stream.sendFrame(FrameType::CloseSession,
                                 params_hash_, w.take());
                break;
              }

              default:
                throw FatalWireError{
                    WireCode::Protocol,
                    std::string("unexpected frame ") +
                        frameTypeName(f.header.type)};
            }
        }
    } catch (const NetClosed &) {
        // Peer disconnected: normal end of a session.
        ARK_LOG(Debug, "peer disconnected (session %llu)",
                static_cast<unsigned long long>(session_id));
    } catch (const FatalWireError &e) {
        ARK_LOG(Warn, "session %llu fatal: %s (%s)",
                static_cast<unsigned long long>(session_id),
                e.message.c_str(), wireCodeName(e.code));
        try {
            stream.sendFrame(FrameType::Error, params_hash_,
                             errorBody(e.code, true, e.message));
        } catch (const NetError &) {
        }
    } catch (const WireError &e) {
        // Malformed frame from the peer (truncated body, bad field,
        // oversized frame, ...): report its own code, then close (§8).
        ARK_LOG(Warn, "session %llu malformed frame: %s (%s)",
                static_cast<unsigned long long>(session_id), e.what(),
                wireCodeName(e.code()));
        try {
            stream.sendFrame(FrameType::Error, params_hash_,
                             errorBody(e.code(), true, e.what()));
        } catch (const NetError &) {
        }
    } catch (const NetTimeout &) {
        // The idle reaper: no frame arrived within idle_timeout_ms
        // (or the peer stopped reading within io_timeout_ms). Tell
        // the peer why while the pipe may still carry it, then close
        // — IDLE_TIMEOUT is fatal for the session, a reconnect
        // starts a fresh one (§7).
        ARK_LOG(Info, "session %llu reaped (idle timeout)",
                static_cast<unsigned long long>(session_id));
        obs::count(obs::Counter::SessionsReaped);
        try {
            stream.sendFrame(
                FrameType::Error, params_hash_,
                errorBody(WireCode::IdleTimeout, true,
                          "session idle past the server's idle "
                          "timeout"));
        } catch (const NetError &) {
        }
    } catch (const NetError &e) {
        // Transport died mid-write; nothing to report to anyone —
        // but worth a diagnostic: this path used to be silent.
        ARK_LOG(Debug, "session %llu transport error: %s",
                static_cast<unsigned long long>(session_id),
                e.what());
    } catch (const std::exception &e) {
        // Anything else (a broken promise during teardown, ...) is an
        // execution failure as far as the peer is concerned.
        ARK_LOG(Warn, "session %llu execution error: %s",
                static_cast<unsigned long long>(session_id),
                e.what());
        try {
            stream.sendFrame(
                FrameType::Error, params_hash_,
                errorBody(WireCode::ExecFailed, true, e.what()));
        } catch (const NetError &) {
        }
    }
    closeSession();
    obs::gaugeSet(obs::Gauge::ActiveSessions,
                  static_cast<i64>(active_sessions_.load()));
    stream.shutdownBoth();
}

} // namespace ark
