#include "net/socket.h"

#include <arpa/inet.h>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <thread>
#include <unistd.h>

#include "fault/fault.h"

namespace ark {

namespace {

/** Injected-delay helper for the RecvDelay / SendDelay sites. */
void
faultDelay()
{
    const u64 us = fault::FaultInjector::global().delayMicros();
    if (us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(us));
}

[[noreturn]] void
sysError(const std::string &what)
{
    throw NetError(what + ": " + std::strerror(errno));
}

/** Resolve @p addr (dotted quad fast path, else getaddrinfo). */
sockaddr_in
resolve(const std::string &addr, u16 port)
{
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(port);
    if (inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) == 1)
        return sa;
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = getaddrinfo(addr.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr)
        throw NetError("cannot resolve '" + addr +
                       "': " + gai_strerror(rc));
    sa.sin_addr =
        reinterpret_cast<sockaddr_in *>(res->ai_addr)->sin_addr;
    freeaddrinfo(res);
    return sa;
}

} // namespace

Socket &
Socket::operator=(Socket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

TcpStream
TcpStream::connect(const std::string &addr, u16 port)
{
    const sockaddr_in sa = resolve(addr, port);
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        sysError("socket");
    // Frames are written whole and the protocol is request/response:
    // Nagle only adds latency here.
    const int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
    if (::connect(sock.fd(),
                  reinterpret_cast<const sockaddr *>(&sa),
                  sizeof(sa)) != 0)
        sysError("connect to " + addr + ":" + std::to_string(port));
    return TcpStream(std::move(sock));
}

void
TcpStream::sendAll(const void *data, size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    while (n > 0) {
        size_t chunk = n;
        if (fault::faultsEnabled()) {
            auto &fi = fault::FaultInjector::global();
            if (fi.shouldInject(fault::Site::SendReset)) {
                sock_.shutdownBoth();
                throw NetClosed();
            }
            if (fi.shouldInject(fault::Site::SendDelay))
                faultDelay();
            if (fi.shouldInject(fault::Site::SendShort))
                chunk = 1;
        }
        const ssize_t w = ::send(sock_.fd(), p, chunk, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw NetTimeout("send timed out");
            if (errno == EPIPE || errno == ECONNRESET)
                throw NetClosed();
            sysError("send");
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
}

void
TcpStream::recvAll(void *out, size_t n)
{
    u8 *p = static_cast<u8 *>(out);
    while (n > 0) {
        size_t chunk = n;
        if (fault::faultsEnabled()) {
            auto &fi = fault::FaultInjector::global();
            if (fi.shouldInject(fault::Site::RecvReset)) {
                sock_.shutdownBoth();
                throw NetClosed();
            }
            if (fi.shouldInject(fault::Site::RecvDelay))
                faultDelay();
            if (fi.shouldInject(fault::Site::RecvShort))
                chunk = 1;
        }
        const ssize_t r = ::recv(sock_.fd(), p, chunk, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                throw NetTimeout("recv timed out");
            if (errno == ECONNRESET)
                throw NetClosed();
            sysError("recv");
        }
        if (r == 0)
            throw NetClosed();
        p += r;
        n -= static_cast<size_t>(r);
    }
}

namespace {

void
setSockTimeout(int fd, int opt, u64 ms, const char *what)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
    if (::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) != 0)
        sysError(what);
}

} // namespace

void
TcpStream::setRecvTimeoutMs(u64 ms)
{
    setSockTimeout(sock_.fd(), SO_RCVTIMEO, ms, "setsockopt(SO_RCVTIMEO)");
}

void
TcpStream::setSendTimeoutMs(u64 ms)
{
    setSockTimeout(sock_.fd(), SO_SNDTIMEO, ms, "setsockopt(SO_SNDTIMEO)");
}

void
TcpStream::sendFrame(FrameType type, u64 params_hash,
                     const std::vector<u8> &body)
{
    const std::vector<u8> frame = encodeFrame(type, params_hash, body);
    sendAll(frame.data(), frame.size());
}

TcpStream::Frame
TcpStream::recvFrame(u64 max_frame_bytes)
{
    u8 header[kWireHeaderBytes];
    recvAll(header, sizeof(header));
    Frame f;
    f.header = decodeFrameHeader(header, max_frame_bytes);
    f.body.resize(static_cast<size_t>(f.header.body_len));
    if (!f.body.empty())
        recvAll(f.body.data(), f.body.size());
    return f;
}

TcpListener::TcpListener(const std::string &addr, u16 port)
{
    const sockaddr_in sa = resolve(addr, port);
    sock_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock_.valid())
        sysError("socket");
    const int one = 1;
    ::setsockopt(sock_.fd(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(sock_.fd(), reinterpret_cast<const sockaddr *>(&sa),
               sizeof(sa)) != 0)
        sysError("bind " + addr + ":" + std::to_string(port));
    if (::listen(sock_.fd(), 16) != 0)
        sysError("listen");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock_.fd(),
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        sysError("getsockname");
    port_ = ntohs(bound.sin_port);
}

Socket
TcpListener::accept(const std::atomic<bool> &stop)
{
    while (!stop.load()) {
        pollfd pfd{};
        pfd.fd = sock_.fd();
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            sysError("poll");
        }
        if (rc == 0)
            continue; // timeout: recheck stop
        const int fd = ::accept(sock_.fd(), nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            sysError("accept");
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return Socket(fd);
    }
    return Socket();
}

} // namespace ark
