/**
 * @file
 * The network serving front-end: a TCP server speaking the ARK wire
 * protocol (docs/wire_format.md) in front of a BatchServer.
 *
 * One WireServer owns one listening socket and a thread per client
 * connection. A connection is a session: after the §5.1-§5.4 hello
 * exchange (version negotiation, parameter set, workload catalog) the
 * client opens a tenant session, uploads its own evaluation keys —
 * held in an uploaded-mode KeyCache owned by the session, so tenants
 * never share key material — and submits ciphertexts. Submissions
 * route through BatchServer::trySubmitRemote, i.e. through the SAME
 * bounded admission queues, evk-affinity shard router, and worker
 * pool as in-process traffic; the wire layer adds transport and
 * tenancy, not a second execution path.
 *
 * Error discipline (§7): admission refusals map to typed ERROR frames
 * (QUEUE_FULL is retryable, the session survives; SESSION_LIMIT and
 * SERVER_SHUTDOWN are fatal), execution failures ride back inside
 * RESPONSE frames with their ServeErrorKind mapped to a wire code,
 * and protocol violations (bad params hash, malformed body, frames
 * out of order) are fatal ERROR frames followed by a close.
 *
 * docs/serving.md walks the whole lifecycle; tests/test_net_serving
 * pins loopback bit-parity against in-process execution.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "obs/stats_emitter.h"
#include "serve/batch_server.h"
#include "wire/serializer.h"
#include "wire/stats_frame.h"

namespace ark {

/** TCP front-end serving the wire protocol for one BatchServer. */
class WireServer
{
  public:
    /**
     * Bind the address/port in @p server 's config (BatchServerConfig
     * ::listen_addr / listen_port; port 0 picks an ephemeral port,
     * reported by port()) and start accepting. The BatchServer must
     * outlive the WireServer.
     */
    explicit WireServer(BatchServer &server);
    ~WireServer();

    WireServer(const WireServer &) = delete;
    WireServer &operator=(const WireServer &) = delete;

    /** The bound port (resolves an ephemeral-port bind). */
    u16 port() const { return port_; }
    const std::string &addr() const { return addr_; }

    /** Sessions currently open (tenant slots in use). */
    size_t activeSessions() const { return active_sessions_.load(); }
    /** Total sessions accepted over the server's lifetime. */
    size_t sessionsOpened() const { return sessions_opened_.load(); }

    /** The live-stats sample a §5.16 STATS frame answers with (also
     *  what the periodic emitter renders). */
    RemoteStats collectStats() const;

    /** Stop accepting, unblock and join every connection thread.
     *  Idempotent; the destructor calls it. */
    void stop();

  private:
    struct Connection
    {
        TcpStream stream;
        std::thread thread;

        explicit Connection(TcpStream s) : stream(std::move(s)) {}
    };

    void acceptLoop();
    void serveConnection(Connection &conn);

    BatchServer &server_;
    const u64 params_hash_;
    const u64 max_frame_bytes_;
    std::string addr_;
    u16 port_ = 0;

    TcpListener listener_;
    std::atomic<bool> stop_{false};
    std::thread accept_thread_;

    std::mutex conns_m_;
    std::vector<std::unique_ptr<Connection>> conns_;

    std::atomic<size_t> active_sessions_{0};
    std::atomic<size_t> sessions_opened_{0};
    std::atomic<u64> next_session_id_{1};

    /** Uptime epoch for STATS frames. */
    const std::chrono::steady_clock::time_point start_tp_ =
        std::chrono::steady_clock::now();
    /** Live when ARK_STATS_INTERVAL_MS is set: prints collectStats()
     *  to stderr every interval. */
    std::unique_ptr<obs::StatsEmitter> emitter_;
};

} // namespace ark
