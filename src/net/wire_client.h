/**
 * @file
 * Client library for the ARK wire protocol (docs/wire_format.md) —
 * the remote half of the OpenFHE-style flow: connect, receive the
 * server's parameter set, generate keys locally, upload the evks
 * (seed-compressed, §6), encrypt, submit, decrypt.
 *
 * The constructor performs the §5.1-§5.4 hello exchange and builds a
 * CkksContext from the received PARAMS frame, so a WireClient is
 * self-contained: callers encode/encrypt against context() and never
 * need out-of-band parameter agreement. Every frame after the hello
 * is bound to the negotiated parameter-set hash; a mismatch on either
 * side is a fatal PARAMS_MISMATCH (§7).
 *
 * Error handling: retryable refusals (QUEUE_FULL, SHED,
 * UNKNOWN_WORKLOAD, DEADLINE_EXCEEDED) surface as a failed
 * SubmitOutcome with the wire code; fatal ERROR frames and malformed
 * server frames throw WireError; transport failures throw NetError
 * (NetTimeout when a per-op deadline set via setOpTimeoutMs lapses).
 *
 * Resilience (docs/robustness.md): the client remembers everything it
 * told the server — tenant name, uploaded public/eval keys — so
 * reconnect() can rebuild a dead session from scratch: fresh TCP
 * connect, hello re-exchange (the parameter-set hash must still
 * match), session reopen, key re-upload. submitWithRetry() drives
 * that loop automatically: retryable refusals back off with
 * decorrelated jitter, transport faults reconnect first, and every
 * attempt carries the same client-chosen request id so the attempts
 * are correlatable server-side. Workload evaluation is pure
 * (deterministic HE on immutable keys), so a re-executed retry is
 * idempotent by construction — equal inputs produce bit-identical
 * RESPONSE bodies. docs/serving.md §4 walks a full session.
 */

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckks/context.h"
#include "net/socket.h"
#include "wire/serializer.h"
#include "wire/stats_frame.h"

namespace ark {

/** One entry of the server's §5.4 workload catalog. */
struct RemoteWorkload
{
    std::string name;
    size_t op_count = 0;
    /** Levels a request consumes — the input must be encrypted at
     *  least this high. */
    size_t levels_needed = 0;
    /** Rotation amounts the workload references: exactly the evks a
     *  tenant must upload before submitting it. */
    std::vector<i64> rotations;
};

/** Backoff/retry knobs for WireClient::submitWithRetry. */
struct RetryPolicy
{
    /** Total tries including the first (1 = no retry). */
    size_t max_attempts = 6;
    /** Decorrelated-jitter backoff: sleep is uniform in
     *  [base, prev*3], capped at max (AWS architecture-blog
     *  recipe — retries spread out instead of thundering back). */
    u64 base_backoff_ms = 5;
    u64 max_backoff_ms = 500;
    /** Reconnect + re-establish the session (reconnect()) after a
     *  transport error before the next attempt. When false a NetError
     *  propagates to the caller on first occurrence. */
    bool reconnect = true;
    /** Seed for the deterministic jitter sequence (tests pin it). */
    u64 jitter_seed = 1;
    /** Injectable sleeper for tests; null = real
     *  std::this_thread::sleep_for. Receives milliseconds. */
    std::function<void(u64)> sleep_ms;
};

/** A connected, hello-complete wire-protocol client session. */
class WireClient
{
  public:
    /** Connect and run the hello exchange (§5.1-§5.4). Throws
     *  NetError / WireError on failure. */
    WireClient(const std::string &addr, u16 port,
               const std::string &client_name = "ark-client");
    ~WireClient();

    WireClient(const WireClient &) = delete;
    WireClient &operator=(const WireClient &) = delete;

    /** The server's parameter set (from the PARAMS frame). */
    const CkksParams &params() const { return params_; }
    /** A context built from params() — encode/encrypt against this. */
    const CkksContext &context() const { return *ctx_; }
    /** The §3 hash both sides bind every frame to. */
    u64 boundParamsHash() const { return params_hash_; }

    const std::vector<RemoteWorkload> &workloads() const
    {
        return workloads_;
    }
    size_t serverMaxSessions() const { return server_max_sessions_; }
    u64 serverMaxFrameBytes() const { return server_max_frame_bytes_; }

    /** §5.5: open the tenant session. Returns the session id. */
    u64 openSession(const std::string &tenant_name);
    bool sessionOpen() const { return session_open_; }

    /** Upload one evk (§5.7; seed-compressed when key.seeded). The
     *  returned value is the server-side tenant key footprint in
     *  bytes after the upload (from KEY_ACK §5.9) — what
     *  bench_sharding reports as per-tenant evk cache pressure. */
    u64 uploadMultiplicationKey(const EvalKey &key);
    u64 uploadRotationKey(i64 amount, const EvalKey &key);
    /** Upload the tenant public key (§5.8). */
    u64 uploadPublicKey(const PublicKey &pk);

    /** Outcome of one §5.12 SUBMIT / §5.19 SUBMIT2. */
    struct SubmitOutcome
    {
        bool ok = false;
        /** §7 code: Ok on success; QueueFull / Shed /
         *  UnknownWorkload / DeadlineExceeded on a retryable refusal
         *  (Shed = the SLO admission controller wants this client to
         *  back off; DeadlineExceeded = the request aged out queued);
         *  the execution-failure codes (MissingKey, LevelExhausted,
         *  ExecFailed) when the request ran and failed — and Shed
         *  again when an admitted request was evicted for
         *  higher-priority work before running. */
        WireCode code = WireCode::Ok;
        std::string error;
        u64 request_id = 0;
        u64 checksum = 0;
        int final_level = -1;
        u64 he_ops = 0;
        double latency_ms = 0;
        bool has_output = false;
        Ciphertext output;
    };

    /** Submit @p input under workload @p workload_index and wait for
     *  the RESPONSE (synchronous, one request in flight per client).
     *  Sends SUBMIT2 (§5.19) when @p deadline_ms or @p request_id is
     *  nonzero, the frozen v1 SUBMIT otherwise. @p deadline_ms is
     *  relative — the server converts to its own clock at receipt, so
     *  client/server clock skew never matters. request_id == 0 lets
     *  the server assign one. */
    SubmitOutcome submit(size_t workload_index,
                         const Ciphertext &input, u64 deadline_ms = 0,
                         u64 request_id = 0);

    /** submit() wrapped in the full recovery loop: retryable refusals
     *  back off (decorrelated jitter) and resubmit under the SAME
     *  request id; transport errors reconnect() first when the policy
     *  allows. Fatal wire errors and hello failures still throw.
     *  Throws the last NetError when every attempt died on transport.
     *  Counts obs ClientRetries per re-attempt. */
    SubmitOutcome submitWithRetry(size_t workload_index,
                                  const Ciphertext &input,
                                  const RetryPolicy &policy = {},
                                  u64 deadline_ms = 0,
                                  u64 request_id = 0);

    /** §5.16: poll the server's live stats (no session needed —
     *  works right after the hello). */
    RemoteStats stats();

    /** Result of one §5.17 PING round trip. */
    struct PingResult
    {
        u64 nonce = 0;     ///< echoed by the server (verified)
        u64 uptime_ms = 0; ///< server-reported time since start
        double rtt_ms = 0; ///< client-measured round-trip time
    };
    /** §5.17: liveness probe. Works pre-session, like stats(). */
    PingResult ping();

    /** Per-operation I/O deadline: every subsequent send/recv that
     *  blocks longer than this throws NetTimeout (0 = wait forever).
     *  Reapplied automatically after reconnect(). */
    void setOpTimeoutMs(u64 ms);

    /** Tear down and rebuild the whole session: fresh TCP connect,
     *  hello re-exchange (throws PARAMS_MISMATCH if the server's
     *  parameter set changed), then — if a session was open — reopen
     *  it and re-upload every key this client ever uploaded, so the
     *  server side is indistinguishable from an unbroken session. */
    void reconnect();
    /** reconnect() invocations so far (tests / diagnostics). */
    size_t reconnects() const { return reconnects_; }

    /** §5.14: close the session (waits for the server's echo). */
    void closeSession();

    /** Drop the connection without the close handshake. */
    void disconnect();

  private:
    /** One remembered §5.7 upload, replayable on reconnect. */
    struct CachedEvalKey
    {
        EvalKeyPurpose purpose;
        u64 galois_elt;
        EvalKey key;
    };

    void connectAndHello();
    void applyOpTimeout();
    u64 openSessionOnWire(const std::string &tenant_name);
    TcpStream::Frame roundTrip(FrameType type,
                               const std::vector<u8> &body);
    u64 keyAck(TcpStream::Frame f);
    u64 uploadEvalKey(EvalKeyPurpose purpose, u64 galois_elt,
                      const EvalKey &key);

    std::string addr_;
    u16 port_ = 0;
    std::string client_name_;
    std::unique_ptr<TcpStream> stream_;
    CkksParams params_;
    std::unique_ptr<CkksContext> ctx_;
    u64 params_hash_ = 0;
    std::vector<RemoteWorkload> workloads_;
    size_t server_max_sessions_ = 0;
    u64 server_max_frame_bytes_ = kDefaultMaxFrameBytes;
    u64 session_id_ = 0;
    bool session_open_ = false;
    std::string tenant_name_;
    u64 op_timeout_ms_ = 0;
    size_t reconnects_ = 0;
    u64 next_ping_nonce_ = 1;
    u64 next_request_id_ = 0;
    std::unique_ptr<PublicKey> cached_pk_;
    std::vector<CachedEvalKey> cached_evks_;
};

} // namespace ark
