/**
 * @file
 * Client library for the ARK wire protocol (docs/wire_format.md) —
 * the remote half of the OpenFHE-style flow: connect, receive the
 * server's parameter set, generate keys locally, upload the evks
 * (seed-compressed, §6), encrypt, submit, decrypt.
 *
 * The constructor performs the §5.1-§5.4 hello exchange and builds a
 * CkksContext from the received PARAMS frame, so a WireClient is
 * self-contained: callers encode/encrypt against context() and never
 * need out-of-band parameter agreement. Every frame after the hello
 * is bound to the negotiated parameter-set hash; a mismatch on either
 * side is a fatal PARAMS_MISMATCH (§7).
 *
 * Error handling: retryable refusals (QUEUE_FULL, SHED,
 * UNKNOWN_WORKLOAD) surface as a failed SubmitOutcome with the wire
 * code; fatal ERROR frames and malformed server frames throw
 * WireError; transport failures throw NetError. docs/serving.md §4
 * walks a full session.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckks/context.h"
#include "net/socket.h"
#include "wire/serializer.h"
#include "wire/stats_frame.h"

namespace ark {

/** One entry of the server's §5.4 workload catalog. */
struct RemoteWorkload
{
    std::string name;
    size_t op_count = 0;
    /** Levels a request consumes — the input must be encrypted at
     *  least this high. */
    size_t levels_needed = 0;
    /** Rotation amounts the workload references: exactly the evks a
     *  tenant must upload before submitting it. */
    std::vector<i64> rotations;
};

/** A connected, hello-complete wire-protocol client session. */
class WireClient
{
  public:
    /** Connect and run the hello exchange (§5.1-§5.4). Throws
     *  NetError / WireError on failure. */
    WireClient(const std::string &addr, u16 port,
               const std::string &client_name = "ark-client");
    ~WireClient();

    WireClient(const WireClient &) = delete;
    WireClient &operator=(const WireClient &) = delete;

    /** The server's parameter set (from the PARAMS frame). */
    const CkksParams &params() const { return params_; }
    /** A context built from params() — encode/encrypt against this. */
    const CkksContext &context() const { return *ctx_; }
    /** The §3 hash both sides bind every frame to. */
    u64 boundParamsHash() const { return params_hash_; }

    const std::vector<RemoteWorkload> &workloads() const
    {
        return workloads_;
    }
    size_t serverMaxSessions() const { return server_max_sessions_; }
    u64 serverMaxFrameBytes() const { return server_max_frame_bytes_; }

    /** §5.5: open the tenant session. Returns the session id. */
    u64 openSession(const std::string &tenant_name);
    bool sessionOpen() const { return session_open_; }

    /** Upload one evk (§5.7; seed-compressed when key.seeded). The
     *  returned value is the server-side tenant key footprint in
     *  bytes after the upload (from KEY_ACK §5.9) — what
     *  bench_sharding reports as per-tenant evk cache pressure. */
    u64 uploadMultiplicationKey(const EvalKey &key);
    u64 uploadRotationKey(i64 amount, const EvalKey &key);
    /** Upload the tenant public key (§5.8). */
    u64 uploadPublicKey(const PublicKey &pk);

    /** Outcome of one §5.12 SUBMIT. */
    struct SubmitOutcome
    {
        bool ok = false;
        /** §7 code: Ok on success; QueueFull / Shed /
         *  UnknownWorkload on a retryable refusal (Shed = the SLO
         *  admission controller wants this client to back off); the
         *  execution-failure codes (MissingKey, LevelExhausted,
         *  ExecFailed) when the request ran and failed — and Shed
         *  again when an admitted request was evicted for
         *  higher-priority work before running. */
        WireCode code = WireCode::Ok;
        std::string error;
        u64 request_id = 0;
        u64 checksum = 0;
        int final_level = -1;
        u64 he_ops = 0;
        double latency_ms = 0;
        bool has_output = false;
        Ciphertext output;
    };

    /** Submit @p input under workload @p workload_index and wait for
     *  the RESPONSE (synchronous, one request in flight per client). */
    SubmitOutcome submit(size_t workload_index,
                         const Ciphertext &input);

    /** §5.16: poll the server's live stats (no session needed —
     *  works right after the hello). */
    RemoteStats stats();

    /** §5.14: close the session (waits for the server's echo). */
    void closeSession();

    /** Drop the connection without the close handshake. */
    void disconnect();

  private:
    TcpStream::Frame roundTrip(FrameType type,
                               const std::vector<u8> &body);
    u64 keyAck(TcpStream::Frame f);

    std::unique_ptr<TcpStream> stream_;
    CkksParams params_;
    std::unique_ptr<CkksContext> ctx_;
    u64 params_hash_ = 0;
    std::vector<RemoteWorkload> workloads_;
    size_t server_max_sessions_ = 0;
    u64 server_max_frame_bytes_ = kDefaultMaxFrameBytes;
    u64 session_id_ = 0;
    bool session_open_ = false;
};

} // namespace ark
