#include "boot/evalmod.h"

#include <cmath>

#include "common/logging.h"

namespace ark {

bool
evalModSplitsAngle(const EvalModConfig &cfg, double arg_factor)
{
    const double combined =
        2.0 * M_PI * arg_factor / std::pow(2.0, cfg.log_double_angle);
    return combined < 1.0 / (1 << 10);
}

int
evalModDepth(const EvalModConfig &cfg, double arg_factor)
{
    // angle scaling (1 or 2) + power basis up to degree d (BSGS:
    // babies 2 levels, giants up to y^12 two more) + giant product with
    // resolution headroom (2 rescales) + r doublings.
    const int angle_levels = evalModSplitsAngle(cfg, arg_factor) ? 2 : 1;
    return angle_levels + 4 + 2 + cfg.log_double_angle;
}

Ciphertext
linearCombination(const CkksEvaluator &eval,
                  const std::vector<const Ciphertext *> &cts,
                  const std::vector<double> &coeffs, double target_scale)
{
    ARK_ASSERT(cts.size() == coeffs.size(), "arity mismatch");
    Ciphertext acc;
    bool set = false;
    for (size_t i = 0; i < cts.size(); ++i) {
        if (coeffs[i] == 0.0)
            continue;
        // mulScalar(c, v, s) yields scale c.scale * s; choosing
        // s = target/operand pins every term to the same true scale.
        Ciphertext term = eval.mulScalar(*cts[i], coeffs[i],
                                         target_scale / cts[i]->scale);
        term.scale = target_scale; // remove float-product jitter
        acc = set ? eval.add(acc, term) : std::move(term);
        set = true;
    }
    ARK_ASSERT(set, "empty linear combination");
    return acc;
}

namespace {

/** Taylor coefficient of sin (odd) / cos (even) at index k. */
double
taylorCoeff(int k, bool sine)
{
    if (sine != (k % 2 == 1))
        return 0.0;
    double c = 1.0;
    for (int i = 2; i <= k; ++i)
        c /= i;
    // sign: sin: +,-,+ for k=1,3,5; cos: +,-,+ for k=0,2,4.
    int quarter = sine ? (k - 1) / 2 : k / 2;
    return (quarter % 2 == 0) ? c : -c;
}

} // namespace

Ciphertext
evalMod(const CkksEvaluator &eval, const Ciphertext &ct,
        const EvalKey &evk_mult, const EvalModConfig &cfg,
        double arg_factor)
{
    const auto &ctx = eval.context();
    const double delta = ctx.params().scale();
    const int d = cfg.taylor_degree;
    ARK_ASSERT(d >= 3 && d <= 15, "taylor degree out of supported range");
    const int r = cfg.log_double_angle;

    // Scalar multiply pinning the post-rescale scale to @p tgt exactly.
    // Keeping every intermediate at scale ~Delta is what makes the
    // double-angle iteration a stable fixed point (scale evolves as
    // s -> s^2 / q, which diverges unless s ~ q).
    auto mul_to_scale = [&](const Ciphertext &in, double value,
                            double tgt) {
        const Modulus &q_top = ctx.qModuli()[in.level()];
        double s_param =
            tgt * static_cast<double>(q_top.value()) / in.scale;
        Ciphertext out = eval.rescale(eval.mulScalar(in, value, s_param));
        out.scale = tgt;
        return out;
    };

    // (1) y = 2*pi*x*arg_factor / 2^r. When the combined constant is
    // too small for single-multiplier resolution (arg_factor carries
    // the q0/Delta0 message ratio of bootstrapping), split it over two
    // scalar multiplications so each multiplier stays large.
    const double combined =
        2.0 * M_PI * arg_factor / std::pow(2.0, r);
    Ciphertext y;
    if (combined >= 1.0 / (1 << 10)) {
        y = mul_to_scale(ct, combined, delta);
    } else {
        int k = 0;
        double c1 = combined;
        while (c1 < 0.25) {
            c1 *= 2.0;
            ++k;
        }
        y = mul_to_scale(ct, c1, delta);
        y = mul_to_scale(y, std::pow(2.0, -k), delta);
    }

    // (2) BSGS power basis: babies y, y^2, y^3; giants y^4, y^8, y^12.
    Ciphertext y2 = eval.rescale(eval.square(y, evk_mult));
    Ciphertext y3 = eval.rescale(
        eval.mul(y2, eval.modDownTo(y, y2.level()), evk_mult));
    Ciphertext y4 = eval.rescale(eval.square(y2, evk_mult));
    Ciphertext y8 = eval.rescale(eval.square(y4, evk_mult));
    Ciphertext y12 = eval.rescale(
        eval.mul(y8, eval.modDownTo(y4, y8.level()), evk_mult));

    const int base_level = y12.level();
    auto at = [&](const Ciphertext &c) {
        return eval.modDownTo(c, base_level);
    };
    Ciphertext one = at(ct); // placeholder for the i = 0 basis slot
    std::vector<Ciphertext> babies = {at(y), at(y2), at(y3)};
    std::vector<Ciphertext> giants = {at(y4), at(y8), at(y12)};

    // (2b) Evaluate p(y) = sum_j (sum_i c_{4j+i} y^i) * y^{4j} for both
    // sin and cos with a shared basis. Per-group inner targets are
    // chosen as T/g_j so the giant products all land on scale T.
    // T carries one extra Delta of headroom so the scalar multipliers
    // round(c * T / (g_j * s_i)) ~ c * Delta keep full resolution even
    // for the tiny high-order Taylor coefficients; the headroom is
    // paid back with a second rescale below.
    const double t_prod = delta * delta * delta;
    auto eval_poly = [&](bool sine) {
        Ciphertext acc;
        bool acc_set = false;
        for (int j = 0; j * 4 <= d; ++j) {
            std::vector<const Ciphertext *> terms;
            std::vector<double> cs;
            for (int i = (j == 0 ? 1 : 0); i < 4 && 4 * j + i <= d; ++i) {
                double c = taylorCoeff(4 * j + i, sine);
                if (c == 0.0)
                    continue;
                terms.push_back(i == 0 ? &giants[j - 1] : &babies[i - 1]);
                // For i = 0 the term is c * y^{4j} itself; fold it in
                // as a linear term on the giant.
                cs.push_back(c);
            }
            if (terms.empty())
                continue;
            Ciphertext group;
            if (j == 0) {
                group = linearCombination(eval, terms, cs, t_prod);
            } else {
                // Split the pure-giant linear term (i == 0) from the
                // inner * giant product.
                std::vector<const Ciphertext *> inner_terms;
                std::vector<double> inner_cs;
                bool has_linear = false;
                double linear_c = 0;
                for (size_t k = 0; k < terms.size(); ++k) {
                    if (terms[k] == &giants[j - 1]) {
                        has_linear = true;
                        linear_c = cs[k];
                    } else {
                        inner_terms.push_back(terms[k]);
                        inner_cs.push_back(cs[k]);
                    }
                }
                bool group_set = false;
                if (!inner_terms.empty()) {
                    Ciphertext inner = linearCombination(
                        eval, inner_terms, inner_cs,
                        t_prod / giants[j - 1].scale);
                    group = eval.mul(inner, giants[j - 1], evk_mult);
                    group.scale = t_prod;
                    group_set = true;
                }
                if (has_linear) {
                    Ciphertext lin = linearCombination(
                        eval, {&giants[j - 1]}, {linear_c}, t_prod);
                    group = group_set ? eval.add(group, lin)
                                      : std::move(lin);
                }
            }
            acc = acc_set ? eval.add(acc, group) : std::move(group);
            acc_set = true;
        }
        ARK_ASSERT(acc_set, "empty Taylor polynomial");
        Ciphertext out = eval.rescale(eval.rescale(acc));
        if (!sine) // cos has the constant term 1
            out = eval.addScalar(out, 1.0);
        return out;
    };

    Ciphertext s = eval_poly(true);
    Ciphertext c = eval_poly(false);
    (void)one;

    // (3) r double-angle steps; one level each.
    for (int step = 0; step < r; ++step) {
        Ciphertext s2 = eval.rescale(eval.mul(s, c, evk_mult));
        s2 = eval.mulScalar(s2, 2.0, 1.0); // exact small-integer scalar
        // cos 2a = 2 cos^2 a - 1.
        Ciphertext c2 = eval.rescale(eval.square(c, evk_mult));
        c2 = eval.addScalar(eval.mulScalar(c2, 2.0, 1.0), -1.0);
        s = std::move(s2);
        c = std::move(c2);
    }

    // Fold the 1/(2*pi) into the scale: message' = sin(2*pi*x)/(2*pi).
    s.scale *= 2.0 * M_PI;
    return s;
}

} // namespace ark
