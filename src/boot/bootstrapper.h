/**
 * @file
 * Full CKKS bootstrapping (paper Section II-D): LevelRecover (ModRaise
 * + SubSum), homomorphic IDFT (CoeffToSlot), EvalMod, and homomorphic
 * DFT (SlotToCoeff), with selectable key schedule (Baseline / Min-KS)
 * and plaintext mode (full / OF-Limb) so the paper's two algorithmic
 * contributions can be exercised and compared functionally.
 */

#pragma once

#include <memory>

#include "boot/evalmod.h"
#include "boot/key_cache.h"
#include "boot/linear_transform.h"

namespace ark {

/** Bootstrapping configuration. */
struct BootConfig
{
    KeySchedule schedule = KeySchedule::MinKS;
    PlaintextMode pt_mode = PlaintextMode::OFLimb;
    EvalModConfig evalmod{15, 8};
    /**
     * Expected q0 / Delta0 message ratio of bootstrap inputs. The
     * ratio bounds the precision amplification of bootstrapping, so
     * level-0 ciphertexts should be encoded at Delta0 = q0 / ratio.
     */
    double msg_ratio = 256.0;
};

/** Aggregate statistics of one bootstrap invocation. */
struct BootStats
{
    LtStats hidft; ///< CoeffToSlot (homomorphic IDFT)
    LtStats hdft;  ///< SlotToCoeff (homomorphic DFT)
    size_t subsum_rotations = 0;
    size_t evalmod_mults = 0;
};

/**
 * Bootstrapper for sparsely packed ciphertexts (n <= N/4 slots).
 * Precomputes the DFT matrices numerically from the encoder so the
 * pipeline is self-consistent with the encoding convention.
 */
class Bootstrapper
{
  public:
    Bootstrapper(const CkksContext &ctx, const CkksEncoder &encoder,
                 BootConfig cfg);

    /**
     * Refresh a level-0 ciphertext to a fresh high level.
     * @param ct level-0 ciphertext with scale ~= Delta.
     */
    Ciphertext bootstrap(const CkksEvaluator &eval, const Ciphertext &ct,
                         KeyCache &keys, BootStats *stats = nullptr) const;

    /** Level of the ciphertext bootstrap() returns. */
    int outputLevel() const;

    /** Levels consumed (the paper's L_boot). */
    int bootLevels() const
    {
        return 2 + evalModDepth(cfg_.evalmod, 1.0 / cfg_.msg_ratio);
    }

    const BootConfig &config() const { return cfg_; }

  private:
    const CkksContext &ctx_;
    const CkksEncoder &encoder_;
    BootConfig cfg_;
    size_t slots_;
    std::unique_ptr<LinearTransform> coeff_to_slot_; ///< W^-1 / 2
    std::unique_ptr<LinearTransform> slot_to_coeff_; ///< W * 2n/N
};

} // namespace ark
