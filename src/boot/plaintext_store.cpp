#include "boot/plaintext_store.h"

#include <algorithm>

#include "common/logging.h"
#include "rns/backend.h"

namespace ark {

size_t
PlaintextStore::insert(const Plaintext &pt)
{
    Entry e;
    e.scale = pt.scale;
    e.level = pt.level;
    if (mode_ == PlaintextMode::Full) {
        e.poly = pt.poly;
    } else {
        // Keep only the q0-limb, in the coefficient representation.
        RnsPoly coeff = pt.poly;
        if (coeff.rep() == Rep::Eval)
            ctx_.backend().nttInverse(coeff, ctx_.qTables());
        e.poly = RnsPoly(ctx_.degree(), 1, Rep::Coeff);
        std::copy(coeff.limb(0), coeff.limb(0) + ctx_.degree(),
                  e.poly.limb(0));
    }
    entries_.push_back(std::move(e));
    return entries_.size() - 1;
}

Plaintext
PlaintextStore::get(size_t idx, int level) const
{
    ARK_ASSERT(idx < entries_.size(), "plaintext index out of range");
    const Entry &e = entries_[idx];
    KernelBackend &kb = ctx_.backend();
    Plaintext pt;
    pt.scale = e.scale;
    pt.level = level;

    if (mode_ == PlaintextMode::Full) {
        ARK_ASSERT(level <= e.level,
                   "full-mode plaintext stored at a lower level");
        pt.poly = e.poly;
        pt.poly.resizeLimbs(level + 1); // ModDown is free limb dropping
        // Full-mode plaintexts stream every limb from storage.
        kb.notePlaintextWords(static_cast<u64>(level + 1) *
                              ctx_.degree());
        return pt;
    }

    // OF-Limb extension (Eq. 12): center the q0 residue and reduce it
    // into every current limb, then NTT each generated limb. Only the
    // stored q0 limb streams from storage; the rest is runtime data
    // generation.
    const size_t n = ctx_.degree();
    kb.notePlaintextWords(n);
    std::vector<u64> src(e.poly.limb(0), e.poly.limb(0) + n);
    pt.poly = RnsPoly(n, level + 1, Rep::Coeff);
    kb.limbEmbed(src, ctx_.qModuli()[0], ctx_.qModuli(), pt.poly);
    kb.nttForward(pt.poly, ctx_.qTables());
    return pt;
}

size_t
PlaintextStore::storedBytes() const
{
    size_t total = 0;
    for (const auto &e : entries_)
        total += e.poly.byteSize();
    return total;
}

} // namespace ark
