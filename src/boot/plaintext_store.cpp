#include "boot/plaintext_store.h"

#include "common/logging.h"

namespace ark {

size_t
PlaintextStore::insert(const Plaintext &pt)
{
    Entry e;
    e.scale = pt.scale;
    e.level = pt.level;
    if (mode_ == PlaintextMode::Full) {
        e.poly = pt.poly;
    } else {
        // Keep only the q0-limb, in the coefficient representation.
        RnsPoly coeff = pt.poly;
        if (coeff.rep() == Rep::Eval)
            polyNttInverse(coeff, ctx_.qTables());
        e.poly = RnsPoly(ctx_.degree(), 1, Rep::Coeff);
        std::copy(coeff.limb(0), coeff.limb(0) + ctx_.degree(),
                  e.poly.limb(0));
    }
    entries_.push_back(std::move(e));
    return entries_.size() - 1;
}

Plaintext
PlaintextStore::get(size_t idx, int level) const
{
    ARK_ASSERT(idx < entries_.size(), "plaintext index out of range");
    const Entry &e = entries_[idx];
    Plaintext pt;
    pt.scale = e.scale;
    pt.level = level;

    if (mode_ == PlaintextMode::Full) {
        ARK_ASSERT(level <= e.level,
                   "full-mode plaintext stored at a lower level");
        pt.poly = e.poly;
        pt.poly.resizeLimbs(level + 1); // ModDown is free limb dropping
        return pt;
    }

    // OF-Limb extension (Eq. 12): center the q0 residue and reduce it
    // into every current limb, then NTT each generated limb.
    const size_t n = ctx_.degree();
    const u64 q0 = ctx_.qModuli()[0].value();
    pt.poly = RnsPoly(n, level + 1, Rep::Coeff);
    const u64 *src = e.poly.limb(0);
    for (int l = 0; l <= level; ++l) {
        const u64 q = ctx_.qModuli()[l].value();
        const u64 q0_mod = q0 % q;
        u64 *dst = pt.poly.limb(l);
        for (size_t i = 0; i < n; ++i) {
            u64 v = src[i];
            u64 r = v % q;
            if (v > q0 / 2) // negative coefficient: subtract q0
                r = subMod(r, q0_mod, q);
            dst[i] = r;
        }
    }
    polyNttForward(pt.poly, ctx_.qTables());
    return pt;
}

size_t
PlaintextStore::storedBytes() const
{
    size_t total = 0;
    for (const auto &e : entries_)
        total += e.poly.byteSize();
    return total;
}

} // namespace ark
