/**
 * @file
 * Plaintext store with on-the-fly limb extension (OF-Limb).
 *
 * Paper Section IV-B: the plaintexts multiplied into ciphertexts during
 * H-(I)DFT (and any PMult-heavy workload) are precomputed polynomials
 * whose (l+1) limbs are all derived from one integer coefficient
 * vector. OF-Limb stores only the q0-limb in the coefficient
 * representation and regenerates the other limbs at use time:
 *
 *     [Pm']_C = { NTT(center([Pm']_{q0}) mod q_i) }_{q_i in C}   (Eq. 12)
 *
 * (centering the q0 residue first, since plaintext coefficients are
 * signed values of magnitude << q0). This cuts the stored/loaded bytes
 * to 1/(l+1) at the price of l extra NTTs — exactly the compute/traffic
 * trade ARK's NTTU throughput absorbs.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "ckks/context.h"
#include "ckks/encoder.h"

namespace ark {

/** How plaintext operands are materialized. */
enum class PlaintextMode {
    Full,   ///< all limbs precomputed and stored (baseline)
    OFLimb, ///< q0-limb stored; others generated on the fly
};

/** A bank of encoded plaintexts for one HE kernel. */
class PlaintextStore
{
  public:
    PlaintextStore(const CkksContext &ctx, PlaintextMode mode)
        : ctx_(ctx), mode_(mode)
    {
    }

    PlaintextMode mode() const { return mode_; }

    /**
     * Insert a plaintext (already encoded at the level it will be used
     * at). In OFLimb mode only the q0-limb is retained.
     */
    size_t insert(const Plaintext &pt);

    /** Materialize plaintext @p idx with @p level + 1 limbs. */
    Plaintext get(size_t idx, int level) const;

    size_t size() const { return entries_.size(); }

    /** Bytes held (the off-chip footprint of the plaintext bank). */
    size_t storedBytes() const;

  private:
    struct Entry
    {
        /** Full mode: complete Eval-rep poly. OFLimb: one coeff-rep
         *  q0 limb. */
        RnsPoly poly;
        double scale;
        int level; ///< level the plaintext was encoded at (Full mode)
    };

    const CkksContext &ctx_;
    PlaintextMode mode_;
    std::vector<Entry> entries_;
};

} // namespace ark
