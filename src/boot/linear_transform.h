/**
 * @file
 * Homomorphic linear transforms via BSGS diagonals, with the three key
 * schedules the paper compares (Fig. 1):
 *
 *  - Baseline: every baby/giant rotation uses its own evk (hoisted a la
 *    Halevi-Shoup for the baby steps) — Fig. 1(a) / Eq. 8.
 *  - MinimalKS: the strategy of [Halevi-Shoup 42]: iterate rotations so
 *    baby steps share one evk and giant steps share one evk, plus the
 *    pre-rotation key — Fig. 1(b).
 *  - MinKS: ARK's minimum key-switching — the pre-rotation is
 *    eliminated by folding it into the diagonal ordering, so each
 *    BSGS evaluation needs exactly TWO evks — Fig. 1(c).
 *
 * The transform computes M*z for a dense or strided complex matrix
 * acting on the slot vector, which covers both the single-shot
 * CoeffToSlot/SlotToCoeff of the functional bootstrapper and each
 * radix-2^k iteration of the FFT-like H-(I)DFT (Alg. 3).
 */

#pragma once

#include <complex>
#include <vector>

#include "boot/key_cache.h"
#include "boot/plaintext_store.h"
#include "ckks/encoder.h"
#include "ckks/evaluator.h"

namespace ark {

/** Key schedule selection (paper Fig. 1). */
enum class KeySchedule {
    Baseline,  ///< per-rotation evks, hoisted baby steps
    MinimalKS, ///< Halevi-Shoup iterative reuse (baby+giant+pre keys)
    MinKS,     ///< ARK: two evks per BSGS evaluation
};

/** Dense complex matrix on the slot space. */
struct SlotMatrix
{
    size_t n = 0;                      ///< slot count
    std::vector<Complex> data;         ///< row-major n x n

    Complex &at(size_t r, size_t c) { return data[r * n + c]; }
    Complex at(size_t r, size_t c) const { return data[r * n + c]; }

    static SlotMatrix identity(size_t n);
    /** Numerical inverse by Gaussian elimination (for W^-1). */
    SlotMatrix inverse() const;
    std::vector<Complex> apply(const std::vector<Complex> &v) const;
    SlotMatrix multiply(const SlotMatrix &o) const;
};

/** Statistics of one homomorphic transform evaluation. */
struct LtStats
{
    size_t rotations = 0;      ///< HRot count (key switches)
    size_t pmults = 0;         ///< plaintext multiplies
    size_t distinct_evks = 0;  ///< distinct rotation keys required
};

/**
 * One precompiled BSGS linear transform: plaintext diagonals encoded
 * into a PlaintextStore (optionally OF-Limb), applied with a chosen
 * key schedule.
 */
class LinearTransform
{
  public:
    /**
     * @param diag_stride rotation stride between adjacent diagonals
     *        (1 for a dense transform; 2^(k*s) for H-(I)DFT stage s).
     * @param scale encoding scale for the diagonals (0 = Delta).
     */
    LinearTransform(const CkksContext &ctx, const CkksEncoder &encoder,
                    const SlotMatrix &m, size_t diag_stride,
                    PlaintextMode pt_mode, double scale = 0);

    /** Apply to a ciphertext; appends one rescale (consumes 1 level). */
    Ciphertext apply(const CkksEvaluator &eval, const Ciphertext &ct,
                     KeySchedule sched, KeyCache &keys,
                     LtStats *stats = nullptr) const;

    size_t babySteps() const { return bs_; }
    size_t giantSteps() const { return gs_; }
    size_t numDiagonals() const { return n_; }
    const PlaintextStore &plaintexts() const { return store_; }

  private:
    Ciphertext applyBaseline(const CkksEvaluator &eval,
                             const Ciphertext &ct, KeyCache &keys,
                             LtStats *stats) const;
    Ciphertext applyIterative(const CkksEvaluator &eval,
                              const Ciphertext &ct, KeySchedule sched,
                              KeyCache &keys, LtStats *stats) const;

    const CkksContext &ctx_;
    size_t n_;           ///< number of diagonals == slot count
    size_t stride_;
    size_t bs_, gs_;
    double scale_;
    PlaintextStore store_;      ///< pre-rotated diagonals, bs*gs entries
    std::vector<bool> nonzero_; ///< skip all-zero diagonals
};

} // namespace ark
