#include "boot/linear_transform.h"

#include <cmath>
#include <set>

#include "common/logging.h"

namespace ark {

SlotMatrix
SlotMatrix::identity(size_t n)
{
    SlotMatrix m;
    m.n = n;
    m.data.assign(n * n, Complex(0, 0));
    for (size_t i = 0; i < n; ++i)
        m.at(i, i) = Complex(1, 0);
    return m;
}

SlotMatrix
SlotMatrix::inverse() const
{
    // Gauss-Jordan with partial pivoting; matrices here are tiny
    // (n <= a few hundred) and well-conditioned DFT factors.
    SlotMatrix a = *this;
    SlotMatrix inv = identity(n);
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r) {
            if (std::abs(a.at(r, col)) > std::abs(a.at(pivot, col)))
                pivot = r;
        }
        ARK_ASSERT(std::abs(a.at(pivot, col)) > 1e-12,
                   "singular slot matrix");
        if (pivot != col) {
            for (size_t c = 0; c < n; ++c) {
                std::swap(a.at(col, c), a.at(pivot, c));
                std::swap(inv.at(col, c), inv.at(pivot, c));
            }
        }
        Complex d = a.at(col, col);
        for (size_t c = 0; c < n; ++c) {
            a.at(col, c) /= d;
            inv.at(col, c) /= d;
        }
        for (size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            Complex f = a.at(r, col);
            if (std::abs(f) == 0.0)
                continue;
            for (size_t c = 0; c < n; ++c) {
                a.at(r, c) -= f * a.at(col, c);
                inv.at(r, c) -= f * inv.at(col, c);
            }
        }
    }
    return inv;
}

std::vector<Complex>
SlotMatrix::apply(const std::vector<Complex> &v) const
{
    ARK_ASSERT(v.size() == n, "vector size mismatch");
    std::vector<Complex> out(n, Complex(0, 0));
    for (size_t r = 0; r < n; ++r) {
        for (size_t c = 0; c < n; ++c)
            out[r] += at(r, c) * v[c];
    }
    return out;
}

SlotMatrix
SlotMatrix::multiply(const SlotMatrix &o) const
{
    ARK_ASSERT(n == o.n, "matrix size mismatch");
    SlotMatrix out;
    out.n = n;
    out.data.assign(n * n, Complex(0, 0));
    for (size_t r = 0; r < n; ++r) {
        for (size_t k = 0; k < n; ++k) {
            Complex v = at(r, k);
            if (std::abs(v) == 0.0)
                continue;
            for (size_t c = 0; c < n; ++c)
                out.at(r, c) += v * o.at(k, c);
        }
    }
    return out;
}

LinearTransform::LinearTransform(const CkksContext &ctx,
                                 const CkksEncoder &encoder,
                                 const SlotMatrix &m, size_t diag_stride,
                                 PlaintextMode pt_mode, double scale)
    : ctx_(ctx), n_(m.n), stride_(diag_stride),
      scale_(scale == 0 ? ctx.params().scale() : scale),
      store_(ctx, pt_mode)
{
    ARK_ASSERT(n_ % stride_ == 0, "stride must divide slot count");
    const size_t n_u = n_ / stride_; // diagonal grid size
    bs_ = static_cast<size_t>(std::ceil(std::sqrt(
        static_cast<double>(n_u))));
    gs_ = (n_u + bs_ - 1) / bs_;

    // Verify the matrix has no mass off the stride grid.
    if (stride_ > 1) {
        for (size_t r = 0; r < n_; ++r) {
            for (size_t c = 0; c < n_; ++c) {
                size_t d = (c + n_ - r) % n_;
                if (d % stride_ != 0)
                    ARK_ASSERT(std::abs(m.at(r, c)) < 1e-12,
                               "matrix entry off the diagonal stride");
            }
        }
    }

    // Pre-rotated diagonals w_{j,i}[s] = diag_D[(s - G) mod n] with
    // D = (j*bs + i) * stride and G = j*bs*stride.
    nonzero_.assign(bs_ * gs_, false);
    for (size_t j = 0; j < gs_; ++j) {
        const size_t g_amt = j * bs_ * stride_;
        for (size_t i = 0; i < bs_; ++i) {
            const size_t u = j * bs_ + i;
            std::vector<Complex> w(n_, Complex(0, 0));
            double mag = 0;
            if (u < n_u) {
                const size_t d = u * stride_;
                for (size_t s = 0; s < n_; ++s) {
                    size_t t = (s + n_ - g_amt) % n_;
                    Complex v = m.at(t, (t + d) % n_);
                    w[s] = v;
                    mag = std::max(mag, std::abs(v));
                }
            }
            nonzero_[j * bs_ + i] = mag > 1e-12;
            // Insert a placeholder even for zero diagonals to keep
            // indices aligned (zero diagonals are never fetched).
            store_.insert(encoder.encode(w, ctx_.maxLevel(), scale_));
        }
    }
}

Ciphertext
LinearTransform::apply(const CkksEvaluator &eval, const Ciphertext &ct,
                       KeySchedule sched, KeyCache &keys,
                       LtStats *stats) const
{
    ARK_ASSERT(ct.slots == n_, "slot count mismatch");
    switch (sched) {
      case KeySchedule::Baseline:
        return applyBaseline(eval, ct, keys, stats);
      case KeySchedule::MinKS:
        return applyIterative(eval, ct, sched, keys, stats);
      case KeySchedule::MinimalKS:
        // The Halevi-Shoup intermediate schedule differs from Min-KS
        // only in the pre-rotation bookkeeping of the chained H-IDFT;
        // its functional behaviour here is identical, and its evk
        // accounting is handled by the analytical model in src/core.
        return applyIterative(eval, ct, sched, keys, stats);
    }
    ARK_PANIC("unreachable");
}

Ciphertext
LinearTransform::applyBaseline(const CkksEvaluator &eval,
                               const Ciphertext &ct, KeyCache &keys,
                               LtStats *stats) const
{
    const int level = ct.level();
    std::set<i64> evk_amounts;

    // Hoisted baby rotations (Halevi-Shoup hoisting is part of the
    // baseline algorithm per paper Section III-B).
    std::vector<i64> baby_amounts;
    std::vector<const EvalKey *> baby_keys;
    for (size_t i = 1; i < bs_; ++i) {
        i64 amt = static_cast<i64>(i * stride_);
        baby_amounts.push_back(amt);
        baby_keys.push_back(&keys.rotation(amt));
        evk_amounts.insert(amt);
    }
    auto rotated = eval.rotateHoisted(ct, baby_amounts, baby_keys);

    size_t n_rot = baby_amounts.size();
    size_t n_pmult = 0;

    Ciphertext out;
    bool out_set = false;
    for (size_t j = 0; j < gs_; ++j) {
        Ciphertext inner;
        bool inner_set = false;
        for (size_t i = 0; i < bs_; ++i) {
            if (!nonzero_[j * bs_ + i])
                continue;
            const Ciphertext &src = i == 0 ? ct : rotated[i - 1];
            auto pt = store_.get(j * bs_ + i, level);
            auto term = eval.mulPlain(src, pt);
            ++n_pmult;
            inner = inner_set ? eval.add(inner, term) : std::move(term);
            inner_set = true;
        }
        if (!inner_set)
            continue;
        if (j > 0) {
            i64 g_amt = static_cast<i64>(j * bs_ * stride_);
            inner = eval.rotate(inner, g_amt, keys.rotation(g_amt));
            ++n_rot;
            evk_amounts.insert(g_amt);
        }
        out = out_set ? eval.add(out, inner) : std::move(inner);
        out_set = true;
    }
    ARK_ASSERT(out_set, "transform had no nonzero diagonal");

    if (stats) {
        stats->rotations += n_rot;
        stats->pmults += n_pmult;
        stats->distinct_evks += evk_amounts.size();
    }
    return eval.rescale(out);
}

Ciphertext
LinearTransform::applyIterative(const CkksEvaluator &eval,
                                const Ciphertext &ct, KeySchedule sched,
                                KeyCache &keys, LtStats *stats) const
{
    (void)sched;
    const int level = ct.level();
    const i64 baby_amt = static_cast<i64>(stride_);
    const i64 giant_amt = static_cast<i64>(bs_ * stride_);
    const EvalKey &evk_baby = keys.rotation(baby_amt);
    const EvalKey &evk_giant = keys.rotation(giant_amt);

    size_t n_rot = 0, n_pmult = 0;

    // Baby steps: iterate with the single stride key (Fig. 1(c), left).
    std::vector<Ciphertext> babies;
    babies.reserve(bs_);
    babies.push_back(ct);
    for (size_t i = 1; i < bs_; ++i) {
        babies.push_back(eval.rotate(babies.back(), baby_amt, evk_baby));
        ++n_rot;
    }

    std::vector<Ciphertext> inner(gs_);
    std::vector<bool> inner_set(gs_, false);
    for (size_t j = 0; j < gs_; ++j) {
        for (size_t i = 0; i < bs_; ++i) {
            if (!nonzero_[j * bs_ + i])
                continue;
            auto pt = store_.get(j * bs_ + i, level);
            auto term = eval.mulPlain(babies[i], pt);
            ++n_pmult;
            inner[j] = inner_set[j] ? eval.add(inner[j], term)
                                    : std::move(term);
            inner_set[j] = true;
        }
    }

    // Giant steps: accumulate from the top so every rotation uses the
    // single giant key:
    //   out = inner_0 + rot_G(inner_1 + rot_G(inner_2 + ...)).
    Ciphertext acc;
    bool acc_set = false;
    for (size_t j = gs_; j-- > 0;) {
        if (acc_set) {
            acc = eval.rotate(acc, giant_amt, evk_giant);
            ++n_rot;
        }
        if (inner_set[j]) {
            acc = acc_set ? eval.add(acc, inner[j])
                          : std::move(inner[j]);
            acc_set = true;
        }
    }
    ARK_ASSERT(acc_set, "transform had no nonzero diagonal");

    if (stats) {
        stats->rotations += n_rot;
        stats->pmults += n_pmult;
        stats->distinct_evks += 2; // the Min-KS guarantee
    }
    return eval.rescale(acc);
}

} // namespace ark
