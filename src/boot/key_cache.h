/**
 * @file
 * Lazy rotation-key cache with usage accounting.
 *
 * Bootstrapping needs rotation keys for many amounts; which amounts —
 * and how many *distinct* keys — depends on the key schedule. The
 * whole point of Min-KS (paper Section IV-A) is to shrink that set, so
 * the cache records every distinct evk requested; tests and the
 * traffic analyzer read the count back.
 */

#pragma once

#include <algorithm>
#include <map>
#include <mutex>
#include <vector>

#include "ckks/keygen.h"

namespace ark {

/**
 * Generates and caches evks keyed by Galois element.
 *
 * Thread-safe: a mutex serializes generation and cache lookup, so
 * concurrent serving workers may share one cache. Returned references
 * stay valid for the cache's lifetime (std::map nodes are stable).
 * Generation draws from the keygen's Rng, so the *values* of lazily
 * generated keys depend on request interleaving — callers that need
 * deterministic key material (the serving parity tests, the
 * BatchServer) call warm() up front: it generates the mult key and
 * the requested rotation keys in a canonical order, so any two caches
 * warmed with the same amount *set* — regardless of the order or
 * duplication the caller collected it in — hold bit-identical keys.
 */
class KeyCache
{
  public:
    KeyCache(KeyGenerator &keygen, const SecretKey &sk, size_t degree)
        : keygen_(keygen), sk_(sk), degree_(degree)
    {
    }

    /** Rotation key for amount r (generated on first use). */
    const EvalKey &rotation(i64 r)
    {
        return byElt(galoisElt(r, degree_));
    }

    /**
     * Deterministically pre-generate the mult key plus the rotation
     * keys for @p amounts. Amounts are sorted and deduplicated first,
     * so generation order — and hence every key's value — depends
     * only on the set, not on how the caller gathered it. Call while
     * single-threaded (setup phase) for reproducible material; safe,
     * but order-sensitive again, if keys were already generated
     * elsewhere.
     */
    void warm(std::vector<i64> amounts)
    {
        std::sort(amounts.begin(), amounts.end());
        amounts.erase(std::unique(amounts.begin(), amounts.end()),
                      amounts.end());
        (void)multiplication();
        for (i64 r : amounts)
            (void)rotation(r);
    }

    const EvalKey &conjugation()
    {
        return byElt(galoisEltConjugate(degree_));
    }

    const EvalKey &multiplication()
    {
        std::lock_guard<std::mutex> lk(m_);
        if (!mult_) {
            mult_ = std::make_unique<EvalKey>(keygen_.evkMult(sk_));
        }
        return *mult_;
    }

    /** Number of distinct rotation/conjugation evks materialized. */
    size_t distinctGaloisKeys() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return keys_.size();
    }

    /** Total bytes of cached evk material (the Min-KS working set). */
    size_t byteSize() const
    {
        std::lock_guard<std::mutex> lk(m_);
        size_t total = mult_ ? mult_->byteSize() : 0;
        for (const auto &[elt, key] : keys_)
            total += key.byteSize();
        return total;
    }

  private:
    const EvalKey &byElt(u64 galois_elt)
    {
        // The lock is held across generation: the keygen's Rng is
        // shared state, and a miss is a rare, setup-phase event.
        std::lock_guard<std::mutex> lk(m_);
        auto it = keys_.find(galois_elt);
        if (it == keys_.end()) {
            it = keys_.emplace(galois_elt,
                               keygen_.evkGalois(sk_, galois_elt))
                     .first;
        }
        return it->second;
    }

    KeyGenerator &keygen_;
    const SecretKey &sk_;
    size_t degree_;
    mutable std::mutex m_;
    std::map<u64, EvalKey> keys_;
    std::unique_ptr<EvalKey> mult_;
};

} // namespace ark
