/**
 * @file
 * Lazy rotation-key cache with usage accounting.
 *
 * Bootstrapping needs rotation keys for many amounts; which amounts —
 * and how many *distinct* keys — depends on the key schedule. The
 * whole point of Min-KS (paper Section IV-A) is to shrink that set, so
 * the cache records every distinct evk requested; tests and the
 * traffic analyzer read the count back.
 *
 * Two modes share the class:
 *
 *  - **Generating** (the classic mode): constructed with a
 *    KeyGenerator + SecretKey, misses are generated on first use.
 *  - **Uploaded** (the serving front-end's per-tenant mode):
 *    constructed with only the ring degree; keys arrive via insert*()
 *    — deserialized from EVAL_KEY wire frames
 *    (docs/wire_format.md §5.7) — and a lookup miss throws
 *    MissingKeyError instead of generating, because the cache holds
 *    no secret to generate from. The WireServer maps that error to
 *    the MISSING_KEY wire code.
 */

#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "ckks/keygen.h"
#include "obs/metrics.h"

namespace ark {

/** Thrown by an uploaded-mode KeyCache when a requested evk was never
 *  uploaded (wire error code MISSING_KEY, docs/wire_format.md §7). */
class MissingKeyError : public std::runtime_error
{
  public:
    explicit MissingKeyError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * Generates and caches evks keyed by Galois element.
 *
 * Thread-safe: a mutex serializes generation and cache lookup, so
 * concurrent serving workers may share one cache. Returned references
 * stay valid for the cache's lifetime (std::map nodes are stable).
 * Generation draws from the keygen's Rng, so the *values* of lazily
 * generated keys depend on request interleaving — callers that need
 * deterministic key material (the serving parity tests, the
 * BatchServer) call warm() up front: it generates the mult key and
 * the requested rotation keys in a canonical order, so any two caches
 * warmed with the same amount *set* — regardless of the order or
 * duplication the caller collected it in — hold bit-identical keys.
 */
class KeyCache
{
  public:
    /** Generating mode: misses are filled from @p keygen. */
    KeyCache(KeyGenerator &keygen, const SecretKey &sk, size_t degree)
        : keygen_(&keygen), sk_(&sk), degree_(degree)
    {
    }

    /** Uploaded mode: keys arrive via insert*(); misses throw
     *  MissingKeyError. Used per tenant by the network front-end. */
    explicit KeyCache(size_t degree) : degree_(degree) {}

    /**
     * Per-thread lookup tallies, accumulated across every KeyCache
     * the calling thread touches. The serving workers snapshot the
     * delta around each request execution to attribute evk misses to
     * their own shard (the rebalancer's second congestion signal,
     * shard/serve_shard.h) — thread-local, so attribution is exact
     * and the hot path stays contention-free. The process-wide
     * obs::EvkHit/EvkMiss counters are unchanged.
     */
    struct ThreadStats
    {
        u64 hits = 0;
        u64 misses = 0;
    };
    static ThreadStats &threadStats()
    {
        static thread_local ThreadStats stats;
        return stats;
    }

    /** Rotation key for amount r (generated on first use). */
    const EvalKey &rotation(i64 r)
    {
        return byElt(galoisElt(r, degree_));
    }

    /**
     * Deterministically pre-generate the mult key plus the rotation
     * keys for @p amounts. Amounts are sorted and deduplicated first,
     * so generation order — and hence every key's value — depends
     * only on the set, not on how the caller gathered it. Call while
     * single-threaded (setup phase) for reproducible material; safe,
     * but order-sensitive again, if keys were already generated
     * elsewhere. Generating mode only.
     */
    void warm(std::vector<i64> amounts)
    {
        std::sort(amounts.begin(), amounts.end());
        amounts.erase(std::unique(amounts.begin(), amounts.end()),
                      amounts.end());
        (void)multiplication();
        for (i64 r : amounts)
            (void)rotation(r);
    }

    const EvalKey &conjugation()
    {
        return byElt(galoisEltConjugate(degree_));
    }

    const EvalKey &multiplication()
    {
        std::lock_guard<std::mutex> lk(m_);
        if (!mult_) {
            obs::count(obs::Counter::EvkMiss);
            threadStats().misses += 1;
            if (keygen_ == nullptr)
                throw MissingKeyError(
                    "no multiplication evk uploaded");
            mult_ = std::make_unique<EvalKey>(keygen_->evkMult(*sk_));
        } else {
            obs::count(obs::Counter::EvkHit);
            threadStats().hits += 1;
        }
        return *mult_;
    }

    /** Store an uploaded rotation/conjugation evk under its Galois
     *  element (replacing any previous upload for that element). */
    void insertGalois(u64 galois_elt, EvalKey key)
    {
        std::lock_guard<std::mutex> lk(m_);
        keys_[galois_elt] = std::move(key);
    }

    /** Store an uploaded rotation evk by rotation amount. */
    void insertRotation(i64 r, EvalKey key)
    {
        insertGalois(galoisElt(r, degree_), std::move(key));
    }

    /** Store an uploaded multiplication evk. */
    void insertMultiplication(EvalKey key)
    {
        std::lock_guard<std::mutex> lk(m_);
        mult_ = std::make_unique<EvalKey>(std::move(key));
    }

    /** Number of distinct rotation/conjugation evks materialized. */
    size_t distinctGaloisKeys() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return keys_.size();
    }

    /** Total bytes of cached evk material (the Min-KS working set;
     *  for an uploaded-mode cache, the tenant's resident key
     *  footprint the serving benches report). */
    size_t byteSize() const
    {
        std::lock_guard<std::mutex> lk(m_);
        size_t total = mult_ ? mult_->byteSize() : 0;
        for (const auto &[elt, key] : keys_)
            total += key.byteSize();
        return total;
    }

  private:
    const EvalKey &byElt(u64 galois_elt)
    {
        // The lock is held across generation: the keygen's Rng is
        // shared state, and a miss is a rare, setup-phase event.
        std::lock_guard<std::mutex> lk(m_);
        auto it = keys_.find(galois_elt);
        if (it == keys_.end()) {
            obs::count(obs::Counter::EvkMiss);
            threadStats().misses += 1;
            if (keygen_ == nullptr)
                throw MissingKeyError(
                    "no evk uploaded for galois element " +
                    std::to_string(galois_elt));
            it = keys_.emplace(galois_elt,
                               keygen_->evkGalois(*sk_, galois_elt))
                     .first;
        } else {
            obs::count(obs::Counter::EvkHit);
            threadStats().hits += 1;
        }
        return it->second;
    }

    KeyGenerator *keygen_ = nullptr;
    const SecretKey *sk_ = nullptr;
    size_t degree_ = 0;
    mutable std::mutex m_;
    std::map<u64, EvalKey> keys_;
    std::unique_ptr<EvalKey> mult_;
};

} // namespace ark
