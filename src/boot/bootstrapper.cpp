#include "boot/bootstrapper.h"

#include "common/logging.h"
#include "common/math_util.h"

namespace ark {

Bootstrapper::Bootstrapper(const CkksContext &ctx,
                           const CkksEncoder &encoder, BootConfig cfg)
    : ctx_(ctx), encoder_(encoder), cfg_(cfg),
      slots_(ctx.params().num_slots)
{
    const size_t half = ctx_.degree() / 2;
    ARK_ASSERT(slots_ <= half / 2,
               "sparse bootstrapping requires n <= N/4");
    const size_t gap = half / slots_;

    // Build W numerically: column i of W is the slot vector of the
    // monomial with complexified coefficient e_{gap*i}; computing it
    // through the encoder's own FFT keeps the matrices consistent with
    // the encoding convention by construction.
    SlotMatrix w;
    w.n = slots_;
    w.data.assign(slots_ * slots_, Complex(0, 0));
    for (size_t i = 0; i < slots_; ++i) {
        std::vector<Complex> vals(half, Complex(0, 0));
        vals[gap * i] = Complex(1, 0);
        encoder_.fftSpecial(vals);
        for (size_t j = 0; j < slots_; ++j)
            w.at(j, i) = vals[j];
    }

    SlotMatrix w_inv = w.inverse();
    // CoeffToSlot evaluates W^-1 / 2 (the 1/2 pre-pays the conjugate
    // split u = t' + conj(t')); SlotToCoeff evaluates W * (2n/N) to
    // undo the SubSum replication factor.
    for (auto &v : w_inv.data)
        v *= 0.5;
    const double subsum_factor =
        2.0 * static_cast<double>(slots_) /
        static_cast<double>(ctx_.degree());
    SlotMatrix w_fwd = w;
    for (auto &v : w_fwd.data)
        v *= subsum_factor;

    coeff_to_slot_ = std::make_unique<LinearTransform>(
        ctx_, encoder_, w_inv, 1, cfg_.pt_mode);
    slot_to_coeff_ = std::make_unique<LinearTransform>(
        ctx_, encoder_, w_fwd, 1, cfg_.pt_mode);
}

int
Bootstrapper::outputLevel() const
{
    return ctx_.maxLevel() - bootLevels();
}

Ciphertext
Bootstrapper::bootstrap(const CkksEvaluator &eval, const Ciphertext &ct,
                        KeyCache &keys, BootStats *stats) const
{
    ARK_ASSERT(ct.level() == 0, "bootstrap expects a level-0 ciphertext");
    ARK_ASSERT(ct.slots == slots_, "slot count mismatch");
    const u64 q0 = ctx_.qModuli()[0].value();
    const double delta0 = ct.scale;

    // --- LevelRecover: ModRaise + SubSum -------------------------------
    Ciphertext raised = eval.modRaise(ct);

    // SubSum folds the plaintext onto the sparse (period-n) subspace:
    // summing rotations by n, 2n, 4n, ... N/4 multiplies the replicated
    // message by N/(2n) and projects the q0*I term.
    const size_t half = ctx_.degree() / 2;
    size_t sub_rot = 0;
    for (size_t amt = slots_; amt < half; amt <<= 1) {
        auto rot = eval.rotate(raised, static_cast<i64>(amt),
                               keys.rotation(static_cast<i64>(amt)));
        raised = eval.add(raised, rot);
        ++sub_rot;
    }
    if (stats)
        stats->subsum_rotations = sub_rot;

    // --- Homomorphic IDFT (CoeffToSlot) --------------------------------
    Ciphertext t_half = coeff_to_slot_->apply(
        eval, raised, cfg_.schedule, keys,
        stats ? &stats->hidft : nullptr);

    // Conjugate split: u = t' + conj(t'), v = i*(conj(t') - t').
    Ciphertext t_conj = eval.conjugate(t_half, keys.conjugation());
    Ciphertext u = eval.add(t_half, t_conj);
    Ciphertext v = eval.mulByI(eval.sub(t_conj, t_half));

    // --- EvalMod on the real and imaginary coefficient parts -----------
    // The q0/Delta0 message ratio rides in the sine's angle constant;
    // every EvalMod intermediate stays at scale ~Delta. The ratio also
    // bounds the precision amplification of the final relabel, so
    // bootstrap inputs should be encoded with Delta0 close to q0
    // (q0/Delta0 = 2^8 in the test parameters).
    const double ratio_inv = delta0 / static_cast<double>(q0);
    const EvalKey &evk_mult = keys.multiplication();
    Ciphertext mu = evalMod(eval, u, evk_mult, cfg_.evalmod, ratio_inv);
    Ciphertext mv = evalMod(eval, v, evk_mult, cfg_.evalmod, ratio_inv);
    if (stats) {
        // Per evalMod: basis (5) + per-group products (2) + 2 per
        // double-angle iteration.
        stats->evalmod_mults =
            2 * (7 + 2 * static_cast<size_t>(cfg_.evalmod.log_double_angle));
    }

    // EvalMod returned values on the /q0 scale; relabel to /Delta0.
    mu.scale *= ratio_inv;
    mv.scale *= ratio_inv;

    // Recombine t = u + i*v.
    Ciphertext t = eval.add(mu, eval.mulByI(mv));

    // --- Homomorphic DFT (SlotToCoeff) ----------------------------------
    Ciphertext out = slot_to_coeff_->apply(
        eval, t, cfg_.schedule, keys, stats ? &stats->hdft : nullptr);
    out.slots = slots_;
    return out;
}

} // namespace ark
