/**
 * @file
 * EvalMod: homomorphic approximate modular reduction (paper Sec. II-D).
 *
 * After ModRaise the slot values are x = Pm/q0 + I with I a bounded
 * integer; EvalMod recovers the fractional part via the scaled-sine
 * approximation  x mod 1 ~= sin(2*pi*x) / (2*pi).
 *
 * The sine is evaluated as: (1) scale the angle down by 2^r, (2)
 * evaluate Taylor series of sin and cos on the small range with a BSGS
 * power basis, (3) apply r double-angle iterations
 * (sin 2a = 2 sin a cos a, cos 2a = 1 - 2 sin^2 a). Each doubling
 * consumes one multiplicative level, exactly the EvalMod structure
 * whose HMult/CMult chain the paper's bootstrap level budget (L_boot)
 * accounts for.
 *
 * All scalar linear combinations use scale-compensated constants (the
 * multiplier is c * target_scale / operand_scale), so heterogeneous
 * true scales never meet in an addition.
 */

#pragma once

#include "boot/key_cache.h"
#include "ckks/evaluator.h"

namespace ark {

/** Tuning knobs for the sine approximation. */
struct EvalModConfig
{
    int taylor_degree = 15; ///< degree of the sin/cos Taylor expansion
    int log_double_angle = 6; ///< r: number of angle-doubling steps
};

/** Levels consumed by one EvalMod evaluation. */
int evalModDepth(const EvalModConfig &cfg, double arg_factor = 1.0);

/**
 * Scale-compensated linear combination: returns sum_i coeffs[i]*cts[i]
 * at scale exactly @p target_scale (no rescale applied). Inputs must
 * share a level; zero coefficients are skipped.
 */
Ciphertext linearCombination(const CkksEvaluator &eval,
                             const std::vector<const Ciphertext *> &cts,
                             const std::vector<double> &coeffs,
                             double target_scale);

/**
 * Evaluate f(x) = sin(2*pi*x*arg_factor)/(2*pi) on the slot values of
 * @p ct. The 1/(2*pi) is folded into the output scale (a free
 * relabel). @p arg_factor carries the Delta0/q0 message ratio during
 * bootstrapping; when the combined angle constant is small, it is
 * split over two scalar multiplications (one extra level) to preserve
 * multiplier resolution.
 */
Ciphertext evalMod(const CkksEvaluator &eval, const Ciphertext &ct,
                   const EvalKey &evk_mult, const EvalModConfig &cfg,
                   double arg_factor = 1.0);

/** Extra level consumed when the angle constant must be split. */
bool evalModSplitsAngle(const EvalModConfig &cfg, double arg_factor);

} // namespace ark
