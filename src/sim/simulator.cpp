#include "sim/simulator.h"

#include <list>
#include <map>

#include "common/logging.h"
#include "common/stats_util.h"
#include "core/hdft_plan.h"

namespace ark {

namespace {

/**
 * Streamed-pipeline efficiency: FU chains overlap but not perfectly
 * (RF hazards, stage ramp-up, scheduling bubbles). Calibrated against
 * the paper's bootstrapping latency on the base configuration.
 */
constexpr double kPipelineEff = 0.40;

/** Working-set polynomials alive during a key switch (hoisted digits,
 *  BSGS babies, accumulators). Sets the scratchpad pressure. */
constexpr double kWorkingPolys = 12.0;

double
workingSetBytes(const CkksParams &p, int level)
{
    return kWorkingPolys * (level + 1 + p.alpha()) *
           static_cast<double>(p.degree) * p.word_bytes;
}

} // namespace

ArkSimulator::OpCycles
ArkSimulator::opCycles(const SimOp &op, const CkksParams &p,
                       const CostModel &cost) const
{
    const double n = static_cast<double>(p.degree);
    const int lv = op.level;
    const size_t limbs = static_cast<size_t>(lv) + 1;
    const double lane_words =
        static_cast<double>(machine_.clusters * machine_.lanes);
    const double noc_bytes_per_cycle =
        machine_.noc_gb_per_s / machine_.freq_ghz; // GB/s at GHz = B/cyc

    OpCycles oc;
    switch (op.kind) {
      case SimOpKind::KeySwitch: {
        OpCost c = cost.keySwitch(lv);
        oc.ntt = c.ntt / machine_.nttMults();
        oc.bconv = c.bconv / machine_.bconvMults();
        oc.mad = (c.evk_mult + c.other) / machine_.madMults();
        oc.autou = limbs * n / lane_words; // rotation permutation pass
        const int a = p.alpha();
        const int digits = (lv + a) / a;
        double noc_words;
        if (machine_.dist == DataDist::Alternating) {
            // (dnum + 2) distribution switches per key switch.
            noc_words = (digits + 2.0) * (limbs + a) * n;
        } else {
            // Limb-wise only: redistribution for the accumulation,
            // 2 * dnum * (alpha + l + 1) * N words when dnum > 2.
            noc_words = 2.0 * std::max(digits, 2) * (limbs + a) * n;
        }
        oc.noc = noc_words * p.word_bytes / noc_bytes_per_cycle;
        break;
      }
      case SimOpKind::PMult: {
        const bool of = algo_.of_limb && op.of_limb_eligible;
        OpCost c = cost.pmult(lv, of);
        oc.ntt = c.ntt / machine_.nttMults();
        oc.mad = c.other / machine_.madMults();
        oc.hbm_bytes = static_cast<double>(
            HdftPlan::plaintextBytes(p, lv, of));
        break;
      }
      case SimOpKind::Elementwise:
        oc.mad = 2.0 * limbs * n / machine_.madMults();
        break;
      case SimOpKind::Rescale: {
        OpCost c = cost.rescale(lv);
        oc.ntt = c.ntt / machine_.nttMults();
        oc.mad = c.other / machine_.madMults();
        break;
      }
      case SimOpKind::ModRaise: {
        const int L = p.max_level;
        oc.ntt = 2.0 * (L + 2) * cost.nttLimb() / machine_.nttMults();
        oc.mad = 2.0 * (L + 1) * n / machine_.madMults();
        break;
      }
    }

    double crit = std::max({oc.ntt, oc.bconv, oc.autou, oc.mad});
    if (machine_.dist == DataDist::Alternating) {
        oc.duration = std::max(crit / kPipelineEff, oc.noc);
    } else {
        // The on-transit-adder NoC cannot overlap the accumulation
        // redistribution with the FU pipeline.
        oc.duration = crit / kPipelineEff + oc.noc;
    }
    return oc;
}

SimResult
ArkSimulator::run(const SimProgram &prog) const
{
    const CkksParams &p = prog.params;
    CostModel cost(p);
    const double spad_bytes = machine_.scratchpad_mib * 1024.0 * 1024.0;
    const double hbm_bytes_per_cycle =
        machine_.hbm_gb_per_s / machine_.freq_ghz;
    const double full_evk_bytes =
        static_cast<double>(HdftPlan::evkBytes(p, p.max_level));

    // LRU evk cache: capacity is what the working set leaves free.
    double evk_capacity =
        std::max(0.0, spad_bytes - workingSetBytes(p, p.max_level));
    std::list<int> lru; // front = most recent
    std::map<int, std::list<int>::iterator> where;
    double cached_bytes = 0;

    SimResult r;
    double compute_free = 0, hbm_free = 0;

    for (const auto &op : prog.ops) {
        OpCycles oc = opCycles(op, p, cost);
        double load_bytes = oc.hbm_bytes;

        if (op.kind == SimOpKind::KeySwitch && op.evk_id >= 0) {
            auto it = where.find(op.evk_id);
            if (it != where.end()) {
                lru.splice(lru.begin(), lru, it->second); // refresh
                r.evk_hits += 1;
            } else {
                r.evk_misses += 1;
                load_bytes +=
                    static_cast<double>(HdftPlan::evkBytes(p, op.level));
                while (cached_bytes + full_evk_bytes > evk_capacity &&
                       !lru.empty()) {
                    where.erase(lru.back());
                    lru.pop_back();
                    cached_bytes -= full_evk_bytes;
                }
                if (full_evk_bytes <= evk_capacity) {
                    lru.push_front(op.evk_id);
                    where[op.evk_id] = lru.begin();
                    cached_bytes += full_evk_bytes;
                }
            }
            // Scratchpad spill: when the working set plus the active
            // key exceed capacity, the overflow streams to HBM.
            double need = workingSetBytes(p, op.level) +
                          HdftPlan::evkBytes(p, op.level);
            if (need > spad_bytes)
                load_bytes += need - spad_bytes;
        }

        // Software prefetch: the stream for this op starts as soon as
        // HBM frees up, independent of compute progress.
        double load_done = hbm_free + load_bytes / hbm_bytes_per_cycle;
        hbm_free = load_done;
        r.busy_hbm += load_bytes / hbm_bytes_per_cycle;
        r.hbm_bytes += load_bytes;

        double start = std::max(compute_free, load_done - oc.duration);
        start = std::max(start, load_done - oc.duration);
        // Compute cannot start before its operands finish streaming
        // minus the part of the op that overlaps the tail of the load;
        // conservatively: start when both the pipe is free and the
        // load completes.
        start = std::max(compute_free, load_done);
        if (load_bytes == 0)
            start = compute_free;
        compute_free = start + oc.duration;

        r.busy_ntt += oc.ntt;
        r.busy_bconv += oc.bconv;
        r.busy_auto += oc.autou;
        r.busy_mad += oc.mad;
        r.busy_noc += oc.noc;
        r.noc_bytes += oc.noc;
    }

    r.cycles = std::max(compute_free, hbm_free);
    r.seconds = r.cycles / (machine_.freq_ghz * 1e9);

    r.util.ntt = std::min(1.0, r.busy_ntt / r.cycles);
    r.util.bconv = std::min(1.0, r.busy_bconv / r.cycles);
    r.util.autou = std::min(1.0, r.busy_auto / r.cycles);
    r.util.madu = std::min(1.0, r.busy_mad / r.cycles);
    r.util.hbm = std::min(1.0, r.busy_hbm / r.cycles);
    r.util.noc = std::min(1.0, r.busy_noc / r.cycles);
    double compute_util =
        std::max({r.util.ntt, r.util.bconv, r.util.madu});
    r.util.rf = compute_util;
    r.util.sram = 0.5 * compute_util + 0.5 * r.util.hbm;
    r.avg_power_w = averagePower(machine_, r.util);
    return r;
}

BatchSimResult
ArkSimulator::runBatch(const std::vector<const SimProgram *> &progs) const
{
    BatchSimResult b;
    b.requests = progs.size();
    if (progs.empty())
        return b;

    // FCFS completion times: request i finishes at the prefix sum of
    // service times (its latency, since the batch arrives at t = 0).
    // Batches repeat a few distinct programs many times, so memoize
    // the (deterministic) per-program simulation.
    std::map<const SimProgram *, SimResult> memo;
    std::vector<double> completion;
    completion.reserve(progs.size());
    double clock = 0, energy_j = 0;
    for (const SimProgram *prog : progs) {
        ARK_ASSERT(prog != nullptr, "null program in batch");
        auto it = memo.find(prog);
        if (it == memo.end())
            it = memo.emplace(prog, run(*prog)).first;
        const SimResult &r = it->second;
        clock += r.seconds;
        completion.push_back(clock);
        b.hbm_bytes += r.hbm_bytes;
        energy_j += r.avg_power_w * r.seconds;
    }
    b.seconds = clock;
    b.requests_per_sec =
        b.seconds > 0
            ? static_cast<double>(progs.size()) / b.seconds
            : 0;
    b.avg_power_w = b.seconds > 0 ? energy_j / b.seconds : 0;

    // completion is already ascending (prefix sums of service times).
    b.p50_latency = nearestRankPercentile(completion, 0.50);
    b.p99_latency = nearestRankPercentile(completion, 0.99);
    b.max_latency = completion.back();
    return b;
}

SimResult
ArkSimulator::runMeasured(const KernelStats &st,
                          const CkksParams &p) const
{
    const double wb = static_cast<double>(p.word_bytes);
    const double lane_words =
        static_cast<double>(machine_.clusters * machine_.lanes);
    const double hbm_bytes_per_cycle =
        machine_.hbm_gb_per_s / machine_.freq_ghz;

    SimResult r;
    // FU occupancy from the measured per-kernel mult counts. The
    // fused ntt_bconv_ntt path already credits its component counters,
    // so summing the plain counters covers it exactly once.
    const double ntt_mults = static_cast<double>(
        st.at(KernelOp::NttForward).mults +
        st.at(KernelOp::NttInverse).mults);
    const double bconv_mults =
        static_cast<double>(st.at(KernelOp::BConv).mults);
    double mad_mults = 0;
    for (KernelOp op : {KernelOp::MulEval, KernelOp::MulAccEval,
                        KernelOp::MulScalar, KernelOp::SubMulScalar,
                        KernelOp::EvkMulAcc})
        mad_mults += static_cast<double>(st.at(op).mults);
    // Permutations occupy the AutoU lanes one word per lane-cycle.
    const double auto_words = static_cast<double>(
        st.at(KernelOp::Automorphism).words / 2);

    r.busy_ntt = ntt_mults / machine_.nttMults();
    r.busy_bconv = bconv_mults / machine_.bconvMults();
    r.busy_mad = mad_mults / machine_.madMults();
    r.busy_auto = auto_words / lane_words;

    // Off-chip traffic: the measured single-use operand streams.
    r.hbm_bytes =
        static_cast<double>(st.evk_words + st.plaintext_words) * wb;
    r.busy_hbm = r.hbm_bytes / hbm_bytes_per_cycle;

    const double crit =
        std::max({r.busy_ntt, r.busy_bconv, r.busy_auto, r.busy_mad});
    r.cycles = std::max(crit / kPipelineEff, r.busy_hbm);
    r.seconds = r.cycles / (machine_.freq_ghz * 1e9);
    if (r.cycles == 0)
        return r; // nothing recorded

    r.util.ntt = std::min(1.0, r.busy_ntt / r.cycles);
    r.util.bconv = std::min(1.0, r.busy_bconv / r.cycles);
    r.util.autou = std::min(1.0, r.busy_auto / r.cycles);
    r.util.madu = std::min(1.0, r.busy_mad / r.cycles);
    r.util.hbm = std::min(1.0, r.busy_hbm / r.cycles);
    r.util.noc = 0;
    const double compute_util =
        std::max({r.util.ntt, r.util.bconv, r.util.madu});
    r.util.rf = compute_util;
    r.util.sram = 0.5 * compute_util + 0.5 * r.util.hbm;
    r.avg_power_w = averagePower(machine_, r.util);
    return r;
}

} // namespace ark
