#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/stats_util.h"
#include "core/hdft_plan.h"

namespace ark {

namespace {

/**
 * Streamed-pipeline efficiency: FU chains overlap but not perfectly
 * (RF hazards, stage ramp-up, scheduling bubbles). Calibrated against
 * the paper's bootstrapping latency on the base configuration.
 */
constexpr double kPipelineEff = 0.40;

/** Working-set polynomials alive during a key switch (hoisted digits,
 *  BSGS babies, accumulators). Sets the scratchpad pressure. */
constexpr double kWorkingPolys = 12.0;

double
workingSetBytes(const CkksParams &p, int level)
{
    return kWorkingPolys * (level + 1 + p.alpha()) *
           static_cast<double>(p.degree) * p.word_bytes;
}

} // namespace

ArkSimulator::OpCycles
ArkSimulator::opCycles(const SimOp &op, const CkksParams &p,
                       const CostModel &cost) const
{
    const double n = static_cast<double>(p.degree);
    const int lv = op.level;
    const size_t limbs = static_cast<size_t>(lv) + 1;
    const double lane_words =
        static_cast<double>(machine_.clusters * machine_.lanes);
    const double noc_bytes_per_cycle =
        machine_.noc_gb_per_s / machine_.freq_ghz; // GB/s at GHz = B/cyc

    OpCycles oc;
    switch (op.kind) {
      case SimOpKind::KeySwitch: {
        OpCost c = cost.keySwitch(lv);
        oc.ntt = c.ntt / machine_.nttMults();
        oc.bconv = c.bconv / machine_.bconvMults();
        oc.mad = (c.evk_mult + c.other) / machine_.madMults();
        oc.autou = limbs * n / lane_words; // rotation permutation pass
        const int a = p.alpha();
        const int digits = (lv + a) / a;
        double noc_words;
        if (machine_.dist == DataDist::Alternating) {
            // (dnum + 2) distribution switches per key switch.
            noc_words = (digits + 2.0) * (limbs + a) * n;
        } else {
            // Limb-wise only: redistribution for the accumulation,
            // 2 * dnum * (alpha + l + 1) * N words when dnum > 2.
            noc_words = 2.0 * std::max(digits, 2) * (limbs + a) * n;
        }
        oc.noc = noc_words * p.word_bytes / noc_bytes_per_cycle;
        break;
      }
      case SimOpKind::PMult: {
        const bool of = algo_.of_limb && op.of_limb_eligible;
        OpCost c = cost.pmult(lv, of);
        oc.ntt = c.ntt / machine_.nttMults();
        oc.mad = c.other / machine_.madMults();
        oc.hbm_bytes = static_cast<double>(
            HdftPlan::plaintextBytes(p, lv, of));
        break;
      }
      case SimOpKind::Elementwise:
        oc.mad = 2.0 * limbs * n / machine_.madMults();
        break;
      case SimOpKind::Rescale: {
        OpCost c = cost.rescale(lv);
        oc.ntt = c.ntt / machine_.nttMults();
        oc.mad = c.other / machine_.madMults();
        break;
      }
      case SimOpKind::ModRaise: {
        const int L = p.max_level;
        oc.ntt = 2.0 * (L + 2) * cost.nttLimb() / machine_.nttMults();
        oc.mad = 2.0 * (L + 1) * n / machine_.madMults();
        break;
      }
    }

    double crit = std::max({oc.ntt, oc.bconv, oc.autou, oc.mad});
    if (machine_.dist == DataDist::Alternating) {
        oc.duration = std::max(crit / kPipelineEff, oc.noc);
    } else {
        // The on-transit-adder NoC cannot overlap the accumulation
        // redistribution with the FU pipeline.
        oc.duration = crit / kPipelineEff + oc.noc;
    }
    return oc;
}

SimResult
ArkSimulator::run(const SimProgram &prog) const
{
    return runOrder(prog, nullptr, EvictionPolicy::LRU);
}

size_t
ArkSimulator::evkSlotCapacity(const CkksParams &p) const
{
    const double spad_bytes = machine_.scratchpad_mib * 1024.0 * 1024.0;
    const double free_bytes =
        std::max(0.0, spad_bytes - workingSetBytes(p, p.max_level));
    const double full_evk_bytes =
        static_cast<double>(HdftPlan::evkBytes(p, p.max_level));
    return static_cast<size_t>(free_bytes / full_evk_bytes);
}

SimResult
ArkSimulator::runOrder(const SimProgram &prog,
                       const std::vector<size_t> *order,
                       EvictionPolicy eviction) const
{
    const CkksParams &p = prog.params;
    CostModel cost(p);
    const size_t n_ops = prog.ops.size();
    ARK_ASSERT(order == nullptr || order->size() == n_ops,
               "schedule order must cover the whole program");
    auto opAt = [&](size_t s) -> const SimOp & {
        return prog.ops[order ? (*order)[s] : s];
    };

    const double spad_bytes = machine_.scratchpad_mib * 1024.0 * 1024.0;
    const double hbm_bytes_per_cycle =
        machine_.hbm_gb_per_s / machine_.freq_ghz;

    // Evk cache: keys are uniform full-size slots against the capacity
    // the working set leaves free. The replay itself is the SAME
    // EvkSlotCache the residency planner uses (graph/residency.h), so
    // predicted and simulated hits agree by construction.
    const size_t slots = evkSlotCapacity(p);
    EvkSlotCache cache(slots, eviction);

    // Belady needs each step's next use of the same evk, precomputed
    // over the issue order.
    std::vector<size_t> next_use;
    if (eviction == EvictionPolicy::Belady) {
        std::vector<int> evk_seq;
        evk_seq.reserve(n_ops);
        for (size_t s = 0; s < n_ops; ++s) {
            const SimOp &op = opAt(s);
            evk_seq.push_back(op.kind == SimOpKind::KeySwitch
                                  ? op.evk_id
                                  : -1);
        }
        next_use = nextUseSteps(evk_seq);
    }

    SimResult r;
    double compute_free = 0, hbm_free = 0;

    for (size_t s = 0; s < n_ops; ++s) {
        const SimOp &op = opAt(s);
        OpCycles oc = opCycles(op, p, cost);
        double load_bytes = oc.hbm_bytes;

        if (op.kind == SimOpKind::KeySwitch && op.evk_id >= 0) {
            if (cache.access(op.evk_id, s,
                             next_use.empty() ? EvkSlotCache::kNever
                                              : next_use[s])) {
                r.evk_hits += 1;
            } else {
                r.evk_misses += 1;
                const double key_bytes = static_cast<double>(
                    HdftPlan::evkBytes(p, op.level));
                load_bytes += key_bytes;
                r.evk_bytes += key_bytes;
            }
            // Scratchpad spill: when the working set plus the active
            // key exceed capacity, the overflow streams to HBM.
            double need = workingSetBytes(p, op.level) +
                          HdftPlan::evkBytes(p, op.level);
            if (need > spad_bytes)
                load_bytes += need - spad_bytes;
        }

        // Software prefetch: the stream for this op starts as soon as
        // HBM frees up, independent of compute progress.
        double load_done = hbm_free + load_bytes / hbm_bytes_per_cycle;
        hbm_free = load_done;
        r.busy_hbm += load_bytes / hbm_bytes_per_cycle;
        r.hbm_bytes += load_bytes;

        // Conservative: compute starts when both the pipe is free and
        // the op's operand stream has fully landed (no load/compute
        // overlap within one op; prefetch overlaps across ops via
        // hbm_free running ahead).
        double start = std::max(compute_free, load_done);
        if (load_bytes == 0)
            start = compute_free;
        compute_free = start + oc.duration;

        r.busy_ntt += oc.ntt;
        r.busy_bconv += oc.bconv;
        r.busy_auto += oc.autou;
        r.busy_mad += oc.mad;
        r.busy_noc += oc.noc;
        r.noc_bytes += oc.noc;
    }

    r.cycles = std::max(compute_free, hbm_free);
    r.seconds = r.cycles / (machine_.freq_ghz * 1e9);
    if (r.cycles == 0)
        return r; // empty program (e.g. an unpopulated shard)

    r.util.ntt = std::min(1.0, r.busy_ntt / r.cycles);
    r.util.bconv = std::min(1.0, r.busy_bconv / r.cycles);
    r.util.autou = std::min(1.0, r.busy_auto / r.cycles);
    r.util.madu = std::min(1.0, r.busy_mad / r.cycles);
    r.util.hbm = std::min(1.0, r.busy_hbm / r.cycles);
    r.util.noc = std::min(1.0, r.busy_noc / r.cycles);
    double compute_util =
        std::max({r.util.ntt, r.util.bconv, r.util.madu});
    r.util.rf = compute_util;
    r.util.sram = 0.5 * compute_util + 0.5 * r.util.hbm;
    r.avg_power_w = averagePower(machine_, r.util);
    return r;
}

ScheduledSimResult
ArkSimulator::runScheduled(const ScheduledProgram &sp,
                           const SimResult *source_baseline) const
{
    ScheduledSimResult out;
    // Baseline: the trace as emitted, online LRU residency — exactly
    // what run() reports. Callers comparing several policies over one
    // trace pass the baseline in to avoid re-simulating it per call.
    out.source = source_baseline
                     ? *source_baseline
                     : runOrder(sp.source, nullptr, EvictionPolicy::LRU);
    out.scheduled = runOrder(sp.source, &sp.order, sp.eviction);
    out.hbm_saved_bytes =
        out.source.hbm_bytes - out.scheduled.hbm_bytes;
    out.evk_saved_bytes =
        out.source.evk_bytes - out.scheduled.evk_bytes;
    out.speedup = out.scheduled.seconds > 0
                      ? out.source.seconds / out.scheduled.seconds
                      : 1.0;
    return out;
}

ShardedSimResult
ArkSimulator::runSharded(const ScheduledProgram &sp,
                         const ShardPlan &plan,
                         const SimResult *single_baseline) const
{
    const size_t n_ops = sp.source.ops.size();
    ARK_ASSERT(plan.shard_of_node.size() == n_ops,
               "shard plan must cover the whole program");
    ARK_ASSERT(sp.order.size() == n_ops,
               "schedule order must cover the whole program");

    ShardedSimResult out;
    out.shards = plan.shards;
    out.single = single_baseline
                     ? *single_baseline
                     : runOrder(sp.source, &sp.order, sp.eviction);

    // Each shard executes the subsequence of the schedule assigned to
    // it — the induced (filtered) issue order, so same-key runs the
    // scheduler built survive the partition intact.
    double slowest = 0;
    for (size_t s = 0; s < plan.shards; ++s) {
        SimProgram sub;
        sub.name = sp.source.name + "/shard" + std::to_string(s);
        sub.params = sp.source.params;
        for (size_t idx : sp.order) {
            if (plan.shard_of_node[idx] == s)
                sub.ops.push_back(sp.source.ops[idx]);
        }
        SimResult r = runOrder(sub, nullptr, sp.eviction);
        slowest = std::max(slowest, r.seconds);
        out.max_shard_evk_bytes =
            std::max(out.max_shard_evk_bytes, r.evk_bytes);
        out.total_evk_bytes += r.evk_bytes;
        out.per_shard.push_back(std::move(r));
    }

    // Every cut dependence edge ships the producer's ciphertext (two
    // polynomials at the producer's level) across the inter-chip
    // link — once per destination chip, however many remote consumers
    // it has (multicast). The aggregate is charged serially to the
    // makespan, a conservative stand-in for cross-chip
    // synchronization.
    const CkksParams &p = sp.source.params;
    std::set<std::pair<size_t, size_t>> shipped; // (producer, chip)
    for (const auto &[prod, cons] : plan.cut_edges) {
        if (!shipped.emplace(prod, plan.shard_of_node[cons]).second)
            continue;
        const double limbs =
            static_cast<double>(sp.source.ops[prod].level) + 1;
        out.link_bytes += 2.0 * limbs *
                          static_cast<double>(p.degree) *
                          static_cast<double>(p.word_bytes);
    }
    out.link_seconds = out.link_bytes / (machine_.link_gb_per_s * 1e9);
    out.seconds = slowest + out.link_seconds;
    out.speedup =
        out.seconds > 0 ? out.single.seconds / out.seconds : 1.0;
    return out;
}

BatchSimResult
ArkSimulator::runBatch(const std::vector<const SimProgram *> &progs) const
{
    BatchSimResult b;
    b.requests = progs.size();
    if (progs.empty())
        return b;

    // FCFS completion times: request i finishes at the prefix sum of
    // service times (its latency, since the batch arrives at t = 0).
    // Batches repeat a few distinct programs many times, so memoize
    // the (deterministic) per-program simulation.
    std::map<const SimProgram *, SimResult> memo;
    std::vector<double> completion;
    completion.reserve(progs.size());
    double clock = 0, energy_j = 0;
    for (const SimProgram *prog : progs) {
        ARK_ASSERT(prog != nullptr, "null program in batch");
        auto it = memo.find(prog);
        if (it == memo.end())
            it = memo.emplace(prog, run(*prog)).first;
        const SimResult &r = it->second;
        clock += r.seconds;
        completion.push_back(clock);
        b.hbm_bytes += r.hbm_bytes;
        energy_j += r.avg_power_w * r.seconds;
    }
    b.seconds = clock;
    b.requests_per_sec =
        b.seconds > 0
            ? static_cast<double>(progs.size()) / b.seconds
            : 0;
    b.avg_power_w = b.seconds > 0 ? energy_j / b.seconds : 0;

    // completion is already ascending (prefix sums of service times).
    b.p50_latency = nearestRankPercentile(completion, 0.50);
    b.p99_latency = nearestRankPercentile(completion, 0.99);
    b.max_latency = completion.back();
    return b;
}

SimResult
ArkSimulator::runMeasured(const KernelStats &st,
                          const CkksParams &p) const
{
    const double wb = static_cast<double>(p.word_bytes);
    const double lane_words =
        static_cast<double>(machine_.clusters * machine_.lanes);
    const double hbm_bytes_per_cycle =
        machine_.hbm_gb_per_s / machine_.freq_ghz;

    SimResult r;
    // FU occupancy from the measured per-kernel mult counts. The
    // fused ntt_bconv_ntt path already credits its component counters,
    // so summing the plain counters covers it exactly once.
    const double ntt_mults = static_cast<double>(
        st.at(KernelOp::NttForward).mults +
        st.at(KernelOp::NttInverse).mults);
    const double bconv_mults =
        static_cast<double>(st.at(KernelOp::BConv).mults);
    double mad_mults = 0;
    for (KernelOp op : {KernelOp::MulEval, KernelOp::MulAccEval,
                        KernelOp::MulScalar, KernelOp::SubMulScalar,
                        KernelOp::EvkMulAcc})
        mad_mults += static_cast<double>(st.at(op).mults);
    // Permutations occupy the AutoU lanes one word per lane-cycle.
    const double auto_words = static_cast<double>(
        st.at(KernelOp::Automorphism).words / 2);

    r.busy_ntt = ntt_mults / machine_.nttMults();
    r.busy_bconv = bconv_mults / machine_.bconvMults();
    r.busy_mad = mad_mults / machine_.madMults();
    r.busy_auto = auto_words / lane_words;

    // Off-chip traffic: the measured single-use operand streams.
    r.hbm_bytes =
        static_cast<double>(st.evk_words + st.plaintext_words) * wb;
    r.busy_hbm = r.hbm_bytes / hbm_bytes_per_cycle;

    const double crit =
        std::max({r.busy_ntt, r.busy_bconv, r.busy_auto, r.busy_mad});
    r.cycles = std::max(crit / kPipelineEff, r.busy_hbm);
    r.seconds = r.cycles / (machine_.freq_ghz * 1e9);
    if (r.cycles == 0)
        return r; // nothing recorded

    r.util.ntt = std::min(1.0, r.busy_ntt / r.cycles);
    r.util.bconv = std::min(1.0, r.busy_bconv / r.cycles);
    r.util.autou = std::min(1.0, r.busy_auto / r.cycles);
    r.util.madu = std::min(1.0, r.busy_mad / r.cycles);
    r.util.hbm = std::min(1.0, r.busy_hbm / r.cycles);
    r.util.noc = 0;
    const double compute_util =
        std::max({r.util.ntt, r.util.bconv, r.util.madu});
    r.util.rf = compute_util;
    r.util.sram = 0.5 * compute_util + 0.5 * r.util.hbm;
    r.avg_power_w = averagePower(machine_, r.util);
    return r;
}

} // namespace ark
