/**
 * @file
 * Area and power model of ARK (paper Table IV), parameterized by the
 * machine configuration.
 *
 * The paper models FUs with ASAP7 and SRAM with FinCACTI; our
 * substitute is an analytical model seeded with Table IV's
 * per-component area and peak power at the base configuration and
 * scaled with the configuration knobs (clusters, BConv MACs,
 * scratchpad capacity, HBM bandwidth). Average power weights each
 * component's peak by its utilization from the cycle simulation,
 * which reproduces the paper's 100-135 W (44% of peak gmean) range.
 */

#pragma once

#include <string>
#include <vector>

#include "sim/machine_config.h"

namespace ark {

/** Component-level area/power entry. */
struct ComponentCost
{
    std::string name;
    double area_mm2 = 0;
    double peak_w = 0;
};

/** Full chip estimate. */
struct ChipCost
{
    std::vector<ComponentCost> components;
    double totalArea() const;
    double totalPeakPower() const;
    const ComponentCost &component(const std::string &name) const;
};

/** Table IV model scaled to @p m. */
ChipCost chipCost(const MachineConfig &m);

/** Per-component utilizations (0..1), same order as chipCost(). */
struct ComponentUtil
{
    double bconv = 0, ntt = 0, autou = 0, madu = 0;
    double rf = 0, sram = 0, noc = 0, hbm = 0;
};

/** Utilization-weighted average power. */
double averagePower(const MachineConfig &m, const ComponentUtil &u);

} // namespace ark
