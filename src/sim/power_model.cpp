#include "sim/power_model.h"

#include <cmath>

#include "common/logging.h"

namespace ark {

namespace {

/** Paper Table IV values at the base configuration (4 clusters, 6
 *  MACs/BConv lane, 512 MiB scratchpad, 1 TB/s HBM). */
struct BaseEntry
{
    const char *name;
    double area;
    double peak;
};

constexpr BaseEntry kTable4[] = {
    {"BConvU", 9.3, 18.9},  {"NTTU", 57.2, 95.2},
    {"AutoU", 20.6, 4.6},   {"MADU", 8.9, 24.7},
    {"RF", 42.8, 25.1},     {"Scratchpad", 229.2, 54.0},
    {"NoC", 20.6, 27.0},    {"HBM", 29.6, 31.8},
};

} // namespace

double
ChipCost::totalArea() const
{
    double t = 0;
    for (const auto &c : components)
        t += c.area_mm2;
    return t;
}

double
ChipCost::totalPeakPower() const
{
    double t = 0;
    for (const auto &c : components)
        t += c.peak_w;
    return t;
}

const ComponentCost &
ChipCost::component(const std::string &name) const
{
    for (const auto &c : components) {
        if (c.name == name)
            return c;
    }
    ARK_PANIC("unknown chip component");
}

ChipCost
chipCost(const MachineConfig &m)
{
    const double cl = static_cast<double>(m.clusters) / 4.0;
    const double macs = static_cast<double>(m.macs_per_bconv_lane) / 6.0;
    const double spad = m.scratchpad_mib / 512.0;
    const double hbm = m.hbm_gb_per_s / 1000.0;
    // The all-to-all NoC grows superlinearly with cluster count (the
    // paper reports 2.71x NoC power for 2x clusters: exponent ~1.44).
    const double noc = std::pow(cl, 1.44);

    ChipCost chip;
    for (const auto &e : kTable4) {
        ComponentCost c;
        c.name = e.name;
        double area_scale = cl, power_scale = cl;
        if (c.name == "BConvU") {
            area_scale = cl * macs;
            power_scale = cl * macs;
        } else if (c.name == "Scratchpad") {
            area_scale = spad;
            power_scale = spad;
        } else if (c.name == "NoC") {
            area_scale = noc;
            power_scale = noc;
        } else if (c.name == "HBM") {
            area_scale = hbm;
            power_scale = hbm;
        }
        c.area_mm2 = e.area * area_scale;
        c.peak_w = e.peak * power_scale;
        chip.components.push_back(c);
    }
    return chip;
}

double
averagePower(const MachineConfig &m, const ComponentUtil &u)
{
    ChipCost chip = chipCost(m);
    const double util[] = {u.bconv, u.ntt, u.autou, u.madu,
                           u.rf,    u.sram, u.noc,  u.hbm};
    // Idle fraction: clock/leakage floor of an active component,
    // calibrated so ARK-base lands in the paper's 100-135 W band
    // (44% of peak in gmean).
    const double idle_floor = 0.18;
    double total = 0;
    for (size_t i = 0; i < chip.components.size(); ++i) {
        double a = idle_floor + (1.0 - idle_floor) * util[i];
        total += chip.components[i].peak_w * a;
    }
    return total;
}

} // namespace ark
