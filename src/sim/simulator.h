/**
 * @file
 * Cycle-level simulator of the ARK accelerator.
 *
 * Mirrors the paper's performance methodology (Section VI): HE
 * programs are statically scheduled sequences of primary-function
 * groups; the model tracks FU occupancy (NTTU / BConvU / AutoU /
 * MADU), the NoC occupancy of the limb-wise <-> coefficient-wise
 * distribution switches, HBM streaming with software prefetch, and
 * scratchpad residency of evaluation keys (LRU). Min-KS manifests as
 * evk-id reuse (scratchpad hits); OF-Limb as smaller plaintext streams
 * plus extra NTTU work.
 */

#pragma once

#include <algorithm>
#include <vector>

#include "boot/linear_transform.h" // KeySchedule
#include "core/op_cost.h"
#include "graph/schedule.h"
#include "rns/kernel_stats.h"
#include "shard/shard_plan.h"
#include "sim/machine_config.h"
#include "sim/power_model.h"
#include "sim/program.h"

namespace ark {

/** Algorithm knobs applied when simulating a program. */
struct SimAlgo
{
    KeySchedule schedule = KeySchedule::MinKS;
    bool of_limb = true;
};

/** Simulation outcome. */
struct SimResult
{
    double cycles = 0;
    double seconds = 0;
    double hbm_bytes = 0;
    /** Portion of hbm_bytes that streamed evaluation keys — the
     *  traffic the scheduler's evk clustering / residency planning
     *  attacks. */
    double evk_bytes = 0;
    double noc_bytes = 0;
    double busy_ntt = 0, busy_bconv = 0, busy_auto = 0, busy_mad = 0;
    double busy_hbm = 0, busy_noc = 0;
    double evk_hits = 0, evk_misses = 0;
    double avg_power_w = 0;
    ComponentUtil util;

    double utilization() const
    {
        return std::max({busy_ntt, busy_bconv, busy_mad}) / cycles;
    }
};

/**
 * Batched-serving outcome: one accelerator draining a queue of
 * programs FCFS (all requests arrive at t = 0, no preemption — the
 * chip is a statically scheduled monolith, so requests pipeline
 * through HBM prefetch but do not time-share FUs).
 */
struct BatchSimResult
{
    size_t requests = 0;
    double seconds = 0; ///< makespan of the whole batch
    double requests_per_sec = 0;
    double hbm_bytes = 0;
    double avg_power_w = 0;
    /** Queueing-inclusive completion-time percentiles. */
    double p50_latency = 0;
    double p99_latency = 0;
    double max_latency = 0;
};

/**
 * Outcome of replaying a `ScheduledProgram`: the same trace simulated
 * in source order (LRU residency — the pre-scheduler baseline) and in
 * schedule order under the schedule's eviction policy, plus the
 * HBM-traffic and latency deltas the schedule is worth.
 */
struct ScheduledSimResult
{
    SimResult source;
    SimResult scheduled;
    /** HBM bytes removed by the schedule (positive = improvement). */
    double hbm_saved_bytes = 0;
    /** Evk-stream bytes removed (the Min-KS-at-schedule-time win). */
    double evk_saved_bytes = 0;
    /** source.seconds / scheduled.seconds. */
    double speedup = 1.0;
};

/**
 * Outcome of replaying a `ScheduledProgram` across a `ShardPlan`'s N
 * accelerators: each shard executes its induced subsequence of the
 * schedule on its own chip (own scratchpad, own evk residency), and
 * every cut dependence edge streams the producer's ciphertext across
 * the inter-chip link. See docs/sharding.md for the model.
 */
struct ShardedSimResult
{
    size_t shards = 0;
    /** Per-chip replay of that shard's subsequence. */
    std::vector<SimResult> per_shard;
    /** Ciphertext bytes crossing inter-chip links (all cut edges). */
    double link_bytes = 0;
    /** Serialized link-transfer time charged to the makespan. */
    double link_seconds = 0;
    /** Fleet makespan: slowest shard + link transfers. */
    double seconds = 0;
    /** Largest per-shard evk HBM stream — the number that must sit
     *  strictly below the single-chip baseline for sharding to pay. */
    double max_shard_evk_bytes = 0;
    /** Sum of per-shard evk streams (never exceeds the single-chip
     *  stream: shards see filtered access streams of disjoint keys). */
    double total_evk_bytes = 0;
    /** Single-chip scheduled run of the same program (the baseline). */
    SimResult single;
    /** single.seconds / seconds. */
    double speedup = 1.0;
};

/** The machine model. */
class ArkSimulator
{
  public:
    ArkSimulator(MachineConfig machine, SimAlgo algo)
        : machine_(std::move(machine)), algo_(algo)
    {
    }

    /** Run a program to completion and report aggregate statistics. */
    SimResult run(const SimProgram &prog) const;

    /**
     * Replay a scheduled program (graph/schedule.h) and report the
     * simulated deltas vs. the source-order baseline: same op multiset
     * and machine, only issue order and evk eviction differ.
     * @param source_baseline optional precomputed run() result of the
     *        source trace on this machine — pass it when comparing
     *        several policies over one trace to avoid re-simulating
     *        the baseline per call.
     */
    ScheduledSimResult
    runScheduled(const ScheduledProgram &sp,
                 const SimResult *source_baseline = nullptr) const;

    /**
     * Replay a scheduled program partitioned by @p plan across
     * plan.shards identical chips of this machine: per-chip scratchpad
     * residency (same slot-cache model as run()), plus inter-chip link
     * cost for every cut dependence edge (MachineConfig::link_gb_per_s).
     * @param single_baseline optional precomputed single-chip run of
     *        sp (runScheduled(...).scheduled) to avoid re-simulating
     *        the baseline when sweeping shard counts.
     */
    ShardedSimResult
    runSharded(const ScheduledProgram &sp, const ShardPlan &plan,
               const SimResult *single_baseline = nullptr) const;

    /**
     * Whole evaluation keys the scratchpad can hold beside the
     * key-switch working set — the capacity the LRU/Belady residency
     * models (both here and in graph/residency.h) operate at. Can be
     * 0 at small scratchpads: every key-switch then streams its key.
     */
    size_t evkSlotCapacity(const CkksParams &p) const;

    /**
     * Serve a batch of programs FCFS on one accelerator and report
     * aggregate throughput plus queueing-inclusive latency
     * percentiles — the simulated counterpart of the host
     * BatchServer's drain report, so the two print side by side.
     */
    BatchSimResult runBatch(const std::vector<const SimProgram *> &progs) const;

    /**
     * Project *measured* kernel tallies onto the machine model: maps
     * the per-kernel modular-mult counts a KernelBackend recorded
     * while the functional library executed a workload onto FU
     * occupancy, and the measured evk/plaintext operand streams onto
     * HBM cycles — replacing the analytic per-op estimates of run()
     * with counts of what actually executed. Scratchpad residency is
     * not replayed (the measured stream already reflects every operand
     * the computation consumed), so this bounds the no-reuse case.
     */
    SimResult runMeasured(const KernelStats &stats,
                          const CkksParams &params) const;

    const MachineConfig &machine() const { return machine_; }

  private:
    /** Per-op FU busy cycles (chip-aggregate). */
    struct OpCycles
    {
        double ntt = 0, bconv = 0, autou = 0, mad = 0, noc = 0;
        double duration = 0; ///< streamed-pipeline critical path
        double hbm_bytes = 0;
    };

    OpCycles opCycles(const SimOp &op, const CkksParams &p,
                      const CostModel &cost) const;

    /**
     * Shared core of run()/runScheduled(): simulate @p prog issuing
     * ops in @p order (nullptr = source order) with @p eviction
     * driving the evk scratchpad model.
     */
    SimResult runOrder(const SimProgram &prog,
                       const std::vector<size_t> *order,
                       EvictionPolicy eviction) const;

    MachineConfig machine_;
    SimAlgo algo_;
};

} // namespace ark
