#include "sim/machine_config.h"

namespace ark {

MachineConfig
MachineConfig::arkBase()
{
    return MachineConfig{};
}

MachineConfig
MachineConfig::altDataDistribution()
{
    MachineConfig m;
    m.name = "Alt. data distribution";
    m.dist = DataDist::LimbWiseOnly;
    return m;
}

MachineConfig
MachineConfig::doubleClusters()
{
    MachineConfig m;
    m.name = "2x clusters";
    m.clusters = 8; // total scratchpad size stays 512 MiB (paper)
    return m;
}

MachineConfig
MachineConfig::doubleHbm()
{
    MachineConfig m;
    m.name = "2x HBM bandwidth";
    m.hbm_gb_per_s = 2000;
    return m;
}

MachineConfig
MachineConfig::withMacs(size_t macs) const
{
    MachineConfig m = *this;
    m.macs_per_bconv_lane = macs;
    return m;
}

MachineConfig
MachineConfig::withScratchpad(double mib) const
{
    MachineConfig m = *this;
    m.scratchpad_mib = mib;
    return m;
}

} // namespace ark
