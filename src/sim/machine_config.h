/**
 * @file
 * ARK machine configuration (paper Section V / VI) and the alternative
 * designs evaluated in Fig. 8 / Fig. 9.
 */

#pragma once

#include <cstddef>
#include <string>

namespace ark {

/** On-chip data distribution policy (paper Section V-B). */
enum class DataDist {
    Alternating,  ///< limb-wise <-> coefficient-wise around BConv
    LimbWiseOnly, ///< F1-style; needs on-transit-adder NoC (Fig. 8 alt)
};

/** Static hardware parameters of an ARK-like chip. */
struct MachineConfig
{
    std::string name = "ARK";
    size_t clusters = 4;
    size_t lanes = 256;             ///< vector lanes per cluster
    size_t macs_per_bconv_lane = 6; ///< BConvU systolic depth
    size_t madus_per_cluster = 2;
    double scratchpad_mib = 512;    ///< total on-chip scratchpad
    double hbm_gb_per_s = 1000;     ///< off-chip bandwidth (2x HBM2)
    double noc_gb_per_s = 8000;     ///< all-to-all NoC bandwidth
    /** Inter-chip link bandwidth per direction (NVLink-class), used
     *  only by the sharded fleet model (ArkSimulator::runSharded):
     *  every dependence edge cut by a ShardPlan streams the producer's
     *  ciphertext across this link. */
    double link_gb_per_s = 100;
    double freq_ghz = 1.0;
    DataDist dist = DataDist::Alternating;

    /** The paper's baseline ARK. */
    static MachineConfig arkBase();
    /** Fig. 8 variants. */
    static MachineConfig altDataDistribution();
    static MachineConfig doubleClusters();
    static MachineConfig doubleHbm();
    /** Fig. 9 sweep helpers. */
    MachineConfig withMacs(size_t macs) const;
    MachineConfig withScratchpad(double mib) const;

    /** Modular multipliers per cycle chip-wide, by FU type. */
    double nttMults() const { return clusters * lanes * 8.0; }
    double bconvMults() const
    {
        return clusters * lanes *
               static_cast<double>(macs_per_bconv_lane);
    }
    double madMults() const
    {
        return clusters * lanes * static_cast<double>(madus_per_cluster);
    }
};

} // namespace ark
