/**
 * @file
 * HE-program intermediate representation consumed by the ARK cycle
 * simulator.
 *
 * HE applications have no dynamic control flow (paper Section VI), so
 * a program is a linear sequence of primitive-HE-op descriptors. Each
 * descriptor carries the information the machine model needs: the
 * multiplicative level (sets limb counts and hence FU work), the evk
 * identity (sets off-chip traffic through scratchpad residency — the
 * lever Min-KS pulls), and plaintext operand mode (the lever OF-Limb
 * pulls).
 */

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "ckks/params.h"

namespace ark {

/** Kinds of schedulable HE ops. */
enum class SimOpKind {
    KeySwitch,   ///< HRot / HMult core (dominant cost)
    PMult,       ///< plaintext multiply (streams a plaintext operand)
    Elementwise, ///< HAdd / CAdd / CMult / automorphism-only
    Rescale,
    ModRaise,
};

/** One primitive HE op instance. */
struct SimOp
{
    SimOpKind kind = SimOpKind::Elementwise;
    int level = 0;
    /**
     * Identity of the evk this op consumes (KeySwitch only). Ops that
     * reuse an id hit in the scratchpad; unique ids force HBM streams.
     * -1 means no evk.
     */
    int evk_id = -1;
    /** PMult only: whether this plaintext participates in OF-Limb. */
    bool of_limb_eligible = true;
    /**
     * Human-readable phase label ("h-idft", "conv-rot", ...).
     *
     * Lifetime contract: the view is non-owning. The workload
     * generators and serve-op names point it at string literals
     * (static storage, always safe); any other producer must keep the
     * referenced storage alive for as long as the op — or any
     * HeGraph/ScheduledProgram node copied from it — is in use.
     * Copying a SimOp copies the view, not the characters.
     */
    std::string_view tag = "";
};

/** A whole workload. */
struct SimProgram
{
    std::string name;
    CkksParams params;
    std::vector<SimOp> ops;

    size_t count(SimOpKind k) const
    {
        size_t c = 0;
        for (const auto &op : ops)
            c += op.kind == k;
        return c;
    }
};

} // namespace ark
