/**
 * @file
 * Deterministic fault-injection plane for the serving stack.
 *
 * The chaos tests (tests/test_chaos_serving.cpp) and the resilience
 * machinery they exercise — client retry/reconnect, server timeouts,
 * the worker watchdog, graceful drain — need a way to make the stack
 * fail ON DEMAND and REPRODUCIBLY. The FaultInjector provides that:
 * each instrumented site (socket short reads/writes, delays, resets;
 * worker crashes and stalls) asks shouldInject() per call, and the
 * decision is a pure function of (seed, site, per-site call index), so
 * a fault schedule replays bit-identically from its seed. Counters are
 * per-site atomics; under concurrency the *assignment* of call indices
 * to threads races, but the set of indices that fire is fixed by the
 * seed — the schedule is deterministic, the interleaving is the test's
 * to control (docs/robustness.md §2).
 *
 * Gating mirrors the obs plane (src/obs/obs.h) exactly:
 *
 *  - **Compile-time**: -DARK_FAULT_ENABLED=0 (CMake option
 *    ARK_FAULT=OFF) turns faultsEnabled() into constant false and
 *    every injection site into dead code the compiler deletes.
 *  - **Runtime**: the plane is DISARMED by default. It arms either
 *    programmatically (FaultInjector::global().arm(plan) — what the
 *    chaos tests do) or from the environment on first query:
 *    ARK_FAULT_SEED (presence arms the plane), ARK_FAULT_PERMILLE,
 *    ARK_FAULT_SITES, ARK_FAULT_DELAY_US, ARK_FAULT_STALL_MS
 *    (docs/configuration.md). Junk values are fatal, naming the value
 *    — the ARK_BACKEND discipline. The disarmed hot path is one
 *    relaxed atomic load.
 */

#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>

#include "common/types.h"

#ifndef ARK_FAULT_ENABLED
#define ARK_FAULT_ENABLED 1
#endif

namespace ark {
namespace fault {

/** Instrumented failure sites. Socket sites live in net/socket.cpp
 *  (every sendAll/recvAll chunk asks); worker sites in
 *  serve/batch_server.cpp (asked once per popped job). */
enum class Site : size_t
{
    RecvShort = 0, ///< clamp one recv() to a single byte
    RecvDelay,     ///< sleep delay_us before one recv()
    RecvReset,     ///< shut the socket down mid-read (connection loss)
    SendShort,     ///< clamp one send() to a single byte
    SendDelay,     ///< sleep delay_us before one send()
    SendReset,     ///< shut the socket down mid-write
    WorkerCrash,   ///< worker thread dies after settling its job
    WorkerStall,   ///< worker blocks on the stall gate before serving
};
constexpr size_t kSiteCount = 8;

const char *siteName(Site s);
/** Parse a siteName() string back to its Site. False on junk. */
bool parseSite(const char *name, Site &out);

/** One seeded fault schedule. */
struct FaultPlan
{
    /** Decision seed; the whole schedule is a function of it. */
    u64 seed = 1;
    /** Per-site injection probability in permille (0..1000); a site
     *  at 0 never fires, at 1000 fires on every call. */
    std::array<u32, kSiteCount> permille{};
    /** Duration of an injected RecvDelay / SendDelay. */
    u64 delay_us = 100;
    /** Real-time cap on an injected WorkerStall; 0 = hold until
     *  releaseStalls()/disarm() (what the sleep-free watchdog tests
     *  use — the test clock advances, the wall clock does not). */
    u64 stall_ms = 0;
};

#if ARK_FAULT_ENABLED

namespace detail {
/** -1 = environment not yet consulted; 0 = disarmed; 1 = armed. */
extern std::atomic<int> armed_state;
/** Slow path of faultsEnabled(): parse ARK_FAULT_* once. */
bool armFromEnv();
} // namespace detail

/** Is the fault plane armed? One relaxed load when settled; the first
 *  call consults the ARK_FAULT_* environment. */
inline bool
faultsEnabled()
{
    const int s =
        detail::armed_state.load(std::memory_order_relaxed);
    if (s >= 0)
        return s != 0;
    return detail::armFromEnv();
}

/** Process-wide deterministic fault scheduler. */
class FaultInjector
{
  public:
    static FaultInjector &global();

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install @p plan, zero all counters, and arm the plane. */
    void arm(const FaultPlan &plan);
    /** Disarm (shouldInject answers false) and release any stalled
     *  workers; counters keep their totals for inspection. */
    void disarm();

    /**
     * Deterministic per-call decision for @p s: draws this site's next
     * call index and fires iff hash(seed, site, index) lands under the
     * site's permille. Disarmed -> false without drawing an index.
     */
    bool shouldInject(Site s);

    /** Injected-delay duration for the *Delay sites. */
    u64 delayMicros() const;
    /** Real-time stall cap (0 = until release). */
    u64 stallMillis() const;

    /**
     * The WorkerStall gate: blocks until releaseStalls()/disarm() (or
     * the plan's stall_ms cap, when nonzero; or @p abort answers true
     * — the caller's own shutdown flag, checked under the gate's lock
     * so a racing release is never lost). Sleep-free tests hold
     * workers here while the ManualServeClock advances past the
     * watchdog threshold, then release.
     */
    void enterStall(const std::function<bool()> &abort = {});
    /** Wake every thread blocked in enterStall(). */
    void releaseStalls();
    /** Threads currently blocked in enterStall(). */
    size_t stalledCount() const;

    /** Calls asked / injections fired at @p s since the last arm(). */
    u64 calls(Site s) const;
    u64 injected(Site s) const;

  private:
    FaultInjector() = default;

    std::array<std::atomic<u64>, kSiteCount> calls_{};
    std::array<std::atomic<u64>, kSiteCount> injected_{};
    std::array<std::atomic<u32>, kSiteCount> permille_{};
    std::atomic<u64> seed_{1};
    std::atomic<u64> delay_us_{100};
    std::atomic<u64> stall_ms_{0};

    mutable std::mutex stall_m_;
    std::condition_variable stall_cv_;
    u64 stall_epoch_ = 0;
    size_t stalled_ = 0;
};

#else // !ARK_FAULT_ENABLED — compiled out: constant-false, no state.

constexpr bool faultsEnabled() { return false; }

/** Inert stand-in so injection sites compile untouched; every path is
 *  behind `if (faultsEnabled())`, which is constant false. */
class FaultInjector
{
  public:
    static FaultInjector &global()
    {
        static FaultInjector fi;
        return fi;
    }
    void arm(const FaultPlan &) {}
    void disarm() {}
    bool shouldInject(Site) { return false; }
    u64 delayMicros() const { return 0; }
    u64 stallMillis() const { return 0; }
    void enterStall(const std::function<bool()> & = {}) {}
    void releaseStalls() {}
    size_t stalledCount() const { return 0; }
    u64 calls(Site) const { return 0; }
    u64 injected(Site) const { return 0; }
};

#endif // ARK_FAULT_ENABLED

} // namespace fault
} // namespace ark
