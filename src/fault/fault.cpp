#include "fault/fault.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ark {
namespace fault {

const char *
siteName(Site s)
{
    switch (s) {
      case Site::RecvShort:
        return "recv_short";
      case Site::RecvDelay:
        return "recv_delay";
      case Site::RecvReset:
        return "recv_reset";
      case Site::SendShort:
        return "send_short";
      case Site::SendDelay:
        return "send_delay";
      case Site::SendReset:
        return "send_reset";
      case Site::WorkerCrash:
        return "worker_crash";
      case Site::WorkerStall:
        return "worker_stall";
    }
    return "?";
}

bool
parseSite(const char *name, Site &out)
{
    for (size_t i = 0; i < kSiteCount; ++i) {
        const Site s = static_cast<Site>(i);
        if (std::strcmp(name, siteName(s)) == 0) {
            out = s;
            return true;
        }
    }
    return false;
}

#if ARK_FAULT_ENABLED

namespace detail {

std::atomic<int> armed_state{-1};

namespace {

/** Strict unsigned env parse: digits only, range-checked (the
 *  ARK_LISTEN_PORT discipline; junk is fatal at the caller). */
bool
parseU64(const char *s, u64 lo, u64 hi, u64 &out)
{
    if (*s == '\0')
        return false;
    for (const char *p = s; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || v < lo || v > hi)
        return false;
    out = static_cast<u64>(v);
    return true;
}

[[noreturn]] void
fatalEnv(const char *var, const char *val, const char *expected)
{
    char msg[192];
    std::snprintf(msg, sizeof msg, "invalid %s '%s' (expected %s)",
                  var, val, expected);
    ARK_FATAL(msg);
}

/**
 * Parse the ARK_FAULT_* family once. ARK_FAULT_SEED present (and
 * nonempty) arms the plane; the other variables refine the plan:
 * ARK_FAULT_PERMILLE (0..1000, default 10) applies to every site in
 * ARK_FAULT_SITES (comma-separated siteName()s; empty/unset = the six
 * socket sites — worker faults are an explicit opt-in),
 * ARK_FAULT_DELAY_US (0..10^6) and ARK_FAULT_STALL_MS (0..60000).
 */
bool
envArm()
{
    const char *seed_env = std::getenv("ARK_FAULT_SEED");
    if (seed_env == nullptr || *seed_env == '\0')
        return false;
    u64 seed = 0;
    if (!parseU64(seed_env, 1, ~u64{0}, seed))
        fatalEnv("ARK_FAULT_SEED", seed_env,
                 "a positive integer seed");

    FaultPlan plan;
    plan.seed = seed;

    u64 permille = 10;
    if (const char *env = std::getenv("ARK_FAULT_PERMILLE")) {
        if (*env != '\0' && !parseU64(env, 0, 1000, permille))
            fatalEnv("ARK_FAULT_PERMILLE", env,
                     "an integer in [0, 1000]");
    }
    if (const char *env = std::getenv("ARK_FAULT_DELAY_US")) {
        if (*env != '\0' && !parseU64(env, 0, 1000000, plan.delay_us))
            fatalEnv("ARK_FAULT_DELAY_US", env,
                     "an integer in [0, 1000000]");
    }
    if (const char *env = std::getenv("ARK_FAULT_STALL_MS")) {
        if (*env != '\0' && !parseU64(env, 0, 60000, plan.stall_ms))
            fatalEnv("ARK_FAULT_STALL_MS", env,
                     "an integer in [0, 60000]");
    }

    const char *sites_env = std::getenv("ARK_FAULT_SITES");
    if (sites_env != nullptr && *sites_env != '\0') {
        // Comma-separated site names, each validated.
        const char *p = sites_env;
        while (*p) {
            const char *comma = std::strchr(p, ',');
            const size_t len = comma ? static_cast<size_t>(comma - p)
                                     : std::strlen(p);
            char name[32];
            if (len == 0 || len >= sizeof name)
                fatalEnv("ARK_FAULT_SITES", sites_env,
                         "comma-separated fault site names");
            std::memcpy(name, p, len);
            name[len] = '\0';
            Site s;
            if (!parseSite(name, s))
                fatalEnv("ARK_FAULT_SITES", sites_env,
                         "comma-separated fault site names");
            plan.permille[static_cast<size_t>(s)] =
                static_cast<u32>(permille);
            p = comma ? comma + 1 : p + len;
        }
    } else {
        // Default: the six socket sites. Worker crash/stall faults
        // change the server's thread population, so env-armed runs
        // must name them explicitly.
        for (size_t i = 0;
             i <= static_cast<size_t>(Site::SendReset); ++i)
            plan.permille[i] = static_cast<u32>(permille);
    }

    FaultInjector::global().arm(plan);
    ARK_LOG(Info,
            "fault plane armed from environment (seed %llu, "
            "%llu permille)",
            static_cast<unsigned long long>(seed),
            static_cast<unsigned long long>(permille));
    return true;
}

} // namespace

bool
armFromEnv()
{
    // One thread wins the parse; arm()/disarm() settle armed_state,
    // so a lost race just re-reads the settled value.
    static const bool armed = envArm();
    if (armed_state.load(std::memory_order_relaxed) < 0)
        armed_state.store(armed ? 1 : 0, std::memory_order_relaxed);
    return armed_state.load(std::memory_order_relaxed) != 0;
}

} // namespace detail

namespace {

/** splitmix64 finalizer: the per-call decision hash. */
u64
mix64(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

} // namespace

FaultInjector &
FaultInjector::global()
{
    static FaultInjector fi;
    return fi;
}

void
FaultInjector::arm(const FaultPlan &plan)
{
    for (size_t i = 0; i < kSiteCount; ++i) {
        calls_[i].store(0, std::memory_order_relaxed);
        injected_[i].store(0, std::memory_order_relaxed);
        permille_[i].store(plan.permille[i],
                           std::memory_order_relaxed);
    }
    seed_.store(plan.seed, std::memory_order_relaxed);
    delay_us_.store(plan.delay_us, std::memory_order_relaxed);
    stall_ms_.store(plan.stall_ms, std::memory_order_relaxed);
    detail::armed_state.store(1, std::memory_order_release);
}

void
FaultInjector::disarm()
{
    detail::armed_state.store(0, std::memory_order_release);
    releaseStalls();
}

bool
FaultInjector::shouldInject(Site s)
{
    if (detail::armed_state.load(std::memory_order_relaxed) != 1)
        return false;
    const size_t i = static_cast<size_t>(s);
    const u32 pm = permille_[i].load(std::memory_order_relaxed);
    if (pm == 0)
        return false;
    const u64 n = calls_[i].fetch_add(1, std::memory_order_relaxed);
    const u64 seed = seed_.load(std::memory_order_relaxed);
    // Pure function of (seed, site, call index): the schedule replays
    // from the seed regardless of thread interleaving.
    const u64 h = mix64(seed ^ mix64((i + 1) * 0x0DD6A9D3ull) ^ n);
    const bool fire = (h % 1000) < pm;
    if (fire) {
        injected_[i].fetch_add(1, std::memory_order_relaxed);
        obs::count(obs::Counter::FaultsInjected);
    }
    return fire;
}

u64
FaultInjector::delayMicros() const
{
    return delay_us_.load(std::memory_order_relaxed);
}

u64
FaultInjector::stallMillis() const
{
    return stall_ms_.load(std::memory_order_relaxed);
}

void
FaultInjector::enterStall(const std::function<bool()> &abort)
{
    const u64 cap_ms = stallMillis();
    std::unique_lock<std::mutex> lk(stall_m_);
    const u64 epoch = stall_epoch_;
    ++stalled_;
    const auto released = [&] {
        return stall_epoch_ != epoch ||
               detail::armed_state.load(
                   std::memory_order_relaxed) != 1 ||
               (abort && abort());
    };
    if (cap_ms == 0)
        stall_cv_.wait(lk, released);
    else
        stall_cv_.wait_for(lk, std::chrono::milliseconds(cap_ms),
                           released);
    --stalled_;
}

void
FaultInjector::releaseStalls()
{
    {
        std::lock_guard<std::mutex> lk(stall_m_);
        ++stall_epoch_;
    }
    stall_cv_.notify_all();
}

size_t
FaultInjector::stalledCount() const
{
    std::lock_guard<std::mutex> lk(stall_m_);
    return stalled_;
}

u64
FaultInjector::calls(Site s) const
{
    return calls_[static_cast<size_t>(s)].load(
        std::memory_order_relaxed);
}

u64
FaultInjector::injected(Site s) const
{
    return injected_[static_cast<size_t>(s)].load(
        std::memory_order_relaxed);
}

#endif // ARK_FAULT_ENABLED

} // namespace fault
} // namespace ark
