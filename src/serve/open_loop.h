/**
 * @file
 * Open-loop load driver: paces a generated arrival trace
 * (serve/arrival.h) into a BatchServer on the arrivals' schedule,
 * not the server's.
 *
 * Closed-loop benches submit the next request when the previous batch
 * drains, so the offered load can never exceed capacity and queues
 * never really build. Under an open-loop trace the submit times are
 * fixed in advance; when the server falls behind, the backlog —
 * and the latency SLO pressure that motivates admission control —
 * is real. The driver keeps the conservation ledger
 * (offered == admitted + shed + refused, and admitted ==
 * completed + evicted) that the benches report and the smoke gate
 * checks.
 *
 * This is bench/driver machinery, deliberately wall-clock-paced
 * (sleep_until between arrivals): determinism lives in the TRACE, the
 * decisions are the server's. Unit tests bypass the driver and drive
 * the server directly on a ManualServeClock.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "serve/arrival.h"
#include "serve/batch_server.h"

namespace ark {

/** Ledger of one open-loop run. */
struct OpenLoopStats
{
    size_t offered = 0;  ///< arrivals in the trace
    size_t admitted = 0; ///< entered a queue (may be evicted later)
    size_t shed = 0;     ///< refused with AdmitResult::Shed
    size_t refused = 0;  ///< refused with AdmitResult::Full / Closed
    /** Of the admitted: completions by outcome (evicted = shed from
     *  the queue after admission; deadline_expired = dropped unstarted
     *  past its deadline; drain_refused = queued at graceful drain;
     *  ok + failed + evicted + deadline_expired + drain_refused ==
     *  admitted once every future resolved). */
    size_t ok = 0;
    size_t failed = 0;
    size_t evicted = 0;
    size_t deadline_expired = 0;
    size_t drain_refused = 0;
    /** The server's drain window for the run (goodput lives here). */
    ServeReport report;
    /** Offered arrival rate actually realized, events/sec. */
    double offered_per_sec = 0;
};

/**
 * Replay @p events (time-sorted, from generateArrivals) against
 * @p server: submit each arrival at its trace time via
 * trySubmitResult, wait for every admitted future, then drain(). The
 * submit loop never blocks on a full queue — that is the point of
 * open-loop: late is late.
 */
OpenLoopStats runOpenLoop(BatchServer &server,
                          const std::vector<ArrivalEvent> &events);

} // namespace ark
