/**
 * @file
 * Injectable serving clock: the one time source every admission,
 * shedding, and rebalance decision reads.
 *
 * The adaptive serving layer is time-dependent (SLO targets are
 * wall-time budgets; the rebalancer fires on an interval), which would
 * make its tests either sleep-ridden or flaky. Instead, everything in
 * src/serve/ that needs "now" takes a ServeClock: production wires the
 * steady-clock-backed SystemServeClock (the default when
 * BatchServerConfig::clock is null), tests wire a ManualServeClock and
 * advance it explicitly — every decision replays bit-identically with
 * zero wall-clock sleeps (tests/test_serving_admission.cpp,
 * tests/test_serving_rebalance.cpp).
 *
 * The unit is microseconds since an arbitrary epoch: fine enough for
 * sub-millisecond service times at test parameters, wide enough (u64)
 * to never wrap in practice.
 */

#pragma once

#include <atomic>
#include <chrono>

#include "common/types.h"

namespace ark {

/** Monotonic time source for the serving plane. Implementations must
 *  be safe to call from any worker/session thread. */
class ServeClock
{
  public:
    virtual ~ServeClock() = default;

    /** Microseconds since an arbitrary fixed epoch, monotone
     *  non-decreasing across calls (per thread and across threads). */
    virtual u64 nowMicros() const = 0;

    /** Convenience: now in milliseconds (double, for SLO math). */
    double nowMs() const
    {
        return static_cast<double>(nowMicros()) / 1000.0;
    }
};

/** Production clock: std::chrono::steady_clock. */
class SystemServeClock final : public ServeClock
{
  public:
    u64 nowMicros() const override
    {
        return static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    /** Process-wide instance (stateless, so sharing is free). */
    static const SystemServeClock &instance()
    {
        static const SystemServeClock clock;
        return clock;
    }
};

/**
 * Test clock: time advances only when the test says so. Reads and
 * advances are atomic, so concurrent server threads may read while
 * the test thread advances — time just never moves on its own.
 */
class ManualServeClock final : public ServeClock
{
  public:
    explicit ManualServeClock(u64 start_us = 0) : now_us_(start_us) {}

    u64 nowMicros() const override
    {
        return now_us_.load(std::memory_order_relaxed);
    }

    void advanceMicros(u64 us)
    {
        now_us_.fetch_add(us, std::memory_order_relaxed);
    }
    void advanceMs(u64 ms) { advanceMicros(ms * 1000); }
    void setMicros(u64 us)
    {
        now_us_.store(us, std::memory_order_relaxed);
    }

  private:
    std::atomic<u64> now_us_;
};

} // namespace ark
