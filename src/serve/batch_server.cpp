#include "serve/batch_server.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ark {

namespace {

/** Strict unsigned env parse: digits only, range-checked. */
bool
parseEnvU64(const char *s, u64 lo, u64 hi, u64 &out)
{
    if (*s == '\0')
        return false;
    for (const char *p = s; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (errno == ERANGE || v < lo || v > hi)
        return false;
    out = static_cast<u64>(v);
    return true;
}

/** Apply the config's intra-request schedule to every workload.
 *  Dependence-safe: reordering follows the bit-exact commutation
 *  graph, so results are unchanged (see graph/serve_schedule.h). */
std::vector<ServeWorkload>
applySchedule(std::vector<ServeWorkload> workloads, SchedulePolicy p)
{
    for (auto &w : workloads)
        w = scheduleWorkload(w, p);
    return workloads;
}

/**
 * Divide @p total items (queue slots, worker threads) across shards
 * in proportion to @p weights: largest-remainder apportionment (ties
 * toward the lower shard index), then a floor of 1 per shard with the
 * overshoot taken back from the largest shares. The result sums to
 * exactly @p total whenever total >= #shards (asserted by the server
 * for workers; a queue budget smaller than the shard count cannot be
 * honored by live queues and keeps the 1-per-shard floor instead).
 */
std::vector<size_t>
apportion(size_t total, const std::vector<size_t> &weights)
{
    const size_t n = weights.size();
    size_t total_weight = 0;
    for (size_t w : weights)
        total_weight += w;

    std::vector<size_t> shares(n, 0);
    std::vector<std::pair<size_t, size_t>> rem; // (remainder, shard)
    size_t assigned = 0;
    for (size_t s = 0; s < n; ++s) {
        const size_t w = total_weight > 0 ? weights[s] : 1;
        const size_t denom = total_weight > 0 ? total_weight : n;
        shares[s] = total * w / denom;
        assigned += shares[s];
        rem.emplace_back(total * w % denom, s);
    }
    std::sort(rem.begin(), rem.end(), [](const auto &a, const auto &b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;
    });
    for (size_t i = 0; assigned < total && i < n; ++i, ++assigned)
        shares[rem[i].second] += 1;
    for (size_t &s : shares) {
        if (s == 0) {
            s = 1;
            ++assigned;
        }
    }
    // Pay for the floor out of the largest shares (zero-weight shards
    // exist when there are fewer evk signatures than shards).
    while (assigned > total) {
        size_t rich = 0;
        for (size_t s = 1; s < n; ++s) {
            if (shares[s] > shares[rich])
                rich = s;
        }
        if (shares[rich] <= 1)
            break; // total < n: the floor wins
        shares[rich] -= 1;
        --assigned;
    }
    return shares;
}

} // namespace

BatchServerConfig
serveConfigFromEnv(BatchServerConfig cfg)
{
    // An empty value counts as unset, matching ARK_BACKEND et al.
    if (const char *env = std::getenv("ARK_LISTEN_ADDR")) {
        if (*env != '\0')
            cfg.listen_addr = env;
    }
    const char *port_env = std::getenv("ARK_LISTEN_PORT");
    if (port_env != nullptr && *port_env != '\0') {
        const char *env = port_env;
        u64 v = 0;
        if (!parseEnvU64(env, 0, 65535, v)) {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "invalid ARK_LISTEN_PORT '%s' (expected an "
                          "integer in [0, 65535]; 0 = ephemeral)",
                          env);
            ARK_FATAL(msg);
        }
        cfg.listen_port = static_cast<u16>(v);
    }
    const char *sess_env = std::getenv("ARK_MAX_SESSIONS");
    if (sess_env != nullptr && *sess_env != '\0') {
        const char *env = sess_env;
        u64 v = 0;
        if (!parseEnvU64(env, 1, 4096, v)) {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "invalid ARK_MAX_SESSIONS '%s' (expected an "
                          "integer in [1, 4096])",
                          env);
            ARK_FATAL(msg);
        }
        cfg.max_sessions = static_cast<size_t>(v);
    }
    const char *frame_env = std::getenv("ARK_MAX_FRAME_MIB");
    if (frame_env != nullptr && *frame_env != '\0') {
        const char *env = frame_env;
        u64 v = 0;
        if (!parseEnvU64(env, 1, 16384, v)) {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "invalid ARK_MAX_FRAME_MIB '%s' (expected an "
                          "integer in [1, 16384])",
                          env);
            ARK_FATAL(msg);
        }
        cfg.max_frame_bytes = v * 1024 * 1024;
    }
    struct MsKnob
    {
        const char *var;
        u64 lo;
        u64 *field;
    };
    const MsKnob ms_knobs[] = {
        {"ARK_WATCHDOG_MS", 0, &cfg.watchdog_interval_ms},
        {"ARK_WORKER_STUCK_MS", 1, &cfg.worker_stuck_ms},
        {"ARK_IDLE_TIMEOUT_MS", 0, &cfg.idle_timeout_ms},
        {"ARK_IO_TIMEOUT_MS", 0, &cfg.io_timeout_ms},
    };
    for (const MsKnob &k : ms_knobs) {
        const char *env = std::getenv(k.var);
        if (env == nullptr || *env == '\0')
            continue;
        u64 v = 0;
        if (!parseEnvU64(env, k.lo, 3600000, v)) {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "invalid %s '%s' (expected an integer in "
                          "[%llu, 3600000] milliseconds)",
                          k.var, env,
                          static_cast<unsigned long long>(k.lo));
            ARK_FATAL(msg);
        }
        *k.field = v;
    }
    const char *slo_env = std::getenv("ARK_SLO_P99_MS");
    if (slo_env != nullptr && *slo_env != '\0') {
        u64 v = 0;
        if (!parseEnvU64(slo_env, 1, 3600000, v)) {
            char msg[160];
            std::snprintf(msg, sizeof msg,
                          "invalid ARK_SLO_P99_MS '%s' (expected an "
                          "integer in [1, 3600000] milliseconds)",
                          slo_env);
            ARK_FATAL(msg);
        }
        cfg.admission.enabled = true;
        if (cfg.admission.classes.empty())
            cfg.admission.classes.push_back(SloClass{});
        for (SloClass &cls : cfg.admission.classes) {
            if (cls.p99_ms <= 0)
                cls.p99_ms = static_cast<double>(v);
        }
    }
    return cfg;
}

BatchServer::BatchServer(const CkksContext &ctx, KeyCache &keys,
                         const PlaintextStore &plaintexts,
                         std::vector<ServeWorkload> workloads,
                         std::vector<Ciphertext> inputs,
                         BatchServerConfig cfg)
    : ctx_(ctx),
      eval_(ctx),
      keys_(keys),
      plaintexts_(plaintexts),
      workloads_(applySchedule(std::move(workloads), cfg.schedule)),
      inputs_(std::move(inputs)),
      cfg_(cfg),
      admission_(cfg.admission),
      clock_(cfg.clock != nullptr ? *cfg.clock
                                  : SystemServeClock::instance()),
      shard_plan_(planServeShards(workloads_, cfg.shards))
{
    ARK_ASSERT(!workloads_.empty(), "server needs at least one workload");
    ARK_ASSERT(!inputs_.empty(), "server needs at least one input");
    ARK_ASSERT(cfg_.workers > 0, "server needs at least one worker");
    ARK_ASSERT(cfg_.shards >= 1, "server needs at least one shard");
    ARK_ASSERT(cfg_.workers >= cfg_.shards,
               "every shard's queue needs at least one worker");
    // Keep RequestQueue's capacity-must-be-positive contract loud:
    // apportion()'s 1-per-shard floor must never paper over a budget
    // too small to split.
    ARK_ASSERT(cfg_.queue_capacity >= cfg_.shards,
               "queue capacity must cover at least one slot per shard");

    // One bounded queue per worker group; the configured capacity is
    // the whole server's admission budget, apportioned in proportion
    // to the op weight the plan routed to each shard — affinity
    // routing deliberately skews traffic, so an even split would shed
    // load from a hot shard while cold shards sat on idle slots.
    const std::vector<size_t> caps = apportion(
        cfg_.queue_capacity, shard_plan_.weight_of_shard);
    queues_.reserve(cfg_.shards);
    for (size_t s = 0; s < cfg_.shards; ++s)
        queues_.push_back(std::make_unique<RequestQueue>(caps[s]));
    shard_done_.assign(cfg_.shards, 0);
    shard_inflight_.assign(cfg_.shards, 0);
    shard_total_done_.assign(cfg_.shards, 0);
    shard_evk_miss_.assign(cfg_.shards, 0);
    last_rebalance_us_.store(clock_.nowMicros());
    last_watchdog_us_.store(clock_.nowMicros());

    // Prewarm every evk the workload set references while still
    // single-threaded: key generation draws from the keygen Rng, so
    // warming here in KeyCache::warm's canonical (sorted) order is
    // what makes concurrent execution bit-identical to sequential —
    // and scheduled servers bit-identical to FCFS ones, since the
    // amount *set* is invariant under dependence-safe reordering.
    std::vector<i64> amounts;
    for (const auto &w : workloads_) {
        const std::vector<i64> amts = w.rotationAmounts();
        amounts.insert(amounts.end(), amts.begin(), amts.end());
    }
    keys_.warm(std::move(amounts));

    // Workers follow the traffic: the same weight-proportional
    // apportionment as the queue budget (min 1 per group, so every
    // queue has a consumer) — each group drains its own queue only.
    const std::vector<size_t> crew =
        apportion(cfg_.workers, shard_plan_.weight_of_shard);
    shard_workers_ = crew;
    workers_.reserve(cfg_.workers);
    std::lock_guard<std::mutex> lk(workers_m_);
    for (size_t group = 0; group < cfg_.shards; ++group) {
        for (size_t i = 0; i < crew[group]; ++i)
            spawnWorker(group);
    }
}

void
BatchServer::spawnWorker(size_t group)
{
    auto slot = std::make_unique<WorkerSlot>();
    slot->group = group;
    WorkerSlot *p = slot.get();
    workers_.push_back(std::move(slot));
    p->thread = std::thread([this, p] { workerLoop(p); });
}

size_t
BatchServer::workers() const
{
    std::lock_guard<std::mutex> lk(workers_m_);
    size_t n = 0;
    for (const auto &s : workers_) {
        if (!s->exited.load() && !s->superseded.load())
            ++n;
    }
    return n;
}

size_t
BatchServer::checkWorkers()
{
    if (shut_down_.load())
        return 0;
    std::lock_guard<std::mutex> lk(workers_m_);
    const u64 now_us = clock_.nowMicros();
    const u64 stuck_us = cfg_.worker_stuck_ms * 1000;
    size_t replaced = 0;
    // Replacements append to workers_; bound the scan to the slots
    // that existed when the sweep started.
    const size_t n = workers_.size();
    for (size_t i = 0; i < n; ++i) {
        WorkerSlot &s = *workers_[i];
        if (s.superseded.load())
            continue;
        if (s.exited.load()) {
            if (s.thread.joinable())
                s.thread.join();
            s.superseded.store(true);
            spawnWorker(s.group);
            ++replaced;
            continue;
        }
        const u64 busy = s.busy_since_us.load();
        if (busy != 0 && now_us > busy && now_us - busy >= stuck_us) {
            // A stuck thread cannot be joined: replace it now and let
            // it exit after settling its in-hand job (its superseded
            // flag); the zombie joins at shutdown. If it was merely
            // slow, the spurious replacement is benign — it finishes
            // its job, sees the flag, and bows out.
            s.superseded.store(true);
            spawnWorker(s.group);
            ++replaced;
        }
    }
    if (replaced > 0) {
        respawns_.fetch_add(replaced);
        obs::count(obs::Counter::WorkerRespawns,
                   static_cast<u64>(replaced));
        ARK_LOG(Info, "watchdog replaced %zu worker(s)", replaced);
    }
    return replaced;
}

void
BatchServer::maybeWatchdog()
{
    const u64 interval_ms = cfg_.watchdog_interval_ms;
    if (interval_ms == 0)
        return;
    const u64 now_us = clock_.nowMicros();
    u64 last_us = last_watchdog_us_.load();
    if (now_us - last_us < interval_ms * 1000)
        return;
    // One admission wins the sweep for this interval (the
    // maybeRebalance CAS pattern).
    if (!last_watchdog_us_.compare_exchange_strong(last_us, now_us))
        return;
    checkWorkers();
}

BatchServer::~BatchServer()
{
    shutdown();
}

void
BatchServer::completeShed(ServeJob &&job, bool was_queued)
{
    ServeResult r;
    r.id = job.request.id;
    r.error = was_queued
                  ? "shed by SLO admission control (evicted from "
                    "queue for higher-priority work)"
                  : "shed by SLO admission control (predicted p99 "
                    "over target)";
    r.error_kind = ServeErrorKind::Shed;
    job.promise.set_value(std::move(r));
    if (obs::metricsEnabled()) {
        obs::count(obs::Counter::RequestsShed);
        // Only queued victims passed the admission gauge increment.
        if (was_queued)
            obs::gaugeAdd(obs::Gauge::InFlight, -1);
    }
    {
        std::lock_guard<std::mutex> lk(metrics_m_);
        shed_ += 1;
    }
    {
        std::lock_guard<std::mutex> lk(idle_m_);
        outstanding_.fetch_sub(1);
    }
    idle_cv_.notify_all();
}

void
BatchServer::completeDeadline(ServeJob &&job)
{
    ServeResult r;
    r.id = job.request.id;
    r.error = "deadline expired before execution started";
    r.error_kind = ServeErrorKind::DeadlineExceeded;
    job.promise.set_value(std::move(r));
    if (obs::metricsEnabled()) {
        obs::count(obs::Counter::DeadlineExpired);
        obs::gaugeAdd(obs::Gauge::InFlight, -1);
    }
    {
        std::lock_guard<std::mutex> lk(metrics_m_);
        deadline_expired_ += 1;
    }
    {
        std::lock_guard<std::mutex> lk(idle_m_);
        outstanding_.fetch_sub(1);
    }
    idle_cv_.notify_all();
}

void
BatchServer::completeDrainRefused(ServeJob &&job)
{
    ServeResult r;
    r.id = job.request.id;
    r.error = "refused at graceful drain (queued, never started)";
    r.error_kind = ServeErrorKind::DrainRefused;
    job.promise.set_value(std::move(r));
    if (obs::metricsEnabled()) {
        obs::count(obs::Counter::DrainRefused);
        obs::gaugeAdd(obs::Gauge::InFlight, -1);
    }
    {
        std::lock_guard<std::mutex> lk(metrics_m_);
        drain_refused_ += 1;
    }
    {
        std::lock_guard<std::mutex> lk(idle_m_);
        outstanding_.fetch_sub(1);
    }
    idle_cv_.notify_all();
}

AdmitResult
BatchServer::admitJob(ServeJob &&job, bool blocking)
{
    const bool observed = obs::traceEnabled() || obs::metricsEnabled();
    obs::ScopedSpan admit_span("admit", job.request.id);
    const size_t workload_index = job.request.workload_index;

    // The SLO class rides with the job, so eviction decisions and the
    // worker's goodput accounting never re-derive it.
    job.class_id = admission_.classOf(workload_index);
    job.priority = admission_.classAt(job.class_id).priority;
    // End-to-end latency stamp (the quantity the SLO targets bound),
    // from the injected clock so tests replay it deterministically.
    job.submit_us = clock_.nowMicros();

    // The periodic rebalance and the worker watchdog both ride on
    // admissions — no extra thread, and a server with no traffic has
    // nothing to rebalance or resuscitate anyway.
    maybeRebalance();
    maybeWatchdog();

    // Evk-affinity routing: the request joins the queue of the worker
    // group that owns its workload's rotation-evk signature. Read
    // under the plan lock — the rebalancer swaps the table live.
    size_t shard;
    {
        std::lock_guard<std::mutex> lk(plan_m_);
        shard = shard_plan_.shard_of_workload[workload_index];
    }
    RequestQueue &queue = *queues_[shard];
    // Stamp only when someone will read it: the disabled path takes
    // no extra clock read (the overhead gate's contract).
    if (observed)
        job.enqueue_tp = std::chrono::steady_clock::now();
    const auto admit_t0 = job.enqueue_tp;

    // Count the attempt *before* opening the window: a concurrent
    // drain() waits for outstanding_ == 0, so it can never close a
    // window between our open and the admission becoming visible.
    outstanding_.fetch_add(1);
    {
        // Open the metrics window at first admission so throughput
        // covers queueing, not just service.
        std::lock_guard<std::mutex> lk(metrics_m_);
        if (!window_open_) {
            window_open_ = true;
            window_start_ = std::chrono::steady_clock::now();
            stats_baseline_ = ctx_.backend().stats();
        }
    }

    // SLO admission: while the predicted p99 for this class exceeds
    // its target, make room from the BOTTOM of the priority order —
    // evict queued strictly-lower-priority work (each victim's future
    // resolves with the retryable Shed error), and only when nothing
    // lower-priority is queued shed the newcomer itself. Bounded: a
    // pass either admits, evicts one victim, or sheds the newcomer.
    AdmitResult admitted = AdmitResult::Admitted;
    for (size_t pass = 0; pass <= queue.capacity(); ++pass) {
        u32 lowest = 0;
        const bool nonempty = queue.lowestPriority(lowest);
        const AdmissionVerdict verdict = admission_.decide(
            job.class_id, queue.depth(), shard_workers_[shard],
            nonempty, lowest);
        if (verdict == AdmissionVerdict::Admit)
            break;
        if (verdict == AdmissionVerdict::EvictLower) {
            ServeJob victim;
            if (queue.evictLowestBelow(job.priority, victim))
                completeShed(std::move(victim), /*was_queued=*/true);
            continue; // re-decide against the reduced depth
        }
        admitted = AdmitResult::Shed;
        break;
    }

    if (admitted == AdmitResult::Admitted) {
        if (blocking) {
            // A blocking push only fails when the queue was closed.
            admitted = queue.push(std::move(job))
                           ? AdmitResult::Admitted
                           : AdmitResult::Closed;
        } else {
            admitted = queue.tryPushResult(std::move(job));
            // A Full refusal that raced a shutdown() past the
            // caller's entry check must report Closed: "retry later"
            // would be a lie once the queues stop admitting.
            if (admitted == AdmitResult::Full &&
                (shut_down_.load() || queue.closed()))
                admitted = AdmitResult::Closed;
        }
    }

    if (admitted == AdmitResult::Shed) {
        // completeShed handles the promise, shed count, and the
        // outstanding_ release; only the window probe check remains.
        completeShed(std::move(job), /*was_queued=*/false);
        std::lock_guard<std::mutex> lk(metrics_m_);
        if (window_open_ && done_ == 0 && outstanding_.load() == 0)
            window_open_ = false;
    } else if (admitted != AdmitResult::Admitted) {
        {
            std::lock_guard<std::mutex> lk(idle_m_);
            outstanding_.fetch_sub(1);
        }
        idle_cv_.notify_all();
        // A refused probe must not skew the next report's wall clock:
        // close the window again while it is still empty.
        std::lock_guard<std::mutex> lk(metrics_m_);
        if (window_open_ && done_ == 0 && outstanding_.load() == 0)
            window_open_ = false;
    }
    if (observed && obs::metricsEnabled()) {
        if (admitted == AdmitResult::Admitted) {
            obs::count(obs::Counter::AdmitAccepted);
            obs::gaugeAdd(obs::Gauge::InFlight, 1);
        } else if (admitted != AdmitResult::Shed) {
            // Shed is counted as RequestsShed in completeShed.
            obs::count(obs::Counter::AdmitRefused);
        }
        obs::observe(
            obs::Phase::Admit,
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - admit_t0)
                .count());
        // Sampled depth gauge: one sample per admission attempt is
        // plenty for a "what does the queue look like" readout.
        size_t depth = 0;
        for (const auto &q : queues_)
            depth += q->depth();
        obs::gaugeSet(obs::Gauge::QueueDepth,
                      static_cast<i64>(depth));
    }
    return admitted;
}

std::future<ServeResult>
BatchServer::enqueue(size_t workload_index, bool blocking,
                     AdmitResult &admitted)
{
    ARK_ASSERT(workload_index < workloads_.size(),
               "workload index out of range");
    if (shut_down_.load())
        throw std::runtime_error("BatchServer is shut down");

    ServeJob job;
    job.request.id = next_id_.fetch_add(1);
    job.request.workload_index = workload_index;
    std::future<ServeResult> fut = job.promise.get_future();

    admitted = admitJob(std::move(job), blocking);
    // In-process contract: Full is the caller's load-shedding signal
    // (trySubmit returns false), Closed means stop retrying (throw).
    // Shed resolves the future itself with the typed Shed result.
    if (admitted == AdmitResult::Closed)
        throw std::runtime_error("BatchServer is shut down");
    return fut;
}

AdmitResult
BatchServer::trySubmitRemote(size_t workload_index,
                             std::shared_ptr<Ciphertext> input,
                             KeyCache *tenant_keys,
                             std::future<ServeResult> &out,
                             u64 reserved_id, u64 deadline_us)
{
    ARK_ASSERT(workload_index < workloads_.size(),
               "workload index out of range");
    if (shut_down_.load())
        return AdmitResult::Closed;

    ServeJob job;
    job.request.id =
        reserved_id != 0 ? reserved_id : next_id_.fetch_add(1);
    job.request.workload_index = workload_index;
    job.request.input = std::move(input);
    job.request.tenant_keys = tenant_keys;
    job.deadline_us = deadline_us;
    std::future<ServeResult> fut = job.promise.get_future();

    const AdmitResult admitted =
        admitJob(std::move(job), /*blocking=*/false);
    if (admitted == AdmitResult::Admitted)
        out = std::move(fut);
    return admitted;
}

std::future<ServeResult>
BatchServer::submit(size_t workload_index)
{
    // Under SLO admission a blocking submit may still be shed: the
    // returned future then resolves immediately with the typed Shed
    // result (ServeErrorKind::Shed), never blocking the caller.
    AdmitResult admitted = AdmitResult::Admitted;
    return enqueue(workload_index, /*blocking=*/true, admitted);
}

bool
BatchServer::trySubmit(size_t workload_index,
                       std::future<ServeResult> &out)
{
    AdmitResult admitted = AdmitResult::Admitted;
    auto fut = enqueue(workload_index, /*blocking=*/false, admitted);
    if (admitted == AdmitResult::Admitted)
        out = std::move(fut);
    return admitted == AdmitResult::Admitted;
}

AdmitResult
BatchServer::trySubmitResult(size_t workload_index,
                             std::future<ServeResult> &out)
{
    if (shut_down_.load())
        return AdmitResult::Closed;
    AdmitResult admitted = AdmitResult::Admitted;
    try {
        auto fut =
            enqueue(workload_index, /*blocking=*/false, admitted);
        if (admitted == AdmitResult::Admitted)
            out = std::move(fut);
    } catch (const std::runtime_error &) {
        return AdmitResult::Closed; // raced a shutdown()
    }
    return admitted;
}

std::vector<std::future<ServeResult>>
BatchServer::submitBatch(const std::vector<size_t> &workload_indices)
{
    std::vector<size_t> admission(workload_indices.size());
    for (size_t i = 0; i < admission.size(); ++i)
        admission[i] = i;
    // Only EvkCluster changes server behaviour (matching the
    // per-request reorder contract); BeladyResidency is a
    // simulator-plane policy and stays FCFS here.
    if (cfg_.schedule == SchedulePolicy::EvkCluster)
        admission =
            clusterAdmissionOrder(workloads_, workload_indices);

    std::vector<std::future<ServeResult>> futs(
        workload_indices.size());
    for (size_t pos : admission)
        futs[pos] = submit(workload_indices[pos]);
    return futs;
}

ServeResult
BatchServer::execute(const ServeRequest &req) const
{
    const ServeWorkload &w = workloads_[req.workload_index];
    ServeResult r;
    r.id = req.id;

    // Remote requests carry their own input ciphertext and their
    // tenant's uploaded key cache; in-process ones use the server's.
    KeyCache &keys = req.tenant_keys ? *req.tenant_keys : keys_;

    const auto t0 = std::chrono::steady_clock::now();
    try {
        Ciphertext ct = req.input
                            ? *req.input
                            : inputs_[w.input_index % inputs_.size()];
        for (const ServeOp &op : w.ops) {
            switch (op.kind) {
              case ServeOpKind::Square:
                if (ct.level() < 1)
                    throw LevelExhaustedError(
                        "level budget exhausted before Square");
                ct = eval_.square(ct, keys.multiplication());
                break;
              case ServeOpKind::Rescale:
                if (ct.level() < 1)
                    throw LevelExhaustedError(
                        "level budget exhausted before Rescale");
                ct = eval_.rescale(ct);
                break;
              case ServeOpKind::Rotate:
                ct = eval_.rotate(ct, op.rotation,
                                  keys.rotation(op.rotation));
                break;
              case ServeOpKind::MulPlain: {
                if (ct.level() < 1)
                    throw LevelExhaustedError(
                        "level budget exhausted before MulPlain");
                Plaintext pt = plaintexts_.get(
                    op.pt_index % plaintexts_.size(), ct.level());
                ct = eval_.mulPlain(ct, pt);
                break;
              }
              case ServeOpKind::AddScalar:
                ct = eval_.addScalar(ct, op.scalar);
                break;
            }
            ++r.he_ops;
        }
        r.ok = true;
        r.final_level = ct.level();
        r.checksum = ciphertextChecksum(ct);
        if (req.input)
            r.output = std::make_shared<Ciphertext>(std::move(ct));
    } catch (const LevelExhaustedError &e) {
        r.ok = false;
        r.error = e.what();
        r.error_kind = ServeErrorKind::LevelExhausted;
    } catch (const MissingKeyError &e) {
        r.ok = false;
        r.error = e.what();
        r.error_kind = ServeErrorKind::MissingKey;
    } catch (const std::exception &e) {
        r.ok = false;
        r.error = e.what();
        r.error_kind = ServeErrorKind::Other;
    }
    const auto t1 = std::chrono::steady_clock::now();
    r.latency_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return r;
}

void
BatchServer::workerLoop(WorkerSlot *slot)
{
    const size_t group = slot->group;
    ServeJob job;
    while (queues_[group]->pop(job)) {
        // 0 is the idle sentinel; an injected clock may legitimately
        // read 0 at the first pop, so clamp the stamp to 1.
        slot->busy_since_us.store(std::max<u64>(clock_.nowMicros(), 1));

        // Injected worker faults, asked once per popped job. The stall
        // gate holds the worker (visibly busy to the watchdog) until
        // release; skipped during shutdown so joins cannot hang.
        bool crash = false;
        if (fault::faultsEnabled() && !shut_down_.load()) {
            auto &fi = fault::FaultInjector::global();
            if (fi.shouldInject(fault::Site::WorkerStall))
                fi.enterStall([this] { return shut_down_.load(); });
            crash = fi.shouldInject(fault::Site::WorkerCrash);
        }

        // Deadline gate: expired work is dropped here, before the
        // evaluator spends anything on it. Checked after the stall
        // gate on purpose — a stalled worker pops a job, time passes,
        // and the deadline does its job.
        if (job.deadline_us != 0 &&
            clock_.nowMicros() > job.deadline_us) {
            completeDeadline(std::move(job));
            slot->busy_since_us.store(0);
            if (crash || slot->superseded.load())
                break;
            continue;
        }

        // Injected crash: settle the in-hand job as failed through the
        // normal accounting (promise, window counters, outstanding_)
        // so nothing leaks, then let the thread die — recovery is the
        // watchdog's job, not this thread's.
        if (crash) {
            ServeResult r;
            r.id = job.request.id;
            r.error = "injected worker crash";
            r.error_kind = ServeErrorKind::Other;
            if (obs::metricsEnabled()) {
                obs::count(obs::Counter::RequestsFailed);
                obs::gaugeAdd(obs::Gauge::InFlight, -1);
            }
            double e2e_ms = 0;
            if (job.submit_us != 0)
                e2e_ms = static_cast<double>(clock_.nowMicros() -
                                             job.submit_us) /
                         1000.0;
            {
                std::lock_guard<std::mutex> lk(metrics_m_);
                latencies_ms_.push_back(0.0);
                e2e_ms_.push_back(e2e_ms);
                done_ += 1;
                failed_ += 1;
                shard_done_[group] += 1;
                shard_total_done_[group] += 1;
            }
            job.promise.set_value(std::move(r));
            {
                std::lock_guard<std::mutex> lk(idle_m_);
                outstanding_.fetch_sub(1);
            }
            idle_cv_.notify_all();
            break;
        }

        const u64 rid = job.request.id;
        const bool observed =
            obs::traceEnabled() || obs::metricsEnabled();
        const bool stamped =
            job.enqueue_tp != std::chrono::steady_clock::time_point{};
        std::chrono::steady_clock::time_point pop_tp{};
        if (observed && stamped) {
            // queue_wait: admission stamp -> this pop.
            pop_tp = std::chrono::steady_clock::now();
            if (obs::traceEnabled())
                obs::TraceSession::global().record(
                    "queue_wait", rid, job.enqueue_tp, pop_tp);
            obs::observe(obs::Phase::QueueWait,
                         std::chrono::duration<double, std::milli>(
                             pop_tp - job.enqueue_tp)
                             .count());
        }
        {
            std::lock_guard<std::mutex> lk(metrics_m_);
            shard_inflight_[group] += 1;
        }
        ServeResult r;
        {
            // dispatch: pop -> execution start (bookkeeping between
            // the two; tiny unless the metrics lock contends).
            std::chrono::steady_clock::time_point exec_tp{};
            if (observed && stamped) {
                exec_tp = std::chrono::steady_clock::now();
                if (obs::traceEnabled())
                    obs::TraceSession::global().record(
                        "dispatch", rid, pop_tp, exec_tp);
                obs::observe(
                    obs::Phase::Dispatch,
                    std::chrono::duration<double, std::milli>(
                        exec_tp - pop_tp)
                        .count());
            }
            obs::ScopedSpan execute_span("execute", rid);
            // Snapshot this thread's KeyCache tallies around the
            // execution: the delta is EXACTLY this request's misses,
            // attributed to this worker's group — the rebalancer's
            // second congestion signal.
            const u64 miss0 = KeyCache::threadStats().misses;
            r = execute(job.request);
            const u64 miss_delta =
                KeyCache::threadStats().misses - miss0;
            if (miss_delta > 0) {
                std::lock_guard<std::mutex> lk(metrics_m_);
                shard_evk_miss_[group] += miss_delta;
            }
        }
        if (observed) {
            obs::observe(obs::Phase::Execute, r.latency_ms);
            obs::count(r.ok ? obs::Counter::RequestsDone
                            : obs::Counter::RequestsFailed);
            obs::gaugeAdd(obs::Gauge::InFlight, -1);
        }
        // Feed the admission controller's service model, and settle
        // the request against its SLO class's end-to-end budget.
        admission_.recordService(job.class_id, r.latency_ms);
        const double target_ms =
            admission_.classAt(job.class_id).p99_ms;
        double e2e_ms = 0;
        if (job.submit_us != 0)
            e2e_ms = static_cast<double>(clock_.nowMicros() -
                                         job.submit_us) /
                     1000.0;
        {
            std::lock_guard<std::mutex> lk(metrics_m_);
            latencies_ms_.push_back(r.latency_ms);
            e2e_ms_.push_back(e2e_ms);
            if (r.ok && target_ms > 0 && e2e_ms <= target_ms)
                slo_good_ += 1;
            done_ += 1;
            failed_ += r.ok ? 0 : 1;
            ops_done_ += r.he_ops;
            shard_done_[group] += 1;
            shard_inflight_[group] -= 1;
            shard_total_done_[group] += 1;
        }
        job.promise.set_value(std::move(r));
        // Decrement-then-notify under the idle mutex so drain() can
        // never observe the old count after its predicate check.
        {
            std::lock_guard<std::mutex> lk(idle_m_);
            outstanding_.fetch_sub(1);
        }
        idle_cv_.notify_all();
        slot->busy_since_us.store(0);
        // A superseded worker (the watchdog already spawned its
        // replacement) exits after settling its job instead of
        // competing with the replacement for pops.
        if (slot->superseded.load())
            break;
    }
    slot->exited.store(true);
}

ServeShardPlan
BatchServer::shardPlan() const
{
    std::lock_guard<std::mutex> lk(plan_m_);
    return shard_plan_;
}

void
BatchServer::maybeRebalance()
{
    const u64 interval_ms = cfg_.admission.rebalance_interval_ms;
    if (interval_ms == 0 || queues_.size() < 2)
        return;
    const u64 now_us = clock_.nowMicros();
    u64 last_us = last_rebalance_us_.load();
    if (now_us - last_us < interval_ms * 1000)
        return;
    // One admission wins the race to re-plan this interval; losers
    // skip (the CAS moved the deadline) instead of dogpiling.
    if (!last_rebalance_us_.compare_exchange_strong(last_us, now_us))
        return;
    rebalanceNow();
}

bool
BatchServer::rebalanceNow()
{
    ServeShardSignal signal;
    signal.peak_depth.reserve(queues_.size());
    for (const auto &q : queues_)
        signal.peak_depth.push_back(q->peakDepth());
    {
        std::lock_guard<std::mutex> lk(metrics_m_);
        signal.evk_miss = shard_evk_miss_;
    }
    return rebalanceNow(signal);
}

bool
BatchServer::rebalanceNow(const ServeShardSignal &signal)
{
    std::lock_guard<std::mutex> lk(plan_m_);
    ServeShardPlan next =
        replanServeShards(workloads_, shard_plan_, signal);
    if (next.shard_of_workload == shard_plan_.shard_of_workload)
        return false;
    // Routing-only swap: requests already queued or executing finish
    // on their old shard (nothing is dropped, nothing re-routes
    // mid-flight); only FUTURE admissions follow the new table. The
    // evk material every group might need was prewarmed at
    // construction, so a migrated group's keys are already resident.
    shard_plan_ = std::move(next);
    rebalance_count_.fetch_add(1);
    // The consumed signal is stale for the new table: start the next
    // observation window clean.
    for (const auto &q : queues_)
        q->resetPeak();
    {
        std::lock_guard<std::mutex> mlk(metrics_m_);
        shard_evk_miss_.assign(queues_.size(), 0);
    }
    return true;
}

ServerLiveStats
BatchServer::liveStats() const
{
    ServerLiveStats s;
    s.shards.resize(queues_.size());
    {
        std::lock_guard<std::mutex> lk(metrics_m_);
        for (size_t i = 0; i < queues_.size(); ++i) {
            s.shards[i].in_flight = shard_inflight_[i];
            s.shards[i].total_done = shard_total_done_[i];
        }
    }
    for (size_t i = 0; i < queues_.size(); ++i) {
        s.shards[i].queue_depth = queues_[i]->depth();
        s.shards[i].queue_capacity = queues_[i]->capacity();
    }
    s.outstanding = outstanding_.load();
    return s;
}

ServeReport
BatchServer::drain()
{
    {
        std::unique_lock<std::mutex> lk(idle_m_);
        idle_cv_.wait(lk, [this] { return outstanding_.load() == 0; });
    }

    std::lock_guard<std::mutex> lk(metrics_m_);
    const auto now = std::chrono::steady_clock::now();
    const KernelStats now_stats = ctx_.backend().stats();

    ServeReport rep;
    rep.schedule = schedulePolicyName(cfg_.schedule);
    rep.shard_requests = shard_done_;
    rep.shard_queue_peak.reserve(queues_.size());
    for (const auto &q : queues_) {
        rep.shard_queue_peak.push_back(q->peakDepth());
        q->resetPeak();
    }
    rep.requests = done_;
    rep.failed = failed_;
    rep.shed = shed_;
    rep.slo_good = slo_good_;
    rep.deadline_expired = deadline_expired_;
    rep.drain_refused = drain_refused_;
    rep.he_ops = ops_done_;
    rep.latency = summarizeLatencies(std::move(latencies_ms_));
    rep.e2e = summarizeLatencies(std::move(e2e_ms_));
    if (window_open_) {
        rep.wall_seconds =
            std::chrono::duration<double>(now - window_start_).count();
        // Backend tallies are quiescent here (no request in flight),
        // so the delta is exactly this window's kernel work.
        rep.kernel_words =
            now_stats.totalWords() - stats_baseline_.totalWords();
        rep.mod_mults =
            now_stats.totalMults() - stats_baseline_.totalMults();
    }
    if (rep.wall_seconds > 0) {
        const double s = rep.wall_seconds;
        rep.requests_per_sec = static_cast<double>(rep.requests) / s;
        rep.he_ops_per_sec = static_cast<double>(rep.he_ops) / s;
        rep.goodput_per_sec = static_cast<double>(rep.slo_good) / s;
        rep.words_per_sec = static_cast<double>(rep.kernel_words) / s;
        rep.mults_per_sec = static_cast<double>(rep.mod_mults) / s;
    }

    latencies_ms_ = {};
    e2e_ms_ = {};
    shard_done_.assign(shard_done_.size(), 0);
    done_ = failed_ = ops_done_ = 0;
    shed_ = slo_good_ = 0;
    deadline_expired_ = drain_refused_ = 0;
    // A submit may have slipped in after our idle wait: hand the new
    // window a sane start instead of orphaning that request's metrics
    // (its own window-open sees window_open_ already true and no-ops).
    window_open_ = outstanding_.load() > 0;
    if (window_open_) {
        window_start_ = now;
        stats_baseline_ = now_stats;
    }
    return rep;
}

void
BatchServer::shutdownImpl(bool graceful)
{
    if (shut_down_.exchange(true))
        return;
    std::vector<ServeJob> refused;
    for (auto &q : queues_) {
        if (graceful)
            q->closeNow(refused);
        else
            q->close();
    }
    // Graceful drain: every queued-but-unstarted job gets the typed
    // refusal (its wire surface is SERVER_SHUTDOWN), so no client is
    // left holding a promise that never resolves.
    for (ServeJob &job : refused)
        completeDrainRefused(std::move(job));
    // Workers parked on an injected stall must not outlive the
    // server: wake them (their abort predicate sees shut_down_).
    fault::FaultInjector::global().releaseStalls();
    std::lock_guard<std::mutex> lk(workers_m_);
    for (auto &s : workers_) {
        if (s->thread.joinable())
            s->thread.join();
    }
}

void
BatchServer::shutdown()
{
    shutdownImpl(/*graceful=*/false);
}

void
BatchServer::shutdownGraceful()
{
    shutdownImpl(/*graceful=*/true);
}

} // namespace ark
