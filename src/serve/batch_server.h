/**
 * @file
 * Concurrent batch-serving runtime over the kernel-backend layer.
 *
 * The BatchServer admits many concurrent workload requests (lowered
 * from the paper's workload traces, serve/workload.h), queues them
 * through bounded RequestQueues (backpressure + admission control),
 * and executes them on a fixed set of worker threads. In sharded mode
 * (BatchServerConfig::shards > 1) the workers split into groups, each
 * with its own queue, and requests route to the group owning their
 * workload's rotation-evk signature (shard/serve_shard.h). All workers
 * share one immutable CkksContext (whose KernelBackend may itself be
 * the limb-parallel engine), one KeyCache of evk material, and one
 * PlaintextStore — the re-entrancy of that shared hot path is what
 * PR 2 hardened (per-thread KernelStats shards, mutex-guarded lazy
 * caches, exception-safe thread pool).
 *
 * Determinism: request execution itself is deterministic (evaluator
 * ops are pure given key material), so N concurrent requests produce
 * bit-identical results to sequential execution as long as the evk
 * material is fixed up front — the constructor prewarms every key the
 * workload set references. tests/test_serving.cpp enforces this.
 *
 * Metrics: each drain window reports per-request latency percentiles
 * and aggregate requests/sec, HE-ops/sec, plus backend-measured
 * words/sec and modular mults/sec (KernelStats delta over the
 * window).
 */

#pragma once

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "boot/key_cache.h"
#include "boot/plaintext_store.h"
#include "ckks/evaluator.h"
#include "graph/serve_schedule.h"
#include "serve/admission.h"
#include "serve/clock.h"
#include "serve/metrics.h"
#include "serve/request_queue.h"
#include "shard/serve_shard.h"

namespace ark {

/** Serving runtime knobs. */
struct BatchServerConfig
{
    /** Request worker threads (each may additionally fan limb work
     *  onto the context's parallel backend). */
    size_t workers = 4;
    /** Bound on admitted-but-unstarted requests (see RequestQueue). */
    size_t queue_capacity = 64;
    /**
     * Schedule-aware mode (graph/serve_schedule.h). With EvkCluster,
     * the constructor reorders each workload's ops under the
     * bit-exact commutation dependence graph (same results,
     * guaranteed), and submitBatch() sorts queue admission so
     * requests sharing rotation-evk working sets run back to back.
     * SourceOrder is plain FCFS, byte for byte the pre-scheduler
     * behaviour.
     */
    SchedulePolicy schedule = SchedulePolicy::SourceOrder;
    /**
     * Sharded mode (shard/serve_shard.h). With shards > 1 the workers
     * split into that many groups, each draining its own bounded
     * queue (queue_capacity divides across groups in proportion to
     * the op weight the plan routes to each, at least 1 per group),
     * and every request routes to the group owning its workload's
     * rotation-evk signature — evk-affinity routing, so each group's
     * hot key set stays small and disjoint-ish. Requires
     * workers >= shards. Results are bit-identical to the single
     * queue (shards = 1, the default): routing only picks *where* a
     * pure function runs.
     */
    size_t shards = 1;
    /**
     * SLO-aware admission control (serve/admission.h): per-class
     * latency targets, priority shedding, and the online-rebalance
     * period. Disabled by default — the classic server admits
     * everything up to queue capacity, byte for byte the previous
     * behaviour. Targets are honored for goodput accounting even
     * while `enabled` is false.
     */
    AdmissionConfig admission;
    /**
     * Time source for every admission/shedding/rebalance decision and
     * for end-to-end latency. Null = SystemServeClock (production).
     * Tests inject a ManualServeClock so the adaptive layer replays
     * deterministically without sleeps (serve/clock.h). Borrowed,
     * never owned; must outlive the server.
     */
    const ServeClock *clock = nullptr;

    // --- Network front-end knobs (net/wire_server.h; all four are
    // documented in docs/configuration.md and overridable via the
    // ARK_LISTEN_ADDR / ARK_LISTEN_PORT / ARK_MAX_SESSIONS /
    // ARK_MAX_FRAME_MIB environment variables, see serveConfigFromEnv).

    /** Address the WireServer binds. Loopback by default: exposing an
     *  FHE compute endpoint beyond the host is an explicit opt-in. */
    std::string listen_addr = "127.0.0.1";
    /** TCP port; 0 = ephemeral (kernel-assigned, reported by
     *  WireServer::port() — what the tests and --smoke mode use). */
    u16 listen_port = 0;
    /** Concurrent client sessions admitted; further OPEN_SESSIONs are
     *  refused with wire code SESSION_LIMIT. */
    size_t max_sessions = 8;
    /** Receive-side cap on one frame's body (docs/wire_format.md §2);
     *  larger frames are refused with FRAME_TOO_LARGE before any body
     *  byte is read. */
    u64 max_frame_bytes = 256ull * 1024 * 1024;

    // --- Robustness knobs (docs/robustness.md; ARK_WATCHDOG_MS /
    // ARK_WORKER_STUCK_MS / ARK_IDLE_TIMEOUT_MS / ARK_IO_TIMEOUT_MS).

    /** Worker-watchdog period in milliseconds (0 = watchdog off, the
     *  default). The watchdog rides admissions like the rebalancer
     *  (no extra thread): every interval it joins+respawns exited
     *  workers and supersedes ones stuck past worker_stuck_ms.
     *  checkWorkers() runs one sweep on demand (tests). */
    u64 watchdog_interval_ms = 0;
    /** A worker busy on ONE job longer than this (against the
     *  injected clock) is considered stuck: the watchdog spawns a
     *  replacement and the straggler exits after settling its job. */
    u64 worker_stuck_ms = 1000;
    /** Idle-session reaper: a wire session with no frame for this
     *  long is closed with wire code IDLE_TIMEOUT (0 = never). */
    u64 idle_timeout_ms = 0;
    /** Send-side socket timeout per session: a client that stops
     *  reading its responses for this long is dropped (0 = never). */
    u64 io_timeout_ms = 0;
};

/**
 * Apply the serving environment overrides to @p cfg and return it:
 * ARK_LISTEN_ADDR (bind address), ARK_LISTEN_PORT (0..65535),
 * ARK_MAX_SESSIONS (1..4096), ARK_MAX_FRAME_MIB (1..16384, converted
 * to bytes), and ARK_SLO_P99_MS (1..3600000: enables SLO admission
 * control with that p99 target on every class that lacks one —
 * creating the default class when none are configured). The
 * robustness knobs follow the same pattern: ARK_WATCHDOG_MS
 * (0..3600000), ARK_WORKER_STUCK_MS (1..3600000), ARK_IDLE_TIMEOUT_MS
 * and ARK_IO_TIMEOUT_MS (0..3600000). Malformed values are fatal,
 * naming the offending value; an empty value counts as unset — same
 * discipline as ARK_BACKEND / ARK_THREADS.
 */
BatchServerConfig serveConfigFromEnv(BatchServerConfig cfg = {});

/** One worker group's live state (see BatchServer::liveStats). */
struct ShardLiveStats
{
    size_t queue_depth = 0;    ///< queued (admitted, unstarted) jobs
    size_t queue_capacity = 0; ///< this shard's admission budget
    size_t in_flight = 0;      ///< popped and currently executing
    u64 total_done = 0;        ///< completions since server start
};

/** Point-in-time server state for the live stats surface (the STATS
 *  wire frame and the periodic emitter). Unlike drain()'s ServeReport
 *  this does not wait for quiescence — it is a racy-but-consistent
 *  sample of a running server. */
struct ServerLiveStats
{
    std::vector<ShardLiveStats> shards;
    size_t outstanding = 0; ///< admitted but not yet completed
};

/** Multi-threaded request executor over shared CKKS state. */
class BatchServer
{
  public:
    /**
     * @param inputs pre-encrypted input templates requests start from
     *        (workload.input_index selects one, mod inputs.size()).
     * The constructor prewarms every evk the workloads reference
     * (deterministic key material), then starts the workers.
     */
    BatchServer(const CkksContext &ctx, KeyCache &keys,
                const PlaintextStore &plaintexts,
                std::vector<ServeWorkload> workloads,
                std::vector<Ciphertext> inputs,
                BatchServerConfig cfg = {});
    ~BatchServer();

    BatchServer(const BatchServer &) = delete;
    BatchServer &operator=(const BatchServer &) = delete;

    const std::vector<ServeWorkload> &workloads() const
    {
        return workloads_;
    }
    /** The shared scheme context (the WireServer needs it to bind the
     *  params hash and deserialize tenant payloads against). */
    const CkksContext &context() const { return ctx_; }
    const BatchServerConfig &config() const { return cfg_; }
    /** The time source every deadline/watchdog decision reads — the
     *  wire layer converts relative SUBMIT2 deadlines into this
     *  clock's absolute domain. */
    const ServeClock &clock() const { return clock_; }
    /** Live (not exited, not superseded) worker threads. */
    size_t workers() const;
    /** Worker groups (1 = the classic single-queue server). */
    size_t shards() const { return queues_.size(); }
    /** The affinity routing table (trivial when shards() == 1).
     *  Returned by value: the online rebalancer may swap the live
     *  table under its own lock at any admission. */
    ServeShardPlan shardPlan() const;
    /** The admission controller (class catalog + live predictions). */
    const AdmissionController &admission() const { return admission_; }

    /**
     * Admit one request of @p workload_index, blocking while the queue
     * is full (backpressure). Throws std::runtime_error after
     * shutdown().
     */
    std::future<ServeResult> submit(size_t workload_index);

    /**
     * Admission-controlled submit: refuses instead of blocking when
     * the queue is full. Returns false and leaves @p out untouched on
     * refusal.
     */
    bool trySubmit(size_t workload_index, std::future<ServeResult> &out);

    /**
     * trySubmit() with the typed outcome: Full (capacity), Shed (SLO
     * admission refused it — back off), or Closed. @p out is set only
     * on Admitted. The open-loop driver keys its offered/admitted/
     * shed/refused ledger on this (serve/open_loop.h). Unlike
     * trySubmit()/submit() this never throws on shutdown.
     */
    AdmitResult trySubmitResult(size_t workload_index,
                                std::future<ServeResult> &out);

    /**
     * Admission-controlled submit of a remote tenant's request: the
     * ciphertext deserialized from its SUBMIT frame plus its uploaded
     * key cache (null = use the server's own keys). Routes through
     * the SAME shard queues as in-process traffic — remote requests
     * exercise the admission, scheduling, and sharding planes
     * unchanged. Returns the typed admission outcome; @p out is set
     * only on Admitted. Never throws on shutdown (returns Closed):
     * the wire layer turns Closed into a SERVER_SHUTDOWN error frame.
     *
     * @p reserved_id (from reserveRequestId()) lets the caller know
     * the request id *before* admission, so spans recorded around the
     * submit (recv, respond) correlate with the worker's spans and
     * the RESPONSE frame's request_id. 0 = assign one here.
     *
     * @p deadline_us: absolute clock() deadline (0 = none). A worker
     * popping the job past it settles DeadlineExceeded instead of
     * executing (the SUBMIT2 path, docs/wire_format.md §5.19).
     */
    AdmitResult trySubmitRemote(size_t workload_index,
                                std::shared_ptr<Ciphertext> input,
                                KeyCache *tenant_keys,
                                std::future<ServeResult> &out,
                                u64 reserved_id = 0,
                                u64 deadline_us = 0);

    /** Draw the next request id without submitting anything — the
     *  wire layer tags its pre-admission trace spans with it, then
     *  passes it back through trySubmitRemote. */
    u64 reserveRequestId() { return next_id_.fetch_add(1); }

    /** Sample the running server's per-shard queue depth / in-flight
     *  counts (no quiescence wait; see ServerLiveStats). */
    ServerLiveStats liveStats() const;

    /**
     * Online shard rebalance (shard/serve_shard.h): measure the load
     * signal accumulated since the last rebalance (per-shard queue
     * peak depth + per-shard evk misses) and, on a clear imbalance,
     * migrate one evk-signature group to the coldest shard. Only the
     * routing table swaps — queued and in-flight requests finish
     * where they are, so nothing is dropped and results stay
     * bit-identical. Returns true when the plan changed. Also runs
     * periodically from admissions when
     * AdmissionConfig::rebalance_interval_ms > 0 (against the
     * injected clock).
     */
    bool rebalanceNow();
    /** Rebalance against an explicit signal (deterministic tests). */
    bool rebalanceNow(const ServeShardSignal &signal);
    /** Routing-table swaps since server start. */
    size_t rebalances() const { return rebalance_count_.load(); }

    /**
     * Admit a whole batch. In schedule-aware mode the admission order
     * is clustered so requests sharing rotation evks co-locate
     * (graph/serve_schedule.h); futures are returned in the CALLER's
     * order regardless, so result i always answers workload_indices[i].
     * Blocking, like submit().
     */
    std::vector<std::future<ServeResult>>
    submitBatch(const std::vector<size_t> &workload_indices);

    /**
     * Block until every admitted request has completed, then return
     * the metrics window since the previous drain (and start a fresh
     * window). Safe to call repeatedly.
     */
    ServeReport drain();

    /** Refuse new requests, finish queued ones, join the workers.
     *  Idempotent; the destructor calls it. */
    void shutdown();

    /**
     * Graceful drain: refuse new requests and settle every QUEUED
     * (admitted, not yet started) job with the typed DrainRefused
     * error — its wire surface is SERVER_SHUTDOWN, so a remote client
     * knows the work was never started — then join the workers.
     * In-flight requests finish normally. Unlike shutdown() (which
     * lets workers finish queued work), nothing unstarted runs.
     * Idempotent, and idempotent against shutdown().
     */
    void shutdownGraceful();

    /**
     * One watchdog sweep, on demand: join + respawn workers whose
     * thread exited (crash), and supersede workers stuck on one job
     * longer than worker_stuck_ms (spawn a replacement; the straggler
     * exits after settling its job and is joined at shutdown). Safe
     * from any thread; also runs every watchdog_interval_ms off the
     * admission path. Returns the number of workers replaced.
     */
    size_t checkWorkers();
    /** Workers replaced by the watchdog since server start. */
    size_t respawns() const { return respawns_.load(); }

  private:
    /** One worker thread's slot. The thread owns busy/exit flags; the
     *  watchdog reads them and swaps in replacements. unique_ptr keeps
     *  slot addresses stable while the vector grows. */
    struct WorkerSlot
    {
        std::thread thread;
        size_t group = 0;
        /** clock() stamp when the current job was popped; 0 = idle. */
        std::atomic<u64> busy_since_us{0};
        /** The thread returned (injected crash / queue closed). */
        std::atomic<bool> exited{false};
        /** The watchdog replaced this worker; the thread exits after
         *  settling its in-hand job instead of popping more. */
        std::atomic<bool> superseded{false};
    };

    void workerLoop(WorkerSlot *slot);
    /** Append a fresh slot+thread for @p group (workers_m_ held). */
    void spawnWorker(size_t group);
    ServeResult execute(const ServeRequest &req) const;
    AdmitResult admitJob(ServeJob &&job, bool blocking);
    std::future<ServeResult> enqueue(size_t workload_index,
                                     bool blocking,
                                     AdmitResult &admitted);
    /** Complete @p job with a Shed result and release its admission
     *  accounting (promise, outstanding_, window shed count). */
    void completeShed(ServeJob &&job, bool was_queued);
    /** Settle a popped job whose deadline already expired. */
    void completeDeadline(ServeJob &&job);
    /** Settle a queued job refused at graceful drain. */
    void completeDrainRefused(ServeJob &&job);
    /** Fire rebalanceNow() when the configured interval elapsed. */
    void maybeRebalance();
    /** Fire checkWorkers() when watchdog_interval_ms elapsed. */
    void maybeWatchdog();
    /** Close queues (optionally extracting still-queued jobs), then
     *  join every worker thread. */
    void shutdownImpl(bool graceful);

    const CkksContext &ctx_;
    CkksEvaluator eval_;
    KeyCache &keys_;
    const PlaintextStore &plaintexts_;
    const std::vector<ServeWorkload> workloads_;
    const std::vector<Ciphertext> inputs_;
    const BatchServerConfig cfg_;
    AdmissionController admission_;
    const ServeClock &clock_;

    /** The live routing table (guarded by plan_m_: the rebalancer
     *  swaps it while admissions read it). */
    mutable std::mutex plan_m_;
    ServeShardPlan shard_plan_;
    /** Worker-thread count per group (fixed at construction; the
     *  admission prediction's drain denominator). */
    std::vector<size_t> shard_workers_;
    std::atomic<u64> last_rebalance_us_{0};
    std::atomic<size_t> rebalance_count_{0};

    /** One queue per worker group; index = shard. unique_ptr because
     *  RequestQueue pins a mutex (neither copyable nor movable). */
    std::vector<std::unique_ptr<RequestQueue>> queues_;
    /** Worker slots, including superseded/exited ones awaiting their
     *  shutdown join (guarded by workers_m_; slots themselves are
     *  lock-free for the owning thread). */
    mutable std::mutex workers_m_;
    std::vector<std::unique_ptr<WorkerSlot>> workers_;
    std::atomic<size_t> respawns_{0};
    std::atomic<u64> last_watchdog_us_{0};
    std::atomic<u64> next_id_{1};
    std::atomic<bool> shut_down_{false};

    /** submitted - completed; drain() waits for 0 (counted at submit
     *  time so a popped-but-running request still holds the drain). */
    std::atomic<size_t> outstanding_{0};
    std::mutex idle_m_;
    std::condition_variable idle_cv_;

    /** Metrics window state (guarded by metrics_m_). */
    mutable std::mutex metrics_m_;
    std::vector<double> latencies_ms_;
    std::vector<double> e2e_ms_; ///< admission -> completion (clock_)
    std::vector<size_t> shard_done_; ///< completions per worker group
    /** Evk misses attributed to each group's workers since the last
     *  rebalance (KeyCache::threadStats deltas) — the rebalancer's
     *  second signal. */
    std::vector<u64> shard_evk_miss_;
    size_t shed_ = 0;     ///< window: requests shed by admission
    size_t slo_good_ = 0; ///< window: completions meeting their p99
    size_t deadline_expired_ = 0; ///< window: dropped past deadline
    size_t drain_refused_ = 0;    ///< window: refused at drain
    /** Live-stats state (also guarded by metrics_m_): unlike the
     *  window counters above these survive drain(). */
    std::vector<size_t> shard_inflight_;
    std::vector<u64> shard_total_done_;
    size_t done_ = 0;
    size_t failed_ = 0;
    size_t ops_done_ = 0;
    bool window_open_ = false;
    std::chrono::steady_clock::time_point window_start_{};
    KernelStats stats_baseline_;
};

} // namespace ark
