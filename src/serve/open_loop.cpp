#include "serve/open_loop.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace ark {

OpenLoopStats
runOpenLoop(BatchServer &server,
            const std::vector<ArrivalEvent> &events)
{
    OpenLoopStats stats;
    stats.offered = events.size();
    if (events.empty())
        return stats;

    std::vector<std::future<ServeResult>> futures;
    futures.reserve(events.size());

    const auto t0 = std::chrono::steady_clock::now();
    for (const ArrivalEvent &ev : events) {
        const auto due =
            t0 + std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(ev.t_s));
        // sleep_until self-corrects: if the previous submit ran long
        // the next arrival fires immediately instead of drifting.
        std::this_thread::sleep_until(due);

        std::future<ServeResult> fut;
        switch (server.trySubmitResult(ev.workload_index, fut)) {
        case AdmitResult::Admitted:
            stats.admitted += 1;
            futures.push_back(std::move(fut));
            break;
        case AdmitResult::Shed:
            stats.shed += 1;
            break;
        case AdmitResult::Full:
        case AdmitResult::Closed:
            stats.refused += 1;
            break;
        }
    }
    const double offered_span = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    t0)
                                    .count();
    if (offered_span > 0)
        stats.offered_per_sec =
            static_cast<double>(stats.offered) / offered_span;

    // Settle every admitted request: evictions resolve with the Shed
    // error kind, everything else ran to completion.
    for (auto &fut : futures) {
        const ServeResult r = fut.get();
        if (r.ok)
            stats.ok += 1;
        else if (r.error_kind == ServeErrorKind::Shed)
            stats.evicted += 1;
        else if (r.error_kind == ServeErrorKind::DeadlineExceeded)
            stats.deadline_expired += 1;
        else if (r.error_kind == ServeErrorKind::DrainRefused)
            stats.drain_refused += 1;
        else
            stats.failed += 1;
    }
    ARK_ASSERT(stats.ok + stats.failed + stats.evicted +
                       stats.deadline_expired + stats.drain_refused ==
                   stats.admitted,
               "open-loop ledger must conserve admitted requests");

    stats.report = server.drain();
    return stats;
}

} // namespace ark
